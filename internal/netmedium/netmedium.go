// Package netmedium exposes a running protocol simulation on the
// network: a UDP service that streams every frame on the emulated
// channel to subscribed "monitor mode" taps, and accepts remote
// injection of broadcast traffic into the AP — the observability and
// drive interfaces a deployed simulator offers so external tools
// (dashboards, traffic replayers, other processes) can participate
// without linking the simulator in.
//
// Wire protocol (binary, little-endian, one message per datagram):
//
//	offset  size  field
//	0       2     magic 0x1DE5
//	2       1     version (1)
//	3       1     type
//	4       8     virtual timestamp, nanoseconds
//	12      8     PHY rate, bits/s (float64 bits)
//	20      2     payload length n
//	22      n     payload
//
// Types: Subscribe (payload empty), Unsubscribe (empty), Frame (payload
// is the raw 802.11 frame; server→tap only), Inject (payload is a
// 4-byte header: dst UDP port (2) + frame payload size (2); tap→server
// only), and Pong/Ping for liveness.
package netmedium

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"time"

	"repro/internal/dot11"
)

// Wire protocol constants.
const (
	protoMagic   uint16 = 0x1de5
	protoVersion byte   = 1

	headerLen   = 22
	maxFrameLen = 4096
)

// MsgType enumerates protocol message types.
type MsgType byte

// Message types.
const (
	MsgSubscribe MsgType = iota + 1
	MsgUnsubscribe
	MsgFrame
	MsgInject
	MsgPing
	MsgPong
)

// Message is one decoded protocol message.
type Message struct {
	Type    MsgType
	At      time.Duration // virtual time
	Rate    dot11.Rate
	Payload []byte
}

// Marshal encodes the message into a datagram.
func (m Message) Marshal() ([]byte, error) {
	if len(m.Payload) > maxFrameLen {
		return nil, fmt.Errorf("netmedium: payload %d exceeds %d", len(m.Payload), maxFrameLen)
	}
	out := make([]byte, headerLen+len(m.Payload))
	binary.LittleEndian.PutUint16(out[0:2], protoMagic)
	out[2] = protoVersion
	out[3] = byte(m.Type)
	binary.LittleEndian.PutUint64(out[4:12], uint64(m.At.Nanoseconds()))
	binary.LittleEndian.PutUint64(out[12:20], math.Float64bits(float64(m.Rate)))
	binary.LittleEndian.PutUint16(out[20:22], uint16(len(m.Payload)))
	copy(out[headerLen:], m.Payload)
	return out, nil
}

// ErrBadMessage reports a malformed datagram.
var ErrBadMessage = errors.New("netmedium: malformed message")

// Unmarshal decodes a datagram.
func Unmarshal(b []byte) (Message, error) {
	var m Message
	if len(b) < headerLen {
		return m, fmt.Errorf("%w: %d bytes", ErrBadMessage, len(b))
	}
	if binary.LittleEndian.Uint16(b[0:2]) != protoMagic {
		return m, fmt.Errorf("%w: bad magic", ErrBadMessage)
	}
	if b[2] != protoVersion {
		return m, fmt.Errorf("%w: version %d", ErrBadMessage, b[2])
	}
	m.Type = MsgType(b[3])
	m.At = time.Duration(binary.LittleEndian.Uint64(b[4:12]))
	m.Rate = dot11.Rate(math.Float64frombits(binary.LittleEndian.Uint64(b[12:20])))
	n := int(binary.LittleEndian.Uint16(b[20:22]))
	if n > maxFrameLen {
		return m, fmt.Errorf("%w: declared %d payload bytes exceeds %d", ErrBadMessage, n, maxFrameLen)
	}
	if len(b) != headerLen+n {
		return m, fmt.Errorf("%w: declared %d payload bytes, have %d", ErrBadMessage, n, len(b)-headerLen)
	}
	m.Payload = append([]byte(nil), b[headerLen:]...)
	return m, nil
}

// InjectRequest is the payload of an Inject message.
type InjectRequest struct {
	DstPort     uint16
	PayloadSize uint16
}

// marshalInject encodes an inject payload.
func (r InjectRequest) marshal() []byte {
	out := make([]byte, 4)
	binary.LittleEndian.PutUint16(out[0:2], r.DstPort)
	binary.LittleEndian.PutUint16(out[2:4], r.PayloadSize)
	return out
}

// parseInject decodes an inject payload.
func parseInject(b []byte) (InjectRequest, error) {
	if len(b) != 4 {
		return InjectRequest{}, fmt.Errorf("%w: inject payload %d bytes", ErrBadMessage, len(b))
	}
	return InjectRequest{
		DstPort:     binary.LittleEndian.Uint16(b[0:2]),
		PayloadSize: binary.LittleEndian.Uint16(b[2:4]),
	}, nil
}

// Stats counts server activity.
type Stats struct {
	Subscribers int
	FramesSent  int
	Injects     int
	BadPackets  int
	PingsSent   int
	// Evictions counts subscribers reaped by the liveness sweep after
	// maxMissedPings consecutive unanswered pings.
	Evictions int
}

// maxMissedPings is the default for how many consecutive PingTaps
// sweeps a subscriber may leave unanswered before it is evicted
// (configurable per server via SetLiveness). A tap that crashed
// without unsubscribing would otherwise receive every published frame
// forever.
const maxMissedPings = 3

// subscriber is one tap with its liveness state.
type subscriber struct {
	addr   net.Addr
	missed int // consecutive unanswered pings
}

// Server relays monitor frames to taps and inject requests into the
// simulation. It is safe for concurrent use: Publish is called from
// the simulation loop while Serve reads the socket.
type Server struct {
	pc     net.PacketConn
	inject func(InjectRequest)

	mu        sync.Mutex
	subs      map[string]*subscriber
	stats     Stats
	maxMissed int // 0 = the maxMissedPings default
}

// NewServer wraps a packet connection. inject is called (from the
// Serve goroutine) for every valid inject request; nil disables
// injection.
func NewServer(pc net.PacketConn, inject func(InjectRequest)) *Server {
	return &Server{pc: pc, inject: inject, subs: make(map[string]*subscriber)}
}

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.pc.LocalAddr() }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Subscribers = len(s.subs)
	return st
}

// Serve reads datagrams until the connection is closed. It returns
// net.ErrClosed after Close.
func (s *Server) Serve() error {
	buf := make([]byte, headerLen+maxFrameLen)
	for {
		n, from, err := s.pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		m, err := Unmarshal(buf[:n])
		if err != nil {
			s.mu.Lock()
			s.stats.BadPackets++
			s.mu.Unlock()
			continue
		}
		switch m.Type {
		case MsgSubscribe:
			s.mu.Lock()
			s.subs[from.String()] = &subscriber{addr: from}
			s.mu.Unlock()
		case MsgUnsubscribe:
			s.mu.Lock()
			delete(s.subs, from.String())
			s.mu.Unlock()
		case MsgInject:
			req, err := parseInject(m.Payload)
			if err != nil {
				s.mu.Lock()
				s.stats.BadPackets++
				s.mu.Unlock()
				continue
			}
			s.mu.Lock()
			s.stats.Injects++
			s.touch(from)
			inject := s.inject
			s.mu.Unlock()
			if inject != nil {
				inject(req)
			}
		case MsgPing:
			s.mu.Lock()
			s.touch(from)
			s.mu.Unlock()
			pong, err := Message{Type: MsgPong}.Marshal()
			if err == nil {
				//lint:ignore errdrop best-effort pong; a lost reply looks like a lost packet
				_, _ = s.pc.WriteTo(pong, from)
			}
		case MsgPong:
			s.mu.Lock()
			s.touch(from)
			s.mu.Unlock()
		default:
			s.mu.Lock()
			s.stats.BadPackets++
			s.mu.Unlock()
		}
	}
}

// touch marks a subscriber alive. Callers hold s.mu.
func (s *Server) touch(from net.Addr) {
	if sub, ok := s.subs[from.String()]; ok {
		sub.missed = 0
	}
}

// SetLiveness overrides how many consecutive unanswered sweeps evict
// a subscriber (values < 1 restore the default of 3). Safe to call
// while serving.
func (s *Server) SetLiveness(maxMissed int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.maxMissed = maxMissed
}

// PingTaps runs one liveness sweep: subscribers that have left the
// configured number of consecutive sweeps unanswered (SetLiveness;
// default 3) are evicted, the rest are pinged again. Drive it at a
// steady cadence (ReplayRealtime's cadence is configurable via
// Monitor.SetLiveness); any message from a tap — a Pong, an Inject,
// even a fresh Subscribe — resets its counter.
func (s *Server) PingTaps() {
	ping, err := Message{Type: MsgPing}.Marshal()
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	limit := s.maxMissed
	if limit < 1 {
		limit = maxMissedPings
	}
	for key, sub := range s.subs {
		if sub.missed >= limit {
			delete(s.subs, key)
			s.stats.Evictions++
			continue
		}
		sub.missed++
		if _, err := s.pc.WriteTo(ping, sub.addr); err != nil {
			delete(s.subs, key)
			s.stats.Evictions++
			continue
		}
		s.stats.PingsSent++
	}
}

// Close shuts the server down; Serve returns.
func (s *Server) Close() error { return s.pc.Close() }

// Publish streams one monitor frame to every subscriber. Send errors
// drop the subscriber (taps that went away).
func (s *Server) Publish(raw []byte, rate dot11.Rate, at time.Duration) {
	if len(raw) > maxFrameLen {
		return
	}
	msg, err := Message{Type: MsgFrame, At: at, Rate: rate, Payload: raw}.Marshal()
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, sub := range s.subs {
		if _, err := s.pc.WriteTo(msg, sub.addr); err != nil {
			delete(s.subs, key)
			continue
		}
		s.stats.FramesSent++
	}
}

// Tap is a monitor-mode subscriber.
type Tap struct {
	conn net.Conn
}

// FrameEvent is one frame observed by a tap.
type FrameEvent struct {
	At   time.Duration
	Rate dot11.Rate
	Raw  []byte
}

// Dial connects a tap to a server and subscribes.
func Dial(addr string) (*Tap, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netmedium: dialing server: %w", err)
	}
	t := &Tap{conn: conn}
	msg, err := Message{Type: MsgSubscribe}.Marshal()
	if err != nil {
		//lint:ignore errdrop close error is moot once subscribing has failed
		conn.Close()
		return nil, err
	}
	if _, err := conn.Write(msg); err != nil {
		//lint:ignore errdrop close error is moot once subscribing has failed
		conn.Close()
		return nil, fmt.Errorf("netmedium: subscribing: %w", err)
	}
	return t, nil
}

// Next blocks for the next frame event, bounded by the deadline.
func (t *Tap) Next(deadline time.Time) (FrameEvent, error) {
	if err := t.conn.SetReadDeadline(deadline); err != nil {
		return FrameEvent{}, err
	}
	buf := make([]byte, headerLen+maxFrameLen)
	for {
		n, err := t.conn.Read(buf)
		if err != nil {
			return FrameEvent{}, err
		}
		m, err := Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if m.Type == MsgPing {
			// Answer the server's liveness sweep so the tap is not
			// evicted while idling between frames.
			if pong, err := (Message{Type: MsgPong}).Marshal(); err == nil {
				//lint:ignore errdrop best-effort pong; a missed reply costs one sweep
				_, _ = t.conn.Write(pong)
			}
			continue
		}
		if m.Type != MsgFrame {
			continue
		}
		return FrameEvent{At: m.At, Rate: m.Rate, Raw: m.Payload}, nil
	}
}

// Inject asks the server to enqueue a broadcast UDP frame.
func (t *Tap) Inject(req InjectRequest) error {
	msg, err := Message{Type: MsgInject, Payload: req.marshal()}.Marshal()
	if err != nil {
		return err
	}
	_, err = t.conn.Write(msg)
	return err
}

// Close unsubscribes and closes the tap.
func (t *Tap) Close() error {
	if msg, err := (Message{Type: MsgUnsubscribe}).Marshal(); err == nil {
		//lint:ignore errdrop best-effort unsubscribe; the server also times taps out
		_, _ = t.conn.Write(msg)
	}
	return t.conn.Close()
}
