package energy

import (
	"math"
	"testing"
	"time"

	"repro/internal/dot11"
)

// approx reports whether got is within rel of want (or both ~0).
func approx(got, want, rel float64) bool {
	if math.Abs(want) < 1e-12 {
		return math.Abs(got) < 1e-12
	}
	return math.Abs(got-want)/math.Abs(want) <= rel
}

func cfgNexus(d time.Duration) Config {
	return Config{Device: NexusOne, Duration: d}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range Profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("built-in profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("Galaxy S4")
	if err != nil || p.Name != "Galaxy S4" {
		t.Fatalf("ProfileByName: %v %v", p, err)
	}
	if _, err := ProfileByName("iPhone"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestProfileValidateCatchesBadFields(t *testing.T) {
	mutations := []func(*Profile){
		func(p *Profile) { p.Tau = 0 },
		func(p *Profile) { p.Trm = 0 },
		func(p *Profile) { p.ErmJ = -1 },
		func(p *Profile) { p.PrW = 0 },
		func(p *Profile) { p.PssW = p.PsaW },
	}
	for i, m := range mutations {
		p := NexusOne
		m(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: invalid profile validated", i)
		}
	}
}

func TestEmptyTraceOnlyBeacons(t *testing.T) {
	b, err := Compute(nil, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	numBeacons := int(10 * time.Second / dot11.DefaultBeaconInterval)
	wantEb := NexusOne.EBeaconJ * float64(numBeacons)
	if !approx(b.EbJ, wantEb, 1e-9) {
		t.Errorf("Eb = %v, want %v", b.EbJ, wantEb)
	}
	if b.EfJ != 0 || b.EwlJ != 0 || b.EstJ != 0 || b.EoJ != 0 {
		t.Errorf("non-beacon components non-zero: %+v", b)
	}
	if b.SuspendFraction != 1 {
		t.Errorf("suspend fraction = %v, want 1", b.SuspendFraction)
	}
}

func TestSingleFrameHandComputed(t *testing.T) {
	frames := []Arrival{{
		At: time.Second, Length: 1250, Rate: dot11.Rate1Mbps, Wakelock: time.Second,
	}}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Rx: 1250 B = 10 ms at 1 Mb/s.
	if !approx(b.EfJ, 0.530*0.010+0.245*0.0784, 1e-6) {
		// tf = 1 s - 9*102.4 ms = 78.4 ms idle until the first frame.
		t.Errorf("Ef = %v", b.EfJ)
	}
	if !approx(b.EwlJ, 0.125*1.0, 1e-9) {
		t.Errorf("Ewl = %v, want 125 mJ", b.EwlJ)
	}
	if !approx(b.EstJ, 18.26e-3+17.66e-3, 1e-9) {
		t.Errorf("Est = %v, want 35.92 mJ", b.EstJ)
	}
	if b.Resumes != 1 || b.AbortedSuspends != 0 {
		t.Errorf("Resumes=%d Aborted=%d, want 1, 0", b.Resumes, b.AbortedSuspends)
	}
	// Suspended: [0, 1.01 s] plus [2.142 s, 10 s].
	wantFrac := (1.010 + (10 - 2.142)) / 10
	if !approx(b.SuspendFraction, wantFrac, 1e-6) {
		t.Errorf("suspend fraction = %v, want %v", b.SuspendFraction, wantFrac)
	}
}

func TestWakelockRenewal(t *testing.T) {
	// Two small frames 500 ms apart: the second renews the wakelock, so
	// there is exactly one resume and the first wakelock is truncated.
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
		{At: 1500 * time.Millisecond, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
	}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1 (renewal)", b.Resumes)
	}
	// tr1 = 1.001+0.046 = 1.047; tr2 = 1.501; twl1 = 0.454; twl2 = 1.
	if !approx(b.EwlJ, 0.125*(0.454+1.0), 1e-6) {
		t.Errorf("Ewl = %v, want %v", b.EwlJ, 0.125*1.454)
	}
	if b.AbortedSuspends != 0 {
		t.Errorf("AbortedSuspends = %d, want 0", b.AbortedSuspends)
	}
}

func TestTwoSeparateWakeups(t *testing.T) {
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
		{At: 5 * time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
	}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.Resumes != 2 {
		t.Errorf("Resumes = %d, want 2", b.Resumes)
	}
	if !approx(b.EstJ, 2*(18.26e-3+17.66e-3), 1e-9) {
		t.Errorf("Est = %v, want two full cycles", b.EstJ)
	}
	if !approx(b.EwlJ, 0.125*2.0, 1e-9) {
		t.Errorf("Ewl = %v, want 250 mJ", b.EwlJ)
	}
}

func TestAbortedSuspend(t *testing.T) {
	// Second frame arrives 54 ms into the 86 ms suspend operation.
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
		{At: 2100 * time.Millisecond, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
	}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1 (suspend aborted, no resume)", b.Resumes)
	}
	if b.AbortedSuspends != 1 {
		t.Errorf("AbortedSuspends = %d, want 1", b.AbortedSuspends)
	}
	// y = (2.101 - 1.047 - 1) / 0.086 = 0.054/0.086.
	wantEst := (18.26e-3 + 17.66e-3) + 17.66e-3*(0.054/0.086)
	if !approx(b.EstJ, wantEst, 1e-6) {
		t.Errorf("Est = %v, want %v", b.EstJ, wantEst)
	}
}

func TestZeroWakelockClientSideSemantics(t *testing.T) {
	// A useless frame under the client-side filter: zero wakelock, so
	// the device starts suspending right after the (instant) handling,
	// and a frame 50 ms later aborts that suspend.
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: 0},
		{At: 1050 * time.Millisecond, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: 0},
	}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.EwlJ != 0 {
		t.Errorf("Ewl = %v, want 0 for zero wakelocks", b.EwlJ)
	}
	if b.Resumes != 1 || b.AbortedSuspends != 1 {
		t.Errorf("Resumes=%d Aborted=%d, want 1 and 1", b.Resumes, b.AbortedSuspends)
	}
}

func TestMoreDataIdleListening(t *testing.T) {
	base := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
		{At: 1020 * time.Millisecond, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
	}
	noMore, err := Compute(base, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	withMore := []Arrival{base[0], base[1]}
	withMore[0].MoreData = true
	got, err := Compute(withMore, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Extra idle: from frame-1 end (1.001 s) to frame-2 start (1.020 s).
	wantExtra := 0.245 * 0.019
	if !approx(got.EfJ-noMore.EfJ, wantExtra, 1e-6) {
		t.Errorf("more-data idle delta = %v, want %v", got.EfJ-noMore.EfJ, wantExtra)
	}
}

func TestMoreDataCappedAtBeaconInterval(t *testing.T) {
	// A lone more-data frame listens only to the end of its beacon
	// interval, not forever.
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, MoreData: true, Wakelock: time.Second},
	}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	// Interval 9 ends at 10*102.4 ms = 1.024 s; frame ends at 1.001 s.
	wantIdle := 0.245 * ((1.0 - 0.9216) + (1.024 - 1.001))
	wantEf := 0.530*0.001 + wantIdle
	if !approx(b.EfJ, wantEf, 1e-6) {
		t.Errorf("Ef = %v, want %v", b.EfJ, wantEf)
	}
}

func TestOverheadHandComputed(t *testing.T) {
	cfg := cfgNexus(100 * time.Second)
	cfg.Overhead = DefaultOverhead()
	b, err := Compute(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	numBeacons := float64(int(100 * time.Second / dot11.DefaultBeaconInterval))
	// E1: 5 BTIM bytes = 40 bits = 40 µs at 1 Mb/s per beacon.
	e1 := 0.530 * 40e-6 * numBeacons
	// E2: M = 10 messages; Lm = 24 + 24 + 2 + 200 = 250 B = 2 ms at 1 Mb/s.
	e2 := 1.2 * 10 * 0.002
	if !approx(b.EoJ, e1+e2, 1e-6) {
		t.Errorf("Eo = %v, want %v", b.EoJ, e1+e2)
	}
}

func TestNoOverheadWhenZero(t *testing.T) {
	frames := []Arrival{{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second}}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.EoJ != 0 {
		t.Errorf("Eo = %v, want 0 without overhead config", b.EoJ)
	}
}

func TestComputeRejectsBadInput(t *testing.T) {
	if _, err := Compute(nil, Config{Device: NexusOne}); err == nil {
		t.Error("zero duration accepted")
	}
	bad := NexusOne
	bad.Tau = 0
	if _, err := Compute(nil, Config{Device: bad, Duration: time.Second}); err == nil {
		t.Error("invalid profile accepted")
	}
	frames := []Arrival{
		{At: 2 * time.Second, Length: 125, Rate: dot11.Rate1Mbps},
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps},
	}
	if _, err := Compute(frames, cfgNexus(10*time.Second)); err == nil {
		t.Error("out-of-order frames accepted")
	}
}

func TestSuspendFractionBounds(t *testing.T) {
	// Saturating traffic: frames every 100 ms for the whole window.
	var frames []Arrival
	for ms := 0; ms < 10000; ms += 100 {
		frames = append(frames, Arrival{
			At: time.Duration(ms) * time.Millisecond, Length: 125,
			Rate: dot11.Rate1Mbps, Wakelock: time.Second,
		})
	}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.SuspendFraction < 0 || b.SuspendFraction > 1 {
		t.Fatalf("suspend fraction %v outside [0, 1]", b.SuspendFraction)
	}
	if b.SuspendFraction > 0.01 {
		t.Errorf("suspend fraction = %v under saturating traffic, want ~0", b.SuspendFraction)
	}
	if b.Resumes != 1 {
		t.Errorf("Resumes = %d, want 1 under continuous renewal", b.Resumes)
	}
}

func TestBreakdownHelpers(t *testing.T) {
	b := Breakdown{EbJ: 1, EfJ: 2, EwlJ: 3, EstJ: 4, EoJ: 5, Duration: 10 * time.Second}
	if b.TotalJ() != 15 {
		t.Errorf("TotalJ = %v, want 15", b.TotalJ())
	}
	if b.AvgPowerW() != 1.5 {
		t.Errorf("AvgPowerW = %v, want 1.5", b.AvgPowerW())
	}
	eb, ef, est, ewl, eo := b.ComponentPowersW()
	if eb != 0.1 || ef != 0.2 || est != 0.4 || ewl != 0.3 || eo != 0.5 {
		t.Errorf("ComponentPowersW = %v %v %v %v %v", eb, ef, est, ewl, eo)
	}
	var zero Breakdown
	if zero.AvgPowerW() != 0 {
		t.Error("zero-duration AvgPowerW should be 0")
	}
}

func TestGalaxyS4StateTransferCostlier(t *testing.T) {
	// The S4's Erm+Esp is ~4x the Nexus One's — the root of the paper's
	// observation that client-side filtering barely helps the S4.
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: 0},
		{At: 5 * time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: 0},
	}
	n1, err := Compute(frames, Config{Device: NexusOne, Duration: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Compute(frames, Config{Device: GalaxyS4, Duration: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s4.EstJ <= 3*n1.EstJ {
		t.Errorf("S4 Est = %v vs N1 %v: expected ~4x ratio", s4.EstJ, n1.EstJ)
	}
}

func TestBeaconListenIntervalDividesEb(t *testing.T) {
	cfg := cfgNexus(100 * time.Second)
	base, err := Compute(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BeaconListenInterval = 5
	li5, err := Compute(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 976 beacons at LI 1 vs 195 at LI 5.
	if !approx(li5.EbJ, base.EbJ/5, 0.02) {
		t.Errorf("Eb at LI=5: %v, want ~%v", li5.EbJ, base.EbJ/5)
	}
	// Overhead's BTIM component scales the same way.
	cfg = cfgNexus(100 * time.Second)
	cfg.Overhead = DefaultOverhead()
	baseO, err := Compute(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.BeaconListenInterval = 5
	li5O, err := Compute(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if li5O.EoJ >= baseO.EoJ {
		t.Errorf("Eo did not shrink with listen interval: %v vs %v", li5O.EoJ, baseO.EoJ)
	}
}

func TestFrameDuringResumeDelaysWakelock(t *testing.T) {
	// Paper §IV.1: "If a UDP broadcast frame arrives during system
	// resume operation, activation of the WiFi wakelock will be delayed
	// until the resume operation is finished." Frame 2 arrives 20 ms
	// after frame 1 — inside frame 1's 46 ms resume — so both wakelocks
	// activate together at resume end and the union is exactly τ.
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
		{At: 1020 * time.Millisecond, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
	}
	b, err := Compute(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if b.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", b.Resumes)
	}
	// Both wakelocks start at tr = 1.047 s (resume end): union = 1 s.
	if !approx(b.EwlJ, 0.125*1.0, 1e-6) {
		t.Errorf("Ewl = %v, want exactly one τ worth", b.EwlJ)
	}
	if b.AbortedSuspends != 0 {
		t.Errorf("AbortedSuspends = %d, want 0", b.AbortedSuspends)
	}
}
