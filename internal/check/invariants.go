package check

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/ap"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/station"
)

// Rule names the protocol invariants the harness asserts.
const (
	// RuleBTIMSound: a BTIM bit is set only for an AID the Client UDP
	// Port Table lists as listening on some buffered frame's
	// destination port (Algorithm 1 soundness).
	RuleBTIMSound = "btim-soundness"
	// RuleBTIMComplete: every AID listening on a buffered frame's
	// destination port has its BTIM bit set (Algorithm 1 completeness).
	RuleBTIMComplete = "btim-completeness"
	// RuleTIMBroadcast: the TIM broadcast bit is set only on DTIM
	// beacons with group frames actually buffered.
	RuleTIMBroadcast = "tim-broadcast"
	// RuleGroupConservation: group frames are conserved at the AP
	// (enqueued = transmitted + still buffered + lost on restart),
	// checked on every event.
	RuleGroupConservation = "group-conservation"
	// RuleUnicastConservation: unicast frames are conserved at the AP
	// (enqueued = served + filtered + pending + lost on restart),
	// checked on every event.
	RuleUnicastConservation = "unicast-conservation"
	// RuleTimeline: station suspend/awake transitions alternate with
	// monotone timestamps, so the intervals are disjoint and cover the
	// run.
	RuleTimeline = "suspend-timeline"
	// RuleArrivalOrder: the station's arrival log is monotone in time
	// with physically sensible fields.
	RuleArrivalOrder = "arrival-order"
	// RuleEnergyNonNegative: every energy component computed over any
	// checked arrival prefix is non-negative.
	RuleEnergyNonNegative = "energy-non-negative"
)

// Violation is one observed invariant breach.
type Violation struct {
	At     time.Duration
	Rule   string
	Detail string
}

// String formats the violation.
func (v Violation) String() string {
	return fmt.Sprintf("t=%v %s: %s", v.At, v.Rule, v.Detail)
}

// Invariants is the pluggable runtime checker: attach it to a protocol
// simulation with Watch (or the finer-grained WatchAP/WatchStation)
// before running, then inspect Violations or Err afterwards. It is
// enabled by default in the differential-oracle tests and behind the
// -invariants flag in cmd/crosscheck.
type Invariants struct {
	// FailFast makes the first violation panic, pinpointing the exact
	// simulation event that broke the invariant (useful under tests).
	FailFast bool

	violations []Violation
	seenRule   map[string]int
	ap         *ap.AP
	stations   []*stationWatch
}

// maxViolationsPerRule bounds recording so a per-event breach cannot
// accumulate millions of duplicates.
const maxViolationsPerRule = 8

// NewInvariants returns an empty checker.
func NewInvariants() *Invariants {
	return &Invariants{seenRule: make(map[string]int)}
}

// Watch attaches the checker to a core.Network: AP observer, a
// per-event engine hook for the conservation equations, and a
// lifecycle observer on every attached station. Call it after the
// stations have been added and before the replay runs.
func (inv *Invariants) Watch(n *core.Network) {
	inv.WatchAP(n.Engine, n.AP)
	for _, st := range n.Stations() {
		inv.WatchStation(st)
	}
	for _, c := range n.Cohorts() {
		inv.WatchStation(c.Template())
	}
}

// WatchAP installs the AP beacon observer and the per-event
// conservation hook.
func (inv *Invariants) WatchAP(eng *sim.Engine, a *ap.AP) {
	inv.ap = a
	a.SetObserver(inv)
	eng.AddHook(inv.eventHook)
}

// WatchStation installs the suspend-timeline and arrival-log observer.
func (inv *Invariants) WatchStation(st *station.Station) {
	w := &stationWatch{inv: inv, st: st, idx: len(inv.stations)}
	inv.stations = append(inv.stations, w)
	st.SetObserver(w)
}

// Violations returns everything recorded so far.
func (inv *Invariants) Violations() []Violation {
	return append([]Violation(nil), inv.violations...)
}

// Err returns nil if no invariant was violated, otherwise an error
// summarizing the breaches.
func (inv *Invariants) Err() error {
	if len(inv.violations) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s):", len(inv.violations))
	for _, v := range inv.violations {
		b.WriteString("\n  " + v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// record stores (or panics on) a violation, capped per rule.
func (inv *Invariants) record(at time.Duration, rule, detail string) {
	v := Violation{At: at, Rule: rule, Detail: detail}
	if inv.FailFast {
		panic("check: invariant violated: " + v.String())
	}
	if inv.seenRule == nil {
		inv.seenRule = make(map[string]int)
	}
	if inv.seenRule[rule] >= maxViolationsPerRule {
		return
	}
	inv.seenRule[rule]++
	inv.violations = append(inv.violations, v)
}

// eventHook runs the AP conservation equations after every simulation
// event.
func (inv *Invariants) eventHook(now time.Duration) {
	st := inv.ap.Stats()
	if pending := inv.ap.BufferedGroupFrames(); st.GroupFramesEnqueued != st.GroupFramesSent+pending+st.GroupFramesLost {
		inv.record(now, RuleGroupConservation,
			fmt.Sprintf("enqueued %d != sent %d + buffered %d + lost %d",
				st.GroupFramesEnqueued, st.GroupFramesSent, pending, st.GroupFramesLost))
	}
	if pending := inv.ap.PendingUnicast(); st.UnicastEnqueued != st.PSPollsServed+st.UnicastFiltered+pending+st.UnicastFramesLost {
		inv.record(now, RuleUnicastConservation,
			fmt.Sprintf("enqueued %d != served %d + filtered %d + pending %d + lost %d",
				st.UnicastEnqueued, st.PSPollsServed, st.UnicastFiltered, pending, st.UnicastFramesLost))
	}
}

var _ ap.Observer = (*Invariants)(nil)

// BeaconBuilt implements ap.Observer: it re-runs Algorithm 1 from the
// observed inputs (buffered destination ports × port table) and
// asserts the emitted BTIM equals it in both directions, plus the TIM
// broadcast-bit rule.
func (inv *Invariants) BeaconBuilt(now time.Duration, v ap.BeaconView) {
	buffered := len(v.BufferedPorts) + v.UnparsedBuffered
	if tim := v.Beacon.TIM; tim != nil {
		if tim.Broadcast && (!v.IsDTIM || buffered == 0) {
			inv.record(now, RuleTIMBroadcast,
				fmt.Sprintf("broadcast bit set with dtim=%v buffered=%d", v.IsDTIM, buffered))
		}
		if (tim.DTIMCount == 0) != v.IsDTIM {
			inv.record(now, RuleTIMBroadcast,
				fmt.Sprintf("DTIM count %d inconsistent with dtim=%v", tim.DTIMCount, v.IsDTIM))
		}
	}
	if v.Beacon.BTIM == nil {
		return
	}
	got, err := dot11.Decompress(v.Beacon.BTIM.Offset, v.Beacon.BTIM.PartialBitmap)
	if err != nil {
		inv.record(now, RuleBTIMSound, fmt.Sprintf("BTIM does not decompress: %v", err))
		return
	}
	var want dot11.VirtualBitmap
	table := inv.ap.Table()
	for _, port := range v.BufferedPorts {
		for _, aid := range table.Lookup(port) {
			want.Set(aid)
		}
	}
	for aid := dot11.AID(1); aid <= dot11.MaxAID; aid++ {
		g, w := got.Get(aid), want.Get(aid)
		switch {
		case g && !w:
			inv.record(now, RuleBTIMSound,
				fmt.Sprintf("BTIM bit set for AID %d but no buffered frame's port is open for it (ports %v)",
					aid, v.BufferedPorts))
		case !g && w:
			inv.record(now, RuleBTIMComplete,
				fmt.Sprintf("AID %d listens on a buffered frame's port (ports %v) but its BTIM bit is clear",
					aid, v.BufferedPorts))
		}
	}
}

// Finish closes the per-station timelines at the run's end time and
// runs the final energy-sign checks. Call it once after the simulation
// completes; end is the total observation window.
func (inv *Invariants) Finish(end time.Duration) {
	for _, w := range inv.stations {
		w.finish(end)
	}
}

// stationWatch tracks one station's suspend timeline and arrival log.
type stationWatch struct {
	inv *Invariants
	st  *station.Station
	idx int

	transitions   int
	suspended     bool // tracked state (stations start awake)
	lastChange    time.Duration
	suspendedTime time.Duration
	lastArrival   time.Duration
	arrivals      int
}

var _ station.Observer = (*stationWatch)(nil)

// StateChanged implements station.Observer.
func (w *stationWatch) StateChanged(now time.Duration, suspended bool) {
	if now < w.lastChange {
		w.inv.record(now, RuleTimeline,
			fmt.Sprintf("station %d: transition at %v before previous at %v", w.idx, now, w.lastChange))
	}
	if suspended == w.suspended {
		w.inv.record(now, RuleTimeline,
			fmt.Sprintf("station %d: repeated transition to suspended=%v", w.idx, suspended))
		return
	}
	if w.suspended {
		w.suspendedTime += now - w.lastChange
	}
	w.suspended = suspended
	w.lastChange = now
	w.transitions++
}

// ArrivalRecorded implements station.Observer.
func (w *stationWatch) ArrivalRecorded(now time.Duration, a energy.Arrival) {
	if a.At < w.lastArrival {
		w.inv.record(now, RuleArrivalOrder,
			fmt.Sprintf("station %d: arrival at %v after one at %v", w.idx, a.At, w.lastArrival))
	}
	if a.Length <= 0 || a.Wakelock < 0 || a.Rate <= 0 {
		w.inv.record(now, RuleArrivalOrder,
			fmt.Sprintf("station %d: unphysical arrival %+v", w.idx, a))
	}
	w.lastArrival = a.At
	w.arrivals++
}

// energyPrefixChecks bounds how many arrival prefixes the final
// non-negativity sweep evaluates.
const energyPrefixChecks = 4

// finish closes the timeline and checks energy non-negativity over a
// few arrival prefixes.
func (w *stationWatch) finish(end time.Duration) {
	if w.suspended {
		w.suspendedTime += end - w.lastChange
	}
	if w.suspendedTime < 0 || w.suspendedTime > end {
		w.inv.record(end, RuleTimeline,
			fmt.Sprintf("station %d: suspended time %v outside [0, %v]", w.idx, w.suspendedTime, end))
	}
	if w.st.Suspended() != w.suspended {
		w.inv.record(end, RuleTimeline,
			fmt.Sprintf("station %d: tracked state %v disagrees with Suspended()=%v",
				w.idx, w.suspended, w.st.Suspended()))
	}
	arrivals := w.st.Arrivals()
	if len(arrivals) != w.arrivals {
		w.inv.record(end, RuleArrivalOrder,
			fmt.Sprintf("station %d: %d observed arrivals but log holds %d", w.idx, w.arrivals, len(arrivals)))
	}
	if end <= 0 {
		return
	}
	cfg := energy.Config{Device: energy.NexusOne, Duration: end}
	for i := 1; i <= energyPrefixChecks; i++ {
		n := len(arrivals) * i / energyPrefixChecks
		b, err := energy.Compute(arrivals[:n], cfg)
		if err != nil {
			w.inv.record(end, RuleEnergyNonNegative,
				fmt.Sprintf("station %d: energy model rejected prefix %d: %v", w.idx, n, err))
			continue
		}
		if b.EbJ < 0 || b.EfJ < 0 || b.EwlJ < 0 || b.EstJ < 0 || b.EoJ < 0 ||
			b.SuspendFraction < 0 || b.SuspendFraction > 1 {
			w.inv.record(end, RuleEnergyNonNegative,
				fmt.Sprintf("station %d: negative component over prefix %d: %+v", w.idx, n, b))
		}
	}
}
