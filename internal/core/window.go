package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/medium"
	"repro/internal/sim"
	"repro/internal/station"
	"repro/internal/trace"
)

// WindowedNetwork is the intra-run parallel execution mode of the
// single-BSS simulator: the ESS shard discipline (one event stream per
// partition, lockstep windows, serial barrier merges) pulled down into
// a single AP's run. The paper's own mechanism makes DTIM intervals
// natural barriers — stations only interact with each other through
// the AP's beacon — so the assembly splits into:
//
//   - the hub: the ordinary Network (engine, medium, AP, trace replay),
//     advanced serially. It owns everything stations share: the AP's
//     group-frame buffer, the Client UDP Port Table, TIM/BTIM flag
//     computation, and the contention/fault draws of the AP-side
//     channel. The beacon is built exactly once, from merged state.
//   - groups: each AddStation/AddCohort call gets its own engine and
//     medium replica, carrying only that entity's events (beacon
//     handling, suspend machine, wakelocks, ACK timers, downlink fault
//     draws from the group's private seeded RNG stream).
//
// One window (B_k, B_k+1] runs as: hub phase (serial) → downlink
// dispatch (serial: every hub transmission is mirrored into the groups
// at its exact recorded delivery instant) → group phase (parallel:
// each group drains its events through the window on a worker pool) →
// barrier merge (serial: uplink captured inside the groups replays
// onto the hub medium ordered by (recorded start, group index), so
// port-table updates land at the barrier in station-index order).
//
// Determinism: the partition is fixed by assembly order, the workers
// only bound how many group drains run concurrently, every RNG stream
// (hub medium, per-group media, per-station retry jitter) is private
// to one serially-executed event stream, and both dispatch and merge
// are sorted serial replays — so frame streams are byte-identical and
// energy bit-identical for ANY worker count (asserted by the windowed
// equivalence cells in internal/check). Relative to the serial
// Network, uplink reaches the AP only at barriers: the schedule is a
// different (coarser) but equally valid interleaving, which is why
// windowed runs are compared against windowed runs, never against the
// legacy path, and why station ACK timeouts are stretched by one
// window (station.DefaultAckTimeout's doc).
type WindowedNetwork struct {
	// Hub is the serial heart of the assembly: AP, port table, trace
	// replay, and the canonical air. Its accessors (Stations, Cohorts,
	// Members, StationEnergy, CohortEnergy, AP stats) see every entity
	// added through the windowed Add methods. A tap installed on
	// Hub.Medium observes the canonical frame stream: group-local
	// mirrors are delivery machinery, not air.
	Hub *Network

	netCfg   NetworkConfig
	window   time.Duration
	workers  int
	faultFor func(group int) fault.Plan

	groups   []*windowGroup
	spans    []groupSpan // station-index ranges → owning group, in index order
	pendDown []airFrame  // hub transmissions awaiting dispatch, ordered by deliverAt
	merge    []mergedTx  // barrier-merge scratch
}

// windowGroup is one independent partition: a private engine and
// medium replica carrying one station's (or one cohort block's)
// events. up collects the group's own transmissions for the barrier.
type windowGroup struct {
	eng *sim.Engine
	med *medium.Medium
	up  []airFrame
}

// groupSpan maps the contiguous station-index range [first, first+count)
// to the group that owns it; unicast downlink routes through it.
type groupSpan struct {
	first, count, group int
}

// airFrame is one captured transmission: the shared immutable frame
// buffer plus its recorded start-of-airtime and delivery instants.
type airFrame struct {
	src       dot11.MACAddr
	raw       []byte
	rate      dot11.Rate
	start     time.Duration
	deliverAt time.Duration
}

// mergedTx tags a captured uplink frame with its group for the
// deterministic (start, group) barrier ordering.
type mergedTx struct {
	airFrame
	group int
}

// WindowConfig configures NewWindowedNetwork.
type WindowConfig struct {
	// Network configures the hub exactly like NewNetwork, except that
	// Network.Fault is rejected: one stateful plan cannot be consulted
	// from concurrently-draining groups. Use FaultFor instead.
	// Network.Loss (stateless per-delivery probability) applies to the
	// hub and to every group.
	Network NetworkConfig
	// Window is the barrier spacing (default one DTIM span — the
	// finest window at which HIDE stations can react to the AP anyway).
	// The window quantizes uplink latency, not correctness: any value
	// yields a deterministic, worker-count-independent run.
	Window time.Duration
	// Workers bounds how many groups drain a window concurrently: 0
	// selects runtime.GOMAXPROCS(0), 1 forces the sequential drain.
	// The output is byte-identical for any value.
	Workers int
	// FaultFor supplies each group's downlink fault plan by group
	// index (assembly order). Plans are per-group state, consulted only
	// from that group's serially-draining event stream. Nil leaves the
	// group channels pristine (beyond Network.Loss).
	FaultFor func(group int) fault.Plan
}

// NewWindowedNetwork builds the hub and an empty partition set.
func NewWindowedNetwork(cfg WindowConfig) (*WindowedNetwork, error) {
	if cfg.Network.Fault != nil {
		return nil, fmt.Errorf("core: windowed mode cannot share one stateful fault plan across concurrent groups; use WindowConfig.FaultFor")
	}
	hub, err := NewNetwork(cfg.Network)
	if err != nil {
		return nil, err
	}
	interval := cfg.Network.BeaconInterval
	if interval <= 0 {
		interval = dot11.DefaultBeaconInterval
	}
	dtimPeriod := cfg.Network.DTIMPeriod
	if dtimPeriod <= 0 {
		dtimPeriod = 3
	}
	window := cfg.Window
	if window <= 0 {
		window = interval * time.Duration(dtimPeriod)
	}
	w := &WindowedNetwork{
		Hub:      hub,
		netCfg:   cfg.Network,
		window:   window,
		workers:  cfg.Workers,
		faultFor: cfg.FaultFor,
	}
	// Downlink capture: every AP-sourced transmission is queued for
	// mirroring into the groups at its exact delivery instant. Frames
	// re-transmitted at the barrier merge carry their station source
	// and are skipped — no station ever receives another station's
	// uplink (port messages and PS-Polls are unicast to the AP), and
	// the groups already carried their own copies.
	hub.Medium.SetTxObserver(func(src dot11.MACAddr, raw []byte, rate dot11.Rate, start, deliverAt time.Duration) {
		if src != hub.BSSID {
			return
		}
		w.pendDown = append(w.pendDown, airFrame{src: src, raw: raw, rate: rate, start: start, deliverAt: deliverAt})
	})
	return w, nil
}

// Window returns the barrier spacing in effect.
func (w *WindowedNetwork) Window() time.Duration { return w.window }

// Groups returns the number of partitions (one per Add call).
func (w *WindowedNetwork) Groups() int { return len(w.groups) }

// newGroup creates the next partition: a fresh engine and a medium
// replica with a group-indexed seed, the shared Loss knob, and the
// group's own fault plan. Its transmissions are captured for the
// barrier merge.
func (w *WindowedNetwork) newGroup() (*windowGroup, error) {
	idx := len(w.groups)
	// Group-indexed derivation of the hub medium's seed (Seed+1), so a
	// group's fault stream is fixed by its position in assembly order —
	// never by worker count or scheduling.
	gseed := (w.netCfg.Seed + 1) ^ (0x9e3779b97f4a7c15 * uint64(idx+2))
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), gseed)
	if w.netCfg.Loss > 0 {
		if err := med.SetLoss(w.netCfg.Loss); err != nil {
			return nil, err
		}
	}
	if w.faultFor != nil {
		if plan := w.faultFor(idx); plan != nil {
			if w.netCfg.Loss > 0 {
				plan = fault.Compose(fault.Loss{P: w.netCfg.Loss}, plan)
			}
			med.SetFaultPlan(plan)
		}
	}
	g := &windowGroup{eng: eng, med: med}
	med.SetTxObserver(func(src dot11.MACAddr, raw []byte, rate dot11.Rate, start, deliverAt time.Duration) {
		g.up = append(g.up, airFrame{src: src, raw: raw, rate: rate, start: start, deliverAt: deliverAt})
	})
	w.groups = append(w.groups, g)
	return g, nil
}

// windowStationConfig is the hub's stationConfig plus the windowed ACK
// stretch: uplink crosses to the AP only at barriers, so the handshake
// round trip grows by up to one window and the stock timeout would
// misread that latency as loss and retry.
func (w *WindowedNetwork) windowStationConfig(idx int, mode station.Mode, li int) (station.Config, error) {
	scfg, err := w.Hub.stationConfig(idx, mode, li)
	if err != nil {
		return station.Config{}, err
	}
	scfg.AckTimeout = station.DefaultAckTimeout + w.window
	return scfg, nil
}

// AddStation attaches a station in its own partition, associated with
// the hub AP out of band (the direct-join path the equivalence suite
// and cohorts use — a frame-level association handshake would span
// barriers for no modelling gain).
func (w *WindowedNetwork) AddStation(mode station.Mode, openPorts []uint16) (*station.Station, error) {
	return w.AddStationListenInterval(mode, openPorts, 1)
}

// AddStationListenInterval is AddStation with an 802.11 listen
// interval.
func (w *WindowedNetwork) AddStationListenInterval(mode station.Mode, openPorts []uint16, li int) (*station.Station, error) {
	n := w.Hub
	if n.aidsUsed+1 > int(dot11.MaxAID) {
		return nil, fmt.Errorf("core: association space exhausted")
	}
	scfg, err := w.windowStationConfig(n.used+1, mode, li)
	if err != nil {
		return nil, err
	}
	g, err := w.newGroup()
	if err != nil {
		return nil, err
	}
	st := station.New(g.eng, g.med, scfg)
	for _, p := range openPorts {
		st.OpenPort(p)
	}
	aid, err := n.AP.Associate(scfg.Addr, mode == station.HIDE)
	if err != nil {
		return nil, err
	}
	if err := st.Join(aid); err != nil {
		return nil, err
	}
	w.spans = append(w.spans, groupSpan{first: n.used + 1, count: 1, group: len(w.groups) - 1})
	n.used++
	n.aidsUsed++
	n.entries = append(n.entries, netEntry{st: st, addr: scfg.Addr, mode: mode})
	return st, nil
}

// AddCohort attaches count identical stations as one cohort block in
// its own partition, with the same exact/aggregate regime selection as
// Network.AddCohort. Splits the fault plan forces stay inside the
// group: the carved segments live on the group's medium and keep their
// addresses inside the block's contiguous span.
func (w *WindowedNetwork) AddCohort(mode station.Mode, openPorts []uint16, count, li int) (*station.CohortStation, error) {
	n := w.Hub
	if count < 1 {
		return nil, fmt.Errorf("core: cohort count %d < 1", count)
	}
	scfg, err := w.windowStationConfig(n.used+1, mode, li)
	if err != nil {
		return nil, err
	}
	if n.used+count+0x010000 > dot11.MaxAddrBlock {
		return nil, fmt.Errorf("core: cohort of %d exceeds the station address space", count)
	}
	exact := count <= n.AP.FreeAIDs() && n.aidsUsed+count <= int(dot11.MaxAID)
	g, err := w.newGroup()
	if err != nil {
		return nil, err
	}
	c, err := station.NewCohort(g.eng, g.med, station.CohortConfig{
		Config:    scfg,
		Count:     count,
		Aggregate: !exact,
	})
	if err != nil {
		return nil, err
	}
	for _, p := range openPorts {
		c.OpenPort(p)
	}
	var first dot11.AID
	if exact {
		first, err = n.AP.AssociateCohort(scfg.Addr, count, mode == station.HIDE)
		n.aidsUsed += count
	} else {
		first, err = n.AP.AssociateAggregate(scfg.Addr, count, mode == station.HIDE)
		n.aidsUsed++
	}
	if err != nil {
		return nil, err
	}
	if err := c.JoinBlock(first); err != nil {
		return nil, err
	}
	w.spans = append(w.spans, groupSpan{first: n.used + 1, count: count, group: len(w.groups) - 1})
	n.used += count
	n.cohorts = append(n.cohorts, c)
	return c, nil
}

// ReplayContext schedules the trace on the hub and drives the whole
// assembly through lockstep windows to the standard replay deadline
// (trace duration plus one beacon interval of drain).
func (w *WindowedNetwork) ReplayContext(ctx context.Context, tr *trace.Trace) error {
	if err := w.Hub.ScheduleReplay(tr); err != nil {
		return err
	}
	return w.RunUntilContext(ctx, tr.Duration+dot11.DefaultBeaconInterval)
}

// Replay is ReplayContext without cancellation.
func (w *WindowedNetwork) Replay(tr *trace.Trace) error {
	return w.ReplayContext(context.Background(), tr)
}

// RunUntilContext advances hub and groups in lockstep windows to end.
// On cancellation the assembly is torn mid-window and must be
// discarded — partial state is not meaningful.
func (w *WindowedNetwork) RunUntilContext(ctx context.Context, end time.Duration) error {
	// A cancelled context aborts in-flight group drains between events,
	// so even a million-member window returns promptly.
	interrupted := func() bool { return ctx.Err() != nil }
	for _, g := range w.groups {
		g.eng.SetInterrupt(interrupted)
	}
	defer func() {
		for _, g := range w.groups {
			g.eng.SetInterrupt(nil)
		}
	}()
	for now := w.Hub.Engine.Now(); now < end; {
		next := now + w.window
		if next > end {
			next = end
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		// Hub phase: beacons tick, the AP reacts to the uplink merged at
		// the previous barrier (port-table updates, ACKs, PS-Poll
		// service), trace frames enqueue.
		w.Hub.Engine.RunUntil(next)
		// Serial dispatch: mirror every AP transmission due in this
		// window into the groups at its exact delivery instant.
		if err := w.dispatchDown(next); err != nil {
			return err
		}
		// Parallel group phase.
		if err := w.advanceGroups(ctx, next); err != nil {
			return err
		}
		// Serial barrier merge, in (recorded start, group index) order.
		w.mergeUp()
		now = next
	}
	return nil
}

// dispatchDown injects every pending hub transmission delivering at or
// before the barrier into the groups that can hear it: multicast to
// all, unicast to the owning group (resolved through the station-index
// spans). Frames delivering beyond the barrier stay queued — a
// congested hub channel can push deliveries windows into the future.
func (w *WindowedNetwork) dispatchDown(until time.Duration) error {
	n := 0
	for n < len(w.pendDown) && w.pendDown[n].deliverAt <= until {
		n++
	}
	for i := 0; i < n; i++ {
		f := &w.pendDown[i]
		dst, ok := frameDst(f.raw)
		if !ok {
			continue
		}
		if dst.IsMulticast() {
			for _, g := range w.groups {
				if err := g.med.InjectAt(f.src, f.raw, f.rate, f.deliverAt); err != nil {
					return err
				}
			}
			continue
		}
		if g := w.groupFor(dst); g != nil {
			if err := g.med.InjectAt(f.src, f.raw, f.rate, f.deliverAt); err != nil {
				return err
			}
		}
	}
	w.pendDown = w.pendDown[:copy(w.pendDown, w.pendDown[n:])]
	return nil
}

// groupFor resolves a unicast destination to its owning group via
// binary search over the contiguous station-index spans.
func (w *WindowedNetwork) groupFor(dst dot11.MACAddr) *windowGroup {
	off, ok := dot11.AddrOffset(stationBase, dst)
	if !ok || off == 0 {
		return nil
	}
	i := sort.Search(len(w.spans), func(i int) bool { return w.spans[i].first > off }) - 1
	if i < 0 {
		return nil
	}
	sp := w.spans[i]
	if off >= sp.first+sp.count {
		return nil
	}
	return w.groups[sp.group]
}

// advanceGroups drains every group's events through the window. The
// worker count bounds concurrency only: each group is one serial event
// stream, claimed atomically in index order, and the spawn is joined
// before the function returns (the gojoin invariant) — no goroutine
// outlives the window.
func (w *WindowedNetwork) advanceGroups(ctx context.Context, until time.Duration) error {
	workers := w.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(w.groups) {
		workers = len(w.groups)
	}
	if workers <= 1 {
		for _, g := range w.groups {
			if err := ctx.Err(); err != nil {
				return err
			}
			g.eng.RunUntil(until)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				k := int(next.Add(1)) - 1
				if k >= len(w.groups) {
					return
				}
				w.groups[k].eng.RunUntil(until)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// mergeUp replays the window's captured group transmissions onto the
// hub medium, ordered by (recorded start, group index) with capture
// order preserved within a group — station-index order at equal
// instants, because groups are created in station-index order. The hub
// medium re-applies its own FIFO contention from the barrier instant,
// so merged uplink serializes exactly as if the stations had
// transmitted on the shared channel at the barrier; the AP processes
// the deliveries in its next phase and the following beacon is built
// from the fully-merged table.
func (w *WindowedNetwork) mergeUp() {
	w.merge = w.merge[:0]
	for gi, g := range w.groups {
		for _, f := range g.up {
			w.merge = append(w.merge, mergedTx{airFrame: f, group: gi})
		}
		g.up = g.up[:0]
	}
	sort.SliceStable(w.merge, func(i, j int) bool {
		if w.merge[i].start != w.merge[j].start {
			return w.merge[i].start < w.merge[j].start
		}
		return w.merge[i].group < w.merge[j].group
	})
	for i := range w.merge {
		w.Hub.Medium.Transmit(w.merge[i].src, w.merge[i].raw, w.merge[i].rate)
		w.merge[i].raw = nil
	}
}

// frameDst extracts the receiver address (offset 4 in every frame type
// used here — Addr1/RA/BSSID).
func frameDst(raw []byte) (dot11.MACAddr, bool) {
	var dst dot11.MACAddr
	if len(raw) < 10 {
		return dst, false
	}
	copy(dst[:], raw[4:10])
	return dst, true
}
