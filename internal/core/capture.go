package core

import (
	"io"
	"time"

	"repro/internal/dot11"
	"repro/internal/trace"
)

// Capture records every frame on the medium — a virtual monitor-mode
// interface. WritePCAP exports the capture so external tools
// (wireshark/tshark) can inspect a simulation run, and ReadPCAP turns
// it back into a broadcast trace, closing the loop:
// generate → simulate → capture → re-analyze.
type Capture struct {
	records []trace.PCAPRecord
}

// StartCapture installs a monitor tap on the medium. It replaces any
// previously installed tap (including a Monitor's publisher), so use
// one observability mechanism per run.
func (n *Network) StartCapture() *Capture {
	c := &Capture{}
	n.Medium.SetTap(func(raw []byte, rate dot11.Rate, at time.Duration) {
		c.records = append(c.records, trace.PCAPRecord{
			At:  at,
			Raw: append([]byte(nil), raw...),
		})
	})
	return c
}

// Frames returns the number of captured frames.
func (c *Capture) Frames() int { return len(c.records) }

// WritePCAP exports the capture as a DLT 105 pcap file.
func (c *Capture) WritePCAP(w io.Writer) error {
	return trace.WritePCAPRecords(w, c.records)
}
