// Package fixture exercises the errdrop analyzer: discarded error
// results, the conventional exemptions, and a justified suppression.
package fixture

import (
	"errors"
	"fmt"
	"strings"
)

func work() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Dropped discards errors every way the check catches.
func Dropped() int {
	_ = work()     // want `error discarded via _`
	work()         // want `call discards its error result`
	n, _ := pair() // want `error discarded via _`
	return n
}

// Handled checks, exempts, and justifies.
func Handled() error {
	if err := work(); err != nil {
		return err
	}
	//lint:ignore errdrop fixture demonstrates a justified suppression
	_ = work()
	var b strings.Builder
	b.WriteString("ok")
	fmt.Println(b.String())
	return nil
}
