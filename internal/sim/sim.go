// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same instant fire in the order they
// were scheduled (stable FIFO tie-breaking), which keeps runs fully
// deterministic for a given seed and schedule order.
//
// All simulation time is expressed as time.Duration offsets from the
// start of the run. The engine never consults the wall clock.
//
// The engine is allocation-lean on its hot path: queue items are
// recycled through a free list (generation-guarded, so stale Handles
// cannot touch a recycled slot), the queue backing array is pre-sized,
// and the ScheduleArg variants let periodic callers (beacon ticks,
// frame deliveries, wakelock expiries) attach per-event state without
// allocating a closure per event.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Duration)

// ArgEvent is a callback with an attached argument. Callers that fire
// the same logical event many times (a medium delivering frames, an AP
// ticking beacons) bind one ArgEvent value once and pass per-event
// state through arg, avoiding a closure allocation per schedule.
type ArgEvent func(now time.Duration, arg any)

// Hook observes event dispatch: each registered hook runs after every
// dispatched event, at the event's virtual time. Hooks are how the
// cross-validation harness (internal/check) asserts protocol invariants
// on every simulation step; they must not schedule or cancel events.
type Hook func(now time.Duration)

// item is a scheduled event inside the queue. Items are recycled via
// the engine's free list; gen increments on every recycle so Handles
// referring to a previous occupancy turn inert.
type item struct {
	at    time.Duration
	seq   uint64 // insertion order, breaks ties deterministically
	sub   uint64 // sub-slot within seq (slot-mirrored events), 0 normally
	gen   uint64 // recycle generation, guards stale Handles
	fn    Event
	argFn ArgEvent
	arg   any
	done  bool // cancelled or fired
	idx   int  // heap index, -1 once popped
}

// Handle identifies a scheduled event so it can be cancelled. The
// generation stamp keeps a Handle inert once its event has fired or
// been cancelled and the slot recycled.
type Handle struct {
	it  *item
	gen uint64
}

// live reports whether the handle still refers to its original event.
func (h Handle) live() bool { return h.it != nil && h.it.gen == h.gen }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (h Handle) Cancel() bool {
	if !h.live() || h.it.done {
		return false
	}
	h.it.done = true
	h.it.fn = nil
	h.it.argFn = nil
	h.it.arg = nil
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool { return h.live() && !h.it.done }

// Slot identifies an event's position within its instant's firing
// order. An entity standing for many identical members (a cohort)
// schedules one event at a normal slot; when members peel off, each
// mirrors the pending event at the source's slot offset by its member
// index, so same-instant firing follows member order no matter what
// order — or how late — the members were carved off.
type Slot struct {
	seq, sub uint64
}

// Offset returns the slot k sub-positions after s. Distinct offsets
// from one source slot order deterministically; reusing an offset
// leaves the tied events' relative order unspecified.
func (s Slot) Offset(k int) Slot { return Slot{seq: s.seq, sub: s.sub + uint64(k)} }

// Slot returns the pending event's firing slot. The second result is
// false once the event has fired or been cancelled.
func (h Handle) Slot() (Slot, bool) {
	if !h.live() || h.it.done {
		return Slot{}, false
	}
	return Slot{seq: h.it.seq, sub: h.it.sub}, true
}

// At returns the virtual time the event is scheduled for, or zero once
// the event has fired or been cancelled and its slot recycled.
func (h Handle) At() time.Duration {
	if !h.live() {
		return 0
	}
	return h.it.at
}

// eventQueue implements heap.Interface ordered by (at, seq, sub).
type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].seq != q[j].seq {
		return q[i].seq < q[j].seq
	}
	return q[i].sub < q[j].sub
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.idx = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*q = old[:n-1]
	return it
}

// ErrSchedulePast is returned when an event is scheduled before the
// current virtual time.
var ErrSchedulePast = errors.New("sim: event scheduled in the past")

// initialQueueCapacity pre-sizes a New engine's queue and free list so
// steady-state simulations (a beacon tick, a handful of in-flight
// frames and timers) never grow the heap backing array.
const initialQueueCapacity = 64

// Engine is a discrete-event simulation engine. The zero value is ready
// to use; its clock starts at 0.
type Engine struct {
	now       time.Duration
	queue     eventQueue
	free      []*item // recycled items, LIFO
	seq       uint64
	fired     uint64
	running   bool
	stopped   bool
	hooks     []Hook
	interrupt func() bool
}

// New returns a new Engine with its clock at 0 and a pre-sized queue.
func New() *Engine {
	return &Engine{queue: make(eventQueue, 0, initialQueueCapacity)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events that have been dispatched.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not been drained yet.
func (e *Engine) Pending() int { return len(e.queue) }

// alloc takes an item from the free list or allocates a fresh one.
func (e *Engine) alloc() *item {
	if n := len(e.free); n > 0 {
		it := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return it
	}
	return &item{}
}

// release recycles a popped item. Bumping the generation first makes
// every outstanding Handle for this occupancy inert.
func (e *Engine) release(it *item) {
	it.gen++
	it.fn = nil
	it.argFn = nil
	it.arg = nil
	it.done = false
	it.idx = -1
	e.free = append(e.free, it)
}

// schedule enqueues a prepared item.
func (e *Engine) schedule(at time.Duration, fn Event, argFn ArgEvent, arg any) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	it := e.alloc()
	it.at = at
	it.seq = e.seq
	it.sub = 0
	it.fn = fn
	it.argFn = argFn
	it.arg = arg
	e.seq++
	heap.Push(&e.queue, it)
	return Handle{it: it, gen: it.gen}, nil
}

// ScheduleAtSlot schedules fn at absolute virtual time at, firing in
// slot order instead of insertion order among same-instant events. The
// slot should come from a pending event's Handle.Slot plus a distinct
// Offset; the event fires after that source event and before anything
// the source precedes.
func (e *Engine) ScheduleAtSlot(at time.Duration, slot Slot, fn Event) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	it := e.alloc()
	it.at = at
	it.seq = slot.seq
	it.sub = slot.sub
	it.fn = fn
	heap.Push(&e.queue, it)
	return Handle{it: it, gen: it.gen}, nil
}

// MustScheduleAtSlot is ScheduleAtSlot but panics on error.
func (e *Engine) MustScheduleAtSlot(at time.Duration, slot Slot, fn Event) Handle {
	h, err := e.ScheduleAtSlot(at, slot, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// ScheduleAt schedules fn to run at absolute virtual time at.
// It returns an error if at is before the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn Event) (Handle, error) {
	return e.schedule(at, fn, nil, nil)
}

// ScheduleAfter schedules fn to run delay after the current virtual time.
// A negative delay is an error.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) (Handle, error) {
	return e.schedule(e.now+delay, fn, nil, nil)
}

// ScheduleArgAt schedules fn(now, arg) at absolute virtual time at.
// Binding fn once and passing state through arg keeps per-event
// scheduling allocation-free (arg is stored as-is; pointer-shaped args
// do not allocate).
func (e *Engine) ScheduleArgAt(at time.Duration, fn ArgEvent, arg any) (Handle, error) {
	return e.schedule(at, nil, fn, arg)
}

// MustScheduleAt is ScheduleAt but panics on error. It is intended for
// simulation setup code where a past timestamp is a programming bug.
func (e *Engine) MustScheduleAt(at time.Duration, fn Event) Handle {
	h, err := e.ScheduleAt(at, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// MustScheduleAfter is ScheduleAfter but panics on error.
func (e *Engine) MustScheduleAfter(delay time.Duration, fn Event) Handle {
	h, err := e.ScheduleAfter(delay, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// MustScheduleArgAt is ScheduleArgAt but panics on error.
func (e *Engine) MustScheduleArgAt(at time.Duration, fn ArgEvent, arg any) Handle {
	h, err := e.ScheduleArgAt(at, fn, arg)
	if err != nil {
		panic(err)
	}
	return h
}

// Stop makes the current Run/RunUntil call return after the event being
// dispatched completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// SetInterrupt installs a predicate consulted before each event during
// Run/RunUntil: when it returns true the drain stops where it stands —
// pending events stay queued and the clock is NOT advanced to the
// deadline. It exists for abandoning a run from outside the event
// stream (the windowed-parallel runner points it at ctx.Err so a
// cancelled window aborts mid-drain instead of finishing a million
// queued deliveries); an interrupted engine's state is torn mid-window
// and must be discarded, never merged. A nil predicate (the default)
// restores the unconditional drain.
func (e *Engine) SetInterrupt(fn func() bool) { e.interrupt = fn }

// AddHook registers a dispatch hook. Hooks run in registration order
// after every dispatched event and cannot be removed.
func (e *Engine) AddHook(h Hook) { e.hooks = append(e.hooks, h) }

// Step dispatches the single next pending event, advancing the clock to
// its timestamp. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*item)
		if it.done {
			e.release(it)
			continue
		}
		e.now = it.at
		fn, argFn, arg := it.fn, it.argFn, it.arg
		e.release(it)
		e.fired++
		if fn != nil {
			fn(e.now)
		} else {
			argFn(e.now, arg)
		}
		for _, h := range e.hooks {
			h(e.now)
		}
		return true
	}
	return false
}

// Run dispatches events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() time.Duration {
	return e.RunUntil(-1)
}

// RunUntil dispatches events with timestamps <= deadline, then advances
// the clock to deadline if any events fired or the deadline exceeds the
// current time. A negative deadline means "run to exhaustion".
// It returns the final virtual time.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	if e.running {
		panic("sim: Run called reentrantly from an event handler")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		next, ok := e.peek()
		if !ok {
			break
		}
		if deadline >= 0 && next > deadline {
			break
		}
		if e.interrupt != nil && e.interrupt() {
			return e.now
		}
		e.Step()
	}
	if deadline >= 0 && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// NextEventAt returns the timestamp of the next live event, if any.
// Real-time drivers use it to decide how long to sleep between steps.
func (e *Engine) NextEventAt() (time.Duration, bool) { return e.peek() }

// peek returns the timestamp of the next live event, draining (and
// recycling) cancelled entries from the top of the heap.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		it := e.queue[0]
		if !it.done {
			return it.at, true
		}
		e.release(heap.Pop(&e.queue).(*item))
	}
	return 0, false
}
