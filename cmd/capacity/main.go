// Command capacity reproduces Figure 10: the decrease in network
// capacity caused by UDP Port Message traffic, computed from Bianchi's
// DCF saturation-throughput model under the paper's Table II 802.11b
// configuration, across network sizes and HIDE deployment fractions.
//
// Usage:
//
//	capacity [-interval 10s] [-ports 50] [-rate 11e6]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/dcfsim"
)

func main() {
	interval := flag.Duration("interval", 10*time.Second, "UDP Port Message sending interval (1/f)")
	ports := flag.Int("ports", 50, "UDP ports per message")
	rate := flag.Float64("rate", 11e6, "channel data rate in bits/s")
	validate := flag.Bool("validate", false, "cross-check the Bianchi model against the slotted DCF Monte-Carlo simulator")
	flag.Parse()

	cfg := hide.TableII()
	cfg.DataRate = *rate

	ctx, stop := cli.SignalContext()
	defer stop()

	fmt.Println("== baseline capacity (Bianchi, Table II) ==")
	fmt.Printf("%6s %10s %10s %12s\n", "N", "tau", "p", "S1 (Mb/s)")
	for _, n := range []int{5, 10, 20, 30, 40, 50} {
		r, err := hide.NetworkCapacity(cfg, n)
		if err != nil {
			cli.Exit("capacity", err)
		}
		fmt.Printf("%6d %10.4f %10.4f %12.3f\n", n, r.Tau, r.P, r.CapacityBps/1e6)
	}

	if *validate {
		fmt.Println("\n== Bianchi vs slotted DCF Monte-Carlo (60 s virtual) ==")
		fmt.Printf("%6s %12s %12s %9s\n", "N", "phi-model", "phi-sim", "error")
		for _, n := range []int{5, 10, 20, 30, 40, 50} {
			cli.Abort(ctx, "capacity")
			simRes, ana, relErr, err := dcfsim.ValidateAgainstBianchi(cfg, n, 60*time.Second, 42)
			if err != nil {
				cli.Exit("capacity", err)
			}
			fmt.Printf("%6d %12.4f %12.4f %8.2f%%\n", n, ana.Phi, simRes.Phi, relErr*100)
		}
	}

	fmt.Println("\n== Figure 10: decrease in network capacity ==")
	fmt.Printf("%6s", "N")
	fractions := []float64{0.05, 0.25, 0.50, 0.75}
	for _, p := range fractions {
		fmt.Printf(" %10s", fmt.Sprintf("p=%g%%", p*100))
	}
	fmt.Println()
	for _, n := range []int{5, 10, 20, 30, 40, 50} {
		cli.Abort(ctx, "capacity")
		fmt.Printf("%6d", n)
		for _, p := range fractions {
			params := hide.CapacityParams{
				HIDEFraction:    p,
				PortMsgInterval: *interval,
				PortsPerMsg:     *ports,
			}
			c, err := hide.CapacityOverhead(cfg, params, n)
			if err != nil {
				cli.Exit("capacity", err)
			}
			fmt.Printf(" %9.4f%%", c*100)
		}
		fmt.Println()
	}
}
