// Package check is the cross-validation harness that keeps the two
// independent implementations of HIDE's energy story honest against
// each other:
//
//   - a differential oracle (oracle.go) runs every (policy × trace ×
//     device × seed) cell through both the analytic Section IV energy
//     model (internal/energy over a policy-filtered trace) and the
//     frame-level protocol simulation (internal/core's Network of a
//     real AP and station exchanging marshalled frames), and asserts
//     per-component energy agreement within declared tolerance bands;
//   - runtime invariant hooks (invariants.go) observe every simulation
//     event and assert protocol soundness: BTIM bits only for clients
//     the Client UDP Port Table says are listening on a buffered
//     frame's destination port (Algorithm 1), frame conservation at
//     the AP, disjoint suspend/awake intervals covering the timeline,
//     and non-negative energy components;
//   - a golden-file harness (golden.go + golden_test.go) pins every
//     figure and table regeneration target against testdata snapshots
//     with tolerance-aware comparison and an -update flag.
//
// The oracle is exposed to operators as cmd/crosscheck.
package check

import (
	"fmt"
	"math"
)

// Tolerance declares the per-component agreement bands of the
// differential oracle. A component passes when its relative divergence
// is within the band or its absolute divergence is under the floor —
// the floor keeps near-zero components (e.g. Est on an always-awake
// trace) from failing on meaningless ratios.
//
// The two sides are not expected to agree exactly: the analytic model
// prices frames at their trace arrival times, while the protocol
// simulation delivers them at DTIM flush times (shifted by up to one
// beacon interval) and a HIDE station additionally receives the
// useless frames riding in a useful burst, which the paper's model
// idealizes away. The default bands bound that modelling gap; see
// EXPERIMENTS.md for the worst divergence observed across the paper's
// full evaluation matrix.
type Tolerance struct {
	// RelEb..RelTotal are relative bands per energy component.
	RelEb, RelEf, RelEwl, RelEst, RelEo, RelTotal float64
	// AbsJ is the absolute floor in joules for the energy components.
	AbsJ float64
	// AbsSuspend is the absolute band for the suspend-time fraction
	// (a value in [0, 1], so it is compared absolutely).
	AbsSuspend float64
}

// DefaultTolerance returns the declared cross-validation bands,
// calibrated against the full evaluation matrix (3 policies × 5
// scenarios × 2 devices × 3 seeds at the paper's capture durations;
// worst observed divergences are recorded in EXPERIMENTS.md):
//
//   - Eb and Eo are computed by the same closed-form expressions on
//     both sides and must agree exactly.
//   - Ewl, Est, and the suspend fraction are driven by the wakelock
//     state machine, which the DTIM alignment reproduces to within a
//     fraction of a percent; their bands are tight.
//   - Ef carries the one irreducible modelling gap: a protocol HIDE
//     station's radio also receives the useless frames riding in a
//     useful burst (the driver drops them without a wakelock), which
//     the paper's model prices as idle time instead of receive time.
//     Worst observed ≈ 42% relative on the heavy traces — but under
//     1.4% of the total, which is what the total band certifies.
func DefaultTolerance() Tolerance {
	return Tolerance{
		RelEb:      1e-9,
		RelEf:      0.50,
		RelEwl:     0.02,
		RelEst:     0.05,
		RelEo:      1e-9,
		RelTotal:   0.05,
		AbsJ:       0.5,
		AbsSuspend: 0.02,
	}
}

// normalized substitutes the defaults for a zero tolerance.
func (t Tolerance) normalized() Tolerance {
	if t == (Tolerance{}) {
		return DefaultTolerance()
	}
	return t
}

// relDiff returns the symmetric relative difference |a-b|/max(|a|,|b|)
// (zero when both are zero).
func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// ComponentDiff is one compared quantity of a differential-oracle cell.
type ComponentDiff struct {
	// Name identifies the component (Eb, Ef, Ewl, Est, Eo, total,
	// suspend).
	Name string
	// Analytic and Protocol are the two sides' values (joules, except
	// the suspend fraction).
	Analytic, Protocol float64
	// Rel is the symmetric relative difference.
	Rel float64
	// OK reports whether the divergence is inside the tolerance band.
	OK bool
}

// String formats the diff for the divergence table.
func (d ComponentDiff) String() string {
	status := "ok"
	if !d.OK {
		status = "FAIL"
	}
	return fmt.Sprintf("%-7s analytic=%11.4f protocol=%11.4f rel=%6.2f%% %s",
		d.Name, d.Analytic, d.Protocol, d.Rel*100, status)
}
