package check

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/porttable"
	"repro/internal/trace"
)

// testOracleDuration shortens the traces so the full matrix stays well
// under a second; the tolerance bands were calibrated at the paper's
// full durations and hold at this length too (the divergences are
// rate-like, not cumulative).
const testOracleDuration = 5 * time.Minute

// TestOracleMatrix is the acceptance grid: every paper policy × all
// five scenario traces × both Table I devices × three seeds must agree
// within the declared tolerance bands, with the runtime invariants
// attached to every protocol run.
func TestOracleMatrix(t *testing.T) {
	m := DefaultMatrix()
	m.Config.Duration = testOracleDuration
	res, err := m.Run()
	if err != nil {
		t.Fatalf("matrix run: %v", err)
	}
	want := len(m.Policies) * len(m.Scenarios) * len(m.Devices) * len(m.Seeds)
	if len(res.Results) != want {
		t.Fatalf("got %d cells, want %d", len(res.Results), want)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("oracle disagreement:\n%s", res.Report())
	}
	t.Logf("\n%s", res.Report())
}

// TestOracleExactComponents: Eb and Eo are computed by the same
// closed-form expressions on both sides, so they must agree to
// floating-point precision, not just within bands.
func TestOracleExactComponents(t *testing.T) {
	for _, kind := range []policy.Kind{policy.ReceiveAll, policy.HIDE} {
		res, err := RunCell(Cell{
			Policy:   kind,
			Scenario: trace.CSDept,
			Device:   energy.NexusOne,
		}, OracleConfig{Duration: 2 * time.Minute, CheckInvariants: true})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Analytic.EbJ != res.Protocol.EbJ {
			t.Errorf("%v: Eb differs: analytic %v protocol %v", kind, res.Analytic.EbJ, res.Protocol.EbJ)
		}
		if res.Analytic.EoJ != res.Protocol.EoJ {
			t.Errorf("%v: Eo differs: analytic %v protocol %v", kind, res.Analytic.EoJ, res.Protocol.EoJ)
		}
		if kind == policy.HIDE && res.Protocol.EoJ == 0 {
			t.Errorf("HIDE protocol side has zero overhead energy")
		}
	}
}

// TestOracleSeedsDiffer guards the seed plumbing: different seeds must
// generate different traces, otherwise the ≥3-seed acceptance grid
// would silently test one trace three times.
func TestOracleSeedsDiffer(t *testing.T) {
	t0, err := oracleTrace(trace.Starbucks, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := oracleTrace(trace.Starbucks, 1, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(t0.Frames) == len(t1.Frames) {
		same := true
		for i := range t0.Frames {
			if t0.Frames[i] != t1.Frames[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("seed 0 and seed 1 generated identical traces")
		}
	}
}

// TestAlignDTIMSchedule pins the alignment transform's semantics:
// frames land after their flush beacon in order, within one beacon
// interval plus the burst's airtime, and the MoreData chain terminates
// at each burst's end.
func TestAlignDTIMSchedule(t *testing.T) {
	tr, err := oracleTrace(trace.WML, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	useful := make([]bool, len(tr.Frames))
	aligned := alignDTIM(tr, useful, false)
	if len(aligned.Frames) != len(tr.Frames) {
		t.Fatalf("alignment changed frame count: %d -> %d", len(tr.Frames), len(aligned.Frames))
	}
	interval := dot11.DefaultBeaconInterval
	for i, f := range aligned.Frames {
		orig := tr.Frames[i]
		flush := (orig.At/interval + 1) * interval
		if f.At <= flush {
			t.Fatalf("frame %d delivered at %v, not after its flush beacon %v", i, f.At, flush)
		}
		if f.At > flush+interval {
			t.Fatalf("frame %d delivered at %v, more than an interval after flush %v", i, f.At, flush)
		}
		if i > 0 && f.At <= aligned.Frames[i-1].At {
			t.Fatalf("frame %d not strictly after frame %d (%v <= %v)", i, i-1, f.At, aligned.Frames[i-1].At)
		}
		last := i == len(aligned.Frames)-1 ||
			tr.Frames[i+1].At/interval != orig.At/interval
		if f.MoreData == last {
			t.Fatalf("frame %d: MoreData=%v but last-in-burst=%v", i, f.MoreData, last)
		}
	}
}

// TestBrokenAlgorithm1 injects the canonical fault — a flag computer
// that skips Algorithm 1's port lookup and reports nothing buffered —
// and requires BOTH detection layers to catch it: the BTIM completeness
// invariant (clients listening on a buffered frame's port lost their
// bit) and the differential oracle (the station sleeps through traffic
// the model prices).
func TestBrokenAlgorithm1(t *testing.T) {
	res, err := RunCell(Cell{
		Policy:   policy.HIDE,
		Scenario: trace.Classroom,
		Device:   energy.NexusOne,
	}, OracleConfig{
		Duration:        2 * time.Minute,
		CheckInvariants: true,
		Mutate: func(n *core.Network) {
			n.AP.SetFlagComputer(func([]uint16, *porttable.Table) *dot11.VirtualBitmap {
				return &dot11.VirtualBitmap{} // every BTIM bit cleared
			})
		},
	})
	if err != nil {
		t.Fatalf("mutated cell: %v", err)
	}
	if res.OK() {
		t.Fatalf("broken Algorithm 1 passed the oracle:\n%+v", res.Diffs)
	}
	var oracleCaught bool
	for _, d := range res.Diffs {
		if !d.OK {
			oracleCaught = true
		}
	}
	if !oracleCaught {
		t.Errorf("no energy component diverged under the broken flag computer")
	}
	var invariantCaught bool
	for _, v := range res.Violations {
		if v.Rule == RuleBTIMComplete {
			invariantCaught = true
		}
	}
	if !invariantCaught {
		t.Errorf("BTIM completeness invariant did not fire; violations: %v", res.Violations)
	}
}

// TestOverbroadAlgorithm1 injects the opposite fault — a flag computer
// that sets the client's bit unconditionally, degrading HIDE to
// receive-all — and requires the soundness invariant plus the oracle to
// catch it.
func TestOverbroadAlgorithm1(t *testing.T) {
	res, err := RunCell(Cell{
		Policy:   policy.HIDE,
		Scenario: trace.Classroom,
		Device:   energy.NexusOne,
	}, OracleConfig{
		Duration:        2 * time.Minute,
		CheckInvariants: true,
		Mutate: func(n *core.Network) {
			n.AP.SetFlagComputer(func([]uint16, *porttable.Table) *dot11.VirtualBitmap {
				var all dot11.VirtualBitmap
				all.Set(1) // the only station's AID, set regardless of ports
				return &all
			})
		},
	})
	if err != nil {
		t.Fatalf("mutated cell: %v", err)
	}
	if res.OK() {
		t.Fatal("over-broad flag computer passed the oracle")
	}
	var invariantCaught bool
	for _, v := range res.Violations {
		if v.Rule == RuleBTIMSound {
			invariantCaught = true
		}
	}
	if !invariantCaught {
		t.Errorf("BTIM soundness invariant did not fire; violations: %v", res.Violations)
	}
}

// TestCompareBands exercises the band logic directly: exact bands,
// relative bands, and the absolute floors.
func TestCompareBands(t *testing.T) {
	tol := DefaultTolerance()
	a := energy.Breakdown{EbJ: 10, EfJ: 5, EwlJ: 100, EstJ: 20, EoJ: 1, SuspendFraction: 0.5}
	p := a
	for _, d := range Compare(a, p, tol) {
		if !d.OK || d.Rel != 0 {
			t.Errorf("identical breakdowns: %s", d)
		}
	}
	// Ewl off by 10% breaks its 2% band (values far above the floor).
	p = a
	p.EwlJ *= 1.10
	var ewlFailed bool
	for _, d := range Compare(a, p, tol) {
		if d.Name == "Ewl" && !d.OK {
			ewlFailed = true
		}
	}
	if !ewlFailed {
		t.Error("10% Ewl divergence passed the 2% band")
	}
	// A large relative gap on a tiny component stays under the joule
	// floor.
	p = a
	p.EfJ = 0.01
	a2 := a
	a2.EfJ = 0.4
	for _, d := range Compare(a2, p, tol) {
		if d.Name == "Ef" && !d.OK {
			t.Errorf("sub-floor Ef divergence failed: %s", d)
		}
	}
}

// TestToleranceNormalized: the zero value selects the defaults, a
// non-zero value is kept as-is.
func TestToleranceNormalized(t *testing.T) {
	if (Tolerance{}).normalized() != DefaultTolerance() {
		t.Error("zero tolerance did not normalize to defaults")
	}
	custom := Tolerance{RelEb: 1, RelEf: 1, RelEwl: 1, RelEst: 1, RelEo: 1, RelTotal: 1, AbsJ: 1, AbsSuspend: 1}
	if custom.normalized() != custom {
		t.Error("custom tolerance was rewritten")
	}
}
