// Package fixture exercises the determinism analyzer: wall-clock
// reads, draws from the shared math/rand source, and order-sensitive
// map iteration. The test harness analyzes it as repro/internal/core,
// squarely inside deterministic territory.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Clock reads the wall clock two ways.
func Clock() time.Duration {
	start := time.Now()      // want `time.Now reads the wall clock`
	return time.Since(start) // want `time.Since reads the wall clock`
}

// GlobalRand draws from the shared source; the private seeded source
// next to it is fine.
func GlobalRand() float64 {
	r := rand.New(rand.NewSource(7))
	return r.Float64() + rand.Float64() // want `math/rand.Float64 draws from the shared global source`
}

// CollectUnsorted appends in map-iteration order and never sorts.
func CollectUnsorted(m map[int]bool) []int {
	var out []int
	for k := range m { // want `appends to "out" in map-iteration order`
		out = append(out, k)
	}
	return out
}

// CollectSorted is the blessed collect-then-sort idiom.
func CollectSorted(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ReturnMid returns a value from inside the iteration.
func ReturnMid(m map[int]string) string {
	for _, v := range m { // want `returns a value from inside map iteration`
		return v
	}
	return ""
}

// PrintMid writes output mid-iteration.
func PrintMid(m map[int]bool) {
	for k := range m { // want `writes output from inside map iteration`
		fmt.Println(k)
	}
}

// Suppressed shows a justified directive silencing one line.
func Suppressed() time.Time {
	//lint:ignore determinism fixture demonstrates a justified suppression
	return time.Now()
}
