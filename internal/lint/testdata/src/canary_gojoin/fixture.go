// Package fixture is the gojoin canary: a shard window runner that
// spawns one goroutine per shard and returns without joining them.
// The canary test asserts exactly ONE diagnostic, at the marked line.
package fixture

type shard struct{ now int }

func (s *shard) runUntil(t int) { s.now = t }

// RunWindow fans out the shards but forgets the barrier: the spawned
// goroutines keep mutating shard state after the "window" returns.
func RunWindow(shards []*shard, until int) {
	for _, sh := range shards {
		go sh.runUntil(until) // CANARY: spawned shard goroutine is never joined
	}
}
