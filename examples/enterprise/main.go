// Enterprise: capacity and delay planning for a HIDE rollout in a
// 50-client office network. Before enabling HIDE fleet-wide, a network
// operator wants to know what the port-sync chatter costs: how much
// peak throughput is displaced by UDP Port Messages (Section V-A) and
// how much packet round-trip time grows from AP-side table work
// (Section V-B), across rollout fractions and sync intervals.
//
// Run with:
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	const clients = 50
	cfg := hide.TableII()

	base, err := hide.NetworkCapacity(cfg, clients)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("office network: %d clients, 802.11b @ %.0f Mb/s\n", clients, cfg.DataRate/1e6)
	fmt.Printf("baseline saturation capacity: %.2f Mb/s (Bianchi phi=%.3f)\n\n",
		base.CapacityBps/1e6, base.Phi)

	// Sweep the rollout fraction at the default 10 s sync interval.
	fmt.Println("capacity cost of rolling HIDE out (10 s sync, 50 ports/msg):")
	for _, frac := range []float64{0.05, 0.25, 0.50, 0.75, 1.00} {
		params := hide.CapacityParams{
			HIDEFraction:    frac,
			PortMsgInterval: 10 * time.Second,
			PortsPerMsg:     50,
		}
		c, err := hide.CapacityOverhead(cfg, params, clients)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %3.0f%% of clients  ->  capacity -%.4f%%  (%.1f kb/s)\n",
			frac*100, c*100, c*base.CapacityBps/1e3)
	}

	// Sweep the sync interval for delay at full rollout.
	fmt.Println("\nRTT cost at full rollout (50 open ports per client):")
	for _, iv := range []time.Duration{10 * time.Second, 30 * time.Second, time.Minute, 10 * time.Minute} {
		p := hide.DelayDefaults()
		p.N = clients
		p.HIDEFraction = 1.0
		p.PortMsgInterval = iv
		d, err := hide.DelayOverhead(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  sync every %-6v ->  RTT +%.3f%%  (%.2f ms on a %.1f ms baseline)\n",
			iv, d*100, d*p.BaselineRTT.Seconds()*1000, p.BaselineRTT.Seconds()*1000)
	}

	// What do the client batteries get back? Evaluate HIDE:10% on the
	// heavy office trace for both device profiles.
	fmt.Println("\nwhat the phones gain (WML office trace, 10% useful broadcast):")
	tr, err := hide.GenerateTrace(hide.WML)
	if err != nil {
		log.Fatal(err)
	}
	for _, dev := range hide.Profiles {
		cmp, err := hide.CompareEnergy(tr, dev)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s receive-all %6.1f mW -> HIDE:10%% %6.1f mW (saves %.0f%%)\n",
			dev.Name, cmp.ReceiveAll.AvgPowerMW(), cmp.HIDE[0].AvgPowerMW(), 100*cmp.Savings(0))
	}
	fmt.Println("\nverdict: sub-0.2% capacity cost and ~2% RTT cost buy 35-50% broadcast-energy savings.")
}
