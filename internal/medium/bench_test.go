package medium

import (
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

// benchSink is a no-op receiver tallying deliveries.
type benchSink struct{ n int }

func (s *benchSink) Receive(raw []byte, rate dot11.Rate, at time.Duration) { s.n++ }

// benchMedium builds a medium with one source and extra subscriber
// nodes attached, returning the engine, medium, and source address.
func benchMedium(subscribers int) (*sim.Engine, *Medium, dot11.MACAddr) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	src := dot11.MACAddr{0x02, 0, 0, 0, 0, 0xfe}
	m.Attach(src, &benchSink{})
	for i := 0; i < subscribers; i++ {
		m.Attach(dot11.MACAddr{0x02, 0, 0, 0, 1, byte(i)}, &benchSink{})
	}
	return eng, m, src
}

// benchFrame marshals a representative broadcast data frame.
func benchFrame(dst dot11.MACAddr, src dot11.MACAddr) []byte {
	f := &dot11.DataFrame{
		Header: dot11.MACHeader{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: dst, Addr2: src, Addr3: src,
		},
		Payload: dot11.EncapsulateUDP(dot11.UDPDatagram{DstPort: 5353, Payload: make([]byte, 160)}),
	}
	return f.Marshal()
}

// BenchmarkBroadcastFanout measures one group-addressed transmission
// delivered to 16 subscribers — the per-DTIM flush hot path.
func BenchmarkBroadcastFanout(b *testing.B) {
	eng, m, src := benchMedium(16)
	frame := benchFrame(dot11.Broadcast, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(src, frame, dot11.Rate11Mbps)
		eng.Step()
	}
}

// BenchmarkUnicastDelivery measures one unicast transmission delivered
// to its single addressee among 16 attached nodes.
func BenchmarkUnicastDelivery(b *testing.B) {
	eng, m, src := benchMedium(16)
	dst := dot11.MACAddr{0x02, 0, 0, 0, 1, 3}
	frame := benchFrame(dst, src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(src, frame, dot11.Rate11Mbps)
		eng.Step()
	}
}
