// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same instant fire in the order they
// were scheduled (stable FIFO tie-breaking), which keeps runs fully
// deterministic for a given seed and schedule order.
//
// All simulation time is expressed as time.Duration offsets from the
// start of the run. The engine never consults the wall clock.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Event is a callback scheduled to run at a virtual time.
type Event func(now time.Duration)

// Hook observes event dispatch: each registered hook runs after every
// dispatched event, at the event's virtual time. Hooks are how the
// cross-validation harness (internal/check) asserts protocol invariants
// on every simulation step; they must not schedule or cancel events.
type Hook func(now time.Duration)

// item is a scheduled event inside the queue.
type item struct {
	at   time.Duration
	seq  uint64 // insertion order, breaks ties deterministically
	fn   Event
	done bool // cancelled
	idx  int  // heap index, -1 once popped
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	it *item
}

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or been cancelled is a no-op. Cancel reports whether the
// event was still pending.
func (h Handle) Cancel() bool {
	if h.it == nil || h.it.done {
		return false
	}
	h.it.done = true
	h.it.fn = nil
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool { return h.it != nil && !h.it.done }

// At returns the virtual time the event is scheduled for.
func (h Handle) At() time.Duration {
	if h.it == nil {
		return 0
	}
	return h.it.at
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*item

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x any) {
	it := x.(*item)
	it.idx = len(*q)
	*q = append(*q, it)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*q = old[:n-1]
	return it
}

// ErrSchedulePast is returned when an event is scheduled before the
// current virtual time.
var ErrSchedulePast = errors.New("sim: event scheduled in the past")

// Engine is a discrete-event simulation engine. The zero value is ready
// to use; its clock starts at 0.
type Engine struct {
	now     time.Duration
	queue   eventQueue
	seq     uint64
	fired   uint64
	running bool
	stopped bool
	hooks   []Hook
}

// New returns a new Engine with its clock at 0.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events that have been dispatched.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue, including
// cancelled events that have not been drained yet.
func (e *Engine) Pending() int { return len(e.queue) }

// ScheduleAt schedules fn to run at absolute virtual time at.
// It returns an error if at is before the current time.
func (e *Engine) ScheduleAt(at time.Duration, fn Event) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: at=%v now=%v", ErrSchedulePast, at, e.now)
	}
	it := &item{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, it)
	return Handle{it: it}, nil
}

// ScheduleAfter schedules fn to run delay after the current virtual time.
// A negative delay is an error.
func (e *Engine) ScheduleAfter(delay time.Duration, fn Event) (Handle, error) {
	return e.ScheduleAt(e.now+delay, fn)
}

// MustScheduleAt is ScheduleAt but panics on error. It is intended for
// simulation setup code where a past timestamp is a programming bug.
func (e *Engine) MustScheduleAt(at time.Duration, fn Event) Handle {
	h, err := e.ScheduleAt(at, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// MustScheduleAfter is ScheduleAfter but panics on error.
func (e *Engine) MustScheduleAfter(delay time.Duration, fn Event) Handle {
	h, err := e.ScheduleAfter(delay, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// Stop makes the current Run/RunUntil call return after the event being
// dispatched completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// AddHook registers a dispatch hook. Hooks run in registration order
// after every dispatched event and cannot be removed.
func (e *Engine) AddHook(h Hook) { e.hooks = append(e.hooks, h) }

// Step dispatches the single next pending event, advancing the clock to
// its timestamp. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		it := heap.Pop(&e.queue).(*item)
		if it.done {
			continue
		}
		it.done = true
		e.now = it.at
		fn := it.fn
		it.fn = nil
		e.fired++
		fn(e.now)
		for _, h := range e.hooks {
			h(e.now)
		}
		return true
	}
	return false
}

// Run dispatches events until the queue is empty or Stop is called.
// It returns the final virtual time.
func (e *Engine) Run() time.Duration {
	return e.RunUntil(-1)
}

// RunUntil dispatches events with timestamps <= deadline, then advances
// the clock to deadline if any events fired or the deadline exceeds the
// current time. A negative deadline means "run to exhaustion".
// It returns the final virtual time.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	if e.running {
		panic("sim: Run called reentrantly from an event handler")
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		next, ok := e.peek()
		if !ok {
			break
		}
		if deadline >= 0 && next > deadline {
			break
		}
		e.Step()
	}
	if deadline >= 0 && deadline > e.now {
		e.now = deadline
	}
	return e.now
}

// NextEventAt returns the timestamp of the next live event, if any.
// Real-time drivers use it to decide how long to sleep between steps.
func (e *Engine) NextEventAt() (time.Duration, bool) { return e.peek() }

// peek returns the timestamp of the next live event.
func (e *Engine) peek() (time.Duration, bool) {
	for len(e.queue) > 0 {
		it := e.queue[0]
		if !it.done {
			return it.at, true
		}
		heap.Pop(&e.queue)
	}
	return 0, false
}
