package lint

import (
	"go/ast"
	"go/types"
)

// GoJoin protects barrier-window determinism: the engine's worker pool
// and the ESS's one-goroutine-per-shard windows are only deterministic
// because every spawned goroutine is JOINED before the spawning
// function returns — results are reduced in index order after
// wg.Wait(), and cross-shard effects merge serially at the barrier. A
// goroutine that escapes its function keeps mutating shared state
// while the barrier logic believes the window is closed, which breaks
// byte-identity only under scheduler timing — the worst kind of flake.
// The analyzer walks the CFG from each go statement and requires a
// join operation (sync.WaitGroup.Wait, a channel receive, or ranging
// over a channel) on every path to the function's normal exit.
var GoJoin = &Analyzer{
	Name: "gojoin",
	Doc: "every go statement in internal/engine, internal/ess, internal/netmedium, " +
		"internal/daemon, internal/control, and internal/core must be joined " +
		"(WaitGroup.Wait or a channel receive) on all normal exit paths of the " +
		"enclosing function, so no goroutine outlives the barrier window that " +
		"spawned it",
	Run: runGoJoin,
}

// goJoinScope lists the packages whose goroutines must be joined.
// internal/core joined the scope with the windowed-parallel runner:
// its per-window group workers (WindowedNetwork.advanceGroups) carry
// exactly the barrier discipline this analyzer protects.
var goJoinScope = map[string]bool{
	"internal/engine":    true,
	"internal/ess":       true,
	"internal/netmedium": true,
	"internal/daemon":    true,
	"internal/control":   true,
	"internal/core":      true,
}

func runGoJoin(p *Pass) error {
	if !goJoinScope[p.RelPath()] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkGoJoin(p, fn.Body)
			// Function literals spawn and join independently of their
			// enclosing function (a worker body may itself fan out).
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkGoJoin(p, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// checkGoJoin builds the body's CFG and verifies each top-level go
// statement (go statements inside nested FuncLits belong to those
// literals) is joined on all normal exit paths.
func checkGoJoin(p *Pass, body *ast.BlockStmt) {
	var gos []*ast.GoStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			gos = append(gos, n)
		}
		return true
	})
	if len(gos) == 0 {
		return
	}
	g := buildCFG(body, p.TypesInfo)
	// A join in a defer covers every exit, normal or unwinding.
	for _, d := range g.defers {
		if callsJoin(p.TypesInfo, d.Call) {
			return
		}
	}
	for _, goStmt := range gos {
		blk, idx := g.findStmt(goStmt)
		if blk == nil {
			continue // inside a compound head; conservative skip
		}
		joined := g.allPathsHit(blk, idx+1, func(s ast.Stmt) bool {
			return stmtJoins(p.TypesInfo, s)
		})
		if !joined {
			p.Reportf(goStmt.Pos(), "goroutine may outlive the enclosing function on some exit path; join it (WaitGroup.Wait or a channel receive) before every return so the barrier window stays closed")
		}
	}
}

// stmtJoins reports whether the statement performs a join: a
// WaitGroup.Wait call, a receive expression, or ranging over a channel.
func stmtJoins(info *types.Info, s ast.Stmt) bool {
	if rs, ok := s.(*ast.RangeStmt); ok {
		if t := info.TypeOf(rs.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return true
			}
		}
		return false
	}
	found := false
	for _, n := range evaluatedNodes(s) {
		ast.Inspect(n, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					found = true
				}
			case *ast.CallExpr:
				if callsJoin(info, n) {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// callsJoin reports whether call is (*sync.WaitGroup).Wait, or a
// receive hiding inside the call's arguments.
func callsJoin(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if ok && sel.Sel.Name == "Wait" {
		t := info.TypeOf(sel.X)
		if ptr, okp := t.(*types.Pointer); okp {
			t = ptr.Elem()
		}
		if named, okn := t.(*types.Named); okn {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
				return true
			}
		}
	}
	for _, a := range call.Args {
		if ue, okU := ast.Unparen(a).(*ast.UnaryExpr); okU && ue.Op.String() == "<-" {
			return true
		}
	}
	return false
}
