// Dataflow over the function CFG: a forward "may" analysis tracking,
// for each local variable, whether its value may carry a fact — may
// alias a shared frame buffer, may be the handle of a read-only file.
// This is reaching definitions folded to a per-variable boolean: at
// each assignment the defined variable's fact is recomputed from the
// facts reaching the right-hand side, and joins take the union (a
// variable MAY carry the fact if any predecessor path says so). The
// analysis is intraprocedural and field-insensitive; calls are opaque
// (their results carry no fact unless the carrier function says
// otherwise). Over-approximation is by design: the analyzers built on
// this report writes that MAY hit a shared buffer, and the suppression
// directive exists for the cases the approximation cannot see through.
package lint

import (
	"go/ast"
	"go/types"
)

// factSet maps local objects to "may carry the fact".
type factSet map[types.Object]bool

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// equal reports set equality (only true entries are ever stored).
func (s factSet) equal(o factSet) bool {
	if len(s) != len(o) {
		return false
	}
	//lint:ignore determinism set equality is order-independent: the answer is a conjunction over all keys, so any iteration order returns the same bool
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// union adds o's facts, reporting whether anything changed.
func (s factSet) union(o factSet) bool {
	changed := false
	for k := range o {
		if !s[k] {
			s[k] = true
			changed = true
		}
	}
	return changed
}

// A flowAnalysis computes per-block entry fact sets over a CFG.
//
// carries decides whether evaluating expr yields a value carrying the
// fact, given the facts in force at that point — the transfer
// function's value lattice. It must handle idents (look them up in
// facts) and whatever value-propagating expressions matter to the
// client (slicing, append, &x, conversions ...).
type flowAnalysis struct {
	info    *types.Info
	carries func(expr ast.Expr, facts factSet) bool
}

// solve runs the forward fixpoint from seed (facts at function entry)
// and returns the fact set at the ENTRY of every block, indexed like
// g.blocks. Statement-level positions inside a block are recovered by
// replaying transfers with stepStmt.
func (fa *flowAnalysis) solve(g *funcCFG, seed factSet) []factSet {
	in := make([]factSet, len(g.blocks))
	for i := range in {
		in[i] = factSet{}
	}
	in[g.entry.index] = seed.clone()

	work := []*cfgBlock{g.entry}
	onWork := make([]bool, len(g.blocks))
	onWork[g.entry.index] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		onWork[b.index] = false
		out := in[b.index].clone()
		for _, s := range b.stmts {
			fa.stepStmt(s, out)
		}
		for _, succ := range b.succs {
			if in[succ.index].union(out) && !onWork[succ.index] {
				onWork[succ.index] = true
				work = append(work, succ)
			}
		}
	}
	return in
}

// stepStmt applies one statement's transfer to facts in place. Only
// the parts of compound statements that execute at this CFG point are
// considered (evaluatedNodes).
func (fa *flowAnalysis) stepStmt(s ast.Stmt, facts factSet) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		fa.stepAssign(s, facts)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					val := false
					if i < len(vs.Values) {
						val = fa.carries(vs.Values[i], facts)
					}
					fa.setIdent(name, val, facts)
				}
			}
		}
	case *ast.RangeStmt:
		// Ranging over a carrying slice binds the VALUE variable to
		// elements, not the slice — for []byte frame buffers the element
		// is a byte, so range never propagates the fact. The key/value
		// vars are killed (fresh per-iteration values).
		if s.Key != nil {
			if id, ok := s.Key.(*ast.Ident); ok {
				fa.setIdent(id, false, facts)
			}
		}
		if s.Value != nil {
			if id, ok := s.Value.(*ast.Ident); ok {
				fa.setIdent(id, false, facts)
			}
		}
	}
}

// stepAssign transfers one assignment.
func (fa *flowAnalysis) stepAssign(s *ast.AssignStmt, facts factSet) {
	if len(s.Lhs) == len(s.Rhs) {
		// Evaluate all RHS facts before any kill (parallel assignment).
		vals := make([]bool, len(s.Rhs))
		for i, r := range s.Rhs {
			if s.Tok.String() == "=" || s.Tok.String() == ":=" {
				vals[i] = fa.carries(r, facts)
			} else {
				// Compound ops (+=, ^=, ...) preserve the LHS fact: x ^= k
				// on a carrying byte does not change what x aliases.
				if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok {
					vals[i] = facts[fa.objOf(id)]
				}
			}
		}
		for i, l := range s.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				fa.setIdent(id, vals[i], facts)
			}
		}
		return
	}
	// Multi-value form x, y := f(): calls are opaque, so every defined
	// variable is killed.
	for _, l := range s.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			fa.setIdent(id, false, facts)
		}
	}
}

func (fa *flowAnalysis) objOf(id *ast.Ident) types.Object {
	if obj := fa.info.Defs[id]; obj != nil {
		return obj
	}
	return fa.info.Uses[id]
}

func (fa *flowAnalysis) setIdent(id *ast.Ident, val bool, facts factSet) {
	obj := fa.objOf(id)
	if obj == nil || id.Name == "_" {
		return
	}
	if val {
		facts[obj] = true
	} else {
		delete(facts, obj)
	}
}

// aliasCarrier returns a carries function for may-alias of slice or
// pointer-shaped values: an identifier aliases if its object is in the
// fact set; slicing, parenthesizing, and growing with append preserve
// aliasing; append onto a fresh backing array (append([]byte(nil), ...)
// or append(x[:0:0], ...)) is the sanctioned clone idiom and does NOT
// alias; everything else (calls, literals, index loads) is fresh.
func aliasCarrier(info *types.Info) func(expr ast.Expr, facts factSet) bool {
	var carries func(expr ast.Expr, facts factSet) bool
	carries = func(expr ast.Expr, facts factSet) bool {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			return obj != nil && facts[obj]
		case *ast.SliceExpr:
			// A full-slice expression with capacity 0 (x[:0:0]) cannot
			// expose the backing array to an append, so append grows into
			// fresh memory; plain sub-slices keep aliasing.
			if e.Slice3 && isZeroLiteral(e.Max) && isZeroLiteral(e.High) {
				return false
			}
			return carries(e.X, facts)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(info, id) && len(e.Args) > 0 {
				return carries(e.Args[0], facts)
			}
			return false
		case *ast.UnaryExpr:
			if e.Op.String() == "&" {
				return carries(e.X, facts)
			}
			return false
		case *ast.StarExpr:
			return carries(e.X, facts)
		default:
			return false
		}
	}
	return carries
}

// isZeroLiteral reports whether e is the integer literal 0.
func isZeroLiteral(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// factsAt replays a block's transfers up to (but excluding) statement
// index idx, returning the facts in force just before it executes.
func (fa *flowAnalysis) factsAt(blockEntry factSet, b *cfgBlock, idx int) factSet {
	facts := blockEntry.clone()
	for i := 0; i < idx && i < len(b.stmts); i++ {
		fa.stepStmt(b.stmts[i], facts)
	}
	return facts
}
