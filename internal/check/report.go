package check

import (
	"fmt"
	"strings"
)

// componentOrder fixes the report row order to match Compare's output.
var componentOrder = []string{"Eb", "Ef", "Ewl", "Est", "Eo", "total", "suspend"}

// WorstCase pairs a component's worst observed divergence with the cell
// it occurred in.
type WorstCase struct {
	Cell Cell
	Diff ComponentDiff
}

// WorstByComponent returns, for each compared component, the cell with
// the largest relative divergence across the whole sweep — the table
// EXPERIMENTS.md records and cmd/crosscheck prints.
func (r *MatrixResult) WorstByComponent() []WorstCase {
	worst := make(map[string]WorstCase, len(componentOrder))
	for _, res := range r.Results {
		for _, d := range res.Diffs {
			if w, ok := worst[d.Name]; !ok || d.Rel > w.Diff.Rel {
				worst[d.Name] = WorstCase{Cell: res.Cell, Diff: d}
			}
		}
	}
	out := make([]WorstCase, 0, len(worst))
	for _, name := range componentOrder {
		if w, ok := worst[name]; ok {
			out = append(out, w)
		}
	}
	return out
}

// Report renders the sweep summary: the per-component worst-divergence
// table, then every failing cell's full diff and invariant violations.
func (r *MatrixResult) Report() string {
	var b strings.Builder
	fails := r.Failures()
	fmt.Fprintf(&b, "differential oracle: %d cells, %d failed\n", len(r.Results), len(fails))
	b.WriteString("worst divergence per component:\n")
	for _, w := range r.WorstByComponent() {
		fmt.Fprintf(&b, "  %s  (%s)\n", w.Diff, w.Cell)
	}
	for _, f := range fails {
		fmt.Fprintf(&b, "FAIL %s\n", f.Cell)
		for _, d := range f.Diffs {
			fmt.Fprintf(&b, "  %s\n", d)
		}
		for _, v := range f.Violations {
			fmt.Fprintf(&b, "  invariant: %s\n", v)
		}
	}
	return b.String()
}
