// Package fixture is the windowed-parallel gojoin canary: a
// WindowedNetwork-shaped group advance whose worker pool claims groups
// atomically but returns without waiting for the workers — the exact
// leak the barrier merge in internal/core must never have. The canary
// test asserts exactly ONE diagnostic, at the marked line.
package fixture

import "sync/atomic"

type group struct{ now int }

func (g *group) runUntil(t int) { g.now = t }

// advanceGroups fans the groups over a worker pool but forgets the
// WaitGroup: the merge that follows would read group state while the
// workers are still draining their windows.
func advanceGroups(groups []*group, until, workers int) {
	var next atomic.Int64
	for i := 0; i < workers; i++ {
		go func() { // CANARY: window worker is never joined before the barrier merge
			for {
				k := int(next.Add(1)) - 1
				if k >= len(groups) {
					return
				}
				groups[k].runUntil(until)
			}
		}()
	}
}
