// Package airlink carries 802.11 frames over real UDP sockets — the
// "virtual air" between the hided AP daemon and hidec client daemons
// running as separate processes. It implements the same medium.Channel
// surface as the in-process emulated medium, so the exact same AP and
// station code runs over loopback or a LAN, in wall-clock time, with
// the engine driven by sim.RunRealtime.
//
// Framing reuses the netmedium wire protocol: each UDP datagram is one
// MsgFrame message carrying the raw 802.11 frame and its nominal PHY
// rate. The hub (AP side) learns peer addresses from the source MAC of
// frames it receives and routes unicast frames accordingly; group
// frames fan out to every known peer.
//
// Two hardening layers ride on top of the plain relay. The hub can
// carry a live fault.Plan (SetFaultPlan): every outgoing delivery is
// judged per peer — drop, corrupt, duplicate — exactly like the
// in-process medium judges deliveries, so the chaos scenarios from
// internal/fault run against a real daemon over real sockets. And the
// hub tracks peer liveness (SetLiveness + PingPeers): a client process
// that died without disassociating stops answering pings and is
// evicted after a configurable number of missed sweeps, with a
// callback so the daemon can clean up AP-side state and log the
// eviction.
package airlink

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/medium"
	"repro/internal/netmedium"
	"repro/internal/sim"
)

// maxDatagram bounds reads.
const maxDatagram = 8192

// srcMAC extracts the transmitter address of a raw frame (Addr2/TA at
// offset 10 for everything this protocol sends except ACKs).
func srcMAC(raw []byte) (dot11.MACAddr, bool) {
	var src dot11.MACAddr
	if len(raw) < 16 || dot11.Classify(raw) == dot11.KindACK {
		return src, false
	}
	copy(src[:], raw[10:16])
	return src, true
}

// dstMAC extracts the receiver address (offset 4 for all frame types).
func dstMAC(raw []byte) (dot11.MACAddr, bool) {
	var dst dot11.MACAddr
	if len(raw) < 10 {
		return dst, false
	}
	copy(dst[:], raw[4:10])
	return dst, true
}

// Liveness parameterizes the hub's peer-eviction sweep (PingPeers).
type Liveness struct {
	// MaxMissedPings is how many consecutive sweeps a peer may leave
	// unanswered before eviction (default 3).
	MaxMissedPings int
}

// normalized fills defaults.
func (l Liveness) normalized() Liveness {
	if l.MaxMissedPings <= 0 {
		l.MaxMissedPings = 3
	}
	return l
}

// hubPeer is one learned client endpoint with its liveness state.
type hubPeer struct {
	mac    dot11.MACAddr
	addr   net.Addr
	missed int // consecutive unanswered ping sweeps
}

// Hub is the AP-side link: it owns the listening socket, learns peers,
// and fans group frames out to all of them.
type Hub struct {
	pc     net.PacketConn
	inject chan<- sim.Event

	mu    sync.Mutex
	node  medium.Node // the local AP
	peers map[dot11.MACAddr]*hubPeer
	// order keeps the peers in learn order so fan-out (and the fault
	// plan's per-peer RNG draws) replay in a deterministic sequence for
	// a given association order, mirroring the in-process medium's
	// attach-order fanout.
	order []dot11.MACAddr
	stats HubStats

	plan    fault.Plan
	rng     *sim.RNG
	clock   func() time.Duration // virtual time for fault windows; nil = zero
	live    Liveness
	onEvict func(mac dot11.MACAddr)
}

// HubStats counts hub activity.
type HubStats struct {
	FramesIn   int
	FramesOut  int
	Peers      int
	BadPackets int
	// Fault-plan verdicts applied to outgoing deliveries.
	FaultDropped    int
	FaultCorrupted  int
	FaultDuplicated int
	// Liveness sweep activity.
	PingsSent int
	Evictions int
}

// NewHub wraps a listening socket. Received frames are delivered to
// the attached node via the inject channel (on the engine goroutine).
func NewHub(pc net.PacketConn, inject chan<- sim.Event) *Hub {
	return &Hub{pc: pc, inject: inject, peers: make(map[dot11.MACAddr]*hubPeer)}
}

var _ medium.Channel = (*Hub)(nil)

// Addr returns the hub's listen address.
func (h *Hub) Addr() net.Addr { return h.pc.LocalAddr() }

// Stats returns a snapshot of the counters.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	st.Peers = len(h.peers)
	return st
}

// Attach registers the local node (the AP). Only one node attaches to
// a hub; stations live in other processes.
func (h *Hub) Attach(addr dot11.MACAddr, n medium.Node) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.node = n
}

// SetClock installs the virtual-time source stamped onto fault
// deliveries (so Window-scoped plans work on the live link). Call it
// with the owning engine's Now before the engine runs; a nil fn stamps
// zero. The clock is only read from Transmit, which runs on the engine
// goroutine.
func (h *Hub) SetClock(fn func() time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clock = fn
}

// SetFaultPlan installs (or, with nil, clears) a fault plan on the
// live link. Every outgoing delivery — one per peer for group frames —
// is judged by the plan with randomness drawn from a fresh RNG seeded
// with seed, exactly mirroring the in-process medium's fault layer, so
// the PR-4 chaos scenarios can be driven against a running daemon.
func (h *Hub) SetFaultPlan(plan fault.Plan, seed uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.plan = plan
	if plan != nil {
		h.rng = sim.NewRNG(seed)
	} else {
		h.rng = nil
	}
}

// FaultActive reports whether a fault plan is currently installed.
func (h *Hub) FaultActive() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.plan != nil
}

// SetLiveness configures the peer-eviction sweep and the eviction
// callback. onEvict runs with the hub lock released, from whichever
// goroutine calls PingPeers (the daemon drives sweeps from the engine
// goroutine, so callbacks may safely touch engine state there).
func (h *Hub) SetLiveness(cfg Liveness, onEvict func(mac dot11.MACAddr)) {
	cfg = cfg.normalized()
	h.mu.Lock()
	defer h.mu.Unlock()
	h.live = cfg
	h.onEvict = onEvict
}

// PingPeers runs one liveness sweep: peers that have left
// MaxMissedPings consecutive sweeps unanswered are evicted, the rest
// are pinged again. Any datagram from a peer — a frame, a pong —
// resets its counter. Drive it at a steady cadence on the engine
// clock; evicted MACs are reported through the SetLiveness callback.
func (h *Hub) PingPeers() {
	ping, err := netmedium.Message{Type: netmedium.MsgPing}.Marshal()
	if err != nil {
		return
	}
	var evicted []dot11.MACAddr
	h.mu.Lock()
	live := h.live.normalized()
	kept := h.order[:0]
	for _, mac := range h.order {
		p := h.peers[mac]
		if p == nil {
			continue
		}
		if p.missed >= live.MaxMissedPings {
			delete(h.peers, mac)
			h.stats.Evictions++
			evicted = append(evicted, mac)
			continue
		}
		kept = append(kept, mac)
		p.missed++
		if _, err := h.pc.WriteTo(ping, p.addr); err == nil {
			h.stats.PingsSent++
		}
	}
	h.order = kept
	onEvict := h.onEvict
	h.mu.Unlock()
	if onEvict != nil {
		for _, mac := range evicted {
			onEvict(mac)
		}
	}
}

// DropPeer forgets a peer immediately (a disassociated client); its
// next frame re-learns it.
func (h *Hub) DropPeer(mac dot11.MACAddr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.removePeerLocked(mac)
}

// removePeerLocked deletes a peer from the map and the fan-out order.
// Callers hold h.mu.
func (h *Hub) removePeerLocked(mac dot11.MACAddr) {
	if _, ok := h.peers[mac]; !ok {
		return
	}
	delete(h.peers, mac)
	for i, m := range h.order {
		if m == mac {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
}

// Transmit sends a frame to its addressee(s) over UDP, applying the
// installed fault plan per delivery. It is called from the engine
// goroutine only.
func (h *Hub) Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration {
	dst, ok := dstMAC(raw)
	if !ok {
		return 0
	}
	msg, err := netmedium.Message{Type: netmedium.MsgFrame, Rate: rate, Payload: raw}.Marshal()
	if err != nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if dst.IsMulticast() {
		for _, mac := range h.order {
			peer := h.peers[mac]
			if peer == nil {
				continue
			}
			h.deliverLocked(src, dst, mac, peer.addr, raw, msg, rate)
		}
		return 0
	}
	if peer, ok := h.peers[dst]; ok {
		h.deliverLocked(src, dst, dst, peer.addr, raw, msg, rate)
	}
	return 0
}

// deliverLocked judges one (frame, peer) delivery against the fault
// plan and writes the surviving copies. Callers hold h.mu.
func (h *Hub) deliverLocked(src, dst, rcv dot11.MACAddr, to net.Addr, raw, msg []byte, rate dot11.Rate) {
	out := msg
	if h.plan != nil {
		at := time.Duration(0)
		if h.clock != nil {
			at = h.clock()
		}
		v := h.plan.Deliver(fault.Delivery{
			Raw:  raw,
			Kind: dot11.Classify(raw),
			Src:  src,
			Dst:  dst,
			Rcv:  rcv,
			At:   at,
		}, h.rng)
		if v.Drop {
			h.stats.FaultDropped++
			return
		}
		if v.Corrupt {
			// Corrupt a private copy of the receiver's datagram; the
			// shared msg buffer keeps serving the other peers untouched.
			cp := append([]byte(nil), msg...)
			if len(raw) > 0 {
				i := int(h.rng.Uint64() % uint64(len(raw)))
				cp[len(cp)-len(raw)+i] ^= 0xff
			}
			out = cp
			h.stats.FaultCorrupted++
		}
		if v.Duplicate {
			h.stats.FaultDuplicated++
			if _, err := h.pc.WriteTo(out, to); err == nil {
				h.stats.FramesOut++
			}
		}
	}
	if _, err := h.pc.WriteTo(out, to); err == nil {
		h.stats.FramesOut++
	}
}

// Serve reads datagrams until the socket closes, delivering frames to
// the attached node through the inject channel. Returns net.ErrClosed
// after Close.
func (h *Hub) Serve() error {
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := h.pc.ReadFrom(buf)
		if err != nil {
			return err
		}
		m, err := netmedium.Unmarshal(buf[:n])
		if err != nil {
			h.mu.Lock()
			h.stats.BadPackets++
			h.mu.Unlock()
			continue
		}
		switch m.Type {
		case netmedium.MsgFrame:
		case netmedium.MsgPong:
			h.mu.Lock()
			h.touchLocked(from)
			h.mu.Unlock()
			continue
		case netmedium.MsgPing:
			h.mu.Lock()
			h.touchLocked(from)
			h.mu.Unlock()
			if pong, err := (netmedium.Message{Type: netmedium.MsgPong}).Marshal(); err == nil {
				//lint:ignore errdrop best-effort pong; a lost reply looks like a lost packet
				_, _ = h.pc.WriteTo(pong, from)
			}
			continue
		default:
			h.mu.Lock()
			h.stats.BadPackets++
			h.mu.Unlock()
			continue
		}
		raw := m.Payload
		h.mu.Lock()
		if src, ok := srcMAC(raw); ok {
			h.learnLocked(src, from)
		}
		node := h.node
		h.stats.FramesIn++
		h.mu.Unlock()
		if node == nil {
			continue
		}
		rate := m.Rate
		h.inject <- func(now time.Duration) {
			node.Receive(raw, rate, now)
		}
	}
}

// learnLocked records (or refreshes) a peer endpoint. Callers hold h.mu.
func (h *Hub) learnLocked(mac dot11.MACAddr, from net.Addr) {
	if p, ok := h.peers[mac]; ok {
		p.addr = from
		p.missed = 0
		return
	}
	h.peers[mac] = &hubPeer{mac: mac, addr: from}
	h.order = append(h.order, mac)
}

// touchLocked resets the liveness counter of the peer at a transport
// address (pongs carry no MAC). Callers hold h.mu.
func (h *Hub) touchLocked(from net.Addr) {
	fs := from.String()
	for _, p := range h.peers {
		if p.addr.String() == fs {
			p.missed = 0
		}
	}
}

// Close shuts the hub's socket; Serve returns.
func (h *Hub) Close() error { return h.pc.Close() }

// Link is the client-side leg: a connected UDP socket to the hub.
type Link struct {
	conn   net.Conn
	inject chan<- sim.Event

	mu           sync.Mutex
	node         medium.Node
	stats        LinkStats
	writeTimeout time.Duration
	readIdle     time.Duration
	onIdle       func()
}

// LinkStats counts link activity.
type LinkStats struct {
	FramesIn   int
	FramesOut  int
	BadPackets int
	// WriteErrors counts sends that failed or timed out (per-operation
	// write deadline); the frame is treated as lost on the air.
	WriteErrors int
	// IdlePeriods counts read-idle expiries (no datagram from the hub
	// for the configured window) reported through the idle callback.
	IdlePeriods int
	// PingsAnswered counts hub liveness pings answered with a pong.
	PingsAnswered int
}

// Dial connects to a hub.
func Dial(addr string, inject chan<- sim.Event) (*Link, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("airlink: dialing hub: %w", err)
	}
	return &Link{conn: conn, inject: inject}, nil
}

var _ medium.Channel = (*Link)(nil)

// Attach registers the local node (the station).
func (l *Link) Attach(addr dot11.MACAddr, n medium.Node) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.node = n
}

// SetIOTimeouts installs per-operation deadlines: every Transmit gets
// a write deadline of write (0 leaves writes unbounded), and Serve
// arms a read deadline of readIdle per read — when no datagram arrives
// within it, onIdle fires (from the Serve goroutine) and reading
// continues, so a silent hub surfaces as idleness instead of a hung
// read. Configure before Serve starts.
func (l *Link) SetIOTimeouts(write, readIdle time.Duration, onIdle func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writeTimeout = write
	l.readIdle = readIdle
	l.onIdle = onIdle
}

// Transmit sends a frame to the hub, bounded by the configured write
// deadline.
func (l *Link) Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration {
	msg, err := netmedium.Message{Type: netmedium.MsgFrame, Rate: rate, Payload: raw}.Marshal()
	if err != nil {
		return 0
	}
	l.mu.Lock()
	wt := l.writeTimeout
	l.mu.Unlock()
	if wt > 0 {
		//lint:ignore errdrop a deadline that cannot be set surfaces as the write error below
		_ = l.conn.SetWriteDeadline(time.Now().Add(wt))
	}
	_, err = l.conn.Write(msg)
	l.mu.Lock()
	if err == nil {
		l.stats.FramesOut++
	} else {
		l.stats.WriteErrors++
	}
	l.mu.Unlock()
	return 0
}

// Stats returns a snapshot of the counters.
func (l *Link) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Serve reads frames from the hub until the socket closes, answering
// liveness pings and reporting read-idle periods.
func (l *Link) Serve() error {
	buf := make([]byte, maxDatagram)
	for {
		l.mu.Lock()
		idle := l.readIdle
		onIdle := l.onIdle
		l.mu.Unlock()
		if idle > 0 {
			//lint:ignore errdrop a deadline that cannot be set degrades to a blocking read
			_ = l.conn.SetReadDeadline(time.Now().Add(idle))
		}
		n, err := l.conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && idle > 0 {
				l.mu.Lock()
				l.stats.IdlePeriods++
				l.mu.Unlock()
				if onIdle != nil {
					onIdle()
				}
				continue
			}
			return err
		}
		m, err := netmedium.Unmarshal(buf[:n])
		if err != nil {
			l.mu.Lock()
			l.stats.BadPackets++
			l.mu.Unlock()
			continue
		}
		switch m.Type {
		case netmedium.MsgPing:
			// Answer the hub's liveness sweep so an idle (suspended)
			// client is not evicted between frames.
			if pong, perr := (netmedium.Message{Type: netmedium.MsgPong}).Marshal(); perr == nil {
				//lint:ignore errdrop best-effort pong; a missed reply costs one sweep
				_, _ = l.conn.Write(pong)
			}
			l.mu.Lock()
			l.stats.PingsAnswered++
			l.mu.Unlock()
			continue
		case netmedium.MsgPong:
			continue
		case netmedium.MsgFrame:
		default:
			l.mu.Lock()
			l.stats.BadPackets++
			l.mu.Unlock()
			continue
		}
		l.mu.Lock()
		node := l.node
		l.stats.FramesIn++
		l.mu.Unlock()
		if node == nil {
			continue
		}
		raw := m.Payload
		rate := m.Rate
		l.inject <- func(now time.Duration) {
			node.Receive(raw, rate, now)
		}
	}
}

// Close shuts the link; Serve returns.
func (l *Link) Close() error { return l.conn.Close() }
