// ESS equivalence and roam-fault layer.
//
// Two claims anchor the multi-AP assembly to everything already
// proven about the single-AP path:
//
//  1. A K=1 ESS with no mobility IS the single-AP simulation: the
//     windowed barrier execution must reproduce a plain core.Network
//     replay byte-for-byte — identical frame streams (fingerprint of
//     every transmission's instant, rate, and bytes), identical
//     per-station counters and arrival logs, and bit-identical energy
//     breakdowns (compared with ==, never a tolerance).
//  2. Under churn and a lossy distribution system, the ESS stays
//     deterministic: the same seed produces the same shard
//     fingerprints and stats for any worker count, and the
//     replicated-handoff miss count stays between the lossless-warm
//     floor (zero) and the cold ceiling.
package check

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/ess"
	"repro/internal/policy"
	"repro/internal/station"
	"repro/internal/trace"
)

// ESSEquivCell identifies one K=1 ESS-vs-Network comparison.
type ESSEquivCell struct {
	Policy   policy.Kind
	Scenario trace.Scenario
	Size     int
}

// String labels the cell for reports.
func (c ESSEquivCell) String() string {
	return fmt.Sprintf("ess/%s/%s/n%d", c.Policy, c.Scenario, c.Size)
}

// ESSEquivResult is one compared cell; Mismatch names the first
// diverging observable ("" = exact).
type ESSEquivResult struct {
	Cell     ESSEquivCell
	Frames   int
	Mismatch string
}

// OK reports whether the cell was exact.
func (r ESSEquivResult) OK() bool { return r.Mismatch == "" }

// runNetworkSide replays the trace against a plain single-AP network
// with frame-level association — the exact call sequence
// ess.AddStation mirrors.
func runNetworkSide(tr *trace.Trace, kind policy.Kind, open []uint16, seed uint64, size int) (*equivSide, error) {
	mode, err := modeFor(kind)
	if err != nil {
		return nil, err
	}
	n, err := core.NewNetwork(core.NetworkConfig{
		DTIMPeriod: 1,
		HIDE:       kind == policy.HIDE,
		Seed:       seed,
	})
	if err != nil {
		return nil, err
	}
	d := newAirDigest()
	n.Medium.SetTap(d.tap)
	var sts []*station.Station
	for i := 0; i < size; i++ {
		st, err := n.AddStation(mode, open)
		if err != nil {
			return nil, err
		}
		sts = append(sts, st)
	}
	if err := n.Replay(tr); err != nil {
		return nil, err
	}
	side := &equivSide{fp: d.h.Sum64(), frames: d.frames}
	for _, st := range sts {
		side.arrivals = append(side.arrivals, st.Arrivals())
		side.stats = append(side.stats, st.Stats())
	}
	return side, nil
}

// runESSSide replays the trace against a K=1 ESS with the same
// population.
func runESSSide(ctx context.Context, tr *trace.Trace, kind policy.Kind, open []uint16, seed uint64, size int) (*equivSide, error) {
	mode, err := modeFor(kind)
	if err != nil {
		return nil, err
	}
	e, err := ess.New(ess.Config{
		APs: 1,
		Network: core.NetworkConfig{
			DTIMPeriod: 1,
			HIDE:       kind == policy.HIDE,
			Seed:       seed,
		},
	})
	if err != nil {
		return nil, err
	}
	d := newAirDigest()
	e.Shards()[0].Net.Medium.SetTap(d.tap)
	for i := 0; i < size; i++ {
		if _, err := e.AddStation(mode, open, 1); err != nil {
			return nil, err
		}
	}
	if err := e.RunContext(ctx, tr); err != nil {
		return nil, err
	}
	side := &equivSide{fp: d.h.Sum64(), frames: d.frames}
	for _, st := range e.Stations() {
		side.arrivals = append(side.arrivals, st.Arrivals())
		side.stats = append(side.stats, st.Stats())
	}
	return side, nil
}

// ESSEquivConfig tunes the K=1 equivalence sweep.
type ESSEquivConfig struct {
	// Duration truncates the scenario traces (zero keeps them whole).
	Duration time.Duration
	// UsefulTarget is the port-derived useful-traffic fraction
	// (default 0.10).
	UsefulTarget float64
	// Seed perturbs the trace generator and seeds both assemblies.
	Seed uint64
	// Devices price the bit-identity check (default both Table I
	// devices).
	Devices []energy.Profile
	// Workers bounds the matrix parallelism.
	Workers int
}

// normalized fills defaults.
func (c ESSEquivConfig) normalized() ESSEquivConfig {
	if c.UsefulTarget <= 0 {
		c.UsefulTarget = 0.10
	}
	if len(c.Devices) == 0 {
		c.Devices = []energy.Profile{energy.NexusOne, energy.GalaxyS4}
	}
	return c
}

// equiv projects the config onto the shared diffSides parameter type.
func (c ESSEquivConfig) equiv() EquivConfig { return EquivConfig{Devices: c.Devices} }

// RunESSEquivCellContext runs one K=1 comparison.
func RunESSEquivCellContext(ctx context.Context, c ESSEquivCell, cfg ESSEquivConfig) (ESSEquivResult, error) {
	cfg = cfg.normalized()
	if c.Size < 1 {
		return ESSEquivResult{}, fmt.Errorf("check: ess equivalence size %d < 1", c.Size)
	}
	tr, err := oracleTrace(c.Scenario, cfg.Seed, cfg.Duration)
	if err != nil {
		return ESSEquivResult{}, err
	}
	open := sortedPorts(trace.OpenPortsForFraction(tr, cfg.UsefulTarget))

	net, err := runNetworkSide(tr, c.Policy, open, cfg.Seed, c.Size)
	if err != nil {
		return ESSEquivResult{}, fmt.Errorf("check: %v network side: %w", c, err)
	}
	es, err := runESSSide(ctx, tr, c.Policy, open, cfg.Seed, c.Size)
	if err != nil {
		return ESSEquivResult{}, fmt.Errorf("check: %v ess side: %w", c, err)
	}

	res := ESSEquivResult{Cell: c, Frames: net.frames}
	res.Mismatch = diffSides(es, net, c.Size, cfg.equiv(), tr.Duration+dot11.DefaultBeaconInterval)
	return res, nil
}

// ESSEquivMatrix is the K=1 byte-identity sweep.
type ESSEquivMatrix struct {
	Policies  []policy.Kind
	Scenarios []trace.Scenario
	Size      int
	Config    ESSEquivConfig
}

// DefaultESSEquivMatrix covers the acceptance grid: three policies ×
// three scenario traces, a handful of stations each.
func DefaultESSEquivMatrix() ESSEquivMatrix {
	return ESSEquivMatrix{
		Policies:  []policy.Kind{policy.ReceiveAll, policy.ClientSide, policy.HIDE},
		Scenarios: []trace.Scenario{trace.Classroom, trace.Starbucks, trace.WRL},
		Size:      4,
	}
}

// ESSEquivMatrixResult collects every cell of a sweep.
type ESSEquivMatrixResult struct {
	Results []ESSEquivResult
}

// RunContext executes the sweep over the worker pool; cell order is
// policy-major then scenario, identical for any worker count.
func (m ESSEquivMatrix) RunContext(ctx context.Context) (*ESSEquivMatrixResult, error) {
	cfg := m.Config.normalized()
	size := m.Size
	if size < 1 {
		size = 4
	}
	var cells []ESSEquivCell
	for _, kind := range m.Policies {
		for _, sc := range m.Scenarios {
			cells = append(cells, ESSEquivCell{Policy: kind, Scenario: sc, Size: size})
		}
	}
	res, err := engine.Map(ctx, cfg.Workers, len(cells), func(ctx context.Context, i int) (ESSEquivResult, error) {
		if err := ctx.Err(); err != nil {
			return ESSEquivResult{}, err
		}
		return RunESSEquivCellContext(ctx, cells[i], cfg)
	})
	if err != nil {
		return nil, err
	}
	return &ESSEquivMatrixResult{Results: res}, nil
}

// Failures returns the diverging cells.
func (r *ESSEquivMatrixResult) Failures() []ESSEquivResult {
	var out []ESSEquivResult
	for _, c := range r.Results {
		if !c.OK() {
			out = append(out, c)
		}
	}
	return out
}

// Err returns nil when every cell was exact.
func (r *ESSEquivMatrixResult) Err() error {
	fails := r.Failures()
	if len(fails) == 0 {
		return nil
	}
	names := make([]string, len(fails))
	for i, f := range fails {
		names[i] = fmt.Sprintf("%v (%s)", f.Cell, f.Mismatch)
	}
	return fmt.Errorf("check: %d/%d ESS equivalence cells diverged: %v", len(fails), len(r.Results), names)
}

// ESSRoamFaultConfig tunes the roam-under-fault check: a churning ESS
// with a lossy distribution system, run repeatedly to assert
// determinism and the miss-count ordering.
type ESSRoamFaultConfig struct {
	// APs, Stations, RoamRate size the churn (defaults 4, 12, 3/min).
	APs      int
	Stations int
	RoamRate float64
	// DSLoss is the DS-channel drop probability (default 0.5 — an
	// aggressively lossy distribution system).
	DSLoss float64
	// Scenario and Duration select the trace (the zero Scenario is
	// Classroom; Duration defaults to 2 min).
	Scenario trace.Scenario
	Duration time.Duration
	// Seed drives trace generation and mobility.
	Seed uint64
}

// normalized fills defaults.
func (c ESSRoamFaultConfig) normalized() ESSRoamFaultConfig {
	if c.APs <= 0 {
		c.APs = 4
	}
	if c.Stations <= 0 {
		c.Stations = 12
	}
	if c.RoamRate <= 0 {
		c.RoamRate = 3
	}
	if c.DSLoss <= 0 {
		c.DSLoss = 0.5
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Minute
	}
	return c
}

// ESSRoamFaultResult reports the roam-under-fault check.
type ESSRoamFaultResult struct {
	// Cold, Lossy, Warm are the three compared regimes' stats: no
	// replication, replication over the faulted DS, and lossless
	// replication.
	Cold  ess.Stats
	Lossy ess.Stats
	Warm  ess.Stats
	// Mismatch names the first violated property ("" = all held).
	Mismatch string
}

// OK reports whether every property held.
func (r ESSRoamFaultResult) OK() bool { return r.Mismatch == "" }

// RunESSRoamFaultContext drives the churn-under-DS-fault check:
//
//   - determinism: the lossy run, repeated with the same seed at
//     worker counts 1 and 4, produces identical shard fingerprints
//     and identical stats;
//   - ordering: lossless replication records zero resync-window
//     misses, and the faulted DS lands between the warm floor and
//     the cold ceiling;
//   - liveness: roams happen in every regime and dropped DS records
//     are actually observed.
func RunESSRoamFaultContext(ctx context.Context, cfg ESSRoamFaultConfig) (ESSRoamFaultResult, error) {
	cfg = cfg.normalized()

	run := func(replicate bool, dsLoss float64, workers int) ([]uint64, ess.Stats, error) {
		tr, err := oracleTrace(cfg.Scenario, cfg.Seed, cfg.Duration)
		if err != nil {
			return nil, ess.Stats{}, err
		}
		open := sortedPorts(trace.OpenPortsForFraction(tr, 0.10))
		e, err := ess.New(ess.Config{
			APs: cfg.APs,
			Network: core.NetworkConfig{
				DTIMPeriod: 1,
				HIDE:       true,
				Harden:     true,
				Seed:       cfg.Seed,
			},
			Replicate: replicate,
			RoamRate:  cfg.RoamRate,
			RoamSeed:  cfg.Seed ^ 0xa24baed4963ee407,
			DSLoss:    dsLoss,
			Workers:   workers,
		})
		if err != nil {
			return nil, ess.Stats{}, err
		}
		var digests []*airDigest
		for _, sh := range e.Shards() {
			d := newAirDigest()
			sh.Net.Medium.SetTap(d.tap)
			digests = append(digests, d)
		}
		for i := 0; i < cfg.Stations; i++ {
			if _, err := e.AddStation(station.HIDE, open, 1); err != nil {
				return nil, ess.Stats{}, err
			}
		}
		if err := e.RunContext(ctx, tr); err != nil {
			return nil, ess.Stats{}, err
		}
		fps := make([]uint64, len(digests))
		for i, d := range digests {
			fps[i] = d.h.Sum64()
		}
		return fps, e.Stats(), nil
	}

	var res ESSRoamFaultResult
	fail := func(format string, args ...any) (ESSRoamFaultResult, error) {
		res.Mismatch = fmt.Sprintf(format, args...)
		return res, nil
	}

	lossyFP1, lossy1, err := run(true, cfg.DSLoss, 1)
	if err != nil {
		return res, err
	}
	lossyFP4, lossy4, err := run(true, cfg.DSLoss, 4)
	if err != nil {
		return res, err
	}
	res.Lossy = lossy1
	_, cold, err := run(false, 0, 0)
	if err != nil {
		return res, err
	}
	res.Cold = cold
	_, warm, err := run(true, 0, 0)
	if err != nil {
		return res, err
	}
	res.Warm = warm

	if lossy1 != lossy4 {
		return fail("lossy-DS stats diverged across worker counts: %+v vs %+v", lossy1, lossy4)
	}
	for i := range lossyFP1 {
		if lossyFP1[i] != lossyFP4[i] {
			return fail("shard %d fingerprint diverged across worker counts: %016x vs %016x", i, lossyFP1[i], lossyFP4[i])
		}
	}
	if cold.Roams == 0 || warm.Roams == 0 || lossy1.Roams == 0 {
		return fail("churn inert: cold %d, warm %d, lossy %d roams", cold.Roams, warm.Roams, lossy1.Roams)
	}
	if warm.ResyncWindowMisses != 0 {
		return fail("lossless replication recorded %d resync-window misses, want 0", warm.ResyncWindowMisses)
	}
	if cold.ResyncWindowMisses == 0 {
		return fail("cold handoffs recorded no resync-window misses (no window to measure)")
	}
	if lossy1.ResyncWindowMisses > cold.ResyncWindowMisses {
		return fail("faulted DS missed more than cold handoffs: %d > %d", lossy1.ResyncWindowMisses, cold.ResyncWindowMisses)
	}
	if lossy1.DSRecordsDropped == 0 {
		return fail("DS fault inert: no replication records dropped at DSLoss=%v", cfg.DSLoss)
	}
	return res, nil
}
