package station

import (
	"testing"
	"time"

	"repro/internal/ap"
	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/sim"
)

var bssid = dot11.MACAddr{2, 0, 0, 0, 0, 1}

// rig assembles an engine, medium, HIDE-capable AP, and one station.
func rig(t *testing.T, mode Mode, apHIDE bool, ports []uint16) (*sim.Engine, *ap.AP, *Station) {
	t.Helper()
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: apHIDE, DTIMPeriod: 2})
	st := New(eng, med, Config{
		Addr:  dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID: bssid,
		Mode:  mode,
	})
	for _, p := range ports {
		st.OpenPort(p)
	}
	aid, err := a.Associate(st.cfg.Addr, mode == HIDE)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Join(aid); err != nil {
		t.Fatal(err)
	}
	return eng, a, st
}

func TestJoinRejectsInvalidAID(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	st := New(eng, med, Config{Addr: dot11.MACAddr{2, 0, 0, 0, 0, 9}, BSSID: bssid})
	if err := st.Join(0); err == nil {
		t.Fatal("AID 0 accepted")
	}
}

func TestInitialPortSyncHandshake(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353, 53})
	a.Start()
	eng.RunUntil(500 * time.Millisecond)

	if st.Stats().PortMsgsSent == 0 {
		t.Fatal("HIDE station never sent a UDP Port Message")
	}
	if st.Stats().ACKsReceived == 0 {
		t.Fatal("station never received the ACK")
	}
	if !st.Suspended() {
		t.Fatal("station not suspended after handshake")
	}
	if !a.Table().Listening(5353, st.AID()) {
		t.Fatal("AP table missing the station's ports")
	}
}

func TestLegacyStationSuspendsWithoutHandshake(t *testing.T) {
	eng, a, st := rig(t, Legacy, false, nil)
	a.Start()
	eng.RunUntil(200 * time.Millisecond)
	if st.Stats().PortMsgsSent != 0 {
		t.Fatal("legacy station sent a UDP Port Message")
	}
	if !st.Suspended() {
		t.Fatal("legacy station failed to suspend")
	}
}

func TestHIDEStationSkipsUselessBroadcast(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	// Give the handshake time, then inject a useless broadcast frame.
	eng.MustScheduleAt(300*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
	})
	eng.RunUntil(2 * time.Second)

	if got := st.Stats().GroupReceived; got != 0 {
		t.Fatalf("HIDE station received %d useless group frames, want 0", got)
	}
	if !st.Suspended() {
		t.Fatal("station should remain suspended")
	}
}

func TestHIDEStationWakesForUsefulBroadcast(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	eng.MustScheduleAt(300*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353, Payload: make([]byte, 64)}, dot11.Rate1Mbps)
	})
	eng.RunUntil(3 * time.Second)

	if st.Stats().GroupUseful != 1 {
		t.Fatalf("useful frames = %d, want 1", st.Stats().GroupUseful)
	}
	if st.Stats().Wakeups == 0 {
		t.Fatal("station never woke for the useful frame")
	}
	if !st.Suspended() {
		t.Fatal("station should re-suspend after the wakelock expires")
	}
	// Every suspend after a wake re-sends the port message.
	if st.Stats().PortMsgsSent < 2 {
		t.Errorf("port messages sent = %d, want >= 2 (join + re-suspend)", st.Stats().PortMsgsSent)
	}
	arr := st.Arrivals()
	if len(arr) != 1 || arr[0].Wakelock != time.Second {
		t.Fatalf("arrivals = %+v, want one frame with 1 s wakelock", arr)
	}
}

func TestHIDEStationDropsRideAlongFrames(t *testing.T) {
	// A useless frame buffered in the same DTIM as a useful one rides
	// along: the radio receives it but the driver drops it with zero
	// wakelock.
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	eng.MustScheduleAt(300*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
	})
	eng.RunUntil(3 * time.Second)

	if st.Stats().GroupUseful != 1 || st.Stats().GroupDropped != 1 {
		t.Fatalf("useful=%d dropped=%d, want 1 and 1", st.Stats().GroupUseful, st.Stats().GroupDropped)
	}
	for _, arr := range st.Arrivals() {
		if arr.Wakelock != 0 && arr.Wakelock != time.Second {
			t.Errorf("unexpected wakelock %v", arr.Wakelock)
		}
	}
}

func TestLegacyStationReceivesEverything(t *testing.T) {
	eng, a, st := rig(t, Legacy, false, nil)
	a.Start()
	for i := 0; i < 3; i++ {
		at := time.Duration(300+200*i) * time.Millisecond
		eng.MustScheduleAt(at, func(time.Duration) {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
		})
	}
	eng.RunUntil(3 * time.Second)

	if st.Stats().GroupReceived != 3 {
		t.Fatalf("received %d group frames, want 3", st.Stats().GroupReceived)
	}
	for _, arr := range st.Arrivals() {
		if arr.Wakelock != time.Second {
			t.Errorf("legacy wakelock = %v, want 1 s", arr.Wakelock)
		}
	}
}

func TestClientSideStationShortWakelockForUseless(t *testing.T) {
	eng, a, st := rig(t, ClientSide, false, []uint16{5353})
	a.Start()
	eng.MustScheduleAt(300*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	})
	eng.RunUntil(3 * time.Second)

	arr := st.Arrivals()
	if len(arr) != 2 {
		t.Fatalf("arrivals = %d, want 2", len(arr))
	}
	var sawShort, sawFull bool
	for _, a := range arr {
		switch a.Wakelock {
		case 100 * time.Millisecond:
			sawShort = true
		case time.Second:
			sawFull = true
		}
	}
	if !sawShort || !sawFull {
		t.Fatalf("wakelocks = %v, want one short and one full", arr)
	}
}

func TestHIDEStationFallsBackOnLegacyAP(t *testing.T) {
	// Coexistence the other way: a HIDE station under a legacy AP
	// obeys the standard broadcast bit.
	eng, a, st := rig(t, HIDE, false, []uint16{5353})
	a.Start()
	eng.MustScheduleAt(300*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
	})
	eng.RunUntil(2 * time.Second)

	if st.Stats().GroupReceived != 1 {
		t.Fatalf("received %d frames under legacy AP, want 1 (fallback)", st.Stats().GroupReceived)
	}
}

func TestPortMessageRetransmissionUnderLoss(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 99)
	if err := med.SetLoss(0.5); err != nil {
		t.Fatal(err)
	}
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true})
	st := New(eng, med, Config{
		Addr:  dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID: bssid,
		Mode:  HIDE,
	})
	st.OpenPort(5353)
	aid, err := a.Associate(st.cfg.Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Join(aid); err != nil {
		t.Fatal(err)
	}
	a.Start()
	eng.RunUntil(5 * time.Second)

	if st.Stats().PortMsgsSent <= st.Stats().ACKsReceived {
		t.Errorf("under 50%% loss expected retransmissions: sent=%d acks=%d",
			st.Stats().PortMsgsSent, st.Stats().ACKsReceived)
	}
	if !st.Suspended() {
		t.Error("station failed to eventually suspend under loss")
	}
}

func TestUnicastRetrievalViaPSPoll(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, nil)
	a.Start()
	eng.MustScheduleAt(300*time.Millisecond, func(time.Duration) {
		if err := a.EnqueueUnicast(st.cfg.Addr, dot11.UDPDatagram{DstPort: 443}, dot11.Rate11Mbps); err != nil {
			t.Error(err)
		}
		if err := a.EnqueueUnicast(st.cfg.Addr, dot11.UDPDatagram{DstPort: 444}, dot11.Rate11Mbps); err != nil {
			t.Error(err)
		}
	})
	eng.RunUntil(3 * time.Second)

	if st.Stats().UnicastReceived != 2 {
		t.Fatalf("unicast received = %d, want 2", st.Stats().UnicastReceived)
	}
	if st.Stats().PSPollsSent < 2 {
		t.Errorf("PS-Polls sent = %d, want >= 2", st.Stats().PSPollsSent)
	}
}

func TestOpenClosePorts(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	st := New(eng, med, Config{Addr: dot11.MACAddr{2, 0, 0, 0, 0, 9}, BSSID: bssid})
	st.OpenPort(53)
	st.OpenPort(5353)
	st.ClosePort(53)
	got := st.OpenPorts()
	if len(got) != 1 || got[0] != 5353 {
		t.Fatalf("OpenPorts = %v, want [5353]", got)
	}
}

func TestUpdatedPortsReachAPOnNextSuspend(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	// Wake the station with a useful frame, change ports while awake.
	eng.MustScheduleAt(300*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	})
	eng.MustScheduleAt(600*time.Millisecond, func(time.Duration) {
		st.OpenPort(1900)
		st.ClosePort(5353)
	})
	eng.RunUntil(4 * time.Second)

	if !a.Table().Listening(1900, st.AID()) {
		t.Error("new port not synced to AP on re-suspend")
	}
	if a.Table().Listening(5353, st.AID()) {
		t.Error("closed port still in AP table after re-suspend")
	}
}

func TestFrameLevelAssociation(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true})
	st := New(eng, med, Config{
		Addr:  dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID: bssid,
		Mode:  HIDE,
	})
	st.OpenPort(5353)
	st.StartAssociation("t")
	a.Start()
	eng.RunUntil(time.Second)

	if !st.Associated() {
		t.Fatal("station did not associate over the air")
	}
	if !st.AID().Valid() {
		t.Fatalf("invalid AID %d after association", st.AID())
	}
	// The assoc request's Open UDP Ports element seeded the table.
	if !a.Table().Listening(5353, st.AID()) {
		t.Fatal("port from assoc request not in AP table")
	}
	if st.Stats().AssocRequests != 1 {
		t.Errorf("assoc requests = %d, want 1 (no retries needed)", st.Stats().AssocRequests)
	}
}

func TestAssociationRetriesUnderLoss(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 3)
	if err := med.SetLoss(0.5); err != nil {
		t.Fatal(err)
	}
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true})
	st := New(eng, med, Config{
		Addr:  dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID: bssid,
		Mode:  HIDE,
	})
	st.StartAssociation("t")
	a.Start()
	eng.RunUntil(2 * time.Second)

	if !st.Associated() {
		t.Skipf("association failed under 50%% loss after %d attempts (possible with this seed)",
			st.Stats().AssocRequests)
	}
	if st.Stats().AssocRequests < 1 {
		t.Error("no association attempts recorded")
	}
}

func TestStartAssociationIdempotent(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true})
	st := New(eng, med, Config{
		Addr:  dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID: bssid,
		Mode:  HIDE,
	})
	st.StartAssociation("t")
	a.Start()
	eng.RunUntil(time.Second)
	sent := st.Stats().AssocRequests
	st.StartAssociation("t") // already associated: no-op
	eng.RunUntil(2 * time.Second)
	if st.Stats().AssocRequests != sent {
		t.Error("StartAssociation re-sent after association")
	}
}

func TestUnassociatedStationIgnoresTraffic(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: false})
	st := New(eng, med, Config{
		Addr:  dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID: bssid,
		Mode:  Legacy,
	})
	// Never associates; the AP broadcasts anyway.
	a.Start()
	a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
	eng.RunUntil(time.Second)
	if st.Stats().BeaconsHeard != 0 || st.Stats().GroupReceived != 0 {
		t.Errorf("unassociated station processed traffic: %+v", st.Stats())
	}
}

func TestReceiveGarbageNeverPanics(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	r := sim.NewRNG(123)
	for i := 0; i < 500; i++ {
		n := r.Intn(64)
		raw := make([]byte, n)
		for j := range raw {
			raw[j] = byte(r.Uint64())
		}
		st.Receive(raw, dot11.Rate1Mbps, eng.Now())
	}
	eng.RunUntil(time.Second)
	// The station must still work after the garbage storm.
	eng.MustScheduleAt(1100*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	})
	eng.RunUntil(3 * time.Second)
	if st.Stats().GroupUseful != 1 {
		t.Fatalf("station broken after garbage: useful = %d", st.Stats().GroupUseful)
	}
}

func TestListenIntervalSkipsBeacons(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true, DTIMPeriod: 2})
	st := New(eng, med, Config{
		Addr:           dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID:          bssid,
		Mode:           HIDE,
		ListenInterval: 3,
	})
	aid, err := a.Associate(st.cfg.Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Join(aid); err != nil {
		t.Fatal(err)
	}
	a.Start()
	eng.RunUntil(3 * time.Second)

	s := st.Stats()
	if s.BeaconsSkipped == 0 {
		t.Fatal("listen interval 3 skipped no beacons")
	}
	// Roughly 2/3 skipped.
	total := s.BeaconsHeard + s.BeaconsSkipped
	if s.BeaconsHeard > total/2 {
		t.Errorf("heard %d of %d beacons with LI=3", s.BeaconsHeard, total)
	}
	if s.DTIMsSkipped == 0 {
		t.Error("no skipped DTIMs counted despite DTIM period 2 and LI 3")
	}
}

func TestListenIntervalMayMissGroupTraffic(t *testing.T) {
	// A deterministic miss: with DTIM period 1 and LI 2, half the DTIMs
	// are slept through, so some useful frames are lost — the trade-off
	// the knob exists to explore.
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true, DTIMPeriod: 1})
	st := New(eng, med, Config{
		Addr:           dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID:          bssid,
		Mode:           HIDE,
		ListenInterval: 2,
	})
	st.OpenPort(5353)
	aid, err := a.Associate(st.cfg.Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Table().Update(aid, []uint16{5353})
	if err := st.Join(aid); err != nil {
		t.Fatal(err)
	}
	a.Start()
	// One useful frame per beacon interval for 40 intervals.
	for i := 0; i < 40; i++ {
		at := time.Duration(i)*dot11.DefaultBeaconInterval + 10*time.Millisecond
		eng.MustScheduleAt(at, func(time.Duration) {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
		})
	}
	eng.RunUntil(6 * time.Second)

	s := st.Stats()
	if s.GroupUseful >= 40 {
		t.Errorf("received all %d frames despite LI=2; expected misses", s.GroupUseful)
	}
	if s.GroupUseful == 0 {
		t.Error("received nothing; LI gating too aggressive")
	}
}

func TestLeaveDisassociates(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	eng.RunUntil(500 * time.Millisecond) // handshake done, ports synced
	if !a.Table().Listening(5353, st.AID()) {
		t.Fatal("precondition: ports not synced")
	}
	st.Leave(dot11.ReasonStationLeft)
	eng.RunUntil(time.Second)

	if st.Associated() {
		t.Fatal("station still associated after Leave")
	}
	if a.Stats().Disassociations != 1 {
		t.Fatalf("AP disassociations = %d, want 1", a.Stats().Disassociations)
	}
	if a.Table().Len() != 0 {
		t.Fatal("AP kept port entries after disassociation")
	}
	// Broadcast after leaving must not be processed.
	eng.MustScheduleAt(1100*time.Millisecond, func(time.Duration) {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	})
	eng.RunUntil(3 * time.Second)
	if st.Stats().GroupReceived != 0 {
		t.Error("departed station still received group traffic")
	}
	// Leave while unassociated is a no-op.
	st.Leave(dot11.ReasonStationLeft)
}

func TestReassociationAfterLeave(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	eng.RunUntil(500 * time.Millisecond)
	st.Leave(dot11.ReasonStationLeft)
	eng.RunUntil(time.Second)
	st.StartAssociation("t")
	eng.RunUntil(2 * time.Second)
	if !st.Associated() {
		t.Fatal("re-association failed")
	}
	if !a.Table().Listening(5353, st.AID()) {
		t.Fatal("ports not re-seeded on re-association")
	}
}

func TestSyncOnlyOnChangeSkipsRedundantMessages(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true, DTIMPeriod: 2})
	st := New(eng, med, Config{
		Addr:             dot11.MACAddr{2, 0, 0, 0, 0, 0x10},
		BSSID:            bssid,
		Mode:             HIDE,
		SyncOnlyOnChange: true,
	})
	st.OpenPort(5353)
	st.StartAssociation("t")
	a.Start()
	// Two wake/suspend cycles with unchanged ports.
	for i := 0; i < 2; i++ {
		at := time.Duration(500+2500*i) * time.Millisecond
		eng.MustScheduleAt(at, func(time.Duration) {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
		})
	}
	eng.RunUntil(6 * time.Second)

	s := st.Stats()
	if s.PortMsgsSent != 1 {
		t.Errorf("port messages sent = %d, want 1 (initial only)", s.PortMsgsSent)
	}
	if s.PortMsgsSkipped < 2 {
		t.Errorf("skipped = %d, want >= 2", s.PortMsgsSkipped)
	}
	if !st.Suspended() {
		t.Error("station not suspended")
	}

	// A port change forces a fresh sync on the next suspend.
	eng.MustScheduleAt(6100*time.Millisecond, func(time.Duration) {
		st.OpenPort(1900)
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	})
	eng.RunUntil(9 * time.Second)
	if st.Stats().PortMsgsSent != 2 {
		t.Errorf("port messages after change = %d, want 2", st.Stats().PortMsgsSent)
	}
	if !a.Table().Listening(1900, st.AID()) {
		t.Error("changed ports not synced")
	}
}
