package ap

import (
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/sim"
)

// disassocSniffer records disassociation frames delivered to one
// station address.
type disassocSniffer struct {
	disassocs []*dot11.Disassoc
}

func (s *disassocSniffer) Receive(raw []byte, _ dot11.Rate, _ time.Duration) {
	if dot11.Classify(raw) != dot11.KindDisassoc {
		return
	}
	if d, err := dot11.UnmarshalDisassoc(raw); err == nil {
		s.disassocs = append(s.disassocs, d)
	}
}

func TestDrainRejectsNewAssociations(t *testing.T) {
	eng, med, a, _ := rig(t, Config{HIDE: true})
	sn2 := &assocSniffer{}
	med.Attach(c2Addr, sn2)
	a.BeginDrain()
	if !a.Draining() {
		t.Fatal("Draining false after BeginDrain")
	}
	req := &dot11.AssocRequest{
		Header:      dot11.MACHeader{Addr1: bssid, Addr2: c2Addr, Addr3: bssid},
		SSID:        "test",
		HIDECapable: true,
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	eng.MustScheduleAt(time.Millisecond, func(now time.Duration) {
		a.Receive(raw, dot11.Rate1Mbps, now)
	})
	eng.RunUntil(10 * time.Millisecond)
	if len(sn2.resps) != 1 {
		t.Fatalf("got %d assoc responses, want 1", len(sn2.resps))
	}
	if sn2.resps[0].Status != dot11.StatusAPFull {
		t.Fatalf("draining AP answered status %d, want StatusAPFull", sn2.resps[0].Status)
	}
	if a.Stats().AssocsRejectedDraining != 1 {
		t.Fatalf("AssocsRejectedDraining = %d, want 1", a.Stats().AssocsRejectedDraining)
	}
	if len(a.ClientList()) != 0 {
		t.Fatal("draining AP recorded an association")
	}
}

// assocSniffer records association responses.
type assocSniffer struct {
	resps []*dot11.AssocResponse
}

func (s *assocSniffer) Receive(raw []byte, _ dot11.Rate, _ time.Duration) {
	if dot11.Classify(raw) != dot11.KindAssocResponse {
		return
	}
	if r, err := dot11.UnmarshalAssocResponse(raw); err == nil {
		s.resps = append(s.resps, r)
	}
}

func TestDisassociateAllSendsFramesInAIDOrder(t *testing.T) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 42)
	a := New(eng, med, Config{BSSID: bssid, SSID: "test", HIDE: true})

	sn1, sn2 := &disassocSniffer{}, &disassocSniffer{}
	med.Attach(c1Addr, sn1)
	med.Attach(c2Addr, sn2)
	aid1, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Associate(c2Addr, true); err != nil {
		t.Fatal(err)
	}
	a.Table().Update(aid1, []uint16{5353})

	var sent int
	eng.MustScheduleAt(time.Millisecond, func(time.Duration) {
		sent = a.DisassociateAll(dot11.ReasonUnspecified)
	})
	eng.RunUntil(10 * time.Millisecond)

	if sent != 2 {
		t.Fatalf("DisassociateAll sent %d frames, want 2", sent)
	}
	if a.Stats().DisassocsSent != 2 {
		t.Fatalf("DisassocsSent = %d, want 2", a.Stats().DisassocsSent)
	}
	for name, sn := range map[string]*disassocSniffer{"c1": sn1, "c2": sn2} {
		if len(sn.disassocs) != 1 {
			t.Fatalf("%s received %d disassoc frames, want 1", name, len(sn.disassocs))
		}
		d := sn.disassocs[0]
		if d.Header.Addr2 != bssid || d.Header.Addr3 != bssid {
			t.Fatalf("%s disassoc not from BSSID: %+v", name, d.Header)
		}
	}
	if len(a.ClientList()) != 0 {
		t.Fatal("clients remain after DisassociateAll")
	}
	if a.Table().Len() != 0 {
		t.Fatal("port table not flushed by DisassociateAll")
	}
}

func TestClientListSortedAndAIDOf(t *testing.T) {
	_, _, a, _ := rig(t, Config{HIDE: true})
	if _, ok := a.AIDOf(c1Addr); ok {
		t.Fatal("AIDOf reported an unassociated station")
	}
	aid1, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	aid2, err := a.Associate(c2Addr, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := a.AIDOf(c1Addr); !ok || got != aid1 {
		t.Fatalf("AIDOf(c1) = %d,%v want %d", got, ok, aid1)
	}
	list := a.ClientList()
	if len(list) != 2 {
		t.Fatalf("ClientList len = %d, want 2", len(list))
	}
	if list[0].AID != aid1 || list[1].AID != aid2 {
		t.Fatalf("ClientList not AID-ordered: %+v", list)
	}
	if !list[0].HIDECapable || list[1].HIDECapable {
		t.Fatalf("HIDECapable flags wrong: %+v", list)
	}
}
