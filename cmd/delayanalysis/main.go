// Command delayanalysis reproduces Figures 11 and 12: the bounded
// increase in packet round-trip time caused by Client UDP Port Table
// maintenance and Algorithm 1 lookups at the AP, swept over the
// port-message sending interval (Fig. 11) and the number of open UDP
// ports per client (Fig. 12).
//
// By default the per-operation hash-table costs are the constants
// calibrated to the paper's router-class measurement device; -measure
// substitutes timings measured live on this machine's table
// implementation using the paper's procedure.
//
// Usage:
//
//	delayanalysis [-sweep interval|ports|both] [-measure]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
	"repro/internal/cli"
)

func main() {
	sweep := flag.String("sweep", "both", "which sweep to print: interval, ports, or both")
	measure := flag.Bool("measure", false, "measure table timings on this machine instead of calibrated constants")
	flag.Parse()

	timings := hide.CalibratedARMTimings()
	source := "calibrated (1 GHz ARM class)"
	if *measure {
		timings = hide.MeasureTableTimings(50, 50, 1)
		source = "measured on this machine"
	}
	fmt.Printf("table op timings (%s): delete=%v insert=%v lookup=%v\n\n",
		source, timings.Delete, timings.Insert, timings.Lookup)

	ns := []int{5, 10, 20, 30, 40, 50}

	ctx, stop := cli.SignalContext()
	defer stop()

	if *sweep == "interval" || *sweep == "both" {
		cli.Abort(ctx, "delayanalysis")
		fmt.Println("== Figure 11: delay overhead vs port-message interval (n_o=50, p=50%) ==")
		pts, err := hide.Figure11(timings)
		if err != nil {
			cli.Exit("delayanalysis", err)
		}
		fmt.Printf("%10s", "1/f")
		for _, n := range ns {
			fmt.Printf(" %9s", fmt.Sprintf("N=%d", n))
		}
		fmt.Println()
		byInterval := map[time.Duration][]float64{}
		var order []time.Duration
		for _, pt := range pts {
			if _, ok := byInterval[pt.PortMsgInterval]; !ok {
				order = append(order, pt.PortMsgInterval)
			}
			byInterval[pt.PortMsgInterval] = append(byInterval[pt.PortMsgInterval], pt.Overhead)
		}
		for _, iv := range order {
			fmt.Printf("%10s", iv)
			for _, o := range byInterval[iv] {
				fmt.Printf(" %8.3f%%", o*100)
			}
			fmt.Println()
		}
		fmt.Println()
	}

	if *sweep == "ports" || *sweep == "both" {
		cli.Abort(ctx, "delayanalysis")
		fmt.Println("== Figure 12: delay overhead vs open UDP ports (1/f=30s, p=50%) ==")
		pts, err := hide.Figure12(timings)
		if err != nil {
			cli.Exit("delayanalysis", err)
		}
		fmt.Printf("%10s", "n_o")
		for _, n := range ns {
			fmt.Printf(" %9s", fmt.Sprintf("N=%d", n))
		}
		fmt.Println()
		byPorts := map[int][]float64{}
		var order []int
		for _, pt := range pts {
			if _, ok := byPorts[pt.OpenPorts]; !ok {
				order = append(order, pt.OpenPorts)
			}
			byPorts[pt.OpenPorts] = append(byPorts[pt.OpenPorts], pt.Overhead)
		}
		for _, no := range order {
			fmt.Printf("%10d", no)
			for _, o := range byPorts[no] {
				fmt.Printf(" %8.3f%%", o*100)
			}
			fmt.Println()
		}
	}
}
