package energy

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

// assertPartition checks that the intervals exactly partition the
// window: sorted, contiguous, covering [0, d].
func assertPartition(t *testing.T, ivs []Interval, d time.Duration) {
	t.Helper()
	if len(ivs) == 0 {
		t.Fatal("empty timeline")
	}
	if ivs[0].From != 0 {
		t.Fatalf("timeline starts at %v", ivs[0].From)
	}
	if ivs[len(ivs)-1].To != d {
		t.Fatalf("timeline ends at %v, want %v", ivs[len(ivs)-1].To, d)
	}
	for i, iv := range ivs {
		if iv.To <= iv.From {
			t.Fatalf("interval %d empty or inverted: %+v", i, iv)
		}
		if i > 0 && ivs[i-1].To != iv.From {
			t.Fatalf("gap between %+v and %+v", ivs[i-1], iv)
		}
	}
}

func TestTimelineEmpty(t *testing.T) {
	ivs, err := StateTimeline(nil, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, ivs, 10*time.Second)
	if len(ivs) != 1 || ivs[0].Kind != StateSuspended {
		t.Fatalf("empty trace timeline: %+v", ivs)
	}
}

func TestTimelineSingleFrame(t *testing.T) {
	frames := []Arrival{{At: time.Second, Length: 1250, Rate: dot11.Rate1Mbps, Wakelock: time.Second}}
	ivs, err := StateTimeline(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, ivs, 10*time.Second)
	// suspended → resuming → awake → suspending → suspended.
	kinds := make([]StateKind, len(ivs))
	for i, iv := range ivs {
		kinds[i] = iv.Kind
	}
	want := []StateKind{StateSuspended, StateResuming, StateAwake, StateSuspending, StateSuspended}
	if len(kinds) != len(want) {
		t.Fatalf("states = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("states = %v, want %v", kinds, want)
		}
	}
	// Awake interval: [1.056 s, 2.056 s] (rxEnd 1.01 + Trm 0.046 + τ 1).
	if ivs[2].From != 1056*time.Millisecond || ivs[2].To != 2056*time.Millisecond {
		t.Fatalf("awake interval = %+v", ivs[2])
	}
}

func TestTimelineAbortedSuspendShowsPartialSuspending(t *testing.T) {
	frames := []Arrival{
		{At: time.Second, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
		{At: 2100 * time.Millisecond, Length: 125, Rate: dot11.Rate1Mbps, Wakelock: time.Second},
	}
	ivs, err := StateTimeline(frames, cfgNexus(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, ivs, 10*time.Second)
	// There are two suspending stretches: the aborted one (54 ms) and
	// the final full one (86 ms).
	var suspending []Interval
	for _, iv := range ivs {
		if iv.Kind == StateSuspending {
			suspending = append(suspending, iv)
		}
	}
	if len(suspending) != 2 {
		t.Fatalf("suspending intervals = %+v", suspending)
	}
	if suspending[0].Duration() != 54*time.Millisecond {
		t.Errorf("aborted suspend = %v, want 54ms", suspending[0].Duration())
	}
	if suspending[1].Duration() != 86*time.Millisecond {
		t.Errorf("final suspend = %v, want 86ms", suspending[1].Duration())
	}
}

func TestTimelineAgreesWithComputeProperty(t *testing.T) {
	// For arbitrary homogeneous-τ traffic, the timeline's suspended
	// share must equal Compute's SuspendFraction and its resuming
	// count must equal Resumes.
	for _, dev := range Profiles {
		dev := dev
		f := func(seed uint64, nRaw uint8) bool {
			n := int(nRaw%40) + 1
			r := sim.NewRNG(seed)
			frames := make([]Arrival, n)
			at := time.Duration(0)
			for i := range frames {
				at += time.Duration(r.Intn(2500)) * time.Millisecond
				wl := dev.Tau
				if r.Intn(3) == 0 {
					wl = 0 // mix in client-side-style drops
				}
				frames[i] = Arrival{At: at, Length: 60 + r.Intn(500), Rate: dot11.Rate1Mbps, Wakelock: wl}
			}
			duration := at + 5*time.Second
			cfg := Config{Device: dev, Duration: duration}

			ivs, err := StateTimeline(frames, cfg)
			if err != nil {
				return false
			}
			// Partition invariant.
			if ivs[0].From != 0 || ivs[len(ivs)-1].To != duration {
				return false
			}
			for i := 1; i < len(ivs); i++ {
				if ivs[i-1].To != ivs[i].From {
					return false
				}
			}

			b, err := Compute(frames, cfg)
			if err != nil {
				return false
			}
			suspFrac := float64(TimeInState(ivs, StateSuspended)) / float64(duration)
			if !approx(suspFrac, b.SuspendFraction, 1e-6) {
				t.Logf("seed %d n %d: timeline susp %.6f vs model %.6f", seed, n, suspFrac, b.SuspendFraction)
				return false
			}
			resumes := 0
			for _, iv := range ivs {
				if iv.Kind == StateResuming {
					resumes++
				}
			}
			if resumes != b.Resumes {
				t.Logf("seed %d n %d: timeline resumes %d vs model %d", seed, n, resumes, b.Resumes)
				return false
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Fatalf("%s: %v", dev.Name, err)
		}
	}
}

func TestTimelineValidation(t *testing.T) {
	if _, err := StateTimeline(nil, Config{Device: NexusOne}); err == nil {
		t.Error("zero duration accepted")
	}
	frames := []Arrival{
		{At: 2 * time.Second, Length: 100, Rate: dot11.Rate1Mbps},
		{At: time.Second, Length: 100, Rate: dot11.Rate1Mbps},
	}
	if _, err := StateTimeline(frames, cfgNexus(10*time.Second)); err == nil {
		t.Error("out-of-order frames accepted")
	}
}

func TestStateKindString(t *testing.T) {
	names := map[StateKind]string{
		StateSuspended:  "suspended",
		StateSuspending: "suspending",
		StateResuming:   "resuming",
		StateAwake:      "awake",
		StateKind(9):    "state(9)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
