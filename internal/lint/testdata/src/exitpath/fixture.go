// Package fixture exercises the exitpath analyzer. The test harness
// analyzes it as repro/cmd/fixture, where every termination must route
// through internal/cli to keep the exit-130 interrupt contract.
package fixture

import (
	"errors"
	"log"
	"os"

	"repro/internal/cli"
)

// Bail exits directly instead of going through internal/cli.
func Bail() {
	os.Exit(1) // want `direct os.Exit bypasses internal/cli`
}

// Crash takes the log.Fatal shortcut.
func Crash() {
	log.Fatalf("boom") // want `log.Fatalf exits without internal/cli`
}

// Graceful routes termination through the shared helpers.
func Graceful() {
	cli.Exit("fixture", errors.New("boom"))
}
