package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ElemConst keeps the 802.11 protocol numbers HIDE reserves in one
// place. The element IDs 200 (Open UDP Ports) and 201 (BTIM) and the
// AID upper bound 2007 are protocol constants defined once in
// internal/dot11; a hand-typed copy elsewhere can silently drift from
// the wire format the paper specifies, so any integer literal with one
// of those values flowing into a byte- or dot11-typed position outside
// internal/dot11 is flagged.
var ElemConst = &Analyzer{
	Name: "elemconst",
	Doc: "the protocol numbers 200/201 (HIDE element IDs) and 2007 (max AID) may " +
		"appear as literals only inside internal/dot11; elsewhere reference " +
		"dot11.ElementIDOpenUDPPorts, dot11.ElementIDBTIM, or dot11.MaxAID",
	Run: runElemConst,
}

// elemConstNames maps each reserved value to the constant to use.
var elemConstNames = map[int64]string{
	200:  "dot11.ElementIDOpenUDPPorts",
	201:  "dot11.ElementIDBTIM",
	2007: "dot11.MaxAID",
}

func runElemConst(p *Pass) error {
	if p.RelPath() == "internal/dot11" {
		return nil // the constants' home
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT {
				return true
			}
			tv, ok := p.TypesInfo.Types[lit]
			if !ok || tv.Value == nil {
				return true
			}
			v, ok := constant.Int64Val(constant.ToInt(tv.Value))
			if !ok {
				return true
			}
			name, reserved := elemConstNames[v]
			if !reserved || !protocolTyped(tv.Type, v, p.ModulePath) {
				return true
			}
			p.Reportf(lit.Pos(), "magic 802.11 protocol number %d; use %s from internal/dot11", v, name)
			return true
		})
	}
	return nil
}

// protocolTyped reports whether the literal's contextual type marks it
// as a protocol field: a uint8/byte (element IDs, DTIM fields), a
// uint16 for the AID bound, or any named type defined in
// internal/dot11 (AID, Rate, ...). Plain int counters, durations, and
// float parameters pass untouched.
func protocolTyped(t types.Type, v int64, modpath string) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == modpath+"/internal/dot11"
	}
	if basic, ok := t.(*types.Basic); ok {
		switch basic.Kind() {
		case types.Uint8:
			return true
		case types.Uint16:
			return v == 2007
		}
	}
	return false
}
