// Package trace models WiFi broadcast-traffic traces: the sequence of
// UDP-padded broadcast frames an AP transmits, as captured in the
// paper's five real-world scenarios (classroom building, CS department,
// college library "WML", Starbucks store, city public library "WRL").
//
// The paper's traces are private, so this package also provides
// synthetic generators calibrated to the per-scenario traffic volumes
// of Figure 6. The downstream energy model consumes only the tuple
// (arrival time, frame length, data rate, destination port, more-data
// bit), so any real capture converted to the same schema can be
// substituted via the CSV/JSONL readers.
package trace

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dot11"
)

// Frame is one UDP-padded broadcast frame in a trace.
type Frame struct {
	// At is the arrival/transmission start time relative to trace start.
	At time.Duration
	// Length is the full MAC frame length in bytes (header + body).
	Length int
	// Rate is the PHY data rate the frame is sent at.
	Rate dot11.Rate
	// DstPort is the destination UDP port.
	DstPort uint16
	// MoreData reports whether the frame announced further buffered
	// group frames (the d_more bit of Eq. 10).
	MoreData bool
}

// EndTime returns the time the frame finishes transmitting (At + L/r),
// ignoring PHY preamble overhead, matching the paper's l_i/r_i terms.
func (f Frame) EndTime() time.Duration {
	if f.Rate <= 0 {
		return f.At
	}
	return f.At + time.Duration(float64(8*f.Length)/float64(f.Rate)*float64(time.Second))
}

// Trace is an ordered sequence of broadcast frames plus its duration.
type Trace struct {
	// Name identifies the scenario (e.g. "Classroom").
	Name string
	// Duration is the capture length. Frames all arrive within it.
	Duration time.Duration
	// Frames are sorted by arrival time.
	Frames []Frame
}

// Validate checks trace invariants: sorted arrivals within [0, Duration],
// positive lengths and rates.
func (tr *Trace) Validate() error {
	var prev time.Duration
	for i, f := range tr.Frames {
		if f.At < 0 || f.At > tr.Duration {
			return fmt.Errorf("trace %s: frame %d at %v outside [0, %v]", tr.Name, i, f.At, tr.Duration)
		}
		if f.At < prev {
			return fmt.Errorf("trace %s: frame %d at %v before previous frame at %v", tr.Name, i, f.At, prev)
		}
		if f.Length <= 0 {
			return fmt.Errorf("trace %s: frame %d has non-positive length %d", tr.Name, i, f.Length)
		}
		if f.Rate <= 0 {
			return fmt.Errorf("trace %s: frame %d has non-positive rate %v", tr.Name, i, f.Rate)
		}
		prev = f.At
	}
	return nil
}

// Sort orders frames by arrival time (stable).
func (tr *Trace) Sort() {
	sort.SliceStable(tr.Frames, func(i, j int) bool { return tr.Frames[i].At < tr.Frames[j].At })
}

// FramesPerSecond returns the per-second frame counts over the trace
// duration — the quantity whose CDF Figure 6 plots.
func (tr *Trace) FramesPerSecond() []int {
	secs := int(tr.Duration / time.Second)
	if secs == 0 {
		secs = 1
	}
	counts := make([]int, secs)
	for _, f := range tr.Frames {
		s := int(f.At / time.Second)
		if s >= secs {
			s = secs - 1
		}
		counts[s]++
	}
	return counts
}

// MeanFPS returns the average number of frames per second.
func (tr *Trace) MeanFPS() float64 {
	if tr.Duration <= 0 {
		return 0
	}
	return float64(len(tr.Frames)) / tr.Duration.Seconds()
}

// PortHistogram returns the number of frames per destination port.
func (tr *Trace) PortHistogram() map[uint16]int {
	h := make(map[uint16]int)
	for _, f := range tr.Frames {
		h[f.DstPort]++
	}
	return h
}

// CDF is an empirical cumulative distribution function over float64
// samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// NewCDFInts builds an empirical CDF from integer samples.
func NewCDFInts(samples []int) *CDF {
	s := make([]float64, len(samples))
	for i, v := range samples {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// At returns P[X <= x].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (q in [0, 1]).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(q * float64(len(c.sorted)))
	if i >= len(c.sorted) {
		i = len(c.sorted) - 1
	}
	return c.sorted[i]
}

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Points returns (x, P[X<=x]) pairs suitable for plotting the CDF curve,
// one point per distinct sample value.
func (c *CDF) Points() (xs, ps []float64) {
	n := len(c.sorted)
	for i := 0; i < n; {
		j := i
		for j < n && c.sorted[j] == c.sorted[i] {
			j++
		}
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(j)/float64(n))
		i = j
	}
	return xs, ps
}
