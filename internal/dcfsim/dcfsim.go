// Package dcfsim is a slotted Monte-Carlo simulator of the 802.11
// distributed coordination function under saturation: every station
// always has a frame to send, draws a uniform backoff from its
// contention window, decrements it during idle slots, transmits when
// it reaches zero, and doubles the window on collision (binary
// exponential backoff, basic access).
//
// It exists to validate the Section V-A substrate empirically: the
// analytic Bianchi fixed point (internal/bianchi) predicts the
// saturation throughput Φ; this simulator measures it from first
// principles. The two agreeing within a few percent is the evidence
// that Figure 10's capacity-overhead numbers stand on solid ground.
package dcfsim

import (
	"fmt"
	"time"

	"repro/internal/bianchi"
	"repro/internal/sim"
)

// Result summarizes one saturation run.
type Result struct {
	// N is the number of saturated stations.
	N int
	// Phi is the measured fraction of time carrying payload bits.
	Phi float64
	// CapacityBps is Phi times the channel rate.
	CapacityBps float64
	// Successes and Collisions count channel events.
	Successes  int
	Collisions int
	// CollisionProb is the per-transmission-attempt collision
	// probability (compare bianchi.Result.P).
	CollisionProb float64
	// SimulatedTime is the virtual time covered.
	SimulatedTime time.Duration
}

// station is one saturated sender's backoff state.
type station struct {
	cw      int
	backoff int
}

// redraw picks a fresh uniform backoff in [0, cw-1].
func (s *station) redraw(r *sim.RNG) {
	s.backoff = r.Intn(s.cw)
}

// Run simulates n saturated stations for the given virtual duration
// using the timing parameters of cfg. Deterministic for a seed.
func Run(cfg bianchi.Config, n int, duration time.Duration, seed uint64) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("dcfsim: need at least one station, got %d", n)
	}
	if duration <= 0 {
		return Result{}, fmt.Errorf("dcfsim: non-positive duration %v", duration)
	}
	r := sim.NewRNG(seed)

	// Channel event durations (all frame portions at the channel rate,
	// matching the paper's Table II accounting and internal/bianchi).
	bits := func(k int) time.Duration {
		return time.Duration(float64(k) / cfg.DataRate * float64(time.Second))
	}
	tp := bits(cfg.PayloadBits)
	hdr := bits(cfg.MACHeaderBits + cfg.PHYHeaderBits)
	ack := bits(cfg.ACKBits + cfg.PHYHeaderBits)
	ts := hdr + tp + cfg.SIFS + cfg.PropDelay + ack + cfg.DIFS + cfg.PropDelay
	tc := hdr + tp + cfg.DIFS + cfg.PropDelay

	stations := make([]station, n)
	for i := range stations {
		stations[i] = station{cw: cfg.CWMin}
		stations[i].redraw(r)
	}

	var (
		now         time.Duration
		payloadTime time.Duration
		res         Result
		attempts    int
		txs         = make([]int, 0, n)
	)
	for now < duration {
		txs = txs[:0]
		for i := range stations {
			if stations[i].backoff == 0 {
				txs = append(txs, i)
			}
		}
		switch len(txs) {
		case 0:
			// Idle slot: everyone decrements.
			now += cfg.SlotTime
			for i := range stations {
				stations[i].backoff--
			}
		case 1:
			// Success: the sender resets its window; others freeze.
			now += ts
			payloadTime += tp
			res.Successes++
			attempts++
			st := &stations[txs[0]]
			st.cw = cfg.CWMin
			st.redraw(r)
		default:
			// Collision: every collider doubles its window.
			now += tc
			res.Collisions++
			attempts += len(txs)
			for _, i := range txs {
				st := &stations[i]
				st.cw *= 2
				if st.cw > cfg.CWMax {
					st.cw = cfg.CWMax
				}
				st.redraw(r)
			}
		}
	}

	res.N = n
	res.SimulatedTime = now
	res.Phi = float64(payloadTime) / float64(now)
	res.CapacityBps = res.Phi * cfg.DataRate
	if attempts > 0 {
		// A collision event involves len(txs) failed attempts; count
		// per-attempt failures.
		failed := attempts - res.Successes
		res.CollisionProb = float64(failed) / float64(attempts)
	}
	return res, nil
}

// ValidateAgainstBianchi runs the simulator and returns the relative
// error of the measured Φ against the analytic fixed point.
func ValidateAgainstBianchi(cfg bianchi.Config, n int, duration time.Duration, seed uint64) (sim Result, analytic bianchi.Result, relErr float64, err error) {
	sim, err = Run(cfg, n, duration, seed)
	if err != nil {
		return
	}
	analytic, err = bianchi.Solve(cfg, n)
	if err != nil {
		return
	}
	relErr = (sim.Phi - analytic.Phi) / analytic.Phi
	if relErr < 0 {
		relErr = -relErr
	}
	return
}
