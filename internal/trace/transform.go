package trace

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Transformations for preparing traces for sweeps: truncating to a
// window, time-scaling to change density, thinning, and merging
// multiple captures. All transforms return fresh traces and leave
// their inputs untouched.

// Truncate returns the prefix of the trace up to d.
func Truncate(tr *Trace, d time.Duration) *Trace {
	if d <= 0 {
		return &Trace{Name: tr.Name, Duration: 0}
	}
	if d >= tr.Duration {
		d = tr.Duration
	}
	out := &Trace{Name: tr.Name, Duration: d}
	for _, f := range tr.Frames {
		if f.At >= d {
			break
		}
		out.Frames = append(out.Frames, f)
	}
	return out
}

// Window returns the sub-trace in [from, to), rebased so the window
// start becomes time zero.
func Window(tr *Trace, from, to time.Duration) (*Trace, error) {
	if from < 0 || to < from {
		return nil, fmt.Errorf("trace: invalid window [%v, %v)", from, to)
	}
	if to > tr.Duration {
		to = tr.Duration
	}
	out := &Trace{Name: tr.Name, Duration: to - from}
	for _, f := range tr.Frames {
		if f.At < from {
			continue
		}
		if f.At >= to {
			break
		}
		g := f
		g.At -= from
		out.Frames = append(out.Frames, g)
	}
	return out, nil
}

// TimeScale stretches (factor > 1) or compresses (factor < 1) the
// trace's time axis, changing its density by 1/factor while keeping
// frame order, lengths, and ports.
func TimeScale(tr *Trace, factor float64) (*Trace, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("trace: non-positive time scale %v", factor)
	}
	out := &Trace{
		Name:     tr.Name,
		Duration: time.Duration(float64(tr.Duration) * factor),
	}
	out.Frames = make([]Frame, len(tr.Frames))
	for i, f := range tr.Frames {
		g := f
		g.At = time.Duration(float64(f.At) * factor)
		out.Frames[i] = g
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// Thin keeps each frame independently with probability keep,
// deterministic for a given seed.
func Thin(tr *Trace, keep float64, seed uint64) (*Trace, error) {
	if keep < 0 || keep > 1 {
		return nil, fmt.Errorf("trace: keep probability %v outside [0, 1]", keep)
	}
	r := sim.NewRNG(seed)
	out := &Trace{Name: tr.Name, Duration: tr.Duration}
	for _, f := range tr.Frames {
		if r.Float64() < keep {
			out.Frames = append(out.Frames, f)
		}
	}
	return out, nil
}

// Merge overlays traces onto a shared time axis; the result spans the
// longest input.
func Merge(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	for _, tr := range traces {
		if tr.Duration > out.Duration {
			out.Duration = tr.Duration
		}
		out.Frames = append(out.Frames, tr.Frames...)
	}
	out.Sort()
	return out
}

// Repeat tiles the trace n times back to back.
func Repeat(tr *Trace, n int) (*Trace, error) {
	if n < 1 {
		return nil, fmt.Errorf("trace: repeat count %d < 1", n)
	}
	out := &Trace{Name: tr.Name, Duration: time.Duration(n) * tr.Duration}
	out.Frames = make([]Frame, 0, n*len(tr.Frames))
	for i := 0; i < n; i++ {
		off := time.Duration(i) * tr.Duration
		for _, f := range tr.Frames {
			g := f
			g.At += off
			out.Frames = append(out.Frames, g)
		}
	}
	return out, nil
}
