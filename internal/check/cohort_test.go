package check

import (
	"strings"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/trace"
)

// testEquivDuration shortens the traces for the equivalence grid. The
// exactness claim is per-event, not statistical, so any window that
// exercises the interesting machinery (suspend/resume cycles, BTIM
// handshakes, handshake-timeout splits, mid-round beacons) proves as
// much as the full capture; 90 seconds covers several DTIM rounds of
// every scenario including Classroom's dense bursts.
const testEquivDuration = 90 * time.Second

// runEquivMatrix executes the acceptance grid at the given worker
// count and fails the test on any setup error or diverging cell.
func runEquivMatrix(t *testing.T, workers int) *EquivMatrixResult {
	t.Helper()
	m := DefaultEquivMatrix()
	m.Config.Duration = testEquivDuration
	m.Config.Workers = workers
	if testing.Short() {
		m.Scenarios = []trace.Scenario{trace.Classroom, trace.Starbucks}
		m.Sizes = []int{1, 64}
		m.Config.Duration = 45 * time.Second
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("equivalence matrix (workers=%d): %v", workers, err)
	}
	want := len(m.Policies) * len(m.Scenarios) * len(m.Sizes)
	if len(res.Results) != want {
		t.Fatalf("got %d cells, want %d", len(res.Results), want)
	}
	if err := res.Err(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return res
}

// TestCohortEquivMatrix is the acceptance grid: three policies × three
// scenario traces × cohort sizes {1, 7, 64}, each cell comparing one
// exact cohort against the same population modeled station-by-station.
// Every observable must match exactly — frame stream, per-member
// counters and arrival logs, and bit-identical energy breakdowns.
func TestCohortEquivMatrix(t *testing.T) {
	res := runEquivMatrix(t, 4)
	for _, r := range res.Results {
		if r.Frames == 0 {
			t.Errorf("%v: zero frames on air — the cell proved nothing", r.Cell)
		}
	}
}

// TestCohortEquivMatrixSequential re-runs the grid with the worker
// pool forced to one and requires cell-for-cell identical results:
// the fold must be exact regardless of how the sweep is scheduled.
func TestCohortEquivMatrixSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel run already covers the short grid")
	}
	seq := runEquivMatrix(t, 1)
	par := runEquivMatrix(t, 4)
	if len(seq.Results) != len(par.Results) {
		t.Fatalf("cell counts differ: sequential %d, parallel %d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		if seq.Results[i] != par.Results[i] {
			t.Errorf("cell %d differs across worker counts: sequential %+v, parallel %+v",
				i, seq.Results[i], par.Results[i])
		}
	}
}

// TestEquivCellValidation: degenerate sizes are rejected up front, not
// silently compared.
func TestEquivCellValidation(t *testing.T) {
	_, err := RunEquivCell(EquivCell{Policy: policy.HIDE, Scenario: trace.WRL, Size: 0},
		EquivConfig{Duration: time.Second})
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("size 0 accepted: %v", err)
	}
}

// TestEquivCellLabel pins the report label format.
func TestEquivCellLabel(t *testing.T) {
	c := EquivCell{Policy: policy.HIDE, Scenario: trace.Classroom, Size: 64}
	if got := c.String(); got != "HIDE/Classroom/n64" {
		t.Fatalf("label %q", got)
	}
}
