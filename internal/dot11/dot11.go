// Package dot11 models the subset of IEEE 802.11 needed by the HIDE
// system: MAC addressing, frame control, management/data/control frames,
// the standard TIM information element, and the two elements HIDE adds
// to the protocol — the Open UDP Ports element (ID 200) carried in UDP
// Port Messages and the Broadcast Traffic Indication Map (BTIM, ID 201)
// carried in beacons.
//
// Frames marshal to and from wire format ([]byte) so the simulated AP
// and stations exchange real encoded frames rather than Go structs,
// and frame lengths feed the airtime and energy models directly.
// Multi-byte fields are little-endian, matching 802.11 conventions.
package dot11

import (
	"errors"
	"fmt"
)

// MACAddr is a 48-bit IEEE 802 MAC address.
type MACAddr [6]byte

// Broadcast is the all-ones broadcast destination address.
var Broadcast = MACAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String formats the address in the conventional colon-separated form.
func (a MACAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (a MACAddr) IsBroadcast() bool { return a == Broadcast }

// IsMulticast reports whether the group bit is set (includes broadcast).
func (a MACAddr) IsMulticast() bool { return a[0]&0x01 != 0 }

// addrBlockBits is the width of the member-index space inside a MAC
// address block: the low three octets, treated as a big-endian counter.
const addrBlockBits = 24

// MaxAddrBlock is the largest member count an address block can carry
// without the low-octet counter wrapping into the OUI.
const MaxAddrBlock = 1 << addrBlockBits

// AddrAdd returns the i-th address of the block starting at base: the
// low three octets act as a 24-bit big-endian counter, the top three
// (the OUI) are untouched. Cohort stations derive member addresses this
// way, so a block of N members occupies N consecutive addresses.
func AddrAdd(base MACAddr, i int) MACAddr {
	v := uint32(base[3])<<16 | uint32(base[4])<<8 | uint32(base[5])
	v += uint32(i)
	base[3] = byte(v >> 16)
	base[4] = byte(v >> 8)
	base[5] = byte(v)
	return base
}

// AddrOffset returns the index addr would occupy in a block based at
// base (AddrAdd(base, off) == addr), or ok=false when the top octets
// differ or addr precedes base. The offset is computed in the 24-bit
// counter space, so it is only meaningful against a block that does not
// wrap (see MaxAddrBlock).
func AddrOffset(base, addr MACAddr) (off int, ok bool) {
	if base[0] != addr[0] || base[1] != addr[1] || base[2] != addr[2] {
		return 0, false
	}
	b := uint32(base[3])<<16 | uint32(base[4])<<8 | uint32(base[5])
	a := uint32(addr[3])<<16 | uint32(addr[4])<<8 | uint32(addr[5])
	if a < b {
		return 0, false
	}
	return int(a - b), true
}

// AID is an 802.11 Association ID assigned by an AP to a client.
// Valid AIDs are 1..2007; 0 is reserved (and used by the TIM bitmap's
// broadcast bit position).
type AID uint16

// MaxAID is the largest valid association ID (802.11-2012 §8.4.1.8).
const MaxAID AID = 2007

// Valid reports whether the AID is in the assignable range.
func (a AID) Valid() bool { return a >= 1 && a <= MaxAID }

// FrameType is the 2-bit Type field of the Frame Control field.
type FrameType uint8

// Frame types.
const (
	TypeManagement FrameType = 0
	TypeControl    FrameType = 1
	TypeData       FrameType = 2
)

// String returns the conventional name of the frame type.
func (t FrameType) String() string {
	switch t {
	case TypeManagement:
		return "management"
	case TypeControl:
		return "control"
	case TypeData:
		return "data"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Management frame subtypes used by this package.
const (
	SubtypeBeacon uint8 = 0b1000
	// SubtypeUDPPortMessage is the reserved management subtype (1111)
	// that HIDE assigns to the UDP Port Message (paper Figure 3).
	SubtypeUDPPortMessage uint8 = 0b1111
)

// Control frame subtypes used by this package.
const (
	SubtypePSPoll uint8 = 0b1010
	SubtypeACK    uint8 = 0b1101
)

// Data frame subtypes used by this package.
const (
	SubtypeData uint8 = 0b0000
)

// Information element IDs.
const (
	ElementIDSSID uint8 = 0
	ElementIDTIM  uint8 = 5
	// ElementIDOpenUDPPorts is the reserved element ID (200) HIDE
	// assigns to the Open UDP Ports element (paper §III-B).
	ElementIDOpenUDPPorts uint8 = 200
	// ElementIDBTIM is the reserved element ID (201) HIDE assigns to
	// the Broadcast Traffic Indication Map element (paper §III-D).
	ElementIDBTIM uint8 = 201
)

// Sizes of fixed wire structures in bytes.
const (
	// MACHeaderLen is the length of the 3-address MAC header used by
	// management and data frames here: Frame Control (2) + Duration (2)
	// + 3 addresses (18) + Sequence Control (2) = 24 bytes, i.e. the
	// 224 bits of Table II.
	MACHeaderLen = 24
	// ACKFrameLen is the length of an ACK control frame: Frame Control
	// (2) + Duration (2) + RA (6) + FCS (4).
	ACKFrameLen = 14
	// PSPollFrameLen is the length of a PS-Poll control frame: Frame
	// Control (2) + AID (2) + BSSID (6) + TA (6) + FCS (4).
	PSPollFrameLen = 20
	// FCSLen is the length of the frame check sequence. The simulator
	// accounts for it in airtime but does not append it to marshalled
	// bytes (frames are delivered intact or not at all).
	FCSLen = 4
)

// Common errors returned by frame and element decoders.
var (
	ErrShortFrame     = errors.New("dot11: frame too short")
	ErrBadFrameType   = errors.New("dot11: unexpected frame type/subtype")
	ErrElementTooLong = errors.New("dot11: information element exceeds 255 bytes")
	ErrBadElement     = errors.New("dot11: malformed information element")
)

// FrameControl is the 16-bit Frame Control field. Only the fields the
// HIDE system needs are modelled.
type FrameControl struct {
	Type     FrameType
	Subtype  uint8
	ToDS     bool
	FromDS   bool
	MoreData bool // AP: more buffered frames follow (paper Eq. 10's d_more)
	PwrMgmt  bool // station: entering power-save mode
	Retry    bool
}

// Marshal encodes the frame control field into two bytes.
func (fc FrameControl) Marshal() [2]byte {
	var b [2]byte
	b[0] = byte(fc.Type)<<2 | fc.Subtype<<4 // protocol version 0
	if fc.ToDS {
		b[1] |= 0x01
	}
	if fc.FromDS {
		b[1] |= 0x02
	}
	if fc.Retry {
		b[1] |= 0x08
	}
	if fc.PwrMgmt {
		b[1] |= 0x10
	}
	if fc.MoreData {
		b[1] |= 0x20
	}
	return b
}

// UnmarshalFrameControl decodes a frame control field.
func UnmarshalFrameControl(b [2]byte) FrameControl {
	return FrameControl{
		Type:     FrameType(b[0] >> 2 & 0x03),
		Subtype:  b[0] >> 4,
		ToDS:     b[1]&0x01 != 0,
		FromDS:   b[1]&0x02 != 0,
		Retry:    b[1]&0x08 != 0,
		PwrMgmt:  b[1]&0x10 != 0,
		MoreData: b[1]&0x20 != 0,
	}
}

// MACHeader is the 3-address MAC header shared by management and data
// frames in an infrastructure BSS.
type MACHeader struct {
	FC       FrameControl
	Duration uint16
	Addr1    MACAddr // receiver / destination
	Addr2    MACAddr // transmitter / source
	Addr3    MACAddr // BSSID (or DA/SA depending on ToDS/FromDS)
	Seq      uint16  // sequence control (seq<<4 | frag)
}

// marshalInto writes the header into b, which must have room for
// MACHeaderLen bytes.
func (h *MACHeader) marshalInto(b []byte) {
	fc := h.FC.Marshal()
	b[0], b[1] = fc[0], fc[1]
	putUint16(b[2:], h.Duration)
	copy(b[4:], h.Addr1[:])
	copy(b[10:], h.Addr2[:])
	copy(b[16:], h.Addr3[:])
	putUint16(b[22:], h.Seq)
}

// unmarshalMACHeader decodes a MAC header from the front of b.
func unmarshalMACHeader(b []byte) (MACHeader, error) {
	if len(b) < MACHeaderLen {
		return MACHeader{}, fmt.Errorf("%w: %d bytes for MAC header", ErrShortFrame, len(b))
	}
	var h MACHeader
	h.FC = UnmarshalFrameControl([2]byte{b[0], b[1]})
	h.Duration = getUint16(b[2:])
	copy(h.Addr1[:], b[4:])
	copy(h.Addr2[:], b[10:])
	copy(h.Addr3[:], b[16:])
	h.Seq = getUint16(b[22:])
	return h, nil
}

// putUint16 writes v little-endian.
func putUint16(b []byte, v uint16) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
}

// getUint16 reads a little-endian uint16.
func getUint16(b []byte) uint16 {
	return uint16(b[0]) | uint16(b[1])<<8
}
