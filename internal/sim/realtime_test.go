package sim

import (
	"context"
	"testing"
	"time"
)

func TestRunRealtimeDispatchesAtWallPace(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, at := range []time.Duration{10 * time.Millisecond, 30 * time.Millisecond} {
		at := at
		e.MustScheduleAt(at, func(now time.Duration) { fired = append(fired, now) })
	}
	inject := make(chan Event)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	go func() {
		// Close inject once both events have had time to fire.
		time.Sleep(100 * time.Millisecond)
		close(inject)
	}()
	if err := e.RunRealtime(ctx, inject); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0] != 10*time.Millisecond || fired[1] != 30*time.Millisecond {
		t.Fatalf("virtual fire times %v", fired)
	}
	if elapsed < 30*time.Millisecond {
		t.Fatalf("returned after %v; events cannot have fired at wall pace", elapsed)
	}
}

func TestRunRealtimeInjection(t *testing.T) {
	e := New()
	inject := make(chan Event, 1)
	got := make(chan time.Duration, 1)
	inject <- func(now time.Duration) {
		got <- now
		// Injected code can schedule engine events.
		e.MustScheduleAfter(time.Millisecond, func(time.Duration) {})
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(inject)
	}()
	if err := e.RunRealtime(context.Background(), inject); err != nil {
		t.Fatal(err)
	}
	select {
	case now := <-got:
		if now < 0 {
			t.Fatalf("injected at negative virtual time %v", now)
		}
	default:
		t.Fatal("injection never ran")
	}
	if e.Fired() != 1 {
		t.Fatalf("scheduled-from-injection event fired %d times, want 1", e.Fired())
	}
}

func TestRunRealtimeCancellation(t *testing.T) {
	e := New()
	e.MustScheduleAt(time.Hour, func(time.Duration) { t.Error("distant event fired") })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.RunRealtime(ctx, make(chan Event))
	if err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation not prompt")
	}
}

func TestRunRealtimeReentrantPanics(t *testing.T) {
	e := New()
	inject := make(chan Event, 1)
	inject <- func(time.Duration) {
		defer func() {
			if recover() == nil {
				t.Error("reentrant RunRealtime did not panic")
			}
		}()
		_ = e.RunRealtime(context.Background(), nil)
	}
	go func() {
		time.Sleep(30 * time.Millisecond)
		close(inject)
	}()
	if err := e.RunRealtime(context.Background(), inject); err != nil {
		t.Fatal(err)
	}
}
