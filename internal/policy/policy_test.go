package policy

import (
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/trace"
)

func genTagged(t *testing.T, s trace.Scenario, p float64) (*trace.Trace, []bool) {
	t.Helper()
	tr, err := trace.GenerateScenario(s)
	if err != nil {
		t.Fatal(err)
	}
	return tr, trace.TagUniform(tr, p, 1234)
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		ReceiveAll: "receive-all",
		ClientSide: "client-side",
		HIDE:       "HIDE",
		Combined:   "HIDE+client-side",
	}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), w)
		}
	}
}

func TestNewRejectsUnknownKind(t *testing.T) {
	if _, err := New(Kind(99)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestHasOverhead(t *testing.T) {
	if ReceiveAll.HasOverhead() || ClientSide.HasOverhead() {
		t.Error("non-HIDE policies report overhead")
	}
	if !HIDE.HasOverhead() || !Combined.HasOverhead() {
		t.Error("HIDE policies must report overhead")
	}
}

func TestApplyLengthMismatch(t *testing.T) {
	tr, _ := genTagged(t, trace.Starbucks, 0.1)
	for _, k := range Kinds {
		p, err := New(k)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Apply(tr, make([]bool, 3)); err == nil {
			t.Errorf("%v: mismatched usefulness vector accepted", k)
		}
	}
}

func TestReceiveAllPassesEverythingWithTau(t *testing.T) {
	tr, u := genTagged(t, trace.Starbucks, 0.1)
	p, _ := New(ReceiveAll)
	arr, err := p.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != len(tr.Frames) {
		t.Fatalf("receive-all dropped frames: %d of %d", len(arr), len(tr.Frames))
	}
	for i, a := range arr {
		if a.Wakelock != time.Second {
			t.Fatalf("frame %d wakelock = %v, want 1s", i, a.Wakelock)
		}
		if a.At != tr.Frames[i].At || a.Length != tr.Frames[i].Length {
			t.Fatalf("frame %d fields corrupted", i)
		}
	}
}

func TestClientSideDriverWakelockForUseless(t *testing.T) {
	tr, u := genTagged(t, trace.CSDept, 0.1)
	p, _ := New(ClientSide)
	arr, err := p.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != len(tr.Frames) {
		t.Fatal("client-side must still receive every frame")
	}
	for i, a := range arr {
		want := DefaultDriverWakelock
		if u[i] {
			want = time.Second
		}
		if a.Wakelock != want {
			t.Fatalf("frame %d (useful=%v) wakelock = %v", i, u[i], a.Wakelock)
		}
	}
}

func TestClientSideWithTauEqualsReceiveAll(t *testing.T) {
	// The lower-bound sweep relies on δ=τ degenerating to receive-all.
	tr, u := genTagged(t, trace.WRL, 0.1)
	ra, _ := New(ReceiveAll)
	raArr, err := ra.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	csArr, err := ClientSidePolicy{DriverWakelock: time.Second}.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(raArr) != len(csArr) {
		t.Fatalf("lengths differ: %d vs %d", len(raArr), len(csArr))
	}
	for i := range raArr {
		if raArr[i] != csArr[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestHIDEPassesOnlyUseful(t *testing.T) {
	tr, u := genTagged(t, trace.WML, 0.1)
	p, _ := New(HIDE)
	arr, err := p.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	nUseful := 0
	for _, b := range u {
		if b {
			nUseful++
		}
	}
	if len(arr) != nUseful {
		t.Fatalf("HIDE passed %d frames, want %d useful", len(arr), nUseful)
	}
	for _, a := range arr {
		if a.Wakelock != time.Second {
			t.Fatal("HIDE useful frame without full wakelock")
		}
	}
}

func TestCombinedZeroStalenessEqualsHIDE(t *testing.T) {
	tr, u := genTagged(t, trace.WRL, 0.1)
	h, _ := New(HIDE)
	hArr, err := h.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	cArr, err := CombinedPolicy{}.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(hArr) != len(cArr) {
		t.Fatalf("combined(0) length %d != HIDE %d", len(cArr), len(hArr))
	}
	for i := range hArr {
		if hArr[i] != cArr[i] {
			t.Fatalf("combined(0) diverges from HIDE at %d", i)
		}
	}
}

func TestCombinedStalenessDropsWakelocks(t *testing.T) {
	tr, u := genTagged(t, trace.WRL, 0.2)
	arr, err := CombinedPolicy{Staleness: 0.5, Seed: 9}.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, a := range arr {
		if a.Wakelock == 0 {
			zero++
		}
	}
	frac := float64(zero) / float64(len(arr))
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("stale fraction = %v, want ~0.5", frac)
	}
}

func TestCombinedRejectsBadStaleness(t *testing.T) {
	tr, u := genTagged(t, trace.Starbucks, 0.1)
	if _, err := (CombinedPolicy{Staleness: 1.5}).Apply(tr, u); err == nil {
		t.Fatal("staleness > 1 accepted")
	}
	if _, err := (CombinedPolicy{Staleness: -0.1}).Apply(tr, u); err == nil {
		t.Fatal("negative staleness accepted")
	}
}

// evaluate runs the energy model for a policy over a tagged trace.
func evaluate(t *testing.T, k Kind, tr *trace.Trace, u []bool, dev energy.Profile) energy.Breakdown {
	t.Helper()
	p, err := New(k)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := p.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	cfg := energy.Config{Device: dev, Duration: tr.Duration}
	if k.HasOverhead() {
		cfg.Overhead = energy.DefaultOverhead()
	}
	b, err := energy.Compute(arr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestHIDEBeatsReceiveAllEverywhere(t *testing.T) {
	// HIDE must beat receive-all on every trace and device at 10%
	// useful. (Client-side ordering is a property of the lower-bound
	// sweep and is asserted in internal/core.)
	for _, s := range trace.Scenarios {
		tr, u := genTagged(t, s, 0.1)
		for _, dev := range energy.Profiles {
			ra := evaluate(t, ReceiveAll, tr, u, dev)
			hd := evaluate(t, HIDE, tr, u, dev)
			if hd.TotalJ() >= ra.TotalJ() {
				t.Errorf("%s/%s: HIDE %.1f J >= receive-all %.1f J", s, dev.Name, hd.TotalJ(), ra.TotalJ())
			}
			if hd.SuspendFraction < ra.SuspendFraction {
				t.Errorf("%s/%s: HIDE suspends less (%.3f) than receive-all (%.3f)", s, dev.Name, hd.SuspendFraction, ra.SuspendFraction)
			}
		}
	}
}

func TestHIDEEnergyMonotoneInUsefulFraction(t *testing.T) {
	// Nested usefulness sets: shrinking the useful set can only reduce
	// HIDE's energy.
	tr, err := trace.GenerateScenario(trace.Classroom)
	if err != nil {
		t.Fatal(err)
	}
	u10 := trace.TagUniform(tr, 0.10, 42)
	u2 := make([]bool, len(u10)) // strict subset: every 5th useful frame
	n := 0
	for i, b := range u10 {
		if b {
			if n%5 == 0 {
				u2[i] = true
			}
			n++
		}
	}
	for _, dev := range energy.Profiles {
		e10 := evaluate(t, HIDE, tr, u10, dev)
		e2 := evaluate(t, HIDE, tr, u2, dev)
		if e2.TotalJ() >= e10.TotalJ() {
			t.Errorf("%s: HIDE energy not monotone: subset %.1f J >= superset %.1f J", dev.Name, e2.TotalJ(), e10.TotalJ())
		}
		if e2.SuspendFraction <= e10.SuspendFraction {
			t.Errorf("%s: suspend fraction not monotone", dev.Name)
		}
	}
}

func TestZeroDriverWakelockChurnsOnDenseTraffic(t *testing.T) {
	// On a dense trace, dropping with a zero wakelock suspend-churns:
	// the S4's suspend-operation power (Esp/Tsp ≈ 520 mW) exceeds its
	// active-idle power, so the zero-wakelock filter must cost MORE
	// than a 100 ms driver wakelock there. This is the pathology the
	// DefaultDriverWakelock doc comment describes.
	tr, u := genTagged(t, trace.WML, 0.1)
	zero := ClientSidePolicy{DriverWakelock: 0}
	hundred := ClientSidePolicy{DriverWakelock: 100 * time.Millisecond}
	zArr, err := zero.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	hArr, err := hundred.Apply(tr, u)
	if err != nil {
		t.Fatal(err)
	}
	cfg := energy.Config{Device: energy.GalaxyS4, Duration: tr.Duration}
	zB, err := energy.Compute(zArr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := energy.Compute(hArr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if zB.TotalJ() <= hB.TotalJ() {
		t.Errorf("zero-wakelock %.1f J <= 100ms-wakelock %.1f J; churn pathology not reproduced", zB.TotalJ(), hB.TotalJ())
	}
}
