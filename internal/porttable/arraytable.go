package porttable

import (
	"sort"

	"repro/internal/dot11"
)

// ArrayTable is an alternative Client UDP Port Table layout for the
// ablation study: instead of hashing, it direct-indexes a 65536-entry
// array by port number — the layout embedded router firmware tends to
// choose, trading 512 KiB-ish of memory for O(1) lookups with no hash
// or probe work on the per-DTIM Algorithm 1 path.
//
// It implements the same operations as Table so the two are
// interchangeable in benchmarks and in the AP.
type ArrayTable struct {
	byPort   [1 << 16][]dot11.AID
	byClient map[dot11.AID][]uint16
	size     int
	ops      OpCounts
}

// NewArray returns an empty ArrayTable.
func NewArray() *ArrayTable {
	return &ArrayTable{byClient: make(map[dot11.AID][]uint16)}
}

// Update replaces the port set for a client, like Table.Update.
func (t *ArrayTable) Update(aid dot11.AID, ports []uint16) {
	for _, p := range t.byClient[aid] {
		t.removeAID(p, aid)
		t.ops.Deletes++
	}
	delete(t.byClient, aid)

	if len(ports) == 0 {
		return
	}
	uniq := make([]uint16, 0, len(ports))
	seen := make(map[uint16]struct{}, len(ports))
	for _, p := range ports {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		uniq = append(uniq, p)
		t.byPort[p] = append(t.byPort[p], aid)
		t.size++
		t.ops.Inserts++
	}
	t.byClient[aid] = uniq
}

// removeAID deletes one AID from a port's list.
func (t *ArrayTable) removeAID(port uint16, aid dot11.AID) {
	list := t.byPort[port]
	for i, a := range list {
		if a == aid {
			list[i] = list[len(list)-1]
			t.byPort[port] = list[:len(list)-1]
			t.size--
			return
		}
	}
}

// Remove drops every entry for a client.
func (t *ArrayTable) Remove(aid dot11.AID) { t.Update(aid, nil) }

// Lookup returns the AIDs listening on port, sorted ascending.
func (t *ArrayTable) Lookup(port uint16) []dot11.AID {
	t.ops.Lookups++
	list := t.byPort[port]
	if len(list) == 0 {
		return nil
	}
	out := append([]dot11.AID(nil), list...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Listening reports whether the client has the port open.
func (t *ArrayTable) Listening(port uint16, aid dot11.AID) bool {
	for _, a := range t.byPort[port] {
		if a == aid {
			return true
		}
	}
	return false
}

// Ports returns the client's current open ports.
func (t *ArrayTable) Ports(aid dot11.AID) []uint16 {
	return append([]uint16(nil), t.byClient[aid]...)
}

// Clients returns the number of clients with at least one entry.
func (t *ArrayTable) Clients() int { return len(t.byClient) }

// Len returns the number of (port, client) pairs.
func (t *ArrayTable) Len() int { return t.size }

// Ops returns the operation counters.
func (t *ArrayTable) Ops() OpCounts { return t.ops }
