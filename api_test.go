package hide

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestPublicProfiles(t *testing.T) {
	if len(Profiles) != 2 {
		t.Fatalf("Profiles has %d entries, want 2", len(Profiles))
	}
	p, err := ProfileByName("Nexus One")
	if err != nil || p.Name != "Nexus One" {
		t.Fatalf("ProfileByName: %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestPublicScenarios(t *testing.T) {
	if len(Scenarios) != 5 {
		t.Fatalf("Scenarios has %d entries, want 5", len(Scenarios))
	}
	names := map[string]bool{}
	for _, s := range Scenarios {
		names[s.String()] = true
	}
	for _, want := range []string{"Classroom", "CS_Dept", "WML", "Starbucks", "WRL"} {
		if !names[want] {
			t.Errorf("missing scenario %q", want)
		}
	}
}

func TestPublicPipelineEndToEnd(t *testing.T) {
	tr, err := GenerateTrace(Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := CompareEnergy(tr, NexusOne)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ReceiveAll.AvgPowerMW() <= 0 {
		t.Fatal("non-positive receive-all power")
	}
	if cmp.Savings(0) <= 0 || cmp.Savings(0) >= 1 {
		t.Fatalf("HIDE:10%% savings %v outside (0, 1)", cmp.Savings(0))
	}
	if cmp.SavingsVsClientSide(0) <= 0 {
		t.Fatalf("HIDE must beat the client-side lower bound, got %v", cmp.SavingsVsClientSide(0))
	}
}

func TestPublicTaggingHelpers(t *testing.T) {
	tr, err := GenerateTrace(CSDept)
	if err != nil {
		t.Fatal(err)
	}
	u := TagUniform(tr, 0.1, 1)
	if len(u) != len(tr.Frames) {
		t.Fatal("tag length mismatch")
	}
	open := OpenPortsForFraction(tr, 0.1)
	u2 := TagByOpenPorts(tr, open)
	if len(u2) != len(tr.Frames) {
		t.Fatal("port tag length mismatch")
	}
	r, err := Evaluate(tr, u2, GalaxyS4, HIDE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Policy != HIDE || r.Device != "Galaxy S4" {
		t.Fatalf("result metadata: %+v", r)
	}
}

func TestPublicTraceIO(t *testing.T) {
	tr, err := GenerateTrace(Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	var csv, jsonl bytes.Buffer
	if err := WriteTraceCSV(&csv, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceJSONL(&jsonl, tr); err != nil {
		t.Fatal(err)
	}
	a, err := ReadTraceCSV(&csv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadTraceJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Frames) != len(tr.Frames) || len(b.Frames) != len(tr.Frames) {
		t.Fatal("round trips lost frames")
	}
	if !strings.HasPrefix(csv.String(), "") { // csv drained by reader
		t.Fatal("unreachable")
	}
}

func TestPublicOverheadAnalyses(t *testing.T) {
	c, err := CapacityOverhead(TableII(), CapacityParams{
		HIDEFraction:    0.75,
		PortMsgInterval: 10 * time.Second,
		PortsPerMsg:     50,
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 || c > 0.005 {
		t.Fatalf("capacity overhead %v outside (0, 0.5%%]", c)
	}
	d, err := DelayOverhead(DelayDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 0.03 {
		t.Fatalf("delay overhead %v outside (0, 3%%]", d)
	}
}

func TestPublicNetworkSim(t *testing.T) {
	net, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := net.AddStation(StationHIDE, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ScenarioConfig(Starbucks)
	cfg.Duration = time.Minute
	tr, err := GenerateTraceConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Replay(tr); err != nil {
		t.Fatal(err)
	}
	b, err := net.StationEnergy(st, NexusOne, tr.Duration, true)
	if err != nil {
		t.Fatal(err)
	}
	if b.Duration != tr.Duration {
		t.Fatalf("breakdown duration %v, want %v", b.Duration, tr.Duration)
	}
}

func TestPublicPortTable(t *testing.T) {
	tab := NewPortTable()
	tab.Update(1, []uint16{5353})
	if got := tab.Lookup(5353); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Lookup = %v", got)
	}
	timings := MeasureTableTimings(10, 10, 1)
	if timings.Insert <= 0 {
		t.Fatal("measured insert time not positive")
	}
}
