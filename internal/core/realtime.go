package core

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/dot11"
	"repro/internal/netmedium"
	"repro/internal/trace"
)

// This file pins the virtual-time simulation to the wall clock and
// exposes it over the network: taps subscribe for a monitor-mode frame
// stream and can inject broadcast traffic into the AP while the
// simulation runs — the live-observability surface of the simulator.

// defaultPingEvery is the default liveness-sweep cadence in virtual
// time.
const defaultPingEvery = time.Second

// Monitor couples a Network to a netmedium server.
type Monitor struct {
	Server *netmedium.Server

	mu        sync.Mutex
	pending   []netmedium.InjectRequest
	served    chan struct{}
	pingEvery time.Duration // 0 = defaultPingEvery
}

// ServeMonitor starts a monitor/inject service on pc. Every frame on
// the medium streams to subscribers; inject requests are applied at
// the next simulation step. The returned Monitor's Close stops the
// service.
//
//lint:ignore ctxfirst the monitor lifetime is owned by Close, not a context
func (n *Network) ServeMonitor(pc net.PacketConn) *Monitor {
	m := &Monitor{served: make(chan struct{})}
	m.Server = netmedium.NewServer(pc, func(req netmedium.InjectRequest) {
		m.mu.Lock()
		m.pending = append(m.pending, req)
		m.mu.Unlock()
	})
	n.Medium.SetTap(m.Server.Publish)
	n.monitor = m
	//lint:ignore gojoin the serve goroutine IS the monitor's lifetime — Close joins it through the served channel; it cannot join here or ServeMonitor would never return
	go func() {
		defer close(m.served)
		_ = m.Server.Serve() //lint:ignore errdrop Serve returns only when Close shuts the socket
	}()
	return m
}

// SetLiveness configures the tap-eviction parameters: pingEvery is
// the sweep cadence in virtual time (0 keeps the one-second default),
// maxMissed is how many unanswered sweeps evict a tap (<1 keeps the
// default of 3).
func (m *Monitor) SetLiveness(pingEvery time.Duration, maxMissed int) {
	m.mu.Lock()
	m.pingEvery = pingEvery
	m.mu.Unlock()
	m.Server.SetLiveness(maxMissed)
}

// livenessInterval is the effective sweep cadence.
func (m *Monitor) livenessInterval() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pingEvery > 0 {
		return m.pingEvery
	}
	return defaultPingEvery
}

// Close stops the monitor service and waits for its goroutine.
func (m *Monitor) Close() error {
	err := m.Server.Close()
	<-m.served
	return err
}

// drainInto applies pending inject requests to the AP.
func (m *Monitor) drainInto(n *Network) {
	m.mu.Lock()
	reqs := m.pending
	m.pending = nil
	m.mu.Unlock()
	for _, r := range reqs {
		n.AP.EnqueueGroup(dot11.UDPDatagram{
			DstIP:   [4]byte{255, 255, 255, 255},
			DstPort: r.DstPort,
			Payload: make([]byte, int(r.PayloadSize)),
		}, dot11.Rate1Mbps)
	}
}

// ReplayRealtime replays the trace paced to the wall clock: one second
// of virtual time takes 1/speed wall seconds. Pending monitor injects
// are applied between simulation steps. The context cancels the run
// early.
func (n *Network) ReplayRealtime(ctx context.Context, tr *trace.Trace, speed float64) error {
	if speed <= 0 {
		return fmt.Errorf("core: non-positive realtime speed %v", speed)
	}
	if err := tr.Validate(); err != nil {
		return err
	}
	n.AP.Start()
	for _, f := range tr.Frames {
		f := f
		payload := f.Length - dot11.MACHeaderLen - dot11.UDPEncapsLen
		if payload < 0 {
			payload = 0
		}
		if _, err := n.Engine.ScheduleAt(f.At, func(time.Duration) {
			n.AP.EnqueueGroup(dot11.UDPDatagram{
				DstIP:   [4]byte{255, 255, 255, 255},
				DstPort: f.DstPort,
				Payload: make([]byte, payload),
			}, f.Rate)
		}); err != nil {
			return fmt.Errorf("core: scheduling trace frame: %w", err)
		}
	}
	end := tr.Duration + dot11.DefaultBeaconInterval

	// minSleep bounds timer churn: virtual gaps shorter than this (in
	// wall time) dispatch immediately.
	const minSleep = 200 * time.Microsecond
	// Liveness sweeps reap crashed taps at the configured cadence
	// (default once per virtual second).
	pingEvery := defaultPingEvery
	if n.monitor != nil {
		pingEvery = n.monitor.livenessInterval()
	}
	nextPing := pingEvery
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		if n.monitor != nil {
			n.monitor.drainInto(n)
			if now := n.Engine.Now(); now >= nextPing {
				n.monitor.Server.PingTaps()
				for nextPing <= now {
					nextPing += pingEvery
				}
			}
		}
		next, ok := n.Engine.NextEventAt()
		if !ok || next > end {
			break
		}
		if gap := next - n.Engine.Now(); gap > 0 {
			wall := time.Duration(float64(gap) / speed)
			if wall >= minSleep {
				timer := time.NewTimer(wall)
				select {
				case <-ctx.Done():
					timer.Stop()
					return ctx.Err()
				case <-timer.C:
				}
			}
		}
		n.Engine.Step()
	}
	n.Engine.RunUntil(end)
	return nil
}
