package fault

import (
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

func delivery(kind dot11.FrameKind, rcv dot11.MACAddr, at time.Duration) Delivery {
	return Delivery{Kind: kind, Rcv: rcv, At: at}
}

func TestLossMatchesBareDraw(t *testing.T) {
	// Loss must consume exactly one Float64 per delivery and decide
	// exactly as the medium's historical lossProb comparison did.
	a, b := sim.NewRNG(7), sim.NewRNG(7)
	plan := Loss{P: 0.3}
	for i := 0; i < 1000; i++ {
		want := b.Float64() < 0.3
		got := plan.Deliver(delivery(dot11.KindData, dot11.MACAddr{}, 0), a).Drop
		if got != want {
			t.Fatalf("delivery %d: Drop=%v, bare draw says %v", i, got, want)
		}
	}
}

func TestGilbertElliottValidation(t *testing.T) {
	if _, err := NewGilbertElliott(0.1, 0.2, 0.01, 0.5); err != nil {
		t.Fatalf("valid probabilities rejected: %v", err)
	}
	for _, bad := range [][4]float64{
		{-0.1, 0.2, 0.01, 0.5},
		{0.1, 1.2, 0.01, 0.5},
		{0.1, 0.2, -1, 0.5},
		{0.1, 0.2, 0.01, 2},
	} {
		if _, err := NewGilbertElliott(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("NewGilbertElliott(%v) accepted out-of-range probability", bad)
		}
	}
}

func TestGilbertElliottFixedDraws(t *testing.T) {
	// Exactly two draws per delivery regardless of outcome: after n
	// deliveries the RNG must sit 2n draws into its stream.
	g, err := NewGilbertElliott(0.3, 0.3, 0.05, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	const n = 500
	for i := 0; i < n; i++ {
		g.Deliver(delivery(dot11.KindData, dot11.MACAddr{}, 0), rng)
	}
	ref := sim.NewRNG(11)
	for i := 0; i < 2*n; i++ {
		ref.Float64()
	}
	if got, want := rng.Uint64(), ref.Uint64(); got != want {
		t.Fatalf("RNG stream offset drifted: next draw %d, want %d", got, want)
	}
}

func TestGilbertElliottIsBursty(t *testing.T) {
	// With sticky states and extreme per-state loss, drops must come
	// in runs: the number of state-alternations in the drop/deliver
	// sequence should be far below what independent loss produces.
	g, err := NewGilbertElliott(0.02, 0.02, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(3)
	const n = 5000
	drops, switches := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		d := g.Deliver(delivery(dot11.KindData, dot11.MACAddr{}, 0), rng).Drop
		if d {
			drops++
		}
		if i > 0 && d != prev {
			switches++
		}
		prev = d
	}
	if drops == 0 || drops == n {
		t.Fatalf("degenerate channel: %d drops of %d", drops, n)
	}
	// Independent loss at the same rate would switch roughly
	// 2*p*(1-p)*n ≈ n/2 times; the bursty channel switches at the
	// state-flip rate ≈ 0.02*n.
	if switches > n/5 {
		t.Errorf("%d run switches in %d deliveries: not bursty", switches, n)
	}
}

func TestOnlyGatesKindAndRandomness(t *testing.T) {
	rng := sim.NewRNG(5)
	plan := Only(Loss{P: 1}, dot11.KindBeacon)
	if !plan.Deliver(delivery(dot11.KindBeacon, dot11.MACAddr{}, 0), rng).Drop {
		t.Error("matching kind not dropped")
	}
	ref := sim.NewRNG(5)
	ref.Float64()
	if v := plan.Deliver(delivery(dot11.KindData, dot11.MACAddr{}, 0), rng); v.Faulty() {
		t.Error("non-matching kind faulted")
	}
	// The non-matching delivery must not have consumed randomness.
	if got, want := rng.Uint64(), ref.Uint64(); got != want {
		t.Error("Only consumed randomness for a non-matching delivery")
	}
}

func TestToGatesReceiver(t *testing.T) {
	victim := dot11.MACAddr{1, 2, 3, 4, 5, 6}
	other := dot11.MACAddr{6, 5, 4, 3, 2, 1}
	rng := sim.NewRNG(1)
	plan := To(victim, Loss{P: 1})
	if !plan.Deliver(delivery(dot11.KindData, victim, 0), rng).Drop {
		t.Error("victim's delivery not dropped")
	}
	if plan.Deliver(delivery(dot11.KindData, other, 0), rng).Faulty() {
		t.Error("bystander's delivery faulted")
	}
}

func TestWindowGatesTime(t *testing.T) {
	rng := sim.NewRNG(1)
	plan := Window{From: time.Second, To: 2 * time.Second, Inner: Loss{P: 1}}
	cases := []struct {
		at   time.Duration
		drop bool
	}{
		{0, false},
		{time.Second, true},
		{1500 * time.Millisecond, true},
		{2 * time.Second, false},
		{time.Hour, false},
	}
	for _, c := range cases {
		if got := plan.Deliver(delivery(dot11.KindData, dot11.MACAddr{}, c.at), rng).Drop; got != c.drop {
			t.Errorf("at %v: Drop=%v, want %v", c.at, got, c.drop)
		}
	}
	open := Window{From: time.Second, Inner: Loss{P: 1}}
	if !open.Deliver(delivery(dot11.KindData, dot11.MACAddr{}, time.Hour), rng).Drop {
		t.Error("open-ended window closed")
	}
}

func TestComposeORsAndAlwaysConsults(t *testing.T) {
	rng := sim.NewRNG(9)
	plan := Compose(Loss{P: 1}, Corrupt{P: 1}, Duplicate{P: 1})
	v := plan.Deliver(delivery(dot11.KindData, dot11.MACAddr{}, 0), rng)
	if !v.Drop || !v.Corrupt || !v.Duplicate {
		t.Fatalf("composed verdict %+v, want all effects", v)
	}
	// Every member must have been consulted (3 draws) even though the
	// first already voted to drop.
	ref := sim.NewRNG(9)
	for i := 0; i < 3; i++ {
		ref.Float64()
	}
	if got, want := rng.Uint64(), ref.Uint64(); got != want {
		t.Error("Compose short-circuited: RNG streams diverge under composition")
	}
}

func TestSilence(t *testing.T) {
	deaf := dot11.MACAddr{1, 1, 1, 1, 1, 1}
	rng := sim.NewRNG(1)
	plan := Silence(deaf, time.Second)
	if plan.Deliver(delivery(dot11.KindBeacon, deaf, 0), rng).Drop {
		t.Error("dropped before silence began")
	}
	if !plan.Deliver(delivery(dot11.KindBeacon, deaf, 2*time.Second), rng).Drop {
		t.Error("delivery to silenced node not dropped")
	}
	if plan.Deliver(delivery(dot11.KindBeacon, dot11.MACAddr{2}, 2*time.Second), rng).Faulty() {
		t.Error("bystander silenced")
	}
}

func TestRecorderTallies(t *testing.T) {
	rcv := dot11.MACAddr{0xaa, 0, 0, 0, 0, 1}
	rng := sim.NewRNG(1)
	rec := NewRecorder(Compose(
		Only(Loss{P: 1}, dot11.KindBeacon),
		Only(Corrupt{P: 1}, dot11.KindData),
		Only(Duplicate{P: 1}, dot11.KindACK),
	))
	rec.Deliver(delivery(dot11.KindBeacon, rcv, time.Second), rng)
	rec.Deliver(delivery(dot11.KindData, rcv, 2*time.Second), rng)
	rec.Deliver(delivery(dot11.KindACK, rcv, 3*time.Second), rng)
	rec.Deliver(delivery(dot11.KindPSPoll, rcv, 4*time.Second), rng) // untouched

	if got := rec.Drops(dot11.KindBeacon); got != 1 {
		t.Errorf("beacon drops = %d, want 1", got)
	}
	if got := rec.Corrupts(dot11.KindData); got != 1 {
		t.Errorf("data corruptions = %d, want 1", got)
	}
	if got := rec.Duplicates(dot11.KindACK); got != 1 {
		t.Errorf("ACK duplicates = %d, want 1", got)
	}
	if got := rec.DataFaults(rcv); got != 1 {
		t.Errorf("data faults for receiver = %d, want 1 (corruption only)", got)
	}
	if got := rec.Total(); got != 3 {
		t.Errorf("total = %d, want 3", got)
	}
	if got := rec.LastFaultAt(); got != 3*time.Second {
		t.Errorf("last fault at %v, want 3s", got)
	}
}
