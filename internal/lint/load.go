// Package loading: a small, deterministic substitute for
// golang.org/x/tools/go/packages built entirely on the standard
// library. Module packages are discovered by walking the tree, parsed
// with go/parser, and type-checked with go/types; imports inside the
// module resolve recursively through the loader itself, and standard
// library imports resolve through the compiler-independent "source"
// importer so no compiled export data is required.

package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was loaded as.
	Path string
	// ModulePath is the module prefix from go.mod.
	ModulePath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// A Loader parses and type-checks packages of one module. It caches
// loaded packages, so shared dependencies type-check once.
type Loader struct {
	// Root is the module root directory (holding go.mod).
	Root string

	fset    *token.FileSet
	modpath string
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle detection
	std     types.ImporterFrom
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	modpath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modpath = strings.TrimSpace(rest)
			break
		}
	}
	if modpath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	// The source importer type-checks the standard library from
	// GOROOT/src. Cgo-enabled variants of net and friends would need
	// the cgo preprocessor; the pure-Go variants type-check cleanly
	// and have identical exported APIs, so force them.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Root:    root,
		fset:    fset,
		modpath: modpath,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     std,
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modpath }

// Load resolves patterns to packages. Supported patterns: "./..."
// (every package under root), "./dir/..." (a subtree), and "./dir" (a
// single directory). Results are sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	seen := make(map[string]bool)
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.packageDirs(l.Root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.pathFor(d))
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.Root, strings.TrimSuffix(pat, "/..."))
			dirs, err := l.packageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(l.pathFor(d))
			}
		default:
			add(l.pathFor(filepath.Join(l.Root, pat)))
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDirAs parses and type-checks the single directory dir as if it
// had the given import path. The lint test harness uses it to run
// fixture packages under the scoping path of the code they imitate
// (e.g. a testdata directory analyzed as "repro/internal/sim").
func (l *Loader) LoadDirAs(dir, asPath string) (*Package, error) {
	return l.check(asPath, dir)
}

// packageDirs returns the directories under base holding at least one
// non-test Go file, skipping testdata, hidden, and underscore trees.
func (l *Loader) packageDirs(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(path)
			if len(out) == 0 || out[len(out)-1] != dir {
				out = append(out, dir)
			}
		}
		return nil
	})
	return out, err
}

// pathFor maps a directory to its import path inside the module.
func (l *Loader) pathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.modpath
	}
	return l.modpath + "/" + filepath.ToSlash(rel)
}

// dirFor maps a module import path back to its directory.
func (l *Loader) dirFor(path string) string {
	if path == l.modpath {
		return l.Root
	}
	return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.modpath+"/")))
}

// load type-checks the module package at the import path, loading its
// module dependencies first.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	pkg, err := l.check(path, l.dirFor(path))
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// check parses dir's non-test files and type-checks them as path.
func (l *Loader) check(path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and GOOS/GOARCH
		// filename suffixes) the way the go tool does; an excluded file
		// would otherwise poison the type-check with declarations the
		// build never sees.
		if match, err := build.Default.MatchFile(dir, name); err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		} else if !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:       path,
		ModulePath: l.modpath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// loaderImporter routes module-internal imports back through the
// loader and everything else to the standard-library source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.modpath || strings.HasPrefix(path, l.modpath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
