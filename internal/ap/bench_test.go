package ap

import (
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/sim"
)

// benchAP builds a HIDE AP with clients associated and port-table
// entries registered, its beacon loop started.
func benchAP(clients int, dtimPeriod int) (*sim.Engine, *AP) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 1)
	a := New(eng, med, Config{
		BSSID:      dot11.MACAddr{0x02, 0x1d, 0xe0, 0, 0, 1},
		SSID:       "bench",
		HIDE:       true,
		DTIMPeriod: dtimPeriod,
	})
	for i := 0; i < clients; i++ {
		addr := dot11.MACAddr{0x02, 0x1d, 0xe0, 0, 1, byte(i)}
		aid, err := a.Associate(addr, true)
		if err != nil {
			panic(err)
		}
		a.Table().Update(aid, []uint16{5353, uint16(6000 + i)})
	}
	a.Start()
	return eng, a
}

// BenchmarkBeaconIdleDTIM measures one idle DTIM beacon: 20 HIDE
// clients with registered ports, no buffered traffic. Every beacon is
// a DTIM (period 1), so this is the recurring AP cost the paper's
// Section V overhead analysis wants kept small.
func BenchmarkBeaconIdleDTIM(b *testing.B) {
	eng, a := benchAP(20, 1)
	interval := a.cfg.BeaconInterval
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunUntil(time.Duration(i+1) * interval)
	}
	if a.Stats().BeaconsSent < b.N {
		b.Fatalf("sent %d beacons, want >= %d", a.Stats().BeaconsSent, b.N)
	}
}

// BenchmarkBeaconBusyDTIM measures a DTIM with buffered group traffic:
// the BTIM is recomputed via Algorithm 1 and the frames flush.
func BenchmarkBeaconBusyDTIM(b *testing.B) {
	eng, a := benchAP(20, 1)
	interval := a.cfg.BeaconInterval
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate11Mbps)
		a.EnqueueGroup(dot11.UDPDatagram{DstPort: 9999}, dot11.Rate11Mbps)
		eng.RunUntil(time.Duration(i+1) * interval)
	}
}
