package check

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/station"
	"repro/internal/trace"
)

// ChaosBudget carries the fault accounting a scenario's MissBudget
// closure may price wanted-frame loss against: the "no wanted
// broadcast lost beyond the faulted frame itself" invariant compares
// the measured station's miss count to a bound derived from the
// faults actually injected.
type ChaosBudget struct {
	// DataFaults counts data-frame deliveries to the measured station
	// that the channel plan dropped or corrupted.
	DataFaults int
	// GroupFramesLost counts buffered group frames the AP wiped on
	// Restart.
	GroupFramesLost int
	// BlindWanted counts wanted frames enqueued between an AP restart
	// and the first post-restart beacon: they flush against a
	// still-empty Client UDP Port Table before the station has had any
	// chance to re-register, so their loss is inherent to the restart,
	// not a protocol defect.
	BlindWanted int
}

// ChaosScenario is one named fault regime the chaos grid drives the
// hardened protocol through. Channel faults come from Plan; entity
// faults (client crash, AP restart) are scheduled as simulation
// events halfway through the trace. All channel faults are windowed
// to end with the trace so post-recovery convergence is asserted on a
// clean channel.
type ChaosScenario struct {
	// Name labels the scenario in reports and -fault flags.
	Name string
	// Note is a one-line description.
	Note string
	// Plan builds a fresh channel fault plan for one run (stateful
	// channels like Gilbert–Elliott must not be shared between runs).
	// Nil means the channel is pristine (entity-fault scenarios).
	Plan func() fault.Plan
	// CrashVictim crashes the second station (no deregistration)
	// halfway through the trace.
	CrashVictim bool
	// RestartAP power-cycles the AP (wiping the Client UDP Port Table)
	// halfway through the trace.
	RestartAP bool
	// MissBudget bounds how many wanted broadcasts the measured
	// station may miss. Nil leaves the miss count unasserted (regimes
	// where secondary loss is legitimate, e.g. lost end-of-burst
	// markers truncating a listen window).
	MissBudget func(b ChaosBudget) int
	// WantGiveUps asserts the retry budget was actually exhausted at
	// least once (the scenario exists to exercise that path).
	WantGiveUps bool
	// WantRetries asserts at least one port-message retransmission
	// happened.
	WantRetries bool
}

// mustGE builds a Gilbert–Elliott channel from literal probabilities.
func mustGE(pGoodBad, pBadGood, lossGood, lossBad float64) fault.Plan {
	g, err := fault.NewGilbertElliott(pGoodBad, pBadGood, lossGood, lossBad)
	if err != nil {
		panic(fmt.Sprintf("check: chaos scenario: %v", err))
	}
	return g
}

// DefaultChaosScenarios returns the standard fault grid: each channel
// scenario isolates one protocol mechanism, the entity scenarios
// exercise the TTL and restart-detection hardening, and kitchen-sink
// layers everything at once.
func DefaultChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			Name: "bursty-loss",
			Note: "Gilbert-Elliott channel: light loss with heavy-loss bursts",
			Plan: func() fault.Plan { return mustGE(0.05, 0.25, 0.01, 0.6) },
		},
		{
			Name: "beacon-drops",
			Note: "60% of beacons lost; fail-safe must cover every announced burst",
			Plan: func() fault.Plan {
				return fault.Only(fault.Loss{P: 0.6}, dot11.KindBeacon)
			},
			MissBudget: func(ChaosBudget) int { return 0 },
		},
		{
			Name: "portmsg-drops",
			Note: "60% of UDP Port Messages lost; retry/backoff must converge",
			Plan: func() fault.Plan {
				return fault.Only(fault.Loss{P: 0.6}, dot11.KindUDPPortMessage)
			},
			WantRetries: true,
		},
		{
			Name: "ack-drops",
			Note: "90% of ACKs lost; stations exhaust retries and give up cleanly",
			Plan: func() fault.Plan {
				return fault.Only(fault.Loss{P: 0.9}, dot11.KindACK)
			},
			MissBudget:  func(ChaosBudget) int { return 0 },
			WantGiveUps: true,
		},
		{
			Name: "corrupt-dup",
			Note: "15% corruption + 15% duplication; parsers eat garbage, state machines survive replays",
			Plan: func() fault.Plan {
				return fault.Compose(fault.Corrupt{P: 0.15}, fault.Duplicate{P: 0.15})
			},
			MissBudget: func(b ChaosBudget) int { return b.DataFaults },
		},
		{
			Name:        "client-crash",
			Note:        "client dies without deregistering; TTL must clear its stale entries",
			CrashVictim: true,
			MissBudget:  func(ChaosBudget) int { return 0 },
		},
		{
			Name:      "ap-restart",
			Note:      "AP power-cycle wipes the port table; timestamp regression triggers re-registration",
			RestartAP: true,
			MissBudget: func(b ChaosBudget) int {
				return b.GroupFramesLost + b.BlindWanted
			},
		},
		{
			Name: "kitchen-sink",
			Note: "bursty loss + corruption + duplication + client crash + AP restart",
			Plan: func() fault.Plan {
				return fault.Compose(
					mustGE(0.05, 0.25, 0.01, 0.5),
					fault.Corrupt{P: 0.05},
					fault.Duplicate{P: 0.05},
				)
			},
			CrashVictim: true,
			RestartAP:   true,
		},
	}
}

// ScenariosByName resolves a comma-separated list of scenario names
// against DefaultChaosScenarios; "all" (or "") selects every scenario.
func ScenariosByName(names string) ([]ChaosScenario, error) {
	all := DefaultChaosScenarios()
	if names == "" || names == "all" {
		return all, nil
	}
	var picked []ChaosScenario
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, sc := range all {
			if sc.Name == name {
				picked = append(picked, sc)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("check: unknown fault scenario %q", name)
		}
	}
	return picked, nil
}

// ChaosConfig parameterizes the chaos grid.
type ChaosConfig struct {
	// Scenarios defaults to DefaultChaosScenarios.
	Scenarios []ChaosScenario
	// Traces defaults to {Starbucks, CSDept} — a light and a medium
	// trace keep the grid fast while covering both burst densities.
	Traces []trace.Scenario
	// Duration truncates the generated traces (default 60 s).
	Duration time.Duration
	// Seeds defaults to {1, 2}; every cell runs per seed, twice, and
	// the two same-seed runs must produce identical statistics.
	Seeds []uint64
	// Workers bounds grid parallelism (0 = GOMAXPROCS).
	Workers int
}

// normalized fills defaults.
func (c ChaosConfig) normalized() ChaosConfig {
	if len(c.Scenarios) == 0 {
		c.Scenarios = DefaultChaosScenarios()
	}
	if len(c.Traces) == 0 {
		c.Traces = []trace.Scenario{trace.Starbucks, trace.CSDept}
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if len(c.Seeds) == 0 {
		c.Seeds = []uint64{1, 2}
	}
	return c
}

// ChaosResult is one grid cell's outcome.
type ChaosResult struct {
	Scenario string
	Trace    trace.Scenario
	Seed     uint64

	// WantedSent and WantedGot count broadcasts on the measured
	// station's open ports: sent into the network vs received useful.
	WantedSent int
	WantedGot  int
	// Budget is the asserted miss bound, -1 when the scenario leaves
	// the miss count unasserted.
	Budget int
	// FaultsInjected counts faulted deliveries (0 for entity-only
	// scenarios).
	FaultsInjected int
	// FailSafeBursts, GiveUps, Retries, RestartsSeen aggregate the
	// hardening counters across live stations.
	FailSafeBursts int
	GiveUps        int
	Retries        int
	RestartsSeen   int

	// Violations are runtime invariant breaches; Failures are
	// chaos-specific assertion breaches (convergence, budgets,
	// determinism).
	Violations []Violation
	Failures   []string
}

// OK reports whether the cell passed every assertion.
func (r ChaosResult) OK() bool {
	return len(r.Violations) == 0 && len(r.Failures) == 0
}

// String summarizes the cell.
func (r ChaosResult) String() string {
	status := "ok"
	if !r.OK() {
		status = fmt.Sprintf("FAIL (%d violations, %d failures)",
			len(r.Violations), len(r.Failures))
	}
	return fmt.Sprintf("%s/%s/seed%d: %s", r.Scenario, r.Trace, r.Seed, status)
}

// chaosProbeCount is how many post-recovery probe broadcasts each run
// injects on the probe port; every live subscribed station must
// receive all of them.
const chaosProbeCount = 4

// chaosTrace generates the (cached) trace for one cell, perturbing
// the scenario's calibrated seed like the oracle does.
func chaosTrace(s trace.Scenario, seed uint64, d time.Duration) (*trace.Trace, error) {
	cfg := trace.ScenarioConfig(s)
	if seed != 0 {
		cfg.Seed ^= seed * 0x9e3779b97f4a7c15
	}
	if d > 0 && d < cfg.Duration {
		cfg.Duration = d
	}
	return engine.Traces.Generate(cfg)
}

// chaosRun drives one hardened network through one fault scenario and
// returns the cell result plus a fingerprint of every statistic, used
// by the caller to assert same-seed determinism.
func chaosRun(sc ChaosScenario, ts trace.Scenario, seed uint64, duration time.Duration) (ChaosResult, string, error) {
	res := ChaosResult{Scenario: sc.Name, Trace: ts, Seed: seed, Budget: -1}
	tr, err := chaosTrace(ts, seed, duration)
	if err != nil {
		return res, "", err
	}

	// Port layout: ~10% of trace traffic is wanted, plus one probe
	// port carrying only the post-recovery probes.
	open := trace.OpenPortsForFraction(tr, 0.10)
	probePort := uint16(40000)
	hist := tr.PortHistogram()
	for hist[probePort] > 0 || open[probePort] {
		probePort++
	}
	wantedPorts := make([]uint16, 0, len(open)+1)
	wantedPorts = append(wantedPorts, sortedPorts(open)...)
	subsetPorts := make([]uint16, 0, len(open)/2+1)
	for i, p := range sortedPorts(open) {
		if i%2 == 0 {
			subsetPorts = append(subsetPorts, p)
		}
	}
	wantedPorts = append(wantedPorts, probePort)
	subsetPorts = append(subsetPorts, probePort)

	var rec *fault.Recorder
	var plan fault.Plan
	if sc.Plan != nil {
		// Window every channel fault to the trace so the probe phase
		// runs on a clean channel.
		rec = fault.NewRecorder(fault.Window{To: tr.Duration, Inner: sc.Plan()})
		plan = rec
	}
	n, err := core.NewNetwork(core.NetworkConfig{
		HIDE:   true,
		Harden: true,
		Seed:   seed,
		Fault:  plan,
	})
	if err != nil {
		return res, "", err
	}
	st0, err := n.AddStation(station.HIDE, wantedPorts) // measured
	if err != nil {
		return res, "", err
	}
	st1, err := n.AddStation(station.HIDE, wantedPorts) // crash victim
	if err != nil {
		return res, "", err
	}
	st2, err := n.AddStation(station.HIDE, subsetPorts) // partial overlap
	if err != nil {
		return res, "", err
	}

	inv := NewInvariants()
	inv.Watch(n)

	// Entity faults fire halfway through the trace.
	half := tr.Duration / 2
	if sc.CrashVictim {
		n.Engine.MustScheduleAt(half, func(time.Duration) { st1.Crash() })
	}
	if sc.RestartAP {
		n.Engine.MustScheduleAt(half, func(time.Duration) { n.AP.Restart() })
	}

	// Post-recovery probes: broadcasts on the probe port, injected
	// after the trace (and every fault) ends. Convergence means every
	// live subscribed station receives all of them, each flushed
	// within one DTIM span of injection. The settle window before the
	// first probe must outlast the worst-case retransmission drain — a
	// station caught mid-backoff at fault end waits up to
	// 16 x AckTimeout x 1.25 (= 1.2 s) before it can re-register — so
	// four DTIM spans, not two.
	interval := dot11.DefaultBeaconInterval
	dtimSpan := 3 * interval
	probeStart := tr.Duration + interval + 4*dtimSpan
	for i := 0; i < chaosProbeCount; i++ {
		at := probeStart + time.Duration(i)*dtimSpan
		n.Engine.MustScheduleAt(at, func(time.Duration) {
			n.AP.EnqueueGroup(dot11.UDPDatagram{
				DstIP:   [4]byte{255, 255, 255, 255},
				DstPort: probePort,
				Payload: make([]byte, 180),
			}, dot11.Rate2Mbps)
		})
	}
	end := probeStart + time.Duration(chaosProbeCount+2)*dtimSpan

	if err := n.Replay(tr); err != nil {
		return res, "", err
	}
	n.Engine.RunUntil(end)
	inv.Finish(end)
	res.Violations = inv.Violations()

	s0, s1, s2 := st0.Stats(), st1.Stats(), st2.Stats()
	apStats := n.AP.Stats()
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	// Wanted-broadcast accounting for the measured station.
	for _, f := range tr.Frames {
		if open[f.DstPort] {
			res.WantedSent++
		}
	}
	res.WantedSent += chaosProbeCount
	res.WantedGot = s0.GroupUseful
	if rec != nil {
		res.FaultsInjected = rec.Total()
	}
	res.FailSafeBursts = s0.FailSafeBursts + s2.FailSafeBursts
	res.GiveUps = s0.PortMsgGivenUp + s2.PortMsgGivenUp
	res.Retries = s0.PortMsgRetries + s2.PortMsgRetries
	res.RestartsSeen = s0.APRestartsSeen + s2.APRestartsSeen

	if sc.MissBudget != nil {
		b := ChaosBudget{GroupFramesLost: apStats.GroupFramesLost}
		if rec != nil {
			b.DataFaults = rec.DataFaults(st0.Addr())
		}
		if sc.RestartAP {
			// Frames enqueued between the restart and the first
			// post-restart beacon flush against an empty port table
			// before any client can have re-registered.
			firstBeacon := (half/interval + 1) * interval
			blindEnd := firstBeacon + interval/2
			for _, f := range tr.Frames {
				if f.At > half && f.At <= blindEnd && open[f.DstPort] {
					b.BlindWanted++
				}
			}
		}
		res.Budget = sc.MissBudget(b)
		if missed := res.WantedSent - res.WantedGot; missed > res.Budget {
			fail("wanted-loss: station 0 missed %d wanted broadcasts, budget %d (sent %d, got %d)",
				missed, res.Budget, res.WantedSent, res.WantedGot)
		}
	}

	// Post-recovery convergence: every live subscribed station hears
	// every probe within the probe cadence (one probe per DTIM span).
	probeChecks := []struct {
		name    string
		st      *station.Station
		crashed bool
	}{
		{"station0", st0, false},
		{"station1", st1, sc.CrashVictim},
		{"station2", st2, false},
	}
	for _, pc := range probeChecks {
		if pc.crashed {
			continue
		}
		if got := usefulArrivalsSince(pc.st, probeStart); got != chaosProbeCount {
			fail("post-recovery convergence: %s received %d/%d probes", pc.name, got, chaosProbeCount)
		}
	}

	// Bounded useless wakeups: every wakeup traces back to a useful
	// frame, a fail-safe burst, or an injected fault (plus slack for
	// association-time transitions).
	if bound := s0.GroupUseful + s0.FailSafeBursts + res.FaultsInjected + 4; s0.Wakeups > bound {
		fail("bounded-wakeups: station 0 woke %d times, bound %d", s0.Wakeups, bound)
	}

	if sc.WantGiveUps && res.GiveUps == 0 {
		fail("scenario expected at least one exhausted retry budget, got none")
	}
	if sc.WantRetries && res.Retries == 0 {
		fail("scenario expected at least one port-message retry, got none")
	}
	if sc.CrashVictim {
		if ports := n.AP.Table().Ports(st1.AID()); len(ports) > 0 {
			fail("stale-entry expiry: crashed client still holds %d port entries at end", len(ports))
		}
		// When the AP also restarts, the wipe may clear the victim's
		// entry before the TTL sweep ever sees it go stale.
		if apStats.PortEntriesExpired == 0 && !sc.RestartAP {
			fail("stale-entry expiry: TTL sweep never expired the crashed client")
		}
	}
	if sc.RestartAP {
		if apStats.Restarts != 1 {
			fail("ap-restart: expected 1 restart, stats report %d", apStats.Restarts)
		}
		if s0.APRestartsSeen == 0 {
			fail("ap-restart: measured station never detected the timestamp regression")
		}
	}

	fp := fmt.Sprintf("%+v|%+v|%+v|%+v|%+v|%d|%d",
		s0, s1, s2, apStats, n.Medium.Stats, len(res.Violations), res.WantedGot)
	return res, fp, nil
}

// usefulArrivalsSince counts full-wakelock arrivals at or after from.
func usefulArrivalsSince(st *station.Station, from time.Duration) int {
	n := 0
	for _, a := range st.Arrivals() {
		if a.At >= from && a.Wakelock >= time.Second {
			n++
		}
	}
	return n
}

// RunChaosGrid runs every (scenario × trace × seed) cell — twice each,
// asserting same-seed determinism — across the parallel engine and
// returns one result per cell. The error reports infrastructure
// problems only; assertion outcomes live in the results.
func RunChaosGrid(ctx context.Context, cfg ChaosConfig) ([]ChaosResult, error) {
	cfg = cfg.normalized()
	type cell struct {
		sc   ChaosScenario
		ts   trace.Scenario
		seed uint64
	}
	var cells []cell
	for _, sc := range cfg.Scenarios {
		for _, ts := range cfg.Traces {
			for _, seed := range cfg.Seeds {
				cells = append(cells, cell{sc: sc, ts: ts, seed: seed})
			}
		}
	}
	return engine.Map(ctx, cfg.Workers, len(cells), func(_ context.Context, i int) (ChaosResult, error) {
		c := cells[i]
		res, fp1, err := chaosRun(c.sc, c.ts, c.seed, cfg.Duration)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("chaos %s/%s/seed%d: %w", c.sc.Name, c.ts, c.seed, err)
		}
		res2, fp2, err := chaosRun(c.sc, c.ts, c.seed, cfg.Duration)
		if err != nil {
			return ChaosResult{}, fmt.Errorf("chaos %s/%s/seed%d (rerun): %w", c.sc.Name, c.ts, c.seed, err)
		}
		if fp1 != fp2 || len(res2.Failures) != len(res.Failures) {
			res.Failures = append(res.Failures,
				"determinism: two same-seed runs diverged (fault plans must draw only from the medium RNG)")
		}
		return res, nil
	})
}

// ChaosErr folds the grid outcome into a single error, nil when every
// cell passed.
func ChaosErr(results []ChaosResult) error {
	bad := 0
	for _, r := range results {
		if !r.OK() {
			bad++
		}
	}
	if bad == 0 {
		return nil
	}
	return fmt.Errorf("check: %d of %d chaos cells failed", bad, len(results))
}

// ChaosReport renders the grid outcome as a fixed-width table with
// one line per cell, followed by details for any failing cell.
func ChaosReport(results []ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %-10s %5s %7s %13s %7s %9s %8s %7s %s\n",
		"scenario", "trace", "seed", "faults", "wanted", "budget", "failsafe", "giveups", "retries", "status")
	for _, r := range results {
		budget := "-"
		if r.Budget >= 0 {
			budget = fmt.Sprintf("%d", r.Budget)
		}
		status := "ok"
		if !r.OK() {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "%-13s %-10s %5d %7d %6d/%-6d %7s %9d %8d %7d %s\n",
			r.Scenario, r.Trace, r.Seed, r.FaultsInjected,
			r.WantedGot, r.WantedSent, budget,
			r.FailSafeBursts, r.GiveUps, r.Retries, status)
	}
	for _, r := range results {
		if r.OK() {
			continue
		}
		fmt.Fprintf(&b, "\n%s/%s/seed%d:\n", r.Scenario, r.Trace, r.Seed)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  invariant: %s\n", v)
		}
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	return b.String()
}
