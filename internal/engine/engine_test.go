package engine

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestMapOrderedResults checks the deterministic ordered reduction:
// results land at their own index for every worker count.
func TestMapOrderedResults(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 4, 16, 200} {
		out, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(out), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapEquivalentToSequential runs the same randomized-shape work at
// several worker counts and requires identical output slices.
func TestMapEquivalentToSequential(t *testing.T) {
	const n = 64
	fn := func(_ context.Context, i int) (string, error) {
		return fmt.Sprintf("cell-%d-%d", i, i%7), nil
	}
	want, err := Map(context.Background(), 1, n, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := Map(context.Background(), workers, n, fn)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMapZeroCells confirms the empty grid is a no-op.
func TestMapZeroCells(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Fatal("fn called for empty grid")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty success", out, err)
	}
}

// TestMapErrorAggregation checks the errgroup-style join: a failing
// cell's error surfaces, and the remaining cells are cancelled.
func TestMapErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		_, err := Map(context.Background(), workers, 50, func(ctx context.Context, i int) (int, error) {
			calls.Add(1)
			if i == 3 {
				return 0, fmt.Errorf("cell %d: %w", i, boom)
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: parent context error leaked into cell failure: %v", workers, err)
		}
		if got := calls.Load(); got == 50 && workers == 1 {
			t.Fatalf("workers=1: all cells ran despite early failure")
		}
	}
}

// TestMapMultipleErrors checks that every error that occurred is
// joined, in index order, when several cells fail before cancellation
// propagates.
func TestMapMultipleErrors(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// workers=1: only the first error can occur (fail-fast).
	_, err := Map(context.Background(), 1, 10, func(_ context.Context, i int) (int, error) {
		switch i {
		case 2:
			return 0, errA
		case 5:
			return 0, errB
		}
		return i, nil
	})
	if !errors.Is(err, errA) || errors.Is(err, errB) {
		t.Fatalf("sequential: err = %v, want only errA", err)
	}
}

// TestMapCancellation: a cancelled context makes Map return promptly
// with context.Canceled in the chain, without running every cell.
func TestMapCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int64
		start := time.Now()
		_, err := Map(ctx, workers, 10_000, func(ctx context.Context, i int) (int, error) {
			if calls.Add(1) == 3 {
				cancel()
			}
			return i, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if calls.Load() > 100 {
			t.Fatalf("workers=%d: %d cells ran after cancellation", workers, calls.Load())
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("workers=%d: cancellation took %v", workers, elapsed)
		}
		cancel()
	}
}

// TestMapCancelMidReduction: cancellation that lands while the final
// cell of the reduction is still in flight must not discard work — Map
// reports context.Canceled, but every cell that completed keeps its
// value in the returned slice, at both worker counts the equivalence
// grid runs with.
func TestMapCancelMidReduction(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		const n = 64
		var started atomic.Int64
		out, err := Map(ctx, workers, n, func(_ context.Context, i int) (int, error) {
			if started.Add(1) == n {
				// The last cell cancels mid-flight: everything else has
				// at least started, and a started cell always finishes
				// (cancellation is only observed between cells).
				cancel()
			}
			return i + 1, nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := started.Load(); got != n {
			t.Fatalf("workers=%d: %d of %d cells ran", workers, got, n)
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d — completed value lost to cancellation", workers, i, v, i+1)
			}
		}
		cancel()
	}
}

// TestMapPreCancelled: a context cancelled before the call runs no
// cells at all (workers=1) and returns context.Canceled.
func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Map(ctx, 1, 100, func(_ context.Context, i int) (int, error) {
		calls.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Fatalf("%d cells ran under a pre-cancelled context", calls.Load())
	}
}

// TestForEach covers the value-free wrapper.
func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(context.Background(), 4, 10, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}

// TestWorkers checks the normalization rules.
func TestWorkers(t *testing.T) {
	if w := Workers(0, 100); w < 1 {
		t.Fatalf("Workers(0, 100) = %d, want >= 1", w)
	}
	if w := Workers(-3, 100); w < 1 {
		t.Fatalf("Workers(-3, 100) = %d, want >= 1", w)
	}
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3 (capped at n)", w)
	}
	if w := Workers(2, 100); w != 2 {
		t.Fatalf("Workers(2, 100) = %d, want 2", w)
	}
}

// TestTraceCacheSingleGeneration: concurrent requests for the same
// scenario share one generated trace (same pointer), and the cached
// trace equals a direct generation.
func TestTraceCacheSingleGeneration(t *testing.T) {
	c := &TraceCache{}
	ptrs, err := Map(context.Background(), 8, 16, func(_ context.Context, i int) (*trace.Trace, error) {
		return c.Scenario(trace.Starbucks)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ptrs {
		if p != ptrs[0] {
			t.Fatalf("request %d returned a different trace pointer", i)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d traces, want 1", c.Len())
	}
	direct, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Frames) != len(ptrs[0].Frames) || direct.Duration != ptrs[0].Duration {
		t.Fatalf("cached trace differs from direct generation: %d/%v vs %d/%v",
			len(ptrs[0].Frames), ptrs[0].Duration, len(direct.Frames), direct.Duration)
	}
	for i := range direct.Frames {
		if direct.Frames[i] != ptrs[0].Frames[i] {
			t.Fatalf("frame %d differs between cached and direct generation", i)
		}
	}
}

// TestTraceCacheDistinctConfigs: different configurations get distinct
// entries.
func TestTraceCacheDistinctConfigs(t *testing.T) {
	c := &TraceCache{}
	a, err := c.Scenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	cfg := trace.ScenarioConfig(trace.Starbucks)
	cfg.Seed ^= 0x1234
	b, err := c.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds returned the same cached trace")
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d traces, want 2", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d traces after Reset, want 0", c.Len())
	}
}
