// Package fixture exercises the seeded-RNG-only tightening: analyzed
// as repro/internal/fault, even the normally-allowed private source
// constructors (rand.New, rand.NewSource) are banned, because a second
// generator beside the sim.RNG threaded through Deliver would split
// the draw stream. Re-analyzed under an ordinary deterministic path,
// the same code must report only the shared-global-source draw.
package fixture

import "math/rand"

// PrivateSource builds a private generator — fine in ordinary
// deterministic code, banned in a seeded-RNG-only package.
func PrivateSource() float64 {
	src := rand.NewSource(7) // want `math/rand.NewSource in a seeded-RNG-only package`
	r := rand.New(src)       // want `math/rand.New in a seeded-RNG-only package`
	return r.Float64()
}

// GlobalDraw draws from the shared source — banned everywhere.
func GlobalDraw() float64 {
	return rand.Float64() // want `math/rand.Float64 in a seeded-RNG-only package`
}
