package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/station"
	"repro/internal/trace"
)

// shortTrace builds a quick deterministic trace for protocol tests.
func shortTrace(t *testing.T, duration time.Duration, fps float64) *trace.Trace {
	t.Helper()
	cfg := trace.GenConfig{
		Name:             "nettest",
		Duration:         duration,
		MeanFPS:          fps,
		BurstFactor:      2,
		BurstFraction:    0.2,
		MeanFrameBytes:   200,
		MoreDataFraction: 0.3,
		Rates:            []dot11.Rate{dot11.Rate1Mbps, dot11.Rate11Mbps},
		RateWeights:      []float64{0.5, 0.5},
		Mix:              trace.DefaultPortMix(),
		Seed:             77,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNetworkReplayEndToEnd(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	hideSt, err := n.AddStation(station.HIDE, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}
	legacySt, err := n.AddStation(station.Legacy, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}
	csSt, err := n.AddStation(station.ClientSide, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}

	tr := shortTrace(t, 2*time.Minute, 3)
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}

	// The AP must have transmitted every trace frame.
	if got := n.AP.Stats().GroupFramesSent; got != len(tr.Frames) {
		t.Fatalf("AP sent %d group frames, trace has %d", got, len(tr.Frames))
	}
	// Legacy and client-side stations receive every group frame.
	if got := legacySt.Stats().GroupReceived; got != len(tr.Frames) {
		t.Errorf("legacy received %d, want %d", got, len(tr.Frames))
	}
	if got := csSt.Stats().GroupReceived; got != len(tr.Frames) {
		t.Errorf("client-side received %d, want %d", got, len(tr.Frames))
	}

	// The HIDE station receives every frame for its open port...
	wantUseful := 0
	for _, f := range tr.Frames {
		if f.DstPort == 5353 {
			wantUseful++
		}
	}
	if got := hideSt.Stats().GroupUseful; got != wantUseful {
		t.Errorf("HIDE useful = %d, want %d", got, wantUseful)
	}
	// ...and far fewer frames total than the legacy station (only
	// ride-alongs in mixed DTIMs add to its count).
	if hideSt.Stats().GroupReceived >= legacySt.Stats().GroupReceived {
		t.Errorf("HIDE received %d >= legacy %d", hideSt.Stats().GroupReceived, legacySt.Stats().GroupReceived)
	}
}

func TestNetworkEnergyOrdering(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	hideSt, err := n.AddStation(station.HIDE, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}
	legacySt, err := n.AddStation(station.Legacy, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}
	tr := shortTrace(t, 5*time.Minute, 3)
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}

	hideE, err := n.StationEnergy(hideSt, energy.NexusOne, tr.Duration, true)
	if err != nil {
		t.Fatal(err)
	}
	legacyE, err := n.StationEnergy(legacySt, energy.NexusOne, tr.Duration, false)
	if err != nil {
		t.Fatal(err)
	}
	if hideE.TotalJ() >= legacyE.TotalJ() {
		t.Errorf("protocol sim: HIDE %.2f J >= legacy %.2f J", hideE.TotalJ(), legacyE.TotalJ())
	}
	if hideE.SuspendFraction <= legacyE.SuspendFraction {
		t.Errorf("protocol sim: HIDE suspend %.2f <= legacy %.2f", hideE.SuspendFraction, legacyE.SuspendFraction)
	}
}

func TestProtocolSimMatchesAnalyticModel(t *testing.T) {
	// Cross-validation: the legacy station's protocol-level energy must
	// track the receive-all analytic pipeline. The protocol sim differs
	// from the analytic model in frame timing (DTIM batching shifts
	// arrivals to DTIM boundaries) but totals should agree within ~20%.
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	legacySt, err := n.AddStation(station.Legacy, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr := shortTrace(t, 5*time.Minute, 2)
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}

	simE, err := n.StationEnergy(legacySt, energy.NexusOne, tr.Duration, false)
	if err != nil {
		t.Fatal(err)
	}

	useful := make([]bool, len(tr.Frames)) // all useless; receive-all ignores it
	p, err := policy.New(policy.ReceiveAll)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := p.Apply(tr, useful)
	if err != nil {
		t.Fatal(err)
	}
	anaE, err := energy.Compute(arr, energy.Config{Device: energy.NexusOne, Duration: tr.Duration})
	if err != nil {
		t.Fatal(err)
	}

	rel := math.Abs(simE.TotalJ()-anaE.TotalJ()) / anaE.TotalJ()
	if rel > 0.20 {
		t.Errorf("protocol sim %.2f J vs analytic %.2f J: %.0f%% apart",
			simE.TotalJ(), anaE.TotalJ(), rel*100)
	}
	if math.Abs(simE.SuspendFraction-anaE.SuspendFraction) > 0.15 {
		t.Errorf("suspend fraction: sim %.2f vs analytic %.2f",
			simE.SuspendFraction, anaE.SuspendFraction)
	}
}

func TestNetworkWithLossStillConverges(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true, Loss: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hideSt, err := n.AddStation(station.HIDE, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}
	tr := shortTrace(t, 2*time.Minute, 2)
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}
	// Under loss the handshake retries; the station must still sync.
	if hideSt.Stats().ACKsReceived == 0 {
		t.Error("no ACK ever received under 20% loss")
	}
	// Give the final wakelock and handshake time to drain, then the
	// station must be suspended (no wedged listen or ACK-wait state).
	n.Engine.RunUntil(tr.Duration + 5*time.Second)
	if !hideSt.Suspended() {
		t.Error("station wedged awake under loss")
	}
}

func TestNewNetworkValidatesLoss(t *testing.T) {
	if _, err := NewNetwork(NetworkConfig{Loss: 1.5}); err == nil {
		t.Fatal("invalid loss accepted")
	}
}

func TestNetworkStationCap(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := n.AddStation(station.Legacy, nil); err != nil {
			t.Fatalf("station %d: %v", i, err)
		}
	}
}

func TestNetworkUnicastFilteringExtension(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true, FilterUnicast: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.AddStation(station.HIDE, []uint16{4000})
	if err != nil {
		t.Fatal(err)
	}
	n.AP.Start()
	// Let association + port sync settle, then enqueue unicast to an
	// open and a closed port.
	n.Engine.RunUntil(500 * time.Millisecond)
	if !st.Associated() {
		t.Fatal("station not associated")
	}
	addr := dot11.MACAddr{0x02, 0x1d, 0xe0, 0x01, 0x00, 0x01}
	if err := n.AP.EnqueueUnicast(addr, dot11.UDPDatagram{DstPort: 4000}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	if err := n.AP.EnqueueUnicast(addr, dot11.UDPDatagram{DstPort: 9999}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}
	n.Engine.RunUntil(3 * time.Second)

	if st.Stats().UnicastReceived != 1 {
		t.Errorf("unicast received = %d, want 1 (closed-port frame filtered)", st.Stats().UnicastReceived)
	}
	if n.AP.Stats().UnicastFiltered != 1 {
		t.Errorf("UnicastFiltered = %d, want 1", n.AP.Stats().UnicastFiltered)
	}
}

func TestNetworkAssociationOverTheAir(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	var sts []*station.Station
	for i := 0; i < 5; i++ {
		st, err := n.AddStation(station.HIDE, []uint16{uint16(5000 + i)})
		if err != nil {
			t.Fatal(err)
		}
		sts = append(sts, st)
	}
	n.AP.Start()
	n.Engine.RunUntil(time.Second)
	aids := map[dot11.AID]bool{}
	for i, st := range sts {
		if !st.Associated() {
			t.Fatalf("station %d failed to associate", i)
		}
		if aids[st.AID()] {
			t.Fatalf("duplicate AID %d", st.AID())
		}
		aids[st.AID()] = true
		// The assoc request seeded each station's port.
		if !n.AP.Table().Listening(uint16(5000+i), st.AID()) {
			t.Errorf("station %d ports not seeded", i)
		}
	}
}
