// Command hideport shows what a deployed HIDE client would report to
// its AP right now: it reads this machine's /proc/net/udp tables,
// extracts the wildcard-bound UDP ports (paper §III-B), and encodes
// the UDP Port Message frame that would precede the next suspend.
//
// Usage:
//
//	hideport [-hex] [-file /proc/net/udp]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/dot11"
	"repro/internal/procnet"
)

func main() {
	hexDump := flag.Bool("hex", false, "dump the encoded UDP Port Message frame")
	file := flag.String("file", "", "parse this udp table file instead of the live system")
	flag.Parse()

	var ports []uint16
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			cli.Exit("hideport", err)
		}
		socks, err := procnet.ParseTable(f)
		//lint:ignore errdrop read-side close; parse errors are already captured
		f.Close()
		if err != nil {
			cli.Exit("hideport", err)
		}
		ports = procnet.WildcardPorts(socks)
	} else {
		var err error
		ports, err = procnet.LocalOpenPorts()
		if err != nil {
			cli.Exit("hideport", err)
		}
	}

	fmt.Printf("%d wildcard-bound UDP ports: %v\n", len(ports), ports)

	msg := &dot11.UDPPortMessage{
		Header: dot11.MACHeader{
			Addr1: dot11.MACAddr{0x02, 0, 0, 0, 0, 0x01}, // AP placeholder
			Addr2: dot11.MACAddr{0x02, 0, 0, 0, 0, 0x02}, // this client
			Addr3: dot11.MACAddr{0x02, 0, 0, 0, 0, 0x01},
		},
		Ports: ports,
	}
	raw, err := msg.Marshal()
	if err != nil {
		cli.Exit("hideport", fmt.Errorf("encoding: %w", err))
	}
	fmt.Printf("UDP Port Message: %d bytes on the wire (+%d PHY preamble bits)\n",
		len(raw), dot11.DefaultPHY().PreambleHeaderBits)
	if *hexDump {
		for i := 0; i < len(raw); i += 16 {
			end := i + 16
			if end > len(raw) {
				end = len(raw)
			}
			fmt.Printf("  %04x  % x\n", i, raw[i:end])
		}
	}
}
