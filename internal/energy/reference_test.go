package energy

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

// This file implements the paper's Section IV recursion literally —
// arrays s(i), tr(i), twl(i), y(i) written exactly as Eqs. 3-5 and 14
// state them, with the homogeneous wakelock τ the paper assumes — and
// checks that the production model (which generalizes to per-frame
// wakelocks with a running-maximum expiry) reduces to it exactly when
// every frame carries the same τ.

// refState reproduces Eqs. 3-5 and 14 verbatim for homogeneous τ.
type refState struct {
	tr  []time.Duration // wakelock start times, Eq. 3
	twl []time.Duration // active wakelock durations, Eq. 4
	s   []bool          // true = active/resuming/suspending
	y   []float64       // aborted-suspend portions, Eq. 14
}

// referenceRecursion computes the paper's arrays for frames with a
// single wakelock duration tau.
func referenceRecursion(frames []Arrival, dev Profile, tau time.Duration) refState {
	n := len(frames)
	st := refState{
		tr:  make([]time.Duration, n),
		twl: make([]time.Duration, n),
		s:   make([]bool, n),
		y:   make([]float64, n),
	}
	rxEnd := func(i int) time.Duration { return frames[i].endTime() }
	for i := 0; i < n; i++ {
		if i == 0 {
			// The paper assumes s(1) = 0.
			st.s[0] = false
			st.tr[0] = rxEnd(0) + dev.Trm // Eq. 3, suspended branch
			continue
		}
		// Eq. 5.
		if rxEnd(i) >= st.tr[i-1]+tau+dev.Tsp {
			st.s[i] = false
			st.tr[i] = rxEnd(i) + dev.Trm
		} else {
			st.s[i] = true
			if rxEnd(i) > st.tr[i-1] {
				st.tr[i] = rxEnd(i)
			} else {
				st.tr[i] = st.tr[i-1]
			}
			// Eq. 14 (only charged when s(i) = 1).
			prevTwl := st.tr[i] - st.tr[i-1]
			if prevTwl > tau {
				prevTwl = tau
			}
			if gap := st.tr[i] - st.tr[i-1] - prevTwl; gap > 0 {
				st.y[i] = float64(gap) / float64(dev.Tsp)
			}
		}
	}
	// Eq. 4.
	for i := 0; i < n; i++ {
		if i+1 < n {
			st.twl[i] = st.tr[i+1] - st.tr[i]
			if st.twl[i] > tau {
				st.twl[i] = tau
			}
		} else {
			st.twl[i] = tau
		}
	}
	return st
}

// refEnergies computes Ewl and Est from the reference arrays.
func refEnergies(st refState, dev Profile) (ewlJ, estJ float64, resumes int) {
	var sumTwl time.Duration
	var sumY float64
	for i := range st.s {
		sumTwl += st.twl[i]
		sumY += st.y[i]
		if !st.s[i] {
			resumes++
		}
	}
	ewlJ = dev.PsaW * sumTwl.Seconds()
	estJ = (dev.ErmJ+dev.EspJ)*float64(resumes) + dev.EspJ*sumY
	return ewlJ, estJ, resumes
}

// genFrames builds a random, sorted, homogeneous-τ arrival sequence.
func genFrames(seed uint64, n int, tau time.Duration) []Arrival {
	r := sim.NewRNG(seed)
	frames := make([]Arrival, n)
	at := time.Duration(0)
	for i := range frames {
		// Gaps spanning renewal, abort, and full-suspend regimes.
		at += time.Duration(r.Intn(3000)) * time.Millisecond
		frames[i] = Arrival{
			At:       at,
			Length:   60 + r.Intn(1400),
			Rate:     dot11.Rate1Mbps,
			Wakelock: tau,
		}
	}
	return frames
}

func TestModelMatchesPaperRecursion(t *testing.T) {
	for _, dev := range Profiles {
		dev := dev
		t.Run(dev.Name, func(t *testing.T) {
			f := func(seed uint64, nRaw uint8) bool {
				n := int(nRaw%50) + 1
				frames := genFrames(seed, n, dev.Tau)
				duration := frames[n-1].At + 10*time.Second

				st := referenceRecursion(frames, dev, dev.Tau)
				wantEwl, wantEst, wantResumes := refEnergies(st, dev)

				got, err := Compute(frames, Config{Device: dev, Duration: duration})
				if err != nil {
					t.Logf("Compute error: %v", err)
					return false
				}
				if got.Resumes != wantResumes {
					t.Logf("seed %d n %d: resumes %d vs reference %d", seed, n, got.Resumes, wantResumes)
					return false
				}
				if !approx(got.EwlJ, wantEwl, 1e-9) {
					t.Logf("seed %d n %d: Ewl %v vs reference %v", seed, n, got.EwlJ, wantEwl)
					return false
				}
				if !approx(got.EstJ, wantEst, 1e-9) {
					t.Logf("seed %d n %d: Est %v vs reference %v", seed, n, got.EstJ, wantEst)
					return false
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestModelMatchesPaperRecursionDense(t *testing.T) {
	// Dense traffic exercises the renewal path heavily.
	dev := GalaxyS4
	frames := make([]Arrival, 200)
	for i := range frames {
		frames[i] = Arrival{
			At:       time.Duration(i) * 150 * time.Millisecond,
			Length:   200,
			Rate:     dot11.Rate1Mbps,
			Wakelock: dev.Tau,
		}
	}
	st := referenceRecursion(frames, dev, dev.Tau)
	wantEwl, wantEst, wantResumes := refEnergies(st, dev)
	got, err := Compute(frames, Config{Device: dev, Duration: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if got.Resumes != wantResumes || !approx(got.EwlJ, wantEwl, 1e-9) || !approx(got.EstJ, wantEst, 1e-9) {
		t.Fatalf("dense: got (%d, %v, %v), reference (%d, %v, %v)",
			got.Resumes, got.EwlJ, got.EstJ, wantResumes, wantEwl, wantEst)
	}
}
