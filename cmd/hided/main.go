// Command hided is the HIDE access-point daemon: a real process
// serving the HIDE protocol over UDP "virtual air". Clients (hidec)
// connect over the network, associate with real 802.11 frames, sync
// their open UDP ports, and receive BTIM-filtered broadcast traffic —
// all in wall-clock time.
//
// Start an AP that replays cafe broadcast chatter:
//
//	hided -listen 127.0.0.1:5600 -scenario Starbucks
//
// then attach clients:
//
//	hidec -connect 127.0.0.1:5600 -ports 5353 -mode hide
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/airlink"
	"repro/internal/ap"
	"repro/internal/cli"
	"repro/internal/dot11"
	"repro/internal/sim"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5600", "UDP address to serve the virtual air on")
	ssid := flag.String("ssid", "hide-net", "network name")
	dtim := flag.Int("dtim", 3, "DTIM period in beacons")
	scenario := flag.String("scenario", "Starbucks", "broadcast traffic scenario to replay (none to disable)")
	legacy := flag.Bool("legacy", false, "run as a stock AP without HIDE extensions")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats print interval")
	flag.Parse()

	pc, err := net.ListenPacket("udp", *listen)
	if err != nil {
		cli.Exit("hided", err)
	}
	inject := make(chan sim.Event, 256)
	hub := airlink.NewHub(pc, inject)
	eng := sim.New()
	bssid := dot11.MACAddr{0x02, 0x1d, 0xe0, 0xff, 0x00, 0x01}
	a := ap.New(eng, hub, ap.Config{
		BSSID: bssid, SSID: *ssid, HIDE: !*legacy, DTIMPeriod: *dtim,
	})
	a.Start()

	// Replay scenario traffic on the engine clock (wall-paced).
	if !strings.EqualFold(*scenario, "none") {
		found := false
		for _, s := range hide.Scenarios {
			if strings.EqualFold(s.String(), *scenario) {
				tr, err := hide.GenerateTrace(s)
				if err != nil {
					cli.Exit("hided", err)
				}
				scheduleTrace(eng, a, tr)
				fmt.Printf("replaying %s broadcast chatter (%d frames over %v, looping)\n",
					tr.Name, len(tr.Frames), tr.Duration)
				found = true
				break
			}
		}
		if !found {
			cli.Exit("hided", fmt.Errorf("unknown scenario %q", *scenario))
		}
	}

	// Periodic stats on the engine clock.
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		st := a.Stats()
		hs := hub.Stats()
		fmt.Printf("[%8s] peers=%d beacons=%d dtims=%d group=%d portmsgs=%d assoc=%d filteredU=%d\n",
			now.Truncate(time.Second), hs.Peers, st.BeaconsSent, st.DTIMsSent,
			st.GroupFramesSent, st.PortMsgsReceived, st.AssocResponses, st.UnicastFiltered)
		eng.MustScheduleAfter(*statsEvery, tick)
	}
	eng.MustScheduleAfter(*statsEvery, tick)

	fmt.Printf("hided: %s AP %q on %v (bssid %v, DTIM %d)\n",
		map[bool]string{true: "legacy", false: "HIDE"}[*legacy], *ssid, hub.Addr(), bssid, *dtim)

	go func() {
		if err := hub.Serve(); err != nil {
			fmt.Fprintf(os.Stderr, "hided: hub: %v\n", err)
		}
	}()
	ctx, stop := cli.SignalContext()
	defer stop()
	if err := eng.RunRealtime(ctx, inject); err != nil && !errors.Is(err, context.Canceled) {
		cli.Exit("hided", err)
	}
}

// scheduleTrace schedules the trace's frames on the engine, looping
// when the trace runs out.
func scheduleTrace(eng *sim.Engine, a *ap.AP, tr *hide.Trace) {
	var scheduleFrom func(offset time.Duration)
	scheduleFrom = func(offset time.Duration) {
		for _, f := range tr.Frames {
			f := f
			payload := f.Length - dot11.MACHeaderLen - dot11.UDPEncapsLen
			if payload < 0 {
				payload = 0
			}
			eng.MustScheduleAt(offset+f.At, func(time.Duration) {
				a.EnqueueGroup(dot11.UDPDatagram{
					DstIP:   [4]byte{255, 255, 255, 255},
					DstPort: f.DstPort,
					Payload: make([]byte, payload),
				}, f.Rate)
			})
		}
		eng.MustScheduleAt(offset+tr.Duration, func(now time.Duration) {
			scheduleFrom(now)
		})
	}
	scheduleFrom(0)
}
