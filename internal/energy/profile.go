// Package energy implements the HIDE paper's energy model (Section IV,
// Eqs. 1-19): given the sequence of broadcast frames a client's radio
// receives — filtered or not by a traffic-management policy — it
// reconstructs the host state machine (suspend / resume / wakelock /
// suspending, Eqs. 3-5) and computes the five energy components of
// Eq. 2:
//
//	E = Eb + Ef + Ewl + Est + Eo
//
// Eb  beacon reception, Ef radio receive + idle listening, Ewl system
// idle under WiFi wakelocks, Est suspend/resume state transfers
// (including aborted suspends, Eq. 14), Eo HIDE protocol overhead
// (BTIM bytes in beacons + UDP Port Message transmissions, Eqs. 15-19).
//
// All energies are in joules, powers in watts, durations in
// time.Duration. Device constants come from the paper's Table I
// (measured with a Monsoon power monitor on a Nexus One and a
// Galaxy S4); this reproduction embeds those published numbers.
package energy

import (
	"fmt"
	"time"
)

// Profile holds the per-device constants of Table I.
type Profile struct {
	// Name identifies the device.
	Name string
	// Tau is the WiFi-driver wakelock duration acquired per received
	// broadcast frame (1 s on both devices).
	Tau time.Duration
	// Trm and Tsp are the durations of the system resume and suspend
	// operations.
	Trm time.Duration
	Tsp time.Duration
	// ErmJ and EspJ are the energies of one resume and one suspend
	// operation, in joules.
	ErmJ float64
	EspJ float64
	// EBeaconJ is the energy to receive one beacon frame, in joules.
	// Table I lists this as E^u_b = 1.25/1.71 mJ. The paper's Eq. 6
	// nominally multiplies a per-byte constant by beacon bytes, but the
	// magnitude only makes sense per beacon (1.25 mJ/byte would exceed
	// the radio's receive power by orders of magnitude), so this model
	// charges E^u_b per beacon and prices extra BTIM bytes at the
	// radio's receive power over their airtime (see Overhead).
	EBeaconJ float64
	// PrW, PtW, PidleW are the WiFi radio powers (receive, transmit,
	// idle listening), in watts.
	PrW    float64
	PtW    float64
	PidleW float64
	// PssW is the whole-system suspend-mode power.
	PssW float64
	// PsaW is the whole-system active-and-idle power, charged while a
	// wakelock holds the system awake (Eq. 12).
	PsaW float64
}

// NexusOne is the Table I profile for the Nexus One.
var NexusOne = Profile{
	Name: "Nexus One",
	Tau:  time.Second,
	Trm:  46 * time.Millisecond,
	Tsp:  86 * time.Millisecond,
	ErmJ: 18.26e-3, EspJ: 17.66e-3,
	EBeaconJ: 1.25e-3,
	PrW:      0.530, PtW: 1.200, PidleW: 0.245,
	PssW: 0.011, PsaW: 0.125,
}

// GalaxyS4 is the Table I profile for the Samsung Galaxy S4.
var GalaxyS4 = Profile{
	Name: "Galaxy S4",
	Tau:  time.Second,
	Trm:  44 * time.Millisecond,
	Tsp:  165 * time.Millisecond,
	ErmJ: 58.3e-3, EspJ: 85.8e-3,
	EBeaconJ: 1.71e-3,
	PrW:      0.538, PtW: 1.500, PidleW: 0.275,
	PssW: 0.015, PsaW: 0.130,
}

// Profiles lists the built-in device profiles.
var Profiles = []Profile{NexusOne, GalaxyS4}

// ProfileByName returns the built-in profile with the given name
// (case-sensitive), or an error listing the known names.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return p, nil
		}
	}
	known := make([]string, len(Profiles))
	for i, p := range Profiles {
		known[i] = p.Name
	}
	return Profile{}, fmt.Errorf("energy: unknown device %q (known: %v)", name, known)
}

// Validate checks that the profile's constants are physically sensible.
func (p Profile) Validate() error {
	switch {
	case p.Tau <= 0:
		return fmt.Errorf("energy: profile %s: Tau %v must be positive", p.Name, p.Tau)
	case p.Trm <= 0 || p.Tsp <= 0:
		return fmt.Errorf("energy: profile %s: resume/suspend durations must be positive", p.Name)
	case p.ErmJ < 0 || p.EspJ < 0 || p.EBeaconJ < 0:
		return fmt.Errorf("energy: profile %s: energies must be non-negative", p.Name)
	case p.PrW <= 0 || p.PtW <= 0 || p.PidleW <= 0 || p.PsaW <= 0 || p.PssW < 0:
		return fmt.Errorf("energy: profile %s: powers must be positive", p.Name)
	case p.PssW >= p.PsaW:
		return fmt.Errorf("energy: profile %s: suspend power %v not below active-idle power %v", p.Name, p.PssW, p.PsaW)
	}
	return nil
}
