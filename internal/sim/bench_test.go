package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleStep measures the engine's core cycle: schedule one
// event and dispatch it. This is the per-event cost every simulated
// frame, beacon, and wakelock expiry pays.
func BenchmarkScheduleStep(b *testing.B) {
	eng := New()
	fn := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.MustScheduleAfter(time.Microsecond, fn)
		eng.Step()
	}
}

// BenchmarkScheduleCancel measures the schedule→cancel→drain path the
// stations exercise on every arrival (wakelock-expiry rearming).
func BenchmarkScheduleCancel(b *testing.B) {
	eng := New()
	fn := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := eng.MustScheduleAfter(time.Millisecond, fn)
		h.Cancel()
		eng.MustScheduleAfter(time.Microsecond, fn)
		eng.Step()
	}
}

// BenchmarkScheduleBurst measures queue behaviour under a burst of 64
// pending events, the shape a dense DTIM flush produces.
func BenchmarkScheduleBurst(b *testing.B) {
	eng := New()
	fn := func(time.Duration) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 64; k++ {
			eng.MustScheduleAfter(time.Duration(k)*time.Microsecond, fn)
		}
		for eng.Step() {
		}
	}
}
