package core

import (
	"context"
	"math"

	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/trace"
)

// SeedSweep quantifies how robust the headline results are to the
// randomness in usefulness tagging: it evaluates HIDE and receive-all
// over the same trace with several tagging seeds and aggregates the
// savings. The paper reports point estimates from fixed traces; the
// sweep shows the estimates are not seed artifacts.
type SeedSweep struct {
	Trace          string
	Device         string
	UsefulFraction float64
	Seeds          int
	// MeanSaving, MinSaving, MaxSaving, StdDev summarize HIDE's saving
	// versus receive-all across seeds.
	MeanSaving float64
	MinSaving  float64
	MaxSaving  float64
	StdDev     float64
}

// SweepSeedsContext evaluates HIDE's saving across tagging seeds,
// fanning the per-seed evaluations over the worker pool configured by
// opts.Workers. opts supplies the overhead and parallelism settings;
// its seed fields are overridden per sweep point. The aggregation
// folds savings in seed order, so the result is identical for any
// worker count.
func SweepSeedsContext(ctx context.Context, tr *trace.Trace, dev energy.Profile, fraction float64, seeds []uint64, opts Options) (SeedSweep, error) {
	out := SeedSweep{
		Trace: tr.Name, Device: dev.Name,
		UsefulFraction: fraction, Seeds: len(seeds),
		MinSaving: math.Inf(1), MaxSaving: math.Inf(-1),
	}
	savings, err := engine.Map(ctx, opts.Workers, len(seeds), func(ctx context.Context, i int) (float64, error) {
		// Options{Seed: seed} (not WithSeed) preserves the historical
		// behaviour of custom seed sets containing 0: the default seed.
		sopts := opts
		sopts.Seed = seeds[i]
		sopts.HasSeed = false
		ra, err := EvaluateFractionContext(ctx, tr, fraction, dev, policy.ReceiveAll, sopts)
		if err != nil {
			return 0, err
		}
		hd, err := EvaluateFractionContext(ctx, tr, fraction, dev, policy.HIDE, sopts)
		if err != nil {
			return 0, err
		}
		return 1 - hd.Breakdown.TotalJ()/ra.Breakdown.TotalJ(), nil
	})
	if err != nil {
		return out, err
	}
	var sum, sumSq float64
	for _, saving := range savings {
		sum += saving
		sumSq += saving * saving
		if saving < out.MinSaving {
			out.MinSaving = saving
		}
		if saving > out.MaxSaving {
			out.MaxSaving = saving
		}
	}
	n := float64(len(seeds))
	if n > 0 {
		out.MeanSaving = sum / n
		variance := sumSq/n - out.MeanSaving*out.MeanSaving
		if variance < 0 {
			variance = 0
		}
		out.StdDev = math.Sqrt(variance)
	}
	return out, nil
}

// SweepSeeds evaluates HIDE's saving across tagging seeds.
func SweepSeeds(tr *trace.Trace, dev energy.Profile, fraction float64, seeds []uint64) (SeedSweep, error) {
	return SweepSeedsContext(context.Background(), tr, dev, fraction, seeds, Options{})
}

// DefaultSweepSeeds is a small deterministic seed set.
var DefaultSweepSeeds = []uint64{1, 7, 42, 1001, 0xdeadbeef}
