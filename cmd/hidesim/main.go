// Command hidesim reproduces the paper's trace-driven energy study:
// Figures 7 and 8 (average power of handling broadcast traffic under
// receive-all, the client-side lower bound, and HIDE at 10/8/6/4/2%
// useful frames, for the Nexus One and Galaxy S4) and Figure 9 (the
// fraction of time in suspend mode).
//
// The evaluation grid fans out over a worker pool (-parallel/-j,
// default GOMAXPROCS) with byte-identical output for any worker
// count, and Ctrl-C cancels a run in flight.
//
// Usage:
//
//	hidesim [-device nexusone|galaxys4|all] [-metric power|suspend|all] [-components] [-parallel N]
//	hidesim -fault <scenario,...|all|list> [-parallel N]
//	hidesim -ess [-ess-aps K] [-ess-stations N] [-ess-roam r1,r2,...] [-ess-dsloss p] [-parallel N]
//
// With -fault, hidesim skips the energy study and runs the chaos grid
// for the selected fault scenarios: invariant checks, fail-safe
// recovery, and same-seed determinism under injected faults.
//
// With -ess, hidesim runs the multi-AP roaming churn experiment: each
// requested roam rate is run twice — cold handoffs (the roamed-to AP
// learns the client's ports only at the next UDP Port Message) and
// replicated handoffs (port state is pushed over the distribution
// system ahead of the roam) — and the table compares wanted-frame
// misses, resync-window misses, and mean per-station power.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/check"
	"repro/internal/cli"
)

func main() {
	device := flag.String("device", "all", "device profile: nexusone, galaxys4, or all")
	metric := flag.String("metric", "all", "metric: power (Fig. 7/8), suspend (Fig. 9), or all")
	components := flag.Bool("components", false, "print the five energy components per bar")
	format := flag.String("format", "table", "output format: table or csv (machine-readable, for plotting)")
	faultNames := flag.String("fault", "", "run the chaos fault grid instead: scenario name(s), \"all\", or \"list\"")
	essMode := flag.Bool("ess", false, "run the multi-AP roaming churn experiment instead")
	essAPs := flag.Int("ess-aps", 4, "ESS: number of access points")
	essStations := flag.Int("ess-stations", 32, "ESS: number of HIDE stations")
	essScenario := flag.String("ess-scenario", "Classroom", "ESS: broadcast trace scenario")
	essDuration := flag.Duration("ess-duration", 5*time.Minute, "ESS: trace truncation (0 = full capture)")
	essRoam := flag.String("ess-roam", "0.5,2,8", "ESS: comma-separated roam rates (roams per station per minute)")
	essDSLoss := flag.Float64("ess-dsloss", 0, "ESS: distribution-system record loss probability")
	essJitter := flag.Float64("ess-jitter", 0, "ESS: port-refresh jitter fraction")
	essSeed := flag.Uint64("ess-seed", 1, "ESS: trace and mobility seed")
	workers := cli.WorkersFlag()
	flag.Parse()

	if *faultNames != "" {
		runFaultGrid(*faultNames, *workers)
		return
	}
	if *essMode {
		if *format != "table" && *format != "csv" {
			cli.Usagef("hidesim", "unknown format %q", *format)
		}
		dev := hide.NexusOne // churn prices one device; -device all keeps the default
		switch strings.ToLower(*device) {
		case "nexusone", "all":
		case "galaxys4":
			dev = hide.GalaxyS4
		default:
			cli.Usagef("hidesim", "unknown device %q", *device)
		}
		runChurnGrid(churnFlags{
			aps:      *essAPs,
			stations: *essStations,
			scenario: *essScenario,
			duration: *essDuration,
			roam:     *essRoam,
			dsLoss:   *essDSLoss,
			jitter:   *essJitter,
			seed:     *essSeed,
			format:   *format,
			dev:      dev,
			workers:  *workers,
		})
		return
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	opts := hide.Options{Workers: *workers}

	var devices []hide.Profile
	switch strings.ToLower(*device) {
	case "nexusone":
		devices = []hide.Profile{hide.NexusOne}
	case "galaxys4":
		devices = []hide.Profile{hide.GalaxyS4}
	case "all":
		devices = hide.Profiles
	default:
		cli.Usagef("hidesim", "unknown device %q", *device)
	}
	if *metric != "power" && *metric != "suspend" && *metric != "all" {
		cli.Usagef("hidesim", "unknown metric %q", *metric)
	}

	if *format != "table" && *format != "csv" {
		cli.Usagef("hidesim", "unknown format %q", *format)
	}

	if *format == "csv" {
		w := csv.NewWriter(os.Stdout)
		if err := w.Write([]string{
			"device", "trace", "solution", "useful_fraction",
			"avg_power_mw", "eb_mw", "ef_mw", "est_mw", "ewl_mw", "eo_mw", "suspend_fraction",
		}); err != nil {
			cli.Exit("hidesim", err)
		}
		for _, dev := range devices {
			suite, err := hide.RunSuiteContext(ctx, dev, opts)
			if err != nil {
				cli.Exit("hidesim", err)
			}
			writeCSV(w, suite)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			cli.Exit("hidesim", err)
		}
		return
	}

	for _, dev := range devices {
		suite, err := hide.RunSuiteContext(ctx, dev, opts)
		if err != nil {
			cli.Exit("hidesim", err)
		}
		if *metric == "power" || *metric == "all" {
			printPower(suite, *components)
		}
		if *metric == "suspend" || *metric == "all" {
			printSuspend(suite)
		}
	}
}

// runFaultGrid runs the chaos grid for the named scenarios and exits
// non-zero on any invariant, recovery, or determinism failure.
func runFaultGrid(names string, workers int) {
	if names == "list" {
		for _, sc := range check.DefaultChaosScenarios() {
			fmt.Printf("%-14s %s\n", sc.Name, sc.Note)
		}
		return
	}
	scenarios, err := check.ScenariosByName(names)
	if err != nil {
		cli.Usagef("hidesim", "%v", err)
	}
	ctx, stop := cli.SignalContext()
	defer stop()
	results, err := check.RunChaosGrid(ctx, check.ChaosConfig{
		Scenarios: scenarios,
		Workers:   workers,
	})
	if err != nil {
		cli.Exit("hidesim", err)
	}
	fmt.Print(check.ChaosReport(results))
	if err := check.ChaosErr(results); err != nil {
		cli.Exit("hidesim", err)
	}
}

// writeCSV emits one row per evaluated bar.
func writeCSV(w *csv.Writer, s *hide.Suite) {
	row := func(trace, solution string, useful float64, r hide.Result) {
		eb, ef, est, ewl, eo := r.Breakdown.ComponentPowersW()
		rec := []string{
			s.Device.Name, trace, solution,
			strconv.FormatFloat(useful, 'f', 2, 64),
			strconv.FormatFloat(r.AvgPowerMW(), 'f', 3, 64),
			strconv.FormatFloat(eb*1000, 'f', 3, 64),
			strconv.FormatFloat(ef*1000, 'f', 3, 64),
			strconv.FormatFloat(est*1000, 'f', 3, 64),
			strconv.FormatFloat(ewl*1000, 'f', 3, 64),
			strconv.FormatFloat(eo*1000, 'f', 3, 64),
			strconv.FormatFloat(r.Breakdown.SuspendFraction, 'f', 4, 64),
		}
		//lint:ignore errdrop csv.Writer defers write errors to Error(), checked after Flush
		_ = w.Write(rec)
	}
	for _, c := range s.Comparisons {
		row(c.Trace, "receive-all", 0.10, c.ReceiveAll)
		row(c.Trace, "client-side", 0.10, c.ClientSide)
		for i, h := range c.HIDE {
			row(c.Trace, "HIDE", hide.UsefulFractions[i], h)
		}
	}
}

// printPower renders the Figure 7/8 table for one device.
func printPower(s *hide.Suite, components bool) {
	fig := "Figure 7"
	if s.Device.Name == hide.GalaxyS4.Name {
		fig = "Figure 8"
	}
	fmt.Printf("== %s: avg power of broadcast handling (mW), %s ==\n", fig, s.Device.Name)
	fmt.Printf("%-10s %12s %12s", "trace", "receive-all", "client-side")
	for _, f := range hide.UsefulFractions {
		fmt.Printf(" %11s", fmt.Sprintf("HIDE:%g%%", f*100))
	}
	fmt.Println()
	for _, c := range s.Comparisons {
		fmt.Printf("%-10s %12.1f %12.1f", c.Trace, c.ReceiveAll.AvgPowerMW(), c.ClientSide.AvgPowerMW())
		for _, h := range c.HIDE {
			fmt.Printf(" %11.1f", h.AvgPowerMW())
		}
		fmt.Println()
		if components {
			printComponents("  receive-all", c.ReceiveAll)
			printComponents("  client-side", c.ClientSide)
			for i, h := range c.HIDE {
				printComponents(fmt.Sprintf("  HIDE:%g%%", hide.UsefulFractions[i]*100), h)
			}
		}
	}
	lo10, hi10 := s.SavingsRange(0)
	lo2, hi2 := s.SavingsRange(len(hide.UsefulFractions) - 1)
	fmt.Printf("HIDE:10%% saves %.0f%%-%.0f%% vs receive-all; HIDE:2%% saves %.0f%%-%.0f%%\n\n",
		lo10*100, hi10*100, lo2*100, hi2*100)
}

// printComponents renders one bar's stacked components.
func printComponents(label string, r hide.Result) {
	eb, ef, est, ewl, eo := r.Breakdown.ComponentPowersW()
	fmt.Printf("%-22s Eb=%6.1f Ef=%6.1f Est=%6.1f Ewl=%6.1f Eo=%5.2f (mW)\n",
		label, eb*1000, ef*1000, est*1000, ewl*1000, eo*1000)
}

// printSuspend renders the Figure 9 table for one device.
func printSuspend(s *hide.Suite) {
	fmt.Printf("== Figure 9: fraction of time in suspend mode, %s ==\n", s.Device.Name)
	fmt.Printf("%-10s %12s %12s %9s %9s\n", "trace", "receive-all", "client-side", "HIDE:10%", "HIDE:2%")
	for _, row := range s.Suspend {
		fmt.Printf("%-10s %12.2f %12.2f %9.2f %9.2f\n",
			row.Trace, row.ReceiveAll, row.ClientSide, row.HIDE10, row.HIDE2)
	}
	fmt.Println()
}
