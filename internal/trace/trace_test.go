package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dot11"
)

func TestGenerateScenarioCalibration(t *testing.T) {
	for _, s := range Scenarios {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			tr, err := GenerateScenario(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			cfg := ScenarioConfig(s)
			mean := tr.MeanFPS()
			// Within 15% of the Figure 6 calibration target.
			if math.Abs(mean-cfg.MeanFPS)/cfg.MeanFPS > 0.15 {
				t.Errorf("mean FPS = %.2f, want within 15%% of %.1f", mean, cfg.MeanFPS)
			}
			if tr.Duration < 30*time.Minute || tr.Duration > 60*time.Minute {
				t.Errorf("duration %v outside the paper's 30-60 min range", tr.Duration)
			}
		})
	}
}

func TestScenarioOrderingMatchesPaper(t *testing.T) {
	// Classroom and WML are the heavy traces; Starbucks the lightest.
	fps := map[Scenario]float64{}
	for _, s := range Scenarios {
		tr, err := GenerateScenario(s)
		if err != nil {
			t.Fatal(err)
		}
		fps[s] = tr.MeanFPS()
	}
	if fps[Starbucks] >= fps[CSDept] || fps[Starbucks] >= fps[WRL] {
		t.Errorf("Starbucks (%.2f) should be the lightest trace: %v", fps[Starbucks], fps)
	}
	if fps[WML] <= fps[CSDept] || fps[Classroom] <= fps[CSDept] {
		t.Errorf("WML/Classroom should be heavier than CS_Dept: %v", fps)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := ScenarioConfig(Starbucks)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Frames) != len(b.Frames) {
		t.Fatalf("same seed produced %d vs %d frames", len(a.Frames), len(b.Frames))
	}
	for i := range a.Frames {
		if a.Frames[i] != b.Frames[i] {
			t.Fatalf("frame %d differs between same-seed runs", i)
		}
	}
	cfg.Seed++
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Frames) == len(a.Frames) {
		same := true
		for i := range a.Frames {
			if a.Frames[i] != c.Frames[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateValidatesConfig(t *testing.T) {
	base := ScenarioConfig(Starbucks)
	cases := []func(*GenConfig){
		func(c *GenConfig) { c.MeanFPS = 0 },
		func(c *GenConfig) { c.Duration = 0 },
		func(c *GenConfig) { c.BurstFactor = 0.5 },
		func(c *GenConfig) { c.BurstFraction = 1.0 },
		func(c *GenConfig) { c.Rates = nil },
		func(c *GenConfig) { c.Mix = PortMix{} },
	}
	for i, mutate := range cases {
		cfg := base
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestFrameLengthsInRange(t *testing.T) {
	tr, err := GenerateScenario(Classroom)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range tr.Frames {
		if f.Length < 60 || f.Length > 1534 {
			t.Fatalf("frame length %d outside [60, 1534]", f.Length)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	mk := func() *Trace {
		return &Trace{
			Name: "t", Duration: 10 * time.Second,
			Frames: []Frame{
				{At: time.Second, Length: 100, Rate: dot11.Rate1Mbps, DstPort: 53},
				{At: 2 * time.Second, Length: 100, Rate: dot11.Rate1Mbps, DstPort: 53},
			},
		}
	}
	good := mk()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	cases := []func(*Trace){
		func(tr *Trace) { tr.Frames[0].At = -time.Second },
		func(tr *Trace) { tr.Frames[1].At = 11 * time.Second },
		func(tr *Trace) { tr.Frames[0].At, tr.Frames[1].At = tr.Frames[1].At, tr.Frames[0].At },
		func(tr *Trace) { tr.Frames[0].Length = 0 },
		func(tr *Trace) { tr.Frames[0].Rate = 0 },
	}
	for i, corrupt := range cases {
		tr := mk()
		corrupt(tr)
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: corrupted trace validated", i)
		}
	}
}

func TestFramesPerSecond(t *testing.T) {
	tr := &Trace{
		Name: "t", Duration: 3 * time.Second,
		Frames: []Frame{
			{At: 0, Length: 100, Rate: dot11.Rate1Mbps},
			{At: 500 * time.Millisecond, Length: 100, Rate: dot11.Rate1Mbps},
			{At: 2500 * time.Millisecond, Length: 100, Rate: dot11.Rate1Mbps},
		},
	}
	counts := tr.FramesPerSecond()
	want := []int{2, 0, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
	if got := tr.MeanFPS(); got != 1.0 {
		t.Errorf("MeanFPS = %v, want 1", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDFInts([]int{1, 2, 2, 3, 10})
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.6 {
		t.Errorf("At(2) = %v, want 0.6", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v, want 1", got)
	}
	if got := c.Mean(); math.Abs(got-3.6) > 1e-9 {
		t.Errorf("Mean = %v, want 3.6", got)
	}
	xs, ps := c.Points()
	if len(xs) != 4 || ps[len(ps)-1] != 1 {
		t.Errorf("Points = %v %v", xs, ps)
	}
	if c.Quantile(0) != 1 || c.Quantile(1) != 10 {
		t.Errorf("extreme quantiles wrong: %v %v", c.Quantile(0), c.Quantile(1))
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	samples := make([]float64, 200)
	for i := range samples {
		samples[i] = float64(i%17) * 1.5
	}
	c := NewCDF(samples)
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return c.At(a) <= c.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTagUniform(t *testing.T) {
	tr, err := GenerateScenario(WML)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.02, 0.1, 0.5} {
		u := TagUniform(tr, p, 99)
		got := UsefulFraction(u)
		if math.Abs(got-p) > 0.02 {
			t.Errorf("TagUniform(%v) fraction = %v", p, got)
		}
	}
	// Deterministic.
	a := TagUniform(tr, 0.1, 7)
	b := TagUniform(tr, 0.1, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("TagUniform not deterministic for fixed seed")
		}
	}
}

func TestTagByOpenPorts(t *testing.T) {
	tr, err := GenerateScenario(CSDept)
	if err != nil {
		t.Fatal(err)
	}
	open := map[uint16]bool{5353: true}
	u := TagByOpenPorts(tr, open)
	for i, f := range tr.Frames {
		if u[i] != (f.DstPort == 5353) {
			t.Fatalf("frame %d port %d tagged %v", i, f.DstPort, u[i])
		}
	}
}

func TestOpenPortsForFraction(t *testing.T) {
	tr, err := GenerateScenario(Classroom)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.02, 0.05, 0.1} {
		open := OpenPortsForFraction(tr, target)
		got := UsefulFraction(TagByOpenPorts(tr, open))
		if math.Abs(got-target) > 0.05 {
			t.Errorf("target %v: achieved fraction %v (ports %v)", target, got, open)
		}
	}
	if len(OpenPortsForFraction(tr, 0)) != 0 {
		t.Error("target 0 returned open ports")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := GenerateScenario(Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestJSONLRoundTrip(t *testing.T) {
	tr, err := GenerateScenario(WRL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func assertTracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.Name != want.Name {
		t.Errorf("name = %q, want %q", got.Name, want.Name)
	}
	if got.Duration != want.Duration {
		t.Errorf("duration = %v, want %v", got.Duration, want.Duration)
	}
	if len(got.Frames) != len(want.Frames) {
		t.Fatalf("frames = %d, want %d", len(got.Frames), len(want.Frames))
	}
	for i := range want.Frames {
		w, g := want.Frames[i], got.Frames[i]
		// Times round-trip at microsecond granularity.
		if w.At.Truncate(time.Microsecond) != g.At || w.Length != g.Length ||
			w.Rate != g.Rate || w.DstPort != g.DstPort || w.MoreData != g.MoreData {
			t.Fatalf("frame %d: got %+v, want %+v", i, g, w)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"at_us,length\n",
		"#name=x;duration_us=1000\nat_us,length,rate_bps,dst_port,more_data\nnot,a,valid,row,x\n",
		"#name=x;duration_us=1000\nwrong,header,entirely,here,now\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(bytes.NewReader([]byte(c))); err == nil {
			t.Errorf("case %d: garbage CSV accepted", i)
		}
	}
}

func TestReadJSONLRejectsFrameCountMismatch(t *testing.T) {
	in := `{"name":"x","duration_us":1000000,"frames":2}
{"at_us":1,"length":100,"rate_bps":1000000,"dst_port":53}
`
	if _, err := ReadJSONL(bytes.NewReader([]byte(in))); err == nil {
		t.Fatal("JSONL with wrong frame count accepted")
	}
}

func TestEndTime(t *testing.T) {
	f := Frame{At: time.Second, Length: 1250, Rate: dot11.Rate1Mbps}
	// 1250 bytes = 10000 bits at 1 Mb/s = 10 ms.
	if got := f.EndTime(); got != time.Second+10*time.Millisecond {
		t.Errorf("EndTime = %v, want 1.01s", got)
	}
	zero := Frame{At: time.Second}
	if zero.EndTime() != time.Second {
		t.Error("zero-rate frame EndTime changed")
	}
}

func TestPortMixPickDistribution(t *testing.T) {
	mix := DefaultPortMix()
	tr, err := GenerateScenario(WML)
	if err != nil {
		t.Fatal(err)
	}
	hist := tr.PortHistogram()
	for port := range hist {
		found := false
		for _, p := range mix.Ports {
			if p == port {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("generated port %d not in the mix", port)
		}
	}
	// The heaviest-weighted port should appear most often.
	if hist[137] <= hist[9956] {
		t.Errorf("port weights not respected: 137→%d vs 9956→%d", hist[137], hist[9956])
	}
}

func TestSummarizeUniformVsBursty(t *testing.T) {
	// A strictly periodic trace: dispersion ~0, CV ~0.
	uniform := &Trace{Name: "u", Duration: 100 * time.Second}
	for i := 0; i < 100; i++ {
		uniform.Frames = append(uniform.Frames, Frame{
			At:     time.Duration(i)*time.Second + 500*time.Millisecond,
			Length: 100, Rate: dot11.Rate1Mbps, DstPort: 1,
		})
	}
	us := Summarize(uniform)
	if us.IndexOfDispersion > 0.1 {
		t.Errorf("uniform dispersion = %v, want ~0", us.IndexOfDispersion)
	}
	if us.CV > 0.1 {
		t.Errorf("uniform CV = %v, want ~0", us.CV)
	}
	if us.MeanFPS != 1 || us.PeakFPS != 1 {
		t.Errorf("uniform rate stats: %+v", us)
	}

	// The bursty generator must show dispersion and CV well above 1.
	tr, err := GenerateScenario(Classroom)
	if err != nil {
		t.Fatal(err)
	}
	bs := Summarize(tr)
	if bs.IndexOfDispersion < 1.5 {
		t.Errorf("Classroom dispersion = %v, want bursty (>1.5)", bs.IndexOfDispersion)
	}
	if bs.CV < 1.0 {
		t.Errorf("Classroom CV = %v, want >= 1", bs.CV)
	}
	if bs.PeakFPS <= int(bs.MeanFPS) {
		t.Errorf("peak %d not above mean %v", bs.PeakFPS, bs.MeanFPS)
	}
	if bs.DistinctPorts < 5 {
		t.Errorf("distinct ports = %d", bs.DistinctPorts)
	}
	if bs.MeanFrameBytes < 60 || bs.MeanFrameBytes > 1534 {
		t.Errorf("mean frame bytes = %v", bs.MeanFrameBytes)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	empty := Summarize(&Trace{Name: "e", Duration: time.Second})
	if empty.Frames != 0 || empty.CV != 0 || empty.IndexOfDispersion != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
	single := Summarize(&Trace{
		Name: "s", Duration: time.Second,
		Frames: []Frame{{At: 0, Length: 100, Rate: dot11.Rate1Mbps}},
	})
	if single.Frames != 1 || single.CV != 0 {
		t.Errorf("single summary: %+v", single)
	}
}
