package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineZeroValue(t *testing.T) {
	var e Engine
	if e.Now() != 0 {
		t.Fatalf("zero engine Now = %v, want 0", e.Now())
	}
	if e.Step() {
		t.Fatal("Step on empty engine reported an event")
	}
	if got := e.Run(); got != 0 {
		t.Fatalf("Run on empty engine = %v, want 0", got)
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	e := New()
	var order []int
	e.MustScheduleAt(30*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	e.MustScheduleAt(10*time.Millisecond, func(time.Duration) { order = append(order, 1) })
	e.MustScheduleAt(20*time.Millisecond, func(time.Duration) { order = append(order, 2) })
	end := e.Run()
	if end != 30*time.Millisecond {
		t.Errorf("Run end time = %v, want 30ms", end)
	}
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("fired %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %d, want %d", i, order[i], want[i])
		}
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.MustScheduleAt(time.Second, func(time.Duration) { order = append(order, i) })
	}
	e.Run()
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-time events fired out of FIFO order: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := New()
	e.MustScheduleAt(time.Second, func(time.Duration) {})
	e.Run()
	if _, err := e.ScheduleAt(500*time.Millisecond, func(time.Duration) {}); err == nil {
		t.Fatal("scheduling in the past succeeded, want error")
	}
}

func TestScheduleAfterNegative(t *testing.T) {
	e := New()
	if _, err := e.ScheduleAfter(-time.Millisecond, func(time.Duration) {}); err == nil {
		t.Fatal("negative delay accepted, want error")
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.MustScheduleAt(time.Second, func(time.Duration) { fired = true })
	if !h.Pending() {
		t.Fatal("handle not pending after schedule")
	}
	if !h.Cancel() {
		t.Fatal("Cancel returned false for a pending event")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New()
	h := e.MustScheduleAt(time.Second, func(time.Duration) {})
	e.Run()
	if h.Pending() {
		t.Fatal("handle pending after firing")
	}
	if h.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	e := New()
	count := 0
	e.MustScheduleAt(time.Second, func(time.Duration) { count++ })
	e.MustScheduleAt(3*time.Second, func(time.Duration) { count++ })
	end := e.RunUntil(2 * time.Second)
	if end != 2*time.Second {
		t.Errorf("RunUntil returned %v, want 2s", end)
	}
	if count != 1 {
		t.Errorf("fired %d events before deadline, want 1", count)
	}
	end = e.RunUntil(5 * time.Second)
	if end != 5*time.Second || count != 2 {
		t.Errorf("after second RunUntil: end=%v count=%d, want 5s and 2", end, count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := New()
	var times []time.Duration
	e.MustScheduleAt(time.Second, func(now time.Duration) {
		times = append(times, now)
		e.MustScheduleAfter(time.Second, func(now time.Duration) {
			times = append(times, now)
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != time.Second || times[1] != 2*time.Second {
		t.Fatalf("chained events fired at %v, want [1s 2s]", times)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := 1; i <= 5; i++ {
		e.MustScheduleAt(time.Duration(i)*time.Second, func(time.Duration) {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Fatalf("fired %d events after Stop, want 2", count)
	}
	if e.Pending() == 0 {
		t.Fatal("Stop drained the queue")
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := New()
	e.MustScheduleAt(time.Second, func(time.Duration) {
		defer func() {
			if recover() == nil {
				t.Error("reentrant Run did not panic")
			}
		}()
		e.Run()
	})
	e.Run()
}

func TestFiredCounter(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.MustScheduleAt(time.Duration(i)*time.Millisecond, func(time.Duration) {})
	}
	h := e.MustScheduleAt(10*time.Millisecond, func(time.Duration) {})
	h.Cancel()
	e.Run()
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d, want 7 (cancelled events must not count)", e.Fired())
	}
}

func TestManyEventsSortedDispatch(t *testing.T) {
	e := New()
	r := NewRNG(42)
	const n = 5000
	var last time.Duration = -1
	ok := true
	for i := 0; i < n; i++ {
		at := time.Duration(r.Intn(1_000_000)) * time.Microsecond
		e.MustScheduleAt(at, func(now time.Duration) {
			if now < last {
				ok = false
			}
			last = now
		})
	}
	e.Run()
	if !ok {
		t.Fatal("events dispatched out of time order")
	}
	if e.Fired() != n {
		t.Fatalf("Fired = %d, want %d", e.Fired(), n)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(123)
	f := func(_ uint8) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(99)
	for n := 1; n < 100; n++ {
		for i := 0; i < 20; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(2024)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Fatalf("ExpFloat64 mean = %v, want ~1.0", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(77)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("NormFloat64 mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("NormFloat64 variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRunUntilInterrupt(t *testing.T) {
	e := New()
	var fired []time.Duration
	for i := 1; i <= 6; i++ {
		at := time.Duration(i) * time.Second
		e.MustScheduleAt(at, func(now time.Duration) { fired = append(fired, now) })
	}
	// Interrupt once three events have run: the drain must stop where it
	// stands, leaving the remaining events queued and the clock at the
	// last dispatched event rather than the deadline.
	e.SetInterrupt(func() bool { return len(fired) >= 3 })
	if got := e.RunUntil(10 * time.Second); got != 3*time.Second {
		t.Fatalf("interrupted RunUntil returned %v, want 3s", got)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock advanced to %v under interrupt, want 3s", e.Now())
	}
	if e.Fired() != 3 {
		t.Fatalf("fired %d events under interrupt, want 3", e.Fired())
	}
	// Clearing the hook resumes the ordinary unconditional drain, and the
	// clock lands on the deadline as usual.
	e.SetInterrupt(nil)
	if got := e.RunUntil(10 * time.Second); got != 10*time.Second {
		t.Fatalf("resumed RunUntil returned %v, want 10s", got)
	}
	if len(fired) != 6 {
		t.Fatalf("total events fired %d, want 6", len(fired))
	}
	for i, at := range fired {
		if want := time.Duration(i+1) * time.Second; at != want {
			t.Fatalf("event %d fired at %v, want %v", i, at, want)
		}
	}
}

func TestRunUntilInterruptImmediate(t *testing.T) {
	e := New()
	ran := false
	e.MustScheduleAt(time.Second, func(now time.Duration) { ran = true })
	e.SetInterrupt(func() bool { return true })
	if got := e.RunUntil(5 * time.Second); got != 0 {
		t.Fatalf("immediately-interrupted RunUntil returned %v, want 0", got)
	}
	if ran {
		t.Fatal("event dispatched despite the interrupt firing before it")
	}
}
