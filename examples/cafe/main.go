// Cafe: the paper's motivating scene, played out on the live protocol
// simulation. Three phones sit in a cafe whose AP relays mDNS, SSDP,
// NetBIOS and printer-discovery broadcast all day: a stock phone
// (receive-all), a phone with the client-side driver filter, and a
// HIDE phone that told the AP it only cares about mDNS (5353) and its
// sync app's port. Real 802.11 frames — beacons with TIM/BTIM, UDP
// Port Messages, ACKs, broadcast data — flow over the emulated channel.
//
// Run with:
//
//	go run ./examples/cafe
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/station"
)

func main() {
	// A cafe-like trace: light but bursty broadcast chatter.
	tr, err := hide.GenerateTrace(hide.Starbucks)
	if err != nil {
		log.Fatal(err)
	}

	// The phones' apps listen on mDNS and one sync-app port.
	openPorts := []uint16{5353, 17500}

	net, err := hide.NewNetwork(hide.NetworkConfig{SSID: "cafe-wifi", HIDE: true})
	if err != nil {
		log.Fatal(err)
	}

	type phone struct {
		name string
		mode hide.StationMode
		st   *station.Station
	}
	phones := []*phone{
		{name: "stock-phone", mode: hide.StationLegacy},
		{name: "filter-phone", mode: hide.StationClientSide},
		{name: "hide-phone", mode: hide.StationHIDE},
	}
	for _, p := range phones {
		st, err := net.AddStation(p.mode, openPorts)
		if err != nil {
			log.Fatal(err)
		}
		p.st = st
	}

	fmt.Printf("cafe-wifi: replaying %v of broadcast chatter (%d frames)\n",
		tr.Duration, len(tr.Frames))
	if err := net.Replay(tr); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-14s %9s %7s %8s %10s %12s\n",
		"phone", "received", "useful", "wakeups", "power(mW)", "battery/day")
	for _, p := range phones {
		b, err := net.StationEnergy(p.st, hide.GalaxyS4, tr.Duration, p.mode == hide.StationHIDE)
		if err != nil {
			log.Fatal(err)
		}
		s := p.st.Stats()
		// A Galaxy S4 battery holds ~9.88 Wh; show broadcast handling
		// as a share of one day's budget.
		const batteryWh = 9.88
		dayShare := b.AvgPowerW() * 24 / batteryWh
		fmt.Printf("%-14s %9d %7d %8d %10.1f %11.1f%%\n",
			p.name, s.GroupReceived, s.GroupUseful, s.Wakeups,
			b.AvgPowerW()*1000, dayShare*100)
	}
	fmt.Println("\nThe HIDE phone slept through everything except its mDNS and sync traffic.")
}
