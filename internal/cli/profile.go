package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// ProfileFlags registers the -cpuprofile and -memprofile flags on the
// default flag set and returns the bound values. Both default to off
// (empty path).
func ProfileFlags() (cpu, mem *string) {
	cpu = flag.String("cpuprofile", "", "write a CPU profile to this file")
	mem = flag.String("memprofile", "", "write a heap profile to this file on exit")
	return cpu, mem
}

// StartProfiles begins CPU profiling when cpu is non-empty and returns
// a stop function that finishes the CPU profile and, when mem is
// non-empty, writes a heap profile. Callers must invoke stop on every
// exit path that should produce profiles (defer works for normal
// returns; os.Exit paths need an explicit call first).
func StartProfiles(prog, cpu, mem string) (stop func()) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			Exit(prog, fmt.Errorf("cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			Exit(prog, fmt.Errorf("cpu profile: %w", err))
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				Exit(prog, fmt.Errorf("cpu profile: %w", err))
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				Exit(prog, fmt.Errorf("heap profile: %w", err))
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				Exit(prog, fmt.Errorf("heap profile: %w", err))
			}
			if err := f.Close(); err != nil {
				Exit(prog, fmt.Errorf("heap profile: %w", err))
			}
		}
	}
}
