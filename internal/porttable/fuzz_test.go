package porttable

import (
	"testing"
	"time"

	"repro/internal/dot11"
)

// FuzzCohortOrListeners fuzzes the cohort count arithmetic behind BTIM
// pricing: a block entry of count members must be indistinguishable —
// through OrListeners (Algorithm 1's hot path), ListenerCount,
// Listening, and Members — from the same block split into two entries
// at an arbitrary interior point. The harness clamps the random inputs
// into the AID regimes the AP can actually create (sequential
// allocation, blocks clamped at dot11.MaxAID, counts far beyond the
// AID space in the aggregate regime) and then requires exact agreement,
// so any overflow, wraparound, or off-by-one in blockEnd/updateBlock
// shows up as a divergence.
func FuzzCohortOrListeners(f *testing.F) {
	f.Add(uint16(1), 7, 3, uint16(5353))
	f.Add(uint16(2000), 100, 10, uint16(53))       // block clamps at MaxAID
	f.Add(uint16(1), 1_000_000, 2006, uint16(443)) // count beyond the AID space
	f.Add(uint16(900), 64, 1, uint16(0))
	f.Add(uint16(2006), 2, 1, uint16(65535))
	f.Fuzz(func(t *testing.T, base16 uint16, count, split int, port uint16) {
		// Normalize into the allocator's regime: a valid base AID, a
		// multi-member count, and an interior split whose tail base
		// still fits the AID space (the sequential allocator never
		// hands out a block base past MaxAID).
		base := dot11.AID(base16%uint16(dot11.MaxAID)) + 1
		if count < 2 {
			count = 2
		}
		if count > 1<<21 {
			count = count%(1<<21) + 2
		}
		k := split % (count - 1)
		if k < 0 {
			k = -k
		}
		k++ // 1..count-1
		if k > int(dot11.MaxAID)-1 {
			k = int(dot11.MaxAID) - 1
		}
		if int64(base)+int64(k) > int64(dot11.MaxAID) {
			base = dot11.AID(int64(dot11.MaxAID) - int64(k))
		}

		ports := []uint16{port, 5353}
		now := 3 * time.Second
		whole := New()
		if err := whole.UpdateCohortAt(base, count, ports, now); err != nil {
			t.Fatalf("whole block (%d,%d): %v", base, count, err)
		}
		halves := New()
		if err := halves.UpdateCohortAt(base, k, ports, now); err != nil {
			t.Fatalf("head (%d,%d): %v", base, k, err)
		}
		tail := base + dot11.AID(k)
		if err := halves.UpdateCohortAt(tail, count-k, ports, now); err != nil {
			t.Fatalf("tail (%d,%d): %v", tail, count-k, err)
		}

		if w, h := whole.Members(), halves.Members(); w != h {
			t.Fatalf("Members: whole %d, halves %d", w, h)
		}
		for _, p := range []uint16{port, 5353, port + 1} {
			var wb, hb dot11.VirtualBitmap
			wany := whole.OrListeners(p, &wb)
			hany := halves.OrListeners(p, &hb)
			if wany != hany {
				t.Fatalf("OrListeners(%d): whole %v, halves %v", p, wany, hany)
			}
			if !wb.Equal(&hb) {
				t.Fatalf("OrListeners(%d): bitmaps differ (whole %d bits, halves %d bits)", p, wb.Count(), hb.Count())
			}
			if w, h := whole.ListenerCount(p), halves.ListenerCount(p); w != h {
				t.Fatalf("ListenerCount(%d): whole %d, halves %d", p, w, h)
			}
			samples := []int64{1, int64(base), int64(base) + 1, int64(tail),
				int64(tail) + 1, int64(blockEnd(base, count)), int64(dot11.MaxAID)}
			for _, a := range samples {
				if a < 1 || a > int64(dot11.MaxAID) {
					continue
				}
				aid := dot11.AID(a)
				if w, h := whole.Listening(p, aid), halves.Listening(p, aid); w != h {
					t.Fatalf("Listening(%d, %d): whole %v, halves %v", p, aid, w, h)
				}
			}
		}
	})
}
