package ap

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/sim"
)

// TestBeaconBytesInsensitiveToInsertionOrder locks in the property the
// determinism analyzer exists to protect at the AP layer: the TIM and
// BTIM elements are computed from the client map and the Client UDP
// Port Table, both map-backed, so a beacon must come out byte-for-byte
// identical no matter the order in which port updates populated those
// maps (Algorithm 1's flag union is commutative and table lookups are
// sorted).
func TestBeaconBytesInsensitiveToInsertionOrder(t *testing.T) {
	const n = 12
	addrs := make([]dot11.MACAddr, n)
	for i := range addrs {
		addrs[i] = dot11.MACAddr{2, 0, 0, 0, 1, byte(i + 1)}
	}
	ports := func(i int) []uint16 {
		return []uint16{uint16(5000 + i), uint16(6000 + i%4)}
	}

	build := func(perm []int) []byte {
		eng := sim.New()
		med := medium.New(eng, dot11.DefaultPHY(), 42)
		a := New(eng, med, Config{BSSID: bssid, SSID: "perm", HIDE: true, DTIMPeriod: 1})
		// Associations run in a fixed order so every trial binds the
		// same AID to the same address; only map-population order may
		// differ between trials.
		for _, addr := range addrs {
			if _, err := a.Associate(addr, true); err != nil {
				t.Fatal(err)
			}
		}
		// Port updates land in permuted order, preceded by a throwaway
		// update per client so the table's internal maps also see
		// per-trial histories, not just per-trial insertion orders.
		for _, i := range perm {
			a.Table().Update(dot11.AID(i+1), []uint16{9999})
		}
		for _, i := range perm {
			a.Table().Update(dot11.AID(i+1), ports(i))
		}
		// Buffer group traffic for a port subset and unicast frames
		// for a client subset, so the beacon carries both a populated
		// BTIM and a populated TIM.
		for i := 0; i < n; i += 3 {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: uint16(5000 + i)}, dot11.Rate1Mbps)
		}
		for i := 0; i < n; i += 4 {
			if err := a.EnqueueUnicast(addrs[i], dot11.UDPDatagram{DstPort: 7000}, dot11.Rate11Mbps); err != nil {
				t.Fatal(err)
			}
		}
		_, raw := a.encodeBeacon(100*time.Millisecond, true)
		return append([]byte(nil), raw...)
	}

	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	want := build(base)
	for trial := 0; trial < 5; trial++ {
		perm := append([]int(nil), base...)
		rand.New(rand.NewSource(int64(trial))).Shuffle(n, func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		if got := build(perm); !bytes.Equal(got, want) {
			t.Fatalf("beacon bytes differ for insertion order %v:\n got %x\nwant %x", perm, got, want)
		}
	}
}

// TestBeaconBytesInsensitiveToExpiryOrder extends the shuffle property
// to the TTL machinery: per-client refresh stamps and an ExpireBefore
// sweep add a third map (AID → stamp) to the table, and the beacon
// must stay byte-identical no matter the order stamps were written in
// — the sweep visits that map in sorted order, and the surviving
// entries' contribution to Algorithm 1 is order-free.
func TestBeaconBytesInsensitiveToExpiryOrder(t *testing.T) {
	const n = 12
	addrs := make([]dot11.MACAddr, n)
	for i := range addrs {
		addrs[i] = dot11.MACAddr{2, 0, 0, 0, 2, byte(i + 1)}
	}
	// Odd-indexed clients carry stale stamps and must be swept.
	stamp := func(i int) time.Duration {
		if i%2 == 1 {
			return time.Duration(i) * time.Millisecond
		}
		return time.Second + time.Duration(i)*time.Millisecond
	}

	build := func(perm []int) []byte {
		eng := sim.New()
		med := medium.New(eng, dot11.DefaultPHY(), 42)
		a := New(eng, med, Config{BSSID: bssid, SSID: "ttl", HIDE: true, DTIMPeriod: 1})
		for _, addr := range addrs {
			if _, err := a.Associate(addr, true); err != nil {
				t.Fatal(err)
			}
		}
		for _, i := range perm {
			a.Table().UpdateAt(dot11.AID(i+1), []uint16{uint16(5000 + i), 53}, stamp(i))
		}
		if stale := a.Table().ExpireBefore(time.Second); len(stale) != n/2 {
			t.Fatalf("sweep expired %d clients, want %d", len(stale), n/2)
		}
		for i := 0; i < n; i++ {
			a.EnqueueGroup(dot11.UDPDatagram{DstPort: uint16(5000 + i)}, dot11.Rate1Mbps)
		}
		_, raw := a.encodeBeacon(100*time.Millisecond, true)
		return append([]byte(nil), raw...)
	}

	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	want := build(base)
	for trial := 0; trial < 5; trial++ {
		perm := append([]int(nil), base...)
		rand.New(rand.NewSource(int64(100+trial))).Shuffle(n, func(i, j int) {
			perm[i], perm[j] = perm[j], perm[i]
		})
		if got := build(perm); !bytes.Equal(got, want) {
			t.Fatalf("beacon bytes differ for stamp order %v:\n got %x\nwant %x", perm, got, want)
		}
	}
}
