// Package control is the hided daemon's HTTP control plane: JSON
// endpoints over stdlib net/http for the port table, associated
// stations, and live counters, a Prometheus-text /metrics exposition,
// a /healthz probe, and a POST /v1/fault endpoint that installs
// internal/fault plans on the live airlink — so the chaos scenarios
// the in-process grid runs can be driven against a real daemon over
// real sockets.
//
// The package holds no daemon state and reads no clocks: every
// request is answered from the Backend interface the daemon
// implements, and the PlanSpec grammar is a pure JSON mirror of the
// fault-plan combinators. Malformed input — including adversarial
// /v1/fault bodies, see FuzzControlRequest — must produce an HTTP
// error, never a panic.
package control

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
)

// maxPlanDepth bounds PlanSpec recursion so a deeply nested body
// cannot blow the stack.
const maxPlanDepth = 32

// maxPlanNodes bounds the total combinator count of one spec.
const maxPlanNodes = 1024

// PlanSpec is the JSON grammar for fault plans — one node per
// internal/fault combinator. Leaves: "loss", "corrupt", "duplicate"
// (probability p), "gilbert-elliott" (the four chain parameters).
// Wrappers: "only" (inner + frames), "to" (inner + to), "window"
// (inner + from_ms/until_ms), "silence" (to + from_ms), "compose"
// (plans). Example:
//
//	{"kind":"compose","plans":[
//	  {"kind":"window","from_ms":100,"until_ms":400,
//	   "inner":{"kind":"loss","p":0.5}},
//	  {"kind":"only","frames":["beacon"],"inner":{"kind":"corrupt","p":0.1}}]}
type PlanSpec struct {
	Kind string `json:"kind"`

	// P is the per-delivery probability for loss/corrupt/duplicate.
	P float64 `json:"p,omitempty"`

	// Gilbert-Elliott chain parameters.
	PGoodBad float64 `json:"p_good_bad,omitempty"`
	PBadGood float64 `json:"p_bad_good,omitempty"`
	LossGood float64 `json:"loss_good,omitempty"`
	LossBad  float64 `json:"loss_bad,omitempty"`

	// Frames restricts an "only" wrapper to the named frame kinds
	// (dot11.FrameKind String names: "beacon", "data", ...).
	Frames []string `json:"frames,omitempty"`

	// To targets a "to" or "silence" node at one receiver MAC
	// ("02:1d:e0:aa:00:10").
	To string `json:"to,omitempty"`

	// FromMS/UntilMS bound a "window" (virtual-time milliseconds since
	// daemon boot); FromMS alone starts a "silence".
	FromMS  int64 `json:"from_ms,omitempty"`
	UntilMS int64 `json:"until_ms,omitempty"`

	// Inner is the wrapped plan for "only", "to", and "window".
	Inner *PlanSpec `json:"inner,omitempty"`

	// Plans are the children of a "compose" node.
	Plans []PlanSpec `json:"plans,omitempty"`
}

// Build compiles the spec into a fault.Plan, validating every node.
// It never panics on malformed input.
func (s *PlanSpec) Build() (fault.Plan, error) {
	if s == nil {
		return nil, fmt.Errorf("control: nil plan spec")
	}
	nodes := 0
	return s.build(0, &nodes)
}

func (s *PlanSpec) build(depth int, nodes *int) (fault.Plan, error) {
	if depth > maxPlanDepth {
		return nil, fmt.Errorf("control: plan nested deeper than %d", maxPlanDepth)
	}
	*nodes++
	if *nodes > maxPlanNodes {
		return nil, fmt.Errorf("control: plan larger than %d nodes", maxPlanNodes)
	}
	switch s.Kind {
	case "loss":
		if err := checkProb("p", s.P); err != nil {
			return nil, err
		}
		return fault.Loss{P: s.P}, nil
	case "corrupt":
		if err := checkProb("p", s.P); err != nil {
			return nil, err
		}
		return fault.Corrupt{P: s.P}, nil
	case "duplicate":
		if err := checkProb("p", s.P); err != nil {
			return nil, err
		}
		return fault.Duplicate{P: s.P}, nil
	case "gilbert-elliott":
		for _, pr := range []struct {
			name string
			v    float64
		}{
			{"p_good_bad", s.PGoodBad}, {"p_bad_good", s.PBadGood},
			{"loss_good", s.LossGood}, {"loss_bad", s.LossBad},
		} {
			if err := checkProb(pr.name, pr.v); err != nil {
				return nil, err
			}
		}
		return fault.NewGilbertElliott(s.PGoodBad, s.PBadGood, s.LossGood, s.LossBad)
	case "only":
		if s.Inner == nil {
			return nil, fmt.Errorf("control: only without inner plan")
		}
		if len(s.Frames) == 0 {
			return nil, fmt.Errorf("control: only without frames")
		}
		kinds := make([]dot11.FrameKind, 0, len(s.Frames))
		for _, name := range s.Frames {
			k, err := frameKind(name)
			if err != nil {
				return nil, err
			}
			kinds = append(kinds, k)
		}
		inner, err := s.Inner.build(depth+1, nodes)
		if err != nil {
			return nil, err
		}
		return fault.Only(inner, kinds...), nil
	case "to":
		if s.Inner == nil {
			return nil, fmt.Errorf("control: to without inner plan")
		}
		mac, err := ParseMAC(s.To)
		if err != nil {
			return nil, err
		}
		inner, err := s.Inner.build(depth+1, nodes)
		if err != nil {
			return nil, err
		}
		return fault.To(mac, inner), nil
	case "window":
		if s.Inner == nil {
			return nil, fmt.Errorf("control: window without inner plan")
		}
		if s.FromMS < 0 || s.UntilMS < s.FromMS {
			return nil, fmt.Errorf("control: window [%d,%d) ms is empty or negative", s.FromMS, s.UntilMS)
		}
		inner, err := s.Inner.build(depth+1, nodes)
		if err != nil {
			return nil, err
		}
		return fault.Window{
			From:  time.Duration(s.FromMS) * time.Millisecond,
			To:    time.Duration(s.UntilMS) * time.Millisecond,
			Inner: inner,
		}, nil
	case "silence":
		mac, err := ParseMAC(s.To)
		if err != nil {
			return nil, err
		}
		if s.FromMS < 0 {
			return nil, fmt.Errorf("control: silence from_ms %d is negative", s.FromMS)
		}
		return fault.Silence(mac, time.Duration(s.FromMS)*time.Millisecond), nil
	case "compose":
		if len(s.Plans) == 0 {
			return nil, fmt.Errorf("control: compose without plans")
		}
		plans := make([]fault.Plan, 0, len(s.Plans))
		for i := range s.Plans {
			p, err := s.Plans[i].build(depth+1, nodes)
			if err != nil {
				return nil, err
			}
			plans = append(plans, p)
		}
		return fault.Compose(plans...), nil
	case "":
		return nil, fmt.Errorf("control: plan node missing kind")
	default:
		return nil, fmt.Errorf("control: unknown plan kind %q", s.Kind)
	}
}

// checkProb validates a probability field.
func checkProb(name string, p float64) error {
	// A NaN fails both comparisons' complements, so test the valid
	// range directly and reject everything else (including NaN).
	if p >= 0 && p <= 1 {
		return nil
	}
	return fmt.Errorf("control: %s=%v outside [0,1]", name, p)
}

// frameKind resolves a dot11.FrameKind String name.
func frameKind(name string) (dot11.FrameKind, error) {
	for k := dot11.KindBeacon; k <= dot11.KindReassocResponse; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("control: unknown frame kind %q", name)
}

// ParseMAC parses a colon-separated MAC address ("02:1d:e0:aa:00:10").
func ParseMAC(s string) (dot11.MACAddr, error) {
	var mac dot11.MACAddr
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return mac, fmt.Errorf("control: bad MAC %q", s)
	}
	for i, p := range parts {
		b, err := strconv.ParseUint(p, 16, 8)
		if err != nil || len(p) != 2 {
			return mac, fmt.Errorf("control: bad MAC %q", s)
		}
		mac[i] = byte(b)
	}
	return mac, nil
}

// FaultRequest is the body of POST /v1/fault: either {"clear":true}
// to remove the installed plan, or a plan with the RNG seed its
// verdicts draw from.
type FaultRequest struct {
	Clear bool      `json:"clear,omitempty"`
	Seed  uint64    `json:"seed,omitempty"`
	Plan  *PlanSpec `json:"plan,omitempty"`
}

// Validate checks the request shape and compiles the plan (nil for a
// clear request).
func (r *FaultRequest) Validate() (fault.Plan, error) {
	if r.Clear {
		if r.Plan != nil {
			return nil, fmt.Errorf("control: clear request carries a plan")
		}
		return nil, nil
	}
	if r.Plan == nil {
		return nil, fmt.Errorf("control: fault request without plan (use {\"clear\":true} to remove)")
	}
	return r.Plan.Build()
}

// InjectRequest is the body of POST /v1/inject: enqueue count group
// frames addressed to a UDP port at the AP (count defaults to 1).
type InjectRequest struct {
	Port  uint16 `json:"port"`
	Count int    `json:"count,omitempty"`
}

// decodeJSON strictly decodes a request body into v.
func decodeJSON(data []byte, v any) error {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("control: bad request body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("control: trailing data after JSON body")
	}
	return nil
}
