// Command timeline renders a station's reconstructed power-state
// timeline as ASCII art: what the phone was doing, second by second,
// under each traffic-management solution. It makes the paper's Figure
// 9 story visible — receive-all keeps the host awake through broadcast
// chatter while HIDE sleeps through all of it except its own traffic.
//
//	█ awake   ▒ resuming/suspending   · suspended
//
// Usage:
//
//	timeline [-scenario Starbucks] [-device nexusone] [-useful 0.1] [-window 5m] [-width 100]
package main

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/trace"
)

func main() {
	scenario := flag.String("scenario", "Starbucks", "trace scenario")
	device := flag.String("device", "nexusone", "device profile: nexusone or galaxys4")
	useful := flag.Float64("useful", 0.10, "useful broadcast fraction")
	window := flag.Duration("window", 5*time.Minute, "portion of the trace to render")
	width := flag.Int("width", 100, "characters per row")
	flag.Parse()

	var dev hide.Profile
	switch strings.ToLower(*device) {
	case "nexusone":
		dev = hide.NexusOne
	case "galaxys4":
		dev = hide.GalaxyS4
	default:
		cli.Usagef("timeline", "unknown device %q", *device)
	}
	var sc hide.Scenario
	found := false
	for _, s := range hide.Scenarios {
		if strings.EqualFold(s.String(), *scenario) {
			sc, found = s, true
			break
		}
	}
	if !found {
		cli.Usagef("timeline", "unknown scenario %q", *scenario)
	}
	if *width < 10 || *width > 500 {
		cli.Usagef("timeline", "width %d outside [10, 500]", *width)
	}

	full, err := hide.GenerateTrace(sc)
	if err != nil {
		cli.Exit("timeline", err)
	}
	tr := hide.TruncateTrace(full, *window)
	tagged := hide.TagUniform(tr, *useful, hide.DefaultSeed)

	fmt.Printf("%s on %s, first %v, %.0f%% useful (%d broadcast frames)\n",
		tr.Name, dev.Name, tr.Duration, *useful*100, len(tr.Frames))
	fmt.Printf("legend: %s\n\n", "█ awake   ▒ resuming/suspending   · suspended")

	ctx, stop := cli.SignalContext()
	defer stop()
	for _, k := range []policy.Kind{policy.ReceiveAll, policy.ClientSide, policy.HIDE} {
		cli.Abort(ctx, "timeline")
		p, err := policy.New(k)
		if err != nil {
			cli.Exit("timeline", err)
		}
		arr, err := p.Apply(tr, tagged)
		if err != nil {
			cli.Exit("timeline", err)
		}
		cfg := energy.Config{Device: dev, Duration: tr.Duration}
		ivs, err := energy.StateTimeline(arr, cfg)
		if err != nil {
			cli.Exit("timeline", err)
		}
		b, err := energy.Compute(arr, cfg)
		if err != nil {
			cli.Exit("timeline", err)
		}
		label := k.String()
		if k == policy.ClientSide {
			// The timeline shows one concrete filter (δ = 100 ms), not
			// the evaluation pipeline's lower-bound sweep.
			label = "client-side*"
		}
		fmt.Printf("%-12s %s  %5.1f mW, %4.1f%% suspended\n",
			label, render(ivs, tr.Duration, *width), b.AvgPowerW()*1000, b.SuspendFraction*100)
	}
	fmt.Println("\n(* client-side rendered with a fixed 100 ms driver wakelock, not the lower-bound sweep)")

	fmt.Printf("\nframe arrivals: %s\n", renderArrivals(tr, *width))
}

// render maps the timeline onto width buckets, picking each bucket's
// dominant state.
func render(ivs []energy.Interval, d time.Duration, width int) string {
	glyph := map[energy.StateKind]rune{
		energy.StateSuspended:  '·',
		energy.StateSuspending: '▒',
		energy.StateResuming:   '▒',
		energy.StateAwake:      '█',
	}
	var sb strings.Builder
	bucket := d / time.Duration(width)
	for i := 0; i < width; i++ {
		from := time.Duration(i) * bucket
		to := from + bucket
		// Dominant state within [from, to).
		var best energy.StateKind
		var bestDur time.Duration
		for _, iv := range ivs {
			lo, hi := iv.From, iv.To
			if lo < from {
				lo = from
			}
			if hi > to {
				hi = to
			}
			if hi > lo && hi-lo > bestDur {
				bestDur = hi - lo
				best = iv.Kind
			}
		}
		sb.WriteRune(glyph[best])
	}
	return sb.String()
}

// renderArrivals marks buckets containing at least one broadcast frame.
func renderArrivals(tr *trace.Trace, width int) string {
	marks := make([]rune, width)
	for i := range marks {
		marks[i] = ' '
	}
	bucket := tr.Duration / time.Duration(width)
	for _, f := range tr.Frames {
		i := int(f.At / bucket)
		if i >= width {
			i = width - 1
		}
		marks[i] = '|'
	}
	return string(marks)
}
