// Churn experiment: the energy/miss cost of cold versus replicated
// handoffs across roam rates. One run replays a scenario trace
// through a K-AP ESS populated with HIDE stations under seed-driven
// mobility, and reports the wanted-frame misses (total and
// resync-window), the DS replication volume, and the mean per-station
// broadcast-handling energy.

package ess

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/station"
	"repro/internal/trace"
)

// ChurnConfig tunes one churn-rate cell.
type ChurnConfig struct {
	// APs and Stations size the ESS (defaults 4 and 32).
	APs      int
	Stations int
	// Scenario selects the replayed broadcast trace.
	Scenario trace.Scenario
	// Duration truncates the scenario capture; zero keeps it whole.
	Duration time.Duration
	// UsefulTarget is the port-derived useful-traffic fraction every
	// station's open-port set is built from (default 0.10).
	UsefulTarget float64
	// RoamRate is the expected roams per station per minute.
	RoamRate float64
	// Replicate selects warm (replicated) handoffs; false runs cold.
	Replicate bool
	// DSLoss drops replicated records with this probability.
	DSLoss float64
	// Seed perturbs the trace generator and drives the mobility RNG.
	Seed uint64
	// RefreshJitter passes through to core.NetworkConfig: it spreads
	// the hardened port-refresh cadence that both resyncs cold
	// handoffs and, unjittered, phase-locks into the N≳500 congestion
	// collapse.
	RefreshJitter float64
	// Window overrides the barrier spacing (default one beacon
	// interval).
	Window time.Duration
	// Device prices the per-station energy (default Nexus One).
	Device energy.Profile
	// Workers bounds the shard parallelism.
	Workers int
}

// normalized fills defaults.
func (c ChurnConfig) normalized() ChurnConfig {
	if c.APs <= 0 {
		c.APs = 4
	}
	if c.Stations <= 0 {
		c.Stations = 32
	}
	if c.UsefulTarget <= 0 {
		c.UsefulTarget = 0.10
	}
	if c.Device.Name == "" {
		c.Device = energy.NexusOne
	}
	return c
}

// ChurnResult is one churn cell's outcome.
type ChurnResult struct {
	// Stats is the ESS's aggregated roam/miss/DS accounting.
	Stats Stats
	// MeanEnergyJ and MeanPowerMW average the Section IV
	// broadcast-handling energy over the stations.
	MeanEnergyJ float64
	MeanPowerMW float64
	// Duration is the priced window (trace duration plus drain).
	Duration time.Duration
}

// RunChurn is RunChurnContext with a background context.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	return RunChurnContext(context.Background(), cfg)
}

// RunChurnContext runs one churn cell: a hardened K-AP ESS of HIDE
// stations under seed-driven mobility. Hardening is forced on — the
// TTL-refresh piggyback is the mechanism that eventually closes a
// cold handoff's resync window; without it a cold-roamed station
// would never re-register its ports and the comparison would be
// degenerate.
func RunChurnContext(ctx context.Context, cfg ChurnConfig) (ChurnResult, error) {
	cfg = cfg.normalized()
	tcfg := trace.ScenarioConfig(cfg.Scenario)
	if cfg.Seed != 0 {
		tcfg.Seed ^= cfg.Seed * 0x9e3779b97f4a7c15
	}
	if cfg.Duration > 0 && cfg.Duration < tcfg.Duration {
		tcfg.Duration = cfg.Duration
	}
	tr, err := engine.Traces.Generate(tcfg)
	if err != nil {
		return ChurnResult{}, err
	}
	openSet := trace.OpenPortsForFraction(tr, cfg.UsefulTarget)
	open := make([]uint16, 0, len(openSet))
	for p := range openSet {
		open = append(open, p)
	}
	sort.Slice(open, func(i, j int) bool { return open[i] < open[j] })

	e, err := New(Config{
		APs: cfg.APs,
		Network: core.NetworkConfig{
			DTIMPeriod:    1,
			HIDE:          true,
			Harden:        true,
			RefreshJitter: cfg.RefreshJitter,
			Seed:          cfg.Seed,
		},
		Window:    cfg.Window,
		Replicate: cfg.Replicate,
		RoamRate:  cfg.RoamRate,
		RoamSeed:  cfg.Seed ^ 0xc2b2ae3d27d4eb4f,
		DSLoss:    cfg.DSLoss,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return ChurnResult{}, err
	}
	for i := 0; i < cfg.Stations; i++ {
		if _, err := e.AddStation(station.HIDE, open, 1); err != nil {
			return ChurnResult{}, fmt.Errorf("ess: churn station %d: %w", i, err)
		}
	}
	if err := e.RunContext(ctx, tr); err != nil {
		return ChurnResult{}, err
	}

	window := e.Now()
	res := ChurnResult{Stats: e.Stats(), Duration: window}
	for _, st := range e.Stations() {
		b, err := e.StationEnergy(st, cfg.Device, window, true)
		if err != nil {
			return ChurnResult{}, err
		}
		res.MeanEnergyJ += b.TotalJ()
	}
	res.MeanEnergyJ /= float64(cfg.Stations)
	res.MeanPowerMW = res.MeanEnergyJ / window.Seconds() * 1000
	return res, nil
}
