package netmedium

import (
	"net"
	"testing"
	"time"

	"repro/internal/dot11"
)

// deafSubscriber subscribes from a raw socket and never answers pings.
func deafSubscriber(t *testing.T, srv *Server) net.Conn {
	t.Helper()
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	sub, err := Message{Type: MsgSubscribe}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(sub); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription", func() bool { return srv.Stats().Subscribers > 0 })
	return conn
}

func TestPingTapsEvictsDeafSubscriber(t *testing.T) {
	srv := startServer(t, nil)
	deafSubscriber(t, srv)

	// The subscriber survives the first maxMissedPings sweeps and is
	// reaped on the next.
	for i := 0; i < maxMissedPings; i++ {
		srv.PingTaps()
		if got := srv.Stats().Subscribers; got != 1 {
			t.Fatalf("sweep %d: %d subscribers, want 1", i, got)
		}
	}
	srv.PingTaps()
	st := srv.Stats()
	if st.Subscribers != 0 {
		t.Fatalf("deaf subscriber survived %d sweeps", maxMissedPings+1)
	}
	if st.Evictions != 1 {
		t.Errorf("Evictions = %d, want 1", st.Evictions)
	}
	if st.PingsSent != maxMissedPings {
		t.Errorf("PingsSent = %d, want %d", st.PingsSent, maxMissedPings)
	}
}

func TestPongKeepsSubscriberAlive(t *testing.T) {
	srv := startServer(t, nil)
	conn := deafSubscriber(t, srv)
	pong, err := Message{Type: MsgPong}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*maxMissedPings; i++ {
		srv.PingTaps()
		if _, err := conn.Write(pong); err != nil {
			t.Fatal(err)
		}
		// The pong must land (and reset the miss counter) before the
		// next sweep.
		base := srv.Stats().Evictions
		waitFor(t, "pong processed", func() bool {
			srv.mu.Lock()
			defer srv.mu.Unlock()
			for _, sub := range srv.subs {
				if sub.missed == 0 {
					return true
				}
			}
			return srv.stats.Evictions > base
		})
	}
	st := srv.Stats()
	if st.Subscribers != 1 || st.Evictions != 0 {
		t.Fatalf("ponging subscriber evicted: %+v", st)
	}
}

func TestTapAutoPongsAndStillReceivesFrames(t *testing.T) {
	srv := startServer(t, nil)
	tap, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	waitFor(t, "subscription", func() bool { return srv.Stats().Subscribers > 0 })

	// Interleave sweeps with frames: Next must transparently answer
	// the pings and return only the frames.
	frame := []byte{0x80, 0x00, 7}
	for i := 0; i < maxMissedPings+2; i++ {
		srv.PingTaps()
		srv.Publish(frame, dot11.Rate1Mbps, time.Duration(i)*time.Millisecond)
		ev, err := tap.Next(time.Now().Add(5 * time.Second))
		if err != nil {
			t.Fatalf("sweep %d: %v", i, err)
		}
		if len(ev.Raw) != len(frame) {
			t.Fatalf("sweep %d: got %d-byte frame", i, len(ev.Raw))
		}
		// The tap's pong travels asynchronously; wait for the server
		// to process it before the next sweep can count a miss.
		waitFor(t, "pong processed", func() bool {
			srv.mu.Lock()
			defer srv.mu.Unlock()
			for _, sub := range srv.subs {
				if sub.missed != 0 {
					return false
				}
			}
			return len(srv.subs) > 0
		})
	}
	if st := srv.Stats(); st.Subscribers != 1 || st.Evictions != 0 {
		t.Fatalf("live tap evicted: %+v", st)
	}
}

func TestUnmarshalRejectsOversizeDeclaredPayload(t *testing.T) {
	// A datagram whose length field exceeds maxFrameLen must be
	// rejected even when the bytes are actually present.
	m := Message{Type: MsgFrame, Payload: make([]byte, 16)}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, headerLen+maxFrameLen+1)
	copy(big, raw[:20])
	big[20] = byte((maxFrameLen + 1) & 0xff)
	big[21] = byte((maxFrameLen + 1) >> 8)
	if _, err := Unmarshal(big); err == nil {
		t.Fatal("oversize declared payload accepted")
	}
}
