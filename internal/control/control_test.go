package control

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// stubBackend is an in-memory Backend for handler tests.
type stubBackend struct {
	health    Health
	counters  map[string]int64
	stations  []StationRow
	porttable []PortTableRow
	faults    []*FaultRequest
	restarts  int
	injected  []InjectRequest
	reloads   int
	fail      error // when set, every fallible method fails
}

func (b *stubBackend) Health() Health { return b.health }
func (b *stubBackend) Counters() (map[string]int64, error) {
	if b.fail != nil {
		return nil, b.fail
	}
	return b.counters, nil
}
func (b *stubBackend) Stations() ([]StationRow, error) {
	if b.fail != nil {
		return nil, b.fail
	}
	return b.stations, nil
}
func (b *stubBackend) PortTable() ([]PortTableRow, error) {
	if b.fail != nil {
		return nil, b.fail
	}
	return b.porttable, nil
}
func (b *stubBackend) ApplyFault(req *FaultRequest) error {
	if b.fail != nil {
		return b.fail
	}
	b.faults = append(b.faults, req)
	return nil
}
func (b *stubBackend) RestartAP() error {
	if b.fail != nil {
		return b.fail
	}
	b.restarts++
	return nil
}
func (b *stubBackend) InjectGroup(port uint16, count int) error {
	if b.fail != nil {
		return b.fail
	}
	b.injected = append(b.injected, InjectRequest{Port: port, Count: count})
	return nil
}
func (b *stubBackend) Reload() (string, error) {
	if b.fail != nil {
		return "", b.fail
	}
	b.reloads++
	return "nothing changed", nil
}

func newTestServer(t *testing.T) (*stubBackend, *httptest.Server) {
	t.Helper()
	b := &stubBackend{
		health: Health{Status: "ok", Clients: 3, UptimeMS: 1234},
		counters: map[string]int64{
			"beacons_sent_total": 42,
			"evictions_total":    1,
		},
		stations:  []StationRow{{AID: 1, Addr: "02:00:00:00:00:10", HIDECapable: true, Members: 1}},
		porttable: []PortTableRow{{AID: 1, Ports: []uint16{5353}, RefreshedAtMS: 900}},
	}
	ts := httptest.NewServer(NewServer(b).Handler())
	t.Cleanup(ts.Close)
	return b, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, sb.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp.StatusCode, readAll(t, resp)
}

func TestHealthzEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("unparseable health: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Clients != 3 || h.UptimeMS != 1234 {
		t.Fatalf("health drifted: %+v", h)
	}
	if code, _ := post(t, ts.URL+"/healthz", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", code)
	}
}

func TestMetricsEndpointWellFormed(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	for _, want := range []string{
		"# TYPE hided_up gauge",
		"hided_up 1",
		"hided_clients 3",
		"hided_beacons_sent_total 42",
		"hided_evictions_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	// Every non-comment line is "name value".
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Fields(line)
		if len(parts) != 2 || !strings.HasPrefix(parts[0], "hided_") {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestStationsAndPortTableEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/v1/stations")
	if code != http.StatusOK {
		t.Fatalf("stations status %d", code)
	}
	var rows []StationRow
	if err := json.Unmarshal([]byte(body), &rows); err != nil || len(rows) != 1 || rows[0].AID != 1 {
		t.Fatalf("stations drifted: %v %s", err, body)
	}
	code, body = get(t, ts.URL+"/v1/porttable")
	if code != http.StatusOK {
		t.Fatalf("porttable status %d", code)
	}
	var pt []PortTableRow
	if err := json.Unmarshal([]byte(body), &pt); err != nil || len(pt) != 1 || pt[0].Ports[0] != 5353 {
		t.Fatalf("porttable drifted: %v %s", err, body)
	}
}

func TestFaultEndpoint(t *testing.T) {
	b, ts := newTestServer(t)
	code, body := post(t, ts.URL+"/v1/fault",
		`{"seed":7,"plan":{"kind":"window","from_ms":0,"until_ms":500,"inner":{"kind":"loss","p":0.8}}}`)
	if code != http.StatusOK {
		t.Fatalf("install status %d: %s", code, body)
	}
	code, _ = post(t, ts.URL+"/v1/fault", `{"clear":true}`)
	if code != http.StatusOK {
		t.Fatalf("clear status %d", code)
	}
	if len(b.faults) != 2 || b.faults[0].Seed != 7 || !b.faults[1].Clear {
		t.Fatalf("backend saw %+v", b.faults)
	}
	// Malformed bodies: rejected before the backend sees them.
	for _, bad := range []string{
		``, `{`, `[]`, `{"plan":{"kind":"nope"}}`,
		`{"plan":{"kind":"loss","p":7}}`,
		`{"unknown_field":1,"plan":{"kind":"loss","p":0.5}}`,
		`{"plan":{"kind":"loss","p":0.5}} trailing`,
	} {
		code, _ := post(t, ts.URL+"/v1/fault", bad)
		if code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, code)
		}
	}
	if len(b.faults) != 2 {
		t.Fatalf("malformed body reached the backend: %+v", b.faults)
	}
	if code, _ := get(t, ts.URL+"/v1/fault"); code != http.StatusMethodNotAllowed {
		t.Fatal("GET /v1/fault accepted")
	}
}

func TestInjectAndRestartEndpoints(t *testing.T) {
	b, ts := newTestServer(t)
	if code, body := post(t, ts.URL+"/v1/inject", `{"port":5353,"count":3}`); code != http.StatusOK {
		t.Fatalf("inject status %d: %s", code, body)
	}
	if code, _ := post(t, ts.URL+"/v1/inject", `{"port":5353}`); code != http.StatusOK {
		t.Fatal("default-count inject rejected")
	}
	if len(b.injected) != 2 || b.injected[0].Count != 3 || b.injected[1].Count != 1 {
		t.Fatalf("backend saw %+v", b.injected)
	}
	for _, bad := range []string{`{}`, `{"port":0}`, `{"port":53,"count":-1}`, `{"port":53,"count":99999}`} {
		if code, _ := post(t, ts.URL+"/v1/inject", bad); code != http.StatusBadRequest {
			t.Errorf("inject body %q accepted", bad)
		}
	}
	if code, _ := post(t, ts.URL+"/v1/restart", ""); code != http.StatusOK {
		t.Fatal("restart failed")
	}
	if b.restarts != 1 {
		t.Fatalf("restarts = %d", b.restarts)
	}
}

func TestReloadEndpointAndBackendErrors(t *testing.T) {
	b, ts := newTestServer(t)
	if code, _ := post(t, ts.URL+"/v1/reload", ""); code != http.StatusOK {
		t.Fatal("reload failed")
	}
	if b.reloads != 1 {
		t.Fatalf("reloads = %d", b.reloads)
	}
	b.fail = fmt.Errorf("engine stopped")
	for path, method := range map[string]string{
		"/v1/counters":  http.MethodGet,
		"/v1/stations":  http.MethodGet,
		"/v1/porttable": http.MethodGet,
		"/v1/restart":   http.MethodPost,
	} {
		var code int
		if method == http.MethodGet {
			code, _ = get(t, ts.URL+path)
		} else {
			code, _ = post(t, ts.URL+path, "")
		}
		if code != http.StatusServiceUnavailable {
			t.Errorf("%s with failing backend = %d, want 503", path, code)
		}
	}
	if code, _ := post(t, ts.URL+"/v1/reload", ""); code != http.StatusUnprocessableEntity {
		t.Error("reload error not mapped to 422")
	}
}
