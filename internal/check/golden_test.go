package check

import (
	"flag"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bianchi"
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/porttable"
	"repro/internal/trace"
)

// update regenerates the golden snapshots in place:
//
//	go test ./internal/check -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden")

// goldenCheck compares v against testdata/golden/<name>, or rewrites
// the snapshot under -update.
func goldenCheck(t *testing.T, name string, v any) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := WriteGolden(path, v); err != nil {
			t.Fatalf("update %s: %v", name, err)
		}
		return
	}
	if err := CompareGolden(path, v, GoldenRelTol); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// scenarioSummary is one Figure 6 golden row.
type scenarioSummary struct {
	Scenario string
	Summary  trace.Summary
}

// figure6Summaries regenerates the Figure 6 trace statistics for every
// scenario.
func figure6Summaries(t *testing.T) []scenarioSummary {
	t.Helper()
	var rows []scenarioSummary
	for _, sc := range trace.Scenarios {
		tr, err := trace.GenerateScenario(sc)
		if err != nil {
			t.Fatalf("generating %v: %v", sc, err)
		}
		rows = append(rows, scenarioSummary{Scenario: sc.String(), Summary: trace.Summarize(tr)})
	}
	return rows
}

// suiteCache memoizes the per-device core.RunSuite results so the
// figure 7, 8, and 9 subtests share one evaluation per device.
var suiteCache = struct {
	sync.Mutex
	m map[string]*core.Suite
}{m: map[string]*core.Suite{}}

func deviceSuite(t *testing.T, dev energy.Profile) *core.Suite {
	t.Helper()
	suiteCache.Lock()
	defer suiteCache.Unlock()
	if s, ok := suiteCache.m[dev.Name]; ok {
		return s
	}
	s, err := core.RunSuite(dev, core.Options{})
	if err != nil {
		t.Fatalf("RunSuite(%s): %v", dev.Name, err)
	}
	suiteCache.m[dev.Name] = s
	return s
}

// TestGolden pins every figure and table regeneration target against
// its testdata/golden snapshot.
func TestGolden(t *testing.T) {
	t.Run("table1", func(t *testing.T) {
		goldenCheck(t, "table1.json", energy.Profiles)
	})
	t.Run("table2", func(t *testing.T) {
		goldenCheck(t, "table2.json", bianchi.TableII())
	})
	t.Run("figure6", func(t *testing.T) {
		goldenCheck(t, "figure6.json", figure6Summaries(t))
	})
	t.Run("figure7_nexusone", func(t *testing.T) {
		goldenCheck(t, "figure7_nexusone.json", deviceSuite(t, energy.NexusOne).Comparisons)
	})
	t.Run("figure8_galaxys4", func(t *testing.T) {
		goldenCheck(t, "figure8_galaxys4.json", deviceSuite(t, energy.GalaxyS4).Comparisons)
	})
	t.Run("figure9", func(t *testing.T) {
		rows := append([]core.SuspendRow{}, deviceSuite(t, energy.NexusOne).Suspend...)
		rows = append(rows, deviceSuite(t, energy.GalaxyS4).Suspend...)
		goldenCheck(t, "figure9.json", rows)
	})
	t.Run("figure10", func(t *testing.T) {
		pts, err := bianchi.Figure10(bianchi.TableII())
		if err != nil {
			t.Fatal(err)
		}
		goldenCheck(t, "figure10.json", pts)
	})
	t.Run("figure11", func(t *testing.T) {
		pts, err := porttable.Figure11(porttable.CalibratedARM())
		if err != nil {
			t.Fatal(err)
		}
		goldenCheck(t, "figure11.json", pts)
	})
	t.Run("figure12", func(t *testing.T) {
		pts, err := porttable.Figure12(porttable.CalibratedARM())
		if err != nil {
			t.Fatal(err)
		}
		goldenCheck(t, "figure12.json", pts)
	})
}

// TestGoldenDeterminism regenerates a figure target twice and requires
// byte-identical canonical JSON: the golden harness is only sound if
// the regeneration pipeline is deterministic.
func TestGoldenDeterminism(t *testing.T) {
	render := func() []byte {
		s, err := core.RunSuite(energy.NexusOne, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MarshalCanonical(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := render(), render()
	if string(a) != string(b) {
		t.Fatal("two core.RunSuite renderings differ byte-for-byte")
	}
	first := figure6Summaries(t)
	second := figure6Summaries(t)
	ba, err := MarshalCanonical(first)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := MarshalCanonical(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Fatal("two Figure 6 renderings differ byte-for-byte")
	}
}
