package check

import (
	"context"
	"testing"
	"time"
)

// TestLiveChaos boots a real hided daemon with a fleet of real hidec
// clients on loopback sockets and drives the PR-4 chaos scenarios
// over the HTTP control plane: burst loss, AP power-cycle, liveness
// eviction, graceful drain. Every budget must hold.
func TestLiveChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos run takes seconds of wall clock")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunLive(ctx, LiveConfig{
		Clients: 12,
		Seed:    7,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatalf("RunLive: %v", err)
	}
	t.Log(res.Report())
	if !res.Passed() {
		for _, f := range res.Failures {
			t.Error(f)
		}
	}
	if res.ProbesSent == 0 || res.Clients != 12 {
		t.Fatalf("harness degenerate: %+v", res)
	}
	if res.Evictions == 0 {
		t.Error("no liveness eviction recorded")
	}
	if res.DisassocsReceived != res.Clients-1 {
		t.Errorf("drain reached %d/%d surviving clients", res.DisassocsReceived, res.Clients-1)
	}
}
