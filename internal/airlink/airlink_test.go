package airlink

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/ap"
	"repro/internal/dot11"
	"repro/internal/sim"
	"repro/internal/station"
)

var bssid = dot11.MACAddr{0x02, 0x1d, 0xe0, 0xaa, 0x00, 0x01}

// rig starts a real AP daemon and a real client daemon in-process:
// two engines, two realtime drivers, frames over loopback UDP.
type rig struct {
	hub      *Hub
	link     *Link
	apEnt    *ap.AP
	stEnt    *station.Station
	apInject chan sim.Event
	stInject chan sim.Event
	cancel   context.CancelFunc
	done     chan struct{}
}

func startRig(t *testing.T, mode station.Mode, ports []uint16, beaconInterval time.Duration) *rig {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	r := &rig{cancel: cancel, done: make(chan struct{})}

	// AP side.
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	apInject := make(chan sim.Event, 128)
	r.apInject = apInject
	r.hub = NewHub(pc, apInject)
	apEng := sim.New()
	r.apEnt = ap.New(apEng, r.hub, ap.Config{
		BSSID: bssid, SSID: "air", HIDE: true,
		BeaconInterval: beaconInterval, DTIMPeriod: 2,
	})
	r.apEnt.Start()

	// Client side.
	stInject := make(chan sim.Event, 128)
	r.stInject = stInject
	link, err := Dial(pc.LocalAddr().String(), stInject)
	if err != nil {
		t.Fatal(err)
	}
	r.link = link
	stEng := sim.New()
	r.stEnt = station.New(stEng, link, station.Config{
		Addr:  dot11.MACAddr{0x02, 0x1d, 0xe0, 0xaa, 0x00, 0x10},
		BSSID: bssid,
		Mode:  mode,
	})
	for _, p := range ports {
		r.stEnt.OpenPort(p)
	}
	r.stEnt.StartAssociation("air")

	go r.hub.Serve()
	go r.link.Serve()
	apDone := make(chan struct{})
	stDone := make(chan struct{})
	go func() { defer close(apDone); _ = apEng.RunRealtime(ctx, apInject) }()
	go func() { defer close(stDone); _ = stEng.RunRealtime(ctx, stInject) }()
	go func() {
		<-apDone
		<-stDone
		close(r.done)
	}()
	t.Cleanup(func() {
		cancel()
		r.hub.Close()
		r.link.Close()
		<-r.done
	})
	return r
}

// probeWait polls cond until it holds or the deadline passes. Each
// evaluation is injected into the owning engine and runs on that
// engine's goroutine, so cond may read entity state race-free; the
// buffered result channel synchronizes the answer back to the test.
func probeWait(t *testing.T, inject chan<- sim.Event, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		res := make(chan bool, 1)
		inject <- func(time.Duration) { res <- cond() }
		if <-res {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitStation and waitAP run cond on the respective engine goroutine.
func (r *rig) waitStation(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	return probeWait(t, r.stInject, timeout, cond)
}

func (r *rig) waitAP(t *testing.T, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	return probeWait(t, r.apInject, timeout, cond)
}

// associatedAID waits for the station to associate and returns its AID.
// The AID is captured on the station goroutine and handed back through
// the probe's channel, so it can safely feed AP-side conditions.
func (r *rig) associatedAID(t *testing.T) dot11.AID {
	t.Helper()
	var aid dot11.AID
	if !r.waitStation(t, 10*time.Second, func() bool {
		if !r.stEnt.Associated() {
			return false
		}
		aid = r.stEnt.AID()
		return true
	}) {
		t.Fatalf("station never associated over UDP: link=%+v hub=%+v",
			r.link.Stats(), r.hub.Stats())
	}
	return aid
}

func TestOverTheWireAssociationAndPortSync(t *testing.T) {
	r := startRig(t, station.HIDE, []uint16{5353}, 20*time.Millisecond)

	aid := r.associatedAID(t)
	if !r.waitAP(t, 10*time.Second, func() bool {
		return r.apEnt.Table().Listening(5353, aid)
	}) {
		t.Fatal("port table never synced over UDP")
	}
	if !r.waitStation(t, 10*time.Second, func() bool { return r.stEnt.Suspended() }) {
		t.Fatal("station never suspended after the over-the-wire handshake")
	}
}

func TestOverTheWireBroadcastFiltering(t *testing.T) {
	r := startRig(t, station.HIDE, []uint16{5353}, 20*time.Millisecond)
	aid := r.associatedAID(t)
	if !r.waitAP(t, 10*time.Second, func() bool {
		return r.apEnt.Table().Listening(5353, aid)
	}) {
		t.Fatal("setup: port sync failed")
	}

	// Inject a useless and a useful broadcast frame at the AP. The
	// enqueue must run on the AP engine goroutine.
	apInject := make(chan struct{})
	r.hubInject(func(time.Duration) {
		r.apEnt.EnqueueGroup(dot11.UDPDatagram{DstPort: 9999}, dot11.Rate1Mbps)
		close(apInject)
	})
	<-apInject
	if !r.waitAP(t, 5*time.Second, func() bool { return r.apEnt.Stats().GroupFramesSent >= 1 }) {
		t.Fatal("useless frame never flushed")
	}
	// The HIDE station's BTIM bit stays clear: it never receives it.
	// The sleep is a grace period for a wrongly-forwarded frame to land
	// before the negative check; the read itself is probed.
	time.Sleep(200 * time.Millisecond)
	var got int
	r.waitStation(t, time.Second, func() bool {
		got = r.stEnt.Stats().GroupReceived
		return true
	})
	if got != 0 {
		t.Fatalf("HIDE station received %d useless frames over the wire", got)
	}

	done := make(chan struct{})
	r.hubInject(func(time.Duration) {
		r.apEnt.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
		close(done)
	})
	<-done
	if !r.waitStation(t, 10*time.Second, func() bool { return r.stEnt.Stats().GroupUseful >= 1 }) {
		t.Fatal("useful frame never received over the wire")
	}
}

// hubInject runs fn on the AP engine goroutine.
func (r *rig) hubInject(fn sim.Event) {
	r.hub.inject <- fn
}

func TestLegacyClientOverTheWire(t *testing.T) {
	r := startRig(t, station.Legacy, nil, 20*time.Millisecond)
	r.associatedAID(t)
	done := make(chan struct{})
	r.hubInject(func(time.Duration) {
		r.apEnt.EnqueueGroup(dot11.UDPDatagram{DstPort: 9999}, dot11.Rate1Mbps)
		close(done)
	})
	<-done
	if !r.waitStation(t, 10*time.Second, func() bool { return r.stEnt.Stats().GroupReceived >= 1 }) {
		t.Fatal("legacy station never received broadcast")
	}
}

func TestSrcDstExtraction(t *testing.T) {
	req := &dot11.AssocRequest{Header: dot11.MACHeader{
		Addr1: bssid, Addr2: dot11.MACAddr{1, 2, 3, 4, 5, 6}, Addr3: bssid,
	}}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	src, ok := srcMAC(raw)
	if !ok || src != (dot11.MACAddr{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("srcMAC = %v, %v", src, ok)
	}
	dst, ok := dstMAC(raw)
	if !ok || dst != bssid {
		t.Fatalf("dstMAC = %v, %v", dst, ok)
	}
	// ACKs have no transmitter address to learn from.
	ack := (&dot11.ACK{RA: bssid}).Marshal()
	if _, ok := srcMAC(ack); ok {
		t.Fatal("srcMAC accepted an ACK")
	}
	if _, ok := srcMAC([]byte{1, 2}); ok {
		t.Fatal("srcMAC accepted a runt")
	}
}

func TestHubTransmitToUnknownPeer(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	hub := NewHub(pc, make(chan sim.Event, 1))
	// Unicast to a MAC the hub has never heard from: silently dropped.
	ack := (&dot11.ACK{RA: dot11.MACAddr{9, 9, 9, 9, 9, 9}}).Marshal()
	hub.Transmit(bssid, ack, dot11.Rate1Mbps)
	if hub.Stats().FramesOut != 0 {
		t.Fatal("frame sent to unknown peer")
	}
	// Broadcast with no peers: no-op.
	beacon := &dot11.Beacon{Header: dot11.MACHeader{Addr1: dot11.Broadcast, Addr2: bssid, Addr3: bssid}}
	raw, err := beacon.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	hub.Transmit(bssid, raw, dot11.Rate1Mbps)
	if hub.Stats().FramesOut != 0 {
		t.Fatal("broadcast sent with no peers")
	}
}

func TestHubIgnoresGarbageDatagrams(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(pc, make(chan sim.Event, 1))
	go hub.Serve()
	defer hub.Close()

	conn, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for hub.Stats().BadPackets == 0 {
		if time.Now().After(deadline) {
			t.Fatal("garbage never counted")
		}
		time.Sleep(time.Millisecond)
	}
	if hub.Stats().Peers != 0 {
		t.Fatal("garbage datagram learned as peer")
	}
}
