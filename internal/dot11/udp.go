package dot11

import "fmt"

// This file synthesizes and parses the LLC/SNAP + IPv4 + UDP payload
// of a UDP-padded broadcast frame. The AP-side Algorithm 1 extracts the
// destination UDP port from the frame body, so the simulated frames
// carry a real, parseable encapsulation rather than an out-of-band tag.

// Encapsulation header lengths in bytes.
const (
	LLCSNAPLen = 8
	IPv4HdrLen = 20
	UDPHdrLen  = 8
	// UDPEncapsLen is the total encapsulation overhead between the MAC
	// header and the UDP payload.
	UDPEncapsLen = LLCSNAPLen + IPv4HdrLen + UDPHdrLen
)

// etherTypeIPv4 is the SNAP ethertype for IPv4.
const etherTypeIPv4 = 0x0800

// UDPDatagram describes a UDP datagram to encapsulate.
type UDPDatagram struct {
	SrcIP, DstIP     [4]byte
	SrcPort, DstPort uint16
	Payload          []byte
}

// EncapsulateUDP builds the LLC/SNAP + IPv4 + UDP body for a data frame.
func EncapsulateUDP(d UDPDatagram) []byte {
	total := UDPEncapsLen + len(d.Payload)
	b := make([]byte, total)

	// LLC/SNAP: DSAP=AA SSAP=AA CTRL=03, OUI=000000, EtherType.
	b[0], b[1], b[2] = 0xaa, 0xaa, 0x03
	b[6] = byte(etherTypeIPv4 >> 8)
	b[7] = byte(etherTypeIPv4 & 0xff)

	ip := b[LLCSNAPLen:]
	ip[0] = 0x45 // version 4, IHL 5
	ipLen := IPv4HdrLen + UDPHdrLen + len(d.Payload)
	ip[2] = byte(ipLen >> 8)
	ip[3] = byte(ipLen)
	ip[8] = 64 // TTL
	ip[9] = 17 // protocol UDP
	copy(ip[12:16], d.SrcIP[:])
	copy(ip[16:20], d.DstIP[:])
	cs := ipv4Checksum(ip[:IPv4HdrLen])
	ip[10] = byte(cs >> 8)
	ip[11] = byte(cs)

	udp := ip[IPv4HdrLen:]
	udp[0] = byte(d.SrcPort >> 8)
	udp[1] = byte(d.SrcPort)
	udp[2] = byte(d.DstPort >> 8)
	udp[3] = byte(d.DstPort)
	ul := UDPHdrLen + len(d.Payload)
	udp[4] = byte(ul >> 8)
	udp[5] = byte(ul)
	copy(udp[UDPHdrLen:], d.Payload)
	return b
}

// ParseUDP extracts the UDP datagram from a data-frame body produced by
// EncapsulateUDP (or any LLC/SNAP IPv4 UDP body). It returns an error
// if the body is not a well-formed UDP-over-IPv4 encapsulation.
func ParseUDP(body []byte) (UDPDatagram, error) {
	var d UDPDatagram
	if len(body) < UDPEncapsLen {
		return d, fmt.Errorf("%w: %d bytes for UDP encapsulation", ErrShortFrame, len(body))
	}
	if body[0] != 0xaa || body[1] != 0xaa || body[2] != 0x03 {
		return d, fmt.Errorf("dot11: not an LLC/SNAP body")
	}
	if et := uint16(body[6])<<8 | uint16(body[7]); et != etherTypeIPv4 {
		return d, fmt.Errorf("dot11: ethertype %#04x is not IPv4", et)
	}
	ip := body[LLCSNAPLen:]
	if ip[0]>>4 != 4 {
		return d, fmt.Errorf("dot11: IP version %d is not 4", ip[0]>>4)
	}
	ihl := int(ip[0]&0x0f) * 4
	if ihl < IPv4HdrLen || len(ip) < ihl+UDPHdrLen {
		return d, fmt.Errorf("%w: IHL %d", ErrShortFrame, ihl)
	}
	if ip[9] != 17 {
		return d, fmt.Errorf("dot11: IP protocol %d is not UDP", ip[9])
	}
	copy(d.SrcIP[:], ip[12:16])
	copy(d.DstIP[:], ip[16:20])
	udp := ip[ihl:]
	d.SrcPort = uint16(udp[0])<<8 | uint16(udp[1])
	d.DstPort = uint16(udp[2])<<8 | uint16(udp[3])
	ul := int(udp[4])<<8 | int(udp[5])
	if ul < UDPHdrLen || len(udp) < ul {
		return d, fmt.Errorf("%w: UDP length %d with %d bytes", ErrShortFrame, ul, len(udp))
	}
	d.Payload = udp[UDPHdrLen:ul]
	return d, nil
}

// DstUDPPort extracts just the destination UDP port from a data-frame
// body. This is the AP's hot path in Algorithm 1 (line 3).
func DstUDPPort(body []byte) (uint16, error) {
	d, err := ParseUDP(body)
	if err != nil {
		return 0, err
	}
	return d.DstPort, nil
}

// ipv4Checksum computes the IPv4 header checksum with the checksum
// field treated as zero.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field
		}
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
