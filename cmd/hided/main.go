// Command hided is the HIDE access-point daemon: a real process
// serving the HIDE protocol over UDP "virtual air", supervised for
// production-style operation. Alongside the air socket it serves an
// HTTP control plane (health, metrics, port table, stations, live
// fault injection), reloads its config live on SIGHUP or POST
// /v1/reload, evicts clients that stop answering liveness pings, and
// drains gracefully on SIGTERM — new associations are refused, every
// client is disassociated with a real frame, and the port table is
// flushed, all bounded by a drain deadline.
//
// Start an AP that replays cafe broadcast chatter:
//
//	hided -listen 127.0.0.1:5600 -scenario Starbucks
//
// or run it from a config file (enables live reload):
//
//	hided -config hided.json
//
// then attach clients:
//
//	hidec -connect 127.0.0.1:5600 -ports 5353 -mode hide
//
// and inspect it over the control plane:
//
//	curl http://127.0.0.1:5680/healthz
//	curl http://127.0.0.1:5680/metrics
//	curl -d '{"plan":{"kind":"loss","p":0.3}}' http://127.0.0.1:5680/v1/fault
package main

import (
	"flag"
	"time"

	"repro/internal/cli"
	"repro/internal/daemon"
)

func main() {
	config := flag.String("config", "", "JSON config file (enables live reload; flags below are ignored when set)")
	listen := flag.String("listen", "127.0.0.1:5600", "UDP address to serve the virtual air on")
	control := flag.String("control", "127.0.0.1:5680", "TCP address of the HTTP control plane")
	ssid := flag.String("ssid", "hide-net", "network name")
	dtim := flag.Int("dtim", 3, "DTIM period in beacons")
	scenario := flag.String("scenario", "Starbucks", "broadcast traffic scenario to replay (none to disable)")
	legacy := flag.Bool("legacy", false, "run as a stock AP without HIDE extensions")
	pingEvery := flag.Duration("ping-every", time.Second, "client liveness sweep cadence")
	maxMissed := flag.Int("max-missed-pings", 3, "unanswered sweeps before a client is evicted")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain deadline on SIGTERM")
	statsEvery := flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	flag.Parse()

	var d *daemon.Daemon
	var err error
	if *config != "" {
		d, err = daemon.Open(*config)
	} else {
		d, err = daemon.New(daemon.Config{
			Listen:         *listen,
			Control:        *control,
			SSID:           *ssid,
			DTIMPeriod:     *dtim,
			Scenario:       *scenario,
			Legacy:         *legacy,
			PingInterval:   daemon.Duration(*pingEvery),
			MaxMissedPings: *maxMissed,
			DrainDeadline:  daemon.Duration(*drain),
			StatsEvery:     daemon.Duration(*statsEvery),
		})
	}
	if err != nil {
		cli.Exit("hided", err)
	}

	ctx, stop := cli.SignalContext()
	defer stop()
	if err := d.Run(ctx); err != nil {
		cli.Exit("hided", err)
	}
}
