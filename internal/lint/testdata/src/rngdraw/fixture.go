// Package fixture exercises the rngdraw analyzer. The test harness
// analyzes it as repro/internal/fault, where the draw-count discipline
// applies: branches that rejoin must consume the same number of
// seeded-RNG draws, draws must not hide behind short-circuit
// evaluation, and early-returning branches are exempt (the combinator
// pattern, documented to consume nothing).
package fixture

import "repro/internal/sim"

// Unbalanced draws once on one side and not the other — the stream
// position after the if depends on the branch taken.
func Unbalanced(rng *sim.RNG, bad bool) float64 {
	v := 0.0
	if bad { // want `branches of this if draw 1 vs 0 values from the seeded RNG`
		v = rng.Float64()
	}
	return v
}

// Balanced draws exactly once on both sides.
func Balanced(rng *sim.RNG, bad bool) float64 {
	if bad {
		return rng.Float64() * 0.5
	}
	_ = rng.Float64() // burn the draw to keep the stream aligned
	return 0.25
}

// BurnedElse shows the explicit burn idiom on a rejoining conditional.
func BurnedElse(rng *sim.RNG, hot bool) float64 {
	v := 0.0
	if hot {
		v = rng.Float64()
	} else {
		_ = rng.Float64() // burned: both branches consume one draw
	}
	return v
}

// EarlyReturn is the combinator pattern: the guard branch terminates,
// so it does not need to match the fallthrough side.
func EarlyReturn(rng *sim.RNG, skip bool) float64 {
	if skip {
		return 0
	}
	return rng.Float64()
}

// ShortCircuit hides a draw behind &&: it is consumed only when the
// left side passes.
func ShortCircuit(rng *sim.RNG, p float64) bool {
	return p > 0 && rng.Float64() < p // want `short-circuited side of && / \|\|`
}

// UnbalancedSwitch rejoins three ways with different draw counts.
func UnbalancedSwitch(rng *sim.RNG, mode int) float64 {
	v := 0.0
	switch mode { // want `cases of this switch draw 1 vs 2 values from the seeded RNG`
	case 0:
		v = rng.Float64()
	case 1:
		v = rng.Float64() + rng.Float64()
	default:
		v = rng.Float64()
	}
	return v
}

// PerItem draws once per element: the trip count governs the total,
// which structural counting treats as opaque, not a finding.
func PerItem(rng *sim.RNG, xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x * rng.Float64()
	}
	return total
}

// Escapes passes the generator to a callee on both sides; opaque, so
// no finding even though the counts are unknowable.
func Escapes(rng *sim.RNG, deep bool) float64 {
	if deep {
		return helper(rng) + helper(rng)
	}
	return helper(rng)
}

func helper(rng *sim.RNG) float64 { return rng.Float64() }
