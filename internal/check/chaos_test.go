package check

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestChaosGrid runs the full default scenario set over a shortened
// light trace: every invariant and chaos assertion must hold in every
// cell, and same-seed runs must be bit-identical.
func TestChaosGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos grid in -short mode")
	}
	cfg := ChaosConfig{
		Traces:   []trace.Scenario{trace.Starbucks},
		Duration: 45 * time.Second,
		Seeds:    []uint64{1},
	}
	results, err := RunChaosGrid(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunChaosGrid: %v", err)
	}
	if want := len(DefaultChaosScenarios()); len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	if err := ChaosErr(results); err != nil {
		t.Errorf("%v\n%s", err, ChaosReport(results))
	}
}

// TestChaosGridDenseTrace runs the entity-fault scenarios against the
// denser CS_Dept trace, where crash/restart windows actually contain
// traffic.
func TestChaosGridDenseTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos grid in -short mode")
	}
	var scens []ChaosScenario
	for _, sc := range DefaultChaosScenarios() {
		if sc.CrashVictim || sc.RestartAP {
			scens = append(scens, sc)
		}
	}
	cfg := ChaosConfig{
		Scenarios: scens,
		Traces:    []trace.Scenario{trace.CSDept},
		Duration:  45 * time.Second,
		Seeds:     []uint64{1},
	}
	results, err := RunChaosGrid(context.Background(), cfg)
	if err != nil {
		t.Fatalf("RunChaosGrid: %v", err)
	}
	if err := ChaosErr(results); err != nil {
		t.Errorf("%v\n%s", err, ChaosReport(results))
	}
}

// TestChaosReportShape sanity-checks the report renderer.
func TestChaosReportShape(t *testing.T) {
	results := []ChaosResult{
		{Scenario: "bursty-loss", Trace: trace.Starbucks, Seed: 1, WantedSent: 10, WantedGot: 9, Budget: -1},
		{Scenario: "ack-drops", Trace: trace.CSDept, Seed: 2, Failures: []string{"boom"}},
	}
	rep := ChaosReport(results)
	for _, want := range []string{"bursty-loss", "ack-drops", "FAIL", "boom", "status"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
