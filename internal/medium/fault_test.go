package medium

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/sim"
)

// TestSetLossEquivalentToLossPlan locks in byte-identity across the
// fault-subsystem refactor: SetLoss(p) and SetFaultPlan(fault.Loss{p})
// must drop exactly the same deliveries from the same seed, because
// both draw exactly one value per delivery.
func TestSetLossEquivalentToLossPlan(t *testing.T) {
	run := func(install func(*Medium)) []recorded {
		eng := sim.New()
		m := New(eng, dot11.DefaultPHY(), 99)
		install(m)
		r := &recorder{}
		m.Attach(s1Addr, r)
		ack := &dot11.ACK{RA: s1Addr}
		for i := 0; i < 500; i++ {
			m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
		}
		eng.Run()
		return r.frames
	}
	a := run(func(m *Medium) {
		if err := m.SetLoss(0.4); err != nil {
			t.Fatal(err)
		}
	})
	b := run(func(m *Medium) { m.SetFaultPlan(fault.Loss{P: 0.4}) })
	if len(a) != len(b) {
		t.Fatalf("SetLoss delivered %d frames, Loss plan %d", len(a), len(b))
	}
	for i := range a {
		if a[i].at != b[i].at || !bytes.Equal(a[i].raw, b[i].raw) {
			t.Fatalf("delivery %d differs between SetLoss and Loss plan", i)
		}
	}
}

// TestKindTargetedDrops drops every beacon while ACKs pass untouched.
func TestKindTargetedDrops(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	m.SetFaultPlan(fault.Only(fault.Loss{P: 1}, dot11.KindBeacon))
	r := &recorder{}
	m.Attach(s1Addr, r)

	m.Transmit(apAddr, beaconRaw(t), dot11.Rate1Mbps)
	ack := &dot11.ACK{RA: s1Addr}
	m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
	eng.Run()

	if len(r.frames) != 1 {
		t.Fatalf("delivered %d frames, want 1 (the ACK)", len(r.frames))
	}
	if dot11.Classify(r.frames[0].raw) != dot11.KindACK {
		t.Error("surviving frame is not the ACK")
	}
	if m.Stats.Losses != 1 {
		t.Errorf("Losses = %d, want 1", m.Stats.Losses)
	}
}

// TestCorruptionIsolatedPerReceiver corrupts one receiver's copy of a
// broadcast; the co-receiver's copy must stay pristine.
func TestCorruptionIsolatedPerReceiver(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 5)
	m.SetFaultPlan(fault.To(s1Addr, fault.Corrupt{P: 1}))
	r1, r2 := &recorder{}, &recorder{}
	m.Attach(s1Addr, r1)
	m.Attach(s2Addr, r2)

	orig := beaconRaw(t)
	m.Transmit(apAddr, orig, dot11.Rate1Mbps)
	eng.Run()

	if len(r1.frames) != 1 || len(r2.frames) != 1 {
		t.Fatalf("deliveries: s1=%d s2=%d, want 1 each", len(r1.frames), len(r2.frames))
	}
	if bytes.Equal(r1.frames[0].raw, orig) {
		t.Error("s1's copy not corrupted")
	}
	if len(r1.frames[0].raw) != len(orig) {
		t.Error("corruption changed the frame length")
	}
	if !bytes.Equal(r2.frames[0].raw, orig) {
		t.Error("corruption leaked into s2's copy")
	}
	diff := 0
	for i := range orig {
		if r1.frames[0].raw[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption touched %d bytes, want 1", diff)
	}
	if m.Stats.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", m.Stats.Corruptions)
	}
}

// TestDuplicationDeliversTwice duplicates every delivery.
func TestDuplicationDeliversTwice(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	m.SetFaultPlan(fault.Duplicate{P: 1})
	r := &recorder{}
	m.Attach(s1Addr, r)
	ack := &dot11.ACK{RA: s1Addr}
	const n = 10
	for i := 0; i < n; i++ {
		m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
	}
	eng.Run()
	if len(r.frames) != 2*n {
		t.Fatalf("delivered %d frames, want %d", len(r.frames), 2*n)
	}
	if m.Stats.Duplicates != n {
		t.Errorf("Duplicates = %d, want %d", m.Stats.Duplicates, n)
	}
	if m.Stats.Deliveries != 2*n {
		t.Errorf("Deliveries = %d, want %d", m.Stats.Deliveries, 2*n)
	}
}

// TestWindowedFaultsExpire drops everything inside the window and
// nothing outside it.
func TestWindowedFaultsExpire(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 1)
	m.SetFaultPlan(fault.Window{From: 10 * time.Millisecond, To: 20 * time.Millisecond, Inner: fault.Loss{P: 1}})
	r := &recorder{}
	m.Attach(s1Addr, r)
	ack := &dot11.ACK{RA: s1Addr}
	for _, at := range []time.Duration{5 * time.Millisecond, 15 * time.Millisecond, 25 * time.Millisecond} {
		at := at
		eng.MustScheduleAt(at, func(time.Duration) {
			m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
		})
	}
	eng.Run()
	if len(r.frames) != 2 {
		t.Fatalf("delivered %d frames, want 2 (outside the window)", len(r.frames))
	}
	for _, f := range r.frames {
		if f.at >= 10*time.Millisecond && f.at < 20*time.Millisecond {
			t.Errorf("frame delivered at %v inside the fault window", f.at)
		}
	}
}

// TestNilPlanDrawsNoRandomness asserts the byte-identity guarantee: a
// fault-free medium must not consume RNG draws, so installing and
// clearing faults cannot perturb anything downstream.
func TestNilPlanDrawsNoRandomness(t *testing.T) {
	eng := sim.New()
	m := New(eng, dot11.DefaultPHY(), 123)
	r := &recorder{}
	m.Attach(s1Addr, r)
	ack := &dot11.ACK{RA: s1Addr}
	for i := 0; i < 50; i++ {
		m.Transmit(apAddr, ack.Marshal(), dot11.Rate1Mbps)
	}
	eng.Run()
	// The medium's RNG must still be at its seed-initial position.
	want := sim.NewRNG(123).Uint64()
	if got := m.rng.Uint64(); got != want {
		t.Errorf("fault-free run consumed medium randomness: next draw %d, want %d", got, want)
	}
}
