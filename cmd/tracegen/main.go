// Command tracegen generates the five calibrated synthetic broadcast
// traces and characterizes them: per-second volume CDFs (Figure 6),
// means, durations, and destination-port composition. With -out it
// also writes each trace as CSV for use with external tools or as a
// template for substituting real captures.
//
// Usage:
//
//	tracegen [-scenario all|Classroom|CS_Dept|WML|Starbucks|WRL] [-out dir] [-cdf]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro"
	"repro/internal/cli"
)

func main() {
	scenario := flag.String("scenario", "all", "scenario to generate, or all")
	outDir := flag.String("out", "", "directory to write CSV traces into")
	cdf := flag.Bool("cdf", false, "print full CDF series (Figure 6 curves)")
	flag.Parse()

	var scenarios []hide.Scenario
	if *scenario == "all" {
		scenarios = hide.Scenarios
	} else {
		found := false
		for _, s := range hide.Scenarios {
			if strings.EqualFold(s.String(), *scenario) {
				scenarios = []hide.Scenario{s}
				found = true
				break
			}
		}
		if !found {
			cli.Usagef("tracegen", "unknown scenario %q", *scenario)
		}
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	fmt.Println("== Figure 6: broadcast traffic volumes in traces ==")
	fmt.Printf("%-10s %9s %8s %8s %8s %8s %8s\n",
		"trace", "duration", "frames", "mean", "p50", "p90", "p99")
	for _, s := range scenarios {
		cli.Abort(ctx, "tracegen")
		tr, err := hide.GenerateTrace(s)
		if err != nil {
			cli.Exit("tracegen", err)
		}
		counts := tr.FramesPerSecond()
		c := hide.NewCDFInts(counts)
		fmt.Printf("%-10s %9s %8d %8.2f %8.0f %8.0f %8.0f\n",
			tr.Name, tr.Duration, len(tr.Frames), c.Mean(),
			c.Quantile(0.5), c.Quantile(0.9), c.Quantile(0.99))

		if *cdf {
			xs, ps := c.Points()
			fmt.Printf("  cdf(%s): ", tr.Name)
			for i := range xs {
				fmt.Printf("(%.0f, %.3f) ", xs[i], ps[i])
			}
			fmt.Println()
		}

		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				cli.Exit("tracegen", err)
			}
			path := filepath.Join(*outDir, strings.ToLower(tr.Name)+".csv")
			f, err := os.Create(path)
			if err != nil {
				cli.Exit("tracegen", err)
			}
			if err := hide.WriteTraceCSV(f, tr); err != nil {
				//lint:ignore errdrop close error is moot once the write has failed
				f.Close()
				cli.Exit("tracegen", fmt.Errorf("writing %s: %v", path, err))
			}
			if err := f.Close(); err != nil {
				cli.Exit("tracegen", fmt.Errorf("closing %s: %v", path, err))
			}
			fmt.Printf("  wrote %s\n", path)
		}
	}

	fmt.Println("\n== destination-port composition (frames per port) ==")
	for _, s := range scenarios {
		cli.Abort(ctx, "tracegen")
		tr, err := hide.GenerateTrace(s)
		if err != nil {
			cli.Exit("tracegen", err)
		}
		hist := tr.PortHistogram()
		type pc struct {
			port  uint16
			count int
		}
		ports := make([]pc, 0, len(hist))
		for p, n := range hist {
			ports = append(ports, pc{p, n})
		}
		sort.Slice(ports, func(i, j int) bool { return ports[i].count > ports[j].count })
		fmt.Printf("%-10s", tr.Name)
		for _, p := range ports {
			fmt.Printf(" %d:%d", p.port, p.count)
		}
		fmt.Println()
	}
}
