// Package medium emulates a single 802.11 broadcast channel: frames
// transmitted by attached nodes are serialized (a simple FIFO
// approximation of CSMA/CA), take their real airtime at the chosen PHY
// rate, and are delivered to the addressed node — or to every other
// node for group-addressed frames. An optional fault.Plan perturbs
// deliveries (loss, bursty loss, corruption, duplication) to exercise
// retransmission and fail-safe paths.
//
// The medium runs on a sim.Engine virtual clock, so whole days of
// channel time simulate in milliseconds and runs are deterministic.
package medium

import (
	"fmt"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Node is anything attached to the medium. Receive is called once per
// delivered frame with the raw bytes, the PHY rate it was sent at, and
// the delivery (end-of-airtime) virtual time.
type Node interface {
	Receive(raw []byte, rate dot11.Rate, at time.Duration)
}

// Channel is the transport surface the protocol entities (AP,
// stations) program against: the in-process emulated Medium implements
// it, and so does the UDP-backed air link used by the hided/hidec
// daemons — the same AP and station code runs over both.
type Channel interface {
	// Attach registers a node under its MAC address.
	Attach(addr dot11.MACAddr, n Node)
	// Transmit sends a frame; it returns the (estimated) delivery time.
	Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration
}

var _ Channel = (*Medium)(nil)

// Medium is the emulated channel. Create with New.
type Medium struct {
	eng       *sim.Engine
	phy       dot11.PHY
	nodes     map[dot11.MACAddr]Node
	fanout    []fanoutEntry // precomputed broadcast delivery order (attach order)
	busyUntil time.Duration
	plan      fault.Plan
	rng       *sim.RNG

	// Stats counts medium activity.
	Stats Stats

	tap func(raw []byte, rate dot11.Rate, at time.Duration)

	deliverFn sim.ArgEvent // bound once; avoids a closure per Transmit
	txFree    []*pendingTx // recycled in-flight transmission records
}

// fanoutEntry pairs an attached address with its node so group fan-out
// walks a flat slice instead of resolving each address through the map.
type fanoutEntry struct {
	addr dot11.MACAddr
	node Node
}

// pendingTx carries one in-flight transmission from Transmit to its
// delivery event. Records are pooled: the frame buffer they reference is
// the single injection copy, shared (immutably) by every receiver.
type pendingTx struct {
	src   dot11.MACAddr
	frame []byte
	rate  dot11.Rate
}

// Stats tallies channel activity.
type Stats struct {
	Transmissions int
	Deliveries    int
	Losses        int
	Corruptions   int
	Duplicates    int
	AirtimeBusy   time.Duration
}

// New creates a medium on the engine with the given PHY parameters.
func New(eng *sim.Engine, phy dot11.PHY, seed uint64) *Medium {
	m := &Medium{
		eng:   eng,
		phy:   phy,
		nodes: make(map[dot11.MACAddr]Node),
		rng:   sim.NewRNG(seed),
	}
	m.deliverFn = m.deliverEvent
	return m
}

// SetLoss sets the independent per-delivery loss probability — the
// historical knob, retained as sugar for SetFaultPlan(fault.Loss{P: p}).
// A zero probability restores the pristine channel.
func (m *Medium) SetLoss(p float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("medium: loss probability %v outside [0, 1)", p)
	}
	if p == 0 {
		m.plan = nil
	} else {
		m.plan = fault.Loss{P: p}
	}
	return nil
}

// SetFaultPlan installs the fault plan consulted once per (frame,
// receiver) delivery; nil restores the pristine channel. A nil plan
// consumes no randomness, so fault-free runs stay byte-identical to
// builds that predate the fault subsystem.
func (m *Medium) SetFaultPlan(p fault.Plan) { m.plan = p }

// SetTap installs a monitor callback invoked for every transmission at
// its start-of-airtime instant, regardless of addressing — the
// equivalent of a monitor-mode capture interface. A nil tap disables
// monitoring.
func (m *Medium) SetTap(tap func(raw []byte, rate dot11.Rate, at time.Duration)) {
	m.tap = tap
}

// Attach registers a node under its MAC address. Attaching the same
// address twice replaces the previous node and keeps its original
// position in the broadcast delivery order.
func (m *Medium) Attach(addr dot11.MACAddr, n Node) {
	if _, ok := m.nodes[addr]; !ok {
		m.fanout = append(m.fanout, fanoutEntry{addr: addr, node: n})
	} else {
		for i := range m.fanout {
			if m.fanout[i].addr == addr {
				m.fanout[i].node = n
				break
			}
		}
	}
	m.nodes[addr] = n
}

// PHY returns the channel's PHY parameters.
func (m *Medium) PHY() dot11.PHY { return m.phy }

// Airtime returns the on-air duration of a frame of n bytes at rate,
// including the FCS the marshalled bytes omit.
func (m *Medium) Airtime(n int, rate dot11.Rate) time.Duration {
	return m.phy.FrameAirtime(n+dot11.FCSLen, rate)
}

// Transmit queues a frame for transmission from src. If the channel is
// busy the transmission starts after the in-flight frame plus a DIFS
// (FIFO channel access — contention and collisions are abstracted away;
// the Bianchi model covers their effect on capacity analytically).
// Delivery callbacks fire at end of airtime. Transmit reports the
// delivery time.
func (m *Medium) Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration {
	start := m.eng.Now()
	if m.busyUntil > start {
		start = m.busyUntil + m.phy.DIFS
	}
	air := m.Airtime(len(raw), rate)
	end := start + air + m.phy.PropagationDelay
	m.busyUntil = start + air
	m.Stats.Transmissions++
	m.Stats.AirtimeBusy += air

	// The single copy on the frame's whole journey: the caller may reuse
	// its buffer, but from here every receiver shares this one buffer
	// immutably (the fault plan's Corrupt verdict is the only cloning
	// path; see deliverOne).
	frame := append([]byte(nil), raw...)
	if m.tap != nil {
		m.tap(frame, rate, start)
	}
	tx := m.allocTx()
	tx.src, tx.frame, tx.rate = src, frame, rate
	m.eng.MustScheduleArgAt(end, m.deliverFn, tx)
	return end
}

// allocTx takes a pendingTx from the free list or allocates one.
func (m *Medium) allocTx() *pendingTx {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return tx
	}
	return new(pendingTx)
}

// deliverEvent is the bound ArgEvent for scheduled deliveries.
func (m *Medium) deliverEvent(now time.Duration, arg any) {
	tx := arg.(*pendingTx)
	m.deliver(tx.src, tx.frame, tx.rate, now)
	tx.frame = nil
	m.txFree = append(m.txFree, tx)
}

// deliver routes the frame to its destination(s).
func (m *Medium) deliver(src dot11.MACAddr, raw []byte, rate dot11.Rate, now time.Duration) {
	dst, ok := destination(raw)
	if !ok {
		return
	}
	if dst.IsMulticast() {
		for i := range m.fanout {
			e := &m.fanout[i]
			if e.addr == src {
				continue
			}
			m.deliverOne(e.node, e.addr, src, dst, raw, rate, now)
		}
		return
	}
	if n, ok := m.nodes[dst]; ok {
		m.deliverOne(n, dst, src, dst, raw, rate, now)
	}
}

// deliverOne hands the frame to one node, applying the fault plan's
// verdict for this (frame, receiver) pair.
func (m *Medium) deliverOne(n Node, rcv, src, dst dot11.MACAddr, raw []byte, rate dot11.Rate, now time.Duration) {
	if m.plan != nil {
		v := m.plan.Deliver(fault.Delivery{
			Raw: raw, Kind: dot11.Classify(raw),
			Src: src, Dst: dst, Rcv: rcv, At: now,
		}, m.rng)
		if v.Drop {
			m.Stats.Losses++
			return
		}
		if v.Corrupt {
			// Corruption garbles this receiver's copy only; other
			// receivers of a group frame keep the original bytes, as
			// with independent radios on a shared channel.
			c := append([]byte(nil), raw...)
			c[m.rng.Intn(len(c))] ^= 0xff
			raw = c
			m.Stats.Corruptions++
		}
		if v.Duplicate {
			m.Stats.Duplicates++
			m.Stats.Deliveries++
			n.Receive(raw, rate, now)
		}
	}
	m.Stats.Deliveries++
	n.Receive(raw, rate, now)
}

// destination extracts the receiver address from a raw frame.
func destination(raw []byte) (dot11.MACAddr, bool) {
	var dst dot11.MACAddr
	if len(raw) < 10 {
		return dst, false
	}
	// All frame types used here carry the receiver address at offset 4
	// (Addr1 for management/data, RA for ACK, BSSID for PS-Poll).
	copy(dst[:], raw[4:10])
	return dst, true
}
