package hide

// This file is the benchmark harness for the paper's evaluation: one
// testing.B benchmark per table and figure, plus ablation benches for
// the design choices DESIGN.md calls out. Each figure bench reports
// the headline quantity as a custom metric so `go test -bench=.`
// regenerates the paper's numbers alongside timing data.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dcfsim"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/trace"
)

// BenchmarkTable1Profiles exercises the Table I device profiles: the
// validation path plus a model evaluation per profile.
func BenchmarkTable1Profiles(b *testing.B) {
	frames := []Arrival{{At: time.Second, Length: 200, Rate: Rate1Mbps, Wakelock: time.Second}}
	for i := 0; i < b.N; i++ {
		for _, dev := range Profiles {
			if _, err := ComputeEnergy(frames, dev, 10*time.Second, Overhead{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(NexusOne.PrW*1000, "nexus-Pr-mW")
	b.ReportMetric(GalaxyS4.PrW*1000, "s4-Pr-mW")
}

// BenchmarkTable2Config exercises the Table II DCF configuration via
// a model solve at 10 stations.
func BenchmarkTable2Config(b *testing.B) {
	cfg := TableII()
	for i := 0; i < b.N; i++ {
		if _, err := NetworkCapacity(cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
	r, err := NetworkCapacity(cfg, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.CapacityBps/1e6, "S1-Mbps")
}

// BenchmarkFigure6TraceCDF regenerates the five scenario traces and
// their per-second volume CDFs.
func BenchmarkFigure6TraceCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range Scenarios {
			tr, err := GenerateTrace(s)
			if err != nil {
				b.Fatal(err)
			}
			c := NewCDFInts(tr.FramesPerSecond())
			_ = c.Mean()
		}
	}
	tr, err := GenerateTrace(WML)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tr.MeanFPS(), "WML-mean-fps")
}

// benchSuite runs the full Figure 7/8/9 evaluation for one device and
// reports the headline savings range.
func benchSuite(b *testing.B, dev Profile) {
	b.Helper()
	var s *Suite
	for i := 0; i < b.N; i++ {
		var err error
		s, err = RunSuite(dev)
		if err != nil {
			b.Fatal(err)
		}
	}
	lo, hi := s.SavingsRange(0)
	b.ReportMetric(lo*100, "save10-min-%")
	b.ReportMetric(hi*100, "save10-max-%")
	lo2, hi2 := s.SavingsRange(len(UsefulFractions) - 1)
	b.ReportMetric(lo2*100, "save2-min-%")
	b.ReportMetric(hi2*100, "save2-max-%")
}

// BenchmarkFigure7NexusOne regenerates Figure 7 (paper: HIDE:10% saves
// 34-75% on the Nexus One).
func BenchmarkFigure7NexusOne(b *testing.B) { benchSuite(b, NexusOne) }

// BenchmarkFigure8GalaxyS4 regenerates Figure 8 (paper: 18-78%).
func BenchmarkFigure8GalaxyS4(b *testing.B) { benchSuite(b, GalaxyS4) }

// BenchmarkFigure9SuspendFraction regenerates Figure 9's suspend
// fractions for the Nexus One.
func BenchmarkFigure9SuspendFraction(b *testing.B) {
	tr, err := GenerateTrace(Classroom)
	if err != nil {
		b.Fatal(err)
	}
	var row SuspendRow
	for i := 0; i < b.N; i++ {
		row, err = SuspendFractions(tr, NexusOne)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.ReceiveAll*100, "receive-all-%")
	b.ReportMetric(row.HIDE2*100, "HIDE2-%")
}

// BenchmarkFigure10Capacity regenerates Figure 10 (paper: 0.13% at
// N=50, p=75%).
func BenchmarkFigure10Capacity(b *testing.B) {
	cfg := TableII()
	for i := 0; i < b.N; i++ {
		if _, err := Figure10(cfg); err != nil {
			b.Fatal(err)
		}
	}
	params := hideCapacityWorstCase()
	c, err := CapacityOverhead(cfg, params, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(c*100, "worst-case-%")
}

// hideCapacityWorstCase is the Figure 10 worst corner.
func hideCapacityWorstCase() CapacityParams {
	return CapacityParams{HIDEFraction: 0.75, PortMsgInterval: 10 * time.Second, PortsPerMsg: 50}
}

// BenchmarkFigure11DelayInterval regenerates Figure 11 (paper: 2.3% at
// 1/f = 10 s).
func BenchmarkFigure11DelayInterval(b *testing.B) {
	t := CalibratedARMTimings()
	for i := 0; i < b.N; i++ {
		if _, err := Figure11(t); err != nil {
			b.Fatal(err)
		}
	}
	d, err := DelayOverhead(DelayDefaults())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(d*100, "worst-case-%")
}

// BenchmarkFigure12DelayPorts regenerates Figure 12 (paper: <1.6% at
// n_o = 100).
func BenchmarkFigure12DelayPorts(b *testing.B) {
	t := CalibratedARMTimings()
	for i := 0; i < b.N; i++ {
		if _, err := Figure12(t); err != nil {
			b.Fatal(err)
		}
	}
	p := DelayDefaults()
	p.PortMsgInterval = 30 * time.Second
	p.OpenPorts = 100
	d, err := DelayOverhead(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(d*100, "worst-case-%")
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationBTIMCompression compares the on-air size of the
// compressed partial virtual bitmap (Figure 5) against a full bitmap,
// for a sparse high-AID client population — the case the Offset field
// exists for.
func BenchmarkAblationBTIMCompression(b *testing.B) {
	var bm dot11.VirtualBitmap
	for aid := dot11.AID(1800); aid <= 1850; aid++ {
		bm.Set(aid)
	}
	var compressed int
	for i := 0; i < b.N; i++ {
		btim := dot11.BTIMFromBitmap(&bm)
		e, err := btim.Element()
		if err != nil {
			b.Fatal(err)
		}
		compressed = e.WireLen()
	}
	b.ReportMetric(float64(compressed), "compressed-bytes")
	b.ReportMetric(float64(2+1+251), "full-bitmap-bytes")
}

// BenchmarkAblationPortTable measures the AP's port-table refresh path
// (delete old ports + insert new ones), the cost Eq. 25 prices.
func BenchmarkAblationPortTable(b *testing.B) {
	tab := NewPortTable()
	ports := make([]uint16, 50)
	for i := range ports {
		ports[i] = uint16(1024 + i*7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(dot11.AID(1+i%50), ports)
	}
}

// BenchmarkAblationAlgorithm1 measures the per-DTIM flag computation:
// port-table lookups over buffered frames plus bitmap sets, at the
// paper's n_f = 10 buffered frames and 50 clients.
func BenchmarkAblationAlgorithm1(b *testing.B) {
	tab := NewPortTable()
	for aid := dot11.AID(1); aid <= 50; aid++ {
		tab.Update(aid, []uint16{uint16(5000 + aid%10), 5353})
	}
	buffered := []uint16{5353, 5001, 5002, 5003, 5004, 5005, 5006, 5007, 5008, 5009}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var flags dot11.VirtualBitmap
		for _, port := range buffered {
			for _, aid := range tab.Lookup(port) {
				flags.Set(aid)
			}
		}
	}
}

// BenchmarkAblationSyncInterval sweeps the port-message interval and
// reports the protocol overhead energy (Eq. 17): the knob trading
// freshness against energy.
func BenchmarkAblationSyncInterval(b *testing.B) {
	tr, err := GenerateTrace(Starbucks)
	if err != nil {
		b.Fatal(err)
	}
	useful := TagUniform(tr, 0.1, 1)
	intervals := []time.Duration{10 * time.Second, 60 * time.Second, 600 * time.Second}
	var last Result
	for i := 0; i < b.N; i++ {
		for _, iv := range intervals {
			o := DefaultOverhead()
			o.PortMsgInterval = iv
			r, err := Evaluate(tr, useful, NexusOne, HIDE, Options{Overhead: o})
			if err != nil {
				b.Fatal(err)
			}
			last = r
		}
	}
	b.ReportMetric(last.Breakdown.EoJ, "Eo-J-at-600s")
}

// BenchmarkAblationCombinedPolicy evaluates the future-work HIDE +
// client-side combination at 20% stale port tables against pure HIDE.
func BenchmarkAblationCombinedPolicy(b *testing.B) {
	tr, err := GenerateTrace(WRL)
	if err != nil {
		b.Fatal(err)
	}
	useful := TagUniform(tr, 0.1, 1)
	var hideJ, combJ float64
	for i := 0; i < b.N; i++ {
		h, err := Evaluate(tr, useful, NexusOne, HIDE, Options{})
		if err != nil {
			b.Fatal(err)
		}
		arr, err := policy.CombinedPolicy{Staleness: 0.2, Seed: 3}.Apply(tr, useful)
		if err != nil {
			b.Fatal(err)
		}
		cb, err := energy.Compute(arr, energy.Config{
			Device: NexusOne, Duration: tr.Duration, Overhead: energy.DefaultOverhead(),
		})
		if err != nil {
			b.Fatal(err)
		}
		hideJ, combJ = h.Breakdown.TotalJ(), cb.TotalJ()
	}
	b.ReportMetric(hideJ, "HIDE-J")
	b.ReportMetric(combJ, "combined-J")
}

// --- Hot-path micro benches ---

// BenchmarkBeaconMarshal measures beacon encoding with TIM + BTIM.
func BenchmarkBeaconMarshal(b *testing.B) {
	var bm dot11.VirtualBitmap
	bm.Set(3)
	bm.Set(40)
	btim := dot11.BTIMFromBitmap(&bm)
	beacon := &dot11.Beacon{
		Header:         dot11.MACHeader{Addr1: dot11.Broadcast},
		BeaconInterval: 100,
		SSID:           "bench",
		TIM:            &dot11.TIM{DTIMPeriod: 3, PartialBitmap: []byte{0}},
		BTIM:           &btim,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := beacon.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBeaconUnmarshal measures the client-side beacon decode.
func BenchmarkBeaconUnmarshal(b *testing.B) {
	var bm dot11.VirtualBitmap
	bm.Set(3)
	btim := dot11.BTIMFromBitmap(&bm)
	beacon := &dot11.Beacon{
		Header:         dot11.MACHeader{Addr1: dot11.Broadcast},
		BeaconInterval: 100,
		SSID:           "bench",
		TIM:            &dot11.TIM{DTIMPeriod: 3, PartialBitmap: []byte{0}},
		BTIM:           &btim,
	}
	raw, err := beacon.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dot11.UnmarshalBeacon(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDstUDPPort measures Algorithm 1's port extraction from a
// broadcast frame body.
func BenchmarkDstUDPPort(b *testing.B) {
	body := dot11.EncapsulateUDP(dot11.UDPDatagram{DstPort: 5353, Payload: make([]byte, 100)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dot11.DstUDPPort(body); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnergyModel measures one full Section IV evaluation over a
// realistic 45-minute trace.
func BenchmarkEnergyModel(b *testing.B) {
	tr, err := GenerateTrace(WML)
	if err != nil {
		b.Fatal(err)
	}
	useful := TagUniform(tr, 0.1, 1)
	p, err := policy.New(policy.ReceiveAll)
	if err != nil {
		b.Fatal(err)
	}
	arr, err := p.Apply(tr, useful)
	if err != nil {
		b.Fatal(err)
	}
	cfg := energy.Config{Device: NexusOne, Duration: tr.Duration}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := energy.Compute(arr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(arr)), "frames")
}

// BenchmarkProtocolSim measures the full protocol simulation: AP plus
// three stations replaying two minutes of trace over the emulated
// channel.
func BenchmarkProtocolSim(b *testing.B) {
	cfg := trace.GenConfig{
		Name: "bench", Duration: 2 * time.Minute, MeanFPS: 2,
		BurstFactor: 2, BurstFraction: 0.2, MeanFrameBytes: 200,
		MoreDataFraction: 0.3,
		Rates:            []dot11.Rate{dot11.Rate1Mbps},
		RateWeights:      []float64{1},
		Mix:              trace.DefaultPortMix(),
		Seed:             9,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork(NetworkConfig{HIDE: true, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.AddStation(StationHIDE, []uint16{5353}); err != nil {
			b.Fatal(err)
		}
		if _, err := net.AddStation(StationLegacy, nil); err != nil {
			b.Fatal(err)
		}
		if err := net.Replay(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDTIMPeriod runs the protocol simulation across DTIM
// periods 1-3 (the paper's "typical values") and reports the HIDE
// station's energy for each: longer periods batch group traffic into
// fewer wake windows at the cost of delivery latency.
func BenchmarkAblationDTIMPeriod(b *testing.B) {
	cfg := trace.GenConfig{
		Name: "dtim-ablation", Duration: 2 * time.Minute, MeanFPS: 3,
		BurstFactor: 2, BurstFraction: 0.2, MeanFrameBytes: 200,
		MoreDataFraction: 0.3,
		Rates:            []dot11.Rate{dot11.Rate1Mbps},
		RateWeights:      []float64{1},
		Mix:              trace.DefaultPortMix(),
		Seed:             11,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	joules := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, period := range []int{1, 2, 3} {
			net, err := NewNetwork(NetworkConfig{HIDE: true, DTIMPeriod: period})
			if err != nil {
				b.Fatal(err)
			}
			st, err := net.AddStation(StationHIDE, []uint16{5353})
			if err != nil {
				b.Fatal(err)
			}
			if err := net.Replay(tr); err != nil {
				b.Fatal(err)
			}
			e, err := net.StationEnergy(st, NexusOne, tr.Duration, true)
			if err != nil {
				b.Fatal(err)
			}
			joules[period] = e.TotalJ()
		}
	}
	b.ReportMetric(joules[1], "J-dtim1")
	b.ReportMetric(joules[3], "J-dtim3")
}

// BenchmarkAblationUnicastFilter compares AP-side unicast filtering
// (the paper's §I extension) against standard buffering for a station
// whose unicast traffic is mostly useless.
func BenchmarkAblationUnicastFilter(b *testing.B) {
	var filteredRx, plainRx float64
	for i := 0; i < b.N; i++ {
		for _, filter := range []bool{true, false} {
			net, err := NewNetwork(NetworkConfig{HIDE: true, FilterUnicast: filter})
			if err != nil {
				b.Fatal(err)
			}
			st, err := net.AddStation(StationHIDE, []uint16{4000})
			if err != nil {
				b.Fatal(err)
			}
			net.AP.Start()
			net.Engine.RunUntil(500 * time.Millisecond)
			addr := dot11.MACAddr{0x02, 0x1d, 0xe0, 0x01, 0x00, 0x01}
			for k := 0; k < 20; k++ {
				port := uint16(9000 + k) // all useless
				if k%10 == 0 {
					port = 4000 // 10% useful
				}
				if err := net.AP.EnqueueUnicast(addr, dot11.UDPDatagram{DstPort: port}, dot11.Rate11Mbps); err != nil {
					b.Fatal(err)
				}
				net.Engine.RunUntil(net.Engine.Now() + 2*time.Second)
			}
			if filter {
				filteredRx = float64(st.Stats().UnicastReceived)
			} else {
				plainRx = float64(st.Stats().UnicastReceived)
			}
		}
	}
	b.ReportMetric(filteredRx, "rx-filtered")
	b.ReportMetric(plainRx, "rx-plain")
}

// BenchmarkAblationListenInterval sweeps the 802.11 listen interval on
// the live protocol sim: fewer beacon wake-ups (lower Eb) against
// missed DTIM indications (lost useful frames).
func BenchmarkAblationListenInterval(b *testing.B) {
	cfg := trace.GenConfig{
		Name: "li-ablation", Duration: 2 * time.Minute, MeanFPS: 2,
		BurstFactor: 2, BurstFraction: 0.2, MeanFrameBytes: 200,
		MoreDataFraction: 0.3,
		Rates:            []dot11.Rate{dot11.Rate1Mbps},
		RateWeights:      []float64{1},
		Mix:              trace.DefaultPortMix(),
		Seed:             13,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	results := map[int]float64{}
	received := map[int]int{}
	for i := 0; i < b.N; i++ {
		for _, li := range []int{1, 3, 10} {
			net, err := NewNetwork(NetworkConfig{HIDE: true})
			if err != nil {
				b.Fatal(err)
			}
			st, err := net.AddStationListenInterval(StationHIDE, []uint16{5353}, li)
			if err != nil {
				b.Fatal(err)
			}
			if err := net.Replay(tr); err != nil {
				b.Fatal(err)
			}
			e, err := net.StationEnergy(st, NexusOne, tr.Duration, true)
			if err != nil {
				b.Fatal(err)
			}
			results[li] = e.TotalJ()
			received[li] = st.Stats().GroupUseful
		}
	}
	b.ReportMetric(results[1], "J-li1")
	b.ReportMetric(results[10], "J-li10")
	b.ReportMetric(float64(received[1]), "useful-li1")
	b.ReportMetric(float64(received[10]), "useful-li10")
}

// BenchmarkScaleClients runs the beyond-the-paper population-scaling
// experiment: BTIM bytes per beacon and mean per-station energy as the
// HIDE population grows.
func BenchmarkScaleClients(b *testing.B) {
	var pts []core.ScalePoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = core.DefaultScaleClients(NexusOne)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].BTIMBytesPerBeacon, "btimB-n1")
	b.ReportMetric(pts[len(pts)-1].BTIMBytesPerBeacon, "btimB-n40")
	b.ReportMetric(pts[len(pts)-1].MeanStationJ, "J-per-station-n40")
}

// BenchmarkDCFValidation measures the slotted CSMA/CA Monte-Carlo
// simulator against the Bianchi fixed point at N=20 (the Figure 10
// substrate validation).
func BenchmarkDCFValidation(b *testing.B) {
	cfg := TableII()
	var relErr float64
	for i := 0; i < b.N; i++ {
		var err error
		_, _, relErr, err = dcfsim.ValidateAgainstBianchi(cfg, 20, 10*time.Second, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(relErr*100, "model-error-%")
}

// BenchmarkRunSuiteWorkers measures the parallel evaluation engine's
// scaling on the full Figure 7/8/9 suite: the same deduplicated
// evaluation grid at 1, 2, and 4 workers and at GOMAXPROCS (workers
// 0). On a single-CPU host all variants degenerate to sequential
// throughput; the sub-benchmark ratios show the engine's scheduling
// overhead is negligible in that case.
func BenchmarkRunSuiteWorkers(b *testing.B) {
	// Warm the shared trace cache so every variant measures pure
	// evaluation, not first-touch trace generation.
	if _, err := RunSuiteOptions(NexusOne, Options{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 0} {
		name := "workers=gomaxprocs"
		if workers > 0 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunSuiteOptions(NexusOne, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
