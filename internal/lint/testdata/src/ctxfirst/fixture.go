// Package fixture exercises the ctxfirst analyzer. The test harness
// analyzes it as repro/internal/core, where the context-first
// convention applies: concurrent exported functions take a Context
// first, and legacy entry points are one-line delegations.
package fixture

import "context"

// RunContext is the context-first entry point; its goroutine is fine
// because cancellation can reach it.
func RunContext(ctx context.Context, n int) int {
	done := make(chan struct{})
	go func() {
		<-ctx.Done()
		close(done)
	}()
	return n
}

// Run delegates in one line, as the convention requires.
func Run(n int) int {
	return RunContext(context.Background(), n)
}

// Spawn launches a goroutine no caller can cancel.
func Spawn() { // want `exported Spawn spawns concurrent work`
	go func() {}()
}

// WalkContext is the context variant Walk fails to delegate to.
func WalkContext(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Walk re-implements WalkContext instead of delegating, so the two
// can drift apart.
func Walk(n int) int { // want `legacy Walk must be a one-line delegation to WalkContext`
	if n < 0 {
		return 0
	}
	return n
}
