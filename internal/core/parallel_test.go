package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/trace"
)

// renderSuite canonicalizes a suite for byte comparison.
func renderSuite(t *testing.T, s *Suite) string {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunSuiteParallelDeterminism asserts the tentpole contract: the
// parallel suite is byte-identical to the sequential path across
// worker counts (run it under -cpu 1,4 to also vary GOMAXPROCS).
func TestRunSuiteParallelDeterminism(t *testing.T) {
	seq, err := RunSuiteContext(context.Background(), energy.NexusOne, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := renderSuite(t, seq)
	for _, workers := range []int{0, 2, 4, 8} {
		s, err := RunSuiteContext(context.Background(), energy.NexusOne, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderSuite(t, s); got != want {
			t.Fatalf("workers=%d: suite differs from the sequential path", workers)
		}
	}
}

// TestCompareEnergyParallelDeterminism covers the per-trace bar fan.
func TestCompareEnergyParallelDeterminism(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := CompareEnergyContext(context.Background(), tr, energy.GalaxyS4, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := CompareEnergyContext(context.Background(), tr, energy.GalaxyS4, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(seq)
	b, _ := json.Marshal(par)
	if string(a) != string(b) {
		t.Fatal("parallel CompareEnergy differs from sequential")
	}
}

// TestSweepSeedsParallelDeterminism covers the seed-sweep fan and its
// ordered fold.
func TestSweepSeedsParallelDeterminism(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.WRL)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SweepSeedsContext(context.Background(), tr, energy.NexusOne, 0.10, DefaultSweepSeeds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepSeedsContext(context.Background(), tr, energy.NexusOne, 0.10, DefaultSweepSeeds, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Fatalf("parallel SweepSeeds differs: %+v vs %+v", par, seq)
	}
	legacy, err := SweepSeeds(tr, energy.NexusOne, 0.10, DefaultSweepSeeds)
	if err != nil {
		t.Fatal(err)
	}
	if legacy != seq {
		t.Fatalf("compatibility shim diverged: %+v vs %+v", legacy, seq)
	}
}

// TestRunSuiteCancellation: a cancelled context returns promptly with
// context.Canceled.
func TestRunSuiteCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunSuiteContext(ctx, energy.NexusOne, Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled RunSuite took %v", elapsed)
	}
}

// TestEvaluateContextCancellation covers the single-cell entry point.
func TestEvaluateContextCancellation(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateFractionContext(ctx, tr, 0.10, energy.NexusOne, 0, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSeedZeroSelectable pins the Options.Seed footgun fix: WithSeed(0)
// selects the literal seed 0, which differs from the implicit default,
// while the zero Options value still selects DefaultSeed.
func TestSeedZeroSelectable(t *testing.T) {
	tr, err := trace.GenerateScenario(trace.Starbucks)
	if err != nil {
		t.Fatal(err)
	}
	defTags := trace.TagUniform(tr, 0.10, DefaultSeed)
	zeroTags := trace.TagUniform(tr, 0.10, 0)
	same := true
	for i := range defTags {
		if defTags[i] != zeroTags[i] {
			same = false
			break
		}
	}
	if same {
		t.Skip("seed 0 and DefaultSeed tag identically on this trace; footgun unobservable")
	}

	implicit := Options{}.normalized()
	if implicit.Seed != DefaultSeed {
		t.Fatalf("zero Options normalized to seed %#x, want DefaultSeed %#x", implicit.Seed, DefaultSeed)
	}
	explicit := Options{}.WithSeed(0).normalized()
	if explicit.Seed != 0 {
		t.Fatalf("WithSeed(0) normalized to seed %#x, want 0", explicit.Seed)
	}

	rDef, err := EvaluateFraction(tr, 0.10, energy.NexusOne, policy.HIDE, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rZero, err := EvaluateFraction(tr, 0.10, energy.NexusOne, policy.HIDE, Options{}.WithSeed(0))
	if err != nil {
		t.Fatal(err)
	}
	if rDef.Breakdown == rZero.Breakdown {
		t.Fatal("seed 0 evaluated identically to the default seed; it is still being remapped")
	}
}
