// Package bianchi implements Bianchi's saturation-throughput model of
// the 802.11 distributed coordination function ("Performance analysis
// of the IEEE 802.11 distributed coordination function", JSAC 2000),
// which the HIDE paper borrows (via Wu et al. [15]'s 802.11b
// configuration, Table II) to quantify how UDP Port Messages reduce
// network capacity (Section V-A, Eqs. 20-24, Figure 10).
//
// The model finds the per-station transmission probability τ and the
// conditional collision probability p as the fixed point of
//
//	τ = 2(1-2p) / ((1-2p)(W+1) + pW(1-(2p)^m))
//	p = 1 - (1-τ)^(n-1)
//
// and from them the normalized throughput Φ — the fraction of time the
// channel carries payload bits.
package bianchi

import (
	"fmt"
	"math"
	"time"
)

// Config holds the 802.11 network configuration of Table II. All frame
// portions are transmitted at the channel data rate, matching the
// paper's simplified accounting (Table II expresses even the PHY
// preamble in bits).
type Config struct {
	// CWMin and CWMax bound the contention window (W and 2^m * W).
	CWMin, CWMax int
	// SlotTime, SIFS, DIFS are MAC timings.
	SlotTime time.Duration
	SIFS     time.Duration
	DIFS     time.Duration
	// PropDelay is the propagation delay δ.
	PropDelay time.Duration
	// DataRate is the channel data rate in bits/s.
	DataRate float64
	// MACHeaderBits and PHYHeaderBits are per-frame header sizes.
	MACHeaderBits int
	PHYHeaderBits int
	// ACKBits is the ACK frame body size (the PHY header is added).
	ACKBits int
	// PayloadBits is the average data payload size E[P].
	PayloadBits int
}

// TableII returns the configuration of the paper's Table II.
func TableII() Config {
	return Config{
		CWMin: 32, CWMax: 1024,
		SlotTime:      20 * time.Microsecond,
		SIFS:          10 * time.Microsecond,
		DIFS:          50 * time.Microsecond,
		PropDelay:     1 * time.Microsecond,
		DataRate:      11e6,
		MACHeaderBits: 224, PHYHeaderBits: 192,
		ACKBits:     112,
		PayloadBits: 1000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.CWMin < 2 || c.CWMax < c.CWMin:
		return fmt.Errorf("bianchi: invalid contention window [%d, %d]", c.CWMin, c.CWMax)
	case c.SlotTime <= 0 || c.SIFS <= 0 || c.DIFS <= 0:
		return fmt.Errorf("bianchi: non-positive MAC timings")
	case c.DataRate <= 0:
		return fmt.Errorf("bianchi: non-positive data rate %v", c.DataRate)
	case c.PayloadBits <= 0:
		return fmt.Errorf("bianchi: non-positive payload size %d", c.PayloadBits)
	}
	return nil
}

// stages returns the number of backoff stages m (CWMax = 2^m CWMin).
func (c Config) stages() int {
	m := 0
	for w := c.CWMin; w < c.CWMax; w *= 2 {
		m++
	}
	return m
}

// bitsDur returns the transmission time of n bits at the channel rate.
func (c Config) bitsDur(n int) time.Duration {
	return time.Duration(float64(n) / c.DataRate * float64(time.Second))
}

// Result holds the model outputs for one network size.
type Result struct {
	// N is the number of saturated stations.
	N int
	// Tau is the per-slot transmission probability.
	Tau float64
	// P is the conditional collision probability.
	P float64
	// Phi is the normalized saturation throughput (fraction of time the
	// channel carries payload bits).
	Phi float64
	// CapacityBps is S = Φ · r (Eq. 20).
	CapacityBps float64
}

// Solve computes the fixed point and throughput for n stations under
// basic (non-RTS/CTS) access.
func Solve(cfg Config, n int) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("bianchi: need at least one station, got %d", n)
	}
	w := float64(cfg.CWMin)
	m := float64(cfg.stages())

	// Fixed point by bisection on p in [0, 1): tauOf(p) is decreasing
	// and pOf(tau, n) is increasing in tau, so g(p) = pOf(tauOf(p)) - p
	// is decreasing and has a unique root.
	tauOf := func(p float64) float64 {
		if p == 0.5 {
			// The closed form has a removable singularity at p = 1/2.
			p += 1e-12
		}
		num := 2 * (1 - 2*p)
		den := (1-2*p)*(w+1) + p*w*(1-math.Pow(2*p, m))
		return num / den
	}
	pOf := func(tau float64) float64 {
		return 1 - math.Pow(1-tau, float64(n-1))
	}
	var p, tau float64
	if n == 1 {
		// A lone station never collides.
		p, tau = 0, tauOf(0)
	} else {
		lo, hi := 0.0, 0.999999
		for i := 0; i < 200; i++ {
			p = (lo + hi) / 2
			tau = tauOf(p)
			if pOf(tau) > p {
				lo = p
			} else {
				hi = p
			}
		}
		tau = tauOf(p)
	}

	// Slot-time accounting (Bianchi Eq. 13, basic access).
	ptr := 1 - math.Pow(1-tau, float64(n))
	var ps float64
	if ptr > 0 {
		ps = float64(n) * tau * math.Pow(1-tau, float64(n-1)) / ptr
	}
	tp := cfg.bitsDur(cfg.PayloadBits)
	hdr := cfg.bitsDur(cfg.MACHeaderBits + cfg.PHYHeaderBits)
	ack := cfg.bitsDur(cfg.ACKBits + cfg.PHYHeaderBits)
	ts := hdr + tp + cfg.SIFS + cfg.PropDelay + ack + cfg.DIFS + cfg.PropDelay
	tc := hdr + tp + cfg.DIFS + cfg.PropDelay

	sigma := cfg.SlotTime.Seconds()
	num := ps * ptr * tp.Seconds()
	den := (1-ptr)*sigma + ptr*ps*ts.Seconds() + ptr*(1-ps)*tc.Seconds()
	phi := 0.0
	if den > 0 {
		phi = num / den
	}
	return Result{
		N: n, Tau: tau, P: p, Phi: phi,
		CapacityBps: phi * cfg.DataRate,
	}, nil
}

// OverheadParams parameterizes the HIDE capacity-overhead calculation
// (Eqs. 21-24).
type OverheadParams struct {
	// HIDEFraction is p, the fraction of stations with HIDE enabled.
	HIDEFraction float64
	// PortMsgInterval is 1/f, the period between UDP Port Messages.
	PortMsgInterval time.Duration
	// PortsPerMsg is the number of UDP ports per message (50 in the
	// paper's overhead analysis).
	PortsPerMsg int
}

// SectionVDefaults returns the paper's overhead-analysis settings:
// UDP Port Messages every 10 s carrying 50 ports.
func SectionVDefaults() OverheadParams {
	return OverheadParams{
		HIDEFraction:    0.5,
		PortMsgInterval: 10 * time.Second,
		PortsPerMsg:     50,
	}
}

// portMsgBits returns the UDP Port Message length L^m in bits
// (Eq. 19: PHY + MAC headers + 2 fixed bytes + 2 bytes per port).
func (o OverheadParams) portMsgBits(cfg Config) int {
	return cfg.PHYHeaderBits + cfg.MACHeaderBits + 8*(2+2*o.PortsPerMsg)
}

// CapacityOverhead computes the fractional decrease in network
// capacity c = 1 - S2/S1 (Eq. 24) for n stations.
func CapacityOverhead(cfg Config, o OverheadParams, n int) (float64, error) {
	if o.HIDEFraction < 0 || o.HIDEFraction > 1 {
		return 0, fmt.Errorf("bianchi: HIDE fraction %v outside [0, 1]", o.HIDEFraction)
	}
	if o.PortMsgInterval <= 0 {
		return 0, fmt.Errorf("bianchi: non-positive port message interval %v", o.PortMsgInterval)
	}
	base, err := Solve(cfg, n)
	if err != nil {
		return 0, err
	}
	s1 := base.CapacityBps
	if s1 <= 0 {
		return 0, fmt.Errorf("bianchi: degenerate capacity %v", s1)
	}
	f := 1 / o.PortMsgInterval.Seconds()
	nu := float64(n) * o.HIDEFraction * f // Eq. 21
	nd := s1 / float64(cfg.PayloadBits)   // Eq. 22
	// Eq. 23: each port message displaces ⌊Lm/L⌋ data frames.
	displaced := math.Floor(float64(o.portMsgBits(cfg)) / float64(cfg.PayloadBits))
	if displaced < 1 {
		displaced = 1 // a message occupies at least one frame slot
	}
	s2 := (nd - nu*displaced) * float64(cfg.PayloadBits)
	if s2 < 0 {
		s2 = 0
	}
	return 1 - s2/s1, nil // Eq. 24
}

// Figure10Point is one (N, p) cell of Figure 10.
type Figure10Point struct {
	N            int
	HIDEFraction float64
	Overhead     float64 // fractional capacity decrease
}

// Figure10 sweeps the paper's Figure 10 grid: N in {5,10,20,30,40,50}
// and HIDE fractions {5%, 25%, 50%, 75%}.
func Figure10(cfg Config) ([]Figure10Point, error) {
	ns := []int{5, 10, 20, 30, 40, 50}
	ps := []float64{0.05, 0.25, 0.50, 0.75}
	var out []Figure10Point
	for _, p := range ps {
		for _, n := range ns {
			o := SectionVDefaults()
			o.HIDEFraction = p
			c, err := CapacityOverhead(cfg, o, n)
			if err != nil {
				return nil, err
			}
			out = append(out, Figure10Point{N: n, HIDEFraction: p, Overhead: c})
		}
	}
	return out, nil
}
