// Package fixture exercises the ignore-directive contract: a
// suppression without a justification is itself reported and does not
// silence the finding it precedes.
package fixture

import "errors"

func work() error { return errors.New("boom") }

// Unjustified suppresses without saying why.
func Unjustified() {
	//lint:ignore errdrop
	_ = work()
}
