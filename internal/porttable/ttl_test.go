package porttable

import (
	"testing"
	"time"

	"repro/internal/dot11"
)

func TestUpdateAtStampsRefresh(t *testing.T) {
	tb := New()
	tb.UpdateAt(1, []uint16{53}, 5*time.Second)
	at, ok := tb.RefreshedAt(1)
	if !ok || at != 5*time.Second {
		t.Fatalf("RefreshedAt = %v, %v; want 5s, true", at, ok)
	}
	// A later refresh restarts the TTL clock.
	tb.UpdateAt(1, []uint16{53, 5353}, 9*time.Second)
	if at, _ := tb.RefreshedAt(1); at != 9*time.Second {
		t.Fatalf("refresh stamp not advanced: %v", at)
	}
}

func TestUpdateLeavesZeroStamp(t *testing.T) {
	tb := New()
	tb.Update(1, []uint16{53})
	if at, ok := tb.RefreshedAt(1); !ok || at != 0 {
		t.Fatalf("RefreshedAt after Update = %v, %v; want 0, true", at, ok)
	}
}

func TestExpireBefore(t *testing.T) {
	tb := New()
	tb.UpdateAt(3, []uint16{53}, 1*time.Second)
	tb.UpdateAt(1, []uint16{5353}, 2*time.Second)
	tb.UpdateAt(2, []uint16{1900}, 3*time.Second)

	stale := tb.ExpireBefore(3 * time.Second) // strict: AID 2 survives
	if len(stale) != 2 || stale[0] != 1 || stale[1] != 3 {
		t.Fatalf("ExpireBefore returned %v, want sorted [1 3]", stale)
	}
	if tb.Clients() != 1 || !tb.Listening(1900, 2) {
		t.Error("surviving client lost its entries")
	}
	if tb.Listening(53, 3) || tb.Listening(5353, 1) {
		t.Error("expired clients still listed")
	}
	if _, ok := tb.RefreshedAt(1); ok {
		t.Error("expired client still has a refresh stamp")
	}
	if again := tb.ExpireBefore(3 * time.Second); len(again) != 0 {
		t.Errorf("second sweep expired %v again", again)
	}
}

func TestRemoveClearsRefreshStamp(t *testing.T) {
	tb := New()
	tb.UpdateAt(1, []uint16{53}, time.Second)
	tb.Remove(1)
	if _, ok := tb.RefreshedAt(1); ok {
		t.Fatal("Remove left the refresh stamp behind")
	}
	// A removed client must not resurface in a later TTL sweep.
	if stale := tb.ExpireBefore(time.Hour); len(stale) != 0 {
		t.Fatalf("sweep after Remove expired %v", stale)
	}
}

func TestEmptyPortMessageClearsStamp(t *testing.T) {
	tb := New()
	tb.UpdateAt(1, []uint16{53}, time.Second)
	tb.UpdateAt(1, nil, 2*time.Second)
	if _, ok := tb.RefreshedAt(1); ok {
		t.Fatal("client with no open ports keeps a refresh stamp")
	}
}

func TestExpireBeforeZeroValueTable(t *testing.T) {
	var tb Table
	if stale := tb.ExpireBefore(time.Hour); len(stale) != 0 {
		t.Fatalf("zero-value table expired %v", stale)
	}
	tb.UpdateAt(1, []uint16{53}, 0)
	if stale := tb.ExpireBefore(time.Nanosecond); len(stale) != 1 || stale[0] != dot11.AID(1) {
		t.Fatalf("zero-stamp entry not expired: %v", stale)
	}
}

func TestExpiryKeepsReverseMappingConsistent(t *testing.T) {
	tb := New()
	for aid := dot11.AID(1); aid <= 8; aid++ {
		tb.UpdateAt(aid, []uint16{uint16(5000 + aid), 53}, time.Duration(aid)*time.Second)
	}
	tb.ExpireBefore(5 * time.Second)
	// Shared port 53 must now list exactly the survivors.
	want := []dot11.AID{5, 6, 7, 8}
	got := tb.Lookup(53)
	if len(got) != len(want) {
		t.Fatalf("port 53 lists %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("port 53 lists %v, want %v", got, want)
		}
	}
	if tb.Len() != 2*len(want) {
		t.Errorf("table holds %d pairs, want %d", tb.Len(), 2*len(want))
	}
}
