package netmedium

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/dot11"
)

// FuzzMessageCodec fuzzes both codec directions: arbitrary datagrams
// must never panic Unmarshal, and anything that decodes must re-encode
// to the identical datagram (the codec is canonical).
func FuzzMessageCodec(f *testing.F) {
	seed, err := Message{Type: MsgFrame, At: time.Second, Rate: dot11.Rate11Mbps, Payload: []byte{1, 2, 3}}.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return
		}
		if len(m.Payload) > maxFrameLen {
			t.Fatalf("Unmarshal accepted %d-byte payload", len(m.Payload))
		}
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("re-encoding a decoded message failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec not canonical:\n in %x\nout %x", data, out)
		}
	})
}
