package procnet

import (
	"runtime"
	"strings"
	"testing"
)

// sampleUDP mirrors real /proc/net/udp content: mDNS and DHCP bound to
// the wildcard, DNS bound to localhost.
const sampleUDP = `  sl  local_address rem_address   st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode ref pointer drops
  283: 00000000:14E9 00000000:0000 07 00000000:00000000 00:00000000 00000000   108        0 21337 2 0000000000000000 0
  397: 0100007F:0035 00000000:0000 07 00000000:00000000 00:00000000 00000000   101        0 24802 2 0000000000000000 0
  635: 00000000:0044 00000000:0000 07 00000000:00000000 00:00000000 00000000     0        0 20838 2 0000000000000000 0
  731: 3500A8C0:BFCF 00000000:0000 07 00000000:00000000 00:00000000 00000000  1000        0 31907 2 0000000000000000 0
`

const sampleUDP6 = `  sl  local_address                         rem_address                        st tx_queue rx_queue tr tm->when retrnsmt   uid  timeout inode ref pointer drops
  283: 00000000000000000000000000000000:14E9 00000000000000000000000000000000:0000 07 00000000:00000000 00:00000000 00000000   108        0 21338 2 0000000000000000 0
  890: 00000000000000000000000001000000:0222 00000000000000000000000000000000:0000 07 00000000:00000000 00:00000000 00000000     0        0 99999 2 0000000000000000 0
`

func TestParseTableIPv4(t *testing.T) {
	socks, err := ParseTable(strings.NewReader(sampleUDP))
	if err != nil {
		t.Fatal(err)
	}
	if len(socks) != 4 {
		t.Fatalf("parsed %d sockets, want 4", len(socks))
	}
	// 0x14E9 = 5353 on wildcard.
	if socks[0].LocalPort != 5353 || !socks[0].Wildcard {
		t.Errorf("socket 0: %+v", socks[0])
	}
	// 0x0035 = 53 on 127.0.0.1 (hex is little-endian per 32-bit word).
	if socks[1].LocalPort != 53 || socks[1].Wildcard {
		t.Errorf("socket 1: %+v", socks[1])
	}
	// 0x0044 = 68 (DHCP client) on wildcard.
	if socks[2].LocalPort != 68 || !socks[2].Wildcard {
		t.Errorf("socket 2: %+v", socks[2])
	}
	// Specific interface address: not wildcard.
	if socks[3].Wildcard {
		t.Errorf("socket 3 should not be wildcard: %+v", socks[3])
	}
}

func TestParseTableIPv6(t *testing.T) {
	socks, err := ParseTable(strings.NewReader(sampleUDP6))
	if err != nil {
		t.Fatal(err)
	}
	if len(socks) != 2 {
		t.Fatalf("parsed %d sockets, want 2", len(socks))
	}
	if socks[0].LocalPort != 5353 || !socks[0].Wildcard {
		t.Errorf("socket 0: %+v", socks[0])
	}
	if socks[1].Wildcard {
		t.Errorf("socket 1 bound to ::1 must not be wildcard: %+v", socks[1])
	}
}

func TestWildcardPorts(t *testing.T) {
	v4, err := ParseTable(strings.NewReader(sampleUDP))
	if err != nil {
		t.Fatal(err)
	}
	v6, err := ParseTable(strings.NewReader(sampleUDP6))
	if err != nil {
		t.Fatal(err)
	}
	ports := WildcardPorts(append(v4, v6...))
	// 5353 appears in both tables but is reported once; 68 from v4.
	want := []uint16{68, 5353}
	if len(ports) != len(want) {
		t.Fatalf("ports = %v, want %v", ports, want)
	}
	for i := range want {
		if ports[i] != want[i] {
			t.Fatalf("ports = %v, want %v", ports, want)
		}
	}
}

func TestParseTableRejectsGarbage(t *testing.T) {
	cases := []string{
		"header\nonecolumn\n",
		"header\n  1: zzzzzzzz:0035 rest 07\n",
		"header\n  1: 00000000 rest 07\n",
		"header\n  1: 000000:0035 rest 07\n",
		"header\n  1: 00000000:GGGG rest 07\n",
	}
	for i, c := range cases {
		if _, err := ParseTable(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestParseTableEmptyAndHeaderOnly(t *testing.T) {
	socks, err := ParseTable(strings.NewReader("  sl  local_address ...\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(socks) != 0 {
		t.Fatalf("header-only table produced %d sockets", len(socks))
	}
}

func TestLocalOpenPorts(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("requires /proc/net/udp")
	}
	ports, err := LocalOpenPorts()
	if err != nil {
		t.Fatal(err)
	}
	// No specific ports guaranteed, but the call must succeed and the
	// result be sorted and unique.
	for i := 1; i < len(ports); i++ {
		if ports[i] <= ports[i-1] {
			t.Fatalf("ports not sorted/unique: %v", ports)
		}
	}
}
