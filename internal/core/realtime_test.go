package core

import (
	"bytes"
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/netmedium"
	"repro/internal/policy"
	"repro/internal/station"
	"repro/internal/trace"
)

func TestReplayRealtimeRejectsBadSpeed(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := shortTrace(t, time.Second, 1)
	if err := n.ReplayRealtime(context.Background(), tr, 0); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestReplayRealtimeMatchesVirtualReplay(t *testing.T) {
	tr := shortTrace(t, 10*time.Second, 2)

	run := func(realtime bool) station.Stats {
		n, err := NewNetwork(NetworkConfig{HIDE: true})
		if err != nil {
			t.Fatal(err)
		}
		st, err := n.AddStation(station.HIDE, []uint16{5353})
		if err != nil {
			t.Fatal(err)
		}
		if realtime {
			// 10 s of virtual time in ~10 ms of wall time.
			if err := n.ReplayRealtime(context.Background(), tr, 1000); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := n.Replay(tr); err != nil {
				t.Fatal(err)
			}
		}
		return st.Stats()
	}

	virtual := run(false)
	realtime := run(true)
	if virtual != realtime {
		t.Fatalf("realtime run diverged from virtual run:\n  virtual  %+v\n  realtime %+v", virtual, realtime)
	}
}

func TestReplayRealtimeCancellation(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := shortTrace(t, time.Hour, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	// Speed 1: an hour of virtual time would take an hour; cancellation
	// must interrupt it quickly.
	start := time.Now()
	err = n.ReplayRealtime(ctx, tr, 1)
	if err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation took too long")
	}
}

func TestLiveMonitorStreamsAndInjects(t *testing.T) {
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.AddStation(station.HIDE, []uint16{5353})
	if err != nil {
		t.Fatal(err)
	}

	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mon := n.ServeMonitor(pc)
	defer mon.Close()

	tap, err := netmedium.Dial(mon.Server.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	deadline := time.Now().Add(10 * time.Second)
	for mon.Server.Stats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tap never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	// Inject a useful broadcast frame via the tap, then run. Poll the
	// server's inject counter rather than sleeping: the replay below
	// only drains injects that have already landed.
	if err := tap.Inject(netmedium.InjectRequest{DstPort: 5353, PayloadSize: 32}); err != nil {
		t.Fatal(err)
	}
	for mon.Server.Stats().Injects == 0 {
		if time.Now().After(deadline) {
			t.Fatal("inject never reached the server")
		}
		time.Sleep(time.Millisecond)
	}

	tr := shortTrace(t, 3*time.Second, 1)
	if err := n.ReplayRealtime(context.Background(), tr, 2000); err != nil {
		t.Fatal(err)
	}

	// The tap observed beacons (and data); find at least one of each.
	sawBeacon, sawData := false, false
	for !sawBeacon || !sawData {
		ev, err := tap.Next(time.Now().Add(2 * time.Second))
		if err != nil {
			break
		}
		switch dot11.Classify(ev.Raw) {
		case dot11.KindBeacon:
			sawBeacon = true
		case dot11.KindData:
			sawData = true
		}
	}
	if !sawBeacon {
		t.Error("tap never saw a beacon")
	}
	if !sawData {
		t.Error("tap never saw a data frame")
	}
	// The injected frame reached the station (its port matched).
	if st.Stats().GroupUseful == 0 {
		t.Error("injected frame never received by the station")
	}
	if mon.Server.Stats().Injects != 1 {
		t.Errorf("Injects = %d, want 1", mon.Server.Stats().Injects)
	}
}

func TestCaptureClosesTheLoop(t *testing.T) {
	// Generate → simulate → capture to pcap → re-import: the re-imported
	// broadcast trace must contain exactly the group frames the AP sent,
	// at their on-air times.
	n, err := NewNetwork(NetworkConfig{HIDE: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddStation(station.HIDE, []uint16{5353}); err != nil {
		t.Fatal(err)
	}
	cap := n.StartCapture()
	tr := shortTrace(t, 2*time.Minute, 2)
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}
	if cap.Frames() == 0 {
		t.Fatal("capture recorded nothing")
	}

	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadPCAP(&buf, trace.PCAPOptions{Name: "capture"})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the group data frames survive re-import (beacons, ACKs,
	// port messages, assoc frames are skipped).
	if len(got.Frames) != n.AP.Stats().GroupFramesSent {
		t.Fatalf("re-imported %d frames, AP sent %d group frames",
			len(got.Frames), n.AP.Stats().GroupFramesSent)
	}
	// Same port multiset as the source trace.
	want := tr.PortHistogram()
	have := got.PortHistogram()
	for p, n := range want {
		if have[p] != n {
			t.Fatalf("port %d: %d frames re-imported, want %d", p, have[p], n)
		}
	}
	// The re-imported trace drives the analytic pipeline end to end.
	r, err := EvaluateFraction(got, 0.10, energy.NexusOne, policy.ReceiveAll, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Breakdown.TotalJ() <= 0 {
		t.Fatal("re-imported trace produced no energy")
	}
}
