package check

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/station"
	"repro/internal/trace"
)

// TestInvariantsCleanRun attaches the checker to an unmutated protocol
// run of every station mode and expects silence.
func TestInvariantsCleanRun(t *testing.T) {
	tr, err := oracleTrace(trace.CSDept, 0, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	open := trace.OpenPortsForFraction(tr, 0.10)
	for _, mode := range []station.Mode{station.Legacy, station.ClientSide, station.HIDE} {
		n, err := core.NewNetwork(core.NetworkConfig{DTIMPeriod: 1, HIDE: mode == station.HIDE})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := n.AddStation(mode, sortedPorts(open)); err != nil {
			t.Fatal(err)
		}
		inv := NewInvariants()
		inv.Watch(n)
		if err := n.Replay(tr); err != nil {
			t.Fatal(err)
		}
		inv.Finish(n.Engine.Now())
		if err := inv.Err(); err != nil {
			t.Errorf("%v station: %v", mode, err)
		}
	}
}

// TestInvariantsRecordCap: a per-event breach must not accumulate
// unbounded duplicates; recording is capped per rule.
func TestInvariantsRecordCap(t *testing.T) {
	inv := NewInvariants()
	for i := 0; i < 10*maxViolationsPerRule; i++ {
		inv.record(time.Duration(i), RuleTimeline, "synthetic")
	}
	inv.record(0, RuleArrivalOrder, "other rule still records")
	got := inv.Violations()
	if len(got) != maxViolationsPerRule+1 {
		t.Fatalf("recorded %d violations, want %d", len(got), maxViolationsPerRule+1)
	}
	err := inv.Err()
	if err == nil {
		t.Fatal("Err() nil with violations recorded")
	}
	if !strings.Contains(err.Error(), RuleTimeline) || !strings.Contains(err.Error(), "synthetic") {
		t.Errorf("error omits rule or detail: %v", err)
	}
}

// TestInvariantsFailFast: FailFast panics on the first breach so tests
// can pinpoint the offending simulation event.
func TestInvariantsFailFast(t *testing.T) {
	inv := NewInvariants()
	inv.FailFast = true
	defer func() {
		if recover() == nil {
			t.Fatal("FailFast did not panic")
		}
	}()
	inv.record(0, RuleTimeline, "boom")
}

// TestStationWatchTimeline drives the station observer directly:
// alternating transitions are clean, a repeated transition and a
// time-travelling transition are violations.
func TestStationWatchTimeline(t *testing.T) {
	inv := NewInvariants()
	w := &stationWatch{inv: inv}
	w.StateChanged(1*time.Second, true)
	w.StateChanged(2*time.Second, false)
	w.StateChanged(3*time.Second, true)
	if got := inv.Violations(); len(got) != 0 {
		t.Fatalf("clean alternation flagged: %v", got)
	}
	w.StateChanged(4*time.Second, true) // repeated state
	if got := inv.Violations(); len(got) != 1 || got[0].Rule != RuleTimeline {
		t.Fatalf("repeated transition not flagged: %v", got)
	}
	w.StateChanged(2500*time.Millisecond, false) // before the 3s transition
	found := false
	for _, v := range inv.Violations() {
		if v.Rule == RuleTimeline && strings.Contains(v.Detail, "before previous") {
			found = true
		}
	}
	if !found {
		t.Fatalf("backwards transition not flagged: %v", inv.Violations())
	}
}

// TestStationWatchArrivals: out-of-order and unphysical arrivals are
// violations.
func TestStationWatchArrivals(t *testing.T) {
	inv := NewInvariants()
	w := &stationWatch{inv: inv}
	ok := energy.Arrival{At: time.Second, Length: 100, Rate: 1e6, Wakelock: time.Second}
	w.ArrivalRecorded(time.Second, ok)
	if got := inv.Violations(); len(got) != 0 {
		t.Fatalf("valid arrival flagged: %v", got)
	}
	w.ArrivalRecorded(2*time.Second, energy.Arrival{At: 500 * time.Millisecond, Length: 100, Rate: 1e6})
	w.ArrivalRecorded(3*time.Second, energy.Arrival{At: 3 * time.Second, Length: 0, Rate: 1e6})
	rules := map[string]int{}
	for _, v := range inv.Violations() {
		rules[v.Rule]++
	}
	if rules[RuleArrivalOrder] != 2 {
		t.Fatalf("want 2 arrival-order violations, got %v", inv.Violations())
	}
}

// TestInvariantsConservation verifies the per-event conservation hook
// is genuinely exercised: the replay must move group frames through the
// whole enqueue → buffer → flush pipeline (every step re-checked after
// every event), and the equation must close at the end of the run.
func TestInvariantsConservation(t *testing.T) {
	tr, err := oracleTrace(trace.Starbucks, 0, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	n, err := core.NewNetwork(core.NetworkConfig{DTIMPeriod: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddStation(station.Legacy, nil); err != nil {
		t.Fatal(err)
	}
	inv := NewInvariants()
	inv.Watch(n)
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}
	if err := inv.Err(); err != nil {
		t.Fatalf("clean replay violated conservation: %v", err)
	}
	st := n.AP.Stats()
	if st.BeaconsSent == 0 || st.GroupFramesEnqueued == 0 || st.GroupFramesSent == 0 {
		t.Fatalf("pipeline not exercised: %+v", st)
	}
	if st.GroupFramesEnqueued != st.GroupFramesSent+n.AP.BufferedGroupFrames() {
		t.Fatalf("conservation open at end of run: %+v (buffered %d)", st, n.AP.BufferedGroupFrames())
	}
}
