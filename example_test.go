package hide_test

import (
	"fmt"
	"log"
	"time"

	"repro"
)

// ExampleCompareEnergy reproduces one cell of the paper's energy study:
// the Starbucks trace on a Nexus One.
func ExampleCompareEnergy() {
	tr, err := hide.GenerateTrace(hide.Starbucks)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := hide.CompareEnergy(tr, hide.NexusOne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receive-all %.1f mW\n", cmp.ReceiveAll.AvgPowerMW())
	fmt.Printf("HIDE:10%%    %.1f mW (saves %.0f%%)\n", cmp.HIDE[0].AvgPowerMW(), 100*cmp.Savings(0))
	// Output:
	// receive-all 57.4 mW
	// HIDE:10%    18.0 mW (saves 69%)
}

// ExampleCapacityOverhead checks the paper's worst-case capacity cost.
func ExampleCapacityOverhead() {
	params := hide.CapacityParams{
		HIDEFraction:    0.75,
		PortMsgInterval: 10 * time.Second,
		PortsPerMsg:     50,
	}
	c, err := hide.CapacityOverhead(hide.TableII(), params, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capacity decrease: %.3f%%\n", c*100)
	// Output:
	// capacity decrease: 0.125%
}

// ExampleDelayOverhead checks the paper's worst-case RTT cost.
func ExampleDelayOverhead() {
	d, err := hide.DelayOverhead(hide.DelayDefaults())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RTT increase: %.2f%%\n", d*100)
	// Output:
	// RTT increase: 2.33%
}

// ExampleNewNetwork runs the live protocol simulation: a HIDE phone
// under a HIDE AP sleeps through traffic for ports it never opened.
func ExampleNewNetwork() {
	net, err := hide.NewNetwork(hide.NetworkConfig{SSID: "demo", HIDE: true})
	if err != nil {
		log.Fatal(err)
	}
	phone, err := net.AddStation(hide.StationHIDE, []uint16{5353})
	if err != nil {
		log.Fatal(err)
	}

	cfg := hide.ScenarioConfig(hide.Starbucks)
	cfg.Duration = 2 * time.Minute
	tr, err := hide.GenerateTraceConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Replay(tr); err != nil {
		log.Fatal(err)
	}
	s := phone.Stats()
	fmt.Printf("trace frames: %d, received: %d, useful: %d\n",
		len(tr.Frames), s.GroupReceived, s.GroupUseful)
	// Output:
	// trace frames: 49, received: 5, useful: 4
}

// ExampleSummarizeTrace characterizes a generated trace.
func ExampleSummarizeTrace() {
	tr, err := hide.GenerateTrace(hide.Starbucks)
	if err != nil {
		log.Fatal(err)
	}
	s := hide.SummarizeTrace(tr)
	fmt.Printf("frames: %d, mean %.2f fps, peak %d fps\n", s.Frames, s.MeanFPS, s.PeakFPS)
	// Output:
	// frames: 582, mean 0.32 fps, peak 4 fps
}

// ExampleOpenPortsForFraction picks ports covering a traffic share.
func ExampleOpenPortsForFraction() {
	tr, err := hide.GenerateTrace(hide.CSDept)
	if err != nil {
		log.Fatal(err)
	}
	open := hide.OpenPortsForFraction(tr, 0.10)
	useful := hide.TagByOpenPorts(tr, open)
	n := 0
	for _, u := range useful {
		if u {
			n++
		}
	}
	fmt.Printf("%d ports cover %.1f%% of frames\n", len(open), 100*float64(n)/float64(len(tr.Frames)))
	// Output:
	// 3 ports cover 7.5% of frames
}
