// Package core wires the substrates together into the paper's
// trace-driven evaluation pipeline (Section VI-A): it applies a
// traffic-management policy to a tagged broadcast trace, runs the
// Section IV energy model, and produces the rows of Figures 7, 8 and 9.
//
// The pipeline is context-aware and parallel: the *Context entry
// points fan independent evaluation cells over a worker pool
// (internal/engine) with a deterministic ordered reduction, so the
// parallel output is byte-identical to the sequential path for any
// worker count. The non-context forms are thin shims kept for
// compatibility.
//
// For the client-side solution the paper compares against "the lower
// bound energy consumption of the client-side solution derived by the
// authors" of [6]. This package computes that lower bound by sweeping
// the driver-processing wakelock the filter holds for a useless frame
// over a candidate set — from dropping instantly (cheap on sparse
// traffic, pathological suspend churn on dense traffic) up to the full
// 1 s wakelock (which degenerates to receive-all) — and keeping the
// cheapest outcome. By construction the lower bound never exceeds
// receive-all, matching the paper's "barely saves energy" observation
// on the heavy traces.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/trace"
)

// evalScratch is the per-worker scratch an evaluation cell needs: the
// usefulness vector and the arrival buffer. Cells take one from
// scratchPool and return it, so a suite run reuses a few buffers across
// its dozens of cells instead of allocating (and zeroing) fresh slices
// per cell. Nothing downstream retains either slice: policies write
// arrivals, energy.Compute reads them, and only the scalar Breakdown
// survives.
type evalScratch struct {
	useful   []bool
	arrivals []energy.Arrival
}

var scratchPool = sync.Pool{New: func() any { return new(evalScratch) }}

// clientSideSweep is the candidate driver-wakelock set for the
// client-side lower bound. The final candidate equals τ, i.e. the
// receive-all behaviour, so the lower bound is ≤ receive-all.
var clientSideSweep = []time.Duration{
	0,
	50 * time.Millisecond,
	100 * time.Millisecond,
	200 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// DefaultSeed is the usefulness-tagging seed an Options value selects
// when no seed was set explicitly.
const DefaultSeed uint64 = 0x51de

// Options tunes an evaluation. The zero value reproduces the paper's
// settings (Section VI-A2).
type Options struct {
	// Overhead is the HIDE protocol overhead configuration; the zero
	// value selects energy.DefaultOverhead() for HIDE policies.
	Overhead energy.Overhead
	// Seed drives usefulness tagging. When HasSeed is false a zero
	// Seed selects DefaultSeed; set HasSeed (or use WithSeed) to make
	// seed 0 itself selectable.
	Seed uint64
	// HasSeed marks Seed as explicitly chosen, so Seed == 0 means the
	// literal seed 0 rather than the default.
	HasSeed bool
	// Workers bounds the evaluation parallelism of the suite-level
	// entry points: 0 selects runtime.GOMAXPROCS(0), 1 forces the
	// sequential path. The output is identical either way.
	Workers int
	// Cohort caps the number of clients folded into one cohort station
	// in scaling runs (ScaleClientsOptions): 0 or 1 models every client
	// individually, larger values chunk each port class into cohorts of
	// at most Cohort members, enabling 10⁵–10⁶ client populations.
	Cohort int
	// WindowWorkers switches protocol-simulation runs (the scaling
	// entry points) to the windowed-parallel assembly
	// (WindowedNetwork): stations advance through one DTIM window per
	// barrier on up to WindowWorkers goroutines, with AP-side effects
	// merged serially. 0 keeps the legacy single-engine Network; any
	// value ≥ 1 selects windowed mode with that concurrency bound — the
	// output is byte-identical for every WindowWorkers ≥ 1, and 1 is
	// the sequential reference the equivalence suite compares against.
	// The analytic pipeline (RunSuiteContext et al.) has no event-driven
	// simulation to window and ignores the field; its parallelism knob
	// is Workers.
	WindowWorkers int
}

// WithSeed returns a copy of o selecting the tagging seed explicitly
// (including seed 0, which the Seed field alone cannot express).
func (o Options) WithSeed(seed uint64) Options {
	o.Seed = seed
	o.HasSeed = true
	return o
}

// normalized fills defaults.
func (o Options) normalized() Options {
	if o.Overhead == (energy.Overhead{}) {
		o.Overhead = energy.DefaultOverhead()
	}
	if !o.HasSeed && o.Seed == 0 {
		o.Seed = DefaultSeed
	}
	o.HasSeed = true
	return o
}

// Result is one evaluated (trace, device, policy, useful%) cell.
type Result struct {
	// Trace is the scenario name.
	Trace string
	// Device is the profile name.
	Device string
	// Policy identifies the solution evaluated.
	Policy policy.Kind
	// UsefulFraction is the fraction of broadcast frames useful to the
	// client (the x-axis annotation of Figures 7-8).
	UsefulFraction float64
	// Breakdown carries the energy components and suspend fraction.
	Breakdown energy.Breakdown
	// DriverWakelock is the wakelock chosen by the client-side
	// lower-bound sweep (zero for other policies).
	DriverWakelock time.Duration
}

// AvgPowerMW returns the average power in milliwatts, the y-axis of
// Figures 7 and 8.
func (r Result) AvgPowerMW() float64 { return r.Breakdown.AvgPowerW() * 1000 }

// EvaluateContext runs one policy over a tagged trace for one device,
// honouring ctx between pipeline stages.
func EvaluateContext(ctx context.Context, tr *trace.Trace, useful []bool, dev energy.Profile, kind policy.Kind, opts Options) (Result, error) {
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	return evaluateScratch(ctx, tr, useful, dev, kind, opts, sc)
}

// evaluateScratch is EvaluateContext building arrivals in sc's reused
// buffer. The arrival values are exactly what the policy's Apply would
// produce, so every Breakdown is bit-identical to the allocating path.
func evaluateScratch(ctx context.Context, tr *trace.Trace, useful []bool, dev energy.Profile, kind policy.Kind, opts Options, sc *evalScratch) (Result, error) {
	opts = opts.normalized()
	res := Result{
		Trace:          tr.Name,
		Device:         dev.Name,
		Policy:         kind,
		UsefulFraction: trace.UsefulFraction(useful),
	}
	cfg := energy.Config{Device: dev, Duration: tr.Duration}
	if kind.HasOverhead() {
		cfg.Overhead = opts.Overhead
	}

	if kind == policy.ClientSide {
		// Build the arrivals once with a zero driver wakelock (the first
		// sweep candidate), then re-stamp only the useless frames' Wakelock
		// per candidate: arrivals and frames index 1:1 for this policy, and
		// every other field is candidate-independent.
		arr, err := policy.AppendArrivals(sc.arrivals[:0], policy.ClientSidePolicy{}, tr, useful)
		if err != nil {
			return Result{}, err
		}
		sc.arrivals = arr
		best := false
		for _, wl := range clientSideSweep {
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
			for i := range arr {
				if !useful[i] {
					arr[i].Wakelock = wl
				}
			}
			b, err := energy.Compute(arr, cfg)
			if err != nil {
				return Result{}, err
			}
			if !best || b.TotalJ() < res.Breakdown.TotalJ() {
				best = true
				res.Breakdown = b
				res.DriverWakelock = wl
			}
		}
		return res, nil
	}

	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	p, err := policy.New(kind)
	if err != nil {
		return Result{}, err
	}
	arr, err := policy.AppendArrivals(sc.arrivals[:0], p, tr, useful)
	if err != nil {
		return Result{}, err
	}
	sc.arrivals = arr
	b, err := energy.Compute(arr, cfg)
	if err != nil {
		return Result{}, err
	}
	res.Breakdown = b
	return res, nil
}

// Evaluate runs one policy over a tagged trace for one device.
func Evaluate(tr *trace.Trace, useful []bool, dev energy.Profile, kind policy.Kind, opts Options) (Result, error) {
	return EvaluateContext(context.Background(), tr, useful, dev, kind, opts)
}

// EvaluateFractionContext tags the trace with a uniform useful
// fraction and evaluates the policy.
func EvaluateFractionContext(ctx context.Context, tr *trace.Trace, fraction float64, dev energy.Profile, kind policy.Kind, opts Options) (Result, error) {
	if fraction < 0 || fraction > 1 {
		return Result{}, fmt.Errorf("core: useful fraction %v outside [0, 1]", fraction)
	}
	opts = opts.normalized()
	sc := scratchPool.Get().(*evalScratch)
	defer scratchPool.Put(sc)
	sc.useful = trace.TagUniformInto(sc.useful[:0], tr, fraction, opts.Seed)
	return evaluateScratch(ctx, tr, sc.useful, dev, kind, opts, sc)
}

// EvaluateFraction tags the trace with a uniform useful fraction and
// evaluates the policy.
func EvaluateFraction(tr *trace.Trace, fraction float64, dev energy.Profile, kind policy.Kind, opts Options) (Result, error) {
	return EvaluateFractionContext(context.Background(), tr, fraction, dev, kind, opts)
}

// UsefulFractions is the sweep of Figures 7-8: 10%, 8%, 6%, 4%, 2%.
var UsefulFractions = []float64{0.10, 0.08, 0.06, 0.04, 0.02}

// EnergyComparison is one trace's worth of Figure 7/8 bars: the
// receive-all bar, the client-side lower bound, and one HIDE bar per
// useful fraction.
type EnergyComparison struct {
	Trace      string
	Device     string
	ReceiveAll Result
	ClientSide Result
	HIDE       []Result // indexed like UsefulFractions
}

// Savings returns HIDE's energy saving versus receive-all for the i-th
// useful fraction, as a fraction in [0, 1].
func (c EnergyComparison) Savings(i int) float64 {
	ra := c.ReceiveAll.Breakdown.TotalJ()
	if ra <= 0 {
		return 0
	}
	return 1 - c.HIDE[i].Breakdown.TotalJ()/ra
}

// SavingsVsClientSide returns HIDE's saving versus the client-side
// lower bound for the i-th useful fraction.
func (c EnergyComparison) SavingsVsClientSide(i int) float64 {
	cs := c.ClientSide.Breakdown.TotalJ()
	if cs <= 0 {
		return 0
	}
	return 1 - c.HIDE[i].Breakdown.TotalJ()/cs
}

// compareBars lists the (policy, fraction) bars of one Figure 7/8
// comparison, in presentation order. The receive-all and client-side
// rows use the 10% tagging, like the paper's first two bars.
func compareBars() []evalCell {
	bars := []evalCell{
		{kind: policy.ReceiveAll, fraction: 0.10},
		{kind: policy.ClientSide, fraction: 0.10},
	}
	for _, f := range UsefulFractions {
		bars = append(bars, evalCell{kind: policy.HIDE, fraction: f})
	}
	return bars
}

// evalCell is one (policy, fraction) evaluation of a fixed trace.
type evalCell struct {
	kind     policy.Kind
	fraction float64
}

// CompareEnergyContext evaluates all Figure 7/8 bars for one trace and
// device, fanning the bars over the configured worker pool.
func CompareEnergyContext(ctx context.Context, tr *trace.Trace, dev energy.Profile, opts Options) (EnergyComparison, error) {
	out := EnergyComparison{Trace: tr.Name, Device: dev.Name}
	bars := compareBars()
	res, err := engine.Map(ctx, opts.Workers, len(bars), func(ctx context.Context, i int) (Result, error) {
		return EvaluateFractionContext(ctx, tr, bars[i].fraction, dev, bars[i].kind, opts)
	})
	if err != nil {
		return out, err
	}
	out.ReceiveAll = res[0]
	out.ClientSide = res[1]
	out.HIDE = res[2:]
	return out, nil
}

// CompareEnergy evaluates all Figure 7/8 bars for one trace and device.
func CompareEnergy(tr *trace.Trace, dev energy.Profile, opts Options) (EnergyComparison, error) {
	return CompareEnergyContext(context.Background(), tr, dev, opts)
}

// SuspendRow is one trace's worth of Figure 9 bars: the fraction of
// time in suspend mode under each solution.
type SuspendRow struct {
	Trace      string
	Device     string
	ReceiveAll float64
	ClientSide float64
	HIDE10     float64
	HIDE2      float64
}

// suspendBars lists the four Figure 9 evaluations in row order.
var suspendBars = []evalCell{
	{kind: policy.ReceiveAll, fraction: 0.10},
	{kind: policy.ClientSide, fraction: 0.10},
	{kind: policy.HIDE, fraction: 0.10},
	{kind: policy.HIDE, fraction: 0.02},
}

// SuspendFractionsContext evaluates the Figure 9 row for one trace and
// device on the configured worker pool.
func SuspendFractionsContext(ctx context.Context, tr *trace.Trace, dev energy.Profile, opts Options) (SuspendRow, error) {
	row := SuspendRow{Trace: tr.Name, Device: dev.Name}
	res, err := engine.Map(ctx, opts.Workers, len(suspendBars), func(ctx context.Context, i int) (Result, error) {
		return EvaluateFractionContext(ctx, tr, suspendBars[i].fraction, dev, suspendBars[i].kind, opts)
	})
	if err != nil {
		return row, err
	}
	row.ReceiveAll = res[0].Breakdown.SuspendFraction
	row.ClientSide = res[1].Breakdown.SuspendFraction
	row.HIDE10 = res[2].Breakdown.SuspendFraction
	row.HIDE2 = res[3].Breakdown.SuspendFraction
	return row, nil
}

// SuspendFractions evaluates the Figure 9 row for one trace and device.
func SuspendFractions(tr *trace.Trace, dev energy.Profile, opts Options) (SuspendRow, error) {
	return SuspendFractionsContext(context.Background(), tr, dev, opts)
}

// Suite evaluates Figures 7/8 and 9 across all five scenarios for one
// device, generating the calibrated synthetic traces.
type Suite struct {
	Device      energy.Profile
	Comparisons []EnergyComparison // one per scenario
	Suspend     []SuspendRow       // one per scenario
}

// suiteJob is one deduplicated evaluation cell of the full suite grid:
// a (scenario, policy, fraction) triple. The Figure 9 row shares its
// receive-all, client-side, HIDE:10% and HIDE:2% cells with the
// Figure 7/8 bars, so the grid is deduplicated before scheduling.
type suiteJob struct {
	scenario trace.Scenario
	cell     evalCell
}

// suiteJobs flattens the full suite into a deterministic, deduplicated
// job list covering every Figure 7/8 bar and Figure 9 column.
func suiteJobs() []suiteJob {
	var jobs []suiteJob
	seen := make(map[suiteJob]bool)
	add := func(j suiteJob) {
		if !seen[j] {
			seen[j] = true
			jobs = append(jobs, j)
		}
	}
	for _, sc := range trace.Scenarios {
		for _, bar := range compareBars() {
			add(suiteJob{scenario: sc, cell: bar})
		}
		for _, bar := range suspendBars {
			add(suiteJob{scenario: sc, cell: bar})
		}
	}
	return jobs
}

// RunSuiteContext generates all scenario traces (through the shared
// memoized trace cache) and evaluates the full figure set for the
// device, fanning the deduplicated evaluation cells over the worker
// pool configured by opts.Workers. The result is byte-identical to the
// sequential path for any worker count.
func RunSuiteContext(ctx context.Context, dev energy.Profile, opts Options) (*Suite, error) {
	opts = opts.normalized()
	jobs := suiteJobs()
	res, err := engine.Map(ctx, opts.Workers, len(jobs), func(ctx context.Context, i int) (Result, error) {
		j := jobs[i]
		tr, err := engine.Traces.Scenario(j.scenario)
		if err != nil {
			return Result{}, fmt.Errorf("core: generating %v: %w", j.scenario, err)
		}
		r, err := EvaluateFractionContext(ctx, tr, j.cell.fraction, dev, j.cell.kind, opts)
		if err != nil {
			return Result{}, fmt.Errorf("core: evaluating %v %v@%g%%: %w", j.scenario, j.cell.kind, j.cell.fraction*100, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	byJob := make(map[suiteJob]Result, len(jobs))
	for i, j := range jobs {
		byJob[j] = res[i]
	}
	s := &Suite{Device: dev}
	for _, sc := range trace.Scenarios {
		name := ""
		cmp := EnergyComparison{Device: dev.Name}
		for i, bar := range compareBars() {
			r := byJob[suiteJob{scenario: sc, cell: bar}]
			name = r.Trace
			switch i {
			case 0:
				cmp.ReceiveAll = r
			case 1:
				cmp.ClientSide = r
			default:
				cmp.HIDE = append(cmp.HIDE, r)
			}
		}
		cmp.Trace = name
		s.Comparisons = append(s.Comparisons, cmp)
		row := SuspendRow{Trace: name, Device: dev.Name}
		row.ReceiveAll = byJob[suiteJob{scenario: sc, cell: suspendBars[0]}].Breakdown.SuspendFraction
		row.ClientSide = byJob[suiteJob{scenario: sc, cell: suspendBars[1]}].Breakdown.SuspendFraction
		row.HIDE10 = byJob[suiteJob{scenario: sc, cell: suspendBars[2]}].Breakdown.SuspendFraction
		row.HIDE2 = byJob[suiteJob{scenario: sc, cell: suspendBars[3]}].Breakdown.SuspendFraction
		s.Suspend = append(s.Suspend, row)
	}
	return s, nil
}

// RunSuite generates all scenario traces and evaluates the full figure
// set for the device.
func RunSuite(dev energy.Profile, opts Options) (*Suite, error) {
	return RunSuiteContext(context.Background(), dev, opts)
}

// SavingsRange returns the min and max HIDE saving versus receive-all
// across the suite's scenarios for the given useful-fraction index —
// the paper's headline "34%-75%" style ranges.
func (s *Suite) SavingsRange(i int) (lo, hi float64) {
	lo, hi = 1, 0
	for _, c := range s.Comparisons {
		v := c.Savings(i)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
