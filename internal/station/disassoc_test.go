package station

import (
	"testing"
	"time"

	"repro/internal/dot11"
)

// TestAPInitiatedDisassoc delivers a drain-style disassociation frame
// from the AP and checks the station detaches without replying.
func TestAPInitiatedDisassoc(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{5353})
	a.Start()
	eng.RunUntil(200 * time.Millisecond)
	if !st.Associated() {
		t.Fatal("setup: not associated")
	}

	eng.MustScheduleAt(210*time.Millisecond, func(now time.Duration) {
		d := &dot11.Disassoc{
			Header: dot11.MACHeader{Addr1: st.Addr(), Addr2: bssid, Addr3: bssid},
			Reason: dot11.ReasonUnspecified,
		}
		st.Receive(d.Marshal(), dot11.Rate1Mbps, now)
	})
	eng.RunUntil(300 * time.Millisecond)

	if st.Associated() {
		t.Fatal("station still associated after AP disassoc")
	}
	if st.Stats().DisassocsReceived != 1 {
		t.Fatalf("DisassocsReceived = %d, want 1", st.Stats().DisassocsReceived)
	}
	if !st.Suspended() {
		t.Fatal("suspend timeline not closed after disassoc")
	}
	// The AP removed the association itself; the station must not have
	// transmitted a disassociation back (AP's counter stays zero).
	if a.Stats().Disassociations != 0 {
		t.Fatalf("station answered an AP disassoc with its own: %d", a.Stats().Disassociations)
	}
}

// TestDisassocFromWrongBSSIgnored checks frames from a foreign BSS or
// addressed to another station do not detach this one.
func TestDisassocFromWrongBSS(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, nil)
	a.Start()
	eng.RunUntil(200 * time.Millisecond)

	other := dot11.MACAddr{2, 9, 9, 9, 9, 9}
	eng.MustScheduleAt(210*time.Millisecond, func(now time.Duration) {
		// Foreign BSS.
		d := &dot11.Disassoc{Header: dot11.MACHeader{Addr1: st.Addr(), Addr2: other, Addr3: other}}
		st.Receive(d.Marshal(), dot11.Rate1Mbps, now)
		// Right BSS, another station's address.
		d2 := &dot11.Disassoc{Header: dot11.MACHeader{Addr1: other, Addr2: bssid, Addr3: bssid}}
		st.Receive(d2.Marshal(), dot11.Rate1Mbps, now)
	})
	eng.RunUntil(300 * time.Millisecond)

	if !st.Associated() {
		t.Fatal("station detached on a frame not addressed to it")
	}
	if st.Stats().DisassocsReceived != 0 {
		t.Fatalf("DisassocsReceived = %d, want 0", st.Stats().DisassocsReceived)
	}
}

// TestAbandonAllowsReassociation detaches locally (dead AP) and checks
// a fresh association works afterwards.
func TestAbandonAllowsReassociation(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, []uint16{53})
	a.Start()
	eng.RunUntil(200 * time.Millisecond)

	eng.MustScheduleAt(210*time.Millisecond, func(time.Duration) {
		st.Abandon()
	})
	eng.RunUntil(220 * time.Millisecond)
	if st.Associated() {
		t.Fatal("still associated after Abandon")
	}

	// The AP still holds the old association (the station could not
	// tell it anything — it was "dead"); drop it so the fresh exchange
	// allocates cleanly, as a restarted AP would have.
	eng.MustScheduleAt(230*time.Millisecond, func(time.Duration) {
		a.Disassociate(st.Addr())
		st.StartAssociation("t")
	})
	eng.RunUntil(time.Second)

	if !st.Associated() {
		t.Fatal("re-association after Abandon failed")
	}
	if !a.Table().Listening(53, st.AID()) {
		t.Fatal("ports not re-registered after Abandon + re-association")
	}
}

// TestLastBeaconAt tracks the accessor across the timeline.
func TestLastBeaconAt(t *testing.T) {
	eng, a, st := rig(t, HIDE, true, nil)
	if _, ok := st.LastBeaconAt(); ok {
		t.Fatal("LastBeaconAt reported a beacon before any was heard")
	}
	a.Start()
	eng.RunUntil(300 * time.Millisecond)
	at, ok := st.LastBeaconAt()
	if !ok || at <= 0 {
		t.Fatalf("LastBeaconAt = %v,%v after beacons", at, ok)
	}
}
