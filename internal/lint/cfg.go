// Control-flow graphs for the flow-aware analyzers. The syntactic
// checks inherited from the first hidelint generation inspect the AST
// in isolation; the invariants added since — shared immutable frame
// buffers, balanced RNG draw streams, joined shard goroutines, balanced
// pool acquisitions — are properties of PATHS through a function, so
// they need a (small) control-flow layer to be machine-checkable.
//
// buildCFG lowers one function body to basic blocks of statements with
// successor edges. The graph is intraprocedural and deliberately
// simple: expressions are not decomposed (a whole statement is the unit
// of transfer), defers are recorded on the graph rather than threaded
// into the edges, and calls that provably never return (panic, os.Exit,
// log.Fatal*, internal/cli.Exit/Usagef/Abort, testing's Fatal/Skip
// family) terminate their path into a dedicated panic-exit block so
// "every exit path" checks can reason about clean returns separately
// from unwinding. See DESIGN.md §11 for the soundness limits.
package lint

import (
	"go/ast"
	"go/types"
)

// A cfgBlock is one basic block: a maximal run of statements with a
// single entry, plus its successor edges.
type cfgBlock struct {
	index int
	// stmts are the statements executed in order. Control transfers
	// happen only after the last statement.
	stmts []ast.Stmt
	succs []*cfgBlock
}

// A funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry *cfgBlock
	// exit is the single normal-return block (every return statement and
	// the fall-off-the-end path lead here). It holds no statements.
	exit *cfgBlock
	// panicExit collects paths that leave through panic or a
	// never-returns call. Checks about clean returns skip these edges.
	panicExit *cfgBlock
	blocks    []*cfgBlock
	// defers are the defer statements anywhere in the body, in source
	// order. They run on every exit (normal or unwinding), so path
	// checks treat a satisfying defer as covering all exits.
	defers []*ast.DeferStmt
}

// cfgBuilder carries the under-construction graph.
type cfgBuilder struct {
	g    *funcCFG
	cur  *cfgBlock
	info *types.Info

	// break/continue targets of the enclosing loop/switch stack.
	breakTargets    []*cfgBlock
	continueTargets []*cfgBlock
	// labeled break/continue/goto targets by label name.
	labelBreak    map[string]*cfgBlock
	labelContinue map[string]*cfgBlock
	labelBlocks   map[string]*cfgBlock
	// gotos seen before their label's block exists, patched at the end.
	pendingGotos map[string][]*cfgBlock
}

// buildCFG lowers body to basic blocks. info resolves callees for
// never-returns classification; it may be nil in tests.
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{
		g:             g,
		info:          info,
		labelBreak:    make(map[string]*cfgBlock),
		labelContinue: make(map[string]*cfgBlock),
		labelBlocks:   make(map[string]*cfgBlock),
		pendingGotos:  make(map[string][]*cfgBlock),
	}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	g.panicExit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List)
	b.jump(g.exit) // fall off the end
	for label, srcs := range b.pendingGotos {
		if tgt, ok := b.labelBlocks[label]; ok {
			for _, src := range srcs {
				src.succs = append(src.succs, tgt)
			}
		}
	}
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

// jump ends the current block with an edge to tgt and leaves the
// builder on a fresh unreachable block (so statements after a return
// still land somewhere without corrupting the graph).
func (b *cfgBuilder) jump(tgt *cfgBlock) {
	b.cur.succs = append(b.cur.succs, tgt)
	b.cur = b.newBlock()
}

// startBlock links the current block to next and continues there.
func (b *cfgBuilder) startBlock(next *cfgBlock) {
	b.cur.succs = append(b.cur.succs, next)
	b.cur = next
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.stmts = append(b.cur.stmts, s) // condition evaluates here
		thenB := b.newBlock()
		elseB := b.newBlock()
		join := b.newBlock()
		b.cur.succs = append(b.cur.succs, thenB, elseB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.cur.succs = append(b.cur.succs, join)
		b.cur = elseB
		if s.Else != nil {
			b.stmt(s.Else)
		}
		b.cur.succs = append(b.cur.succs, join)
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			head.stmts = append(head.stmts, &ast.ExprStmt{X: s.Cond})
			head.succs = append(head.succs, body, exit)
		} else {
			head.succs = append(head.succs, body)
			// No condition: the only way out is break/return, but keep an
			// exit edge off the (possibly empty) post block unreachable.
		}
		b.pushLoop(exit, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.cur.succs = append(b.cur.succs, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.cur.succs = append(b.cur.succs, head)
		b.cur = exit

	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: s.X})
		b.startBlock(head)
		// The per-iteration key/value assignment happens at the head.
		head.stmts = append(head.stmts, s)
		head.succs = append(head.succs, body, exit)
		b.pushLoop(exit, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.cur.succs = append(b.cur.succs, head)
		b.cur = exit

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: s.Tag})
		}
		b.switchBody(s.Body, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.stmts = append(b.cur.stmts, s.Assign)
		b.switchBody(s.Body, nil)

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock()
		b.pushSwitch(join)
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseB := b.newBlock()
			head.succs = append(head.succs, caseB)
			b.cur = caseB
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			b.cur.succs = append(b.cur.succs, join)
		}
		_ = hasDefault // a select without default still picks some case
		b.popSwitch()
		b.cur = join

	case *ast.ReturnStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		b.jump(b.g.exit)

	case *ast.BranchStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		switch s.Tok.String() {
		case "break":
			b.jump(b.branchTarget(s, b.breakTargets, b.labelBreak))
		case "continue":
			b.jump(b.branchTarget(s, b.continueTargets, b.labelContinue))
		case "goto":
			if s.Label != nil {
				if tgt, ok := b.labelBlocks[s.Label.Name]; ok {
					b.jump(tgt)
				} else {
					src := b.cur
					b.cur = b.newBlock()
					b.pendingGotos[s.Label.Name] = append(b.pendingGotos[s.Label.Name], src)
				}
			}
		case "fallthrough":
			// switchBody wires fallthrough edges; nothing to do here.
		}

	case *ast.LabeledStmt:
		tgt := b.newBlock()
		b.labelBlocks[s.Label.Name] = tgt
		b.startBlock(tgt)
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			// Register the label's break/continue targets by peeking at
			// the loop the inner statement will build: run it and patch.
			exit := b.labeledLoop(s.Label.Name, inner)
			_ = exit
		default:
			b.stmt(s.Stmt)
		}

	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, s)
		b.cur.stmts = append(b.cur.stmts, s)

	case *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.EmptyStmt:
		b.cur.stmts = append(b.cur.stmts, s)

	case *ast.ExprStmt:
		b.cur.stmts = append(b.cur.stmts, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.neverReturns(call) {
			b.jump(b.g.panicExit)
		}

	default:
		if s != nil {
			b.cur.stmts = append(b.cur.stmts, s)
		}
	}
}

// labeledLoop builds a labeled for/range loop so `break label` and
// `continue label` resolve. It mirrors the unlabeled lowering but
// registers the label targets before descending into the body.
func (b *cfgBuilder) labeledLoop(label string, s ast.Stmt) *cfgBlock {
	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			head.stmts = append(head.stmts, &ast.ExprStmt{X: s.Cond})
			head.succs = append(head.succs, body, exit)
		} else {
			head.succs = append(head.succs, body)
		}
		b.labelBreak[label] = exit
		b.labelContinue[label] = post
		b.pushLoop(exit, post)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.cur.succs = append(b.cur.succs, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.cur.succs = append(b.cur.succs, head)
		b.cur = exit
		return exit
	case *ast.RangeStmt:
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.cur.stmts = append(b.cur.stmts, &ast.ExprStmt{X: s.X})
		b.startBlock(head)
		head.stmts = append(head.stmts, s)
		head.succs = append(head.succs, body, exit)
		b.labelBreak[label] = exit
		b.labelContinue[label] = head
		b.pushLoop(exit, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.cur.succs = append(b.cur.succs, head)
		b.cur = exit
		return exit
	}
	return nil
}

// switchBody lowers the case clauses of a switch/type switch: every
// case body is a successor of the current block, fallthrough chains to
// the next body, break (and the end of a body) goes to the join block.
func (b *cfgBuilder) switchBody(body *ast.BlockStmt, _ *cfgBlock) {
	head := b.cur
	join := b.newBlock()
	b.pushSwitch(join)
	var caseBlocks []*cfgBlock
	var clauses []*ast.CaseClause
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		caseBlocks = append(caseBlocks, b.newBlock())
		clauses = append(clauses, cc)
	}
	hasDefault := false
	for i, cc := range clauses {
		head.succs = append(head.succs, caseBlocks[i])
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = caseBlocks[i]
		b.stmtList(cc.Body)
		// fallthrough must be the last statement of a body.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i+1 < len(caseBlocks) {
				b.cur.succs = append(b.cur.succs, caseBlocks[i+1])
				continue
			}
		}
		b.cur.succs = append(b.cur.succs, join)
	}
	if !hasDefault {
		head.succs = append(head.succs, join) // no case matched
	}
	b.popSwitch()
	b.cur = join
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushSwitch(brk *cfgBlock) {
	b.breakTargets = append(b.breakTargets, brk)
}

func (b *cfgBuilder) popSwitch() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}

// branchTarget resolves break/continue, labeled or not. Unresolvable
// targets (malformed code) jump to the normal exit so analysis stays
// conservative rather than crashing.
func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, stack []*cfgBlock, labeled map[string]*cfgBlock) *cfgBlock {
	if s.Label != nil {
		if tgt, ok := labeled[s.Label.Name]; ok {
			return tgt
		}
		return b.g.exit
	}
	if len(stack) > 0 {
		return stack[len(stack)-1]
	}
	return b.g.exit
}

// neverReturns reports whether the statement-level call provably does
// not return: the panic builtin, os.Exit, runtime.Goexit, the
// log.Fatal/Panic family, internal/cli's process terminators, and
// testing's FailNow/Fatal/Skip family (which Goexit).
func (b *cfgBuilder) neverReturns(call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if b.info == nil {
			return true
		}
		if _, isBuiltin := b.info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	if b.info == nil {
		return false
	}
	fn := funcObj(b.info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "os":
		return name == "Exit"
	case "runtime":
		return name == "Goexit"
	case "log":
		switch name {
		case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
			return true
		}
	case "testing":
		switch name {
		case "FailNow", "Fatal", "Fatalf", "SkipNow", "Skip", "Skipf":
			return true
		}
	default:
		if isPkgFunc(fn, fn.Pkg().Path(), name) && pkgIsInternalCLI(fn.Pkg().Path()) {
			switch name {
			case "Exit", "Usagef", "Abort":
				return true
			}
		}
	}
	return false
}

// pkgIsInternalCLI matches the module's internal/cli package without
// hard-coding the module path.
func pkgIsInternalCLI(path string) bool {
	return path == "repro/internal/cli" ||
		// Fixture packages type-check under synthetic module paths.
		len(path) > len("/internal/cli") && path[len(path)-len("/internal/cli"):] == "/internal/cli"
}

// blockSeen is a reusable visited set for CFG walks.
type blockSeen map[*cfgBlock]bool

// allPathsHit reports whether every path from `from` (starting at
// statement index fromIdx within it) to the normal exit passes a
// statement satisfying hit. Paths into the panic exit are not
// required to hit (unwinding runs defers; callers model defers
// separately). Cycles that never reach the exit trivially satisfy.
func (g *funcCFG) allPathsHit(from *cfgBlock, fromIdx int, hit func(ast.Stmt) bool) bool {
	for _, s := range from.stmts[fromIdx:] {
		if hit(s) {
			return true
		}
	}
	seen := blockSeen{}
	var walk func(b *cfgBlock) bool
	walk = func(b *cfgBlock) bool {
		if b == g.exit {
			return false // reached a clean return without a hit
		}
		if b == g.panicExit || seen[b] {
			return true
		}
		seen[b] = true
		for _, s := range b.stmts {
			if hit(s) {
				return true
			}
		}
		for _, s := range b.succs {
			if !walk(s) {
				return false
			}
		}
		return true
	}
	for _, s := range from.succs {
		if !walk(s) {
			return false
		}
	}
	return true
}

// evaluatedNodes returns the parts of a block statement that execute
// AT that point in the graph. Compound statements appear in a block
// only for their condition/assign part — their bodies live in
// successor blocks — so analyzers must not ast.Inspect the whole node
// or they would double-count nested blocks.
func evaluatedNodes(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		return []ast.Node{s.Cond}
	case *ast.RangeStmt:
		// The range expression is emitted as its own ExprStmt before the
		// head; the head's RangeStmt stands for the per-iteration
		// key/value assignment, which evaluates nothing interesting.
		return nil
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
		*ast.ForStmt, *ast.BlockStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

// findStmt locates the block and statement index of a statement.
func (g *funcCFG) findStmt(target ast.Stmt) (*cfgBlock, int) {
	for _, b := range g.blocks {
		for i, s := range b.stmts {
			if s == target {
				return b, i
			}
		}
	}
	return nil, -1
}
