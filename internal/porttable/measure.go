package porttable

import (
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

// Measure reproduces the paper's timing procedure (Section VI-B) on
// this machine's table implementation: initialize the table with
// N * 50% * portsPerClient random (port, AID) pairs, then time 10
// repeated runs of 100 delete, insert, and lookup operations and
// return the mean per-operation durations.
//
// A modern CPU is far faster than the router-class hardware the paper
// measured, so figure reproduction uses CalibratedARM() by default;
// Measure exists to exercise the real implementation (and to let users
// on actual AP hardware measure their own constants).
func Measure(n int, portsPerClient int, seed uint64) OpTimings {
	const (
		runs      = 10
		opsPerRun = 100
	)
	r := sim.NewRNG(seed)
	t := New()
	clients := n / 2
	if clients < 1 {
		clients = 1
	}
	for c := 1; c <= clients; c++ {
		ports := make([]uint16, portsPerClient)
		for i := range ports {
			ports[i] = uint16(1024 + r.Intn(60000))
		}
		t.Update(dot11.AID(c), ports)
	}

	// Pre-draw the operation targets so RNG time stays out of the
	// measured loops.
	targets := make([]uint16, runs*opsPerRun)
	aids := make([]dot11.AID, runs*opsPerRun)
	for i := range targets {
		targets[i] = uint16(1024 + r.Intn(60000))
		aids[i] = dot11.AID(1 + r.Intn(clients))
	}

	var del, ins, lp time.Duration
	for run := 0; run < runs; run++ {
		base := run * opsPerRun

		start := time.Now()
		for i := 0; i < opsPerRun; i++ {
			t.deleteOne(targets[base+i], aids[base+i])
		}
		del += time.Since(start)

		start = time.Now()
		for i := 0; i < opsPerRun; i++ {
			t.insertOne(targets[base+i], aids[base+i])
		}
		ins += time.Since(start)

		start = time.Now()
		for i := 0; i < opsPerRun; i++ {
			t.Lookup(targets[base+i])
		}
		lp += time.Since(start)
	}
	total := runs * opsPerRun
	return OpTimings{
		Delete: del / time.Duration(total),
		Insert: ins / time.Duration(total),
		Lookup: lp / time.Duration(total),
	}
}

// insertOne adds a single (port, aid) pair, bypassing the full
// client-refresh path; used by Measure to time the primitive.
func (t *Table) insertOne(port uint16, aid dot11.AID) {
	t.init()
	set := t.byPort[port]
	if set == nil {
		set = make(map[dot11.AID]struct{})
		t.byPort[port] = set
	}
	if _, ok := set[aid]; !ok {
		set[aid] = struct{}{}
		t.byClient[aid] = append(t.byClient[aid], port)
	}
	t.ops.Inserts++
}

// deleteOne removes a single (port, aid) pair; used by Measure.
func (t *Table) deleteOne(port uint16, aid dot11.AID) {
	t.init()
	if set := t.byPort[port]; set != nil {
		if _, ok := set[aid]; ok {
			delete(set, aid)
			if len(set) == 0 {
				delete(t.byPort, port)
			}
			ports := t.byClient[aid]
			for i, p := range ports {
				if p == port {
					t.byClient[aid] = append(ports[:i], ports[i+1:]...)
					break
				}
			}
		}
	}
	t.ops.Deletes++
}
