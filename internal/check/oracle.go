package check

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/policy"
	"repro/internal/station"
	"repro/internal/trace"
)

// Cell identifies one differential-oracle comparison: a policy run over
// a scenario trace for a device, at a seed perturbation of the
// scenario's calibrated generator seed (0 = the calibrated seed
// itself).
type Cell struct {
	Policy   policy.Kind
	Scenario trace.Scenario
	Device   energy.Profile
	Seed     uint64
}

// String labels the cell for reports.
func (c Cell) String() string {
	return fmt.Sprintf("%s/%s/%s/seed%d", c.Policy, c.Scenario, c.Device.Name, c.Seed)
}

// OracleConfig tunes a differential-oracle run.
type OracleConfig struct {
	// Duration truncates the scenario traces; zero keeps the paper's
	// full capture durations (30-60 min). Tests use a few minutes so
	// the protocol simulations stay fast.
	Duration time.Duration
	// UsefulTarget is the port-derived useful-traffic fraction (default
	// 0.10, the paper's headline sweep point). Both sides classify by
	// the same open-port set, so they agree on which frames are useful.
	UsefulTarget float64
	// Tolerance declares the agreement bands; the zero value selects
	// DefaultTolerance.
	Tolerance Tolerance
	// CheckInvariants attaches the runtime invariant checker to every
	// protocol run (on by default in tests, flag-gated in
	// cmd/crosscheck).
	CheckInvariants bool
	// Mutate, when non-nil, runs against the protocol network after the
	// station is attached and before the replay — the fault-injection
	// point used to demonstrate that a broken Algorithm 1 fails both
	// the oracle and the BTIM invariant.
	Mutate func(n *core.Network)
	// Workers bounds the sweep's parallelism: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the sequential path. The cell
	// results are identical for any worker count.
	Workers int
}

// normalized fills defaults.
func (c OracleConfig) normalized() OracleConfig {
	if c.UsefulTarget <= 0 {
		c.UsefulTarget = 0.10
	}
	c.Tolerance = c.Tolerance.normalized()
	return c
}

// CellResult is one compared cell: both sides' breakdowns, the
// per-component diffs, and any invariant violations from the protocol
// run.
type CellResult struct {
	Cell       Cell
	Analytic   energy.Breakdown
	Protocol   energy.Breakdown
	Diffs      []ComponentDiff
	Violations []Violation
}

// OK reports whether every component agreed and no invariant fired.
func (r CellResult) OK() bool {
	if len(r.Violations) > 0 {
		return false
	}
	for _, d := range r.Diffs {
		if !d.OK {
			return false
		}
	}
	return true
}

// Worst returns the component with the largest relative divergence.
func (r CellResult) Worst() ComponentDiff {
	var worst ComponentDiff
	for i, d := range r.Diffs {
		if i == 0 || d.Rel > worst.Rel {
			worst = d
		}
	}
	return worst
}

// oracleTrace generates the cell's trace: the scenario's calibrated
// configuration with the generator seed perturbed per oracle seed and
// the duration optionally shortened. Generation goes through the
// shared memoized cache, so concurrent cells of the same (scenario,
// seed, duration) share one trace.
func oracleTrace(s trace.Scenario, seed uint64, d time.Duration) (*trace.Trace, error) {
	cfg := trace.ScenarioConfig(s)
	if seed != 0 {
		cfg.Seed ^= seed * 0x9e3779b97f4a7c15
	}
	if d > 0 && d < cfg.Duration {
		cfg.Duration = d
	}
	return engine.Traces.Generate(cfg)
}

// alignDTIM maps the trace onto the delivery schedule the protocol
// simulation induces: the AP buffers every group frame until the beacon
// after its arrival (DTIMPeriod 1) and flushes the burst serially
// behind the beacon on the FIFO medium, rewriting the MoreData bit to
// chain the burst per 802.11. The returned trace carries end-of-airtime
// delivery times — what the station's radio records — so the analytic
// model prices the same reception schedule the protocol station sees.
// The paper's model treats trace timestamps as radio delivery times
// (its captures were client-side), so this transform is the oracle's
// bridge from distribution-system arrival times to delivery times.
//
// For the HIDE side (hide true, with the usefulness vector) the
// MoreData chain runs over each burst's useful subsequence instead:
// the HIDE policy drops the ride-along frames before the model sees
// them, so a bit pointing at a dropped frame would price a spurious
// idle-listening tail to the interval's end — in the protocol run the
// station's listen window closes with the burst, milliseconds later.
func alignDTIM(tr *trace.Trace, useful []bool, hide bool) *trace.Trace {
	phy := dot11.DefaultPHY()
	interval := dot11.DefaultBeaconInterval
	beaconAir := phy.FrameAirtime(representativeBeaconLen(hide)+dot11.FCSLen, dot11.Rate1Mbps)
	out := &trace.Trace{Name: tr.Name, Duration: tr.Duration}
	frames := tr.Frames
	for i := 0; i < len(frames); {
		flushAt := (frames[i].At/interval + 1) * interval
		j := i
		for j < len(frames) && frames[j].At/interval == frames[i].At/interval {
			j++
		}
		busy := flushAt + beaconAir
		for ; i < j; i++ {
			f := frames[i]
			start := busy + phy.DIFS
			busy = start + phy.FrameAirtime(f.Length+dot11.FCSLen, f.Rate)
			f.At = busy + phy.PropagationDelay
			if hide {
				f.MoreData = laterUseful(useful, i, j)
			} else {
				f.MoreData = i < j-1
			}
			out.Frames = append(out.Frames, f)
		}
	}
	return out
}

// laterUseful reports whether any frame after index i (exclusive) up to
// burst end j (exclusive) is useful.
func laterUseful(useful []bool, i, j int) bool {
	for k := i + 1; k < j; k++ {
		if useful[k] {
			return true
		}
	}
	return false
}

// representativeBeaconLen returns the marshalled length of the beacons
// the oracle's network emits (fixed SSID, empty TIM, and — for HIDE
// APs — a minimal BTIM), used to price the beacon's airtime ahead of
// each flushed burst.
func representativeBeaconLen(hide bool) int {
	b := &dot11.Beacon{
		Header: dot11.MACHeader{Addr1: dot11.Broadcast},
		SSID:   "hide-sim",
		TIM:    &dot11.TIM{},
	}
	if hide {
		btim := dot11.BTIMFromBitmap(&dot11.VirtualBitmap{})
		b.BTIM = &btim
	}
	raw, err := b.Marshal()
	if err != nil {
		// The beacon is a fixed literal; marshal cannot fail.
		panic(fmt.Sprintf("check: representative beacon marshal: %v", err))
	}
	return len(raw)
}

// modeFor maps the analytic policy to the protocol station mode.
func modeFor(k policy.Kind) (station.Mode, error) {
	switch k {
	case policy.ReceiveAll:
		return station.Legacy, nil
	case policy.ClientSide:
		return station.ClientSide, nil
	case policy.HIDE:
		return station.HIDE, nil
	default:
		return 0, fmt.Errorf("check: no protocol-station mode for policy %v", k)
	}
}

// protocolRun replays the trace through the frame-level simulation —
// real AP, real station, marshalled frames — and returns the station
// (whose arrival log prices the protocol side) plus any invariant
// violations. DTIMPeriod is 1 so group delivery is delayed by at most
// one beacon interval, which is what the tolerance bands price in.
func protocolRun(tr *trace.Trace, kind policy.Kind, open []uint16, seed uint64, cfg OracleConfig) (*station.Station, []Violation, error) {
	mode, err := modeFor(kind)
	if err != nil {
		return nil, nil, err
	}
	n, err := core.NewNetwork(core.NetworkConfig{
		DTIMPeriod: 1,
		HIDE:       kind == policy.HIDE,
		Seed:       seed,
	})
	if err != nil {
		return nil, nil, err
	}
	st, err := n.AddStation(mode, open)
	if err != nil {
		return nil, nil, err
	}
	var inv *Invariants
	if cfg.CheckInvariants {
		inv = NewInvariants()
		inv.Watch(n)
	}
	if cfg.Mutate != nil {
		cfg.Mutate(n)
	}
	if err := n.Replay(tr); err != nil {
		return nil, nil, err
	}
	var viol []Violation
	if inv != nil {
		inv.Finish(tr.Duration + dot11.DefaultBeaconInterval)
		viol = inv.Violations()
	}
	return st, viol, nil
}

// analyticBreakdown prices the cell on the analytic side: the policy
// filters the tagged trace and the Section IV model evaluates the
// result over the same window the protocol run covers.
func analyticBreakdown(tr *trace.Trace, useful []bool, kind policy.Kind, dev energy.Profile, window time.Duration) (energy.Breakdown, error) {
	p, err := policy.New(kind)
	if err != nil {
		return energy.Breakdown{}, err
	}
	arr, err := p.Apply(tr, useful)
	if err != nil {
		return energy.Breakdown{}, err
	}
	cfg := energy.Config{Device: dev, Duration: window}
	if kind.HasOverhead() {
		cfg.Overhead = energy.DefaultOverhead()
	}
	return energy.Compute(arr, cfg)
}

// Compare builds the per-component diff list between the two sides.
func Compare(analytic, protocol energy.Breakdown, tol Tolerance) []ComponentDiff {
	tol = tol.normalized()
	diffJ := func(name string, a, p, rel float64) ComponentDiff {
		r := relDiff(a, p)
		return ComponentDiff{
			Name: name, Analytic: a, Protocol: p, Rel: r,
			OK: r <= rel || absDiff(a, p) <= tol.AbsJ,
		}
	}
	sus := ComponentDiff{
		Name:     "suspend",
		Analytic: analytic.SuspendFraction,
		Protocol: protocol.SuspendFraction,
		Rel:      relDiff(analytic.SuspendFraction, protocol.SuspendFraction),
		OK:       absDiff(analytic.SuspendFraction, protocol.SuspendFraction) <= tol.AbsSuspend,
	}
	return []ComponentDiff{
		diffJ("Eb", analytic.EbJ, protocol.EbJ, tol.RelEb),
		diffJ("Ef", analytic.EfJ, protocol.EfJ, tol.RelEf),
		diffJ("Ewl", analytic.EwlJ, protocol.EwlJ, tol.RelEwl),
		diffJ("Est", analytic.EstJ, protocol.EstJ, tol.RelEst),
		diffJ("Eo", analytic.EoJ, protocol.EoJ, tol.RelEo),
		diffJ("total", analytic.TotalJ(), protocol.TotalJ(), tol.RelTotal),
		sus,
	}
}

// absDiff returns |a-b|.
func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// RunCell runs one full differential comparison: generate the trace,
// price it analytically, replay it through the protocol simulation,
// and diff the breakdowns.
func RunCell(c Cell, cfg OracleConfig) (CellResult, error) {
	cfg = cfg.normalized()
	tr, err := oracleTrace(c.Scenario, c.Seed, cfg.Duration)
	if err != nil {
		return CellResult{}, err
	}
	open := trace.OpenPortsForFraction(tr, cfg.UsefulTarget)
	useful := trace.TagByOpenPorts(tr, open)
	window := tr.Duration + dot11.DefaultBeaconInterval

	a, err := analyticBreakdown(alignDTIM(tr, useful, c.Policy == policy.HIDE), useful, c.Policy, c.Device, window)
	if err != nil {
		return CellResult{}, err
	}
	st, viol, err := protocolRun(tr, c.Policy, sortedPorts(open), c.Seed, cfg)
	if err != nil {
		return CellResult{}, err
	}
	p, err := protocolBreakdown(st, c.Policy, c.Device, window)
	if err != nil {
		return CellResult{}, err
	}
	return CellResult{
		Cell: c, Analytic: a, Protocol: p,
		Diffs:      Compare(a, p, cfg.Tolerance),
		Violations: viol,
	}, nil
}

// protocolBreakdown prices a protocol station's arrival log with the
// same model configuration the analytic side used.
func protocolBreakdown(st *station.Station, kind policy.Kind, dev energy.Profile, window time.Duration) (energy.Breakdown, error) {
	cfg := energy.Config{Device: dev, Duration: window}
	if kind.HasOverhead() {
		cfg.Overhead = energy.DefaultOverhead()
	}
	return energy.Compute(st.Arrivals(), cfg)
}

// sortedPorts flattens an open-port set into the sorted list the
// station API takes.
func sortedPorts(open map[uint16]bool) []uint16 {
	out := make([]uint16, 0, len(open))
	for p := range open {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Matrix is the full differential-oracle sweep.
type Matrix struct {
	Policies  []policy.Kind
	Scenarios []trace.Scenario
	Devices   []energy.Profile
	Seeds     []uint64
	Config    OracleConfig
}

// DefaultMatrix covers the acceptance grid: the paper's three compared
// policies × all five scenario traces × both Table I devices × three
// seeds.
func DefaultMatrix() Matrix {
	return Matrix{
		Policies:  []policy.Kind{policy.ReceiveAll, policy.ClientSide, policy.HIDE},
		Scenarios: trace.Scenarios,
		Devices:   []energy.Profile{energy.NexusOne, energy.GalaxyS4},
		Seeds:     []uint64{0, 1, 2},
		Config:    OracleConfig{CheckInvariants: true},
	}
}

// MatrixResult collects every cell of a sweep.
type MatrixResult struct {
	Results []CellResult
}

// matrixUnit is one schedulable unit of the sweep: a (scenario, seed,
// policy) triple. The trace and the protocol simulation are shared
// across devices (the device only changes how the arrival log is
// priced), so a unit runs one protocol simulation and prices it for
// every device.
type matrixUnit struct {
	scenario trace.Scenario
	seed     uint64
	kind     policy.Kind
}

// run executes the unit and returns one CellResult per device, in
// device order.
func (u matrixUnit) run(m Matrix, cfg OracleConfig) ([]CellResult, error) {
	tr, err := oracleTrace(u.scenario, u.seed, cfg.Duration)
	if err != nil {
		return nil, err
	}
	open := trace.OpenPortsForFraction(tr, cfg.UsefulTarget)
	useful := trace.TagByOpenPorts(tr, open)
	st, viol, err := protocolRun(tr, u.kind, sortedPorts(open), u.seed, cfg)
	if err != nil {
		return nil, err
	}
	arrivals := st.Arrivals()
	aligned := alignDTIM(tr, useful, u.kind == policy.HIDE)
	window := tr.Duration + dot11.DefaultBeaconInterval
	out := make([]CellResult, 0, len(m.Devices))
	for _, dev := range m.Devices {
		c := Cell{Policy: u.kind, Scenario: u.scenario, Device: dev, Seed: u.seed}
		a, err := analyticBreakdown(aligned, useful, u.kind, dev, window)
		if err != nil {
			return nil, fmt.Errorf("check: %v analytic: %w", c, err)
		}
		ecfg := energy.Config{Device: dev, Duration: window}
		if u.kind.HasOverhead() {
			ecfg.Overhead = energy.DefaultOverhead()
		}
		p, err := energy.Compute(arrivals, ecfg)
		if err != nil {
			return nil, fmt.Errorf("check: %v protocol: %w", c, err)
		}
		out = append(out, CellResult{
			Cell: c, Analytic: a, Protocol: p,
			Diffs:      Compare(a, p, cfg.Tolerance),
			Violations: viol,
		})
	}
	return out, nil
}

// RunContext executes the sweep, fanning the (scenario × seed ×
// policy) protocol units over the worker pool configured by
// Config.Workers and reducing the per-unit results back into the
// sequential path's exact cell order — the output is byte-identical
// for any worker count. A cancelled ctx returns promptly with
// context.Canceled in the error chain.
func (m Matrix) RunContext(ctx context.Context) (*MatrixResult, error) {
	cfg := m.Config.normalized()
	var units []matrixUnit
	for _, sc := range m.Scenarios {
		for _, seed := range m.Seeds {
			for _, kind := range m.Policies {
				units = append(units, matrixUnit{scenario: sc, seed: seed, kind: kind})
			}
		}
	}
	cells, err := engine.Map(ctx, cfg.Workers, len(units), func(ctx context.Context, i int) ([]CellResult, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return units[i].run(m, cfg)
	})
	if err != nil {
		return nil, err
	}
	out := &MatrixResult{}
	for _, cs := range cells {
		out.Results = append(out.Results, cs...)
	}
	return out, nil
}

// Run executes the sweep sequentially-compatibly: it is RunContext
// with a background context.
func (m Matrix) Run() (*MatrixResult, error) {
	return m.RunContext(context.Background())
}

// Failures returns the cells that disagreed or violated an invariant.
func (r *MatrixResult) Failures() []CellResult {
	var out []CellResult
	for _, c := range r.Results {
		if !c.OK() {
			out = append(out, c)
		}
	}
	return out
}

// Err returns nil when every cell passed, otherwise an error naming the
// failing cells.
func (r *MatrixResult) Err() error {
	fails := r.Failures()
	if len(fails) == 0 {
		return nil
	}
	names := make([]string, len(fails))
	for i, f := range fails {
		names[i] = f.Cell.String()
	}
	return fmt.Errorf("check: %d/%d oracle cells failed: %v", len(fails), len(r.Results), names)
}
