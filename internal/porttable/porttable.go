// Package porttable implements the AP-side Client UDP Port Table: the
// hash table mapping an open UDP port number to the set of clients
// (AIDs) listening on it. The AP refreshes a client's entries whenever
// a UDP Port Message arrives and looks ports up at the start of every
// DTIM period (Algorithm 1).
//
// The package also reproduces the paper's delay-overhead analysis
// (Section V-B, Eqs. 25-27, Figures 11-12), which prices the table
// maintenance and lookups in terms of per-operation durations measured
// on router-class hardware.
package porttable

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dot11"
)

// Table maps UDP ports to the set of client AIDs listening on them,
// and tracks the reverse mapping so a client's stale ports can be
// removed when a fresh UDP Port Message arrives. The zero value is
// ready to use. Table is not safe for concurrent use; the AP owns it
// from its event loop.
type Table struct {
	byPort    map[uint16]map[dot11.AID]struct{}
	portBits  map[uint16]*dot11.VirtualBitmap // reverse index: port → listener AID bitmap
	byClient  map[dot11.AID][]uint16
	refreshed map[dot11.AID]time.Duration
	// counts carries the multiplicity of cohort entries (absent = 1):
	// an entry at aid with count c stands for the contiguous AID block
	// [aid, aid+c), whose bits are materialized into portBits at update
	// time so OrListeners stays a single OR. Blocks must not overlap
	// any other registration — the AP's sequential AID allocator
	// guarantees that.
	counts map[dot11.AID]int
	gen    uint64 // bumped on every mutation; lets callers cache derived state
	ops    OpCounts
}

// OpCounts tallies table operations, feeding the delay model.
type OpCounts struct {
	Inserts int
	Deletes int
	Lookups int
}

// New returns an empty table.
func New() *Table {
	return &Table{
		byPort:    make(map[uint16]map[dot11.AID]struct{}),
		portBits:  make(map[uint16]*dot11.VirtualBitmap),
		byClient:  make(map[dot11.AID][]uint16),
		refreshed: make(map[dot11.AID]time.Duration),
		counts:    make(map[dot11.AID]int),
	}
}

// init lazily initializes the zero value.
func (t *Table) init() {
	if t.byPort == nil {
		t.byPort = make(map[uint16]map[dot11.AID]struct{})
		t.byClient = make(map[dot11.AID][]uint16)
	}
	if t.portBits == nil {
		t.portBits = make(map[uint16]*dot11.VirtualBitmap)
	}
	if t.refreshed == nil {
		t.refreshed = make(map[dot11.AID]time.Duration)
	}
	if t.counts == nil {
		t.counts = make(map[dot11.AID]int)
	}
}

// countOf returns the multiplicity of a client entry (1 for
// individually-registered clients).
func (t *Table) countOf(aid dot11.AID) int {
	if c, ok := t.counts[aid]; ok {
		return c
	}
	return 1
}

// blockEnd returns the last AID of an entry's block that fits the
// bitmap space; members past dot11.MaxAID have no bit (they exist only
// through the entry's count — see ListenerCount).
func blockEnd(aid dot11.AID, count int) dot11.AID {
	hi := int64(aid) + int64(count) - 1
	if hi > int64(dot11.MaxAID) {
		hi = int64(dot11.MaxAID)
	}
	return dot11.AID(hi)
}

// Gen returns the table's mutation generation: it changes whenever the
// port → client mapping may have changed, so callers (the AP's beacon
// cache) can detect staleness of state derived from the table without
// subscribing to individual updates.
func (t *Table) Gen() uint64 { return t.gen }

// Update replaces the port set for a client with the ports from its
// latest UDP Port Message: the client's old ports are deleted and the
// new ports inserted, exactly the refresh the paper's Eq. 25 prices.
// Duplicate ports in the message are collapsed. The entry carries a
// zero refresh stamp; use UpdateAt when TTL expiry is in play.
func (t *Table) Update(aid dot11.AID, ports []uint16) {
	t.UpdateAt(aid, ports, 0)
}

// UpdateAt is Update with a refresh timestamp: the entry's TTL clock
// (see ExpireBefore) restarts at now. The AP stamps the virtual
// arrival time of the UDP Port Message that carried the refresh.
func (t *Table) UpdateAt(aid dot11.AID, ports []uint16, now time.Duration) {
	t.updateBlock(aid, 1, ports, now)
}

// UpdateCohortAt is UpdateAt for a cohort entry: the client at aid
// stands for count stations occupying the contiguous AID block
// [aid, aid+count). Every block bit that fits the AID space is
// materialized into the reverse index, so Algorithm 1's OrListeners
// needs no cohort awareness, and the entry prices as ONE refresh in
// the delay model — that constancy is the cohort scaling win.
func (t *Table) UpdateCohortAt(aid dot11.AID, count int, ports []uint16, now time.Duration) error {
	if count < 1 {
		return fmt.Errorf("porttable: cohort count %d < 1", count)
	}
	t.updateBlock(aid, count, ports, now)
	return nil
}

// updateBlock replaces the port set for a (possibly multi-member)
// client entry. count == 1 is exactly the historical UpdateAt path.
func (t *Table) updateBlock(aid dot11.AID, count int, ports []uint16, now time.Duration) {
	t.init()
	if len(t.byClient[aid]) > 0 || len(ports) > 0 {
		t.gen++
	}
	oldEnd := blockEnd(aid, t.countOf(aid))
	for _, p := range t.byClient[aid] {
		if set := t.byPort[p]; set != nil {
			delete(set, aid)
			if bits := t.portBits[p]; bits != nil {
				for a := aid; a <= oldEnd; a++ {
					bits.Clear(a)
				}
			}
			if len(set) == 0 {
				delete(t.byPort, p)
				delete(t.portBits, p)
			}
			t.ops.Deletes++
		}
	}
	delete(t.byClient, aid)
	delete(t.refreshed, aid)
	delete(t.counts, aid)

	if len(ports) == 0 {
		return
	}
	end := blockEnd(aid, count)
	uniq := make([]uint16, 0, len(ports))
	seen := make(map[uint16]struct{}, len(ports))
	for _, p := range ports {
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		uniq = append(uniq, p)
		set := t.byPort[p]
		if set == nil {
			set = make(map[dot11.AID]struct{})
			t.byPort[p] = set
		}
		set[aid] = struct{}{}
		bits := t.portBits[p]
		if bits == nil {
			bits = new(dot11.VirtualBitmap)
			t.portBits[p] = bits
		}
		for a := aid; a <= end; a++ {
			bits.Set(a)
		}
		t.ops.Inserts++
	}
	t.byClient[aid] = uniq
	t.refreshed[aid] = now
	if count > 1 {
		t.counts[aid] = count
	}
}

// Remove drops every entry for a client (disassociation).
func (t *Table) Remove(aid dot11.AID) {
	t.Update(aid, nil)
}

// RefreshedAt returns the client's last refresh stamp and whether the
// client has any entry at all.
func (t *Table) RefreshedAt(aid dot11.AID) (time.Duration, bool) {
	at, ok := t.refreshed[aid]
	return at, ok
}

// ExpireBefore removes every client whose last refresh is strictly
// before cutoff and returns their AIDs sorted ascending. This is the
// TTL sweep the AP runs at beacon cadence: a client that crashed
// without deregistering stops refreshing, so its stale entries — which
// would otherwise inflate every other client's wakeups forever — age
// out after one TTL.
func (t *Table) ExpireBefore(cutoff time.Duration) []dot11.AID {
	var stale []dot11.AID
	for aid, at := range t.refreshed {
		if at < cutoff {
			stale = append(stale, aid)
		}
	}
	sort.Slice(stale, func(i, j int) bool { return stale[i] < stale[j] })
	for _, aid := range stale {
		t.Remove(aid)
	}
	return stale
}

// Lookup returns the AIDs of clients listening on port, sorted
// ascending. The returned slice is freshly allocated.
func (t *Table) Lookup(port uint16) []dot11.AID {
	t.ops.Lookups++
	set := t.byPort[port]
	if len(set) == 0 {
		return nil
	}
	out := make([]dot11.AID, 0, len(set))
	for aid := range set {
		out = append(out, aid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// OrListeners ORs the bitmap of clients listening on port into dst and
// reports whether any client listens. It prices as one lookup, exactly
// like Lookup, but reads the maintained reverse index instead of
// sorting the listener set — this is Algorithm 1's hot path.
func (t *Table) OrListeners(port uint16, dst *dot11.VirtualBitmap) bool {
	t.ops.Lookups++
	bits := t.portBits[port]
	if bits == nil {
		return false
	}
	dst.Or(bits)
	return true
}

// Listening reports whether the client has the port open. A cohort
// entry answers for every member AID in its block.
func (t *Table) Listening(port uint16, aid dot11.AID) bool {
	if _, ok := t.byPort[port][aid]; ok {
		return ok
	}
	// Block entries never overlap (AIDs are allocated sequentially), so
	// at most one covers the AID; the full scan keeps the answer
	// independent of map iteration order.
	open := false
	for base, c := range t.counts {
		if aid >= base && int(aid-base) < c {
			if _, ok := t.byPort[port][base]; ok {
				open = true
			}
		}
	}
	return open
}

// ListenerCount returns the number of stations listening on port,
// counting each cohort entry with its multiplicity.
func (t *Table) ListenerCount(port uint16) int {
	n := 0
	for aid := range t.byPort[port] {
		n += t.countOf(aid)
	}
	return n
}

// Members returns the number of stations the table's entries stand
// for, counting each cohort entry with its multiplicity (compare
// Clients, which counts entries).
func (t *Table) Members() int {
	n := len(t.byClient)
	for aid, c := range t.counts {
		if _, ok := t.byClient[aid]; ok {
			n += c - 1
		}
	}
	return n
}

// Ports returns the client's current open ports (the stored copy is
// not aliased).
func (t *Table) Ports(aid dot11.AID) []uint16 {
	return append([]uint16(nil), t.byClient[aid]...)
}

// Clients returns the number of clients with at least one entry.
func (t *Table) Clients() int { return len(t.byClient) }

// Len returns the number of (port, client) pairs in the table.
func (t *Table) Len() int {
	n := 0
	for _, set := range t.byPort {
		n += len(set)
	}
	return n
}

// Ops returns the operation counters.
func (t *Table) Ops() OpCounts { return t.ops }

// OpTimings holds per-operation durations for the delay model:
// τdel, τins, τlp of Eqs. 25-26.
type OpTimings struct {
	Delete time.Duration
	Insert time.Duration
	Lookup time.Duration
}

// CalibratedARM returns operation timings calibrated to the paper's
// measurement device — a 1 GHz ARM / 512 MB Android phone standing in
// for router-class hardware (Section VI-B). The values are chosen so
// the model reproduces the paper's reported overheads: ~2.3% RTT
// increase at N=50, p=50%, 1/f=10 s, n_o=50 (Fig. 11) and <1.6% at
// n_o=100, 1/f=30 s (Fig. 12).
func CalibratedARM() OpTimings {
	return OpTimings{
		Delete: 92 * time.Microsecond,
		Insert: 92 * time.Microsecond,
		Lookup: 2 * time.Microsecond,
	}
}

// DelayParams parameterizes the Section V-B delay model.
type DelayParams struct {
	// N is the number of clients in the network.
	N int
	// HIDEFraction is p, the fraction of HIDE-enabled clients.
	HIDEFraction float64
	// PortMsgInterval is 1/f.
	PortMsgInterval time.Duration
	// OpenPorts is n_o, the average number of open UDP ports per client.
	OpenPorts int
	// BufferedFrames is n_f, the average number of broadcast frames
	// buffered per DTIM period (the paper uses 10, noting its traces
	// are all well below that).
	BufferedFrames int
	// BaselineRTT is D, the unmodified packet round-trip time (the
	// paper measured 79.5 ms to a YouTube server).
	BaselineRTT time.Duration
	// Timings prices the hash-table operations.
	Timings OpTimings
}

// SectionVDefaults returns the paper's Figure 11/12 baseline settings.
func SectionVDefaults() DelayParams {
	return DelayParams{
		N:               50,
		HIDEFraction:    0.5,
		PortMsgInterval: 10 * time.Second,
		OpenPorts:       50,
		BufferedFrames:  10,
		BaselineRTT:     79500 * time.Microsecond,
		Timings:         CalibratedARM(),
	}
}

// Validate checks the parameters.
func (p DelayParams) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("porttable: N %d < 1", p.N)
	case p.HIDEFraction < 0 || p.HIDEFraction > 1:
		return fmt.Errorf("porttable: HIDE fraction %v outside [0, 1]", p.HIDEFraction)
	case p.PortMsgInterval <= 0:
		return fmt.Errorf("porttable: non-positive port message interval")
	case p.OpenPorts < 0 || p.BufferedFrames < 0:
		return fmt.Errorf("porttable: negative port/frame counts")
	case p.BaselineRTT <= 0:
		return fmt.Errorf("porttable: non-positive baseline RTT")
	}
	return nil
}

// DelayOverhead returns the bounded fractional increase in packet
// round-trip time d = (t1 + t2)/D (Eq. 27), where t1 prices table
// refreshes (Eq. 25) and t2 prices the Algorithm 1 lookups at each
// DTIM (Eq. 26).
func DelayOverhead(p DelayParams) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	f := 1 / p.PortMsgInterval.Seconds()
	d := p.BaselineRTT.Seconds()
	t1 := f * d * float64(p.N) * p.HIDEFraction * float64(p.OpenPorts) *
		(p.Timings.Delete + p.Timings.Insert).Seconds()
	t2 := float64(p.BufferedFrames) * p.Timings.Lookup.Seconds()
	return (t1 + t2) / d, nil
}

// Figure11Point is one (interval, N) cell of Figure 11.
type Figure11Point struct {
	PortMsgInterval time.Duration
	N               int
	Overhead        float64
}

// Figure11 sweeps port-message intervals {10,30,60,150,300,600} s over
// N in {5,10,20,30,40,50} with n_o = 50 and p = 50%.
func Figure11(timings OpTimings) ([]Figure11Point, error) {
	intervals := []time.Duration{10, 30, 60, 150, 300, 600}
	ns := []int{5, 10, 20, 30, 40, 50}
	var out []Figure11Point
	for _, iv := range intervals {
		for _, n := range ns {
			p := SectionVDefaults()
			p.Timings = timings
			p.PortMsgInterval = iv * time.Second
			p.N = n
			o, err := DelayOverhead(p)
			if err != nil {
				return nil, err
			}
			out = append(out, Figure11Point{PortMsgInterval: iv * time.Second, N: n, Overhead: o})
		}
	}
	return out, nil
}

// Figure12Point is one (openPorts, N) cell of Figure 12.
type Figure12Point struct {
	OpenPorts int
	N         int
	Overhead  float64
}

// Figure12 sweeps n_o in {10,20,50,100} over N in {5,10,20,30,40,50}
// with 1/f = 30 s and p = 50%.
func Figure12(timings OpTimings) ([]Figure12Point, error) {
	ports := []int{10, 20, 50, 100}
	ns := []int{5, 10, 20, 30, 40, 50}
	var out []Figure12Point
	for _, no := range ports {
		for _, n := range ns {
			p := SectionVDefaults()
			p.Timings = timings
			p.PortMsgInterval = 30 * time.Second
			p.OpenPorts = no
			p.N = n
			o, err := DelayOverhead(p)
			if err != nil {
				return nil, err
			}
			out = append(out, Figure12Point{OpenPorts: no, N: n, Overhead: o})
		}
	}
	return out, nil
}
