package check

import (
	"context"
	"errors"
	"testing"
	"time"
)

// matrixRender canonicalizes a full sweep for byte comparison.
func matrixRender(t *testing.T, r *MatrixResult) string {
	t.Helper()
	b, err := MarshalCanonical(r.Results)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestOracleParallelDeterminism asserts the oracle grid's deterministic
// ordered reduction: the parallel sweep's cells are byte-identical to
// the sequential path's, in the same order, for every worker count
// (run under -cpu 1,4 to also vary GOMAXPROCS).
func TestOracleParallelDeterminism(t *testing.T) {
	m := DefaultMatrix()
	m.Config.Duration = testOracleDuration
	m.Config.Workers = 1
	seq, err := m.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := matrixRender(t, seq)
	for _, workers := range []int{0, 4} {
		m.Config.Workers = workers
		par, err := m.RunContext(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := matrixRender(t, par); got != want {
			t.Fatalf("workers=%d: oracle sweep differs from the sequential path", workers)
		}
	}
}

// TestOracleCancellation: a cancelled context returns promptly with
// context.Canceled instead of finishing the grid.
func TestOracleCancellation(t *testing.T) {
	m := DefaultMatrix()
	m.Config.Duration = testOracleDuration
	m.Config.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := m.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled oracle run took %v", elapsed)
	}
}
