// Command hidec is the HIDE client daemon: it connects to a hided AP
// over UDP "virtual air", associates with real 802.11 frames, reports
// its open UDP ports (from -ports, or this machine's actual
// /proc/net/udp with -procnet), and then lives the HIDE lifecycle —
// suspending, watching its BTIM bit, and waking only for broadcast
// traffic some local port wants.
//
//	hidec -connect 127.0.0.1:5600 -ports 5353,17500 -mode hide
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/airlink"
	"repro/internal/cli"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/procnet"
	"repro/internal/sim"
	"repro/internal/station"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:5600", "hided address")
	ssid := flag.String("ssid", "hide-net", "network name to associate with")
	mode := flag.String("mode", "hide", "client mode: hide, legacy, or clientside")
	portsArg := flag.String("ports", "5353", "comma-separated open UDP ports")
	useProcnet := flag.Bool("procnet", false, "report this machine's real wildcard UDP ports instead of -ports")
	mac := flag.Int("mac", 1, "low byte of this client's MAC address (distinguish multiple clients)")
	device := flag.String("device", "nexusone", "device profile for the energy report")
	statsEvery := flag.Duration("stats", 10*time.Second, "status print interval")
	runFor := flag.Duration("for", 0, "exit with an energy report after this long (0 = run forever)")
	flag.Parse()

	var m station.Mode
	switch strings.ToLower(*mode) {
	case "hide":
		m = station.HIDE
	case "legacy":
		m = station.Legacy
	case "clientside":
		m = station.ClientSide
	default:
		cli.Usagef("hidec", "unknown mode %q", *mode)
	}
	dev, err := hide.ProfileByName(map[string]string{
		"nexusone": "Nexus One", "galaxys4": "Galaxy S4",
	}[strings.ToLower(*device)])
	if err != nil {
		cli.Usagef("hidec", "%v", err)
	}

	var ports []uint16
	if *useProcnet {
		ports, err = procnet.LocalOpenPorts()
		if err != nil {
			cli.Exit("hidec", err)
		}
	} else {
		for _, s := range strings.Split(*portsArg, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			p, err := strconv.ParseUint(s, 10, 16)
			if err != nil {
				cli.Usagef("hidec", "bad port %q", s)
			}
			ports = append(ports, uint16(p))
		}
	}

	inject := make(chan sim.Event, 256)
	link, err := airlink.Dial(*connect, inject)
	if err != nil {
		cli.Exit("hidec", err)
	}
	eng := sim.New()
	st := station.New(eng, link, station.Config{
		Addr:  dot11.MACAddr{0x02, 0x1d, 0xe0, 0xfe, 0x00, byte(*mac)},
		BSSID: dot11.MACAddr{0x02, 0x1d, 0xe0, 0xff, 0x00, 0x01},
		Mode:  m,
	})
	for _, p := range ports {
		st.OpenPort(p)
	}
	st.StartAssociation(*ssid)
	fmt.Printf("hidec: %s client -> %s, ports %v\n", m, *connect, ports)

	// Periodic status and optional timed exit, on the engine clock.
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		s := st.Stats()
		state := "awake"
		if st.Suspended() {
			state = "suspended"
		}
		fmt.Printf("[%8s] aid=%d %s beacons=%d group=%d useful=%d wakeups=%d portmsgs=%d\n",
			now.Truncate(time.Second), st.AID(), state, s.BeaconsHeard,
			s.GroupReceived, s.GroupUseful, s.Wakeups, s.PortMsgsSent)
		eng.MustScheduleAfter(*statsEvery, tick)
	}
	eng.MustScheduleAfter(*statsEvery, tick)

	ctx, stop := cli.SignalContext()
	defer stop()
	var cancel context.CancelFunc
	if *runFor > 0 {
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	go func() {
		if err := link.Serve(); err != nil {
			fmt.Fprintf(os.Stderr, "hidec: link: %v\n", err)
		}
	}()
	err = eng.RunRealtime(ctx, inject)
	if *runFor > 0 && errors.Is(err, context.DeadlineExceeded) {
		// Final energy report over the run.
		b, cerr := energy.Compute(st.Arrivals(), energy.Config{
			Device:   dev,
			Duration: *runFor,
		})
		if cerr != nil {
			cli.Exit("hidec", fmt.Errorf("energy: %v", cerr))
		}
		fmt.Printf("\nenergy over %v on %s: %.1f mW avg, %.1f%% suspended (%d wakeups)\n",
			*runFor, dev.Name, b.AvgPowerW()*1000, b.SuspendFraction*100, st.Stats().Wakeups)
		return
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		cli.Exit("hidec", err)
	}
}
