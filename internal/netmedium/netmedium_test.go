package netmedium

import (
	"net"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dot11"
)

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Type:    MsgFrame,
		At:      1234567 * time.Microsecond,
		Rate:    dot11.Rate11Mbps,
		Payload: []byte{1, 2, 3, 4},
	}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != m.Type || got.At != m.At || got.Rate != m.Rate {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Payload) != 4 || got.Payload[2] != 3 {
		t.Fatalf("payload: %v", got.Payload)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(ty byte, atNS int64, rate float64, payload []byte) bool {
		if len(payload) > maxFrameLen {
			payload = payload[:maxFrameLen]
		}
		if atNS < 0 {
			atNS = -atNS
		}
		m := Message{Type: MsgType(ty), At: time.Duration(atNS), Rate: dot11.Rate(rate), Payload: payload}
		raw, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(raw)
		if err != nil {
			return false
		}
		if got.Type != m.Type || got.At != m.At || len(got.Payload) != len(payload) {
			return false
		}
		// NaN rates survive as NaN (bit pattern preserved is not
		// required; value equality for non-NaN).
		if rate == rate && got.Rate != m.Rate {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 5),
		make([]byte, headerLen), // zero magic
		func() []byte { // bad version
			m, _ := Message{Type: MsgPing}.Marshal()
			m[2] = 9
			return m
		}(),
		func() []byte { // truncated payload
			m, _ := Message{Type: MsgFrame, Payload: []byte{1, 2, 3}}.Marshal()
			return m[:len(m)-1]
		}(),
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	m := Message{Type: MsgFrame, Payload: make([]byte, maxFrameLen+1)}
	if _, err := m.Marshal(); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

// waitFor polls cond until it holds, failing the test if it does not
// within a generous slow-CI deadline. Each call gets a fresh deadline
// so consecutive waits cannot starve each other.
func waitFor(t *testing.T, msg string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// startServer runs a server on loopback.
func startServer(t *testing.T, inject func(InjectRequest)) *Server {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(pc, inject)
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestSubscribePublishReceive(t *testing.T) {
	srv := startServer(t, nil)
	tap, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	// Wait for the subscription to land, then publish.
	waitFor(t, "subscription", func() bool { return srv.Stats().Subscribers > 0 })
	frame := []byte{0x80, 0x00, 1, 2, 3}
	srv.Publish(frame, dot11.Rate1Mbps, 42*time.Millisecond)

	ev, err := tap.Next(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if ev.At != 42*time.Millisecond || ev.Rate != dot11.Rate1Mbps {
		t.Fatalf("event metadata: %+v", ev)
	}
	if len(ev.Raw) != len(frame) || ev.Raw[4] != 3 {
		t.Fatalf("event frame: %v", ev.Raw)
	}
	if srv.Stats().FramesSent != 1 {
		t.Fatalf("FramesSent = %d", srv.Stats().FramesSent)
	}
}

func TestInjectReachesServer(t *testing.T) {
	got := make(chan InjectRequest, 1)
	srv := startServer(t, func(r InjectRequest) { got <- r })
	tap, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()

	if err := tap.Inject(InjectRequest{DstPort: 5353, PayloadSize: 64}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.DstPort != 5353 || r.PayloadSize != 64 {
			t.Fatalf("inject = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("inject never arrived")
	}
}

func TestUnsubscribeStopsStream(t *testing.T) {
	srv := startServer(t, nil)
	tap, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "subscription", func() bool { return srv.Stats().Subscribers > 0 })
	tap.Close()
	waitFor(t, "unsubscribe", func() bool { return srv.Stats().Subscribers == 0 })
}

func TestServerIgnoresGarbageDatagrams(t *testing.T) {
	srv := startServer(t, nil)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("definitely not a protocol message")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "garbage counter", func() bool { return srv.Stats().BadPackets > 0 })
}

func TestPingPong(t *testing.T) {
	srv := startServer(t, nil)
	conn, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	ping, err := Message{Type: MsgPing}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(ping); err != nil {
		t.Fatal(err)
	}
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(buf[:n])
	if err != nil || m.Type != MsgPong {
		t.Fatalf("reply = %+v, %v; want pong", m, err)
	}
}

func TestPublishSkipsOversizeFrames(t *testing.T) {
	srv := startServer(t, nil)
	tap, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer tap.Close()
	waitFor(t, "subscription", func() bool { return srv.Stats().Subscribers > 0 })
	srv.Publish(make([]byte, maxFrameLen+1), dot11.Rate1Mbps, 0)
	if srv.Stats().FramesSent != 0 {
		t.Fatal("oversize frame published")
	}
}
