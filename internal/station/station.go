// Package station implements a smartphone client for the protocol
// simulation: power-save beacon processing, TIM/BTIM interpretation,
// PS-Poll retrieval of buffered unicast frames, an open-UDP-port
// registry standing in for application sockets, and the HIDE suspend
// handshake — a UDP Port Message (with ACK-gated retransmission) sent
// every time before the host enters suspend mode.
//
// The station records every frame its radio receives together with the
// wakelock the frame triggered; the Section IV energy model consumes
// that arrival log, so the protocol simulation and the analytic
// pipeline are priced by the same code.
package station

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/medium"
	"repro/internal/sim"
)

// Mode selects the station's broadcast-handling behaviour.
type Mode int

// Station modes.
const (
	// Legacy is the stock receive-all client: it wakes for the TIM
	// broadcast bit and holds a full wakelock for every group frame.
	Legacy Mode = iota
	// ClientSide is the driver-filter client of [6]: same reception as
	// Legacy, but useless frames get only a short driver wakelock.
	ClientSide
	// HIDE is the paper's client: it syncs open UDP ports to the AP
	// before suspending and wakes for group traffic only when its BTIM
	// bit is set.
	HIDE
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Legacy:
		return "legacy"
	case ClientSide:
		return "client-side"
	case HIDE:
		return "HIDE"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config configures a station.
type Config struct {
	// Addr is the station's MAC address.
	Addr dot11.MACAddr
	// BSSID is the AP it associates with.
	BSSID dot11.MACAddr
	// Mode selects broadcast handling.
	Mode Mode
	// Tau is the full processing wakelock (default 1 s).
	Tau time.Duration
	// DriverWakelock is the short wakelock ClientSide mode holds for a
	// useless frame (default 100 ms).
	DriverWakelock time.Duration
	// CtrlRate is the rate for UDP Port Messages and PS-Polls (the
	// paper sends port messages at the lowest rate, 1 Mb/s).
	CtrlRate dot11.Rate
	// AckTimeout bounds the wait for a UDP Port Message ACK before
	// retransmission (default DefaultAckTimeout).
	AckTimeout time.Duration
	// MaxRetries bounds port-message retransmissions (default 4).
	MaxRetries int
	// ListenInterval is the 802.11 listen interval in beacons: the
	// radio wakes only for every ListenInterval-th beacon (default 1 =
	// every beacon). Skipped beacons cost no energy but may carry DTIM
	// group indications the station then misses — the classic power/
	// latency trade-off, counted in Stats.DTIMsSkipped.
	ListenInterval int
	// SyncOnlyOnChange skips the pre-suspend UDP Port Message when the
	// open-port set is unchanged since the last acknowledged sync — an
	// optimization over the paper's send-every-suspend behaviour that
	// trades the (already negligible) E2 overhead for reliance on the
	// AP never losing association state. Skips are counted in
	// Stats.PortMsgsSkipped.
	SyncOnlyOnChange bool
	// PortCoalesce batches port registrations and refreshes: a
	// pre-suspend UDP Port Message is skipped while the last
	// acknowledged sync still matches the current open-port set AND is
	// younger than this window, so the short awake/suspend cycles of a
	// busy trace ride on one registration instead of re-sending an
	// identical port list every few hundred milliseconds. Port changes
	// made while awake still coalesce into the single full-list message
	// sent at the next suspend whose sync is stale or dirty. Unlike
	// SyncOnlyOnChange the skip is freshness-bounded, so it composes
	// with the hardened AP-side TTL: keep the window below the AP's
	// PortTTL minus the refresh cadence and the table entry can never
	// age out behind a skipped sync. Zero disables coalescing — the
	// paper's send-every-suspend behaviour, byte-identical to builds
	// without the knob. Skips are counted in Stats.PortMsgsCoalesced.
	PortCoalesce time.Duration
	// PortRefresh re-sends the UDP Port Message when a heard DTIM
	// beacon finds the last acknowledged sync older than this,
	// refreshing the AP's TTL'd port-table entry (ap.Config.PortTTL)
	// from wakeful instants the radio already has. Set it well below
	// the AP's TTL. Zero disables refresh — the paper's
	// send-only-before-suspend behaviour.
	PortRefresh time.Duration
	// MissedBeaconFailSafe arms the fail-safe for lost BTIM beacons: a
	// HIDE station that receives a group frame while its beacon is
	// overdue (the DTIM beacon that would have carried its BTIM bit was
	// lost) falls back to receiving the burst at DTIM cadence instead
	// of sleeping through traffic it may have wanted — fail to awake,
	// never to deaf. Off by default.
	MissedBeaconFailSafe bool
	// Seed perturbs the station's private RNG (retry-backoff jitter).
	// The RNG is folded with the MAC address, so stations sharing a
	// Config.Seed still jitter independently. Randomness is drawn only
	// on retransmissions: fault-free runs consume none and stay
	// byte-identical.
	Seed uint64
}

// DefaultAckTimeout is the default bound on the UDP Port Message ACK
// wait. The windowed-parallel runner stretches Config.AckTimeout by its
// window on top of this: uplink crosses to the AP only at barriers, so
// the handshake round trip grows by up to one window and the stock
// timeout would misread that latency as loss.
const DefaultAckTimeout = 60 * time.Millisecond

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.Tau <= 0 {
		c.Tau = time.Second
	}
	if c.DriverWakelock <= 0 {
		c.DriverWakelock = 100 * time.Millisecond
	}
	if c.CtrlRate <= 0 {
		c.CtrlRate = dot11.Rate1Mbps
	}
	if c.AckTimeout <= 0 {
		c.AckTimeout = DefaultAckTimeout
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 4
	}
	if c.ListenInterval <= 0 {
		c.ListenInterval = 1
	}
	return c
}

// Stats counts station-side protocol activity.
type Stats struct {
	BeaconsHeard    int
	GroupReceived   int
	GroupUseful     int
	GroupDropped    int
	UnicastReceived int
	PSPollsSent     int
	PortMsgsSent    int
	PortMsgRetries  int
	ACKsReceived    int
	Suspends        int
	Wakeups         int
	AssocRequests   int
	BeaconsSkipped  int
	DTIMsSkipped    int
	PortMsgsSkipped int
	// PortMsgGivenUp counts suspends entered with the port sync
	// unacknowledged after the full retry budget — the AP may hold
	// stale (conservative) information until the next refresh.
	PortMsgGivenUp int
	// PortMsgsCoalesced counts pre-suspend port messages skipped by the
	// Config.PortCoalesce batching window (fresh matching sync).
	PortMsgsCoalesced int
	// PortMsgRefreshes counts TTL-refresh port messages triggered by
	// Config.PortRefresh.
	PortMsgRefreshes int
	// FailSafeBursts counts bursts received via the missed-beacon
	// fail-safe (Config.MissedBeaconFailSafe).
	FailSafeBursts int
	// APRestartsSeen counts beacon-timestamp regressions — AP restarts
	// the station detected and re-registered its ports after.
	APRestartsSeen int
	// ReassocRequests counts reassociation attempts sent while roaming
	// between APs of an ESS (retries included).
	ReassocRequests int
	// Reassociations counts completed roams (reassociation responses
	// accepted).
	Reassociations int
	// DisassocsReceived counts AP-initiated disassociation frames
	// accepted (drain fan-out, liveness eviction): the station detaches
	// locally without transmitting anything back.
	DisassocsReceived int
}

// Observer receives station lifecycle events. Observers run
// synchronously on the simulation goroutine; they must not mutate the
// station. The cross-validation harness (internal/check) uses them to
// assert that suspend/awake intervals are disjoint and cover the
// timeline and that the arrival log stays monotone.
type Observer interface {
	// StateChanged fires on every host suspend/wake transition with the
	// new state. It does not fire for the initial (awake) state.
	StateChanged(now time.Duration, suspended bool)
	// ArrivalRecorded fires for every frame appended to the arrival log.
	ArrivalRecorded(now time.Duration, a energy.Arrival)
}

// Station is the client entity. Create with New, Associate via the AP,
// then call Join with the assigned AID.
type Station struct {
	cfg Config
	eng *sim.Engine
	med medium.Channel
	aid dot11.AID

	ports map[uint16]bool

	listening bool // radio held on for a group-frame burst
	suspended bool
	wlExpiry  time.Duration
	suspendEv sim.Handle

	awaitingACK bool
	retries     int
	ackTimer    sim.Handle
	lastPortMsg []uint16
	syncedPorts []uint16 // last ACKed port set (for SyncOnlyOnChange)

	associated   bool
	assocRetries int
	assocTimer   sim.Handle
	beaconSeq    int

	crashed       bool
	rng           *sim.RNG
	lastBeaconAt  time.Duration // last heard beacon (zero until one is heard)
	beaconGap     time.Duration // learned beacon interval
	lastTimestamp uint64        // last heard TSF timestamp (restart detection)
	haveTimestamp bool
	lastSyncAt    time.Duration // last acknowledged port sync

	arrivals []energy.Arrival
	stats    Stats
	obs      Observer

	// Bound once in New so the rearm-heavy paths (suspend checks fire
	// per arrival, ACK timers per port message) do not allocate a fresh
	// method-value closure per schedule.
	trySuspendFn sim.Event
	ackTimeoutFn sim.Event

	// ackArm, when set, is notified with the deadline each time the ACK
	// timer is armed. Cohorts use it to watch the handshake: the AP
	// serves member ACKs serially, so tail members can time out while
	// the template's own ACK (always first) arrives in time.
	ackArm func(deadline time.Duration)
}

var _ medium.Node = (*Station)(nil)

// New creates a station attached to the medium.
func New(eng *sim.Engine, med medium.Channel, cfg Config) *Station {
	cfg = cfg.normalized()
	s := &Station{
		cfg:   cfg,
		eng:   eng,
		med:   med,
		ports: make(map[uint16]bool),
		rng:   sim.NewRNG(cfg.Seed ^ addrSeed(cfg.Addr)),
	}
	s.trySuspendFn = s.trySuspend
	s.ackTimeoutFn = s.ackTimeout
	med.Attach(cfg.Addr, s)
	return s
}

// cloneFor returns a deep copy of the station reparented to a new MAC
// address, AID, and channel — the member-divergence path of cohort
// splitting (off is the clone's member offset from the source). The
// clone owns fresh copies of every mutable slice and map, rebinds its
// method-value events to itself, re-arms any pending suspend/ACK
// timers at their original instants, and seeds a fresh RNG from the
// new address (exact versus an expanded member until the first retry
// draw, since jitter is only consumed on retransmissions). Pending
// timers are mirrored at the source event's slot offset by off, so
// same-instant firing follows member order however the family was
// split — exactly the order expanded members, whose timers are armed
// consecutively in member order, would fire in. The association retry
// timer cannot be cloned (it is a closure over the original station),
// so splitting is only valid once association has completed; the
// observer is deliberately not carried over.
func (s *Station) cloneFor(addr dot11.MACAddr, aid dot11.AID, med medium.Channel, off int) *Station {
	c := s.snapshot().adopt(addr, aid, med)
	if slot, ok := s.suspendEv.Slot(); ok {
		c.suspendEv = c.eng.MustScheduleAtSlot(s.suspendEv.At(), slot.Offset(off), c.trySuspendFn)
	}
	if slot, ok := s.ackTimer.Slot(); ok {
		c.ackTimer = c.eng.MustScheduleAtSlot(s.ackTimer.At(), slot.Offset(off), c.ackTimeoutFn)
	}
	return c
}

// snapshot returns an inert deep copy of the station's protocol state:
// fresh copies of every mutable slice and map, but no channel, no
// bound events, no scheduled timers, and no observer. Cohorts freeze
// one per handshake round so a timed-out tail can be split off in the
// exact pre-ACK state an expanded member would hold; adopt brings a
// snapshot to life.
func (s *Station) snapshot() *Station {
	c := new(Station)
	*c = *s
	c.med = nil
	c.ports = make(map[uint16]bool, len(s.ports))
	for p, v := range s.ports {
		c.ports[p] = v
	}
	c.lastPortMsg = append([]uint16(nil), s.lastPortMsg...)
	c.syncedPorts = append([]uint16(nil), s.syncedPorts...) // nil stays nil
	c.arrivals = append([]energy.Arrival(nil), s.arrivals...)
	c.obs = nil
	c.trySuspendFn, c.ackTimeoutFn, c.ackArm = nil, nil, nil
	c.suspendEv, c.ackTimer, c.assocTimer = sim.Handle{}, sim.Handle{}, sim.Handle{}
	return c
}

// adopt reparents a snapshot to a new MAC address, AID, and channel,
// rebinding its method-value events and seeding a fresh RNG from the
// new address. Pending timers are NOT restored — cloneFor re-arms
// them from the source, and the cohort handshake path instead invokes
// the timed-out path directly.
func (c *Station) adopt(addr dot11.MACAddr, aid dot11.AID, med medium.Channel) *Station {
	c.cfg.Addr = addr
	c.med = med
	c.aid = aid
	c.rng = sim.NewRNG(c.cfg.Seed ^ addrSeed(addr))
	c.trySuspendFn = c.trySuspend
	c.ackTimeoutFn = c.ackTimeout
	return c
}

// addrSeed folds the MAC address into an RNG seed so stations sharing
// a Config.Seed still jitter independently.
func addrSeed(a dot11.MACAddr) uint64 {
	var s uint64
	for _, b := range a {
		s = s<<8 | uint64(b)
	}
	return s | 1
}

// Join records the AID assigned by the AP. The station starts in
// active mode (association just happened) and immediately walks the
// suspend path, which for a HIDE station sends the initial UDP Port
// Message — the sync that seeds the AP's Client UDP Port Table.
func (s *Station) Join(aid dot11.AID) error {
	if !aid.Valid() {
		return fmt.Errorf("station: invalid AID %d", aid)
	}
	s.aid = aid
	s.associated = true
	s.setSuspended(false)
	s.wlExpiry = s.eng.Now()
	s.scheduleSuspendCheck()
	return nil
}

// Associated reports whether the station has completed association.
func (s *Station) Associated() bool { return s.associated }

// StartAssociation performs the frame-level association exchange: the
// station sends an AssocRequest — carrying its Open UDP Ports element
// when in HIDE mode — and retries until the AP's AssocResponse arrives
// or the retry budget is exhausted. On success the station behaves as
// if Join had been called with the assigned AID.
func (s *Station) StartAssociation(ssid string) {
	if s.associated {
		return
	}
	if len(ssid) > 32 {
		// 802.11 SSID limit; clamping keeps marshalling infallible.
		ssid = ssid[:32]
	}
	s.assocRetries = 0
	s.sendAssocRequest(ssid)
}

// sendAssocRequest transmits one association attempt and arms the
// retry timer.
func (s *Station) sendAssocRequest(ssid string) {
	req := &dot11.AssocRequest{
		Header: dot11.MACHeader{
			Addr1: s.cfg.BSSID, Addr2: s.cfg.Addr, Addr3: s.cfg.BSSID,
			FC: dot11.FrameControl{Retry: s.assocRetries > 0},
		},
		SSID: ssid,
	}
	if s.cfg.Mode == HIDE {
		req.HIDECapable = true
		req.Ports = s.OpenPorts()
	}
	raw, err := req.Marshal()
	if err != nil {
		panic(fmt.Sprintf("station: assoc request marshal: %v", err))
	}
	s.med.Transmit(s.cfg.Addr, raw, s.cfg.CtrlRate)
	s.stats.AssocRequests++
	s.assocTimer.Cancel()
	s.assocTimer = s.eng.MustScheduleAfter(s.cfg.AckTimeout, func(time.Duration) {
		if s.associated {
			return
		}
		s.assocRetries++
		if s.assocRetries > s.cfg.MaxRetries {
			return // give up; the station stays unassociated
		}
		s.sendAssocRequest(ssid)
	})
}

// Leave sends a disassociation frame and detaches from the BSS: the
// AP clears the station's port-table entries, and the station stops
// processing traffic until it associates again.
func (s *Station) Leave(reason uint16) {
	if !s.associated {
		return
	}
	d := &dot11.Disassoc{
		Header: dot11.MACHeader{Addr1: s.cfg.BSSID, Addr2: s.cfg.Addr, Addr3: s.cfg.BSSID},
		Reason: reason,
	}
	s.med.Transmit(s.cfg.Addr, d.Marshal(), s.cfg.CtrlRate)
	s.detach()
}

// Migrate moves the station to another engine and medium shard at a
// barrier instant (both engines idle at the same virtual time) and
// retargets its BSSID — the mechanics of an ESS roam. Call it after
// Leave, when no timers are pending and the station is detached from
// its BSS; Reassociate then performs the frame-level exchange on the
// new shard. The sync bookkeeping is reset: the new AP has not
// acknowledged this station's ports, and the new AP's TSF is
// unrelated to the old one's, so the restart detector must not read
// the first foreign beacon as a timestamp regression.
func (s *Station) Migrate(eng *sim.Engine, med medium.Channel, bssid dot11.MACAddr) {
	s.assocTimer.Cancel()
	if om, ok := s.med.(interface{ Detach(dot11.MACAddr) }); ok {
		om.Detach(s.cfg.Addr)
	}
	s.eng = eng
	s.med = med
	s.cfg.BSSID = bssid
	s.syncedPorts = nil
	s.haveTimestamp = false
	med.Attach(s.cfg.Addr, s)
}

// Reassociate performs the frame-level reassociation exchange toward
// the current BSSID (retargeted by Migrate), naming the AP the
// station roamed away from. The handoff is firmware-level: the host
// stays suspended throughout, so no pre-suspend port sync fires — on
// a cold handoff the new AP's Client UDP Port Table stays empty for
// this client until the next UDP Port Message (the resync window),
// unless the distribution system replicated the entry (warm).
func (s *Station) Reassociate(ssid string, currentAP dot11.MACAddr) {
	if s.associated || s.crashed {
		return
	}
	if len(ssid) > 32 {
		// 802.11 SSID limit; clamping keeps marshalling infallible.
		ssid = ssid[:32]
	}
	s.assocRetries = 0
	s.sendReassocRequest(ssid, currentAP)
}

// sendReassocRequest transmits one reassociation attempt and arms the
// retry timer. The request deliberately carries no Open UDP Ports
// element: a firmware roam does not resend application state, which
// is exactly what makes the cold-handoff resync window real.
func (s *Station) sendReassocRequest(ssid string, currentAP dot11.MACAddr) {
	req := &dot11.ReassocRequest{
		Header: dot11.MACHeader{
			Addr1: s.cfg.BSSID, Addr2: s.cfg.Addr, Addr3: s.cfg.BSSID,
			FC: dot11.FrameControl{Retry: s.assocRetries > 0},
		},
		CurrentAP: currentAP,
		SSID:      ssid,
	}
	if s.cfg.Mode == HIDE {
		req.HIDECapable = true
	}
	raw, err := req.Marshal()
	if err != nil {
		panic(fmt.Sprintf("station: reassoc request marshal: %v", err))
	}
	s.med.Transmit(s.cfg.Addr, raw, s.cfg.CtrlRate)
	s.stats.ReassocRequests++
	s.assocTimer.Cancel()
	s.assocTimer = s.eng.MustScheduleAfter(s.cfg.AckTimeout, func(time.Duration) {
		if s.associated {
			return
		}
		s.assocRetries++
		if s.assocRetries > s.cfg.MaxRetries {
			return // give up; the station stays unassociated
		}
		s.sendReassocRequest(ssid, currentAP)
	})
}

// handleReassocResponse completes a roam without waking the host.
func (s *Station) handleReassocResponse(raw []byte) {
	resp, err := dot11.UnmarshalReassocResponse(raw)
	if err != nil || s.associated {
		return
	}
	if resp.Status != dot11.StatusSuccess || !resp.AID.Valid() {
		return
	}
	s.assocTimer.Cancel()
	// Rejoin cannot fail here: the AID was just validated.
	if err := s.Rejoin(resp.AID); err != nil {
		panic(fmt.Sprintf("station: rejoin after reassoc: %v", err))
	}
	s.stats.Reassociations++
}

// Rejoin records the AID assigned on reassociation without waking the
// host — the firmware-level counterpart of Join. The station stays
// suspended; its next port sync (pre-suspend message after a wake, or
// the PortRefresh piggyback on a heard DTIM beacon) is what closes a
// cold handoff's resync window.
func (s *Station) Rejoin(aid dot11.AID) error {
	if !aid.Valid() {
		return fmt.Errorf("station: invalid AID %d", aid)
	}
	s.aid = aid
	s.associated = true
	s.setSuspended(true)
	return nil
}

// Synced reports whether the station's current AP has acknowledged a
// copy of its open-port set. Migrate resets it: the roam-target AP
// has acknowledged nothing, so a false value after a roam marks the
// cold-handoff resync window.
func (s *Station) Synced() bool { return s.syncedPorts != nil }

// ListensOn reports whether a UDP port is open on the station.
func (s *Station) ListensOn(p uint16) bool { return s.ports[p] }

// handleAssocResponse completes the association exchange.
func (s *Station) handleAssocResponse(raw []byte) {
	resp, err := dot11.UnmarshalAssocResponse(raw)
	if err != nil || s.associated {
		return
	}
	if resp.Status != dot11.StatusSuccess || !resp.AID.Valid() {
		return
	}
	s.assocTimer.Cancel()
	// Join cannot fail here: the AID was just validated.
	if err := s.Join(resp.AID); err != nil {
		panic(fmt.Sprintf("station: join after assoc: %v", err))
	}
}

// AID returns the association ID.
func (s *Station) AID() dot11.AID { return s.aid }

// Addr returns the station's MAC address.
func (s *Station) Addr() dot11.MACAddr { return s.cfg.Addr }

// Stats returns the protocol counters.
func (s *Station) Stats() Stats { return s.stats }

// SetObserver installs the lifecycle observer (nil disables it).
func (s *Station) SetObserver(o Observer) { s.obs = o }

// setSuspended flips the host suspend state, notifying the observer on
// actual transitions only.
func (s *Station) setSuspended(v bool) {
	if s.suspended == v {
		return
	}
	s.suspended = v
	if s.obs != nil {
		s.obs.StateChanged(s.eng.Now(), v)
	}
}

// Arrivals returns the recorded radio arrivals for energy analysis,
// sorted by time.
func (s *Station) Arrivals() []energy.Arrival {
	out := append([]energy.Arrival(nil), s.arrivals...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Suspended reports whether the host is in suspend mode.
func (s *Station) Suspended() bool { return s.suspended }

// ListenInterval returns the configured listen interval in beacons.
func (s *Station) ListenInterval() int { return s.cfg.ListenInterval }

// OpenPort registers a listening UDP port (an application socket).
func (s *Station) OpenPort(p uint16) { s.ports[p] = true }

// ClosePort removes a listening UDP port.
func (s *Station) ClosePort(p uint16) { delete(s.ports, p) }

// OpenPorts returns the sorted open-port set.
func (s *Station) OpenPorts() []uint16 {
	out := make([]uint16, 0, len(s.ports))
	for p := range s.ports {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Crash models a client that dies without deregistering: the radio
// goes silent instantly — no disassociation, no final port message —
// leaving the AP with stale Client UDP Port Table entries that only a
// TTL (ap.Config.PortTTL) can clear. The station ignores all traffic
// from here on; its suspend timeline closes in the suspended state.
func (s *Station) Crash() {
	if s.crashed {
		return
	}
	s.crashed = true
	s.listening = false
	s.awaitingACK = false
	s.ackTimer.Cancel()
	s.assocTimer.Cancel()
	s.suspendEv.Cancel()
	s.setSuspended(true)
}

// Crashed reports whether Crash was called.
func (s *Station) Crashed() bool { return s.crashed }

// Receive implements medium.Node.
func (s *Station) Receive(raw []byte, rate dot11.Rate, now time.Duration) {
	if s.crashed {
		return
	}
	switch dot11.Classify(raw) {
	case dot11.KindAssocResponse:
		s.handleAssocResponse(raw)
	case dot11.KindReassocResponse:
		s.handleReassocResponse(raw)
	case dot11.KindBeacon:
		if s.associated {
			s.handleBeacon(raw, now)
		}
	case dot11.KindData:
		if s.associated {
			s.handleData(raw, rate, now)
		}
	case dot11.KindACK:
		s.handleACK(now)
	case dot11.KindDisassoc:
		if s.associated {
			s.handleDisassoc(raw)
		}
	}
}

// handleDisassoc processes an AP-initiated disassociation (drain
// fan-out, liveness eviction): the station detaches locally — no frame
// goes back; the AP has already dropped the association. Frames not
// from this BSS, or addressed to another station, are ignored.
func (s *Station) handleDisassoc(raw []byte) {
	d, err := dot11.UnmarshalDisassoc(raw)
	if err != nil {
		return
	}
	if d.Header.Addr2 != s.cfg.BSSID {
		return
	}
	if d.Header.Addr1 != s.cfg.Addr && !d.Header.Addr1.IsMulticast() {
		return
	}
	s.stats.DisassocsReceived++
	s.detach()
}

// Abandon detaches from the BSS without transmitting anything — the
// client-side teardown for an AP that is already gone (a reconnecting
// daemon gives up on a dead AP and starts a fresh association). The
// station can associate again afterwards; compare Leave, which sends
// a disassociation frame first, and Crash, which is terminal.
func (s *Station) Abandon() {
	if !s.associated {
		return
	}
	s.detach()
}

// detach drops the association and quiesces all protocol timers; the
// suspend timeline closes in the suspended state.
func (s *Station) detach() {
	s.associated = false
	s.aid = 0
	s.listening = false
	s.awaitingACK = false
	s.ackTimer.Cancel()
	s.assocTimer.Cancel()
	s.suspendEv.Cancel()
	s.setSuspended(true)
}

// LastBeaconAt returns the virtual time the station last heard a
// beacon (zero before the first), and whether one has been heard since
// association. Supervisors use it to detect a silent AP.
func (s *Station) LastBeaconAt() (time.Duration, bool) {
	return s.lastBeaconAt, s.lastBeaconAt > 0
}

// handleBeacon processes TIM/BTIM indications. The radio wakes for
// every beacon regardless of host state (Section II).
func (s *Station) handleBeacon(raw []byte, now time.Duration) {
	b, err := dot11.UnmarshalBeacon(raw)
	if err != nil {
		return
	}
	// Listen interval: the radio sleeps through all but every LI-th
	// beacon. Skipped DTIMs may hide group indications.
	s.beaconSeq++
	if s.cfg.ListenInterval > 1 && (s.beaconSeq-1)%s.cfg.ListenInterval != 0 {
		s.stats.BeaconsSkipped++
		if b.TIM != nil && b.TIM.DTIMCount == 0 {
			s.stats.DTIMsSkipped++
		}
		return
	}
	s.stats.BeaconsHeard++
	s.observeBeacon(b, now)

	// Group bursts never span beacons: if the end-of-burst frame was
	// lost (MoreData never cleared), the beacon ends the listen window
	// so the radio does not stay on indefinitely.
	if s.listening {
		s.listening = false
		if !s.suspended && !s.awaitingACK {
			s.scheduleSuspendCheck()
		}
	}

	// Unicast indication: poll for each buffered frame.
	if b.TIM != nil && b.TIM.UnicastBuffered(s.aid) {
		s.sendPSPoll()
	}

	// Group indication: HIDE stations trust their BTIM bit; legacy and
	// client-side stations obey the standard broadcast bit. A HIDE
	// station whose beacon lacks a BTIM (legacy AP) falls back to the
	// standard behaviour, preserving coexistence in both directions.
	isDTIM := b.TIM != nil && b.TIM.DTIMCount == 0
	if !isDTIM {
		return
	}
	switch {
	case s.cfg.Mode == HIDE && b.BTIM != nil:
		if b.BTIM.UsefulBroadcastBuffered(s.aid) {
			s.listening = true
		}
	default:
		if b.TIM != nil && b.TIM.Broadcast {
			s.listening = true
		}
	}

	// TTL refresh: a heard DTIM beacon is a wakeful instant the radio
	// already has, so piggyback the port-table refresh on it when the
	// last acknowledged sync has gone stale.
	if s.cfg.PortRefresh > 0 && s.cfg.Mode == HIDE && !s.awaitingACK &&
		now-s.lastSyncAt >= s.cfg.PortRefresh {
		s.retries = 0
		s.stats.PortMsgRefreshes++
		s.sendPortMessage(now)
	}
}

// observeBeacon tracks beacon cadence and the AP's TSF timestamp. A
// timestamp regression means the AP restarted and lost its soft state,
// so a HIDE station re-registers its open ports instead of trusting a
// Client UDP Port Table that no longer exists.
func (s *Station) observeBeacon(b *dot11.Beacon, now time.Duration) {
	s.lastBeaconAt = now
	if gap := time.Duration(b.BeaconInterval) * dot11.TU; gap > 0 {
		s.beaconGap = gap
	}
	restarted := s.haveTimestamp && b.Timestamp < s.lastTimestamp
	s.lastTimestamp = b.Timestamp
	s.haveTimestamp = true
	if restarted {
		s.stats.APRestartsSeen++
		s.syncedPorts = nil
		if s.cfg.Mode == HIDE && !s.awaitingACK {
			s.retries = 0
			s.sendPortMessage(now)
		}
	}
}

// handleData receives group or unicast data frames.
func (s *Station) handleData(raw []byte, rate dot11.Rate, now time.Duration) {
	// Asleep fast path: a group frame reaching a PS-mode radio between
	// listen windows is dropped before the (allocating) full parse —
	// the dominant delivery at large scale. The outcome matches the
	// slow path exactly: not ours, multicast, not listening, beacon not
	// overdue → return with no state change (and a frame the full parse
	// would reject changes no state on either path).
	if len(raw) >= 10 && !s.listening {
		var addr1 dot11.MACAddr
		copy(addr1[:], raw[4:10])
		if addr1 != s.cfg.Addr && addr1.IsMulticast() && !s.beaconOverdue(now) {
			return
		}
	}
	df, err := dot11.UnmarshalDataFrame(raw)
	if err != nil {
		return
	}
	if df.Header.Addr1 == s.cfg.Addr {
		// Buffered unicast retrieved via PS-Poll.
		s.stats.UnicastReceived++
		s.recordArrival(raw, rate, now, df.Header.FC.MoreData, s.cfg.Tau)
		if df.Header.FC.MoreData {
			s.sendPSPoll()
		}
		return
	}
	if !df.Header.Addr1.IsMulticast() {
		// A unicast frame for someone else.
		return
	}
	if !s.listening {
		if !s.beaconOverdue(now) {
			// Radio asleep for this frame (PS mode between beacons).
			return
		}
		// Fail safe: group traffic is flowing but the beacon that
		// should have announced it never arrived — the DTIM beacon
		// carrying our BTIM bit was lost. Receive the burst at DTIM
		// cadence rather than sleep through traffic we may have wanted:
		// fail to awake, never to deaf.
		s.listening = true
		s.stats.FailSafeBursts++
	}
	s.stats.GroupReceived++
	useful := false
	if port, err := dot11.DstUDPPort(df.Payload); err == nil {
		useful = s.ports[port]
	}
	wl := s.cfg.Tau
	switch s.cfg.Mode {
	case ClientSide:
		if !useful {
			wl = s.cfg.DriverWakelock
		}
	case HIDE:
		// The BTIM said something useful is in this burst; frames for
		// other clients still ride along and the driver drops them.
		if !useful {
			wl = 0
		}
	}
	if useful {
		s.stats.GroupUseful++
	} else {
		s.stats.GroupDropped++
	}
	s.recordArrival(raw, rate, now, df.Header.FC.MoreData, wl)
	if !df.Header.FC.MoreData {
		s.listening = false
	}
}

// beaconOverdue reports whether the beacon a just-arrived group frame
// rode behind is missing. Group bursts immediately follow a DTIM
// beacon, so when a group frame arrives, the last heard beacon should
// be under ListenInterval beacon intervals old; beyond that (minus a
// quarter-interval margin for burst airtime and channel-busy beacon
// delays) the announcing beacon was lost. A station that has heard no
// beacon at all measures from time zero, so losing the very first
// beacon also fails safe. Used by the MissedBeaconFailSafe hardening.
func (s *Station) beaconOverdue(now time.Duration) bool {
	if !s.cfg.MissedBeaconFailSafe || s.cfg.Mode != HIDE {
		return false
	}
	gap := s.beaconGap
	if gap <= 0 {
		gap = dot11.DefaultBeaconInterval
	}
	window := gap*time.Duration(s.cfg.ListenInterval) - gap/4
	return now-s.lastBeaconAt > window
}

// recordArrival logs a radio arrival and drives the suspend machine.
func (s *Station) recordArrival(raw []byte, rate dot11.Rate, now time.Duration, moreData bool, wl time.Duration) {
	a := energy.Arrival{
		At:       now,
		Length:   len(raw),
		Rate:     rate,
		MoreData: moreData,
		Wakelock: wl,
	}
	s.arrivals = append(s.arrivals, a)
	if s.obs != nil {
		s.obs.ArrivalRecorded(now, a)
	}
	if s.suspended {
		s.setSuspended(false)
		s.stats.Wakeups++
	}
	if exp := now + wl; exp > s.wlExpiry {
		s.wlExpiry = exp
	}
	s.scheduleSuspendCheck()
}

// scheduleSuspendCheck (re)arms the wakelock-expiry event.
func (s *Station) scheduleSuspendCheck() {
	s.suspendEv.Cancel()
	at := s.wlExpiry
	if at < s.eng.Now() {
		at = s.eng.Now()
	}
	s.suspendEv = s.eng.MustScheduleAt(at, s.trySuspendFn)
}

// trySuspend initiates suspend once all wakelocks have expired: a HIDE
// station first synchronizes its open ports with the AP and waits for
// the ACK (Figure 2's handshake).
func (s *Station) trySuspend(now time.Duration) {
	if s.suspended || s.awaitingACK || now < s.wlExpiry || s.listening {
		return
	}
	if s.cfg.Mode == HIDE {
		if s.cfg.PortCoalesce > 0 && s.syncedPorts != nil &&
			now-s.lastSyncAt < s.cfg.PortCoalesce && equalPorts(s.syncedPorts, s.OpenPorts()) {
			s.stats.PortMsgsCoalesced++
			s.completeSuspend()
			return
		}
		if s.cfg.SyncOnlyOnChange && s.syncedPorts != nil && equalPorts(s.syncedPorts, s.OpenPorts()) {
			s.stats.PortMsgsSkipped++
			s.completeSuspend()
			return
		}
		s.retries = 0
		s.sendPortMessage(now)
		return
	}
	s.completeSuspend()
}

// sendPortMessage transmits the UDP Port Message and arms the ACK
// timeout.
func (s *Station) sendPortMessage(now time.Duration) {
	s.lastPortMsg = s.OpenPorts()
	msg := &dot11.UDPPortMessage{
		Header: dot11.MACHeader{
			Addr1: s.cfg.BSSID, Addr2: s.cfg.Addr, Addr3: s.cfg.BSSID,
			FC: dot11.FrameControl{Retry: s.retries > 0},
		},
		Ports: s.lastPortMsg,
	}
	raw, err := msg.Marshal()
	if err != nil {
		// Port lists are bounded by the uint16 space; marshal cannot
		// fail on real input, so treat failure as a bug.
		panic(fmt.Sprintf("station: port message marshal: %v", err))
	}
	s.med.Transmit(s.cfg.Addr, raw, s.cfg.CtrlRate)
	s.stats.PortMsgsSent++
	if s.retries > 0 {
		s.stats.PortMsgRetries++
	}
	s.awaitingACK = true
	s.ackTimer.Cancel()
	s.ackTimer = s.eng.MustScheduleAfter(s.ackWait(), s.ackTimeoutFn)
	if s.ackArm != nil {
		s.ackArm(s.ackTimer.At())
	}
}

// maxBackoffShift caps the exponential ACK-timeout backoff at 16× the
// base timeout.
const maxBackoffShift = 4

// ackWait returns the ACK timeout for the current attempt: the base
// timeout on the first try (drawing no randomness, preserving
// byte-identity for clean runs), then exponential backoff with ±25%
// jitter from the station's private RNG so retry storms from many
// stations desynchronize instead of colliding in lockstep.
func (s *Station) ackWait() time.Duration {
	if s.retries == 0 {
		return s.cfg.AckTimeout
	}
	shift := s.retries
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	d := s.cfg.AckTimeout << uint(shift)
	jitter := time.Duration((s.rng.Float64() - 0.5) * 0.5 * float64(d))
	return d + jitter
}

// ackTimeout retransmits the port message with backoff, or exhausts
// the retry budget, gives up, and suspends anyway (the AP will simply
// have stale — conservative — information until the next refresh).
func (s *Station) ackTimeout(now time.Duration) {
	if !s.awaitingACK {
		return
	}
	s.retries++
	if s.retries > s.cfg.MaxRetries {
		s.awaitingACK = false
		s.stats.PortMsgGivenUp++
		if now >= s.wlExpiry && !s.listening {
			s.completeSuspend()
		}
		return
	}
	s.sendPortMessage(now)
}

// handleACK completes the suspend handshake.
func (s *Station) handleACK(now time.Duration) {
	if !s.awaitingACK {
		return
	}
	s.awaitingACK = false
	s.ackTimer.Cancel()
	s.stats.ACKsReceived++
	s.syncedPorts = append([]uint16(nil), s.lastPortMsg...)
	s.lastSyncAt = now
	if now >= s.wlExpiry && !s.listening {
		s.completeSuspend()
	}
}

// completeSuspend puts the host into suspend mode.
func (s *Station) completeSuspend() {
	if s.suspended {
		return
	}
	s.setSuspended(true)
	s.stats.Suspends++
}

// equalPorts compares two sorted port lists.
func equalPorts(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sendPSPoll requests one buffered unicast frame.
func (s *Station) sendPSPoll() {
	poll := &dot11.PSPoll{AID: s.aid, BSSID: s.cfg.BSSID, TA: s.cfg.Addr}
	s.med.Transmit(s.cfg.Addr, poll.Marshal(), s.cfg.CtrlRate)
	s.stats.PSPollsSent++
}
