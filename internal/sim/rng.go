package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64). It is not cryptographically secure; it exists so that
// simulations are reproducible from a single uint64 seed without pulling
// in math/rand state that other packages might also advance.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
