// Command hidelint runs the repo's static-analysis suite: the
// determinism, ctxfirst, exitpath, elemconst, and errdrop checks that
// keep the engine's byte-identity guarantee, the context-first API
// convention, the exit-130 interrupt contract, the protocol-constant
// hygiene, and error handling honest across the tree.
//
// Diagnostics print vet-style (file:line:col: message (check)) and a
// non-zero exit reports findings, so it slots into CI after go vet.
// Suppress a single finding with a justified directive:
//
//	//lint:ignore <check> <reason>
//
// Usage:
//
//	hidelint [-checks determinism,errdrop] [-root dir] [pattern ...]
//
// Patterns follow go tool conventions: ./... (default), ./dir/..., or
// ./dir.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default all)")
	root := flag.String("root", ".", "module root directory (holding go.mod)")
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(os.Stdout, *root, *checks, patterns)
	if err != nil {
		cli.Usagef("hidelint", "%v", err)
	}
	if n > 0 {
		cli.Exit("hidelint", fmt.Errorf("%d finding(s)", n))
	}
}

// run loads the patterns under root, applies the selected analyzers,
// prints diagnostics to w, and returns the finding count. It is the
// whole CLI minus process exit, so tests can drive it directly.
func run(w io.Writer, root, checks string, patterns []string) (int, error) {
	analyzers, err := lint.ByName(checks)
	if err != nil {
		return 0, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags), nil
}
