package dot11

import (
	"fmt"
	"time"
)

// Rate is a PHY data rate in bits per second.
type Rate float64

// Standard 802.11b rates. The paper's evaluation sends UDP Port
// Messages at the lowest rate (1 Mb/s) and uses 11 Mb/s channel rate
// for the capacity analysis (Table II).
const (
	Rate1Mbps  Rate = 1e6
	Rate2Mbps  Rate = 2e6
	Rate55Mbps Rate = 5.5e6
	Rate11Mbps Rate = 11e6
)

// String formats the rate in Mb/s.
func (r Rate) String() string { return fmt.Sprintf("%gMb/s", float64(r)/1e6) }

// PHY holds physical-layer timing parameters. DefaultPHY matches the
// 802.11b configuration of Table II.
type PHY struct {
	// PreambleHeaderBits is the PLCP preamble + header length in bits,
	// transmitted at the base rate (Table II: 192 bits).
	PreambleHeaderBits int
	// BaseRate is the rate the preamble/header are sent at.
	BaseRate Rate
	// SlotTime, SIFS, DIFS are MAC timing parameters.
	SlotTime time.Duration
	SIFS     time.Duration
	DIFS     time.Duration
	// PropagationDelay is the one-way propagation delay.
	PropagationDelay time.Duration
	// CWMin, CWMax bound the contention window.
	CWMin, CWMax int
}

// DefaultPHY returns the 802.11b parameters of Table II.
func DefaultPHY() PHY {
	return PHY{
		PreambleHeaderBits: 192,
		BaseRate:           Rate1Mbps,
		SlotTime:           20 * time.Microsecond,
		SIFS:               10 * time.Microsecond,
		DIFS:               50 * time.Microsecond,
		PropagationDelay:   1 * time.Microsecond,
		CWMin:              32,
		CWMax:              1024,
	}
}

// PreambleDuration returns the time to transmit the PLCP preamble and
// header at the base rate.
func (p PHY) PreambleDuration() time.Duration {
	return bitsDuration(p.PreambleHeaderBits, p.BaseRate)
}

// FrameAirtime returns the time on air for a frame of frameBytes bytes
// (MAC header + body + FCS) sent at rate: PLCP preamble/header at the
// base rate plus the MAC portion at the payload rate.
func (p PHY) FrameAirtime(frameBytes int, rate Rate) time.Duration {
	return p.PreambleDuration() + bitsDuration(8*frameBytes, rate)
}

// bitsDuration returns the transmission time of n bits at rate r.
func bitsDuration(n int, r Rate) time.Duration {
	if r <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(r) * float64(time.Second))
}

// TU is the 802.11 time unit used for beacon intervals.
const TU = 1024 * time.Microsecond

// DefaultBeaconInterval is the conventional 100 TU beacon interval
// (102.4 ms).
const DefaultBeaconInterval = 100 * TU
