// Package medium emulates a single 802.11 broadcast channel: frames
// transmitted by attached nodes are serialized (a simple FIFO
// approximation of CSMA/CA), take their real airtime at the chosen PHY
// rate, and are delivered to the addressed node — or to every other
// node for group-addressed frames. An optional fault.Plan perturbs
// deliveries (loss, bursty loss, corruption, duplication) to exercise
// retransmission and fail-safe paths.
//
// The medium runs on a sim.Engine virtual clock, so whole days of
// channel time simulate in milliseconds and runs are deterministic.
package medium

import (
	"fmt"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/sim"
)

// Node is anything attached to the medium. Receive is called once per
// delivered frame with the raw bytes, the PHY rate it was sent at, and
// the delivery (end-of-airtime) virtual time.
type Node interface {
	Receive(raw []byte, rate dot11.Rate, at time.Duration)
}

// Channel is the transport surface the protocol entities (AP,
// stations) program against: the in-process emulated Medium implements
// it, and so does the UDP-backed air link used by the hided/hidec
// daemons — the same AP and station code runs over both.
type Channel interface {
	// Attach registers a node under its MAC address.
	Attach(addr dot11.MACAddr, n Node)
	// Transmit sends a frame; it returns the (estimated) delivery time.
	Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration
}

// BlockChannel is a Channel that can register one node as a contiguous
// block of member addresses — the transport surface cohort stations
// need. The emulated Medium implements it; the UDP-backed air link does
// not (cohorts are a simulation-scale construct).
type BlockChannel interface {
	Channel
	// AttachBlock registers n under count consecutive addresses starting
	// at base (dot11.AddrAdd order). A group frame is delivered to n
	// once, standing for all members; a unicast to any member address
	// routes to n.
	AttachBlock(base dot11.MACAddr, count int, n Node) error
	// SplitBlock carves members [at, count) of the block based at base
	// into a separate block registered under n, placed directly after
	// the shrunk block in the delivery order — indistinguishable from
	// two blocks attached consecutively at setup.
	SplitBlock(base dot11.MACAddr, at int, n Node) error
}

// BlockSplitter is implemented by nodes attached with AttachBlock whose
// members can diverge: SplitTail detaches members [at, count) into a
// new node and returns it. The medium calls it mid-delivery when a
// fault plan's verdicts differ across a block's members, so each
// maximal run of identically-treated members keeps exactly one node.
type BlockSplitter interface {
	Node
	SplitTail(at int) Node
}

// RoutedNode is an optional Node extension for nodes that stand for
// several addresses (blocks). The medium prefers ReceiveAs over
// Receive and passes the address it ROUTED the frame to: the original
// group address for a fan-out delivery, the original unicast target
// otherwise. A node standing for many members cannot recover that from
// the frame itself once a fault verdict has corrupted the address
// bytes — a real receiver tuned to the destination before the bits
// were damaged, so routing must not re-derive it from damaged bytes.
type RoutedNode interface {
	Node
	ReceiveAs(to dot11.MACAddr, raw []byte, rate dot11.Rate, at time.Duration)
}

var (
	_ Channel      = (*Medium)(nil)
	_ BlockChannel = (*Medium)(nil)
)

// Medium is the emulated channel. Create with New.
type Medium struct {
	eng       *sim.Engine
	phy       dot11.PHY
	nodes     map[dot11.MACAddr]Node
	fanout    []fanoutEntry // precomputed broadcast delivery order (attach order)
	busyUntil time.Duration
	plan      fault.Plan
	rng       *sim.RNG

	// Stats counts medium activity.
	Stats Stats

	tap func(raw []byte, rate dot11.Rate, at time.Duration)
	obs func(src dot11.MACAddr, raw []byte, rate dot11.Rate, start, deliverAt time.Duration)

	deliverFn sim.ArgEvent   // bound once; avoids a closure per Transmit
	txFree    []*pendingTx   // recycled in-flight transmission records
	verdicts  []blockVerdict // scratch for per-member block verdicts
}

// fanoutEntry pairs an attached address with its node so group fan-out
// walks a flat slice instead of resolving each address through the map.
// A count > 1 marks a block entry (AttachBlock): one node standing for
// count members at consecutive addresses from addr.
type fanoutEntry struct {
	addr  dot11.MACAddr
	count int // members covered; <= 1 means a plain single-address node
	node  Node
}

// blockVerdict is one member's fault treatment during block delivery:
// the plan's verdict plus the corruption byte index (-1 when the copy
// is not corrupted). Members with equal blockVerdicts are
// indistinguishable and stay folded in one block.
type blockVerdict struct {
	v       fault.Verdict
	corrupt int
}

// pendingTx carries one in-flight transmission from Transmit to its
// delivery event. Records are pooled: the frame buffer they reference is
// the single injection copy, shared (immutably) by every receiver.
type pendingTx struct {
	src   dot11.MACAddr
	frame []byte
	rate  dot11.Rate
}

// Stats tallies channel activity.
type Stats struct {
	Transmissions int
	Deliveries    int
	Losses        int
	Corruptions   int
	Duplicates    int
	AirtimeBusy   time.Duration
}

// New creates a medium on the engine with the given PHY parameters.
func New(eng *sim.Engine, phy dot11.PHY, seed uint64) *Medium {
	m := &Medium{
		eng:   eng,
		phy:   phy,
		nodes: make(map[dot11.MACAddr]Node),
		rng:   sim.NewRNG(seed),
	}
	m.deliverFn = m.deliverEvent
	return m
}

// SetLoss sets the independent per-delivery loss probability — the
// historical knob, retained as sugar for SetFaultPlan(fault.Loss{P: p}).
// A zero probability restores the pristine channel.
func (m *Medium) SetLoss(p float64) error {
	if p < 0 || p >= 1 {
		return fmt.Errorf("medium: loss probability %v outside [0, 1)", p)
	}
	if p == 0 {
		m.plan = nil
	} else {
		m.plan = fault.Loss{P: p}
	}
	return nil
}

// SetFaultPlan installs the fault plan consulted once per (frame,
// receiver) delivery; nil restores the pristine channel. A nil plan
// consumes no randomness, so fault-free runs stay byte-identical to
// builds that predate the fault subsystem.
func (m *Medium) SetFaultPlan(p fault.Plan) { m.plan = p }

// SetTap installs a monitor callback invoked for every transmission at
// its start-of-airtime instant, regardless of addressing — the
// equivalent of a monitor-mode capture interface. A nil tap disables
// monitoring.
func (m *Medium) SetTap(tap func(raw []byte, rate dot11.Rate, at time.Duration)) {
	m.tap = tap
}

// SetTxObserver installs a source-aware transmission observer invoked
// once per Transmit with the sender address, the shared immutable frame
// copy, and the resolved start-of-airtime and delivery instants. Unlike
// the tap (a monitor-mode capture), the observer exists for execution
// machinery: the windowed-parallel runner uses it to harvest a window's
// transmissions for barrier replay on another medium. A nil observer
// disables it.
func (m *Medium) SetTxObserver(obs func(src dot11.MACAddr, raw []byte, rate dot11.Rate, start, deliverAt time.Duration)) {
	m.obs = obs
}

// InjectAt schedules a frame for delivery at an exact instant without
// occupying the channel: contention, busy time, and the transmission
// counter are untouched, because the frame already paid its airtime on
// the medium that originally carried it. The windowed-parallel runner
// uses it to mirror hub-side transmissions into group-local media at
// their recorded delivery times. The fault plan (and its RNG draws)
// still applies per receiver at delivery, exactly as for a native
// transmission. Unlike Transmit, the buffer is NOT copied — the caller
// must pass a frame that stays immutable until delivered (the observer
// hands out exactly such buffers), so mirroring one transmission into
// many groups shares a single copy. Injecting before the engine's
// current time is an error.
func (m *Medium) InjectAt(src dot11.MACAddr, raw []byte, rate dot11.Rate, deliverAt time.Duration) error {
	tx := m.allocTx()
	tx.src, tx.frame, tx.rate = src, raw, rate
	if _, err := m.eng.ScheduleArgAt(deliverAt, m.deliverFn, tx); err != nil {
		tx.frame = nil
		m.txFree = append(m.txFree, tx)
		return err
	}
	return nil
}

// Attach registers a node under its MAC address. Attaching the same
// address twice replaces the previous node and keeps its original
// position in the broadcast delivery order.
func (m *Medium) Attach(addr dot11.MACAddr, n Node) {
	if _, ok := m.nodes[addr]; !ok {
		m.fanout = append(m.fanout, fanoutEntry{addr: addr, node: n})
	} else {
		for i := range m.fanout {
			if m.fanout[i].addr == addr {
				m.fanout[i].node = n
				break
			}
		}
	}
	m.nodes[addr] = n
}

// AttachBlock registers n as a block of count members at consecutive
// addresses starting at base. The base address lands in the unicast
// map; other member addresses resolve by block membership. count == 1
// degenerates to Attach.
func (m *Medium) AttachBlock(base dot11.MACAddr, count int, n Node) error {
	if count < 1 {
		return fmt.Errorf("medium: block count %d < 1", count)
	}
	if count > dot11.MaxAddrBlock {
		return fmt.Errorf("medium: block count %d exceeds address space", count)
	}
	if count == 1 {
		m.Attach(base, n)
		return nil
	}
	if _, ok := m.nodes[base]; ok {
		return fmt.Errorf("medium: block base %v already attached", base)
	}
	m.fanout = append(m.fanout, fanoutEntry{addr: base, count: count, node: n})
	m.nodes[base] = n
	return nil
}

// SplitBlock implements BlockChannel: members [at, count) of the block
// based at base re-register under n, directly after the shrunk block in
// the delivery order.
func (m *Medium) SplitBlock(base dot11.MACAddr, at int, n Node) error {
	for i := range m.fanout {
		e := &m.fanout[i]
		if e.addr != base || e.count <= 1 {
			continue
		}
		if at < 1 || at >= e.count {
			return fmt.Errorf("medium: split at %d outside block of %d", at, e.count)
		}
		m.splitEntryAt(i, at, n)
		return nil
	}
	return fmt.Errorf("medium: no block based at %v", base)
}

// splitEntryAt shrinks the block entry at index i to its first at
// members and inserts a new entry for the tail — node n under the
// tail's base address — immediately after it, preserving member order
// in the group delivery walk. It returns the index of the new entry.
func (m *Medium) splitEntryAt(i, at int, n Node) int {
	e := &m.fanout[i]
	tail := fanoutEntry{addr: dot11.AddrAdd(e.addr, at), count: e.count - at, node: n}
	e.count = at
	m.fanout = append(m.fanout, fanoutEntry{})
	copy(m.fanout[i+2:], m.fanout[i+1:])
	m.fanout[i+1] = tail
	m.nodes[tail.addr] = n
	return i + 1
}

// Detach removes the entry registered at addr — a single-address node
// or a whole block based there — from the channel: it stops receiving
// frames and leaves the broadcast delivery order (later attachers take
// tail slots as usual). Detaching an unknown address is a no-op.
// Roaming clients use it when they leave one medium shard for another;
// a split block's segments detach individually by their own base.
func (m *Medium) Detach(addr dot11.MACAddr) {
	if _, ok := m.nodes[addr]; !ok {
		return
	}
	for i := range m.fanout {
		if m.fanout[i].addr == addr {
			m.fanout = append(m.fanout[:i], m.fanout[i+1:]...)
			break
		}
	}
	delete(m.nodes, addr)
}

// PHY returns the channel's PHY parameters.
func (m *Medium) PHY() dot11.PHY { return m.phy }

// Airtime returns the on-air duration of a frame of n bytes at rate,
// including the FCS the marshalled bytes omit.
func (m *Medium) Airtime(n int, rate dot11.Rate) time.Duration {
	return m.phy.FrameAirtime(n+dot11.FCSLen, rate)
}

// Transmit queues a frame for transmission from src. If the channel is
// busy the transmission starts after the in-flight frame plus a DIFS
// (FIFO channel access — contention and collisions are abstracted away;
// the Bianchi model covers their effect on capacity analytically).
// Delivery callbacks fire at end of airtime. Transmit reports the
// delivery time.
func (m *Medium) Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration {
	start := m.eng.Now()
	if m.busyUntil > start {
		start = m.busyUntil + m.phy.DIFS
	}
	air := m.Airtime(len(raw), rate)
	end := start + air + m.phy.PropagationDelay
	m.busyUntil = start + air
	m.Stats.Transmissions++
	m.Stats.AirtimeBusy += air

	// The single copy on the frame's whole journey: the caller may reuse
	// its buffer, but from here every receiver shares this one buffer
	// immutably (the fault plan's Corrupt verdict is the only cloning
	// path; see deliverOne).
	frame := append([]byte(nil), raw...)
	if m.tap != nil {
		m.tap(frame, rate, start)
	}
	if m.obs != nil {
		m.obs(src, frame, rate, start, end)
	}
	tx := m.allocTx()
	tx.src, tx.frame, tx.rate = src, frame, rate
	m.eng.MustScheduleArgAt(end, m.deliverFn, tx)
	return end
}

// allocTx takes a pendingTx from the free list or allocates one.
func (m *Medium) allocTx() *pendingTx {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return tx
	}
	return new(pendingTx)
}

// deliverEvent is the bound ArgEvent for scheduled deliveries.
func (m *Medium) deliverEvent(now time.Duration, arg any) {
	tx := arg.(*pendingTx)
	m.deliver(tx.src, tx.frame, tx.rate, now)
	tx.frame = nil
	m.txFree = append(m.txFree, tx)
}

// deliver routes the frame to its destination(s). Block entries may
// split mid-walk (divergent fault verdicts), so the group loop indexes
// the fanout slice and skips the entries a block delivery consumed.
func (m *Medium) deliver(src dot11.MACAddr, raw []byte, rate dot11.Rate, now time.Duration) {
	dst, ok := destination(raw)
	if !ok {
		return
	}
	if dst.IsMulticast() {
		for i := 0; i < len(m.fanout); i++ {
			if m.fanout[i].addr == src {
				continue
			}
			if m.fanout[i].count > 1 {
				i += m.deliverBlock(i, src, dst, raw, rate, now) - 1
				continue
			}
			e := &m.fanout[i]
			m.deliverOne(e.node, e.addr, src, dst, raw, rate, now)
		}
		return
	}
	if n, ok := m.nodes[dst]; ok {
		m.deliverOne(n, dst, src, dst, raw, rate, now)
		return
	}
	// Not a registered address: it may be a non-base member of a block.
	for i := range m.fanout {
		e := &m.fanout[i]
		if e.count <= 1 {
			continue
		}
		if off, ok := dot11.AddrOffset(e.addr, dst); ok && off < e.count {
			m.deliverOne(e.node, dst, src, dst, raw, rate, now)
			return
		}
	}
}

// deliverBlock hands a group frame to the block entry at index i —
// once per maximal run of identically-treated members rather than once
// per member. With no fault plan that is a single Receive standing for
// the whole block. With a plan, verdicts (and corruption byte draws)
// are taken per member in member order — the exact RNG consumption of
// an expanded per-member walk — and divergent runs split the block
// lazily via BlockSplitter. It returns the number of fanout entries
// that now cover the original block.
//
// A block node may also split ITSELF during its Receive (SplitBlock
// from inside the callback — cohorts do this when a group frame lands
// mid-handshake); the contract is that such a node delivers the
// in-flight frame to the carved tail itself, so entries inserted during
// a delivery are counted as consumed and not visited again.
func (m *Medium) deliverBlock(i int, src, dst dot11.MACAddr, raw []byte, rate dot11.Rate, now time.Duration) int {
	count := m.fanout[i].count
	if m.plan == nil {
		m.Stats.Deliveries += count
		pre := len(m.fanout)
		handTo(m.fanout[i].node, dst, raw, rate, now)
		return 1 + len(m.fanout) - pre
	}

	// Per-member verdict pass, interleaving the corruption byte draw at
	// each corrupted member's position like the expanded walk does.
	m.verdicts = m.verdicts[:0]
	base := m.fanout[i].addr
	kind := dot11.Classify(raw)
	for k := 0; k < count; k++ {
		v := m.plan.Deliver(fault.Delivery{
			Raw: raw, Kind: kind,
			Src: src, Dst: dst, Rcv: dot11.AddrAdd(base, k), At: now,
		}, m.rng)
		bv := blockVerdict{v: v, corrupt: -1}
		if v.Corrupt {
			bv.corrupt = m.rng.Intn(len(raw))
		}
		m.verdicts = append(m.verdicts, bv)
	}

	// Walk maximal runs of equal treatment. A run that does not reach
	// the block's end splits the tail off FIRST — before the run's own
	// delivery — so the tail node's clone never sees a frame its
	// members' verdicts withheld; then the isolated head run receives
	// under its uniform verdict. A node that cannot split falls back to
	// one delivery per member.
	consumed := 1
	cur := i // entry covering members [lo, count) at loop top
	for lo := 0; lo < count; {
		hi := lo + 1
		for hi < count && m.verdicts[hi] == m.verdicts[lo] {
			hi++
		}
		if hi < count {
			sp, ok := m.fanout[cur].node.(BlockSplitter)
			if !ok {
				// No split support: deliver the rest member-by-member to
				// the same node, preserving per-member stats.
				for k := lo; k < count; k++ {
					m.applyVerdict(m.fanout[cur].node, dst, m.verdicts[k], 1, raw, rate, now)
				}
				return consumed
			}
			tail := sp.SplitTail(hi - lo)
			next := m.splitEntryAt(cur, hi-lo, tail)
			pre := len(m.fanout)
			m.applyVerdict(m.fanout[cur].node, dst, m.verdicts[lo], hi-lo, raw, rate, now)
			ins := len(m.fanout) - pre // self-splits during the delivery
			cur = next + ins
			consumed += 1 + ins
		} else {
			pre := len(m.fanout)
			m.applyVerdict(m.fanout[cur].node, dst, m.verdicts[lo], hi-lo, raw, rate, now)
			consumed += len(m.fanout) - pre
		}
		lo = hi
	}
	return consumed
}

// applyVerdict delivers one group frame to a block node under a uniform
// member verdict, scaling the stats by the member count it stands for.
// A corrupted run's members share one garbled copy: their corruption
// byte draws were equal, or they would not be in the same run.
func (m *Medium) applyVerdict(n Node, to dot11.MACAddr, bv blockVerdict, members int, raw []byte, rate dot11.Rate, now time.Duration) {
	if bv.v.Drop {
		m.Stats.Losses += members
		return
	}
	if bv.v.Corrupt {
		c := append([]byte(nil), raw...)
		c[bv.corrupt] ^= 0xff
		raw = c
		m.Stats.Corruptions += members
	}
	if bv.v.Duplicate {
		m.Stats.Duplicates += members
		m.Stats.Deliveries += members
		handTo(n, to, raw, rate, now)
	}
	m.Stats.Deliveries += members
	handTo(n, to, raw, rate, now)
}

// deliverOne hands the frame to one node, applying the fault plan's
// verdict for this (frame, receiver) pair.
// handTo performs the final hand-off of a delivery to a node. Nodes
// standing for several addresses (RoutedNode) are told the address the
// medium routed the frame to — the pre-fault destination, trustworthy
// even when a Corrupt verdict garbled the frame's own address bytes.
// Plain nodes just get the frame; a single station never needs the
// routing (its handlers mirror a real receiver, which tuned to the
// frame before any bits were damaged).
func handTo(n Node, to dot11.MACAddr, raw []byte, rate dot11.Rate, now time.Duration) {
	if rn, ok := n.(RoutedNode); ok {
		rn.ReceiveAs(to, raw, rate, now)
		return
	}
	n.Receive(raw, rate, now)
}

func (m *Medium) deliverOne(n Node, rcv, src, dst dot11.MACAddr, raw []byte, rate dot11.Rate, now time.Duration) {
	if m.plan != nil {
		v := m.plan.Deliver(fault.Delivery{
			Raw: raw, Kind: dot11.Classify(raw),
			Src: src, Dst: dst, Rcv: rcv, At: now,
		}, m.rng)
		// The corruption byte is drawn whenever the verdict says Corrupt
		// — even alongside Drop — so the RNG stream matches the block
		// walk in deliverBlock, which draws it at verdict time.
		cb := -1
		if v.Corrupt {
			cb = m.rng.Intn(len(raw))
		}
		if v.Drop {
			m.Stats.Losses++
			return
		}
		if v.Corrupt {
			// Corruption garbles this receiver's copy only; other
			// receivers of a group frame keep the original bytes, as
			// with independent radios on a shared channel.
			c := append([]byte(nil), raw...)
			c[cb] ^= 0xff
			raw = c
			m.Stats.Corruptions++
		}
		if v.Duplicate {
			m.Stats.Duplicates++
			m.Stats.Deliveries++
			handTo(n, dst, raw, rate, now)
		}
	}
	m.Stats.Deliveries++
	handTo(n, dst, raw, rate, now)
}

// destination extracts the receiver address from a raw frame.
func destination(raw []byte) (dot11.MACAddr, bool) {
	var dst dot11.MACAddr
	if len(raw) < 10 {
		return dst, false
	}
	// All frame types used here carry the receiver address at offset 4
	// (Addr1 for management/data, RA for ACK, BSSID for PS-Poll).
	copy(dst[:], raw[4:10])
	return dst, true
}
