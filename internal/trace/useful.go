package trace

import (
	"sort"

	"repro/internal/sim"
)

// This file tags trace frames as useful or useless to a client — the
// u_i of Eq. (1). The paper sweeps the useful fraction from 10% down to
// 2%; two taggers are provided:
//
//   - TagUniform marks each frame useful independently with probability
//     p, matching the paper's "x% of the broadcast frames are useful"
//     abstraction exactly.
//   - TagByOpenPorts derives usefulness from a concrete set of open UDP
//     ports, which is how the deployed HIDE system actually decides; use
//     OpenPortsForFraction to choose a port set whose traffic share
//     approximates a target fraction.

// TagUniform returns a usefulness vector where each frame is useful
// with probability p (deterministic for a given seed).
func TagUniform(tr *Trace, p float64, seed uint64) []bool {
	r := sim.NewRNG(seed)
	u := make([]bool, len(tr.Frames))
	for i := range u {
		u[i] = r.Float64() < p
	}
	return u
}

// TagUniformInto is TagUniform appending into dst (normally dst[:0] of
// a reused buffer), growing it only when capacity runs out. The RNG
// draw sequence is identical to TagUniform's, so the vector matches it
// bit for bit.
func TagUniformInto(dst []bool, tr *Trace, p float64, seed uint64) []bool {
	r := *sim.NewRNG(seed)
	for range tr.Frames {
		dst = append(dst, r.Float64() < p)
	}
	return dst
}

// TagByOpenPorts returns a usefulness vector where a frame is useful
// iff its destination port is in open.
func TagByOpenPorts(tr *Trace, open map[uint16]bool) []bool {
	u := make([]bool, len(tr.Frames))
	for i, f := range tr.Frames {
		u[i] = open[f.DstPort]
	}
	return u
}

// OpenPortsForFraction greedily selects a set of destination ports whose
// combined frame share best approximates target (in [0, 1]). Ports are
// considered from lowest traffic volume upward so small targets are
// reachable; ties break on port number for determinism.
func OpenPortsForFraction(tr *Trace, target float64) map[uint16]bool {
	open := make(map[uint16]bool)
	if len(tr.Frames) == 0 || target <= 0 {
		return open
	}
	hist := tr.PortHistogram()
	type pc struct {
		port  uint16
		count int
	}
	ports := make([]pc, 0, len(hist))
	for p, c := range hist {
		ports = append(ports, pc{p, c})
	}
	sort.Slice(ports, func(i, j int) bool {
		if ports[i].count != ports[j].count {
			return ports[i].count < ports[j].count
		}
		return ports[i].port < ports[j].port
	})
	total := len(tr.Frames)
	covered := 0
	for _, p := range ports {
		newShare := float64(covered+p.count) / float64(total)
		oldShare := float64(covered) / float64(total)
		// Stop if adding this port overshoots more than staying short.
		if newShare-target > target-oldShare {
			break
		}
		open[p.port] = true
		covered += p.count
		if float64(covered)/float64(total) >= target {
			break
		}
	}
	return open
}

// UsefulFraction returns the fraction of frames marked useful.
func UsefulFraction(u []bool) float64 {
	if len(u) == 0 {
		return 0
	}
	n := 0
	for _, b := range u {
		if b {
			n++
		}
	}
	return float64(n) / float64(len(u))
}
