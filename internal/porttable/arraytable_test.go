package porttable

import (
	"testing"
	"testing/quick"

	"repro/internal/dot11"
)

func TestArrayTableBasics(t *testing.T) {
	tab := NewArray()
	tab.Update(1, []uint16{53, 5353})
	tab.Update(2, []uint16{5353})
	if got := tab.Lookup(5353); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Lookup = %v", got)
	}
	if !tab.Listening(53, 1) || tab.Listening(53, 2) {
		t.Fatal("Listening wrong")
	}
	if tab.Len() != 3 || tab.Clients() != 2 {
		t.Fatalf("Len=%d Clients=%d", tab.Len(), tab.Clients())
	}
	tab.Remove(1)
	if tab.Listening(53, 1) || !tab.Listening(5353, 2) {
		t.Fatal("Remove wrong")
	}
	if tab.Lookup(9999) != nil {
		t.Fatal("missing port returned entries")
	}
}

func TestArrayTableReplaceAndDuplicates(t *testing.T) {
	tab := NewArray()
	tab.Update(7, []uint16{100, 100, 200})
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dup collapsed)", tab.Len())
	}
	tab.Update(7, []uint16{300})
	if tab.Listening(100, 7) || tab.Listening(200, 7) || !tab.Listening(300, 7) {
		t.Fatal("Update did not replace old ports")
	}
}

// TestTablesEquivalentProperty drives both implementations with the
// same update sequence and checks they answer identically — the
// ablation's correctness premise.
func TestTablesEquivalentProperty(t *testing.T) {
	f := func(updates []struct {
		AID   uint8
		Ports []uint16
	}, probes []uint16) bool {
		h := New()
		a := NewArray()
		for _, u := range updates {
			aid := dot11.AID(u.AID%50 + 1)
			ports := u.Ports
			if len(ports) > 30 {
				ports = ports[:30]
			}
			h.Update(aid, ports)
			a.Update(aid, ports)
		}
		if h.Len() != a.Len() || h.Clients() != a.Clients() {
			return false
		}
		for _, p := range probes {
			hGot, aGot := h.Lookup(p), a.Lookup(p)
			if len(hGot) != len(aGot) {
				return false
			}
			for i := range hGot {
				if hGot[i] != aGot[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHashTableLookup(b *testing.B) {
	tab := New()
	for aid := dot11.AID(1); aid <= 50; aid++ {
		tab.Update(aid, []uint16{uint16(5000 + aid%25), 5353})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(uint16(5000 + i%30))
	}
}

func BenchmarkArrayTableLookup(b *testing.B) {
	tab := NewArray()
	for aid := dot11.AID(1); aid <= 50; aid++ {
		tab.Update(aid, []uint16{uint16(5000 + aid%25), 5353})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Lookup(uint16(5000 + i%30))
	}
}

func BenchmarkHashTableUpdate(b *testing.B) {
	tab := New()
	ports := make([]uint16, 50)
	for i := range ports {
		ports[i] = uint16(1024 + i*3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(dot11.AID(1+i%50), ports)
	}
}

func BenchmarkArrayTableUpdate(b *testing.B) {
	tab := NewArray()
	ports := make([]uint16, 50)
	for i := range ports {
		ports[i] = uint16(1024 + i*3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Update(dot11.AID(1+i%50), ports)
	}
}
