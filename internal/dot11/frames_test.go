package dot11

import (
	"bytes"
	"testing"
	"testing/quick"
)

var (
	apAddr = MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	c1Addr = MACAddr{0x02, 0x00, 0x00, 0x00, 0x00, 0x10}
)

func TestFrameControlRoundTrip(t *testing.T) {
	cases := []FrameControl{
		{Type: TypeManagement, Subtype: SubtypeBeacon},
		{Type: TypeManagement, Subtype: SubtypeUDPPortMessage, Retry: true},
		{Type: TypeControl, Subtype: SubtypeACK},
		{Type: TypeControl, Subtype: SubtypePSPoll, PwrMgmt: true},
		{Type: TypeData, Subtype: SubtypeData, FromDS: true, MoreData: true},
		{Type: TypeData, Subtype: SubtypeData, ToDS: true, PwrMgmt: true, Retry: true},
	}
	for _, fc := range cases {
		got := UnmarshalFrameControl(fc.Marshal())
		if got != fc {
			t.Errorf("frame control round trip: got %+v, want %+v", got, fc)
		}
	}
}

func TestFrameControlRoundTripProperty(t *testing.T) {
	f := func(ty, st uint8, toDS, fromDS, more, pwr, retry bool) bool {
		fc := FrameControl{
			Type: FrameType(ty % 3), Subtype: st % 16,
			ToDS: toDS, FromDS: fromDS, MoreData: more, PwrMgmt: pwr, Retry: retry,
		}
		return UnmarshalFrameControl(fc.Marshal()) == fc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBeaconRoundTrip(t *testing.T) {
	var bm VirtualBitmap
	bm.Set(3)
	bm.Set(17)
	btim := BTIMFromBitmap(&bm)
	b := &Beacon{
		Header:         MACHeader{Addr1: Broadcast, Addr2: apAddr, Addr3: apAddr, Seq: 7 << 4},
		Timestamp:      123456789,
		BeaconInterval: 100,
		Capability:     0x0401,
		SSID:           "hide-test",
		TIM: &TIM{
			DTIMCount: 0, DTIMPeriod: 3, Broadcast: true,
			BitmapOffset: 0, PartialBitmap: []byte{0x02},
		},
		BTIM:  &btim,
		Extra: []Element{{ID: 42, Body: []byte{1, 2, 3}}},
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBeacon(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != b.Timestamp || got.BeaconInterval != b.BeaconInterval ||
		got.Capability != b.Capability || got.SSID != b.SSID {
		t.Errorf("fixed fields mismatch: got %+v", got)
	}
	if got.TIM == nil || !got.TIM.Broadcast || got.TIM.DTIMPeriod != 3 {
		t.Errorf("TIM mismatch: %+v", got.TIM)
	}
	if got.BTIM == nil {
		t.Fatal("BTIM missing after round trip")
	}
	for aid := AID(1); aid <= 32; aid++ {
		want := aid == 3 || aid == 17
		if got.BTIM.UsefulBroadcastBuffered(aid) != want {
			t.Errorf("BTIM bit for AID %d = %v, want %v", aid, !want, want)
		}
	}
	if len(got.Extra) != 1 || got.Extra[0].ID != 42 || !bytes.Equal(got.Extra[0].Body, []byte{1, 2, 3}) {
		t.Errorf("extra elements mismatch: %+v", got.Extra)
	}
	if got.Header.Addr2 != apAddr {
		t.Errorf("header source = %v, want %v", got.Header.Addr2, apAddr)
	}
}

func TestBeaconWithoutHIDEElements(t *testing.T) {
	b := &Beacon{
		Header:         MACHeader{Addr1: Broadcast, Addr2: apAddr, Addr3: apAddr},
		BeaconInterval: 100,
		SSID:           "legacy",
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBeacon(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.TIM != nil || got.BTIM != nil {
		t.Fatal("decoded elements that were never encoded")
	}
}

func TestUnmarshalBeaconRejectsWrongType(t *testing.T) {
	m := &UDPPortMessage{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBeacon(raw); err == nil {
		t.Fatal("UnmarshalBeacon accepted a UDP Port Message")
	}
}

func TestUDPPortMessageRoundTrip(t *testing.T) {
	ports := []uint16{53, 67, 68, 137, 1900, 5353, 49152}
	m := &UDPPortMessage{
		Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr},
		Ports:  ports,
	}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 19: L = Lmac + 2 + 2*N for N <= 127 (PHY overhead added on air).
	if want := MACHeaderLen + 2 + 2*len(ports); len(raw) != want {
		t.Errorf("wire length = %d, want %d per Eq. 19", len(raw), want)
	}
	got, err := UnmarshalUDPPortMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ports) != len(ports) {
		t.Fatalf("ports round trip: got %v, want %v", got.Ports, ports)
	}
	for i := range ports {
		if got.Ports[i] != ports[i] {
			t.Errorf("port[%d] = %d, want %d", i, got.Ports[i], ports[i])
		}
	}
	if got.Header.Addr2 != c1Addr {
		t.Errorf("source = %v, want %v", got.Header.Addr2, c1Addr)
	}
}

func TestUDPPortMessageSplitsLargePortSets(t *testing.T) {
	ports := make([]uint16, 300) // > 2 elements
	for i := range ports {
		ports[i] = uint16(1024 + i)
	}
	m := &UDPPortMessage{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}, Ports: ports}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUDPPortMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ports) != 300 {
		t.Fatalf("got %d ports, want 300", len(got.Ports))
	}
	for i := range ports {
		if got.Ports[i] != ports[i] {
			t.Fatalf("port[%d] = %d, want %d", i, got.Ports[i], ports[i])
		}
	}
}

func TestUDPPortMessageEmpty(t *testing.T) {
	m := &UDPPortMessage{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUDPPortMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ports) != 0 {
		t.Fatalf("empty message round-tripped to %v", got.Ports)
	}
}

func TestUDPPortMessageRoundTripProperty(t *testing.T) {
	f := func(ports []uint16) bool {
		m := &UDPPortMessage{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}, Ports: ports}
		raw, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalUDPPortMessage(raw)
		if err != nil {
			return false
		}
		if len(got.Ports) != len(ports) {
			return false
		}
		for i := range ports {
			if got.Ports[i] != ports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestACKRoundTrip(t *testing.T) {
	a := &ACK{RA: c1Addr}
	got, err := UnmarshalACK(a.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.RA != c1Addr {
		t.Errorf("RA = %v, want %v", got.RA, c1Addr)
	}
}

func TestPSPollRoundTrip(t *testing.T) {
	p := &PSPoll{AID: 42, BSSID: apAddr, TA: c1Addr}
	got, err := UnmarshalPSPoll(p.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.AID != 42 || got.BSSID != apAddr || got.TA != c1Addr {
		t.Errorf("PS-Poll round trip: %+v", got)
	}
}

func TestDataFrameWithUDPRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 100)
	body := EncapsulateUDP(UDPDatagram{
		SrcIP: [4]byte{192, 168, 1, 5}, DstIP: [4]byte{255, 255, 255, 255},
		SrcPort: 5353, DstPort: 5353, Payload: payload,
	})
	d := &DataFrame{
		Header: MACHeader{
			FC:    FrameControl{FromDS: true, MoreData: true},
			Addr1: Broadcast, Addr2: apAddr, Addr3: apAddr,
		},
		Payload: body,
	}
	raw := d.Marshal()
	got, err := UnmarshalDataFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Header.FC.MoreData {
		t.Error("MoreData bit lost")
	}
	if !got.Header.Addr1.IsBroadcast() {
		t.Error("broadcast destination lost")
	}
	port, err := DstUDPPort(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if port != 5353 {
		t.Errorf("dst port = %d, want 5353", port)
	}
	dg, err := ParseUDP(got.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dg.Payload, payload) {
		t.Error("UDP payload corrupted in round trip")
	}
}

func TestParseUDPRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),
		bytes.Repeat([]byte{0xff}, 50),
	}
	for _, c := range cases {
		if _, err := ParseUDP(c); err == nil {
			t.Errorf("ParseUDP accepted %d garbage bytes", len(c))
		}
	}
}

func TestParseUDPRejectsNonUDPProtocol(t *testing.T) {
	body := EncapsulateUDP(UDPDatagram{DstPort: 80})
	body[LLCSNAPLen+9] = 6 // TCP
	if _, err := ParseUDP(body); err == nil {
		t.Fatal("ParseUDP accepted a TCP packet")
	}
}

func TestUDPEncapsRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		body := EncapsulateUDP(UDPDatagram{SrcPort: sp, DstPort: dp, Payload: payload})
		d, err := ParseUDP(body)
		if err != nil {
			return false
		}
		return d.SrcPort == sp && d.DstPort == dp && bytes.Equal(d.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClassify(t *testing.T) {
	var bm VirtualBitmap
	btim := BTIMFromBitmap(&bm)
	beacon := &Beacon{Header: MACHeader{Addr1: Broadcast, Addr2: apAddr, Addr3: apAddr}, BTIM: &btim}
	beaconRaw, err := beacon.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	upm := &UDPPortMessage{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}, Ports: []uint16{53}}
	upmRaw, err := upm.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	data := &DataFrame{Header: MACHeader{Addr1: Broadcast, Addr2: apAddr, Addr3: apAddr}}
	cases := []struct {
		raw  []byte
		want FrameKind
	}{
		{beaconRaw, KindBeacon},
		{upmRaw, KindUDPPortMessage},
		{(&ACK{RA: c1Addr}).Marshal(), KindACK},
		{(&PSPoll{AID: 1, BSSID: apAddr, TA: c1Addr}).Marshal(), KindPSPoll},
		{data.Marshal(), KindData},
		{nil, KindUnknown},
		{[]byte{0xff}, KindUnknown},
	}
	for _, c := range cases {
		if got := Classify(c.raw); got != c.want {
			t.Errorf("Classify(%d bytes) = %v, want %v", len(c.raw), got, c.want)
		}
	}
}

func TestParseElementsErrors(t *testing.T) {
	if _, err := ParseElements([]byte{5}); err == nil {
		t.Error("accepted truncated element header")
	}
	if _, err := ParseElements([]byte{5, 10, 1, 2}); err == nil {
		t.Error("accepted element with short body")
	}
}

func TestElementTooLong(t *testing.T) {
	e := Element{ID: 1, Body: make([]byte, 256)}
	if _, err := e.AppendTo(nil); err == nil {
		t.Fatal("accepted 256-byte element body")
	}
}

func TestTIMOddOffsetRejected(t *testing.T) {
	tim := TIM{BitmapOffset: 3}
	if _, err := tim.Element(); err == nil {
		t.Fatal("TIM accepted odd bitmap offset")
	}
}

func TestBTIMParseRejectsOddOffset(t *testing.T) {
	e := Element{ID: ElementIDBTIM, Body: []byte{3, 0xff}}
	if _, err := ParseBTIM(e); err == nil {
		t.Fatal("ParseBTIM accepted odd offset")
	}
}

func TestPHYAirtime(t *testing.T) {
	phy := DefaultPHY()
	// 192 bits preamble at 1 Mb/s = 192 µs.
	if got := phy.PreambleDuration(); got != 192*1000 {
		t.Errorf("preamble duration = %v, want 192µs", got)
	}
	// 1000-byte frame at 1 Mb/s: 192µs + 8000µs.
	if got := phy.FrameAirtime(1000, Rate1Mbps); got != 8192*1000 {
		t.Errorf("airtime = %v, want 8.192ms", got)
	}
	// Higher rate shortens only the MAC portion.
	at11 := phy.FrameAirtime(1000, Rate11Mbps)
	if at11 >= phy.FrameAirtime(1000, Rate1Mbps) {
		t.Error("11 Mb/s airtime not shorter than 1 Mb/s")
	}
	if at11 <= phy.PreambleDuration() {
		t.Error("airtime not longer than bare preamble")
	}
}

func TestMACAddrHelpers(t *testing.T) {
	if !Broadcast.IsBroadcast() || !Broadcast.IsMulticast() {
		t.Error("broadcast address misclassified")
	}
	if apAddr.IsBroadcast() || apAddr.IsMulticast() {
		t.Error("unicast address misclassified")
	}
	mc := MACAddr{0x01, 0x00, 0x5e, 0, 0, 1}
	if !mc.IsMulticast() || mc.IsBroadcast() {
		t.Error("multicast address misclassified")
	}
	if Broadcast.String() != "ff:ff:ff:ff:ff:ff" {
		t.Errorf("String = %q", Broadcast.String())
	}
}

func TestAIDValid(t *testing.T) {
	cases := []struct {
		aid  AID
		want bool
	}{{0, false}, {1, true}, {2007, true}, {2008, false}}
	for _, c := range cases {
		if c.aid.Valid() != c.want {
			t.Errorf("AID(%d).Valid() = %v, want %v", c.aid, !c.want, c.want)
		}
	}
}

func TestDisassocRoundTrip(t *testing.T) {
	d := &Disassoc{
		Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr},
		Reason: ReasonStationLeft,
	}
	raw := d.Marshal()
	if Classify(raw) != KindDisassoc {
		t.Fatalf("Classify = %v", Classify(raw))
	}
	got, err := UnmarshalDisassoc(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != ReasonStationLeft || got.Header.Addr2 != c1Addr {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := UnmarshalDisassoc(raw[:10]); err == nil {
		t.Error("short disassoc accepted")
	}
}
