package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism enforces the repo's byte-identity story: the analytic
// model, the frame-level simulation, and the parallel engine must
// produce the same bytes on every run at every worker count, so
// deterministic code may not read the wall clock, draw from the
// shared math/rand source, or let map iteration order reach anything
// order-sensitive.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since/time.Until, the global math/rand source, and " +
		"order-sensitive map iteration (appending without a later sort, printing, or " +
		"returning a value mid-iteration) outside the real-time allowlist " +
		"(internal/sim/realtime.go, internal/porttable/measure.go, " +
		"internal/airlink/airlink.go, internal/check/live.go, internal/cli, " +
		"internal/daemon); " +
		"in seeded-RNG-only packages (internal/fault) every math/rand call is banned, " +
		"including private rand.New/rand.NewSource",
	Run: runDeterminism,
}

// determinismAllowFiles maps a module-relative package path to file
// base names excused from the check: the real-time adapter pins
// virtual time to the wall clock by design, the porttable calibration
// harness measures real elapsed time, the airlink hub deadlines real
// sockets, and the live chaos harness drives a wall-clock daemon.
var determinismAllowFiles = map[string]string{
	"internal/sim":       "realtime.go",
	"internal/porttable": "measure.go",
	"internal/airlink":   "airlink.go",
	"internal/check":     "live.go",
}

// determinismAllowPkgs excuses whole packages: terminal plumbing and
// the daemon supervisor are wall-clock adjacent by nature (signal
// handling, HTTP deadlines, drain timeouts).
var determinismAllowPkgs = map[string]bool{
	"internal/cli":    true,
	"internal/daemon": true,
}

// bannedClockFuncs are the wall-clock reads.
var bannedClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRandFuncs construct private deterministic sources and are
// fine; everything else package-level in math/rand draws from the
// shared global source.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// seededRNGOnly marks packages whose API threads a sim.RNG through
// every randomized code path (fault.Plan.Deliver). There even a
// private rand.New/rand.NewSource is banned: a second generator would
// split the draw stream and break same-seed reproducibility.
var seededRNGOnly = map[string]bool{"internal/fault": true}

func runDeterminism(p *Pass) error {
	if determinismAllowPkgs[p.RelPath()] {
		return nil
	}
	for _, f := range p.Files {
		base := filenameBase(p, f)
		if determinismAllowFiles[p.RelPath()] == base {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkBannedCall(p, n)
				case *ast.RangeStmt:
					checkMapRange(p, fn, n)
				}
				return true
			})
		}
	}
	return nil
}

// filenameBase returns the base name of the file a node lives in.
func filenameBase(p *Pass, f *ast.File) string {
	name := p.Fset.Position(f.Pos()).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// checkBannedCall flags wall-clock reads and global math/rand draws.
func checkBannedCall(p *Pass, call *ast.CallExpr) {
	fn := funcObj(p.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedClockFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "time.%s reads the wall clock in deterministic code; use the simulation clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if seededRNGOnly[p.RelPath()] {
			p.Reportf(call.Pos(), "%s.%s in a seeded-RNG-only package; all randomness must flow from the sim.RNG passed to Deliver", fn.Pkg().Path(), fn.Name())
			return
		}
		if !allowedRandFuncs[fn.Name()] {
			p.Reportf(call.Pos(), "%s.%s draws from the shared global source; use a seeded *rand.Rand (rand.New)", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapRange flags range-over-map loops whose body is sensitive to
// iteration order: appending to an outer slice that is never sorted
// afterwards, writing output, or returning a value mid-iteration.
func checkMapRange(p *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	t := p.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var appendTargets []types.Object
	reported := false
	report := func(n ast.Node, format string, args ...any) {
		if !reported {
			reported = true
			p.Reportf(rs.Pos(), format, args...)
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if len(n.Results) > 0 {
				report(n, "returns a value from inside map iteration, so the result depends on map order; iterate sorted keys")
			}
		case *ast.CallExpr:
			if fn := funcObj(p.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
				(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
				report(n, "writes output from inside map iteration, so output order depends on map order; iterate sorted keys")
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || !isBuiltin(p.TypesInfo, id) {
					continue
				}
				for _, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					obj := p.TypesInfo.Uses[id]
					if obj == nil {
						obj = p.TypesInfo.Defs[id]
					}
					// Only appends escaping the loop are order-sensitive.
					if obj != nil && obj.Pos() < rs.Pos() {
						appendTargets = append(appendTargets, obj)
					}
				}
			}
		}
		return !reported
	})
	if reported {
		return
	}
	for _, obj := range appendTargets {
		if !sortedAfter(p, fn, rs, obj) {
			p.Reportf(rs.Pos(), "appends to %q in map-iteration order without sorting it afterwards; sort the slice (or iterate sorted keys)", obj.Name())
			return
		}
	}
}

// isBuiltin reports whether id resolves to a builtin.
func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// sortedAfter reports whether, later in the same function, obj is
// passed to a sort.* or slices.Sort* call — the collect-then-sort
// idiom that restores determinism.
func sortedAfter(p *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		f := funcObj(p.TypesInfo, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		pkg := f.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && p.TypesInfo.Uses[id] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
