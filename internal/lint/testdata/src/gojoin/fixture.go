// Package fixture exercises the gojoin analyzer. The test harness
// analyzes it as repro/internal/engine, where every spawned goroutine
// must be joined on all normal exit paths — the worker-pool and
// barrier-window determinism depends on no goroutine outliving the
// function that spawned it.
package fixture

import "sync"

// Leak spawns and returns without joining.
func Leak(n int) {
	for i := 0; i < n; i++ {
		go work(i) // want `goroutine may outlive the enclosing function`
	}
}

// WaitGrouped is the worker-pool shape: Add/go in a loop, Wait after.
func WaitGrouped(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// DoneChannel joins through a channel receive.
func DoneChannel() int {
	done := make(chan int)
	go func() {
		done <- work(1)
	}()
	return <-done
}

// JoinedOnOnePath waits on the success path but leaks on the error
// path — exactly the partial join the CFG walk exists to catch.
func JoinedOnOnePath(fail bool) error {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `goroutine may outlive the enclosing function`
		defer wg.Done()
		work(0)
	}()
	if fail {
		return errTest
	}
	wg.Wait()
	return nil
}

// DeferredJoin covers every exit with a deferred Wait.
func DeferredJoin(fail bool) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	wg.Add(1)
	go func() {
		defer wg.Done()
		work(0)
	}()
	if fail {
		return errTest
	}
	return nil
}

// RangeJoin drains a channel, which joins the producer.
func RangeJoin(n int) int {
	out := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			out <- i
		}
		close(out)
	}()
	total := 0
	for v := range out {
		total += v
	}
	return total
}

type testErr struct{}

func (testErr) Error() string { return "test" }

var errTest = testErr{}

func work(i int) int { return i * 2 }
