// Command hidetap is a monitor-mode client for a simulation served by
// `hidenet -serve`: it subscribes to the frame stream and prints a
// tcpdump-style line per frame, decoding beacons (TIM/BTIM bits), UDP
// Port Messages, and broadcast data. With -inject it pushes a
// broadcast frame into the running simulation first.
//
// Usage:
//
//	hidetap -addr 127.0.0.1:5599 [-n 50] [-inject 5353] [-timeout 10s]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/cli"
	"repro/internal/dot11"
	"repro/internal/netmedium"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5599", "monitor service address")
	count := flag.Int("n", 50, "frames to print before exiting (0 = forever)")
	inject := flag.Int("inject", 0, "inject a broadcast frame to this UDP port first")
	timeout := flag.Duration("timeout", 10*time.Second, "per-frame receive timeout")
	flag.Parse()

	tap, err := netmedium.Dial(*addr)
	if err != nil {
		cli.Exit("hidetap", err)
	}
	//lint:ignore errdrop teardown of a read-side UDP socket at process exit; nothing is buffered and the process has no one left to tell
	defer tap.Close()

	if *inject > 0 && *inject <= 0xffff {
		if err := tap.Inject(netmedium.InjectRequest{DstPort: uint16(*inject), PayloadSize: 64}); err != nil {
			cli.Exit("hidetap", fmt.Errorf("inject: %w", err))
		}
		fmt.Printf("injected broadcast to udp/%d\n", *inject)
	}

	// Ctrl-C ends the stream cleanly between frames (the per-frame
	// receive timeout bounds how long the check can be deferred).
	ctx, stop := cli.SignalContext()
	defer stop()
	for i := 0; *count == 0 || i < *count; i++ {
		if ctx.Err() != nil {
			return
		}
		//lint:ignore determinism live capture deadline on a real socket, not simulation state
		ev, err := tap.Next(time.Now().Add(*timeout))
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			cli.Exit("hidetap", err)
		}
		fmt.Println(describe(ev))
	}
}

// describe formats one frame event as a tcpdump-style line.
func describe(ev netmedium.FrameEvent) string {
	prefix := fmt.Sprintf("%12v %8s %4dB ", ev.At, ev.Rate, len(ev.Raw))
	switch dot11.Classify(ev.Raw) {
	case dot11.KindBeacon:
		b, err := dot11.UnmarshalBeacon(ev.Raw)
		if err != nil {
			return prefix + "beacon (malformed)"
		}
		s := prefix + fmt.Sprintf("beacon ssid=%q", b.SSID)
		if b.TIM != nil {
			s += fmt.Sprintf(" dtim=%d/%d bc=%v", b.TIM.DTIMCount, b.TIM.DTIMPeriod, b.TIM.Broadcast)
		}
		if b.BTIM != nil {
			s += fmt.Sprintf(" btim[off=%d,%dB]", b.BTIM.Offset, len(b.BTIM.PartialBitmap))
		}
		return s
	case dot11.KindUDPPortMessage:
		m, err := dot11.UnmarshalUDPPortMessage(ev.Raw)
		if err != nil {
			return prefix + "udp-port-message (malformed)"
		}
		return prefix + fmt.Sprintf("udp-port-message from %v: %d ports %v",
			m.Header.Addr2, len(m.Ports), m.Ports)
	case dot11.KindData:
		d, err := dot11.UnmarshalDataFrame(ev.Raw)
		if err != nil {
			return prefix + "data (malformed)"
		}
		dst := "unicast"
		if d.Header.Addr1.IsBroadcast() {
			dst = "broadcast"
		}
		if port, err := dot11.DstUDPPort(d.Payload); err == nil {
			return prefix + fmt.Sprintf("data %s udp/%d more=%v", dst, port, d.Header.FC.MoreData)
		}
		return prefix + "data " + dst
	case dot11.KindACK:
		return prefix + "ack"
	case dot11.KindPSPoll:
		return prefix + "ps-poll"
	case dot11.KindAssocRequest:
		return prefix + "assoc-request"
	case dot11.KindAssocResponse:
		return prefix + "assoc-response"
	default:
		return prefix + "unknown"
	}
}
