package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
)

// churnFlags collects the -ess experiment's knobs.
type churnFlags struct {
	aps      int
	stations int
	scenario string
	duration time.Duration
	roam     string
	dsLoss   float64
	jitter   float64
	seed     uint64
	format   string
	dev      hide.Profile
	workers  int
}

// runChurnGrid runs the cold-vs-replicated roaming experiment: every
// requested roam rate twice (cold port-table resync, then proactive DS
// replication) and prints the miss/energy comparison.
func runChurnGrid(f churnFlags) {
	var scenario hide.Scenario
	found := false
	for _, s := range hide.Scenarios {
		if strings.EqualFold(s.String(), f.scenario) {
			scenario, found = s, true
			break
		}
	}
	if !found {
		cli.Usagef("hidesim", "unknown scenario %q", f.scenario)
	}
	var rates []float64
	for _, part := range strings.Split(f.roam, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || r < 0 {
			cli.Usagef("hidesim", "bad roam rate %q", part)
		}
		rates = append(rates, r)
	}
	ctx, stop := cli.SignalContext()
	defer stop()

	type row struct {
		rate       float64
		replicated bool
		res        hide.ChurnResult
	}
	var rows []row
	for _, rate := range rates {
		for _, replicated := range []bool{false, true} {
			res, err := hide.RunChurnContext(ctx, hide.ChurnConfig{
				APs:           f.aps,
				Stations:      f.stations,
				Scenario:      scenario,
				Duration:      f.duration,
				RoamRate:      rate,
				Replicate:     replicated,
				DSLoss:        f.dsLoss,
				Seed:          f.seed,
				RefreshJitter: f.jitter,
				Device:        f.dev,
				Workers:       f.workers,
			})
			if err != nil {
				cli.Exit("hidesim", err)
			}
			rows = append(rows, row{rate, replicated, res})
		}
	}

	mode := func(replicated bool) string {
		if replicated {
			return "replicated"
		}
		return "cold"
	}
	if f.format == "csv" {
		w := csv.NewWriter(os.Stdout)
		if err := w.Write([]string{
			"scenario", "aps", "stations", "roams_per_min", "handoff",
			"roams", "wanted_misses", "resync_window_misses",
			"ds_replicated", "ds_dropped", "ports_seeded", "mean_power_mw",
		}); err != nil {
			cli.Exit("hidesim", err)
		}
		for _, r := range rows {
			s := r.res.Stats
			rec := []string{
				scenario.String(), strconv.Itoa(f.aps), strconv.Itoa(f.stations),
				strconv.FormatFloat(r.rate, 'f', -1, 64), mode(r.replicated),
				strconv.Itoa(s.Roams), strconv.Itoa(s.WantedMisses), strconv.Itoa(s.ResyncWindowMisses),
				strconv.Itoa(s.DSRecordsReplicated), strconv.Itoa(s.DSRecordsDropped),
				strconv.Itoa(s.PortsSeededOnRoam),
				strconv.FormatFloat(r.res.MeanPowerMW, 'f', 3, 64),
			}
			//lint:ignore errdrop csv.Writer defers write errors to Error(), checked after Flush
			_ = w.Write(rec)
		}
		w.Flush()
		if err := w.Error(); err != nil {
			cli.Exit("hidesim", err)
		}
		return
	}

	fmt.Printf("== ESS roaming churn: %s, %d APs, %d HIDE stations, %v, %s ==\n",
		scenario, f.aps, f.stations, rows[0].res.Duration.Round(time.Second), f.dev.Name)
	fmt.Printf("%-14s %-11s %7s %8s %13s %8s %8s %12s\n",
		"roams/sta/min", "handoff", "roams", "misses", "resync-misses", "ds-repl", "ds-drop", "power (mW)")
	for _, r := range rows {
		s := r.res.Stats
		fmt.Printf("%-14g %-11s %7d %8d %13d %8d %8d %12.3f\n",
			r.rate, mode(r.replicated), s.Roams, s.WantedMisses, s.ResyncWindowMisses,
			s.DSRecordsReplicated, s.DSRecordsDropped, r.res.MeanPowerMW)
	}
}
