package trace

import (
	"fmt"
	"time"

	"repro/internal/dot11"
	"repro/internal/sim"
)

// Scenario identifies one of the paper's five capture environments.
type Scenario int

// The five trace scenarios of the paper's evaluation (Figure 6).
const (
	Classroom Scenario = iota
	CSDept
	WML // college library
	Starbucks
	WRL // city public library
)

// Scenarios lists all five scenarios in the paper's presentation order.
var Scenarios = []Scenario{Classroom, CSDept, WML, Starbucks, WRL}

// String returns the scenario name as the paper labels it.
func (s Scenario) String() string {
	switch s {
	case Classroom:
		return "Classroom"
	case CSDept:
		return "CS_Dept"
	case WML:
		return "WML"
	case Starbucks:
		return "Starbucks"
	case WRL:
		return "WRL"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// PortMix is a weighted set of destination UDP ports appearing in
// broadcast traffic.
type PortMix struct {
	Ports   []uint16
	Weights []float64 // same length; need not sum to 1
}

// DefaultPortMix reflects the protocol composition typical of campus
// and public WiFi broadcast traffic: NetBIOS name/datagram service,
// SSDP, mDNS, DHCP, LLMNR, Dropbox LanSync, and printer discovery —
// the kinds of service-discovery chatter the paper calls useless to
// most phones.
func DefaultPortMix() PortMix {
	return PortMix{
		Ports:   []uint16{137, 138, 1900, 5353, 67, 68, 5355, 17500, 631, 9956},
		Weights: []float64{0.24, 0.16, 0.18, 0.16, 0.06, 0.02, 0.08, 0.05, 0.03, 0.02},
	}
}

// Pick draws a port from the mix.
func (m PortMix) Pick(r *sim.RNG) uint16 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range m.Weights {
		x -= w
		if x < 0 {
			return m.Ports[i]
		}
	}
	return m.Ports[len(m.Ports)-1]
}

// GenConfig parameterizes the synthetic trace generator. The generator
// uses a two-state (quiet/burst) modulated Poisson process: broadcast
// traffic in the wild is bursty — service-discovery protocols send
// trains of packets — which is what gives Figure 6 its long tails.
type GenConfig struct {
	Name     string
	Duration time.Duration
	// MeanFPS is the target average frames per second (the black
	// squares of Figure 6).
	MeanFPS float64
	// BurstFactor is the ratio of burst-state rate to the mean rate
	// (>= 1). Larger values produce heavier CDF tails.
	BurstFactor float64
	// BurstFraction is the fraction of time spent in the burst state.
	BurstFraction float64
	// MeanFrameBytes is the mean MAC frame length; lengths are drawn
	// from a shifted exponential clamped to [60, 1534].
	MeanFrameBytes int
	// MoreDataFraction is the probability a frame has the more-data
	// bit set (another group frame follows in the same DTIM burst).
	MoreDataFraction float64
	// Rates and RateWeights give the PHY rate distribution. Broadcast
	// frames go out at basic rates.
	Rates       []dot11.Rate
	RateWeights []float64
	// Mix is the destination-port composition.
	Mix PortMix
	// Seed makes generation reproducible.
	Seed uint64
}

// ScenarioConfig returns the calibrated generator configuration for a
// scenario. Mean rates are calibrated to Figure 6's marked averages:
// Classroom and WML are the heavy traces (the paper notes receive-all
// suspends <20% of the time there), Starbucks is the lightest.
func ScenarioConfig(s Scenario) GenConfig {
	cfg := GenConfig{
		Name:             s.String(),
		Duration:         45 * time.Minute,
		MeanFrameBytes:   220,
		MoreDataFraction: 0.35,
		Rates:            []dot11.Rate{dot11.Rate1Mbps, dot11.Rate2Mbps, dot11.Rate55Mbps, dot11.Rate11Mbps},
		RateWeights:      []float64{0.45, 0.25, 0.15, 0.15},
		Mix:              DefaultPortMix(),
		Seed:             0x41d3 + uint64(s),
	}
	// Densities are calibrated to the regime the paper's figures imply.
	// Classroom and WML are the heavy traces: with τ = 1 s wakelocks,
	// receive-all suspends <20% of the time there (Fig. 9) and HIDE:10%
	// still keeps the device awake often enough to land at the low end
	// of the savings ranges (34% Nexus One / 18% Galaxy S4). Starbucks
	// is the lightest trace, where savings peak. Means span Figure 6's
	// 0-50 frames/s axis with bursty tails.
	switch s {
	case Classroom:
		cfg.MeanFPS = 12
		cfg.BurstFactor = 3.0
		cfg.BurstFraction = 0.25
		cfg.Duration = 40 * time.Minute
	case CSDept:
		cfg.MeanFPS = 2.5
		cfg.BurstFactor = 5.0
		cfg.BurstFraction = 0.12
		cfg.Duration = 60 * time.Minute
	case WML:
		cfg.MeanFPS = 15
		cfg.BurstFactor = 2.5
		cfg.BurstFraction = 0.30
		cfg.Duration = 45 * time.Minute
	case Starbucks:
		cfg.MeanFPS = 0.35
		cfg.BurstFactor = 6.0
		cfg.BurstFraction = 0.08
		cfg.Duration = 30 * time.Minute
	case WRL:
		cfg.MeanFPS = 5
		cfg.BurstFactor = 4.0
		cfg.BurstFraction = 0.15
		cfg.Duration = 50 * time.Minute
	}
	return cfg
}

// Generate produces a synthetic trace from the configuration.
func Generate(cfg GenConfig) (*Trace, error) {
	if cfg.MeanFPS <= 0 {
		return nil, fmt.Errorf("trace: MeanFPS %v must be positive", cfg.MeanFPS)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("trace: Duration %v must be positive", cfg.Duration)
	}
	if cfg.BurstFactor < 1 {
		return nil, fmt.Errorf("trace: BurstFactor %v must be >= 1", cfg.BurstFactor)
	}
	if cfg.BurstFraction < 0 || cfg.BurstFraction >= 1 {
		return nil, fmt.Errorf("trace: BurstFraction %v must be in [0, 1)", cfg.BurstFraction)
	}
	if len(cfg.Rates) == 0 || len(cfg.Rates) != len(cfg.RateWeights) {
		return nil, fmt.Errorf("trace: rates/weights mismatch (%d vs %d)", len(cfg.Rates), len(cfg.RateWeights))
	}
	if len(cfg.Mix.Ports) == 0 || len(cfg.Mix.Ports) != len(cfg.Mix.Weights) {
		return nil, fmt.Errorf("trace: port mix malformed")
	}
	r := sim.NewRNG(cfg.Seed)

	// Solve for the two state rates so the long-run mean is MeanFPS:
	// mean = fq*(1-bf) + fq*factor*bf  =>  fq = mean / (1-bf+factor*bf).
	quietRate := cfg.MeanFPS / (1 - cfg.BurstFraction + cfg.BurstFactor*cfg.BurstFraction)
	burstRate := quietRate * cfg.BurstFactor

	// Alternate exponentially-distributed sojourns; mean sojourn 20 s
	// split by the burst fraction.
	const meanCycle = 20.0 // seconds
	meanBurst := meanCycle * cfg.BurstFraction
	meanQuiet := meanCycle - meanBurst

	tr := &Trace{Name: cfg.Name, Duration: cfg.Duration}
	now := 0.0
	end := cfg.Duration.Seconds()
	inBurst := false
	for now < end {
		var sojourn, rate float64
		if inBurst {
			sojourn = r.ExpFloat64() * meanBurst
			rate = burstRate
		} else {
			sojourn = r.ExpFloat64() * meanQuiet
			rate = quietRate
		}
		stateEnd := now + sojourn
		if stateEnd > end {
			stateEnd = end
		}
		// Poisson arrivals within the state.
		t := now
		for rate > 0 {
			t += r.ExpFloat64() / rate
			if t >= stateEnd {
				break
			}
			tr.Frames = append(tr.Frames, Frame{
				At:       time.Duration(t * float64(time.Second)),
				Length:   frameLength(r, cfg.MeanFrameBytes),
				Rate:     pickRate(r, cfg.Rates, cfg.RateWeights),
				DstPort:  cfg.Mix.Pick(r),
				MoreData: r.Float64() < cfg.MoreDataFraction,
			})
		}
		now = stateEnd
		inBurst = !inBurst
	}
	tr.Sort()
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// GenerateScenario generates the calibrated trace for a scenario.
func GenerateScenario(s Scenario) (*Trace, error) {
	return Generate(ScenarioConfig(s))
}

// frameLength draws a MAC frame length: header + shifted-exponential
// body, clamped to valid 802.11 sizes.
func frameLength(r *sim.RNG, mean int) int {
	const min, max = 60, 1534
	body := float64(mean-min) * r.ExpFloat64()
	n := min + int(body)
	if n > max {
		n = max
	}
	return n
}

// pickRate draws a PHY rate from the weighted set.
func pickRate(r *sim.RNG, rates []dot11.Rate, weights []float64) dot11.Rate {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return rates[i]
		}
	}
	return rates[len(rates)-1]
}
