package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests so the standard library
// type-checks once per test binary, not once per analyzer.
var (
	loaderOnce sync.Once
	testLoader *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := filepath.Abs("../..")
		if err != nil {
			loaderErr = err
			return
		}
		testLoader, loaderErr = NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("loader: %v", loaderErr)
	}
	return testLoader
}

// loadFixture type-checks testdata/src/<dir> under the import path of
// the code it imitates and runs one analyzer over it.
func loadFixture(t *testing.T, a *Analyzer, dir, asPath string) []Diagnostic {
	t.Helper()
	pkg, err := fixtureLoader(t).LoadDirAs(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	return diags
}

// wantRe matches one // want `regexp` expectation trailing fixture
// code: the analyzer must report a diagnostic on that line whose
// message matches the regexp.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// checkFixture runs the analyzer over the fixture and compares its
// diagnostics line-by-line against the fixture's // want comments,
// in the style of go/analysis's analysistest.
func checkFixture(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := fixtureLoader(t).LoadDirAs(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	var wants []expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, expectation{pos.Filename, pos.Line, re})
			}
		}
	}
	matched := make([]bool, len(wants))
	for _, d := range diags {
		found := false
		for i, w := range wants {
			if !matched[i] && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, Determinism, "determinism", "repro/internal/core")
}

// TestDeterminismAllowlist pins the allowlist: the same wall-clock
// read that the fixture flags is excused in internal/sim/realtime.go.
func TestDeterminismAllowlist(t *testing.T) {
	diags := loadFixture(t, Determinism, "determinism_allow", "repro/internal/sim")
	if len(diags) != 0 {
		t.Errorf("allowlisted file reported: %v", diags)
	}
}

func TestDeterminismSeededRNGOnly(t *testing.T) {
	checkFixture(t, Determinism, "faultrng", "repro/internal/fault")
}

// TestDeterminismSeededRNGOnlyScoped re-analyzes the fault fixture
// under an ordinary deterministic path, where the private-source
// constructors are allowed and only the global draw is reported.
func TestDeterminismSeededRNGOnlyScoped(t *testing.T) {
	diags := loadFixture(t, Determinism, "faultrng", "repro/internal/medium")
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "shared global source") {
		t.Errorf("out-of-scope run got %v, want only the global-source draw", diags)
	}
}

func TestCtxFirstFixture(t *testing.T) {
	checkFixture(t, CtxFirst, "ctxfirst", "repro/internal/core")
}

// TestCtxFirstOutOfScope re-analyzes the same fixture outside the
// convention's packages, where nothing may be reported.
func TestCtxFirstOutOfScope(t *testing.T) {
	diags := loadFixture(t, CtxFirst, "ctxfirst", "repro/internal/trace")
	if len(diags) != 0 {
		t.Errorf("out-of-scope package reported: %v", diags)
	}
}

func TestAPIShimFixture(t *testing.T) {
	checkFixture(t, APIShim, "apishim", "repro")
}

// TestAPIShimOutOfScope re-analyzes the shim fixture under an internal
// path, where the public-surface convention does not apply.
func TestAPIShimOutOfScope(t *testing.T) {
	diags := loadFixture(t, APIShim, "apishim", "repro/internal/trace")
	if len(diags) != 0 {
		t.Errorf("out-of-scope package reported: %v", diags)
	}
}

func TestExitPathFixture(t *testing.T) {
	checkFixture(t, ExitPath, "exitpath", "repro/cmd/fixture")
}

func TestElemConstFixture(t *testing.T) {
	checkFixture(t, ElemConst, "elemconst", "repro/internal/station")
}

func TestErrDropFixture(t *testing.T) {
	checkFixture(t, ErrDrop, "errdrop", "repro/internal/fixture")
}

// TestIgnoreNeedsReason pins the directive contract: a reasonless
// //lint:ignore is itself reported and suppresses nothing.
func TestIgnoreNeedsReason(t *testing.T) {
	diags := loadFixture(t, ErrDrop, "ignore", "repro/internal/fixture")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (bad directive + unsuppressed finding): %v", len(diags), diags)
	}
	var checks []string
	for _, d := range diags {
		checks = append(checks, d.Check)
	}
	got := strings.Join(checks, ",")
	if got != "ignore,errdrop" && got != "errdrop,ignore" {
		t.Errorf("got checks %q, want an ignore finding and an errdrop finding", got)
	}
}

func TestFrameMutFixture(t *testing.T) {
	checkFixture(t, FrameMut, "framemut", "repro/internal/medium")
}

func TestRNGDrawFixture(t *testing.T) {
	checkFixture(t, RNGDraw, "rngdraw", "repro/internal/fault")
}

// TestRNGDrawOutOfScope re-analyzes the draw fixture outside the
// seeded-stream packages, where nothing may be reported.
func TestRNGDrawOutOfScope(t *testing.T) {
	diags := loadFixture(t, RNGDraw, "rngdraw", "repro/internal/trace")
	if len(diags) != 0 {
		t.Errorf("out-of-scope package reported: %v", diags)
	}
}

func TestGoJoinFixture(t *testing.T) {
	checkFixture(t, GoJoin, "gojoin", "repro/internal/engine")
}

// TestGoJoinOutOfScope re-analyzes the goroutine fixture outside the
// barrier-window packages, where nothing may be reported.
func TestGoJoinOutOfScope(t *testing.T) {
	diags := loadFixture(t, GoJoin, "gojoin", "repro/internal/trace")
	if len(diags) != 0 {
		t.Errorf("out-of-scope package reported: %v", diags)
	}
}

func TestPoolBalanceFixture(t *testing.T) {
	checkFixture(t, PoolBalance, "poolbalance", "repro/internal/sim")
}

// TestPoolBalanceFreeListScoped re-analyzes the pool fixture outside
// the free-list packages: sync.Pool findings survive (that rule is
// global) but the alloc/release convention no longer applies.
func TestPoolBalanceFreeListScoped(t *testing.T) {
	diags := loadFixture(t, PoolBalance, "poolbalance", "repro/internal/trace")
	if len(diags) != 1 || diags[0].Pos.Line != 18 {
		t.Errorf("out-of-scope run got %v, want only the sync.Pool leak at line 18", diags)
	}
}

// checkCanary asserts the acceptance contract for the deliberately
// broken fixtures: exactly one diagnostic, on the line marked CANARY.
func checkCanary(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	pkg, err := fixtureLoader(t).LoadDirAs(filepath.Join("testdata", "src", dir), asPath)
	if err != nil {
		t.Fatalf("loading canary %s: %v", dir, err)
	}
	wantLine := 0
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "CANARY:") {
					wantLine = pkg.Fset.Position(c.Pos()).Line
				}
			}
		}
	}
	if wantLine == 0 {
		t.Fatalf("canary %s has no CANARY marker", dir)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	if len(diags) != 1 {
		t.Fatalf("canary %s: got %d diagnostics, want exactly 1: %v", dir, len(diags), diags)
	}
	if diags[0].Pos.Line != wantLine {
		t.Errorf("canary %s: diagnostic at line %d, want the CANARY line %d", dir, diags[0].Pos.Line, wantLine)
	}
}

// The canaries prove each flow-aware analyzer has teeth on realistic
// breakage: a mutated delivered frame, an unbalanced RNG branch, and
// a leaked shard goroutine each yield one precisely placed finding.
func TestCanaryFrameMutation(t *testing.T) {
	checkCanary(t, FrameMut, "canary_frame", "repro/internal/station")
}

func TestCanaryRNGUnbalance(t *testing.T) {
	checkCanary(t, RNGDraw, "canary_rng", "repro/internal/ess")
}

func TestCanaryShardGoroutineLeak(t *testing.T) {
	checkCanary(t, GoJoin, "canary_gojoin", "repro/internal/ess")
}

func TestCanaryWindowWorkerLeak(t *testing.T) {
	checkCanary(t, GoJoin, "canary_window", "repro/internal/core")
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(\"\") = %v, %v", all, err)
	}
	two, err := ByName("determinism, errdrop")
	if err != nil || len(two) != 2 || two[0].Name != "determinism" || two[1].Name != "errdrop" {
		t.Fatalf("ByName(two) = %v, %v", two, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(\"nope\") succeeded, want error")
	}
}
