package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RNGDraw enforces the seeded-RNG draw-count discipline that keeps a
// nil fault plan byte-identical to no fault layer: once any code has
// consumed values from a shared seeded stream, every later consumer
// sees a shifted stream, so the NUMBER of draws must never depend on
// anything but the seed itself. The concrete conventions (package doc
// of internal/fault): plans with per-delivery randomness draw a fixed
// count per consultation regardless of outcome, and conditionals that
// skip a draw must either terminate the path (early return — the
// combinator pattern, documented to consume no randomness) or burn the
// same number of draws on the other side. The analyzer checks each
// conditional in the scoped packages: branches that rejoin must draw
// equal counts, and a draw on the short-circuited side of && / || is
// consumed only when the left side passes, which hides an imbalance
// inside a single expression.
var RNGDraw = &Analyzer{
	Name: "rngdraw",
	Doc: "in internal/fault, internal/ess, internal/station, and internal/core, " +
		"branches of a conditional that both fall through must consume the same " +
		"number of seeded-RNG draws (*sim.RNG / *math/rand.Rand method calls), and a " +
		"draw must not sit on the short-circuited side of && or ||; early-returning " +
		"branches are exempt (the documented consume-nothing combinator pattern)",
	Run: runRNGDraw,
}

// rngDrawScope lists the packages carrying the draw-count discipline.
// internal/core joined the scope with the windowed-parallel runner:
// group-private RNG streams stay worker-count independent only while
// every draw site keeps the fixed-count convention.
var rngDrawScope = map[string]bool{
	"internal/fault":   true,
	"internal/ess":     true,
	"internal/station": true,
	"internal/core":    true,
}

func runRNGDraw(p *Pass) error {
	if !rngDrawScope[p.RelPath()] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			countDraws(p, fn.Body)
		}
	}
	return nil
}

// drawKind classifies a construct's draw consumption.
type drawKind int

const (
	drawExact      drawKind = iota // consumes exactly n draws
	drawOpaque                     // unknown (per-iteration draws, rng escapes into a call)
	drawTerminates                 // the path does not rejoin (return/branch/never-returns)
)

// drawCount is the lattice value: how many seeded draws a construct
// consumes on the way to its natural exit.
type drawCount struct {
	kind drawKind
	n    int
}

func exactDraws(n int) drawCount { return drawCount{kind: drawExact, n: n} }

// plus sequences two counts.
func (d drawCount) plus(o drawCount) drawCount {
	switch {
	case d.kind == drawTerminates:
		return d
	case o.kind == drawTerminates:
		return drawCount{kind: drawTerminates}
	case d.kind == drawOpaque || o.kind == drawOpaque:
		return drawCount{kind: drawOpaque}
	default:
		return exactDraws(d.n + o.n)
	}
}

// countDraws walks a statement list structurally, reporting unbalanced
// conditionals as it goes, and returns the list's own draw count.
func countDraws(p *Pass, body *ast.BlockStmt) drawCount {
	total := exactDraws(0)
	for _, s := range body.List {
		total = total.plus(countStmtDraws(p, s))
		if total.kind == drawTerminates {
			break
		}
	}
	return total
}

// countStmtDraws computes one statement's draw count, recursing into
// compound statements and reporting imbalances.
func countStmtDraws(p *Pass, s ast.Stmt) drawCount {
	switch s := s.(type) {
	case nil:
		return exactDraws(0)
	case *ast.BlockStmt:
		return countDraws(p, s)
	case *ast.ReturnStmt:
		return countExprDraws(p, s).plus(drawCount{kind: drawTerminates})
	case *ast.BranchStmt:
		// break/continue/goto leave the conditional; like return, the
		// path does not rejoin its sibling branch.
		return drawCount{kind: drawTerminates}
	case *ast.IfStmt:
		c := exactDraws(0)
		if s.Init != nil {
			c = c.plus(countStmtDraws(p, s.Init))
		}
		c = c.plus(countCondDraws(p, s.Cond))
		thenC := countDraws(p, s.Body)
		elseC := exactDraws(0)
		if s.Else != nil {
			elseC = countStmtDraws(p, s.Else)
		}
		agreed := mergeBranch(p, s.Pos(), drawCount{kind: drawExact, n: -1}, thenC, "branches of this if")
		agreed = mergeBranch(p, s.Pos(), agreed, elseC, "branches of this if")
		if agreed.kind == drawExact && agreed.n == -1 {
			agreed = exactDraws(0) // both branches terminated
		}
		return c.plus(agreed)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return countSwitchDraws(p, s)
	case *ast.ForStmt:
		c := exactDraws(0)
		if s.Init != nil {
			c = c.plus(countStmtDraws(p, s.Init))
		}
		inner := exactDraws(0)
		if s.Cond != nil {
			inner = inner.plus(countCondDraws(p, s.Cond))
		}
		inner = inner.plus(countDraws(p, s.Body))
		if s.Post != nil {
			inner = inner.plus(countStmtDraws(p, s.Post))
		}
		if inner.kind != drawExact || inner.n != 0 {
			// Per-iteration draws: the total depends on the trip count,
			// which the discipline requires to be seed- or config-derived.
			// That is beyond a static count — opaque, not a finding.
			return drawCount{kind: drawOpaque}
		}
		return c
	case *ast.RangeStmt:
		inner := countDraws(p, s.Body)
		if inner.kind != drawExact || inner.n != 0 {
			return drawCount{kind: drawOpaque}
		}
		return countCondDraws(p, s.X)
	case *ast.SelectStmt, *ast.GoStmt, *ast.DeferStmt:
		// Draws behind nondeterministic choice or deferred execution are
		// beyond structural counting; conservatively opaque.
		if stmtHasDraw(p, s) {
			return drawCount{kind: drawOpaque}
		}
		return exactDraws(0)
	case *ast.LabeledStmt:
		return countStmtDraws(p, s.Stmt)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isNeverReturnsCall(p.TypesInfo, call) {
			return countExprDraws(p, s).plus(drawCount{kind: drawTerminates})
		}
		return countExprDraws(p, s)
	default:
		return countExprDraws(p, s)
	}
}

// countSwitchDraws folds all case bodies of a switch: rejoining cases
// must agree on their draw count.
func countSwitchDraws(p *Pass, s ast.Stmt) drawCount {
	var init ast.Stmt
	var tag ast.Expr
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		init, tag, body = s.Init, s.Tag, s.Body
	case *ast.TypeSwitchStmt:
		init, body = s.Init, s.Body
	}
	c := exactDraws(0)
	if init != nil {
		c = c.plus(countStmtDraws(p, init))
	}
	if tag != nil {
		c = c.plus(countCondDraws(p, tag))
	}
	agreed := drawCount{kind: drawExact, n: -1}
	hasDefault := false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		bodyC := countDraws(p, &ast.BlockStmt{List: cc.Body})
		agreed = mergeBranch(p, s.Pos(), agreed, bodyC, "cases of this switch")
	}
	if !hasDefault {
		// A missing default is an implicit empty rejoining case.
		agreed = mergeBranch(p, s.Pos(), agreed, exactDraws(0), "cases of this switch")
	}
	if agreed.kind == drawExact && agreed.n == -1 {
		agreed = exactDraws(0)
	}
	return c.plus(agreed)
}

// mergeBranch folds one rejoining branch into the agreed count,
// reporting the first disagreement at pos. The sentinel n == -1 marks
// "no rejoining branch seen yet".
func mergeBranch(p *Pass, pos token.Pos, agreed, branch drawCount, what string) drawCount {
	if branch.kind == drawTerminates {
		return agreed // non-rejoining branches are exempt by design
	}
	if branch.kind == drawOpaque || agreed.kind == drawOpaque {
		return drawCount{kind: drawOpaque}
	}
	if agreed.n == -1 {
		return branch
	}
	if agreed.n != branch.n {
		p.Reportf(pos, "%s draw %d vs %d values from the seeded RNG; a branch-dependent draw count shifts the stream for every later consumer — balance the branches or burn the difference", what, agreed.n, branch.n)
		// Keep the first count so one imbalance reports once.
	}
	return agreed
}

// countExprDraws counts draws in the expressions a simple statement
// evaluates, reporting short-circuit-guarded draws.
func countExprDraws(p *Pass, s ast.Node) drawCount {
	c := exactDraws(0)
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if op := n.Op.String(); op == "&&" || op == "||" {
				// The left side always evaluates; the right side only
				// sometimes. Count the left normally, flag draws on the right.
				c = c.plus(countCondDraws(p, n.X))
				reportShortCircuitDraws(p, n.Y)
				return false
			}
		case *ast.CallExpr:
			if isRNGDrawCall(p.TypesInfo, n) {
				c = c.plus(exactDraws(1))
			} else if rngEscapesInto(p.TypesInfo, n) {
				c = c.plus(drawCount{kind: drawOpaque})
			}
		case *ast.FuncLit:
			return false // its body runs elsewhere
		}
		return true
	})
	return c
}

// countCondDraws counts draws in one expression (conditions, range and
// switch tags), with short-circuit reporting.
func countCondDraws(p *Pass, e ast.Expr) drawCount {
	return countExprDraws(p, &ast.ExprStmt{X: e})
}

// reportShortCircuitDraws flags every draw (or rng escape) under a
// conditionally-evaluated operand.
func reportShortCircuitDraws(p *Pass, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isRNGDrawCall(p.TypesInfo, call) || rngEscapesInto(p.TypesInfo, call) {
			p.Reportf(call.Pos(), "seeded-RNG draw on the short-circuited side of && / || is consumed only when the left side passes; hoist the draw so the stream position is branch-independent")
			return false
		}
		return true
	})
}

// stmtHasDraw reports whether any draw or rng escape occurs under s.
func stmtHasDraw(p *Pass, s ast.Node) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if isRNGDrawCall(p.TypesInfo, call) || rngEscapesInto(p.TypesInfo, call) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isRNGDrawCall reports whether call is a method call on a seeded
// generator (*sim.RNG or *math/rand.Rand / rand/v2) — one draw event.
// Call COUNT is the unit: Perm draws more underlying values than
// Float64, but a count mismatch in calls is exactly the imbalance the
// discipline forbids.
func isRNGDrawCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	return isSeededRNG(t)
}

// isSeededRNG reports whether t is a pointer to a seeded generator.
func isSeededRNG(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		return obj.Name() == "Rand"
	}
	return obj.Name() == "RNG" && isModuleSimPkg(obj.Pkg().Path())
}

// isModuleSimPkg matches the module's internal/sim package without
// hard-coding the module path (fixtures load under synthetic paths).
func isModuleSimPkg(path string) bool {
	const suffix = "/internal/sim"
	return path == "repro/internal/sim" ||
		len(path) > len(suffix) && path[len(path)-len(suffix):] == suffix
}

// rngEscapesInto reports whether the call receives a seeded generator
// as an argument — the callee may draw any number of values, so the
// caller's count becomes opaque from here.
func rngEscapesInto(info *types.Info, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if isSeededRNG(info.TypeOf(a)) {
			return true
		}
	}
	return false
}

// isNeverReturnsCall reports whether the statement call terminates the
// path (panic and friends); shared with the CFG builder.
func isNeverReturnsCall(info *types.Info, call *ast.CallExpr) bool {
	b := &cfgBuilder{info: info}
	return b.neverReturns(call)
}
