package ap

import (
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/medium"
)

// sendPortMsg transmits a UDP Port Message from addr over the medium.
func sendPortMsg(t *testing.T, med *medium.Medium, addr dot11.MACAddr, ports []uint16) {
	t.Helper()
	msg := &dot11.UDPPortMessage{
		Header: dot11.MACHeader{Addr1: bssid, Addr2: addr, Addr3: bssid},
		Ports:  ports,
	}
	raw, err := msg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	med.Transmit(addr, raw, dot11.Rate1Mbps)
}

func TestRestartWipesSoftState(t *testing.T) {
	eng, med, a, _ := rig(t, Config{HIDE: true, DTIMPeriod: 3})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	sendPortMsg(t, med, c1Addr, []uint16{53, 5353})
	eng.Run()
	if !a.Table().Listening(53, aid) {
		t.Fatal("port message not applied before restart")
	}
	a.EnqueueGroup(dot11.UDPDatagram{DstPort: 5353}, dot11.Rate1Mbps)
	a.EnqueueGroup(dot11.UDPDatagram{DstPort: 1900}, dot11.Rate1Mbps)
	if err := a.EnqueueUnicast(c1Addr, dot11.UDPDatagram{DstPort: 7000}, dot11.Rate11Mbps); err != nil {
		t.Fatal(err)
	}

	a.Restart()

	st := a.Stats()
	if a.Table().Clients() != 0 {
		t.Error("Client UDP Port Table survived the restart")
	}
	if a.BufferedGroupFrames() != 0 || a.PendingUnicast() != 0 {
		t.Error("buffered frames survived the restart")
	}
	if st.Restarts != 1 {
		t.Errorf("Restarts = %d, want 1", st.Restarts)
	}
	if st.GroupFramesLost != 2 || st.UnicastFramesLost != 1 {
		t.Errorf("lost counts = %d group, %d unicast; want 2, 1", st.GroupFramesLost, st.UnicastFramesLost)
	}
	// Conservation still closes with the lost terms.
	if st.GroupFramesEnqueued != st.GroupFramesSent+a.BufferedGroupFrames()+st.GroupFramesLost {
		t.Error("group conservation broken after restart")
	}
	// Associations survive: the client keeps its AID and can refresh.
	sendPortMsg(t, med, c1Addr, []uint16{53})
	eng.Run()
	if !a.Table().Listening(53, aid) {
		t.Error("client could not re-register after restart")
	}
}

func TestBeaconTimestampRegressesOnRestart(t *testing.T) {
	eng, _, a, sn := rig(t, Config{DTIMPeriod: 3})
	a.Start()
	eng.RunUntil(500 * time.Millisecond)
	eng.MustScheduleAt(500*time.Millisecond, func(time.Duration) { a.Restart() })
	eng.RunUntil(time.Second)

	if len(sn.beacons) < 6 {
		t.Fatalf("heard only %d beacons", len(sn.beacons))
	}
	regressions := 0
	for i := 1; i < len(sn.beacons); i++ {
		if sn.beacons[i].Timestamp < sn.beacons[i-1].Timestamp {
			regressions++
		}
	}
	if regressions != 1 {
		t.Fatalf("observed %d timestamp regressions, want exactly 1 (at the restart)", regressions)
	}
}

func TestPortTTLExpiresStaleClient(t *testing.T) {
	eng, med, a, _ := rig(t, Config{HIDE: true, DTIMPeriod: 1, PortTTL: 300 * time.Millisecond})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	sendPortMsg(t, med, c1Addr, []uint16{53})
	eng.RunUntil(200 * time.Millisecond)
	if !a.Table().Listening(53, aid) {
		t.Fatal("entry missing before TTL")
	}
	// No refresh arrives; the sweep at beacon cadence must age it out.
	eng.RunUntil(time.Second)
	if a.Table().Listening(53, aid) {
		t.Error("stale entry survived the TTL")
	}
	if got := a.Stats().PortEntriesExpired; got != 1 {
		t.Errorf("PortEntriesExpired = %d, want 1", got)
	}
}

func TestPortTTLRefreshKeepsClientAlive(t *testing.T) {
	eng, med, a, _ := rig(t, Config{HIDE: true, DTIMPeriod: 1, PortTTL: 300 * time.Millisecond})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	// Refresh every 200 ms, well inside the 300 ms TTL.
	for at := time.Duration(0); at < time.Second; at += 200 * time.Millisecond {
		eng.MustScheduleAt(at, func(time.Duration) {
			sendPortMsg(t, med, c1Addr, []uint16{53})
		})
	}
	eng.RunUntil(time.Second)
	if !a.Table().Listening(53, aid) {
		t.Error("refreshing client was expired")
	}
	if got := a.Stats().PortEntriesExpired; got != 0 {
		t.Errorf("PortEntriesExpired = %d, want 0", got)
	}
}

func TestPortTTLZeroDisablesSweep(t *testing.T) {
	eng, med, a, _ := rig(t, Config{HIDE: true, DTIMPeriod: 1})
	aid, err := a.Associate(c1Addr, true)
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	sendPortMsg(t, med, c1Addr, []uint16{53})
	eng.RunUntil(5 * time.Second)
	if !a.Table().Listening(53, aid) {
		t.Error("entry expired with PortTTL disabled")
	}
}
