package dot11

import (
	"testing"
	"testing/quick"
)

func TestReassocRequestRoundTrip(t *testing.T) {
	req := &ReassocRequest{
		Header:      MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr, Seq: 9 << 4},
		Capability:  0x0431,
		CurrentAP:   MACAddr{0x02, 0x1d, 0xe0, 0x00, 0x00, 0x07},
		SSID:        "hide-ess",
		HIDECapable: true,
		Ports:       []uint16{53, 5353, 17500},
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if Classify(raw) != KindReassocRequest {
		t.Fatalf("Classify = %v", Classify(raw))
	}
	got, err := UnmarshalReassocRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.SSID != req.SSID || got.Capability != req.Capability {
		t.Errorf("fixed fields: %+v", got)
	}
	if got.CurrentAP != req.CurrentAP {
		t.Errorf("current AP = %v, want %v", got.CurrentAP, req.CurrentAP)
	}
	if !got.HIDECapable {
		t.Error("HIDE capability lost")
	}
	if len(got.Ports) != 3 || got.Ports[1] != 5353 {
		t.Errorf("ports = %v", got.Ports)
	}
}

func TestReassocRequestLegacy(t *testing.T) {
	req := &ReassocRequest{
		Header:    MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr},
		CurrentAP: apAddr,
		SSID:      "net",
	}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalReassocRequest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.HIDECapable || got.Ports != nil {
		t.Errorf("legacy request decoded as HIDE: %+v", got)
	}
}

func TestReassocResponseRoundTrip(t *testing.T) {
	resp := &ReassocResponse{
		Header:        MACHeader{Addr1: c1Addr, Addr2: apAddr, Addr3: apAddr},
		Capability:    0x0401,
		Status:        StatusSuccess,
		AID:           1777,
		HIDESupported: true,
	}
	raw, err := resp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if Classify(raw) != KindReassocResponse {
		t.Fatalf("Classify = %v", Classify(raw))
	}
	got, err := UnmarshalReassocResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.AID != 1777 || got.Status != StatusSuccess || !got.HIDESupported {
		t.Errorf("round trip: %+v", got)
	}
}

func TestReassocWrongSubtypeRejected(t *testing.T) {
	// A reassoc decoder must refuse the plain-assoc subtype and vice
	// versa — the wire formats overlap deliberately, the subtype is the
	// only discriminator.
	areq := &AssocRequest{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}}
	raw, err := areq.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalReassocRequest(raw); err == nil {
		t.Error("UnmarshalReassocRequest accepted an assoc request")
	}
	rreq := &ReassocRequest{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}}
	raw2, err := rreq.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAssocRequest(raw2); err == nil {
		t.Error("UnmarshalAssocRequest accepted a reassoc request")
	}
	rresp := &ReassocResponse{Header: MACHeader{Addr1: c1Addr, Addr2: apAddr, Addr3: apAddr}}
	raw3, err := rresp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAssocResponse(raw3); err == nil {
		t.Error("UnmarshalAssocResponse accepted a reassoc response")
	}
	if _, err := UnmarshalReassocResponse(raw3); err != nil {
		t.Errorf("UnmarshalReassocResponse rejected its own frame: %v", err)
	}
}

func TestReassocRequestRoundTripProperty(t *testing.T) {
	f := func(cap uint16, cur [6]byte, ssid string, ports []uint16) bool {
		if len(ssid) > 32 {
			ssid = ssid[:32]
		}
		req := &ReassocRequest{
			Header:      MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr},
			Capability:  cap,
			CurrentAP:   MACAddr(cur),
			SSID:        ssid,
			HIDECapable: true,
			Ports:       ports,
		}
		raw, err := req.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalReassocRequest(raw)
		if err != nil {
			return false
		}
		if got.SSID != ssid || got.Capability != cap || got.CurrentAP != MACAddr(cur) || len(got.Ports) != len(ports) {
			return false
		}
		for i := range ports {
			if got.Ports[i] != ports[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
