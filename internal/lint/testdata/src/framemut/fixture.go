// Package fixture exercises the framemut analyzer. The test harness
// analyzes it as repro/internal/medium, where every []byte parameter
// is a shared frame buffer; the Receive/ReceiveAs methods are checked
// under any path. Delivered frames are immutable — the only sanctioned
// mutation path clones first with append([]byte(nil), b...).
package fixture

import "time"

type sink struct {
	last []byte
	hdr  [6]byte
}

// Receive mutates the shared buffer every way the alias flow catches.
func (s *sink) Receive(raw []byte, rate int, at time.Duration) {
	raw[0] = 1 // want `write into a byte slice that may alias the delivered frame`
	b := raw
	b[2] = 0xff // want `write into a byte slice that may alias the delivered frame`
	hdr := raw[4:10]
	hdr[0]++ // want `write into a byte slice that may alias the delivered frame`
	var scratch [16]byte
	copy(raw[4:10], scratch[:]) // want `copy into a byte slice that may alias the delivered frame`
}

// ReceiveAs shows a may-alias merge: after the conditional, dst MAY
// still be the frame, so the write is flagged.
func (s *sink) ReceiveAs(to [6]byte, raw []byte, rate int, at time.Duration) {
	dst := s.last
	if len(raw) > 8 {
		dst = raw
	}
	dst[0] = 0 // want `write into a byte slice that may alias the delivered frame`
}

// Clean shows the sanctioned idioms: reading, copying OUT of the
// frame, cloning before mutation, and rebinding to the clone.
func (s *sink) Clean(raw []byte) {
	// Not a Receive method and not named like one — but in this package
	// every []byte parameter is in scope, so the clean paths matter.
	_ = raw[0]                // reads are fine
	copy(s.hdr[:], raw[4:10]) // copying out of the frame is fine
	c := append([]byte(nil), raw...)
	c[0] ^= 0xff // the sanctioned clone path: fresh backing array
	raw = c
	raw[1] = 0 // rebound to the clone — no longer aliases the frame
	s.last = c
}

// corrupt is the medium-style corruption helper: clone, flip, hand on.
func corrupt(raw []byte, at int) []byte {
	c := append([]byte(nil), raw...)
	c[at] ^= 0xff
	return c
}

// patch writes in place — exactly the stray write the analyzer exists
// to catch in this package.
func patch(frame []byte, seq uint16) {
	frame[22] = byte(seq) // want `write into a byte slice that may alias the delivered frame`
}
