package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/airlink"
	"repro/internal/ap"
	"repro/internal/control"
	"repro/internal/dot11"
	"repro/internal/sim"
	"repro/internal/trace"
)

// healthMirrorEvery is the cadence of the engine tick that copies the
// client count and virtual uptime into atomics so /healthz can answer
// without touching the engine.
const healthMirrorEvery = 200 * time.Millisecond

// controlTimeout bounds one control-plane round-trip onto the engine.
const controlTimeout = 2 * time.Second

// errEngineStopped is returned by control-plane calls after the
// engine has exited.
var errEngineStopped = errors.New("daemon: engine stopped")

// errEngineBusy is returned when the engine does not answer a
// control-plane round-trip within its timeout.
var errEngineBusy = errors.New("daemon: engine did not answer in time")

// Daemon is a supervised hided instance: the AP entity and its engine,
// the airlink hub, the HTTP control plane, liveness sweeps, scenario
// replay, live reload, and graceful drain, all wired together.
type Daemon struct {
	eng    *sim.Engine
	hub    *airlink.Hub
	ap     *ap.AP
	inject chan sim.Event

	ctl     net.Listener
	httpSrv *http.Server

	cfgPath string
	logf    func(format string, args ...any)

	mu  sync.Mutex
	cfg Config // current (reloaded fields included)

	draining  atomic.Bool
	clients   atomic.Int64 // health mirror, updated on the engine
	uptimeMS  atomic.Int64 // health mirror, virtual ms
	evictions atomic.Int64 // liveness evictions performed
	reloads   atomic.Int64 // successful reloads applied
	replayGen atomic.Uint64

	engDone chan struct{} // closed when RunRealtime returns
	drained chan struct{} // closed when the graceful drain finished
}

// New builds a daemon from a config, binding the air socket and the
// control listener immediately (so ":0" addresses resolve and are
// readable via AirAddr/ControlAddr before Run). The daemon does not
// serve until Run.
func New(cfg Config) (*Daemon, error) {
	cfg = cfg.normalized()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bssid, err := parseMAC(cfg.BSSID)
	if err != nil {
		return nil, err
	}
	pc, err := net.ListenPacket("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("daemon: binding air socket: %w", err)
	}
	ctl, err := net.Listen("tcp", cfg.Control)
	if err != nil {
		//lint:ignore errdrop the listen failure is the error being returned; the socket close is cleanup
		pc.Close()
		return nil, fmt.Errorf("daemon: binding control listener: %w", err)
	}
	d := &Daemon{
		inject:  make(chan sim.Event, 256),
		ctl:     ctl,
		cfg:     cfg,
		engDone: make(chan struct{}),
		drained: make(chan struct{}),
		logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "hided: "+format+"\n", args...)
		},
	}
	d.hub = airlink.NewHub(pc, d.inject)
	d.eng = sim.New()
	d.ap = ap.New(d.eng, d.hub, ap.Config{
		BSSID:          bssid,
		SSID:           cfg.SSID,
		BeaconInterval: time.Duration(cfg.BeaconInterval),
		DTIMPeriod:     cfg.DTIMPeriod,
		HIDE:           !cfg.Legacy,
		PortTTL:        time.Duration(cfg.PortTTL),
	})
	d.hub.SetClock(func() time.Duration { return d.eng.Now() })
	d.hub.SetLiveness(airlink.Liveness{MaxMissedPings: cfg.MaxMissedPings}, d.onEvict)
	d.httpSrv = &http.Server{Handler: control.NewServer(d).Handler()}
	return d, nil
}

// Open loads a config file and builds a daemon bound to it, enabling
// live reload (SIGHUP, POST /v1/reload).
func Open(path string) (*Daemon, error) {
	cfg, err := LoadConfig(path)
	if err != nil {
		return nil, err
	}
	d, err := New(cfg)
	if err != nil {
		return nil, err
	}
	d.cfgPath = path
	return d, nil
}

// SetLogf replaces the daemon's logger (default: stderr). Call before
// Run.
func (d *Daemon) SetLogf(fn func(format string, args ...any)) {
	if fn != nil {
		d.logf = fn
	}
}

// AirAddr is the bound UDP address of the virtual air.
func (d *Daemon) AirAddr() net.Addr { return d.hub.Addr() }

// ControlAddr is the bound TCP address of the control plane.
func (d *Daemon) ControlAddr() net.Addr { return d.ctl.Addr() }

// Config returns the current (possibly reloaded) config.
func (d *Daemon) Config() Config {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg
}

// Run serves until ctx is cancelled, then drains gracefully: the AP
// stops accepting associations, every client is disassociated with a
// real frame, port-table state is flushed, and the whole drain is
// bounded by DrainDeadline. Returns nil after a clean drain.
func (d *Daemon) Run(ctx context.Context) error {
	// The engine runs on runCtx, not ctx: cancellation of ctx starts
	// the drain, which needs a live engine to inject the
	// disassociation sweep; runCtx falls only after the drain.
	runCtx, stopEngine := context.WithCancel(context.Background())
	defer stopEngine()
	var wg sync.WaitGroup
	defer wg.Wait()

	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.hub.Serve(); err != nil && !errors.Is(err, net.ErrClosed) {
			d.logf("hub: %v", err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := d.httpSrv.Serve(d.ctl); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.logf("control: %v", err)
		}
	}()

	// Live reload on SIGHUP (the file-backed daemons; harness-built
	// daemons reload via POST /v1/reload).
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer signal.Stop(hup)
		for {
			select {
			case <-hup:
				summary, err := d.Reload()
				if err != nil {
					d.logf("reload: %v", err)
				} else {
					d.logf("reload: %s", summary)
				}
			case <-runCtx.Done():
				return
			case <-d.engDone:
				return
			}
		}
	}()

	// Supervisor: on ctx cancellation drain gracefully, then stop the
	// engine and close the serving sockets so every goroutine above
	// unblocks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-ctx.Done():
			d.drain()
		case <-d.engDone:
		}
		stopEngine()
		sctx, cancel := context.WithTimeout(context.Background(), controlTimeout)
		defer cancel()
		//lint:ignore errdrop shutdown errors past the deadline have no remedy at exit
		_ = d.httpSrv.Shutdown(sctx)
		//lint:ignore errdrop closing a dead socket twice is fine
		_ = d.hub.Close()
	}()

	d.ap.Start()
	d.scheduleReplay()
	d.schedulePingSweep()
	d.scheduleHealthMirror()
	d.scheduleStatsLog()
	d.logf("%s AP %q on %v (control %v, bssid %s, DTIM %d)",
		map[bool]string{true: "legacy", false: "HIDE"}[d.cfg.Legacy],
		d.cfg.SSID, d.AirAddr(), d.ControlAddr(), d.cfg.BSSID, d.cfg.DTIMPeriod)

	err := d.eng.RunRealtime(runCtx, d.inject)
	close(d.engDone)
	if errors.Is(err, context.Canceled) {
		// The engine only stops via runCtx, which falls after a clean
		// drain (or an engine-side stop); not an error.
		err = nil
	}
	return err
}

// drain performs the graceful-shutdown sweep on the engine: reject
// new associations, disassociate every client with a real frame (the
// port table flushes as each association is removed), bounded by
// DrainDeadline.
func (d *Daemon) drain() {
	defer close(d.drained)
	d.draining.Store(true)
	deadline := time.Duration(d.Config().DrainDeadline)
	var clients int
	err := d.onEngine(deadline, func(now time.Duration) {
		d.ap.BeginDrain()
		clients = d.ap.DisassociateAll(dot11.ReasonStationLeft)
	})
	if err != nil {
		d.logf("drain: %v (proceeding to shutdown)", err)
		return
	}
	d.logf("drained: disassociated %d clients, port table flushed", clients)
}

// Drained reports (by closing) that the graceful drain completed;
// used by tests to assert the drain path ran before shutdown.
func (d *Daemon) Drained() <-chan struct{} { return d.drained }

// onEngine runs fn on the engine goroutine and waits for it, bounded
// by timeout. This is the only path by which control-plane goroutines
// touch engine-owned state (the AP, the port table, the replay).
func (d *Daemon) onEngine(timeout time.Duration, fn func(now time.Duration)) error {
	done := make(chan struct{})
	ev := func(now time.Duration) {
		fn(now)
		close(done)
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case d.inject <- ev:
	case <-d.engDone:
		return errEngineStopped
	case <-t.C:
		return errEngineBusy
	}
	select {
	case <-done:
		return nil
	case <-d.engDone:
		return errEngineStopped
	case <-t.C:
		return errEngineBusy
	}
}

// onEvict is the hub's liveness-eviction callback. It runs on the
// engine goroutine (PingPeers is driven from the sweep event), so it
// may touch AP state directly: log the eviction with its AID, then
// disassociate to flush the association and its port-table entries.
func (d *Daemon) onEvict(mac dot11.MACAddr) {
	d.evictions.Add(1)
	if aid, ok := d.ap.AIDOf(mac); ok {
		d.logf("liveness: evicting aid=%d mac=%s (unanswered pings)", aid, mac)
		d.ap.DisassociateClient(mac, dot11.ReasonInactivity)
		return
	}
	d.logf("liveness: evicting unassociated peer %s", mac)
}

// schedulePingSweep drives hub liveness sweeps at PingInterval
// (re-read every tick, so reload applies live).
func (d *Daemon) schedulePingSweep() {
	var sweep func(now time.Duration)
	sweep = func(now time.Duration) {
		d.hub.PingPeers()
		d.eng.MustScheduleAfter(time.Duration(d.Config().PingInterval), sweep)
	}
	d.eng.MustScheduleAfter(time.Duration(d.cfg.PingInterval), sweep)
}

// scheduleHealthMirror copies engine-owned gauges into atomics on a
// steady cadence so /healthz never blocks on the engine.
func (d *Daemon) scheduleHealthMirror() {
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		d.clients.Store(int64(len(d.ap.ClientList())))
		d.uptimeMS.Store(now.Milliseconds())
		d.eng.MustScheduleAfter(healthMirrorEvery, tick)
	}
	d.eng.MustScheduleAfter(healthMirrorEvery, tick)
}

// scheduleStatsLog logs a status line at StatsEvery (0 disables).
func (d *Daemon) scheduleStatsLog() {
	if d.cfg.StatsEvery <= 0 {
		return
	}
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		st := d.ap.Stats()
		hs := d.hub.Stats()
		d.logf("[%8s] peers=%d beacons=%d dtims=%d group=%d portmsgs=%d assoc=%d evictions=%d",
			now.Truncate(time.Second), hs.Peers, st.BeaconsSent, st.DTIMsSent,
			st.GroupFramesSent, st.PortMsgsReceived, st.AssocResponses, hs.Evictions)
		every := time.Duration(d.Config().StatsEvery)
		if every <= 0 {
			every = 10 * time.Second
		}
		d.eng.MustScheduleAfter(every, tick)
	}
	d.eng.MustScheduleAfter(time.Duration(d.cfg.StatsEvery), tick)
}

// scheduleReplay starts the configured broadcast-scenario replay.
// Must run before the engine starts (Run calls it); reloads instead
// go through switchReplay on the engine.
func (d *Daemon) scheduleReplay() {
	name := d.cfg.Scenario
	if strings.EqualFold(name, "none") {
		return
	}
	s, err := scenarioByName(name)
	if err != nil {
		// Config was validated at load; an unknown name here means
		// "none" semantics, not a crash.
		return
	}
	tr, err := trace.GenerateScenario(s)
	if err != nil {
		d.logf("replay: %v", err)
		return
	}
	gen := d.replayGen.Load()
	d.scheduleTrace(tr, gen, 0)
	d.logf("replaying %s broadcast chatter (%d frames over %v, looping)",
		tr.Name, len(tr.Frames), tr.Duration)
}

// scheduleTrace schedules the trace's frames from offset, looping
// until the replay generation moves on (a reload switched scenarios).
func (d *Daemon) scheduleTrace(tr *trace.Trace, gen uint64, offset time.Duration) {
	var scheduleFrom func(offset time.Duration)
	scheduleFrom = func(offset time.Duration) {
		for _, f := range tr.Frames {
			f := f
			payload := f.Length - dot11.MACHeaderLen - dot11.UDPEncapsLen
			if payload < 0 {
				payload = 0
			}
			d.eng.MustScheduleAt(offset+f.At, func(time.Duration) {
				if d.replayGen.Load() != gen {
					return
				}
				d.ap.EnqueueGroup(dot11.UDPDatagram{
					DstIP:   [4]byte{255, 255, 255, 255},
					DstPort: f.DstPort,
					Payload: make([]byte, payload),
				}, f.Rate)
			})
		}
		d.eng.MustScheduleAt(offset+tr.Duration, func(now time.Duration) {
			if d.replayGen.Load() != gen {
				return
			}
			scheduleFrom(now)
		})
	}
	scheduleFrom(offset)
}

// switchReplay retires the running replay and, unless the new
// scenario is "none", starts the new one from the current engine
// time. Runs on a control-plane goroutine; the scheduling itself is
// injected onto the engine.
func (d *Daemon) switchReplay(name string) error {
	gen := d.replayGen.Add(1)
	if strings.EqualFold(name, "none") {
		return nil
	}
	s, err := scenarioByName(name)
	if err != nil {
		return err
	}
	tr, err := trace.GenerateScenario(s)
	if err != nil {
		return err
	}
	return d.onEngine(controlTimeout, func(now time.Duration) {
		d.scheduleTrace(tr, gen, now)
	})
}

// Reload re-reads the config file and applies the reloadable subset
// live (scenario, ping_interval, max_missed_pings, drain_deadline,
// stats_every). Non-reloadable changes are reported but not applied.
func (d *Daemon) Reload() (string, error) {
	if d.cfgPath == "" {
		return "", errors.New("daemon: started without a config file; nothing to reload")
	}
	next, err := LoadConfig(d.cfgPath)
	if err != nil {
		return "", err
	}
	d.mu.Lock()
	cur := d.cfg
	d.mu.Unlock()
	reloadable, restartOnly := cur.diff(next)
	if len(reloadable) == 0 && len(restartOnly) == 0 {
		return "no changes", nil
	}
	// Merge the reloadable fields into the running config.
	merged := cur
	merged.Scenario = next.Scenario
	merged.PingInterval = next.PingInterval
	merged.MaxMissedPings = next.MaxMissedPings
	merged.DrainDeadline = next.DrainDeadline
	merged.StatsEvery = next.StatsEvery
	d.mu.Lock()
	d.cfg = merged
	d.mu.Unlock()
	if cur.MaxMissedPings != merged.MaxMissedPings {
		d.hub.SetLiveness(airlink.Liveness{MaxMissedPings: merged.MaxMissedPings}, d.onEvict)
	}
	if cur.Scenario != merged.Scenario {
		if err := d.switchReplay(merged.Scenario); err != nil {
			return "", err
		}
	}
	d.reloads.Add(1)
	var parts []string
	if len(reloadable) > 0 {
		parts = append(parts, "applied: "+strings.Join(reloadable, ", "))
	}
	if len(restartOnly) > 0 {
		parts = append(parts, "requires restart: "+strings.Join(restartOnly, ", "))
	}
	return strings.Join(parts, "; "), nil
}

// --- control.Backend ---

var _ control.Backend = (*Daemon)(nil)

// Health answers /healthz from the atomic mirrors; it never touches
// the engine.
func (d *Daemon) Health() control.Health {
	h := control.Health{
		Status:   "ok",
		Clients:  int(d.clients.Load()),
		UptimeMS: d.uptimeMS.Load(),
	}
	if d.draining.Load() {
		h.Status = "draining"
		h.Draining = true
	}
	return h
}

// Counters snapshots AP, hub, and daemon counters under one metric
// namespace.
func (d *Daemon) Counters() (map[string]int64, error) {
	var st ap.Stats
	if err := d.onEngine(controlTimeout, func(time.Duration) {
		st = d.ap.Stats()
	}); err != nil {
		return nil, err
	}
	hs := d.hub.Stats()
	return map[string]int64{
		"beacons_sent_total":             int64(st.BeaconsSent),
		"dtims_sent_total":               int64(st.DTIMsSent),
		"group_frames_sent_total":        int64(st.GroupFramesSent),
		"group_frames_enqueued_total":    int64(st.GroupFramesEnqueued),
		"port_msgs_received_total":       int64(st.PortMsgsReceived),
		"acks_sent_total":                int64(st.ACKsSent),
		"ps_polls_served_total":          int64(st.PSPollsServed),
		"btim_bytes_sent_total":          int64(st.BTIMBytesSent),
		"assoc_responses_total":          int64(st.AssocResponses),
		"assocs_rejected_draining_total": int64(st.AssocsRejectedDraining),
		"unicast_filtered_total":         int64(st.UnicastFiltered),
		"disassociations_total":          int64(st.Disassociations),
		"disassocs_sent_total":           int64(st.DisassocsSent),
		"ap_restarts_total":              int64(st.Restarts),
		"port_entries_expired_total":     int64(st.PortEntriesExpired),
		"air_frames_in_total":            int64(hs.FramesIn),
		"air_frames_out_total":           int64(hs.FramesOut),
		"air_bad_packets_total":          int64(hs.BadPackets),
		"fault_dropped_total":            int64(hs.FaultDropped),
		"fault_corrupted_total":          int64(hs.FaultCorrupted),
		"fault_duplicated_total":         int64(hs.FaultDuplicated),
		"pings_sent_total":               int64(hs.PingsSent),
		"evictions_total":                d.evictions.Load(),
		"reloads_total":                  d.reloads.Load(),
	}, nil
}

// Stations snapshots the association table in AID order.
func (d *Daemon) Stations() ([]control.StationRow, error) {
	var rows []control.StationRow
	if err := d.onEngine(controlTimeout, func(time.Duration) {
		table := d.ap.Table()
		for _, c := range d.ap.ClientList() {
			rows = append(rows, control.StationRow{
				AID:             uint16(c.AID),
				Addr:            c.Addr.String(),
				HIDECapable:     c.HIDECapable,
				PSMode:          c.PSMode,
				Members:         c.Members,
				BufferedUnicast: c.BufferedUnicast,
				Ports:           table.Ports(c.AID),
			})
		}
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// PortTable snapshots the Client UDP Port Table in AID order.
func (d *Daemon) PortTable() ([]control.PortTableRow, error) {
	var rows []control.PortTableRow
	if err := d.onEngine(controlTimeout, func(time.Duration) {
		table := d.ap.Table()
		for _, c := range d.ap.ClientList() {
			ports := table.Ports(c.AID)
			if len(ports) == 0 {
				continue
			}
			row := control.PortTableRow{AID: uint16(c.AID), Ports: ports}
			if at, ok := table.RefreshedAt(c.AID); ok {
				row.RefreshedAtMS = at.Milliseconds()
			}
			rows = append(rows, row)
		}
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// ApplyFault installs (or clears) a fault plan on the live hub. The
// request was validated by the control plane; Validate compiles it
// again here so the installed plan is built from this process's view.
func (d *Daemon) ApplyFault(req *control.FaultRequest) error {
	plan, err := req.Validate()
	if err != nil {
		return err
	}
	if req.Clear || plan == nil {
		d.hub.SetFaultPlan(nil, 0)
		d.logf("fault: cleared")
		return nil
	}
	d.hub.SetFaultPlan(plan, req.Seed)
	d.logf("fault: plan installed (seed %d)", req.Seed)
	return nil
}

// RestartAP power-cycles the AP entity on the engine: soft state
// (associations, port table, buffered frames) is wiped and the TSF
// regresses, exactly like the chaos grid's restart scenario.
func (d *Daemon) RestartAP() error {
	err := d.onEngine(controlTimeout, func(time.Duration) {
		d.ap.Restart()
	})
	if err == nil {
		d.logf("ap: restarted (soft state wiped)")
	}
	return err
}

// InjectGroup enqueues count broadcast frames addressed to a UDP port
// at the AP — the control-plane stand-in for distribution-system
// traffic.
func (d *Daemon) InjectGroup(port uint16, count int) error {
	return d.onEngine(controlTimeout, func(time.Duration) {
		for i := 0; i < count; i++ {
			d.ap.EnqueueGroup(dot11.UDPDatagram{
				DstIP:   [4]byte{255, 255, 255, 255},
				DstPort: port,
				Payload: make([]byte, 64),
			}, dot11.Rate1Mbps)
		}
	})
}
