// Package fixture exercises the poolbalance analyzer. The test
// harness analyzes it as repro/internal/sim, where the free-list
// convention applies on top of the everywhere rule for sync.Pool: an
// acquired value must be released or handed off on every normal exit
// path, or the pooled hot path silently refills from the heap.
package fixture

import "sync"

type scratch struct{ buf []byte }

var pool = sync.Pool{New: func() any { return new(scratch) }}

// DroppedOnError releases on the happy path but drops the scratch on
// the early return — the leak an AllocsPerRun budget only catches
// later, as flaky growth.
func DroppedOnError(fail bool) int {
	sc := pool.Get().(*scratch) // want `acquired from the pool but neither released .* nor handed off`
	if fail {
		return -1
	}
	n := len(sc.buf)
	pool.Put(sc)
	return n
}

// DeferredPut covers every exit, including the early return.
func DeferredPut(fail bool) int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	if fail {
		return -1
	}
	return len(sc.buf)
}

// PutOnAllPaths balances each exit explicitly.
func PutOnAllPaths(fail bool) int {
	sc := pool.Get().(*scratch)
	if fail {
		pool.Put(sc)
		return -1
	}
	n := len(sc.buf)
	pool.Put(sc)
	return n
}

// engine imitates the sim free list: alloc is an unexported niladic
// method, so its result is a tracked acquisition in this package.
type engine struct {
	free  []*item
	queue []*item
}

type item struct{ at int }

func (e *engine) alloc() *item {
	if n := len(e.free); n > 0 {
		it := e.free[n-1]
		e.free = e.free[:n-1]
		return it // returning the item hands it to the caller
	}
	return &item{}
}

func (e *engine) release(it *item) { e.free = append(e.free, it) }

// Scheduled hands the item off to the queue — custody transferred, no
// release needed here.
func (e *engine) Scheduled(at int) {
	it := e.alloc()
	it.at = at
	e.queue = append(e.queue, it)
}

// LeakedOnValidation drops the item when validation fails after the
// acquisition — the free list never sees it again.
func (e *engine) LeakedOnValidation(at int) bool {
	it := e.alloc() // want `acquired from the pool but neither released .* nor handed off`
	if at < 0 {
		return false
	}
	it.at = at
	e.release(it)
	return true
}

// ValidateFirst is the fix: validate before acquiring.
func (e *engine) ValidateFirst(at int) bool {
	if at < 0 {
		return false
	}
	it := e.alloc()
	it.at = at
	e.release(it)
	return true
}
