// Package engine is the parallel evaluation substrate: a worker-pool
// grid scheduler that fans independent evaluation cells over
// GOMAXPROCS workers while keeping the output deterministic.
//
// The contract is strict: for any worker count, Map's result slice is
// byte-identical to the sequential loop's, because every cell is a
// pure function of its index and results land at their own index. The
// only things parallelism may change are wall-clock time and the
// interleaving of side-effect-free work. Errors are aggregated
// errgroup-style — the first failing cell cancels the rest, and every
// error that did occur is joined in index order — and a cancelled
// context makes Map return promptly with context.Canceled wrapped in
// the joined error.
package engine

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: 0 (or negative) selects
// runtime.GOMAXPROCS(0), and the count never exceeds n, the number of
// cells to run.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map evaluates fn(ctx, i) for every i in [0, n) on a pool of workers
// and returns the results in index order. workers <= 0 selects
// GOMAXPROCS; workers == 1 runs the plain sequential loop on the
// calling goroutine.
//
// fn must be a pure function of its index (no ordering dependence
// between cells); under that contract the returned slice is identical
// for every worker count.
//
// On failure every cell error is collected and joined in index order
// (errors.Join), and the shared context is cancelled so in-flight
// cells can stop early; cells not yet started are skipped. When ctx is
// cancelled the error chain includes ctx.Err(), so callers can test
// errors.Is(err, context.Canceled).
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	errs := make([]error, n)
	w := Workers(workers, n)

	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				break
			}
			v, err := fn(ctx, i)
			if err != nil {
				errs[i] = err
				break
			}
			out[i] = v
		}
		return out, join(ctx, errs)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				v, err := fn(cctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	return out, join(ctx, errs)
}

// ForEach is Map for cells that produce no value.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := Map(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// join folds the per-cell errors (in index order) and the parent
// context's error into one chain, or nil when everything succeeded.
func join(ctx context.Context, errs []error) error {
	var all []error
	for _, e := range errs {
		if e != nil {
			all = append(all, e)
		}
	}
	if err := ctx.Err(); err != nil {
		all = append(all, err)
	}
	return errors.Join(all...)
}
