package hide

import (
	"context"
	"io"
	"time"

	"repro/internal/bianchi"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/ess"
	"repro/internal/policy"
	"repro/internal/porttable"
	"repro/internal/procnet"
	"repro/internal/station"
	"repro/internal/trace"
)

// Re-exported core types. Aliases keep values from the public API fully
// interchangeable with the internal packages used by advanced callers.
type (
	// Profile is a device energy profile (Table I).
	Profile = energy.Profile
	// Breakdown is an evaluated energy decomposition (Eq. 2).
	Breakdown = energy.Breakdown
	// Arrival is one received frame with its wakelock, the energy
	// model's input unit.
	Arrival = energy.Arrival
	// Overhead configures the HIDE protocol overhead (Eqs. 15-19).
	Overhead = energy.Overhead

	// Trace is a broadcast traffic trace.
	Trace = trace.Trace
	// Frame is one broadcast frame in a trace.
	Frame = trace.Frame
	// Scenario names one of the paper's five capture environments.
	Scenario = trace.Scenario
	// GenConfig parameterizes the synthetic trace generator.
	GenConfig = trace.GenConfig
	// CDF is an empirical distribution over samples.
	CDF = trace.CDF

	// PolicyKind enumerates the compared solutions.
	PolicyKind = policy.Kind

	// Result is one evaluated (trace, device, policy, useful%) cell.
	Result = core.Result
	// EnergyComparison is one trace's worth of Figure 7/8 bars.
	EnergyComparison = core.EnergyComparison
	// SuspendRow is one trace's worth of Figure 9 bars.
	SuspendRow = core.SuspendRow
	// Suite is a full per-device evaluation across all scenarios.
	Suite = core.Suite
	// Options tunes an evaluation.
	Options = core.Options

	// Network is the protocol-level simulation harness.
	Network = core.Network
	// NetworkConfig configures NewNetwork.
	NetworkConfig = core.NetworkConfig
	// NetworkCapture records a run's frames for pcap export.
	NetworkCapture = core.Capture
	// StationMode selects a simulated client's broadcast handling.
	StationMode = station.Mode

	// DCFConfig is the 802.11 configuration for the capacity model
	// (Table II).
	DCFConfig = bianchi.Config
	// CapacityParams parameterizes the capacity-overhead analysis.
	CapacityParams = bianchi.OverheadParams
	// DelayParams parameterizes the delay-overhead analysis.
	DelayParams = porttable.DelayParams
	// OpTimings prices port-table operations for the delay model.
	OpTimings = porttable.OpTimings
	// PortTable is the AP-side Client UDP Port Table.
	PortTable = porttable.Table
)

// Device profiles from the paper's Table I.
var (
	// NexusOne is the measured Nexus One profile.
	NexusOne = energy.NexusOne
	// GalaxyS4 is the measured Samsung Galaxy S4 profile.
	GalaxyS4 = energy.GalaxyS4
	// Profiles lists the built-in device profiles.
	Profiles = energy.Profiles
)

// The five trace scenarios (Figure 6).
const (
	Classroom = trace.Classroom
	CSDept    = trace.CSDept
	WML       = trace.WML
	Starbucks = trace.Starbucks
	WRL       = trace.WRL
)

// Scenarios lists all five scenarios in the paper's order.
var Scenarios = trace.Scenarios

// The compared traffic-management solutions.
const (
	// ReceiveAll is the stock smartphone behaviour.
	ReceiveAll = policy.ReceiveAll
	// ClientSide is the driver-filter lower bound of [6].
	ClientSide = policy.ClientSide
	// HIDE is the paper's AP-assisted filter.
	HIDE = policy.HIDE
	// Combined is the future-work HIDE + client-side combination.
	Combined = policy.Combined
)

// Station modes for the protocol simulation.
const (
	StationLegacy     = station.Legacy
	StationClientSide = station.ClientSide
	StationHIDE       = station.HIDE
)

// UsefulFractions is the Figure 7/8 sweep: 10%, 8%, 6%, 4%, 2%.
var UsefulFractions = core.UsefulFractions

// ProfileByName returns a built-in device profile by its Table I name.
func ProfileByName(name string) (Profile, error) { return energy.ProfileByName(name) }

// GenerateTrace produces the calibrated synthetic trace for a scenario.
func GenerateTrace(s Scenario) (*Trace, error) { return trace.GenerateScenario(s) }

// GenerateTraceConfig produces a trace from a custom configuration.
func GenerateTraceConfig(cfg GenConfig) (*Trace, error) { return trace.Generate(cfg) }

// ScenarioConfig returns the calibrated generator configuration for a
// scenario, for callers that want to tweak it.
func ScenarioConfig(s Scenario) GenConfig { return trace.ScenarioConfig(s) }

// ReadTraceCSV and friends exchange traces with external captures.
func ReadTraceCSV(r io.Reader) (*Trace, error)     { return trace.ReadCSV(r) }
func WriteTraceCSV(w io.Writer, tr *Trace) error   { return trace.WriteCSV(w, tr) }
func ReadTraceJSONL(r io.Reader) (*Trace, error)   { return trace.ReadJSONL(r) }
func WriteTraceJSONL(w io.Writer, tr *Trace) error { return trace.WriteJSONL(w, tr) }

// PCAPOptions tunes the pcap importer.
type PCAPOptions = trace.PCAPOptions

// ReadTracePCAP imports a classic libpcap capture (Ethernet, raw
// 802.11, or radiotap link types) as a broadcast trace.
func ReadTracePCAP(r io.Reader, opts PCAPOptions) (*Trace, error) { return trace.ReadPCAP(r, opts) }

// WriteTracePCAP exports the trace as an 802.11 pcap capture.
func WriteTracePCAP(w io.Writer, tr *Trace) error { return trace.WritePCAP(w, tr) }

// Trace transforms for building sweeps from one capture.
func TruncateTrace(tr *Trace, d time.Duration) *Trace { return trace.Truncate(tr, d) }

// WindowTrace extracts and rebases the sub-trace in [from, to).
func WindowTrace(tr *Trace, from, to time.Duration) (*Trace, error) {
	return trace.Window(tr, from, to)
}

// TimeScaleTrace stretches or compresses the trace's time axis.
func TimeScaleTrace(tr *Trace, factor float64) (*Trace, error) { return trace.TimeScale(tr, factor) }

// ThinTrace keeps each frame with the given probability.
func ThinTrace(tr *Trace, keep float64, seed uint64) (*Trace, error) {
	return trace.Thin(tr, keep, seed)
}

// MergeTraces overlays traces onto a shared time axis.
func MergeTraces(name string, traces ...*Trace) *Trace { return trace.Merge(name, traces...) }

// RepeatTrace tiles the trace n times back to back.
func RepeatTrace(tr *Trace, n int) (*Trace, error) { return trace.Repeat(tr, n) }

// LocalOpenPorts returns this Linux machine's wildcard-bound UDP ports
// — what a deployed HIDE client would report in its UDP Port Message.
func LocalOpenPorts() ([]uint16, error) { return procnet.LocalOpenPorts() }

// TraceSummary characterizes a trace's volume and burstiness.
type TraceSummary = trace.Summary

// SummarizeTrace computes volume, burstiness, and inter-arrival
// statistics for a trace.
func SummarizeTrace(tr *Trace) TraceSummary { return trace.Summarize(tr) }

// SeedSweep aggregates HIDE's saving across usefulness-tagging seeds.
type SeedSweep = core.SeedSweep

// SweepSeedsContext evaluates the headline saving across tagging seeds
// on the worker pool configured by opts.Workers; opts also supplies
// the protocol overhead, while its seed fields are overridden per
// sweep point. It shows the headline saving is not a seed artifact.
func SweepSeedsContext(ctx context.Context, tr *Trace, dev Profile, fraction float64, seeds []uint64, opts Options) (SeedSweep, error) {
	return core.SweepSeedsContext(ctx, tr, dev, fraction, seeds, opts)
}

// DefaultSweepSeeds is a small deterministic seed set for SweepSeeds.
var DefaultSweepSeeds = core.DefaultSweepSeeds

// TagUniform marks each frame useful with probability p.
func TagUniform(tr *Trace, p float64, seed uint64) []bool { return trace.TagUniform(tr, p, seed) }

// TagByOpenPorts marks frames useful when their destination port is in
// the open set.
func TagByOpenPorts(tr *Trace, open map[uint16]bool) []bool {
	return trace.TagByOpenPorts(tr, open)
}

// OpenPortsForFraction selects ports whose traffic share approximates
// the target fraction.
func OpenPortsForFraction(tr *Trace, target float64) map[uint16]bool {
	return trace.OpenPortsForFraction(tr, target)
}

// DefaultSeed is the usefulness-tagging seed an Options value selects
// when no seed is set explicitly. Use Options.WithSeed to select seed
// 0 itself.
const DefaultSeed = core.DefaultSeed

// EvaluateContext runs one policy over a tagged trace for one device,
// honouring ctx between pipeline stages. This is the canonical
// evaluation entry point: context first, options last.
func EvaluateContext(ctx context.Context, tr *Trace, useful []bool, dev Profile, kind PolicyKind, opts Options) (Result, error) {
	return core.EvaluateContext(ctx, tr, useful, dev, kind, opts)
}

// EvaluateFractionContext tags the trace uniformly and evaluates the
// policy under ctx.
func EvaluateFractionContext(ctx context.Context, tr *Trace, fraction float64, dev Profile, kind PolicyKind, opts Options) (Result, error) {
	return core.EvaluateFractionContext(ctx, tr, fraction, dev, kind, opts)
}

// CompareEnergyContext evaluates the full Figure 7/8 bar set for one
// trace, fanning the bars over the worker pool configured by
// opts.Workers; the output is identical for any worker count.
func CompareEnergyContext(ctx context.Context, tr *Trace, dev Profile, opts Options) (EnergyComparison, error) {
	return core.CompareEnergyContext(ctx, tr, dev, opts)
}

// SuspendFractionsContext evaluates the Figure 9 row for one trace
// under ctx on the configured worker pool.
func SuspendFractionsContext(ctx context.Context, tr *Trace, dev Profile, opts Options) (SuspendRow, error) {
	return core.SuspendFractionsContext(ctx, tr, dev, opts)
}

// RunSuiteContext evaluates Figures 7/8 and 9 across all scenarios,
// fanning the deduplicated evaluation grid over the worker pool
// configured by opts.Workers (0 = GOMAXPROCS). The suite is
// byte-identical to the sequential path for any worker count, and a
// cancelled ctx returns promptly with context.Canceled in the error
// chain.
func RunSuiteContext(ctx context.Context, dev Profile, opts Options) (*Suite, error) {
	return core.RunSuiteContext(ctx, dev, opts)
}

// Compatibility shims. The functions below are the pre-consolidation
// surface — bare names with implicit defaults and Options-suffixed
// variants — kept so existing callers build unchanged. Each is a
// one-line delegation to its Context variant; the apishim lint check
// forbids adding new non-context entry points outside this block.

// Deprecated: use EvaluateContext.
func Evaluate(tr *Trace, useful []bool, dev Profile, kind PolicyKind, opts Options) (Result, error) {
	return EvaluateContext(context.Background(), tr, useful, dev, kind, opts)
}

// Deprecated: use EvaluateFractionContext.
func EvaluateFraction(tr *Trace, fraction float64, dev Profile, kind PolicyKind, opts Options) (Result, error) {
	return EvaluateFractionContext(context.Background(), tr, fraction, dev, kind, opts)
}

// Deprecated: use CompareEnergyContext.
func CompareEnergyOptions(tr *Trace, dev Profile, opts Options) (EnergyComparison, error) {
	return CompareEnergyContext(context.Background(), tr, dev, opts)
}

// Deprecated: use CompareEnergyContext with Options{} for the paper's
// defaults.
func CompareEnergy(tr *Trace, dev Profile) (EnergyComparison, error) {
	return CompareEnergyContext(context.Background(), tr, dev, Options{})
}

// Deprecated: use SuspendFractionsContext.
func SuspendFractionsOptions(tr *Trace, dev Profile, opts Options) (SuspendRow, error) {
	return SuspendFractionsContext(context.Background(), tr, dev, opts)
}

// Deprecated: use SuspendFractionsContext with Options{} for the
// paper's defaults.
func SuspendFractions(tr *Trace, dev Profile) (SuspendRow, error) {
	return SuspendFractionsContext(context.Background(), tr, dev, Options{})
}

// Deprecated: use RunSuiteContext.
func RunSuiteOptions(dev Profile, opts Options) (*Suite, error) {
	return RunSuiteContext(context.Background(), dev, opts)
}

// Deprecated: use RunSuiteContext with Options{} for the paper's
// defaults.
func RunSuite(dev Profile) (*Suite, error) {
	return RunSuiteContext(context.Background(), dev, Options{})
}

// Deprecated: use SweepSeedsContext.
func SweepSeeds(tr *Trace, dev Profile, fraction float64, seeds []uint64) (SeedSweep, error) {
	return SweepSeedsContext(context.Background(), tr, dev, fraction, seeds, Options{})
}

// NewNetwork builds the protocol-level simulation harness.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return core.NewNetwork(cfg) }

// Multi-AP extended service set (ESS) types.
type (
	// ESS is a sharded multi-AP simulation joined by a distribution
	// system; clients roam between APs with disassociation and
	// reassociation frames.
	ESS = ess.ESS
	// ESSConfig configures NewESS.
	ESSConfig = ess.Config
	// ESSStats aggregates an ESS run's roaming and port-state
	// migration counters.
	ESSStats = ess.Stats
	// ESSShard is one AP with its own medium and event loop.
	ESSShard = ess.Shard
	// ChurnConfig parameterizes the cold-vs-replicated roaming
	// experiment.
	ChurnConfig = ess.ChurnConfig
	// ChurnResult is one churn experiment outcome.
	ChurnResult = ess.ChurnResult
)

// NewESS builds a sharded multi-AP extended service set.
func NewESS(cfg ESSConfig) (*ESS, error) { return ess.New(cfg) }

// RunESSContext replays the trace across every shard of the ESS under
// ctx: shards advance in lockstep beacon-interval windows, and
// cross-shard effects (distribution-system merges, roams) apply at the
// window barriers, so the run is byte-identical for any worker count.
func RunESSContext(ctx context.Context, e *ESS, tr *Trace) error { return e.RunContext(ctx, tr) }

// RunChurnContext runs the roaming-churn experiment: an ESS under a
// scenario trace with seed-driven client mobility, reporting roams,
// wanted-frame misses, resync-window misses, and mean per-station
// energy. Toggle ChurnConfig.Replicate to compare cold port-table
// resync against proactive distribution-system replication.
func RunChurnContext(ctx context.Context, cfg ChurnConfig) (ChurnResult, error) {
	return ess.RunChurnContext(ctx, cfg)
}

// TableII returns the 802.11b configuration of the paper's Table II.
func TableII() DCFConfig { return bianchi.TableII() }

// NetworkCapacity solves Bianchi's model for n saturated stations.
func NetworkCapacity(cfg DCFConfig, n int) (bianchi.Result, error) { return bianchi.Solve(cfg, n) }

// CapacityOverhead computes the fractional capacity decrease (Eq. 24).
func CapacityOverhead(cfg DCFConfig, p CapacityParams, n int) (float64, error) {
	return bianchi.CapacityOverhead(cfg, p, n)
}

// Figure10 sweeps the paper's capacity-overhead grid.
func Figure10(cfg DCFConfig) ([]bianchi.Figure10Point, error) { return bianchi.Figure10(cfg) }

// DelayOverhead computes the bounded RTT increase (Eq. 27).
func DelayOverhead(p DelayParams) (float64, error) { return porttable.DelayOverhead(p) }

// DelayDefaults returns the paper's Section V-B settings.
func DelayDefaults() DelayParams { return porttable.SectionVDefaults() }

// CalibratedARMTimings returns port-table operation costs calibrated
// to the paper's router-class measurement device.
func CalibratedARMTimings() OpTimings { return porttable.CalibratedARM() }

// MeasureTableTimings measures this machine's port-table operation
// costs with the paper's procedure.
func MeasureTableTimings(n, portsPerClient int, seed uint64) OpTimings {
	return porttable.Measure(n, portsPerClient, seed)
}

// Figure11 sweeps delay overhead across port-message intervals.
func Figure11(t OpTimings) ([]porttable.Figure11Point, error) { return porttable.Figure11(t) }

// Figure12 sweeps delay overhead across open-port counts.
func Figure12(t OpTimings) ([]porttable.Figure12Point, error) { return porttable.Figure12(t) }

// NewPortTable returns an empty Client UDP Port Table.
func NewPortTable() *PortTable { return porttable.New() }

// NewCDFInts builds an empirical CDF from integer samples (Figure 6).
func NewCDFInts(samples []int) *CDF { return trace.NewCDFInts(samples) }

// DefaultOverhead returns the paper's evaluation overhead settings.
func DefaultOverhead() Overhead { return energy.DefaultOverhead() }

// ComputeEnergy evaluates the Section IV model directly over arrivals;
// most callers use Evaluate and the policy layer instead.
func ComputeEnergy(frames []Arrival, dev Profile, duration time.Duration, overhead Overhead) (Breakdown, error) {
	return energy.Compute(frames, energy.Config{Device: dev, Duration: duration, Overhead: overhead})
}

// StateInterval is one contiguous host power-state stretch.
type StateInterval = energy.Interval

// StateTimeline reconstructs the host power-state timeline (suspended,
// resuming, awake, suspending) from a received-frame sequence. The
// intervals partition [0, duration] exactly.
func StateTimeline(frames []Arrival, dev Profile, duration time.Duration) ([]StateInterval, error) {
	return energy.StateTimeline(frames, energy.Config{Device: dev, Duration: duration})
}

// Rates re-exported for trace configuration.
const (
	Rate1Mbps  = dot11.Rate1Mbps
	Rate2Mbps  = dot11.Rate2Mbps
	Rate55Mbps = dot11.Rate55Mbps
	Rate11Mbps = dot11.Rate11Mbps
)
