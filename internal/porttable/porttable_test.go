package porttable

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/dot11"
)

func TestZeroValueUsable(t *testing.T) {
	var tab Table
	tab.Update(1, []uint16{53, 5353})
	if !tab.Listening(53, 1) {
		t.Fatal("zero-value table did not store entries")
	}
}

func TestUpdateAndLookup(t *testing.T) {
	tab := New()
	tab.Update(1, []uint16{53, 5353})
	tab.Update(2, []uint16{5353, 1900})
	tab.Update(3, []uint16{80})

	got := tab.Lookup(5353)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Lookup(5353) = %v, want [1 2]", got)
	}
	if got := tab.Lookup(53); len(got) != 1 || got[0] != 1 {
		t.Errorf("Lookup(53) = %v, want [1]", got)
	}
	if got := tab.Lookup(9999); got != nil {
		t.Errorf("Lookup(9999) = %v, want nil", got)
	}
	if tab.Clients() != 3 {
		t.Errorf("Clients = %d, want 3", tab.Clients())
	}
	if tab.Len() != 5 {
		t.Errorf("Len = %d, want 5", tab.Len())
	}
}

func TestUpdateReplacesOldPorts(t *testing.T) {
	tab := New()
	tab.Update(7, []uint16{100, 200, 300})
	tab.Update(7, []uint16{200, 400})
	for _, c := range []struct {
		port uint16
		want bool
	}{{100, false}, {200, true}, {300, false}, {400, true}} {
		if got := tab.Listening(c.port, 7); got != c.want {
			t.Errorf("Listening(%d) = %v, want %v", c.port, got, c.want)
		}
	}
	ports := tab.Ports(7)
	if len(ports) != 2 {
		t.Errorf("Ports = %v, want 2 entries", ports)
	}
}

func TestUpdateCollapsesDuplicates(t *testing.T) {
	tab := New()
	tab.Update(1, []uint16{53, 53, 53})
	if tab.Len() != 1 {
		t.Errorf("duplicate ports stored: Len = %d", tab.Len())
	}
	if got := tab.Lookup(53); len(got) != 1 {
		t.Errorf("Lookup = %v, want one client", got)
	}
}

func TestRemove(t *testing.T) {
	tab := New()
	tab.Update(1, []uint16{53})
	tab.Update(2, []uint16{53})
	tab.Remove(1)
	if tab.Listening(53, 1) {
		t.Error("removed client still listed")
	}
	if !tab.Listening(53, 2) {
		t.Error("Remove disturbed another client")
	}
	if tab.Clients() != 1 {
		t.Errorf("Clients = %d, want 1", tab.Clients())
	}
}

func TestOpsCounting(t *testing.T) {
	tab := New()
	tab.Update(1, []uint16{1, 2, 3}) // 3 inserts
	tab.Update(1, []uint16{4})       // 3 deletes + 1 insert
	tab.Lookup(4)                    // 1 lookup
	ops := tab.Ops()
	if ops.Inserts != 4 || ops.Deletes != 3 || ops.Lookups != 1 {
		t.Errorf("ops = %+v, want 4 inserts, 3 deletes, 1 lookup", ops)
	}
}

func TestTableInvariantProperty(t *testing.T) {
	// The forward (port→AIDs) and reverse (AID→ports) maps must stay
	// consistent under arbitrary update sequences.
	f := func(updates []struct {
		AID   uint16
		Ports []uint16
	}) bool {
		tab := New()
		for _, u := range updates {
			aid := dot11.AID(u.AID%100 + 1)
			ports := u.Ports
			if len(ports) > 50 {
				ports = ports[:50]
			}
			tab.Update(aid, ports)
		}
		// Every reverse entry must appear in the forward map and vice
		// versa; Len must equal the sum over clients of unique ports.
		total := 0
		for aid := dot11.AID(1); aid <= 101; aid++ {
			ports := tab.Ports(aid)
			total += len(ports)
			for _, p := range ports {
				if !tab.Listening(p, aid) {
					return false
				}
			}
		}
		return tab.Len() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDelayOverheadPaperHeadlines(t *testing.T) {
	// Paper: 2.3% at 1/f = 10 s (Fig. 11 worst case) ...
	p := SectionVDefaults()
	d, err := DelayOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.023) > 0.004 {
		t.Errorf("overhead at defaults = %.2f%%, want ~2.3%%", d*100)
	}
	// ... ~0.05% at 1/f = 600 s ...
	p.PortMsgInterval = 600 * time.Second
	d, err = DelayOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.001 {
		t.Errorf("overhead at 600 s = %.3f%%, want ~0.05%%", d*100)
	}
	// ... and <1.6% at n_o = 100, 1/f = 30 s (Fig. 12 worst case).
	p = SectionVDefaults()
	p.PortMsgInterval = 30 * time.Second
	p.OpenPorts = 100
	d, err = DelayOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.016 {
		t.Errorf("overhead at n_o=100 = %.2f%%, want < 1.6%%", d*100)
	}
}

func TestDelayOverheadT1DominatesT2(t *testing.T) {
	// The paper observes t1 >> t2 at its settings.
	p := SectionVDefaults()
	full, err := DelayOverhead(p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.BufferedFrames = 0
	t1Only, err := DelayOverhead(p2)
	if err != nil {
		t.Fatal(err)
	}
	t2Part := full - t1Only
	if t2Part > t1Only/10 {
		t.Errorf("t2 share %.4f%% not << t1 share %.4f%%", t2Part*100, t1Only*100)
	}
}

func TestDelayOverheadMonotone(t *testing.T) {
	base := SectionVDefaults()
	mustOverhead := func(p DelayParams) float64 {
		t.Helper()
		d, err := DelayOverhead(p)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d0 := mustOverhead(base)
	// More clients → more overhead.
	p := base
	p.N = 100
	if mustOverhead(p) <= d0 {
		t.Error("overhead not monotone in N")
	}
	// More frequent messages → more overhead.
	p = base
	p.PortMsgInterval = 5 * time.Second
	if mustOverhead(p) <= d0 {
		t.Error("overhead not monotone in f")
	}
	// More open ports → more overhead.
	p = base
	p.OpenPorts = 100
	if mustOverhead(p) <= d0 {
		t.Error("overhead not monotone in n_o")
	}
	// Lower HIDE penetration → less overhead.
	p = base
	p.HIDEFraction = 0.1
	if mustOverhead(p) >= d0 {
		t.Error("overhead not monotone in p")
	}
}

func TestDelayOverheadValidation(t *testing.T) {
	cases := []func(*DelayParams){
		func(p *DelayParams) { p.N = 0 },
		func(p *DelayParams) { p.HIDEFraction = -0.1 },
		func(p *DelayParams) { p.PortMsgInterval = 0 },
		func(p *DelayParams) { p.OpenPorts = -1 },
		func(p *DelayParams) { p.BaselineRTT = 0 },
	}
	for i, m := range cases {
		p := SectionVDefaults()
		m(&p)
		if _, err := DelayOverhead(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestFigure11Sweep(t *testing.T) {
	pts, err := Figure11(CalibratedARM())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 36 {
		t.Fatalf("Figure 11 has %d points, want 36", len(pts))
	}
	// Every series grows with N; shorter intervals dominate longer ones.
	for i, pt := range pts {
		if pt.Overhead < 0 || pt.Overhead > 0.04 {
			t.Errorf("point %d: overhead %.3f%% outside [0, 4%%]", i, pt.Overhead*100)
		}
	}
}

func TestFigure12Sweep(t *testing.T) {
	pts, err := Figure12(CalibratedARM())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 24 {
		t.Fatalf("Figure 12 has %d points, want 24", len(pts))
	}
	for i, pt := range pts {
		if pt.Overhead < 0 || pt.Overhead > 0.016 {
			t.Errorf("point %d: overhead %.3f%% outside [0, 1.6%%]", i, pt.Overhead*100)
		}
	}
}

func TestMeasureProducesPositiveTimings(t *testing.T) {
	got := Measure(50, 50, 1)
	if got.Insert <= 0 || got.Delete <= 0 || got.Lookup <= 0 {
		t.Fatalf("Measure returned non-positive timings: %+v", got)
	}
	// Sanity ceiling: even a slow CI machine does these in < 100 µs.
	if got.Insert > 100*time.Microsecond || got.Lookup > 100*time.Microsecond {
		t.Errorf("implausible timings: %+v", got)
	}
}

func TestMeasureLeavesTableConsistent(t *testing.T) {
	// The measured primitives maintain the same invariants as Update.
	tab := New()
	tab.insertOne(53, 1)
	tab.insertOne(53, 2)
	tab.deleteOne(53, 1)
	if tab.Listening(53, 1) || !tab.Listening(53, 2) {
		t.Fatal("insertOne/deleteOne broke table state")
	}
	if got := tab.Ports(2); len(got) != 1 || got[0] != 53 {
		t.Fatalf("reverse map inconsistent: %v", got)
	}
	tab.deleteOne(53, 2)
	if tab.Len() != 0 {
		t.Fatalf("table not empty after deletes: %d", tab.Len())
	}
}
