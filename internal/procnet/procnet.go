// Package procnet collects the open UDP ports of the local system —
// the information a deployed HIDE client reports to the AP in its UDP
// Port Messages. On Linux the kernel exposes UDP sockets in
// /proc/net/udp and /proc/net/udp6; the paper's client reports only
// sockets bound to the wildcard address (INADDR_ANY), because those
// are the ones a broadcast datagram could actually reach.
package procnet

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Socket is one parsed UDP socket table entry.
type Socket struct {
	// LocalIP is the hex-decoded local address (4 bytes for udp, 16
	// for udp6).
	LocalIP []byte
	// LocalPort is the bound port.
	LocalPort uint16
	// Wildcard reports whether the socket is bound to INADDR_ANY (or
	// in6addr_any).
	Wildcard bool
}

// ParseTable parses the /proc/net/udp (or udp6) format: a header line
// followed by entries whose second column is local_address in
// "HEXIP:HEXPORT" form.
func ParseTable(r io.Reader) ([]Socket, error) {
	sc := bufio.NewScanner(r)
	var out []Socket
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if lineNo == 1 || line == "" {
			continue // header
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("procnet: line %d: too few columns", lineNo)
		}
		sock, err := parseLocalAddress(fields[1])
		if err != nil {
			return nil, fmt.Errorf("procnet: line %d: %w", lineNo, err)
		}
		out = append(out, sock)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("procnet: reading table: %w", err)
	}
	return out, nil
}

// parseLocalAddress decodes "HEXIP:HEXPORT".
func parseLocalAddress(s string) (Socket, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Socket{}, fmt.Errorf("malformed local_address %q", s)
	}
	ipHex, portHex := s[:i], s[i+1:]
	if len(ipHex) != 8 && len(ipHex) != 32 {
		return Socket{}, fmt.Errorf("local address %q is neither IPv4 nor IPv6", s)
	}
	port64, err := strconv.ParseUint(portHex, 16, 16)
	if err != nil {
		return Socket{}, fmt.Errorf("bad port in %q: %w", s, err)
	}
	ip := make([]byte, len(ipHex)/2)
	wildcard := true
	for j := 0; j < len(ip); j++ {
		b64, err := strconv.ParseUint(ipHex[2*j:2*j+2], 16, 8)
		if err != nil {
			return Socket{}, fmt.Errorf("bad address in %q: %w", s, err)
		}
		ip[j] = byte(b64)
		if ip[j] != 0 {
			wildcard = false
		}
	}
	return Socket{LocalIP: ip, LocalPort: uint16(port64), Wildcard: wildcard}, nil
}

// WildcardPorts returns the sorted, de-duplicated ports of sockets
// bound to the wildcard address — the set a HIDE client reports
// (paper §III-B: "a client only reports UDP ports associated with the
// source address INADDR ANY").
func WildcardPorts(socks []Socket) []uint16 {
	seen := make(map[uint16]struct{})
	for _, s := range socks {
		if s.Wildcard {
			seen[s.LocalPort] = struct{}{}
		}
	}
	out := make([]uint16, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LocalOpenPorts reads this machine's /proc/net/udp (and udp6 when
// present) and returns the wildcard-bound UDP ports. It only works on
// Linux; other platforms get an error.
func LocalOpenPorts() ([]uint16, error) {
	var socks []Socket
	found := false
	for _, path := range []string{"/proc/net/udp", "/proc/net/udp6"} {
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		found = true
		s, perr := ParseTable(f)
		//lint:ignore errdrop read-side close; parse errors are already captured
		f.Close()
		if perr != nil {
			return nil, fmt.Errorf("procnet: %s: %w", path, perr)
		}
		socks = append(socks, s...)
	}
	if !found {
		return nil, fmt.Errorf("procnet: no /proc/net/udp tables (not Linux?)")
	}
	return WildcardPorts(socks), nil
}
