package core

import (
	"fmt"
	"time"

	"repro/internal/ap"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/medium"
	"repro/internal/sim"
	"repro/internal/station"
	"repro/internal/trace"
)

// Network assembles the full protocol simulation: one AP and a set of
// stations on an emulated channel, with a broadcast trace replayed
// through the AP's group-frame queue. It cross-validates the analytic
// pipeline: the stations exchange real marshalled frames, and their
// recorded arrivals feed the same Section IV energy model.
type Network struct {
	Engine  *sim.Engine
	Medium  *medium.Medium
	AP      *ap.AP
	BSSID   dot11.MACAddr
	SSID    string
	entries []netEntry
	monitor *Monitor

	seed        uint64
	harden      bool
	portRefresh time.Duration // station-side TTL refresh cadence when hardened
}

// netEntry pairs a station with its configuration.
type netEntry struct {
	st   *station.Station
	addr dot11.MACAddr
	mode station.Mode
}

// NetworkConfig configures NewNetwork.
type NetworkConfig struct {
	// SSID names the network (default "hide-sim").
	SSID string
	// BeaconInterval and DTIMPeriod follow ap.Config defaults.
	BeaconInterval time.Duration
	DTIMPeriod     int
	// HIDE enables the AP's HIDE extensions.
	HIDE bool
	// FilterUnicast enables the AP-side unicast filtering extension
	// (paper §I): unicast UDP frames to a HIDE client's closed ports
	// are dropped at the AP.
	FilterUnicast bool
	// Loss is the medium's independent per-delivery loss probability.
	Loss float64
	// Fault installs a composable fault plan on the medium, consulted
	// once per delivery (after the Loss knob, when both are set). Nil
	// leaves the channel pristine — byte-identical to fault-free
	// builds.
	Fault fault.Plan
	// Harden enables the protocol hardening the fault subsystem
	// motivates: the AP expires Client UDP Port Table entries after a
	// TTL of 8 DTIM periods, stations refresh their entries every 3
	// DTIM periods and arm the missed-beacon fail-safe. Off, the
	// protocol behaves exactly as the paper describes (and as the
	// golden figures record).
	Harden bool
	// Seed drives the medium's fault RNG and the stations' jitter RNGs.
	Seed uint64
}

// NewNetwork builds an engine, medium, and AP.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.SSID == "" {
		cfg.SSID = "hide-sim"
	}
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), cfg.Seed+1)
	if cfg.Loss > 0 {
		if err := med.SetLoss(cfg.Loss); err != nil {
			return nil, err
		}
	}
	if cfg.Fault != nil {
		plan := cfg.Fault
		if cfg.Loss > 0 {
			plan = fault.Compose(fault.Loss{P: cfg.Loss}, plan)
		}
		med.SetFaultPlan(plan)
	}

	// Hardening cadences derive from the DTIM span: stations refresh
	// their port-table entries every 3 DTIM periods and the AP expires
	// entries not refreshed within 8 — room for two whole refresh
	// rounds (each with its own retry budget) to be lost before a live
	// client's entry can age out.
	interval := cfg.BeaconInterval
	if interval <= 0 {
		interval = dot11.DefaultBeaconInterval
	}
	dtimPeriod := cfg.DTIMPeriod
	if dtimPeriod <= 0 {
		dtimPeriod = 3
	}
	dtimSpan := interval * time.Duration(dtimPeriod)
	var portTTL time.Duration
	if cfg.Harden {
		portTTL = 8 * dtimSpan
	}

	bssid := dot11.MACAddr{0x02, 0x1d, 0xe0, 0x00, 0x00, 0x01}
	a := ap.New(eng, med, ap.Config{
		BSSID:          bssid,
		SSID:           cfg.SSID,
		BeaconInterval: cfg.BeaconInterval,
		DTIMPeriod:     cfg.DTIMPeriod,
		HIDE:           cfg.HIDE,
		FilterUnicast:  cfg.FilterUnicast,
		PortTTL:        portTTL,
	})
	return &Network{
		Engine: eng, Medium: med, AP: a, BSSID: bssid, SSID: cfg.SSID,
		seed: cfg.Seed, harden: cfg.Harden, portRefresh: 3 * dtimSpan,
	}, nil
}

// AddStation creates and attaches a station with the given open ports
// and starts the frame-level association exchange: the AssocRequest —
// carrying the Open UDP Ports element for HIDE stations — goes over
// the medium and the AP assigns the AID in its response. Association
// completes within the first milliseconds of the simulation run.
func (n *Network) AddStation(mode station.Mode, openPorts []uint16) (*station.Station, error) {
	return n.AddStationListenInterval(mode, openPorts, 1)
}

// Replay schedules every frame of the trace as a group datagram
// arriving at the AP from the distribution system, starts the AP's
// beacon loop, and runs the simulation for the trace duration plus
// one beacon interval of drain time.
func (n *Network) Replay(tr *trace.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	n.AP.Start()
	// One bound event for all frames, with per-frame state passed as a
	// pointer into the (immutable, shared) trace: no closure and no
	// payload buffer per scheduled frame. EncapsulateUDP copies the
	// payload into the frame body, so the all-zero padding buffer can be
	// shared by every datagram.
	enqueue := func(now time.Duration, arg any) {
		f := arg.(*trace.Frame)
		payload := f.Length - dot11.MACHeaderLen - dot11.UDPEncapsLen
		if payload < 0 {
			payload = 0
		}
		n.AP.EnqueueGroup(dot11.UDPDatagram{
			DstIP:   [4]byte{255, 255, 255, 255},
			DstPort: f.DstPort,
			Payload: zeroPad(payload),
		}, f.Rate)
	}
	for i := range tr.Frames {
		if _, err := n.Engine.ScheduleArgAt(tr.Frames[i].At, enqueue, &tr.Frames[i]); err != nil {
			return fmt.Errorf("core: scheduling trace frame: %w", err)
		}
	}
	n.Engine.RunUntil(tr.Duration + dot11.DefaultBeaconInterval)
	return nil
}

// zeroPayloadBuf backs replayed datagram padding; see Replay.
var zeroPayloadBuf [4096]byte

// zeroPad returns an all-zero payload of n bytes, shared when it fits
// the static buffer.
func zeroPad(n int) []byte {
	if n <= len(zeroPayloadBuf) {
		return zeroPayloadBuf[:n]
	}
	return make([]byte, n)
}

// Stations returns the attached stations in attachment order.
func (n *Network) Stations() []*station.Station {
	out := make([]*station.Station, len(n.entries))
	for i, e := range n.entries {
		out[i] = e.st
	}
	return out
}

// StationEnergy evaluates the Section IV model over a station's
// recorded arrivals, honouring the station's listen interval.
func (n *Network) StationEnergy(st *station.Station, dev energy.Profile, duration time.Duration, withOverhead bool) (energy.Breakdown, error) {
	cfg := energy.Config{
		Device:               dev,
		Duration:             duration,
		BeaconListenInterval: st.ListenInterval(),
	}
	if withOverhead {
		cfg.Overhead = energy.DefaultOverhead()
	}
	return energy.Compute(st.Arrivals(), cfg)
}

// AddStationListenInterval is AddStation with an 802.11 listen
// interval: the station's radio wakes only for every li-th beacon.
func (n *Network) AddStationListenInterval(mode station.Mode, openPorts []uint16, li int) (*station.Station, error) {
	idx := len(n.entries) + 1
	if idx > int(dot11.MaxAID) {
		return nil, fmt.Errorf("core: association space exhausted")
	}
	addr := dot11.MACAddr{0x02, 0x1d, 0xe0, 0x01, byte(idx >> 8), byte(idx)}
	scfg := station.Config{
		Addr:           addr,
		BSSID:          n.BSSID,
		Mode:           mode,
		ListenInterval: li,
		Seed:           n.seed,
	}
	if n.harden {
		scfg.PortRefresh = n.portRefresh
		scfg.MissedBeaconFailSafe = true
	}
	st := station.New(n.Engine, n.Medium, scfg)
	for _, p := range openPorts {
		st.OpenPort(p)
	}
	st.StartAssociation(n.SSID)
	n.entries = append(n.entries, netEntry{st: st, addr: addr, mode: mode})
	return st, nil
}
