package sim

import (
	"context"
	"testing"
	"time"
)

// closeWhenDone polls cond by injecting probe events — each probe runs
// on the engine goroutine, so cond may read engine state without
// synchronization — and closes inject once cond holds (ending
// RunRealtime). A fixed sleep here would race the engine on a slow CI
// machine; polling with a generous deadline cannot.
func closeWhenDone(t *testing.T, inject chan Event, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		ok := make(chan bool, 1)
		inject <- func(time.Duration) { ok <- cond() }
		if <-ok {
			close(inject)
			return
		}
		if time.Now().After(deadline) {
			close(inject)
			t.Error("condition not reached before deadline")
			return
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRunRealtimeDispatchesAtWallPace(t *testing.T) {
	e := New()
	var fired []time.Duration
	for _, at := range []time.Duration{10 * time.Millisecond, 30 * time.Millisecond} {
		at := at
		e.MustScheduleAt(at, func(now time.Duration) { fired = append(fired, now) })
	}
	inject := make(chan Event)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	start := time.Now()
	// fired is written by engine events and read by probes that also run
	// on the engine goroutine, so the poll is race-free.
	go closeWhenDone(t, inject, func() bool { return len(fired) == 2 })
	if err := e.RunRealtime(ctx, inject); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if fired[0] != 10*time.Millisecond || fired[1] != 30*time.Millisecond {
		t.Fatalf("virtual fire times %v", fired)
	}
	if elapsed < 30*time.Millisecond {
		t.Fatalf("returned after %v; events cannot have fired at wall pace", elapsed)
	}
}

func TestRunRealtimeInjection(t *testing.T) {
	e := New()
	inject := make(chan Event)
	got := make(chan time.Duration, 1)
	go func() {
		inject <- func(now time.Duration) {
			got <- now
			// Injected code can schedule engine events.
			e.MustScheduleAfter(time.Millisecond, func(time.Duration) {})
		}
		closeWhenDone(t, inject, func() bool { return e.Fired() == 1 })
	}()
	if err := e.RunRealtime(context.Background(), inject); err != nil {
		t.Fatal(err)
	}
	select {
	case now := <-got:
		if now < 0 {
			t.Fatalf("injected at negative virtual time %v", now)
		}
	default:
		t.Fatal("injection never ran")
	}
	if e.Fired() != 1 {
		t.Fatalf("scheduled-from-injection event fired %d times, want 1", e.Fired())
	}
}

func TestRunRealtimeCancellation(t *testing.T) {
	e := New()
	e.MustScheduleAt(time.Hour, func(time.Duration) { t.Error("distant event fired") })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := e.RunRealtime(ctx, make(chan Event))
	if err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancellation not prompt")
	}
}

func TestRunRealtimeReentrantPanics(t *testing.T) {
	e := New()
	// Unbuffered send then close: the reentrant probe is delivered and
	// run before the closed channel ends the loop — no sleep needed.
	inject := make(chan Event)
	go func() {
		inject <- func(time.Duration) {
			defer func() {
				if recover() == nil {
					t.Error("reentrant RunRealtime did not panic")
				}
			}()
			_ = e.RunRealtime(context.Background(), nil)
		}
		close(inject)
	}()
	if err := e.RunRealtime(context.Background(), inject); err != nil {
		t.Fatal(err)
	}
}
