package check

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/station"
	"repro/internal/trace"
)

// TestWindowEquiv is the windowed-parallel acceptance grid: every cell
// replays the same population at WindowWorkers 1, 2 and 4 and requires
// the hub frame stream byte-identical and every member's counters,
// arrivals, and energy bit-identical across the sweep — both
// population shapes, with and without per-group fault plans. As with
// the cohort grid the claim is per-event, so a short window that
// crosses several DTIM rounds (suspend cycles, port-message
// handshakes, hardened refreshes, barrier-merged retries) proves as
// much as the full capture.
func TestWindowEquiv(t *testing.T) {
	cells := DefaultWindowCells()
	cfg := EquivConfig{Duration: testEquivDuration}
	if testing.Short() {
		cells = []WindowCell{
			{Scenario: trace.Classroom, Size: 6, Cohort: false, Fault: true},
			{Scenario: trace.Classroom, Size: 6, Cohort: true, Fault: false},
		}
		cfg.Duration = 45 * time.Second
	}
	for _, c := range cells {
		res, err := RunWindowCell(c, cfg)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		if !res.OK() {
			t.Errorf("%v diverged: %s", c, res.Mismatch)
		}
		if res.Frames == 0 {
			t.Errorf("%v: zero frames on the hub air — the cell proved nothing", c)
		}
	}
}

// TestWindowCellValidation: degenerate sizes are rejected up front.
func TestWindowCellValidation(t *testing.T) {
	_, err := RunWindowCell(WindowCell{Scenario: trace.WRL, Size: 0},
		EquivConfig{Duration: time.Second})
	if err == nil || !strings.Contains(err.Error(), "size") {
		t.Fatalf("size 0 accepted: %v", err)
	}
}

// TestWindowCellLabel pins the report label format.
func TestWindowCellLabel(t *testing.T) {
	c := WindowCell{Scenario: trace.Classroom, Size: 6, Cohort: true, Fault: true}
	if got := c.String(); got != "window/Classroom/cohort/faulty/n6" {
		t.Fatalf("label %q", got)
	}
}

// TestWindowCancellation cancels a windowed replay from a hub event in
// the middle of a window and requires ReplayContext to surface
// context.Canceled promptly: the barrier loop checks the context every
// window, the group engines carry an interrupt hook that aborts
// in-flight drains between events, and a torn run must report the
// cancellation rather than a partial result.
func TestWindowCancellation(t *testing.T) {
	tr, err := oracleTrace(trace.Classroom, 0, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	open := sortedPorts(trace.OpenPortsForFraction(tr, 0.10))

	w, err := core.NewWindowedNetwork(core.WindowConfig{
		Network: core.NetworkConfig{DTIMPeriod: 1, HIDE: true},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := w.AddStation(station.HIDE, open); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fire mid-run, off the barrier grid: the hub phase that dispatches
	// this event is followed by a group phase whose workers must observe
	// the cancellation and abort.
	cancelAt := 10*time.Second + w.Window()/3
	w.Hub.Engine.MustScheduleAt(cancelAt, func(at time.Duration) { cancel() })

	err = w.ReplayContext(ctx, tr)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled replay returned %v, want context.Canceled", err)
	}
	if now := w.Hub.Engine.Now(); now < cancelAt || now > cancelAt+2*w.Window() {
		t.Fatalf("hub clock %v after cancellation at %v — the run did not stop near the cancelling window", now, cancelAt)
	}
}
