// Windowed-parallel determinism layer: proves the WindowedNetwork
// worker-count independent.
//
// The windowed assembly (core.WindowedNetwork, DESIGN.md §13) claims
// that the worker count only bounds concurrency — the canonical frame
// stream on the hub medium must stay byte-identical, and every
// member's arrival log, protocol counters, and Section IV energy
// breakdown bit-identical, for ANY WindowWorkers value. This layer
// replays the same cell at workers 1, 2 and 4 and compares every
// observable against the sequential (workers=1) reference with the
// cohort suite's exact comparators (==, not tolerances). Cells sweep
// both population shapes (one cohort block vs individually-partitioned
// stations) and per-group fault plans on/off, so the proof covers the
// barrier merge under contention, downlink fault draws from the
// group-private RNG streams, and ACK-retry jitter.
package check

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/station"
	"repro/internal/trace"
)

// WindowWorkerSweep is the worker counts a windowed cell compares; the
// first entry is the sequential reference.
var WindowWorkerSweep = []int{1, 2, 4}

// WindowCell identifies one windowed-parallel determinism comparison:
// a population of Size HIDE members replaying a Scenario trace, shaped
// as one cohort block or as Size individually-partitioned stations,
// with per-group fault plans on or off.
type WindowCell struct {
	Scenario trace.Scenario
	Size     int
	Cohort   bool
	Fault    bool
}

// String labels the cell for reports.
func (c WindowCell) String() string {
	shape := "individual"
	if c.Cohort {
		shape = "cohort"
	}
	ch := "clean"
	if c.Fault {
		ch = "faulty"
	}
	return fmt.Sprintf("window/%s/%s/%s/n%d", c.Scenario, shape, ch, c.Size)
}

// windowFaultFor builds the per-group fault-plan factory for faulty
// cells: every group gets its own fresh Gilbert-Elliott channel
// (stateful, so it must never be shared across groups), consulted from
// the group's private index-seeded RNG stream — deterministic for any
// worker count by construction.
func windowFaultFor(on bool) func(int) fault.Plan {
	if !on {
		return nil
	}
	return func(group int) fault.Plan {
		ge, err := fault.NewGilbertElliott(0.05, 0.30, 0.01, 0.25)
		if err != nil {
			panic("check: static Gilbert-Elliott parameters rejected: " + err.Error())
		}
		return ge
	}
}

// runWindowSide replays the cell's population through the windowed
// assembly at the given worker count and collects the cohort suite's
// observables: the hub-air fingerprint and the per-member pricing
// inputs.
func runWindowSide(tr *trace.Trace, open []uint16, cfg EquivConfig, c WindowCell, workers int) (*equivSide, error) {
	w, err := core.NewWindowedNetwork(core.WindowConfig{
		Network:  core.NetworkConfig{DTIMPeriod: 1, HIDE: true, Seed: cfg.Seed},
		Workers:  workers,
		FaultFor: windowFaultFor(c.Fault),
	})
	if err != nil {
		return nil, err
	}
	d := newAirDigest()
	w.Hub.Medium.SetTap(d.tap)

	var coh *station.CohortStation
	var sts []*station.Station
	if c.Cohort {
		if coh, err = w.AddCohort(station.HIDE, open, c.Size, 1); err != nil {
			return nil, err
		}
		if coh.Aggregate() {
			return nil, fmt.Errorf("check: cohort of %d fell out of the exact regime", c.Size)
		}
	} else {
		for i := 0; i < c.Size; i++ {
			st, err := w.AddStation(station.HIDE, open)
			if err != nil {
				return nil, err
			}
			sts = append(sts, st)
		}
	}
	if err := w.Replay(tr); err != nil {
		return nil, err
	}

	side := &equivSide{fp: d.h.Sum64(), frames: d.frames}
	if c.Cohort {
		segs, total := coh.Segments(), 0
		for _, s := range segs {
			total += s.Count()
		}
		if total != c.Size {
			return nil, fmt.Errorf("check: cohort segments cover %d of %d members", total, c.Size)
		}
		for _, s := range segs {
			arr, st := s.Arrivals(), s.MemberStats()
			for i := 0; i < s.Count(); i++ {
				side.arrivals = append(side.arrivals, arr)
				side.stats = append(side.stats, st)
			}
		}
	} else {
		for _, st := range sts {
			side.arrivals = append(side.arrivals, st.Arrivals())
			side.stats = append(side.stats, st.Stats())
		}
	}
	return side, nil
}

// WindowResult is one compared cell: the sequential reference against
// every other worker count in the sweep.
type WindowResult struct {
	Cell WindowCell
	// Frames is the number of frames the reference run put on the hub
	// air.
	Frames int
	// Mismatch names the first diverging observable, prefixed with the
	// diverging worker count ("" = exact at every count).
	Mismatch string
}

// OK reports whether every worker count reproduced the reference.
func (r WindowResult) OK() bool { return r.Mismatch == "" }

// RunWindowCell runs one windowed-parallel determinism comparison
// across WindowWorkerSweep.
func RunWindowCell(c WindowCell, cfg EquivConfig) (WindowResult, error) {
	cfg = cfg.normalized()
	if c.Size < 1 {
		return WindowResult{}, fmt.Errorf("check: window cell size %d < 1", c.Size)
	}
	tr, err := oracleTrace(c.Scenario, cfg.Seed, cfg.Duration)
	if err != nil {
		return WindowResult{}, err
	}
	open := sortedPorts(trace.OpenPortsForFraction(tr, cfg.UsefulTarget))
	deadline := tr.Duration + dot11.DefaultBeaconInterval

	ref, err := runWindowSide(tr, open, cfg, c, WindowWorkerSweep[0])
	if err != nil {
		return WindowResult{}, fmt.Errorf("check: %v workers=%d: %w", c, WindowWorkerSweep[0], err)
	}
	res := WindowResult{Cell: c, Frames: ref.frames}
	for _, workers := range WindowWorkerSweep[1:] {
		side, err := runWindowSide(tr, open, cfg, c, workers)
		if err != nil {
			return WindowResult{}, fmt.Errorf("check: %v workers=%d: %w", c, workers, err)
		}
		if d := diffSidesLabeled(ref, side, "workers=1", fmt.Sprintf("workers=%d", workers), c.Size, cfg, deadline); d != "" {
			res.Mismatch = fmt.Sprintf("workers=%d: %s", workers, d)
			return res, nil
		}
	}
	return res, nil
}

// DefaultWindowCells is the acceptance grid: both population shapes ×
// fault plans on/off, on a light and a heavy scenario.
func DefaultWindowCells() []WindowCell {
	var cells []WindowCell
	for _, sc := range []trace.Scenario{trace.Starbucks, trace.Classroom} {
		for _, cohort := range []bool{false, true} {
			for _, faulty := range []bool{false, true} {
				cells = append(cells, WindowCell{Scenario: sc, Size: 6, Cohort: cohort, Fault: faulty})
			}
		}
	}
	return cells
}
