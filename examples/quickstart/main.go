// Quickstart: evaluate how much energy HIDE saves a phone sitting in a
// cafe, using the public API end to end — generate a calibrated trace,
// compare the three traffic-management solutions, and print the
// result. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Generate the Starbucks broadcast trace (30 min of UDP-padded
	//    broadcast frames calibrated to the paper's Figure 6).
	tr, err := hide.GenerateTrace(hide.Starbucks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %q: %d broadcast frames over %v (%.2f frames/s)\n",
		tr.Name, len(tr.Frames), tr.Duration, tr.MeanFPS())

	// 2. Compare receive-all, the client-side filter's lower bound, and
	//    HIDE at 10%..2% useful frames on a Nexus One.
	cmp, err := hide.CompareEnergy(tr, hide.NexusOne)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\naverage power of broadcast handling (%s):\n", hide.NexusOne.Name)
	fmt.Printf("  receive-all : %6.1f mW\n", cmp.ReceiveAll.AvgPowerMW())
	fmt.Printf("  client-side : %6.1f mW (driver wakelock %v)\n",
		cmp.ClientSide.AvgPowerMW(), cmp.ClientSide.DriverWakelock)
	for i, h := range cmp.HIDE {
		fmt.Printf("  HIDE:%-3g%%   : %6.1f mW (saves %.0f%% vs receive-all)\n",
			hide.UsefulFractions[i]*100, h.AvgPowerMW(), 100*cmp.Savings(i))
	}

	// 3. How much longer does the phone sleep?
	row, err := hide.SuspendFractions(tr, hide.NexusOne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfraction of time in suspend mode:\n")
	fmt.Printf("  receive-all %.0f%%  client-side %.0f%%  HIDE:10%% %.0f%%  HIDE:2%% %.0f%%\n",
		row.ReceiveAll*100, row.ClientSide*100, row.HIDE10*100, row.HIDE2*100)
}
