package station

import (
	"testing"
	"time"

	"repro/internal/ap"
	"repro/internal/dot11"
	"repro/internal/medium"
	"repro/internal/sim"
)

// cohortRig assembles an engine, medium, HIDE AP, and one associated,
// joined cohort of count members, run long enough to complete the port
// handshake and suspend.
func cohortRig(t *testing.T, count int) (*sim.Engine, *CohortStation) {
	t.Helper()
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 7)
	a := ap.New(eng, med, ap.Config{BSSID: bssid, SSID: "t", HIDE: true, DTIMPeriod: 1})
	c, err := NewCohort(eng, med, CohortConfig{
		Config: Config{
			Addr:  dot11.MACAddr{2, 0, 0, 0, 1, 0},
			BSSID: bssid,
			Mode:  HIDE,
		},
		Count: count,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.OpenPort(5353)
	first, err := a.AssociateCohort(c.BaseAddr(), count, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.JoinBlock(first); err != nil {
		t.Fatal(err)
	}
	a.Start()
	eng.RunUntil(2 * time.Second)
	if !c.Suspended() {
		t.Fatal("cohort not suspended after handshake")
	}
	return eng, c
}

// TestAllocBudgetCohortAsleepReceive pins the cohort hot path at scale:
// a group data frame arriving while the members sleep (the overwhelming
// majority of deliveries in a million-client run) must cost ZERO
// allocations — the radio drops it in PS mode without touching the
// heap, so folding 10⁶ members into one node keeps event cost flat.
func TestAllocBudgetCohortAsleepReceive(t *testing.T) {
	eng, c := cohortRig(t, 64)
	frame := (&dot11.DataFrame{
		Header: dot11.MACHeader{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: dot11.Broadcast, Addr2: bssid, Addr3: bssid,
		},
		Payload: dot11.EncapsulateUDP(dot11.UDPDatagram{DstPort: 9999, Payload: make([]byte, 160)}),
	}).Marshal()
	now := eng.Now()
	for i := 0; i < 8; i++ {
		c.Receive(frame, dot11.Rate11Mbps, now)
	}
	if c.Count() != 64 {
		t.Fatalf("warm-up split the cohort to %d members", c.Count())
	}
	allocs := testing.AllocsPerRun(200, func() {
		c.Receive(frame, dot11.Rate11Mbps, now)
	})
	if allocs != 0 {
		t.Fatalf("asleep group receive: %.1f allocs/op, want 0", allocs)
	}
}

// TestAllocBudgetCohortRoutedReceive covers the same path through the
// medium's routed hand-off (ReceiveAs), which the emulated Medium
// always prefers for block nodes.
func TestAllocBudgetCohortRoutedReceive(t *testing.T) {
	eng, c := cohortRig(t, 64)
	frame := (&dot11.DataFrame{
		Header: dot11.MACHeader{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: dot11.Broadcast, Addr2: bssid, Addr3: bssid,
		},
		Payload: dot11.EncapsulateUDP(dot11.UDPDatagram{DstPort: 9999, Payload: make([]byte, 160)}),
	}).Marshal()
	now := eng.Now()
	allocs := testing.AllocsPerRun(200, func() {
		c.ReceiveAs(dot11.Broadcast, frame, dot11.Rate11Mbps, now)
	})
	if allocs != 0 {
		t.Fatalf("routed asleep receive: %.1f allocs/op, want 0", allocs)
	}
}
