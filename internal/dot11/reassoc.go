package dot11

import "fmt"

// Reassociation management frames (subtypes 0010/0011): a station
// moving between APs of the same ESS re-associates with the new AP,
// naming its current AP so the distribution system can migrate
// station state. HIDE reuses the association-exchange piggyback: the
// reassociation request may carry Open UDP Ports elements so the new
// AP's Client UDP Port Table is seeded before the first suspend even
// on a cold handoff.

// Management subtypes for the reassociation exchange.
const (
	SubtypeReassocRequest  uint8 = 0b0010
	SubtypeReassocResponse uint8 = 0b0011
)

// ReassocRequest is a reassociation request. CurrentAP names the AP
// the station is roaming away from. As with AssocRequest, a non-nil
// Ports marks the station HIDE-capable.
type ReassocRequest struct {
	Header     MACHeader
	Capability uint16
	CurrentAP  MACAddr
	SSID       string
	// Ports is the open UDP port set carried on the roam; nil means the
	// station is a legacy (non-HIDE) client.
	Ports []uint16
	// HIDECapable marks the station as understanding BTIM elements.
	// Set implicitly when Ports is non-nil.
	HIDECapable bool
}

// reassocReqFixedLen is capability (2) + listen interval (2) +
// current AP address (6).
const reassocReqFixedLen = 10

// Marshal encodes the reassociation request.
func (r *ReassocRequest) Marshal() ([]byte, error) {
	hdr := r.Header
	hdr.FC.Type = TypeManagement
	hdr.FC.Subtype = SubtypeReassocRequest
	out := make([]byte, MACHeaderLen+reassocReqFixedLen, MACHeaderLen+reassocReqFixedLen+32)
	hdr.marshalInto(out)
	p := out[MACHeaderLen:]
	putUint16(p, r.Capability)
	copy(p[4:], r.CurrentAP[:])
	var err error
	if out, err = (Element{ID: ElementIDSSID, Body: []byte(r.SSID)}).AppendTo(out); err != nil {
		return nil, err
	}
	if r.HIDECapable || r.Ports != nil {
		ports := r.Ports
		for {
			n := len(ports)
			if n > MaxPortsPerElement {
				n = MaxPortsPerElement
			}
			e, err := OpenUDPPorts{Ports: ports[:n]}.Element()
			if err != nil {
				return nil, err
			}
			if out, err = e.AppendTo(out); err != nil {
				return nil, err
			}
			ports = ports[n:]
			if len(ports) == 0 {
				break
			}
		}
	}
	return out, nil
}

// UnmarshalReassocRequest decodes a reassociation request.
func UnmarshalReassocRequest(raw []byte) (*ReassocRequest, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeManagement || hdr.FC.Subtype != SubtypeReassocRequest {
		return nil, fmt.Errorf("%w: %v/%d, want reassoc request", ErrBadFrameType, hdr.FC.Type, hdr.FC.Subtype)
	}
	if len(raw) < MACHeaderLen+reassocReqFixedLen {
		return nil, fmt.Errorf("%w: %d bytes for reassoc request", ErrShortFrame, len(raw))
	}
	p := raw[MACHeaderLen:]
	r := &ReassocRequest{Header: hdr, Capability: getUint16(p)}
	copy(r.CurrentAP[:], p[4:])
	elems, err := ParseElements(p[reassocReqFixedLen:])
	if err != nil {
		return nil, err
	}
	for _, e := range elems {
		switch e.ID {
		case ElementIDSSID:
			r.SSID = string(e.Body)
		case ElementIDOpenUDPPorts:
			o, err := ParseOpenUDPPorts(e)
			if err != nil {
				return nil, err
			}
			r.HIDECapable = true
			if r.Ports == nil {
				r.Ports = []uint16{}
			}
			r.Ports = append(r.Ports, o.Ports...)
		}
	}
	return r, nil
}

// ReassocResponse is a reassociation response. It carries the same
// fixed body as AssocResponse; only the subtype differs.
type ReassocResponse struct {
	Header     MACHeader
	Capability uint16
	Status     uint16
	AID        AID
	// HIDESupported tells the station the AP will send BTIM elements.
	HIDESupported bool
}

// Marshal encodes the reassociation response.
func (r *ReassocResponse) Marshal() ([]byte, error) {
	hdr := r.Header
	hdr.FC.Type = TypeManagement
	hdr.FC.Subtype = SubtypeReassocResponse
	out := make([]byte, MACHeaderLen+assocRespFixedLen, MACHeaderLen+assocRespFixedLen+4)
	hdr.marshalInto(out)
	p := out[MACHeaderLen:]
	putUint16(p, r.Capability)
	putUint16(p[2:], r.Status)
	putUint16(p[4:], uint16(r.AID)|0xc000)
	if r.HIDESupported {
		var err error
		if out, err = (Element{ID: hideSupportElementID}).AppendTo(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnmarshalReassocResponse decodes a reassociation response.
func UnmarshalReassocResponse(raw []byte) (*ReassocResponse, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeManagement || hdr.FC.Subtype != SubtypeReassocResponse {
		return nil, fmt.Errorf("%w: %v/%d, want reassoc response", ErrBadFrameType, hdr.FC.Type, hdr.FC.Subtype)
	}
	if len(raw) < MACHeaderLen+assocRespFixedLen {
		return nil, fmt.Errorf("%w: %d bytes for reassoc response", ErrShortFrame, len(raw))
	}
	p := raw[MACHeaderLen:]
	r := &ReassocResponse{
		Header:     hdr,
		Capability: getUint16(p),
		Status:     getUint16(p[2:]),
		AID:        AID(getUint16(p[4:]) &^ 0xc000),
	}
	elems, err := ParseElements(p[assocRespFixedLen:])
	if err != nil {
		return nil, err
	}
	if _, ok := FindElement(elems, hideSupportElementID); ok {
		r.HIDESupported = true
	}
	return r, nil
}
