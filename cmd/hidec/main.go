// Command hidec is the HIDE client daemon: it connects to a hided AP
// over UDP "virtual air", associates with real 802.11 frames, reports
// its open UDP ports (from -ports, or this machine's actual
// /proc/net/udp with -procnet), and then lives the HIDE lifecycle —
// suspending, watching its BTIM bit, and waking only for broadcast
// traffic some local port wants.
//
// The client is supervised: a watchdog detects a dead or restarted AP
// from beacon silence and, with -reconnect (the default),
// re-associates with exponential backoff — the association request
// carries the port list, so the AP's Client UDP Port Table is rebuilt
// in one exchange. With -reconnect=false a lost AP ends the process
// with exit code 3, so a supervisor can restart-on-disconnect without
// also restarting on misconfiguration.
//
//	hidec -connect 127.0.0.1:5600 -ports 5353,17500 -mode hide
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/daemon"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/procnet"
	"repro/internal/station"
)

func main() {
	connect := flag.String("connect", "127.0.0.1:5600", "hided address")
	ssid := flag.String("ssid", "hide-net", "network name to associate with")
	mode := flag.String("mode", "hide", "client mode: hide, legacy, or clientside")
	portsArg := flag.String("ports", "5353", "comma-separated open UDP ports")
	useProcnet := flag.Bool("procnet", false, "report this machine's real wildcard UDP ports instead of -ports")
	mac := flag.Int("mac", 1, "low byte of this client's MAC address (distinguish multiple clients)")
	device := flag.String("device", "nexusone", "device profile for the energy report")
	statsEvery := flag.Duration("stats", 10*time.Second, "status print interval")
	runFor := flag.Duration("for", 0, "exit with an energy report after this long (0 = run forever)")
	reconnect := flag.Bool("reconnect", true, "re-associate with backoff when the AP disappears (false: exit 3 instead)")
	seed := flag.Uint64("seed", 0, "backoff-jitter seed (folded with the MAC)")
	flag.Parse()

	var m station.Mode
	switch strings.ToLower(*mode) {
	case "hide":
		m = station.HIDE
	case "legacy":
		m = station.Legacy
	case "clientside":
		m = station.ClientSide
	default:
		cli.Usagef("hidec", "unknown mode %q", *mode)
	}
	dev, err := hide.ProfileByName(map[string]string{
		"nexusone": "Nexus One", "galaxys4": "Galaxy S4",
	}[strings.ToLower(*device)])
	if err != nil {
		cli.Usagef("hidec", "%v", err)
	}

	var ports []uint16
	if *useProcnet {
		ports, err = procnet.LocalOpenPorts()
		if err != nil {
			cli.Exit("hidec", err)
		}
	} else {
		for _, s := range strings.Split(*portsArg, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				continue
			}
			p, err := strconv.ParseUint(s, 10, 16)
			if err != nil {
				cli.Usagef("hidec", "bad port %q", s)
			}
			ports = append(ports, uint16(p))
		}
	}

	c, err := daemon.NewClient(daemon.ClientConfig{
		Connect:   *connect,
		SSID:      *ssid,
		Addr:      dot11.MACAddr{0x02, 0x1d, 0xe0, 0xfe, 0x00, byte(*mac)},
		Mode:      m,
		Ports:     ports,
		Reconnect: *reconnect,
		Seed:      *seed,
	})
	if err != nil {
		cli.Exit("hidec", err)
	}
	st := c.Station()
	fmt.Printf("hidec: %s client -> %s, ports %v\n", m, *connect, ports)

	// Periodic status on the engine clock (the engine is not running
	// yet, so scheduling here is race-free).
	var tick func(now time.Duration)
	tick = func(now time.Duration) {
		s := st.Stats()
		awake := "awake"
		if st.Suspended() {
			awake = "suspended"
		}
		cs := c.Stats()
		fmt.Printf("[%8s] %s aid=%d %s beacons=%d group=%d useful=%d wakeups=%d portmsgs=%d reconnects=%d\n",
			now.Truncate(time.Second), c.State(), st.AID(), awake, s.BeaconsHeard,
			s.GroupReceived, s.GroupUseful, s.Wakeups, s.PortMsgsSent, cs.Reconnects)
		c.Engine().MustScheduleAfter(*statsEvery, tick)
	}
	c.Engine().MustScheduleAfter(*statsEvery, tick)

	ctx, stop := cli.SignalContext()
	defer stop()
	var cancel context.CancelFunc
	if *runFor > 0 {
		ctx, cancel = context.WithTimeout(ctx, *runFor)
		defer cancel()
	}

	err = c.Run(ctx)
	if *runFor > 0 && errors.Is(err, context.DeadlineExceeded) {
		// Final energy report over the run.
		b, cerr := energy.Compute(st.Arrivals(), energy.Config{
			Device:   dev,
			Duration: *runFor,
		})
		if cerr != nil {
			cli.Exit("hidec", fmt.Errorf("energy: %v", cerr))
		}
		fmt.Printf("\nenergy over %v on %s: %.1f mW avg, %.1f%% suspended (%d wakeups)\n",
			*runFor, dev.Name, b.AvgPowerW()*1000, b.SuspendFraction*100, st.Stats().Wakeups)
		return
	}
	if errors.Is(err, daemon.ErrConnectionLost) {
		cli.ExitCode("hidec", cli.CodeConnLost, err)
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		cli.Exit("hidec", err)
	}
}
