package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolBalance protects the alloc budgets of the pooled hot paths: the
// suite-scratch sync.Pool, the sim engine's generation-stamped item
// free list, and the medium's pendingTx recycling only stay 0-alloc if
// every acquisition is balanced — either released back or handed off
// to the structure that will release it later. An early return that
// drops an acquired item on the floor is invisible to tests (the code
// still works, the pool just quietly refills from the heap) until an
// AllocsPerRun budget starts flaking. The analyzer follows every path
// from an acquisition to the function's normal exits and requires the
// value to be released (Put/release, directly or deferred) or to
// escape into a call, field, container, return, or channel send.
var PoolBalance = &Analyzer{
	Name: "poolbalance",
	Doc: "a value acquired from a sync.Pool (Get) or from a free list " +
		"(unexported alloc* methods in internal/sim and internal/medium) must, on " +
		"every normal exit path, be released (Put/release, possibly deferred) or " +
		"handed off (call argument, field/container store, return, channel send); " +
		"dropping one on an early return silently re-heapifies the hot path",
	Run: runPoolBalance,
}

// poolFreeListScope lists the packages whose unexported alloc* methods
// are free-list acquisitions by convention.
var poolFreeListScope = map[string]bool{
	"internal/sim":    true,
	"internal/medium": true,
}

func runPoolBalance(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPoolBalance(p, fn.Body)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkPoolBalance(p, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// acquisition is one tracked pool/free-list acquisition site.
type acquisition struct {
	stmt ast.Stmt     // the acquiring assignment
	obj  types.Object // the local the value is bound to
	call *ast.CallExpr
}

// checkPoolBalance finds acquisitions bound to a single local and
// verifies release-or-escape on all normal exit paths.
func checkPoolBalance(p *Pass, body *ast.BlockStmt) {
	var acqs []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call := acquisitionCall(p, as.Rhs[0])
		if call == nil {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || id.Name == "_" {
			// Acquired into a field or discarded: handed off by definition
			// (or a bug no local analysis can track) — out of scope.
			return true
		}
		obj := p.TypesInfo.Defs[id]
		if obj == nil {
			obj = p.TypesInfo.Uses[id]
		}
		if obj != nil {
			acqs = append(acqs, acquisition{stmt: as, obj: obj, call: call})
		}
		return true
	})
	if len(acqs) == 0 {
		return
	}
	g := buildCFG(body, p.TypesInfo)
	for _, a := range acqs {
		if deferHandles(p, g, a.obj) {
			continue
		}
		blk, idx := g.findStmt(a.stmt)
		if blk == nil {
			continue
		}
		balanced := g.allPathsHit(blk, idx+1, func(s ast.Stmt) bool {
			return stmtReleasesOrEscapes(p, s, a.obj)
		})
		if !balanced {
			p.Reportf(a.call.Pos(), "acquired from the pool but neither released (Put/release) nor handed off on some path to return; an unbalanced acquisition re-heapifies the hot path — release on every exit (defer works) or hand the value off")
		}
	}
}

// acquisitionCall unwraps rhs (through parens and type assertions) to
// a tracked acquisition call: (*sync.Pool).Get, or an unexported
// niladic alloc* method in the free-list packages.
func acquisitionCall(p *Pass, rhs ast.Expr) *ast.CallExpr {
	e := ast.Unparen(rhs)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if sel.Sel.Name == "Get" && isSyncPool(p.TypesInfo.TypeOf(sel.X)) {
		return call
	}
	if poolFreeListScope[p.RelPath()] && strings.HasPrefix(sel.Sel.Name, "alloc") && len(call.Args) == 0 {
		if fn, ok := p.TypesInfo.Uses[sel.Sel].(*types.Func); ok && !fn.Exported() {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return call
			}
		}
	}
	return nil
}

// isSyncPool reports whether t is sync.Pool or *sync.Pool.
func isSyncPool(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "Pool"
}

// deferHandles reports whether any defer in the body releases or
// hands off obj — defers run on every exit, so one covers all paths.
func deferHandles(p *Pass, g *funcCFG, obj types.Object) bool {
	for _, d := range g.defers {
		if callUsesObj(p.TypesInfo, d.Call, obj) {
			return true
		}
		// defer func() { pool.Put(v) }() — the closure body references v.
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok && exprUsesObj(p.TypesInfo, lit.Body, obj) {
			return true
		}
	}
	return false
}

// stmtReleasesOrEscapes reports whether the statement ends this
// function's custody of obj: passes it to any call (Put, release, a
// scheduler — the callee or the structure now owns it), stores it into
// a field, container, or non-local variable, returns it, or sends it
// on a channel. A plain local-to-local copy does NOT count (custody
// stays here under another name; conservative for the common patterns).
func stmtReleasesOrEscapes(p *Pass, s ast.Stmt, obj types.Object) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if exprUsesObj(p.TypesInfo, r, obj) {
				return true
			}
		}
		return false
	case *ast.SendStmt:
		return exprUsesObj(p.TypesInfo, s.Value, obj)
	case *ast.AssignStmt:
		for i, l := range s.Lhs {
			// Storing obj (or a composite mentioning it) anywhere but a
			// plain local: field, index, dereference, package var.
			if i < len(s.Rhs) && exprUsesObj(p.TypesInfo, s.Rhs[i], obj) && !isLocalIdent(p.TypesInfo, l) {
				return true
			}
		}
		// Calls on the RHS may consume obj: append(free, it), Put-like.
		for _, r := range s.Rhs {
			if callInExprUsesObj(p.TypesInfo, r, obj) {
				return true
			}
		}
		return false
	default:
		for _, n := range evaluatedNodes(s) {
			if callInExprUsesObj(p.TypesInfo, n, obj) {
				return true
			}
		}
		return false
	}
}

// callInExprUsesObj reports whether any call under e takes obj (or an
// expression mentioning it) as an argument.
func callInExprUsesObj(info *types.Info, e ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && callUsesObj(info, call, obj) {
			found = true
		}
		return !found
	})
	return found
}

// callUsesObj reports whether obj appears in the call's arguments.
func callUsesObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, a := range call.Args {
		if exprUsesObj(info, a, obj) {
			return true
		}
	}
	return false
}

// exprUsesObj reports whether obj is referenced anywhere under n.
func exprUsesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isLocalIdent reports whether l is a plain local variable (not blank,
// not a field/index/deref target, not a package-level variable).
func isLocalIdent(info *types.Info, l ast.Expr) bool {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		return true // discarding a mention is not a store anywhere
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// Package-level variables escape; locals (including params) do not.
	return v.Pkg() == nil || v.Parent() == nil || v.Parent() != v.Pkg().Scope()
}
