package dot11

import (
	"bytes"
	"testing"
)

// Fuzz targets: every decoder must return an error or a value — never
// panic — on arbitrary input, and successfully-decoded frames must
// re-encode to an equivalent wire image where the format is canonical.

func seedCorpus(f *testing.F) {
	f.Helper()
	var bm VirtualBitmap
	bm.Set(3)
	btim := BTIMFromBitmap(&bm)
	b := &Beacon{
		Header:         MACHeader{Addr1: Broadcast, Addr2: apAddr, Addr3: apAddr},
		BeaconInterval: 100,
		SSID:           "fuzz",
		TIM:            &TIM{DTIMPeriod: 3, PartialBitmap: []byte{0x05}},
		BTIM:           &btim,
	}
	if raw, err := b.Marshal(); err == nil {
		f.Add(raw)
	}
	m := &UDPPortMessage{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}, Ports: []uint16{53, 5353}}
	if raw, err := m.Marshal(); err == nil {
		f.Add(raw)
	}
	req := &AssocRequest{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}, SSID: "x", HIDECapable: true}
	if raw, err := req.Marshal(); err == nil {
		f.Add(raw)
	}
	resp := &AssocResponse{Header: MACHeader{Addr1: c1Addr, Addr2: apAddr, Addr3: apAddr}, AID: 7}
	if raw, err := resp.Marshal(); err == nil {
		f.Add(raw)
	}
	rreq := &ReassocRequest{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}, CurrentAP: apAddr, SSID: "x", Ports: []uint16{5353}}
	if raw, err := rreq.Marshal(); err == nil {
		f.Add(raw)
	}
	rresp := &ReassocResponse{Header: MACHeader{Addr1: c1Addr, Addr2: apAddr, Addr3: apAddr}, AID: 9, HIDESupported: true}
	if raw, err := rresp.Marshal(); err == nil {
		f.Add(raw)
	}
	dis := &Disassoc{Header: MACHeader{Addr1: apAddr, Addr2: c1Addr, Addr3: apAddr}, Reason: ReasonStationLeft}
	f.Add(dis.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x00})
	f.Add(bytes.Repeat([]byte{0xff}, 64))
}

func FuzzUnmarshalBeacon(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		b, err := UnmarshalBeacon(raw)
		if err != nil {
			return
		}
		// Re-encode: must succeed and decode to the same fields.
		out, err := b.Marshal()
		if err != nil {
			t.Fatalf("re-marshal of decoded beacon failed: %v", err)
		}
		b2, err := UnmarshalBeacon(out)
		if err != nil {
			t.Fatalf("decode of re-marshalled beacon failed: %v", err)
		}
		if b2.SSID != b.SSID || b2.BeaconInterval != b.BeaconInterval {
			t.Fatal("beacon fields drifted across re-encode")
		}
	})
}

func FuzzUnmarshalUDPPortMessage(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := UnmarshalUDPPortMessage(raw)
		if err != nil {
			return
		}
		out, err := m.Marshal()
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		m2, err := UnmarshalUDPPortMessage(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(m2.Ports) != len(m.Ports) {
			t.Fatal("port count drifted")
		}
	})
}

func FuzzUnmarshalAssocFrames(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Neither decoder may panic; Classify must not disagree with a
		// successful decode.
		if r, err := UnmarshalAssocRequest(raw); err == nil {
			if Classify(raw) != KindAssocRequest {
				t.Fatal("Classify disagrees with UnmarshalAssocRequest")
			}
			if _, err := r.Marshal(); err != nil {
				t.Fatalf("re-marshal failed: %v", err)
			}
		}
		if r, err := UnmarshalAssocResponse(raw); err == nil {
			if Classify(raw) != KindAssocResponse {
				t.Fatal("Classify disagrees with UnmarshalAssocResponse")
			}
			if _, err := r.Marshal(); err != nil {
				t.Fatalf("re-marshal failed: %v", err)
			}
		}
	})
}

// FuzzUnmarshalRoamFrames drives the roaming-path decoders
// (reassociation request/response, disassociation): none may panic,
// Classify must agree with any successful decode, and decoded frames
// must re-encode round-trip clean.
func FuzzUnmarshalRoamFrames(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if r, err := UnmarshalReassocRequest(raw); err == nil {
			if Classify(raw) != KindReassocRequest {
				t.Fatal("Classify disagrees with UnmarshalReassocRequest")
			}
			out, err := r.Marshal()
			if err != nil {
				t.Fatalf("re-marshal failed: %v", err)
			}
			r2, err := UnmarshalReassocRequest(out)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if r2.CurrentAP != r.CurrentAP || r2.SSID != r.SSID || len(r2.Ports) != len(r.Ports) {
				t.Fatal("reassoc request fields drifted across re-encode")
			}
		}
		if r, err := UnmarshalReassocResponse(raw); err == nil {
			if Classify(raw) != KindReassocResponse {
				t.Fatal("Classify disagrees with UnmarshalReassocResponse")
			}
			out, err := r.Marshal()
			if err != nil {
				t.Fatalf("re-marshal failed: %v", err)
			}
			r2, err := UnmarshalReassocResponse(out)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if r2.AID != r.AID || r2.Status != r.Status || r2.HIDESupported != r.HIDESupported {
				t.Fatal("reassoc response fields drifted across re-encode")
			}
		}
		if d, err := UnmarshalDisassoc(raw); err == nil {
			if Classify(raw) != KindDisassoc {
				t.Fatal("Classify disagrees with UnmarshalDisassoc")
			}
			d2, err := UnmarshalDisassoc(d.Marshal())
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if d2.Reason != d.Reason {
				t.Fatal("disassoc reason drifted across re-encode")
			}
		}
	})
}

func FuzzParseElements(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 'x'})
	f.Add([]byte{5, 4, 0, 3, 0, 1})
	f.Add(bytes.Repeat([]byte{200, 2, 1, 2}, 10))
	f.Fuzz(func(t *testing.T, raw []byte) {
		elems, err := ParseElements(raw)
		if err != nil {
			return
		}
		// Total re-encoded length must equal the input length.
		total := 0
		for _, e := range elems {
			total += e.WireLen()
		}
		if total != len(raw) {
			t.Fatalf("element lengths %d != input %d", total, len(raw))
		}
	})
}

func FuzzParseUDP(f *testing.F) {
	f.Add(EncapsulateUDP(UDPDatagram{SrcPort: 1, DstPort: 2, Payload: []byte("hi")}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xaa}, 40))
	f.Fuzz(func(t *testing.T, raw []byte) {
		d, err := ParseUDP(raw)
		if err != nil {
			return
		}
		// A decoded datagram must re-encapsulate to a parseable body
		// with the same ports and payload.
		out := EncapsulateUDP(d)
		d2, err := ParseUDP(out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if d2.DstPort != d.DstPort || d2.SrcPort != d.SrcPort || !bytes.Equal(d2.Payload, d.Payload) {
			t.Fatal("datagram drifted across re-encapsulation")
		}
	})
}

// FuzzBTIMElement drives the BTIM (element ID 201) codec with
// arbitrary element bodies: ParseBTIM must never panic, and any body it
// accepts must re-encode to the identical wire image and preserve
// per-AID bit lookups.
func FuzzBTIMElement(f *testing.F) {
	var bm VirtualBitmap
	bm.Set(3)
	bm.Set(200)
	if e, err := BTIMFromBitmap(&bm).Element(); err == nil {
		f.Add(e.Body)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0})
	f.Add([]byte{2, 0xff, 0x01})
	f.Add([]byte{1, 0xff}) // odd offset: must be rejected
	f.Add(bytes.Repeat([]byte{0xff}, 252))
	f.Fuzz(func(t *testing.T, body []byte) {
		b, err := ParseBTIM(Element{ID: ElementIDBTIM, Body: body})
		if err != nil {
			return
		}
		e, err := b.Element()
		if err != nil {
			t.Fatalf("re-encode of accepted BTIM failed: %v", err)
		}
		if !bytes.Equal(e.Body, body) {
			t.Fatalf("BTIM wire image drifted: %x -> %x", body, e.Body)
		}
		b2, err := ParseBTIM(e)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		for aid := AID(1); aid <= MaxAID; aid++ {
			if b.UsefulBroadcastBuffered(aid) != b2.UsefulBroadcastBuffered(aid) {
				t.Fatalf("AID %d lookup drifted across round-trip", aid)
			}
		}
	})
}

// FuzzOpenUDPPortsElement drives the Open UDP Ports (element ID 200)
// codec: ParseOpenUDPPorts must never panic, any accepted body must
// round-trip exactly when it fits in one element, and oversize port
// lists must be refused by the encoder.
func FuzzOpenUDPPortsElement(f *testing.F) {
	if e, err := (OpenUDPPorts{Ports: []uint16{53, 5353, 1900}}).Element(); err == nil {
		f.Add(e.Body)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 53})
	f.Add([]byte{0xff}) // odd length: must be rejected
	f.Add(bytes.Repeat([]byte{0x14, 0xeb}, MaxPortsPerElement))
	f.Add(bytes.Repeat([]byte{0, 1}, MaxPortsPerElement+1))
	f.Fuzz(func(t *testing.T, body []byte) {
		o, err := ParseOpenUDPPorts(Element{ID: ElementIDOpenUDPPorts, Body: body})
		if err != nil {
			return
		}
		if len(o.Ports)*2 != len(body) {
			t.Fatalf("decoded %d ports from %d bytes", len(o.Ports), len(body))
		}
		e, err := o.Element()
		if len(o.Ports) > MaxPortsPerElement {
			if err == nil {
				t.Fatalf("encoder accepted %d ports (max %d)", len(o.Ports), MaxPortsPerElement)
			}
			return
		}
		if err != nil {
			t.Fatalf("re-encode of accepted port list failed: %v", err)
		}
		if !bytes.Equal(e.Body, body) {
			t.Fatalf("port list wire image drifted: %x -> %x", body, e.Body)
		}
	})
}

func FuzzClassifyNeverPanics(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		_ = Classify(raw).String()
	})
}
