package control

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/sim"
)

// TestPlanSpecRoundTrip marshals specs to JSON and back and checks
// the decoded spec still builds an equivalent plan.
func TestPlanSpecRoundTrip(t *testing.T) {
	specs := []PlanSpec{
		{Kind: "loss", P: 0.25},
		{Kind: "corrupt", P: 1},
		{Kind: "duplicate", P: 0},
		{Kind: "gilbert-elliott", PGoodBad: 0.1, PBadGood: 0.4, LossGood: 0.01, LossBad: 0.9},
		{Kind: "only", Frames: []string{"beacon", "data"}, Inner: &PlanSpec{Kind: "loss", P: 0.5}},
		{Kind: "to", To: "02:1d:e0:aa:00:10", Inner: &PlanSpec{Kind: "duplicate", P: 0.3}},
		{Kind: "window", FromMS: 100, UntilMS: 400, Inner: &PlanSpec{Kind: "loss", P: 1}},
		{Kind: "silence", To: "02:1d:e0:aa:00:10", FromMS: 250},
		{Kind: "compose", Plans: []PlanSpec{
			{Kind: "loss", P: 0.1},
			{Kind: "only", Frames: []string{"ack"}, Inner: &PlanSpec{Kind: "corrupt", P: 0.2}},
		}},
	}
	for _, spec := range specs {
		t.Run(spec.Kind, func(t *testing.T) {
			data, err := json.Marshal(&spec)
			if err != nil {
				t.Fatal(err)
			}
			var back PlanSpec
			if err := decodeJSON(data, &back); err != nil {
				t.Fatalf("decode of own marshal failed: %v\n%s", err, data)
			}
			if !reflect.DeepEqual(spec, back) {
				t.Fatalf("round trip drifted:\n in: %+v\nout: %+v", spec, back)
			}
			p1, err := spec.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			p2, err := back.Build()
			if err != nil {
				t.Fatalf("Build after round trip: %v", err)
			}
			// Equivalence check: same verdicts for the same deliveries
			// from identically seeded RNGs.
			r1, r2 := sim.NewRNG(99), sim.NewRNG(99)
			d := fault.Delivery{Kind: dot11.KindData, At: 200 * time.Millisecond,
				Rcv: dot11.MACAddr{0x02, 0x1d, 0xe0, 0xaa, 0x00, 0x10}}
			for i := 0; i < 64; i++ {
				v1, v2 := p1.Deliver(d, r1), p2.Deliver(d, r2)
				if v1 != v2 {
					t.Fatalf("delivery %d: verdicts diverged: %+v vs %+v", i, v1, v2)
				}
			}
		})
	}
}

// TestPlanSpecRejectsMalformed enumerates the validation paths.
func TestPlanSpecRejectsMalformed(t *testing.T) {
	bad := []PlanSpec{
		{},
		{Kind: "loess"},
		{Kind: "loss", P: -0.1},
		{Kind: "loss", P: 1.5},
		{Kind: "gilbert-elliott", PGoodBad: 2},
		{Kind: "only", Inner: &PlanSpec{Kind: "loss", P: 0.5}},                    // no frames
		{Kind: "only", Frames: []string{"beacon"}},                                // no inner
		{Kind: "only", Frames: []string{"beacn"}, Inner: &PlanSpec{Kind: "loss"}}, // bad kind name
		{Kind: "to", To: "nonsense", Inner: &PlanSpec{Kind: "loss"}},
		{Kind: "to", To: "02:1d:e0:aa:00", Inner: &PlanSpec{Kind: "loss"}}, // 5 octets
		{Kind: "window", FromMS: 400, UntilMS: 100, Inner: &PlanSpec{Kind: "loss"}},
		{Kind: "window", FromMS: -1, UntilMS: 100, Inner: &PlanSpec{Kind: "loss"}},
		{Kind: "window"}, // no inner
		{Kind: "silence", To: "zz:zz:zz:zz:zz:zz"},
		{Kind: "silence", To: "02:1d:e0:aa:00:10", FromMS: -5},
		{Kind: "compose"},
		{Kind: "compose", Plans: []PlanSpec{{Kind: "junk"}}},
	}
	for i, spec := range bad {
		if _, err := spec.Build(); err == nil {
			t.Errorf("bad spec %d (%q) accepted", i, spec.Kind)
		}
	}
}

// TestPlanSpecDepthLimit nests past maxPlanDepth and expects a clean
// error, not a stack overflow.
func TestPlanSpecDepthLimit(t *testing.T) {
	spec := &PlanSpec{Kind: "loss", P: 0.5}
	for i := 0; i < maxPlanDepth+4; i++ {
		spec = &PlanSpec{Kind: "window", FromMS: 0, UntilMS: 1000, Inner: spec}
	}
	if _, err := spec.Build(); err == nil {
		t.Fatal("over-deep plan accepted")
	}
}

// TestFaultRequestValidate covers the clear/plan request shapes.
func TestFaultRequestValidate(t *testing.T) {
	if p, err := (&FaultRequest{Clear: true}).Validate(); err != nil || p != nil {
		t.Fatalf("clear request: plan=%v err=%v", p, err)
	}
	if _, err := (&FaultRequest{}).Validate(); err == nil {
		t.Fatal("empty request accepted")
	}
	if _, err := (&FaultRequest{Clear: true, Plan: &PlanSpec{Kind: "loss"}}).Validate(); err == nil {
		t.Fatal("clear request with plan accepted")
	}
	p, err := (&FaultRequest{Seed: 7, Plan: &PlanSpec{Kind: "loss", P: 0.5}}).Validate()
	if err != nil || p == nil {
		t.Fatalf("valid request rejected: plan=%v err=%v", p, err)
	}
}

// TestParseMAC covers the accessory parser.
func TestParseMAC(t *testing.T) {
	mac, err := ParseMAC("02:1d:E0:aa:00:10")
	if err != nil {
		t.Fatal(err)
	}
	want := dot11.MACAddr{0x02, 0x1d, 0xe0, 0xaa, 0x00, 0x10}
	if mac != want {
		t.Fatalf("ParseMAC = %v, want %v", mac, want)
	}
	for _, bad := range []string{"", ":::::", "02:1d:e0:aa:00", "02:1d:e0:aa:00:10:20", "2:1d:e0:aa:00:10", "0g:00:00:00:00:00"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) accepted", bad)
		}
	}
	// String() of a parsed MAC parses back to the same address.
	back, err := ParseMAC(want.String())
	if err != nil || back != want {
		t.Fatalf("String round trip: %v, %v", back, err)
	}
}

// TestFrameKindNamesRoundTrip keeps the JSON names aligned with
// dot11.FrameKind.String across future frame additions.
func TestFrameKindNamesRoundTrip(t *testing.T) {
	for k := dot11.KindBeacon; k <= dot11.KindReassocResponse; k++ {
		got, err := frameKind(k.String())
		if err != nil || got != k {
			t.Errorf("frameKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := frameKind("unknown"); err == nil {
		t.Error("frameKind accepted \"unknown\"")
	}
}
