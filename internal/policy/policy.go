// Package policy implements the broadcast traffic-management solutions
// the paper compares (Section VI-A1):
//
//   - ReceiveAll: the stock smartphone behaviour — the AP forwards every
//     broadcast frame, the client receives each one and acquires a
//     one-second WiFi wakelock for it.
//   - ClientSide: the INFOCOM'15 driver filter [6] at its lower bound —
//     the client still receives every frame, but useless frames are
//     dropped in the driver and the system re-suspends immediately
//     (zero wakelock), paying extra state transfers instead.
//   - HIDE: the paper's AP-side filter — useless frames never reach the
//     client; only useful frames are received and processed, at the cost
//     of the protocol overhead (UDP Port Messages + BTIM bytes).
//   - Combined: the paper's future-work direction (§VIII) — HIDE's
//     AP-side filtering plus the client-side driver filter as a second
//     line of defence against stale port tables; frames that slip
//     through AP filtering but are in fact useless get a zero wakelock.
//
// A policy turns (trace, usefulness vector) into the received-frame
// sequence the energy model consumes, and declares whether the HIDE
// protocol overhead applies.
package policy

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/trace"
)

// Kind enumerates the built-in policies.
type Kind int

// The compared solutions.
const (
	ReceiveAll Kind = iota
	ClientSide
	HIDE
	Combined
)

// Kinds lists the built-in policies in the paper's presentation order.
var Kinds = []Kind{ReceiveAll, ClientSide, HIDE, Combined}

// String returns the paper's name for the policy.
func (k Kind) String() string {
	switch k {
	case ReceiveAll:
		return "receive-all"
	case ClientSide:
		return "client-side"
	case HIDE:
		return "HIDE"
	case Combined:
		return "HIDE+client-side"
	default:
		return fmt.Sprintf("policy(%d)", int(k))
	}
}

// HasOverhead reports whether the policy incurs the HIDE protocol
// overhead of Eqs. 15-19.
func (k Kind) HasOverhead() bool { return k == HIDE || k == Combined }

// Policy converts a tagged trace into the energy model's input.
type Policy interface {
	// Kind identifies the policy.
	Kind() Kind
	// Apply returns the frames the client's radio receives, with their
	// wakelock durations, given the trace and per-frame usefulness.
	// len(useful) must equal len(tr.Frames).
	Apply(tr *trace.Trace, useful []bool) ([]energy.Arrival, error)
}

// New returns the built-in policy of the given kind. Combined uses a
// zero staleness fraction; use NewCombined to model stale port tables.
func New(k Kind) (Policy, error) {
	switch k {
	case ReceiveAll:
		return receiveAll{}, nil
	case ClientSide:
		return ClientSidePolicy{DriverWakelock: DefaultDriverWakelock}, nil
	case HIDE:
		return hidePolicy{}, nil
	case Combined:
		return CombinedPolicy{}, nil
	default:
		return nil, fmt.Errorf("policy: unknown kind %d", int(k))
	}
}

// checkLen validates the usefulness vector length.
func checkLen(tr *trace.Trace, useful []bool) error {
	if len(useful) != len(tr.Frames) {
		return fmt.Errorf("policy: usefulness vector length %d != trace frames %d", len(useful), len(tr.Frames))
	}
	return nil
}

// convert maps a trace frame to a model arrival with the given wakelock.
func convert(f trace.Frame, wakelock timeDuration) energy.Arrival {
	return energy.Arrival{
		At: f.At, Length: f.Length, Rate: f.Rate,
		MoreData: f.MoreData, Wakelock: wakelock,
	}
}
