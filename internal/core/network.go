package core

import (
	"fmt"
	"time"

	"repro/internal/ap"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/medium"
	"repro/internal/sim"
	"repro/internal/station"
	"repro/internal/trace"
)

// Network assembles the full protocol simulation: one AP and a set of
// stations on an emulated channel, with a broadcast trace replayed
// through the AP's group-frame queue. It cross-validates the analytic
// pipeline: the stations exchange real marshalled frames, and their
// recorded arrivals feed the same Section IV energy model.
type Network struct {
	Engine  *sim.Engine
	Medium  *medium.Medium
	AP      *ap.AP
	BSSID   dot11.MACAddr
	SSID    string
	entries []netEntry
	cohorts []*station.CohortStation
	monitor *Monitor

	seed          uint64
	harden        bool
	portRefresh   time.Duration // station-side TTL refresh cadence when hardened
	refreshJitter float64       // per-station refresh desynchronization factor
	portCoalesce  time.Duration // station-side port-message batching window
	used          int           // station MAC addresses consumed (cohort members included)
	aidsUsed      int           // AIDs the attached stations will consume once associated
}

// netEntry pairs a station with its configuration.
type netEntry struct {
	st   *station.Station
	addr dot11.MACAddr
	mode station.Mode
}

// NetworkConfig configures NewNetwork.
type NetworkConfig struct {
	// SSID names the network (default "hide-sim").
	SSID string
	// BeaconInterval and DTIMPeriod follow ap.Config defaults.
	BeaconInterval time.Duration
	DTIMPeriod     int
	// HIDE enables the AP's HIDE extensions.
	HIDE bool
	// FilterUnicast enables the AP-side unicast filtering extension
	// (paper §I): unicast UDP frames to a HIDE client's closed ports
	// are dropped at the AP.
	FilterUnicast bool
	// Loss is the medium's independent per-delivery loss probability.
	Loss float64
	// Fault installs a composable fault plan on the medium, consulted
	// once per delivery (after the Loss knob, when both are set). Nil
	// leaves the channel pristine — byte-identical to fault-free
	// builds.
	Fault fault.Plan
	// Harden enables the protocol hardening the fault subsystem
	// motivates: the AP expires Client UDP Port Table entries after a
	// TTL of 8 DTIM periods, stations refresh their entries every 3
	// DTIM periods and arm the missed-beacon fail-safe. Off, the
	// protocol behaves exactly as the paper describes (and as the
	// golden figures record).
	Harden bool
	// RefreshJitter desynchronizes the hardened port-refresh cadence:
	// each station's PortRefresh interval is stretched by a
	// deterministic per-station factor drawn uniformly from
	// [1, 1+RefreshJitter]. All stations join at t=0 and share the
	// same refresh period, so without jitter every refresh round lands
	// in the same beacon interval — the N≳500 congestion collapse the
	// million-client experiments record, where refresh traffic alone
	// saturates the channel. Values around 1.0 (a full period of
	// spread) break the phase lock. Zero keeps the synchronized
	// cadence and is byte-identical to builds without the knob.
	// Ignored unless Harden is set (legacy stations never refresh).
	RefreshJitter float64
	// PortCoalesce batches each station's port registrations and
	// refreshes (station.Config.PortCoalesce): a pre-suspend UDP Port
	// Message is skipped while the last acknowledged sync still matches
	// the station's open ports and is younger than this window, so the
	// many suspend cycles of a busy trace share one registration frame
	// instead of re-sending an identical list each time. Zero keeps the
	// paper's send-every-suspend behaviour (byte-identical to builds
	// without the knob); values at or below one refresh cadence compose
	// safely with the hardened TTL. The million-client congestion study
	// (DefaultPortCoalesceStudy) measures it against the N≳500 port-
	// message collapse.
	PortCoalesce time.Duration
	// Seed drives the medium's fault RNG and the stations' jitter RNGs.
	Seed uint64
	// BSSID overrides the AP's MAC address (zero selects the default).
	// ESS shards use it to give every AP a distinct address while
	// shard 0 keeps the single-AP default, so a K=1 ESS is
	// byte-identical to a plain Network.
	BSSID dot11.MACAddr
}

// NewNetwork builds an engine, medium, and AP.
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if cfg.SSID == "" {
		cfg.SSID = "hide-sim"
	}
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), cfg.Seed+1)
	if cfg.Loss > 0 {
		if err := med.SetLoss(cfg.Loss); err != nil {
			return nil, err
		}
	}
	if cfg.Fault != nil {
		plan := cfg.Fault
		if cfg.Loss > 0 {
			plan = fault.Compose(fault.Loss{P: cfg.Loss}, plan)
		}
		med.SetFaultPlan(plan)
	}

	// Hardening cadences derive from the DTIM span: stations refresh
	// their port-table entries every 3 DTIM periods and the AP expires
	// entries not refreshed within 8 — room for two whole refresh
	// rounds (each with its own retry budget) to be lost before a live
	// client's entry can age out.
	interval := cfg.BeaconInterval
	if interval <= 0 {
		interval = dot11.DefaultBeaconInterval
	}
	dtimPeriod := cfg.DTIMPeriod
	if dtimPeriod <= 0 {
		dtimPeriod = 3
	}
	dtimSpan := interval * time.Duration(dtimPeriod)
	var portTTL time.Duration
	if cfg.Harden {
		portTTL = 8 * dtimSpan
	}

	bssid := cfg.BSSID
	if bssid == (dot11.MACAddr{}) {
		bssid = dot11.MACAddr{0x02, 0x1d, 0xe0, 0x00, 0x00, 0x01}
	}
	a := ap.New(eng, med, ap.Config{
		BSSID:          bssid,
		SSID:           cfg.SSID,
		BeaconInterval: cfg.BeaconInterval,
		DTIMPeriod:     cfg.DTIMPeriod,
		HIDE:           cfg.HIDE,
		FilterUnicast:  cfg.FilterUnicast,
		PortTTL:        portTTL,
	})
	return &Network{
		Engine: eng, Medium: med, AP: a, BSSID: bssid, SSID: cfg.SSID,
		seed: cfg.Seed, harden: cfg.Harden, portRefresh: 3 * dtimSpan,
		refreshJitter: cfg.RefreshJitter, portCoalesce: cfg.PortCoalesce,
	}, nil
}

// AddStation creates and attaches a station with the given open ports
// and starts the frame-level association exchange: the AssocRequest —
// carrying the Open UDP Ports element for HIDE stations — goes over
// the medium and the AP assigns the AID in its response. Association
// completes within the first milliseconds of the simulation run.
func (n *Network) AddStation(mode station.Mode, openPorts []uint16) (*station.Station, error) {
	return n.AddStationListenInterval(mode, openPorts, 1)
}

// Replay schedules every frame of the trace as a group datagram
// arriving at the AP from the distribution system, starts the AP's
// beacon loop, and runs the simulation for the trace duration plus
// one beacon interval of drain time.
func (n *Network) Replay(tr *trace.Trace) error {
	if err := n.ScheduleReplay(tr); err != nil {
		return err
	}
	n.Engine.RunUntil(tr.Duration + dot11.DefaultBeaconInterval)
	return nil
}

// ScheduleReplay is Replay without the run: it validates the trace,
// starts the beacon loop, and schedules every frame, leaving the
// engine untouched so the caller drives it — the ESS advances all
// shard engines in lockstep windows instead of one RunUntil. A plain
// Replay is ScheduleReplay followed by RunUntil(Duration + one beacon
// interval), and the ESS's final window lands on exactly that
// deadline, which is what makes a roam-free K=1 ESS byte-identical.
func (n *Network) ScheduleReplay(tr *trace.Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	n.AP.Start()
	// One bound event for all frames, with per-frame state passed as a
	// pointer into the (immutable, shared) trace: no closure and no
	// payload buffer per scheduled frame. EncapsulateUDP copies the
	// payload into the frame body, so the all-zero padding buffer can be
	// shared by every datagram.
	enqueue := func(now time.Duration, arg any) {
		f := arg.(*trace.Frame)
		payload := f.Length - dot11.MACHeaderLen - dot11.UDPEncapsLen
		if payload < 0 {
			payload = 0
		}
		n.AP.EnqueueGroup(dot11.UDPDatagram{
			DstIP:   [4]byte{255, 255, 255, 255},
			DstPort: f.DstPort,
			Payload: zeroPad(payload),
		}, f.Rate)
	}
	for i := range tr.Frames {
		if _, err := n.Engine.ScheduleArgAt(tr.Frames[i].At, enqueue, &tr.Frames[i]); err != nil {
			return fmt.Errorf("core: scheduling trace frame: %w", err)
		}
	}
	return nil
}

// zeroPayloadBuf backs replayed datagram padding; see Replay.
var zeroPayloadBuf [4096]byte

// zeroPad returns an all-zero payload of n bytes, shared when it fits
// the static buffer.
func zeroPad(n int) []byte {
	if n <= len(zeroPayloadBuf) {
		return zeroPayloadBuf[:n]
	}
	return make([]byte, n)
}

// Stations returns the attached stations in attachment order.
func (n *Network) Stations() []*station.Station {
	out := make([]*station.Station, len(n.entries))
	for i, e := range n.entries {
		out[i] = e.st
	}
	return out
}

// StationEnergy evaluates the Section IV model over a station's
// recorded arrivals, honouring the station's listen interval.
func (n *Network) StationEnergy(st *station.Station, dev energy.Profile, duration time.Duration, withOverhead bool) (energy.Breakdown, error) {
	cfg := energy.Config{
		Device:               dev,
		Duration:             duration,
		BeaconListenInterval: st.ListenInterval(),
	}
	if withOverhead {
		cfg.Overhead = energy.DefaultOverhead()
	}
	return energy.Compute(st.Arrivals(), cfg)
}

// stationBase anchors the station MAC address space: station (or
// cohort member) number idx — 1-based — lives at AddrAdd(stationBase,
// idx), which reproduces the historical {0x02,0x1d,0xe0,0x01,hi,lo}
// layout for the first 65535 stations and extends it contiguously
// through the 24-bit block for million-member cohorts.
var stationBase = dot11.MACAddr{0x02, 0x1d, 0xe0, 0x01, 0x00, 0x00}

// stationConfig assembles the station.Config for the idx-th station
// address, applying the network's hardening knobs.
func (n *Network) stationConfig(idx int, mode station.Mode, li int) (station.Config, error) {
	if idx+0x010000 >= dot11.MaxAddrBlock {
		return station.Config{}, fmt.Errorf("core: station address space exhausted")
	}
	scfg := station.Config{
		Addr:           dot11.AddrAdd(stationBase, idx),
		BSSID:          n.BSSID,
		Mode:           mode,
		ListenInterval: li,
		Seed:           n.seed,
		PortCoalesce:   n.portCoalesce,
	}
	//lint:ignore rngdraw harden is fixed per-run config, so the guard is constant for the whole run and every station draws the same count; the jitter RNG is constructed per station, not shared
	if n.harden {
		scfg.PortRefresh = n.portRefresh
		//lint:ignore rngdraw RefreshJitter is fixed per-run config, so the guard is constant for the whole run and every station draws the same count; the stream is station-indexed, not shared
		if n.refreshJitter > 0 {
			// A per-station factor in [1, 1+jitter] drawn from a
			// station-indexed stream: deterministic for a given
			// (Seed, idx) no matter how many stations exist or in
			// what order they attach.
			u := sim.NewRNG(n.seed ^ (0x9e3779b97f4a7c15 * uint64(idx))).Float64()
			scfg.PortRefresh = time.Duration(float64(n.portRefresh) * (1 + n.refreshJitter*u))
		}
		scfg.MissedBeaconFailSafe = true
	}
	return scfg, nil
}

// StationConfigAt exposes the station.Config the network would build
// for station number idx (1-based, the same numbering AddStation
// uses), including the hardening and refresh-jitter knobs. The ESS
// uses it to create stations with globally-unique addresses across
// shards while keeping the exact per-station configuration a plain
// Network would produce — the K=1 byte-identity proof depends on it.
func (n *Network) StationConfigAt(idx int, mode station.Mode, li int) (station.Config, error) {
	return n.stationConfig(idx, mode, li)
}

// AddStationListenInterval is AddStation with an 802.11 listen
// interval: the station's radio wakes only for every li-th beacon.
func (n *Network) AddStationListenInterval(mode station.Mode, openPorts []uint16, li int) (*station.Station, error) {
	if n.aidsUsed+1 > int(dot11.MaxAID) {
		return nil, fmt.Errorf("core: association space exhausted")
	}
	scfg, err := n.stationConfig(n.used+1, mode, li)
	if err != nil {
		return nil, err
	}
	st := station.New(n.Engine, n.Medium, scfg)
	for _, p := range openPorts {
		st.OpenPort(p)
	}
	st.StartAssociation(n.SSID)
	n.used++
	n.aidsUsed++
	n.entries = append(n.entries, netEntry{st: st, addr: scfg.Addr, mode: mode})
	return st, nil
}

// AddStationDirect is AddStationListenInterval minus the frame-level
// association exchange: the AP assigns the AID out of band and the
// station Joins immediately, exactly mirroring how cohorts associate —
// the equivalence suite uses it so both sides of the cohort-vs-
// expanded comparison share the same join path.
func (n *Network) AddStationDirect(mode station.Mode, openPorts []uint16, li int) (*station.Station, error) {
	scfg, err := n.stationConfig(n.used+1, mode, li)
	if err != nil {
		return nil, err
	}
	st := station.New(n.Engine, n.Medium, scfg)
	for _, p := range openPorts {
		st.OpenPort(p)
	}
	aid, err := n.AP.Associate(scfg.Addr, mode == station.HIDE)
	if err != nil {
		return nil, err
	}
	if err := st.Join(aid); err != nil {
		return nil, err
	}
	n.used++
	n.aidsUsed++
	n.entries = append(n.entries, netEntry{st: st, addr: scfg.Addr, mode: mode})
	return st, nil
}

// AddCohort attaches count identical stations as one scheduled entity
// (station.CohortStation) and picks the representation regime
// automatically: while the whole cohort fits the free AID space every
// member is associated individually on a contiguous AID block and the
// cohort is exact — byte-identical frames, bit-identical energy —
// otherwise the cohort aggregates behind a single association
// (ap.AssociateAggregate), the regime the 10⁵–10⁶ client runs use.
func (n *Network) AddCohort(mode station.Mode, openPorts []uint16, count, li int) (*station.CohortStation, error) {
	if count < 1 {
		return nil, fmt.Errorf("core: cohort count %d < 1", count)
	}
	scfg, err := n.stationConfig(n.used+1, mode, li)
	if err != nil {
		return nil, err
	}
	if n.used+count+0x010000 > dot11.MaxAddrBlock {
		return nil, fmt.Errorf("core: cohort of %d exceeds the station address space", count)
	}
	exact := count <= n.AP.FreeAIDs() && n.aidsUsed+count <= int(dot11.MaxAID)
	c, err := station.NewCohort(n.Engine, n.Medium, station.CohortConfig{
		Config:    scfg,
		Count:     count,
		Aggregate: !exact,
	})
	if err != nil {
		return nil, err
	}
	for _, p := range openPorts {
		c.OpenPort(p)
	}
	var first dot11.AID
	if exact {
		first, err = n.AP.AssociateCohort(scfg.Addr, count, mode == station.HIDE)
		n.aidsUsed += count
	} else {
		first, err = n.AP.AssociateAggregate(scfg.Addr, count, mode == station.HIDE)
		n.aidsUsed++
	}
	if err != nil {
		return nil, err
	}
	if err := c.JoinBlock(first); err != nil {
		return nil, err
	}
	n.used += count
	n.cohorts = append(n.cohorts, c)
	return c, nil
}

// Cohorts returns the attached cohorts in attachment order (splits
// performed by the medium or by CohortStation.Split are not re-listed;
// query each cohort's Count for its current width).
func (n *Network) Cohorts() []*station.CohortStation {
	return append([]*station.CohortStation(nil), n.cohorts...)
}

// Members returns the number of stations the network models, counting
// every cohort with its multiplicity.
func (n *Network) Members() int {
	m := len(n.entries)
	for _, c := range n.cohorts {
		m += c.Count()
	}
	return m
}

// CohortEnergy evaluates the Section IV model over one cohort member's
// arrivals and returns both the per-member breakdown and the
// cohort-wide aggregate (per-member scaled by the cohort's count).
func (n *Network) CohortEnergy(c *station.CohortStation, dev energy.Profile, duration time.Duration, withOverhead bool) (member, total energy.Breakdown, err error) {
	cfg := energy.Config{
		Device:               dev,
		Duration:             duration,
		BeaconListenInterval: c.ListenInterval(),
	}
	if withOverhead {
		cfg.Overhead = energy.DefaultOverhead()
	}
	member, err = energy.Compute(c.Arrivals(), cfg)
	if err != nil {
		return energy.Breakdown{}, energy.Breakdown{}, err
	}
	return member, member.Scale(c.Count()), nil
}
