package dot11

// VirtualBitmap is a full traffic-indication virtual bitmap: one bit per
// AID, bit k of octet k/8 corresponding to AID k (IEEE 802.11-2012
// §8.4.2.7). Octet 0 bit 0 is the AID-0 position, which the standard TIM
// repurposes as the broadcast/multicast indicator; the HIDE BTIM uses
// per-client bits starting at AID 1.
//
// The zero value is an empty bitmap. The bitmap grows on demand up to
// the 251 octets needed for MaxAID.
type VirtualBitmap struct {
	octets [252]byte // fixed backing; 2008 bits cover AID 0..2007
	hi     int       // index one past the highest non-zero octet
}

// Set sets the bit for aid. Invalid AIDs (> MaxAID) are ignored.
func (v *VirtualBitmap) Set(aid AID) {
	if aid > MaxAID {
		return
	}
	oct := int(aid) / 8
	v.octets[oct] |= 1 << (uint(aid) % 8)
	if oct+1 > v.hi {
		v.hi = oct + 1
	}
}

// Clear clears the bit for aid.
func (v *VirtualBitmap) Clear(aid AID) {
	if aid > MaxAID {
		return
	}
	v.octets[int(aid)/8] &^= 1 << (uint(aid) % 8)
	v.shrink()
}

// Get reports whether the bit for aid is set.
func (v *VirtualBitmap) Get(aid AID) bool {
	if aid > MaxAID {
		return false
	}
	return v.octets[int(aid)/8]&(1<<(uint(aid)%8)) != 0
}

// Reset clears every bit.
func (v *VirtualBitmap) Reset() {
	for i := 0; i < v.hi; i++ {
		v.octets[i] = 0
	}
	v.hi = 0
}

// Any reports whether any bit is set.
func (v *VirtualBitmap) Any() bool { return v.hi > 0 }

// Count returns the number of set bits.
func (v *VirtualBitmap) Count() int {
	n := 0
	for i := 0; i < v.hi; i++ {
		b := v.octets[i]
		for b != 0 {
			b &= b - 1
			n++
		}
	}
	return n
}

// Or sets every bit of v that is set in o (bitwise union). Union is
// order-independent, which is what lets Algorithm 1 fold precomputed
// per-port bitmaps together and still produce bit-identical BTIMs.
func (v *VirtualBitmap) Or(o *VirtualBitmap) {
	for i := 0; i < o.hi; i++ {
		v.octets[i] |= o.octets[i]
	}
	if o.hi > v.hi {
		v.hi = o.hi
	}
}

// Equal reports whether both bitmaps have exactly the same bits set.
func (v *VirtualBitmap) Equal(o *VirtualBitmap) bool {
	if v.hi != o.hi {
		return false
	}
	for i := 0; i < v.hi; i++ {
		if v.octets[i] != o.octets[i] {
			return false
		}
	}
	return true
}

// shrink recomputes hi after a Clear.
func (v *VirtualBitmap) shrink() {
	for v.hi > 0 && v.octets[v.hi-1] == 0 {
		v.hi--
	}
}

// Compress produces the partial virtual bitmap encoding of Figure 5:
// it trims leading all-zero octets (rounded down to an even count, as
// the figure requires N1 to be even) and trailing all-zero octets, and
// returns the byte offset of the first included octet plus the included
// octets. An empty bitmap compresses to offset 0 and a single zero
// octet, mirroring the standard TIM's minimum one-octet bitmap.
func (v *VirtualBitmap) Compress() (offset uint8, partial []byte) {
	if v.hi == 0 {
		return 0, []byte{0}
	}
	lo := 0
	for lo < v.hi && v.octets[lo] == 0 {
		lo++
	}
	lo &^= 1 // N1 must be even (paper Figure 5)
	out := make([]byte, v.hi-lo)
	copy(out, v.octets[lo:v.hi])
	return uint8(lo), out
}

// Decompress reconstructs a full bitmap from a partial virtual bitmap
// and its offset. It returns an error if the encoding would exceed the
// bitmap's capacity.
func Decompress(offset uint8, partial []byte) (*VirtualBitmap, error) {
	var v VirtualBitmap
	if int(offset)+len(partial) > len(v.octets) {
		return nil, ErrBadElement
	}
	copy(v.octets[offset:], partial)
	v.hi = int(offset) + len(partial)
	v.shrink()
	return &v, nil
}
