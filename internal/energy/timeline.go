package energy

import (
	"fmt"
	"time"
)

// StateKind is a host power state in the reconstructed timeline.
type StateKind int

// Host states, in increasing power order.
const (
	// StateSuspended: SOC off, radio still waking for beacons.
	StateSuspended StateKind = iota
	// StateSuspending: the suspend operation is executing (may abort).
	StateSuspending
	// StateResuming: the resume operation is executing.
	StateResuming
	// StateAwake: active or idle under a WiFi wakelock.
	StateAwake
)

// String names the state.
func (k StateKind) String() string {
	switch k {
	case StateSuspended:
		return "suspended"
	case StateSuspending:
		return "suspending"
	case StateResuming:
		return "resuming"
	case StateAwake:
		return "awake"
	default:
		return fmt.Sprintf("state(%d)", int(k))
	}
}

// Interval is one contiguous stretch in a single state.
type Interval struct {
	Kind     StateKind
	From, To time.Duration
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.To - iv.From }

// StateTimeline reconstructs the host's power-state timeline from the
// received-frame sequence, using the same Eqs. 3-5/14 semantics as
// Compute: resume on arrival in suspend, wakelock renewal via running
// maximum expiry, aborted suspends on arrivals during the suspend
// operation. The returned intervals partition [0, cfg.Duration]
// exactly: sorted, contiguous, no gaps.
func StateTimeline(frames []Arrival, cfg Config) ([]Interval, error) {
	cfg = cfg.normalized()
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("energy: non-positive duration %v", cfg.Duration)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].At < frames[i-1].At {
			return nil, fmt.Errorf("energy: frames out of order at index %d", i)
		}
	}
	dev := cfg.Device

	var out []Interval
	add := func(kind StateKind, from, to time.Duration) {
		if from < 0 {
			from = 0
		}
		if to > cfg.Duration {
			to = cfg.Duration
		}
		if to <= from {
			return
		}
		// Merge with the previous interval when the state repeats.
		if n := len(out); n > 0 && out[n-1].Kind == kind && out[n-1].To == from {
			out[n-1].To = to
			return
		}
		out = append(out, Interval{Kind: kind, From: from, To: to})
	}

	var expiry, tr, mark time.Duration
	started := false
	// closeEpisode emits the tail of an awake episode that ended with a
	// completed suspend, covering up to `until`.
	closeEpisode := func(until time.Duration) {
		add(StateAwake, mark, expiry)
		add(StateSuspending, expiry, expiry+dev.Tsp)
		add(StateSuspended, expiry+dev.Tsp, until)
	}

	for _, f := range frames {
		rxEnd := f.endTime()
		if !started || rxEnd >= expiry+dev.Tsp {
			if !started {
				add(StateSuspended, 0, rxEnd)
			} else {
				closeEpisode(rxEnd)
			}
			add(StateResuming, rxEnd, rxEnd+dev.Trm)
			tr = rxEnd + dev.Trm
			mark = tr
			expiry = tr + f.Wakelock
			started = true
			continue
		}
		newTr := maxDur(rxEnd, tr)
		if newTr > expiry {
			// The suspend that began at expiry was aborted at newTr.
			add(StateAwake, mark, expiry)
			add(StateSuspending, expiry, newTr)
			mark = newTr
		}
		tr = newTr
		if e := tr + f.Wakelock; e > expiry {
			expiry = e
		}
	}
	if started {
		closeEpisode(cfg.Duration)
	} else {
		add(StateSuspended, 0, cfg.Duration)
	}

	// The final episode may extend past the window; ensure coverage to
	// the boundary (add clamps internally, so only a shortfall needs
	// patching — the device is still awake at the cut).
	if n := len(out); n > 0 && out[n-1].To < cfg.Duration {
		add(StateAwake, out[n-1].To, cfg.Duration)
	}
	return out, nil
}

// TimeInState sums the time spent in a state.
func TimeInState(ivs []Interval, kind StateKind) time.Duration {
	var total time.Duration
	for _, iv := range ivs {
		if iv.Kind == kind {
			total += iv.Duration()
		}
	}
	return total
}
