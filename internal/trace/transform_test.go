package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/dot11"
)

func smallTrace() *Trace {
	return &Trace{
		Name: "t", Duration: 10 * time.Second,
		Frames: []Frame{
			{At: 1 * time.Second, Length: 100, Rate: dot11.Rate1Mbps, DstPort: 1},
			{At: 3 * time.Second, Length: 100, Rate: dot11.Rate1Mbps, DstPort: 2},
			{At: 5 * time.Second, Length: 100, Rate: dot11.Rate1Mbps, DstPort: 3},
			{At: 9 * time.Second, Length: 100, Rate: dot11.Rate1Mbps, DstPort: 4},
		},
	}
}

func TestTruncate(t *testing.T) {
	tr := smallTrace()
	got := Truncate(tr, 4*time.Second)
	if got.Duration != 4*time.Second || len(got.Frames) != 2 {
		t.Fatalf("Truncate: dur=%v frames=%d", got.Duration, len(got.Frames))
	}
	if len(tr.Frames) != 4 {
		t.Fatal("Truncate mutated its input")
	}
	if got := Truncate(tr, 20*time.Second); got.Duration != 10*time.Second || len(got.Frames) != 4 {
		t.Fatal("Truncate beyond duration should be identity")
	}
	if got := Truncate(tr, 0); len(got.Frames) != 0 {
		t.Fatal("Truncate to zero kept frames")
	}
}

func TestWindow(t *testing.T) {
	tr := smallTrace()
	got, err := Window(tr, 2*time.Second, 6*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != 4*time.Second || len(got.Frames) != 2 {
		t.Fatalf("Window: dur=%v frames=%d", got.Duration, len(got.Frames))
	}
	if got.Frames[0].At != time.Second || got.Frames[0].DstPort != 2 {
		t.Fatalf("Window not rebased: %+v", got.Frames[0])
	}
	if _, err := Window(tr, -1, 5); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := Window(tr, 5*time.Second, time.Second); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestTimeScale(t *testing.T) {
	tr := smallTrace()
	got, err := TimeScale(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != 20*time.Second {
		t.Fatalf("duration = %v", got.Duration)
	}
	if got.Frames[1].At != 6*time.Second {
		t.Fatalf("frame 1 at %v, want 6s", got.Frames[1].At)
	}
	// Density halves under a 2x stretch.
	if math.Abs(got.MeanFPS()-tr.MeanFPS()/2) > 1e-9 {
		t.Fatalf("density: %v vs %v", got.MeanFPS(), tr.MeanFPS())
	}
	if _, err := TimeScale(tr, 0); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestThin(t *testing.T) {
	tr, err := GenerateScenario(WML)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Thin(tr, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(len(got.Frames)) / float64(len(tr.Frames))
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("thinned to %.3f, want ~0.25", frac)
	}
	if got.Duration != tr.Duration {
		t.Fatal("Thin changed duration")
	}
	same, err := Thin(tr, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(same.Frames) != len(tr.Frames) {
		t.Fatal("Thin(1) dropped frames")
	}
	if _, err := Thin(tr, 1.5, 0); err == nil {
		t.Error("keep > 1 accepted")
	}
}

func TestMerge(t *testing.T) {
	a := smallTrace()
	b := smallTrace()
	b.Frames = []Frame{{At: 2 * time.Second, Length: 50, Rate: dot11.Rate1Mbps, DstPort: 9}}
	b.Duration = 15 * time.Second
	got := Merge("merged", a, b)
	if got.Duration != 15*time.Second {
		t.Fatalf("duration = %v", got.Duration)
	}
	if len(got.Frames) != 5 {
		t.Fatalf("frames = %d, want 5", len(got.Frames))
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	// Sorted: frame at 2 s slots between 1 s and 3 s.
	if got.Frames[1].DstPort != 9 {
		t.Fatalf("merge order wrong: %+v", got.Frames[1])
	}
}

func TestRepeat(t *testing.T) {
	tr := smallTrace()
	got, err := Repeat(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.Duration != 30*time.Second || len(got.Frames) != 12 {
		t.Fatalf("Repeat: dur=%v frames=%d", got.Duration, len(got.Frames))
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if got.Frames[4].At != 11*time.Second {
		t.Fatalf("second copy offset wrong: %v", got.Frames[4].At)
	}
	if _, err := Repeat(tr, 0); err == nil {
		t.Error("Repeat(0) accepted")
	}
}

func TestTransformsComposeWithEvaluation(t *testing.T) {
	// A density sweep built from one trace: scaling time by 0.5 doubles
	// density and must increase receive-all-style load (more frames in
	// the same window once truncated back).
	tr, err := GenerateScenario(CSDept)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := TimeScale(tr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if dense.MeanFPS() <= tr.MeanFPS()*1.5 {
		t.Fatalf("densified trace fps %v not ~2x of %v", dense.MeanFPS(), tr.MeanFPS())
	}
	if err := dense.Validate(); err != nil {
		t.Fatal(err)
	}
}
