package airlink

import (
	"net"
	"testing"
	"time"

	"repro/internal/dot11"
	"repro/internal/fault"
	"repro/internal/netmedium"
	"repro/internal/sim"
)

// TestHubFaultPlanTotalLoss installs a 100% loss plan and checks that
// nothing leaves the hub while the plan is live, then clears it and
// checks traffic flows again.
func TestHubFaultPlanTotalLoss(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(pc, make(chan sim.Event, 16))
	go hub.Serve()
	defer hub.Close()

	peer := dialAndRegister(t, hub)
	defer peer.Close()

	hub.SetFaultPlan(fault.Loss{P: 1}, 42)
	if !hub.FaultActive() {
		t.Fatal("FaultActive false after install")
	}
	beacon := broadcastBeacon(t)
	hub.Transmit(bssid, beacon, dot11.Rate1Mbps)
	st := hub.Stats()
	if st.FramesOut != 0 || st.FaultDropped != 1 {
		t.Fatalf("total loss: FramesOut=%d FaultDropped=%d", st.FramesOut, st.FaultDropped)
	}

	hub.SetFaultPlan(nil, 0)
	if hub.FaultActive() {
		t.Fatal("FaultActive true after clear")
	}
	hub.Transmit(bssid, beacon, dot11.Rate1Mbps)
	if got := hub.Stats().FramesOut; got != 1 {
		t.Fatalf("after clear FramesOut = %d, want 1", got)
	}
}

// TestHubFaultPlanDuplicate checks that a duplicate verdict sends the
// datagram twice and is counted.
func TestHubFaultPlanDuplicate(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(pc, make(chan sim.Event, 16))
	go hub.Serve()
	defer hub.Close()

	peer := dialAndRegister(t, hub)
	defer peer.Close()

	hub.SetFaultPlan(fault.Duplicate{P: 1}, 7)
	hub.Transmit(bssid, broadcastBeacon(t), dot11.Rate1Mbps)
	st := hub.Stats()
	if st.FramesOut != 2 || st.FaultDuplicated != 1 {
		t.Fatalf("duplicate: FramesOut=%d FaultDuplicated=%d", st.FramesOut, st.FaultDuplicated)
	}
}

// TestHubFaultPlanCorruptIsolatesPeers corrupts a private copy per
// delivery: with two peers and a corrupt-everything plan, both peers
// still receive a datagram (corruption flips payload bytes, it must
// not drop or cross-contaminate).
func TestHubFaultPlanCorrupt(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(pc, make(chan sim.Event, 16))
	go hub.Serve()
	defer hub.Close()

	peer := dialAndRegister(t, hub)
	defer peer.Close()

	hub.SetFaultPlan(fault.Corrupt{P: 1}, 3)
	raw := broadcastBeacon(t)
	hub.Transmit(bssid, raw, dot11.Rate1Mbps)
	st := hub.Stats()
	if st.FramesOut != 1 || st.FaultCorrupted != 1 {
		t.Fatalf("corrupt: FramesOut=%d FaultCorrupted=%d", st.FramesOut, st.FaultCorrupted)
	}
	// The corrupted datagram reaches the peer and differs from the
	// original frame in exactly one byte.
	buf := make([]byte, maxDatagram)
	peer.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := peer.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := netmedium.Unmarshal(buf[:n])
	if err != nil {
		t.Fatalf("corrupted datagram unparseable at the transport layer: %v", err)
	}
	diff := 0
	for i := range raw {
		if i < len(m.Payload) && m.Payload[i] != raw[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupted payload differs in %d bytes, want 1", diff)
	}
}

// TestHubLivenessEviction registers two peers; one answers pings, the
// other goes silent. After enough sweeps only the silent one is
// evicted and reported.
func TestHubLivenessEviction(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(pc, make(chan sim.Event, 16))
	go hub.Serve()
	defer hub.Close()

	evicted := make(chan dot11.MACAddr, 4)
	hub.SetLiveness(Liveness{MaxMissedPings: 2}, func(mac dot11.MACAddr) {
		evicted <- mac
	})

	liveMAC := dot11.MACAddr{0x02, 0, 0, 0, 0, 0x01}
	deadMAC := dot11.MACAddr{0x02, 0, 0, 0, 0, 0x02}

	// The live peer is a full Link: its Serve loop auto-pongs pings.
	liveInject := make(chan sim.Event, 16)
	live, err := Dial(pc.LocalAddr().String(), liveInject)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	go live.Serve()
	go func() { // drain injected frames; no engine in this test
		for range liveInject {
		}
	}()
	registerPeer(t, live.conn, liveMAC)

	// The dead peer registers then never reads or answers again.
	dead, err := net.Dial("udp", pc.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	registerPeer(t, dead, deadMAC)

	waitPeers(t, hub, 2)

	deadline := time.Now().Add(10 * time.Second)
	for {
		hub.PingPeers()
		select {
		case mac := <-evicted:
			if mac != deadMAC {
				t.Fatalf("evicted %v, want %v", mac, deadMAC)
			}
			if n := hub.Stats().Peers; n != 1 {
				t.Fatalf("peers after eviction = %d, want 1", n)
			}
			if hub.Stats().Evictions != 1 {
				t.Fatalf("Evictions = %d, want 1", hub.Stats().Evictions)
			}
			if live.Stats().PingsAnswered == 0 {
				t.Fatal("live peer never answered a ping")
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no eviction after deadline: %+v", hub.Stats())
		}
		// Real sweeps run on the engine clock; here a short wall sleep
		// gives the live peer's pong time to land between sweeps.
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHubDropPeer forgets a peer immediately.
func TestHubDropPeer(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(pc, make(chan sim.Event, 16))
	go hub.Serve()
	defer hub.Close()

	peer := dialAndRegister(t, hub)
	defer peer.Close()
	hub.DropPeer(dot11.MACAddr{0x02, 0, 0, 0, 0, 0x01})
	if n := hub.Stats().Peers; n != 0 {
		t.Fatalf("peers after DropPeer = %d, want 0", n)
	}
	hub.Transmit(bssid, broadcastBeacon(t), dot11.Rate1Mbps)
	if got := hub.Stats().FramesOut; got != 0 {
		t.Fatalf("dropped peer still receives frames: FramesOut=%d", got)
	}
}

// TestLinkReadIdleCallback checks the read-idle deadline fires the
// callback instead of hanging or killing the serve loop.
func TestLinkReadIdleCallback(t *testing.T) {
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hub := NewHub(pc, make(chan sim.Event, 16))
	go hub.Serve()
	defer hub.Close()

	inject := make(chan sim.Event, 16)
	link, err := Dial(pc.LocalAddr().String(), inject)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	idle := make(chan struct{}, 8)
	link.SetIOTimeouts(time.Second, 20*time.Millisecond, func() {
		select {
		case idle <- struct{}{}:
		default:
		}
	})
	go link.Serve()

	select {
	case <-idle:
	case <-time.After(5 * time.Second):
		t.Fatal("idle callback never fired on a silent link")
	}
	if link.Stats().IdlePeriods == 0 {
		t.Fatal("IdlePeriods not counted")
	}
	// The serve loop must still be reading: a frame sent after idle
	// periods is delivered.
	registerPeer(t, link.conn, dot11.MACAddr{0x02, 0, 0, 0, 0, 0x09})
	waitPeers(t, hub, 1)
	hub.Transmit(bssid, broadcastBeacon(t), dot11.Rate1Mbps)
	deadline := time.Now().Add(5 * time.Second)
	for link.Stats().FramesIn == 0 {
		if time.Now().After(deadline) {
			t.Fatal("frame not received after idle periods")
		}
		time.Sleep(time.Millisecond)
	}
}

// registerPeer sends one frame from mac so the hub learns the peer's
// transport address.
func registerPeer(t *testing.T, conn net.Conn, mac dot11.MACAddr) {
	t.Helper()
	req := &dot11.AssocRequest{Header: dot11.MACHeader{Addr1: bssid, Addr2: mac, Addr3: bssid}}
	raw, err := req.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := netmedium.Message{Type: netmedium.MsgFrame, Rate: dot11.Rate1Mbps, Payload: raw}.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
}

// dialAndRegister connects a bare UDP socket and registers it as peer
// 02:00:00:00:00:01, waiting until the hub has learned it.
func dialAndRegister(t *testing.T, hub *Hub) net.Conn {
	t.Helper()
	conn, err := net.Dial("udp", hub.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	registerPeer(t, conn, dot11.MACAddr{0x02, 0, 0, 0, 0, 0x01})
	waitPeers(t, hub, 1)
	return conn
}

// waitPeers blocks until the hub has learned n peers.
func waitPeers(t *testing.T, hub *Hub, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for hub.Stats().Peers < n {
		if time.Now().After(deadline) {
			t.Fatalf("hub never learned %d peers: %+v", n, hub.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// broadcastBeacon builds a minimal broadcast frame for fan-out tests.
func broadcastBeacon(t *testing.T) []byte {
	t.Helper()
	b := &dot11.Beacon{Header: dot11.MACHeader{Addr1: dot11.Broadcast, Addr2: bssid, Addr3: bssid}}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}
