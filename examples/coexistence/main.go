// Coexistence: the paper's backward-compatibility story (§III-D),
// demonstrated live in both directions. HIDE extends beacons with a
// BTIM element that legacy clients simply skip, and HIDE clients fall
// back to the standard broadcast bit under a legacy AP — so mixed
// deployments just work:
//
//  1. A HIDE AP serves one HIDE phone and one legacy phone: the legacy
//     phone keeps receiving everything (standard TIM behaviour) while
//     the HIDE phone sleeps through useless traffic.
//  2. A legacy AP serves a HIDE phone: no BTIM arrives, the phone
//     follows the standard broadcast bit and behaves exactly like a
//     legacy client.
//
// Run with:
//
//	go run ./examples/coexistence
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/station"
)

func main() {
	cfg := hide.ScenarioConfig(hide.Starbucks)
	tr, err := hide.GenerateTraceConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	openPorts := []uint16{5353}

	fmt.Println("scenario 1: HIDE AP, mixed clients")
	runMixed(tr, true, openPorts)
	fmt.Println("\nscenario 2: legacy AP, HIDE client (fallback)")
	runMixed(tr, false, openPorts)
}

// runMixed replays the trace through an AP (HIDE or legacy) serving
// one HIDE and one legacy station, and prints what each received.
func runMixed(tr *hide.Trace, apHIDE bool, openPorts []uint16) {
	net, err := hide.NewNetwork(hide.NetworkConfig{SSID: "mixed", HIDE: apHIDE})
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		name string
		st   *station.Station
	}
	var rows []row
	hideSt, err := net.AddStation(hide.StationHIDE, openPorts)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"HIDE phone", hideSt})
	legacySt, err := net.AddStation(hide.StationLegacy, openPorts)
	if err != nil {
		log.Fatal(err)
	}
	rows = append(rows, row{"legacy phone", legacySt})

	if err := net.Replay(tr); err != nil {
		log.Fatal(err)
	}

	for _, r := range rows {
		s := r.st.Stats()
		b, err := net.StationEnergy(r.st, hide.NexusOne, tr.Duration, false)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s received %4d of %4d broadcast frames, woke %4d times, %5.1f mW, suspended %4.1f%%\n",
			r.name, s.GroupReceived, len(tr.Frames), s.Wakeups,
			b.AvgPowerW()*1000, b.SuspendFraction*100)
	}
	if apHIDE {
		fmt.Printf("  (the AP sent %d BTIM bytes; the legacy phone skipped them all)\n",
			net.AP.Stats().BTIMBytesSent)
	} else {
		fmt.Println("  (no BTIM on air; the HIDE phone obeyed the standard broadcast bit)")
	}
}
