package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/station"
	"repro/internal/trace"
)

// scaleAssembly is the slice of the assembly API the scaling loops
// need, satisfied by both the serial Network and the windowed-parallel
// WindowedNetwork so one loop body serves both execution modes.
type scaleAssembly interface {
	AddStation(mode station.Mode, openPorts []uint16) (*station.Station, error)
	AddCohort(mode station.Mode, openPorts []uint16, count, li int) (*station.CohortStation, error)
	Replay(tr *trace.Trace) error
}

// newScaleAssembly builds the execution mode opts selects: the legacy
// single-engine Network, or (opts.WindowWorkers ≥ 1) the windowed
// assembly with that concurrency bound. The returned *Network is the
// stats/energy view — the network itself, or the windowed hub.
func newScaleAssembly(cfg NetworkConfig, opts Options) (scaleAssembly, *Network, error) {
	if opts.WindowWorkers > 0 {
		w, err := NewWindowedNetwork(WindowConfig{Network: cfg, Workers: opts.WindowWorkers})
		if err != nil {
			return nil, nil, err
		}
		return w, w.Hub, nil
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		return nil, nil, err
	}
	return n, n, nil
}

// ScalePoint is one population size in the client-scaling experiment —
// a question the paper leaves implicit: how do the BTIM element and
// per-station energy behave as the HIDE population grows? The BTIM's
// partial virtual bitmap covers the AID range in use, so its on-air
// size grows with the population (bounded by the Figure 5 compression)
// while each station's energy stays governed by its own traffic share.
type ScalePoint struct {
	// N is the number of associated HIDE stations.
	N int
	// BTIMBytesPerBeacon is the average BTIM element length on air.
	BTIMBytesPerBeacon float64
	// PortMsgsReceived counts UDP Port Messages the AP processed.
	PortMsgsReceived int
	// MeanStationJ is the mean per-station energy (Section IV model).
	MeanStationJ float64
	// MeanUseful is the mean number of useful frames per station.
	MeanUseful float64
}

// ScaleClients replays the trace against populations of HIDE stations.
// Station i listens on a port drawn round-robin from the trace's port
// set, so usefulness is spread across the population.
func ScaleClients(tr *trace.Trace, dev energy.Profile, sizes []int) ([]ScalePoint, error) {
	return scaleIndividual(NetworkConfig{HIDE: true}, tr, dev, sizes, Options{})
}

// scaleIndividual is the individually-modeled-station scaling path,
// parameterized by the network configuration and the execution mode
// (opts.WindowWorkers).
func scaleIndividual(cfg NetworkConfig, tr *trace.Trace, dev energy.Profile, sizes []int, opts Options) ([]ScalePoint, error) {
	hist := tr.PortHistogram()
	var ports []uint16
	for p := range hist {
		ports = append(ports, p)
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("core: trace has no ports to assign")
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	var out []ScalePoint
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("core: population %d < 1", n)
		}
		asm, net, err := newScaleAssembly(cfg, opts)
		if err != nil {
			return nil, err
		}
		sts := make([]*station.Station, 0, n)
		for i := 0; i < n; i++ {
			st, err := asm.AddStation(station.HIDE, []uint16{ports[i%len(ports)]})
			if err != nil {
				return nil, err
			}
			sts = append(sts, st)
		}
		if err := asm.Replay(tr); err != nil {
			return nil, err
		}

		pt := ScalePoint{N: n, PortMsgsReceived: net.AP.Stats().PortMsgsReceived}
		if beacons := net.AP.Stats().BeaconsSent; beacons > 0 {
			pt.BTIMBytesPerBeacon = float64(net.AP.Stats().BTIMBytesSent) / float64(beacons)
		}
		var sumJ, sumUseful float64
		for _, st := range sts {
			b, err := net.StationEnergy(st, dev, tr.Duration, true)
			if err != nil {
				return nil, err
			}
			sumJ += b.TotalJ()
			sumUseful += float64(st.Stats().GroupUseful)
		}
		pt.MeanStationJ = sumJ / float64(n)
		pt.MeanUseful = sumUseful / float64(n)
		out = append(out, pt)
	}
	return out, nil
}

// ScaleClientsOptions is ScaleClients with an Options knob: when
// opts.Cohort > 1 each port class is modeled as cohort stations of at
// most opts.Cohort members instead of individual stations, which lifts
// the reachable population from the AID-space ceiling (2007) to 10⁵–10⁶
// clients. Class sizes match ScaleClients' round-robin assignment
// (port i serves ⌈n/len(ports)⌉ or ⌊n/len(ports)⌋ members); per-station
// energy comes from one member per cohort scaled by the cohort width.
func ScaleClientsOptions(tr *trace.Trace, dev energy.Profile, sizes []int, opts Options) ([]ScalePoint, error) {
	return ScaleClientsNetwork(NetworkConfig{HIDE: true}, tr, dev, sizes, opts)
}

// ScaleClientsNetwork is ScaleClientsOptions with an explicit network
// configuration, for scaling studies that need protocol knobs beyond
// the default BSS — hardened fail-safes, refresh jitter, custom DTIM
// periods. cfg.HIDE is forced on: the experiment measures the HIDE
// control plane.
func ScaleClientsNetwork(cfg NetworkConfig, tr *trace.Trace, dev energy.Profile, sizes []int, opts Options) ([]ScalePoint, error) {
	cfg.HIDE = true
	if opts.Cohort <= 1 {
		return scaleIndividual(cfg, tr, dev, sizes, opts)
	}
	hist := tr.PortHistogram()
	var ports []uint16
	for p := range hist {
		ports = append(ports, p)
	}
	if len(ports) == 0 {
		return nil, fmt.Errorf("core: trace has no ports to assign")
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	var out []ScalePoint
	for _, n := range sizes {
		if n < 1 {
			return nil, fmt.Errorf("core: population %d < 1", n)
		}
		asm, net, err := newScaleAssembly(cfg, opts)
		if err != nil {
			return nil, err
		}
		var cohorts []*station.CohortStation
		for i := range ports {
			size := n / len(ports)
			if i < n%len(ports) {
				size++
			}
			for off := 0; off < size; off += opts.Cohort {
				c, err := asm.AddCohort(station.HIDE, []uint16{ports[i]}, min(opts.Cohort, size-off), 1)
				if err != nil {
					return nil, err
				}
				cohorts = append(cohorts, c)
			}
		}
		if err := asm.Replay(tr); err != nil {
			return nil, err
		}

		pt := ScalePoint{N: n, PortMsgsReceived: net.AP.Stats().PortMsgsReceived}
		if beacons := net.AP.Stats().BeaconsSent; beacons > 0 {
			pt.BTIMBytesPerBeacon = float64(net.AP.Stats().BTIMBytesSent) / float64(beacons)
		}
		var sumJ, sumUseful float64
		for _, c := range cohorts {
			_, total, err := net.CohortEnergy(c, dev, tr.Duration, true)
			if err != nil {
				return nil, err
			}
			sumJ += total.TotalJ()
			sumUseful += float64(c.MemberStats().GroupUseful) * float64(c.Count())
		}
		pt.MeanStationJ = sumJ / float64(n)
		pt.MeanUseful = sumUseful / float64(n)
		out = append(out, pt)
	}
	return out, nil
}

// defaultScaleTrace builds a short dense trace for scaling runs.
func defaultScaleTrace() (*trace.Trace, error) {
	cfg := trace.ScenarioConfig(trace.WRL)
	cfg.Duration = 2 * time.Minute
	return trace.Generate(cfg)
}

// DefaultScaleClients runs the scaling experiment on a standard short
// trace with populations 1, 5, 15, 40.
func DefaultScaleClients(dev energy.Profile) ([]ScalePoint, error) {
	tr, err := defaultScaleTrace()
	if err != nil {
		return nil, err
	}
	return ScaleClients(tr, dev, []int{1, 5, 15, 40})
}

// DefaultScaleCohorts runs the cohort-backed scaling experiment on the
// same standard trace at populations at and far past the 802.11
// AID-space ceiling of 2007 associated stations. Each port class folds
// into one CohortStation, so the protocol simulation replays the trace
// against 10⁵–10⁶ modeled clients in milliseconds. Within the AID
// space cohorts are exact per the equivalence suite in internal/check;
// past it they run in the aggregate what-if regime (DESIGN.md §9).
func DefaultScaleCohorts(dev energy.Profile) ([]ScalePoint, error) {
	tr, err := defaultScaleTrace()
	if err != nil {
		return nil, err
	}
	return ScaleClientsOptions(tr, dev, []int{2007, 100_000, 1_000_000}, Options{Cohort: 1 << 30})
}

// RefreshJitterPoint is one cell of the hardened-refresh congestion
// study: the scaling metrics for one jitter setting.
type RefreshJitterPoint struct {
	// Jitter is the NetworkConfig.RefreshJitter fraction.
	Jitter float64
	ScalePoint
}

// DefaultRefreshJitterStudy measures the large-population
// port-message congestion collapse and its mitigation. With hardening
// on, every client re-sends its UDP Port Message on the same fixed
// TTL-refresh cadence; in populations of N≳500 individually-modeled
// stations the refreshes phase-lock into periodic uplink storms whose
// ACK-timeout retries amplify the load further, and past ~700 the
// wasted airtime starts displacing useful downlink deliveries.
// RefreshJitter draws each station a deterministic per-station factor
// stretching its cadence across [interval, interval·(1+jitter)],
// breaking the phase lock. The study sweeps jitter at the onset
// (N=500) and inside the collapse (N=700); jitter well past 1 starts
// trading refresh storms for TTL-expiry filtering gaps, so the sweep
// stops there.
func DefaultRefreshJitterStudy(dev energy.Profile) ([]RefreshJitterPoint, error) {
	tr, err := defaultScaleTrace()
	if err != nil {
		return nil, err
	}
	var out []RefreshJitterPoint
	for _, n := range []int{500, 700} {
		for _, j := range []float64{0, 0.5, 1.0} {
			pts, err := ScaleClientsNetwork(
				NetworkConfig{HIDE: true, Harden: true, RefreshJitter: j},
				tr, dev, []int{n}, Options{})
			if err != nil {
				return nil, err
			}
			out = append(out, RefreshJitterPoint{Jitter: j, ScalePoint: pts[0]})
		}
	}
	return out, nil
}

// PortCoalescePoint is one cell of the port-message batching study:
// the scaling metrics for one NetworkConfig.PortCoalesce window.
type PortCoalescePoint struct {
	// Coalesce is the batching window (0 = legacy, one frame per
	// suspend attempt).
	Coalesce time.Duration
	ScalePoint
}

// DefaultPortCoalesceStudy measures UDP Port Message batching against
// the same N=500 hardened population where DefaultRefreshJitterStudy
// observes the onset of the refresh-storm collapse. Jitter attacks the
// storms' phase alignment; PortCoalesce attacks their volume from the
// other end: a station about to suspend whose open-port set still
// matches its last acknowledged sync — and whose sync is younger than
// the coalesce window — skips the redundant registration outright, so
// bursts of suspend attempts inside one window collapse into a single
// Port Message frame. The sweep takes one DTIM span (the tightest
// window that can span two suspend attempts) and the hardened refresh
// cadence of three spans (the largest window that never starves a TTL
// refresh); past that the knob would merely re-create SyncOnlyOnChange
// and its known fail-safe gap (DESIGN.md §7).
func DefaultPortCoalesceStudy(dev energy.Profile) ([]PortCoalescePoint, error) {
	tr, err := defaultScaleTrace()
	if err != nil {
		return nil, err
	}
	dtimSpan := 3 * dot11.DefaultBeaconInterval // the default DTIM period
	var out []PortCoalescePoint
	for _, c := range []time.Duration{0, dtimSpan, 3 * dtimSpan} {
		pts, err := ScaleClientsNetwork(
			NetworkConfig{HIDE: true, Harden: true, PortCoalesce: c},
			tr, dev, []int{500}, Options{})
		if err != nil {
			return nil, err
		}
		out = append(out, PortCoalescePoint{Coalesce: c, ScalePoint: pts[0]})
	}
	return out, nil
}
