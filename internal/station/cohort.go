// Cohort stations fold N identical clients into one scheduled entity.
//
// The fold is exact, not an approximation: members share the same
// mode, open-port set, listen interval, and join instant, so every
// member's protocol state advances identically — the BTIM/TIM bit for
// member k is set exactly when member 0's is, the arrival log (data
// frames only) is identical per member, and the Section IV energy
// model therefore prices every member bit-identically. One template
// Station carries the shared state; transmissions fan out per member
// (patching only the transmitter address), so the frame stream on the
// medium is byte-identical to N individually-modeled stations. When
// members diverge — a fault plan hitting a subset — the cohort splits
// lazily at the divergence boundary (see DESIGN §9).
package station

import (
	"fmt"
	"time"

	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/medium"
	"repro/internal/sim"
)

// CohortConfig configures a cohort: the embedded Config describes the
// first member (the template); the other members' MAC addresses follow
// consecutively (dot11.AddrAdd) and their AIDs are expected to form a
// contiguous block (ap.AssociateCohort).
type CohortConfig struct {
	Config
	// Count is the number of members the cohort stands for.
	Count int
	// Aggregate selects the beyond-AID-space regime: the cohort
	// transmits one representative frame instead of fanning a copy per
	// member, and energy aggregates by Breakdown.Scale instead of
	// per-member byte-identity. Required when Count exceeds the AID
	// space (dot11.MaxAID); the million-client scale runs use it.
	Aggregate bool
}

// CohortStats counts cohort-specific bookkeeping: unicast copies
// addressed to members past the template. Those copies mirror the
// template's own (the AP answers each fanned port message with its own
// ACK), so they are counted rather than re-processed.
type CohortStats struct {
	// MemberACKs counts ACK frames addressed to members 1..Count-1.
	MemberACKs int
	// MemberUnicast counts any other unicast frame addressed to members
	// 1..Count-1 — per-member unicast data is outside the
	// identical-member regime and is dropped here.
	MemberUnicast int
}

// CohortStation models Count identical stations as one medium node and
// one event-loop participant. Create with NewCohort, associate the
// member block via ap.AssociateCohort (or AssociateAggregate), then
// JoinBlock with the first AID of the block.
type CohortStation struct {
	eng       *sim.Engine
	med       medium.BlockChannel
	tmpl      *Station
	base      dot11.MACAddr
	count     int
	aggregate bool
	txBuf     []byte // reused per-member transmit copy
	cstats    CohortStats

	// Handshake watch (exact regime): the AP ACKs the fanned UDP Port
	// Messages serially, so tail members' ACKs can lag the template's
	// own (always-first) ACK — past a beacon, past the timeout. Each
	// round captures a live shadow of the template holding the unacked
	// members' state; when the acked prefix diverges from the rest (a
	// group frame mid-round, or the ACK deadline), the unacked tail
	// splits off in the shadow's state, exactly as the expanded members
	// would have evolved.
	ackSnap       *Station   // shadow of the round's unacked members (see shadowTemplate)
	acked         int        // member ACKs seen this round (they arrive in member order)
	checkEv       sim.Handle // pending deadline check
	ackDeadlineFn sim.Event  // bound once, like Station's event funcs

	// next links cohorts carved off this one, in member order, so the
	// original handle still reaches every member after splits
	// (Segments walks the chain).
	next *CohortStation
}

var (
	_ medium.Node          = (*CohortStation)(nil)
	_ medium.BlockSplitter = (*CohortStation)(nil)
	_ medium.RoutedNode    = (*CohortStation)(nil)
)

// cohortFan is the channel shim handed to the template Station: its
// Attach is a no-op (the cohort attaches itself as a block) and its
// Transmit fans the template's frame out per member.
type cohortFan struct{ c *CohortStation }

func (f cohortFan) Attach(dot11.MACAddr, medium.Node) {}

func (f cohortFan) Transmit(src dot11.MACAddr, raw []byte, rate dot11.Rate) time.Duration {
	return f.c.fanTransmit(raw, rate)
}

// NewCohort creates a cohort of cfg.Count members attached to the
// medium as one address block based at cfg.Addr.
func NewCohort(eng *sim.Engine, med medium.BlockChannel, cfg CohortConfig) (*CohortStation, error) {
	if cfg.Count < 1 {
		return nil, fmt.Errorf("station: cohort count %d < 1", cfg.Count)
	}
	lo := uint64(cfg.Addr[3])<<16 | uint64(cfg.Addr[4])<<8 | uint64(cfg.Addr[5])
	if lo+uint64(cfg.Count)-1 >= dot11.MaxAddrBlock {
		return nil, fmt.Errorf("station: cohort of %d members from %v wraps the address block", cfg.Count, cfg.Addr)
	}
	c := &CohortStation{
		eng:       eng,
		med:       med,
		base:      cfg.Addr,
		count:     cfg.Count,
		aggregate: cfg.Aggregate,
	}
	c.tmpl = New(eng, cohortFan{c}, cfg.Config)
	c.watchHandshake()
	if err := med.AttachBlock(cfg.Addr, cfg.Count, c); err != nil {
		return nil, err
	}
	return c, nil
}

// watchHandshake arms the ACK-deadline watch on multi-member exact
// cohorts (the regimes it guards; see CohortStation's field comment).
func (c *CohortStation) watchHandshake() {
	c.ackDeadlineFn = c.ackDeadline
	if !c.aggregate && c.count > 1 {
		c.tmpl.ackArm = c.ackArmed
	}
}

// ackArmed snapshots the template at the start of a handshake round
// and schedules the deadline check. It runs from sendPortMessage right
// after the template armed its own ACK timer, so at the deadline the
// template's timer (if still pending — no ACKs at all) fires first and
// retries the whole cohort; the check then finds a fresh round.
func (c *CohortStation) ackArmed(deadline time.Duration) {
	if c.aggregate || c.count <= 1 {
		return
	}
	c.ackSnap = c.shadowTemplate()
	c.acked = 0
	c.checkEv.Cancel()
	c.checkEv = c.eng.MustScheduleAt(deadline, c.ackDeadlineFn)
}

// sinkChannel is the medium handed to shadow stations. A shadow only
// mirrors received group traffic; its awaiting-ACK guard keeps it from
// ever transmitting, so the channel is never legitimately used.
type sinkChannel struct{}

func (sinkChannel) Attach(dot11.MACAddr, medium.Node) {}

func (sinkChannel) Transmit(dot11.MACAddr, []byte, dot11.Rate) time.Duration { return 0 }

// shadowOf captures a station's state as a live shadow: a detached
// copy that keeps processing the round's group stream in lockstep with
// the folded members (Receive is fanned to it while the round is
// open), so at any split instant it holds exactly the state an
// expanded unacked member would — arrivals, wakelocks, and a mirrored
// pending suspend check included. Its awaitingACK flag stays set for
// its whole life, so its own timers reduce to no-ops and it never
// transmits.
func shadowOf(src *Station) *Station {
	sh := src.snapshot()
	sh.med = sinkChannel{}
	sh.trySuspendFn = sh.trySuspend
	sh.ackTimeoutFn = sh.ackTimeout
	if src.suspendEv.Pending() {
		sh.suspendEv = sh.eng.MustScheduleAt(src.suspendEv.At(), sh.trySuspendFn)
	}
	return sh
}

// shadowTemplate shadows the template at the start of a handshake
// round.
func (c *CohortStation) shadowTemplate() *Station { return shadowOf(c.tmpl) }

// ackDeadline fires at the round's ACK deadline: members beyond the
// acked prefix missed it (their retransmission is due NOW, exactly
// when the expanded members' own timers would fire), so they split off
// in the round's pre-ACK state and walk the timeout path. acked == 0
// means the template itself timed out and already refanned the round
// for every member; acked == count means the round completed.
func (c *CohortStation) ackDeadline(now time.Duration) {
	snap := c.ackSnap
	c.ackSnap = nil
	if snap == nil || c.acked <= 0 || c.acked >= c.count {
		return
	}
	at := c.acked
	nc := c.adoptTail(at, snap)
	if err := c.med.SplitBlock(c.base, at, nc); err != nil {
		// The block was attached with the pre-split width; the split
		// index came from the ACK prefix, so failure is a bug.
		panic(fmt.Sprintf("station: handshake split: %v", err))
	}
	c.count = at
	nc.tmpl.ackTimeout(now)
}

// splitMidRound handles a group frame landing inside a partially-ACKed
// handshake round: the acked prefix has moved on (port state synced,
// possibly suspended and now woken) while the tail still awaits its
// ACK, so the halves process the frame from different states and must
// diverge. The tail splits off in the round's pre-ACK snapshot with the
// round's ACK timer still pending, the frame is delivered to both
// halves (the medium's delivery walk skips entries inserted
// mid-delivery; see Medium.deliverBlock), and the tail re-freezes its
// post-frame state to keep watching the same deadline. Reports whether
// it consumed the frame.
func (c *CohortStation) splitMidRound(raw []byte, rate dot11.Rate, now time.Duration) bool {
	if c.ackSnap == nil || c.acked <= 0 || c.acked >= c.count {
		return false
	}
	snap, deadline := c.ackSnap, c.checkEv.At()
	c.ackSnap = nil
	c.checkEv.Cancel()
	at := c.acked
	nc := c.adoptTail(at, snap)
	nc.tmpl.ackTimer = nc.eng.MustScheduleAt(deadline, nc.tmpl.ackTimeoutFn)
	if err := c.med.SplitBlock(c.base, at, nc); err != nil {
		panic(fmt.Sprintf("station: mid-round split: %v", err))
	}
	c.count = at
	c.tmpl.Receive(raw, rate, now)
	nc.tmpl.Receive(raw, rate, now)
	nc.ackSnap = nc.shadowTemplate()
	nc.acked = 0
	nc.checkEv = nc.eng.MustScheduleAt(deadline, nc.ackDeadlineFn)
	return true
}

// adoptTail carves members [at, count) into a new cohort built from a
// frozen template snapshot (compare splitTail, which clones the LIVE
// template for mid-delivery divergence). The caller registers nc with
// the medium and shrinks c.count.
func (c *CohortStation) adoptTail(at int, snap *Station) *CohortStation {
	base := dot11.AddrAdd(c.base, at)
	nc := &CohortStation{
		eng:       c.eng,
		med:       c.med,
		base:      base,
		count:     c.count - at,
		aggregate: c.aggregate,
	}
	nc.tmpl = snap.adopt(base, c.tmpl.aid+dot11.AID(at), cohortFan{nc})
	nc.watchHandshake()
	nc.next = c.next
	c.next = nc
	return nc
}

// fanTransmit puts the template's frame on air once per member, in
// member order, patching only the transmitter address (offset 10:16 in
// every frame type a station sends: MAC header Addr2, ACK-less control
// frames' TA). The FIFO medium serializes the copies exactly as it
// would N same-instant transmissions from individual stations. The
// aggregate regime transmits the representative copy only.
func (c *CohortStation) fanTransmit(raw []byte, rate dot11.Rate) time.Duration {
	if c.aggregate || c.count == 1 || len(raw) < 16 {
		return c.med.Transmit(c.base, raw, rate)
	}
	c.txBuf = append(c.txBuf[:0], raw...)
	var end time.Duration
	for i := 0; i < c.count; i++ {
		addr := dot11.AddrAdd(c.base, i)
		copy(c.txBuf[10:16], addr[:])
		end = c.med.Transmit(addr, c.txBuf, rate)
	}
	return end
}

// Receive implements medium.Node: the fallback entry point for
// channels that do not know about routed delivery — the destination is
// read from the frame itself. The emulated Medium always uses
// ReceiveAs instead.
func (c *CohortStation) Receive(raw []byte, rate dot11.Rate, now time.Duration) {
	if len(raw) < 10 {
		return
	}
	var dst dot11.MACAddr
	copy(dst[:], raw[4:10])
	c.ReceiveAs(dst, raw, rate, now)
}

// ReceiveAs implements medium.RoutedNode: group frames and the
// template's own unicast advance the shared state once; unicast copies
// for members past the template mirror it and are only counted. The
// routing decision uses to — the address the medium routed the frame
// to — never the frame's own address bytes: a fault verdict may have
// corrupted those, and a real member's radio tuned to the destination
// before the bits were damaged.
func (c *CohortStation) ReceiveAs(to dot11.MACAddr, raw []byte, rate dot11.Rate, now time.Duration) {
	if to.IsMulticast() {
		c.deliverGroup(raw, rate, now)
		return
	}
	if to == c.base {
		if c.ackSnap != nil && dot11.Classify(raw) == dot11.KindACK {
			c.acked++
		}
		c.tmpl.Receive(raw, rate, now)
		return
	}
	off, ok := dot11.AddrOffset(c.base, to)
	if !ok || off >= c.count {
		return
	}
	if dot11.Classify(raw) == dot11.KindACK {
		c.cstats.MemberACKs++
		if c.ackSnap != nil {
			c.acked++
		}
	} else {
		c.cstats.MemberUnicast++
	}
}

// deliverGroup advances every member for one group frame. Two folded
// populations may need to part first: members that would READ the
// frame differently (a corrupted beacon's per-AID bitmap bits; see
// groupDivergence) and — when a handshake round is open — the acked
// prefix that has moved past the round while the tail still waits
// (splitMidRound). Splits recurse so each uniform segment processes
// the frame exactly as its expanded members would, in member order.
func (c *CohortStation) deliverGroup(raw []byte, rate dot11.Rate, now time.Duration) {
	if at := c.groupDivergence(raw); at > 0 {
		nc := c.selfSplit(at)
		c.deliverGroup(raw, rate, now)
		nc.deliverGroup(raw, rate, now)
		return
	}
	if c.splitMidRound(raw, rate, now) {
		return
	}
	shadow := c.ackSnap
	if c.acked >= c.count {
		shadow = nil // round complete; the shadow is dead until re-armed
	}
	c.tmpl.Receive(raw, rate, now)
	if shadow != nil {
		shadow.Receive(raw, rate, now)
	}
}

// groupDivergence returns the first member index at which this group
// frame stops reading member-uniformly, or 0 when every member reads
// it identically. Group frames are uniform by construction — members
// share ports, state, and the AP-side table entries — except through
// the per-AID indications of a beacon: one corrupted bitmap byte can
// flip the TIM or BTIM bit of SOME members of a segment and not
// others, making the expanded members react apart even though every
// copy carries identical bytes.
func (c *CohortStation) groupDivergence(raw []byte) int {
	if c.aggregate || c.count <= 1 || !c.tmpl.associated || c.tmpl.crashed {
		return 0
	}
	if dot11.Classify(raw) != dot11.KindBeacon {
		return 0
	}
	b, err := dot11.UnmarshalBeacon(raw)
	if err != nil || b.TIM == nil {
		return 0 // unparseable or TIM-less: every member bails out alike
	}
	if li := c.tmpl.cfg.ListenInterval; li > 1 && c.tmpl.beaconSeq%li != 0 {
		return 0 // the members' radios sleep through this beacon together
	}
	btim := b.BTIM
	if c.tmpl.cfg.Mode != HIDE || b.TIM.DTIMCount != 0 {
		btim = nil // the BTIM reading is not consulted on this beacon
	}
	first := c.memberReading(b, btim, 0)
	for k := 1; k < c.count; k++ {
		if c.memberReading(b, btim, k) != first {
			return k
		}
	}
	return 0
}

// memberReading is member k's view of a beacon's per-AID indications.
func (c *CohortStation) memberReading(b *dot11.Beacon, btim *dot11.BTIM, k int) [2]bool {
	aid := c.tmpl.aid + dot11.AID(k)
	return [2]bool{
		b.TIM.UnicastBuffered(aid),
		btim != nil && btim.UsefulBroadcastBuffered(aid),
	}
}

// selfSplit carves the tail [at, count) off mid-delivery on the
// cohort's own initiative — the in-process analogue of the medium's
// verdict-boundary SplitTail path. The tail registers with the medium
// immediately (entries inserted during a delivery walk are counted as
// consumed), and the caller hands it the in-flight frame itself.
func (c *CohortStation) selfSplit(at int) *CohortStation {
	nc := c.SplitTail(at).(*CohortStation)
	if err := c.med.SplitBlock(c.base, at, nc); err != nil {
		panic(fmt.Sprintf("station: self split: %v", err))
	}
	return nc
}

// SplitTail implements medium.BlockSplitter: the medium calls it
// mid-delivery when fault verdicts diverge across the block. When a
// handshake round is open the split lands inside it, and the tail must
// leave in the state its members actually hold — the template's if its
// base member has been ACKed, the shadow's if not — with the round
// watch carried across both halves.
func (c *CohortStation) SplitTail(at int) medium.Node {
	if c.ackSnap == nil {
		return c.splitTail(at)
	}
	deadline := c.checkEv.At()
	switch {
	case c.acked == 0:
		// Nobody ACKed yet: the template is still in the pre-ACK state
		// (its own round timer pending, mirrored by the clone), so the
		// live clone is exact; the tail just opens its own watch.
		nc := c.splitTail(at)
		nc.ackSnap = nc.shadowTemplate()
		nc.checkEv = nc.eng.MustScheduleAt(deadline, nc.ackDeadlineFn)
		return nc
	case at < c.acked:
		// The cut lands inside the ACKed prefix: the head's members are
		// all done (its round is over) and the tail inherits the open
		// round — its first acked-c.acked members' worth of state is the
		// template's, carried by the live clone, and the still-unacked
		// rest stays represented by the transferred shadow.
		nc := c.splitTail(at)
		nc.acked = c.acked - at
		nc.ackSnap = c.ackSnap
		nc.checkEv = nc.eng.MustScheduleAt(deadline, nc.ackDeadlineFn)
		c.acked = at
		c.ackSnap = nil
		c.checkEv.Cancel()
		return nc
	default:
		// 0 < acked <= at: every tail member is still unacked, so the
		// tail leaves in the SHADOW's state — the live template has
		// moved on (ACKed, possibly suspended). The round's pending
		// retransmission timer transfers to the tail at the deadline,
		// exactly as splitMidRound arranges for its own tail.
		snap := c.ackSnap
		if at == c.acked {
			// The head's members are exactly the ACKed prefix: its
			// round is complete.
			c.ackSnap = nil
			c.checkEv.Cancel()
		} else {
			// The head keeps watching its remaining unacked members
			// [acked, at) through a fresh copy of the shadow.
			c.ackSnap = shadowOf(snap)
		}
		nc := c.adoptTail(at, snap)
		nc.tmpl.ackTimer = nc.eng.MustScheduleAt(deadline, nc.tmpl.ackTimeoutFn)
		nc.ackSnap = nc.shadowTemplate()
		nc.checkEv = nc.eng.MustScheduleAt(deadline, nc.ackDeadlineFn)
		c.count = at
		return nc
	}
}

// splitTail detaches members [at, count) into a new cohort whose
// template is a deep clone of this one's — same protocol state, same
// pending timers, reparented to the tail's base address and AID. The
// caller (the medium, or Split) is responsible for registering the new
// cohort in the delivery order.
func (c *CohortStation) splitTail(at int) *CohortStation {
	if at < 1 || at >= c.count {
		panic(fmt.Sprintf("station: cohort split at %d outside (0, %d)", at, c.count))
	}
	base := dot11.AddrAdd(c.base, at)
	nc := &CohortStation{
		eng:       c.eng,
		med:       c.med,
		base:      base,
		count:     c.count - at,
		aggregate: c.aggregate,
	}
	nc.tmpl = c.tmpl.cloneFor(base, c.tmpl.aid+dot11.AID(at), cohortFan{nc}, at)
	nc.watchHandshake()
	nc.next = c.next
	c.next = nc
	c.count = at
	return nc
}

// Split carves members [at, count) into a separate cohort, registered
// with the medium directly after this one in the delivery order —
// indistinguishable from two cohorts built that way at setup. Split is
// only valid after association (the association retry timer cannot be
// cloned) and within the exact (non-aggregate) regime's AID block.
func (c *CohortStation) Split(at int) (*CohortStation, error) {
	if at < 1 || at >= c.count {
		return nil, fmt.Errorf("station: split index %d outside (0, %d)", at, c.count)
	}
	if !c.tmpl.associated {
		return nil, fmt.Errorf("station: cohort split before association completed")
	}
	nc := c.splitTail(at)
	if err := c.med.SplitBlock(c.base, at, nc); err != nil {
		return nil, err
	}
	return nc, nil
}

// JoinBlock records the first AID of the cohort's contiguous AID block
// and starts the suspend machinery, exactly as Station.Join does for
// one member.
func (c *CohortStation) JoinBlock(first dot11.AID) error { return c.tmpl.Join(first) }

// Handoff moves the whole cohort segment to another engine, medium
// shard, and BSSID at a barrier instant (both engines idle at the
// same virtual time) — the cohort-aware ESS roam. Like the direct
// association path cohorts already use (ap.AssociateCohort +
// JoinBlock instead of per-member frames), the handoff is out of
// band: the caller disassociates the members at the old AP, calls
// Handoff, associates the block at the new AP, and completes with
// RejoinBlock. A handoff during an active port-message handshake
// round is refused — the round's shadow state is pinned to the old
// engine — so callers defer the roam one window.
func (c *CohortStation) Handoff(eng *sim.Engine, med medium.BlockChannel, bssid dot11.MACAddr) error {
	if c.aggregate {
		return fmt.Errorf("station: aggregate cohorts do not roam (no per-member association to move)")
	}
	if c.next != nil {
		return fmt.Errorf("station: split cohorts do not roam (segments diverged)")
	}
	// A round is open while the pre-ACK snapshot is held or the
	// template awaits its own ACK; a completed round leaves acked ==
	// count behind, which is not an open round.
	if c.ackSnap != nil || c.tmpl.awaitingACK {
		return fmt.Errorf("station: cohort handoff during an active handshake round")
	}
	// Attach to the new shard before touching any old-shard state, so a
	// refused attach leaves the cohort exactly where it was.
	if err := med.AttachBlock(c.base, c.count, c); err != nil {
		return err
	}
	c.acked = 0
	c.checkEv.Cancel()
	c.tmpl.suspendEv.Cancel()
	c.tmpl.ackTimer.Cancel()
	c.tmpl.assocTimer.Cancel()
	if om, ok := c.med.(interface{ Detach(dot11.MACAddr) }); ok {
		om.Detach(c.base)
	}
	c.eng = eng
	c.med = med
	c.tmpl.eng = eng
	c.tmpl.cfg.BSSID = bssid
	c.tmpl.associated = false
	c.tmpl.aid = 0
	c.tmpl.listening = false
	c.tmpl.syncedPorts = nil
	c.tmpl.haveTimestamp = false
	c.tmpl.setSuspended(true)
	return nil
}

// RejoinBlock completes a cohort roam: it records the first AID of
// the block assigned by the new AP without waking the members' hosts,
// exactly as Station.Rejoin does for one member. BTIM filtering at
// the new AP resumes with the members' next port sync (cold handoff)
// or immediately when the distribution system replicated their
// entries (warm).
func (c *CohortStation) RejoinBlock(first dot11.AID) error { return c.tmpl.Rejoin(first) }

// ListensOn reports whether a UDP port is open on the cohort's
// members (all members share one port set).
func (c *CohortStation) ListensOn(p uint16) bool { return c.tmpl.ports[p] }

// Synced reports whether the cohort's current AP has acknowledged its
// open-port set; false after a Handoff marks the cold-roam resync
// window, exactly as Station.Synced does.
func (c *CohortStation) Synced() bool { return c.tmpl.syncedPorts != nil }

// Template returns the Station carrying the members' shared protocol
// state — for observers and pricing; drive the cohort through
// CohortStation methods, not the template.
func (c *CohortStation) Template() *Station { return c.tmpl }

// Segments returns the cohort family this handle has split into, in
// member order: the receiver first, then every cohort carved off it
// (directly or transitively). An unsplit cohort returns itself alone;
// the segment widths always sum to the original member count.
func (c *CohortStation) Segments() []*CohortStation {
	var out []*CohortStation
	for s := c; s != nil; s = s.next {
		out = append(out, s)
	}
	return out
}

// Count returns the number of members the cohort currently stands for
// (splits shrink it).
func (c *CohortStation) Count() int { return c.count }

// BaseAddr returns the first member's MAC address.
func (c *CohortStation) BaseAddr() dot11.MACAddr { return c.base }

// MemberAddr returns the i-th member's MAC address.
func (c *CohortStation) MemberAddr(i int) dot11.MACAddr { return dot11.AddrAdd(c.base, i) }

// BaseAID returns the first member's AID (zero before JoinBlock).
func (c *CohortStation) BaseAID() dot11.AID { return c.tmpl.aid }

// Aggregate reports whether the cohort runs in the aggregate regime.
func (c *CohortStation) Aggregate() bool { return c.aggregate }

// OpenPort registers a listening UDP port on every member.
func (c *CohortStation) OpenPort(p uint16) { c.tmpl.OpenPort(p) }

// ClosePort removes a listening UDP port from every member.
func (c *CohortStation) ClosePort(p uint16) { c.tmpl.ClosePort(p) }

// OpenPorts returns the members' shared sorted open-port set.
func (c *CohortStation) OpenPorts() []uint16 { return c.tmpl.OpenPorts() }

// Arrivals returns one member's recorded radio arrivals — identical
// for every member, so per-member energy is energy.Compute over this
// log and cohort energy is the per-member Breakdown scaled by Count.
func (c *CohortStation) Arrivals() []energy.Arrival { return c.tmpl.Arrivals() }

// MemberStats returns one member's protocol counters (identical for
// every member).
func (c *CohortStation) MemberStats() Stats { return c.tmpl.Stats() }

// CohortStats returns the cohort-level bookkeeping counters.
func (c *CohortStation) CohortStats() CohortStats { return c.cstats }

// Suspended reports whether the members' shared host state is suspend.
func (c *CohortStation) Suspended() bool { return c.tmpl.Suspended() }

// ListenInterval returns the members' shared listen interval.
func (c *CohortStation) ListenInterval() int { return c.tmpl.ListenInterval() }

// SetObserver installs the lifecycle observer on the template, so
// invariant checkers see the members' shared state machine.
func (c *CohortStation) SetObserver(o Observer) { c.tmpl.SetObserver(o) }
