package dot11

import "fmt"

// Beacon is an 802.11 beacon management frame carrying the fixed
// timestamp/interval/capability fields plus information elements,
// including the standard TIM and (on HIDE APs) the BTIM.
type Beacon struct {
	Header         MACHeader
	Timestamp      uint64 // µs since AP timer start (TSF)
	BeaconInterval uint16 // in time units (TU = 1024 µs)
	Capability     uint16
	SSID           string
	TIM            *TIM
	BTIM           *BTIM
	Extra          []Element // any additional elements, kept in order
}

// beaconFixedLen is the length of the fixed beacon body fields:
// timestamp (8) + beacon interval (2) + capability (2).
const beaconFixedLen = 12

// Marshal encodes the beacon into wire format.
func (b *Beacon) Marshal() ([]byte, error) {
	hdr := b.Header
	hdr.FC.Type = TypeManagement
	hdr.FC.Subtype = SubtypeBeacon

	out := make([]byte, MACHeaderLen+beaconFixedLen, MACHeaderLen+beaconFixedLen+64)
	hdr.marshalInto(out)
	p := out[MACHeaderLen:]
	for i := 0; i < 8; i++ {
		p[i] = byte(b.Timestamp >> (8 * i))
	}
	putUint16(p[8:], b.BeaconInterval)
	putUint16(p[10:], b.Capability)

	var err error
	if out, err = (Element{ID: ElementIDSSID, Body: []byte(b.SSID)}).AppendTo(out); err != nil {
		return nil, err
	}
	if b.TIM != nil {
		e, err := b.TIM.Element()
		if err != nil {
			return nil, err
		}
		if out, err = e.AppendTo(out); err != nil {
			return nil, err
		}
	}
	if b.BTIM != nil {
		e, err := b.BTIM.Element()
		if err != nil {
			return nil, err
		}
		if out, err = e.AppendTo(out); err != nil {
			return nil, err
		}
	}
	for _, e := range b.Extra {
		if out, err = e.AppendTo(out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnmarshalBeacon decodes a beacon frame. Legacy receivers simply skip
// the BTIM element they do not understand, which is what makes HIDE
// backward compatible; this decoder surfaces both elements when present.
func UnmarshalBeacon(raw []byte) (*Beacon, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeManagement || hdr.FC.Subtype != SubtypeBeacon {
		return nil, fmt.Errorf("%w: %v/%d, want beacon", ErrBadFrameType, hdr.FC.Type, hdr.FC.Subtype)
	}
	if len(raw) < MACHeaderLen+beaconFixedLen {
		return nil, fmt.Errorf("%w: %d bytes for beacon body", ErrShortFrame, len(raw)-MACHeaderLen)
	}
	p := raw[MACHeaderLen:]
	b := &Beacon{Header: hdr}
	for i := 0; i < 8; i++ {
		b.Timestamp |= uint64(p[i]) << (8 * i)
	}
	b.BeaconInterval = getUint16(p[8:])
	b.Capability = getUint16(p[10:])

	elems, err := ParseElements(p[beaconFixedLen:])
	if err != nil {
		return nil, err
	}
	for _, e := range elems {
		switch e.ID {
		case ElementIDSSID:
			b.SSID = string(e.Body)
		case ElementIDTIM:
			tim, err := ParseTIM(e)
			if err != nil {
				return nil, err
			}
			b.TIM = &tim
		case ElementIDBTIM:
			btim, err := ParseBTIM(e)
			if err != nil {
				return nil, err
			}
			b.BTIM = &btim
		default:
			b.Extra = append(b.Extra, Element{ID: e.ID, Body: append([]byte(nil), e.Body...)})
		}
	}
	return b, nil
}

// UDPPortMessage is the HIDE management frame (type 00, subtype 1111)
// a client sends to the AP right before entering suspend mode,
// reporting the UDP ports open on the client (paper Figure 3). Ports
// beyond 127 are split across multiple Open UDP Ports elements.
type UDPPortMessage struct {
	Header MACHeader
	Ports  []uint16
}

// Marshal encodes the UDP Port Message into wire format.
func (m *UDPPortMessage) Marshal() ([]byte, error) {
	hdr := m.Header
	hdr.FC.Type = TypeManagement
	hdr.FC.Subtype = SubtypeUDPPortMessage

	out := make([]byte, MACHeaderLen, MACHeaderLen+2+2*len(m.Ports))
	hdr.marshalInto(out)
	ports := m.Ports
	for {
		n := len(ports)
		if n > MaxPortsPerElement {
			n = MaxPortsPerElement
		}
		e, err := OpenUDPPorts{Ports: ports[:n]}.Element()
		if err != nil {
			return nil, err
		}
		if out, err = e.AppendTo(out); err != nil {
			return nil, err
		}
		ports = ports[n:]
		if len(ports) == 0 {
			break
		}
	}
	return out, nil
}

// UnmarshalUDPPortMessage decodes a UDP Port Message frame.
func UnmarshalUDPPortMessage(raw []byte) (*UDPPortMessage, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeManagement || hdr.FC.Subtype != SubtypeUDPPortMessage {
		return nil, fmt.Errorf("%w: %v/%d, want UDP port message", ErrBadFrameType, hdr.FC.Type, hdr.FC.Subtype)
	}
	elems, err := ParseElements(raw[MACHeaderLen:])
	if err != nil {
		return nil, err
	}
	m := &UDPPortMessage{Header: hdr}
	for _, e := range elems {
		if e.ID != ElementIDOpenUDPPorts {
			continue
		}
		o, err := ParseOpenUDPPorts(e)
		if err != nil {
			return nil, err
		}
		m.Ports = append(m.Ports, o.Ports...)
	}
	return m, nil
}

// ACK is an 802.11 ACK control frame.
type ACK struct {
	RA MACAddr // receiver address
}

// Marshal encodes the ACK into wire format (without FCS).
func (a *ACK) Marshal() []byte {
	out := make([]byte, ACKFrameLen-FCSLen)
	fc := FrameControl{Type: TypeControl, Subtype: SubtypeACK}.Marshal()
	out[0], out[1] = fc[0], fc[1]
	copy(out[4:], a.RA[:])
	return out
}

// UnmarshalACK decodes an ACK control frame.
func UnmarshalACK(raw []byte) (*ACK, error) {
	if len(raw) < ACKFrameLen-FCSLen {
		return nil, fmt.Errorf("%w: %d bytes for ACK", ErrShortFrame, len(raw))
	}
	fc := UnmarshalFrameControl([2]byte{raw[0], raw[1]})
	if fc.Type != TypeControl || fc.Subtype != SubtypeACK {
		return nil, fmt.Errorf("%w: %v/%d, want ACK", ErrBadFrameType, fc.Type, fc.Subtype)
	}
	a := &ACK{}
	copy(a.RA[:], raw[4:])
	return a, nil
}

// PSPoll is the Power Save Poll control frame a station in PS mode
// sends to retrieve one buffered unicast frame from the AP.
type PSPoll struct {
	AID   AID
	BSSID MACAddr
	TA    MACAddr // transmitting station
}

// Marshal encodes the PS-Poll into wire format (without FCS).
func (p *PSPoll) Marshal() []byte {
	out := make([]byte, PSPollFrameLen-FCSLen)
	fc := FrameControl{Type: TypeControl, Subtype: SubtypePSPoll}.Marshal()
	out[0], out[1] = fc[0], fc[1]
	// The Duration/ID field carries the AID with the two MSBs set.
	putUint16(out[2:], uint16(p.AID)|0xc000)
	copy(out[4:], p.BSSID[:])
	copy(out[10:], p.TA[:])
	return out
}

// UnmarshalPSPoll decodes a PS-Poll control frame.
func UnmarshalPSPoll(raw []byte) (*PSPoll, error) {
	if len(raw) < PSPollFrameLen-FCSLen {
		return nil, fmt.Errorf("%w: %d bytes for PS-Poll", ErrShortFrame, len(raw))
	}
	fc := UnmarshalFrameControl([2]byte{raw[0], raw[1]})
	if fc.Type != TypeControl || fc.Subtype != SubtypePSPoll {
		return nil, fmt.Errorf("%w: %v/%d, want PS-Poll", ErrBadFrameType, fc.Type, fc.Subtype)
	}
	p := &PSPoll{AID: AID(getUint16(raw[2:]) &^ 0xc000)}
	copy(p.BSSID[:], raw[4:])
	copy(p.TA[:], raw[10:])
	return p, nil
}

// DataFrame is an 802.11 data frame whose body is an LLC/SNAP + IPv4 +
// UDP datagram — the "UDP-padded" frames the paper manages. The MoreData
// bit in the header signals further buffered group frames after a DTIM.
type DataFrame struct {
	Header  MACHeader
	Payload []byte // LLC/SNAP + IP packet
}

// Marshal encodes the data frame into wire format.
func (d *DataFrame) Marshal() []byte {
	hdr := d.Header
	hdr.FC.Type = TypeData
	hdr.FC.Subtype = SubtypeData
	out := make([]byte, MACHeaderLen+len(d.Payload))
	hdr.marshalInto(out)
	copy(out[MACHeaderLen:], d.Payload)
	return out
}

// UnmarshalDataFrame decodes a data frame. The payload aliases raw.
func UnmarshalDataFrame(raw []byte) (*DataFrame, error) {
	hdr, err := unmarshalMACHeader(raw)
	if err != nil {
		return nil, err
	}
	if hdr.FC.Type != TypeData {
		return nil, fmt.Errorf("%w: %v, want data", ErrBadFrameType, hdr.FC.Type)
	}
	return &DataFrame{Header: hdr, Payload: raw[MACHeaderLen:]}, nil
}

// FrameKind classifies a raw frame without fully decoding it.
type FrameKind uint8

// Frame kinds returned by Classify.
const (
	KindUnknown FrameKind = iota
	KindBeacon
	KindUDPPortMessage
	KindACK
	KindPSPoll
	KindData
	KindAssocRequest
	KindAssocResponse
	KindDisassoc
	KindReassocRequest
	KindReassocResponse
)

// String returns the name of the frame kind.
func (k FrameKind) String() string {
	switch k {
	case KindBeacon:
		return "beacon"
	case KindUDPPortMessage:
		return "udp-port-message"
	case KindACK:
		return "ack"
	case KindPSPoll:
		return "ps-poll"
	case KindData:
		return "data"
	case KindAssocRequest:
		return "assoc-request"
	case KindAssocResponse:
		return "assoc-response"
	case KindDisassoc:
		return "disassoc"
	case KindReassocRequest:
		return "reassoc-request"
	case KindReassocResponse:
		return "reassoc-response"
	default:
		return "unknown"
	}
}

// Classify inspects the frame control field of a raw frame.
func Classify(raw []byte) FrameKind {
	if len(raw) < 2 {
		return KindUnknown
	}
	fc := UnmarshalFrameControl([2]byte{raw[0], raw[1]})
	switch {
	case fc.Type == TypeManagement && fc.Subtype == SubtypeBeacon:
		return KindBeacon
	case fc.Type == TypeManagement && fc.Subtype == SubtypeUDPPortMessage:
		return KindUDPPortMessage
	case fc.Type == TypeManagement && fc.Subtype == SubtypeAssocRequest:
		return KindAssocRequest
	case fc.Type == TypeManagement && fc.Subtype == SubtypeAssocResponse:
		return KindAssocResponse
	case fc.Type == TypeManagement && fc.Subtype == SubtypeDisassoc:
		return KindDisassoc
	case fc.Type == TypeManagement && fc.Subtype == SubtypeReassocRequest:
		return KindReassocRequest
	case fc.Type == TypeManagement && fc.Subtype == SubtypeReassocResponse:
		return KindReassocResponse
	case fc.Type == TypeControl && fc.Subtype == SubtypeACK:
		return KindACK
	case fc.Type == TypeControl && fc.Subtype == SubtypePSPoll:
		return KindPSPoll
	case fc.Type == TypeData:
		return KindData
	default:
		return KindUnknown
	}
}
