package dot11

import "fmt"

// Element is a generic 802.11 information element: a one-byte ID, a
// one-byte length, and up to 255 bytes of body.
type Element struct {
	ID   uint8
	Body []byte
}

// WireLen returns the encoded length of the element in bytes.
func (e Element) WireLen() int { return 2 + len(e.Body) }

// AppendTo appends the encoded element to b and returns the extended
// slice. It returns an error if the body exceeds 255 bytes.
func (e Element) AppendTo(b []byte) ([]byte, error) {
	if len(e.Body) > 255 {
		return nil, fmt.Errorf("%w: id=%d len=%d", ErrElementTooLong, e.ID, len(e.Body))
	}
	b = append(b, e.ID, uint8(len(e.Body)))
	return append(b, e.Body...), nil
}

// ParseElements splits a concatenated information-element blob into
// individual elements. Bodies alias the input slice.
func ParseElements(b []byte) ([]Element, error) {
	var out []Element
	for len(b) > 0 {
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: trailing %d bytes", ErrBadElement, len(b))
		}
		id, n := b[0], int(b[1])
		if len(b) < 2+n {
			return nil, fmt.Errorf("%w: element id=%d declares %d bytes, %d remain", ErrBadElement, id, n, len(b)-2)
		}
		out = append(out, Element{ID: id, Body: b[2 : 2+n]})
		b = b[2+n:]
	}
	return out, nil
}

// FindElement returns the first element with the given ID, or false.
func FindElement(elems []Element, id uint8) (Element, bool) {
	for _, e := range elems {
		if e.ID == id {
			return e, true
		}
	}
	return Element{}, false
}

// TIM is the standard Traffic Indication Map element (Figure 1). The
// DTIM Count is the number of beacons before the next DTIM (zero in a
// DTIM beacon); the DTIM Period is in beacon intervals. Bit 0 of the
// Bitmap Control field indicates buffered broadcast/multicast traffic;
// bits 1..7 carry the bitmap offset in units of two octets. The partial
// virtual bitmap carries per-AID unicast indications.
type TIM struct {
	DTIMCount     uint8
	DTIMPeriod    uint8
	Broadcast     bool // Bitmap Control bit 0: group traffic buffered
	BitmapOffset  uint8
	PartialBitmap []byte
}

// Element encodes the TIM as an information element.
func (t TIM) Element() (Element, error) {
	if t.BitmapOffset%2 != 0 {
		return Element{}, fmt.Errorf("%w: TIM bitmap offset %d is odd", ErrBadElement, t.BitmapOffset)
	}
	pm := t.PartialBitmap
	if len(pm) == 0 {
		pm = []byte{0}
	}
	body := make([]byte, 0, 3+len(pm))
	ctl := t.BitmapOffset / 2 << 1
	if t.Broadcast {
		ctl |= 0x01
	}
	body = append(body, t.DTIMCount, t.DTIMPeriod, ctl)
	body = append(body, pm...)
	return Element{ID: ElementIDTIM, Body: body}, nil
}

// ParseTIM decodes a TIM element body.
func ParseTIM(e Element) (TIM, error) {
	if e.ID != ElementIDTIM {
		return TIM{}, fmt.Errorf("%w: element id %d is not TIM", ErrBadElement, e.ID)
	}
	if len(e.Body) < 4 {
		return TIM{}, fmt.Errorf("%w: TIM body %d bytes", ErrBadElement, len(e.Body))
	}
	t := TIM{
		DTIMCount:    e.Body[0],
		DTIMPeriod:   e.Body[1],
		Broadcast:    e.Body[2]&0x01 != 0,
		BitmapOffset: e.Body[2] >> 1 << 1,
	}
	t.PartialBitmap = append([]byte(nil), e.Body[3:]...)
	return t, nil
}

// UnicastBuffered reports whether the TIM indicates buffered unicast
// traffic for aid.
func (t TIM) UnicastBuffered(aid AID) bool {
	v, err := Decompress(t.BitmapOffset, t.PartialBitmap)
	if err != nil {
		return false
	}
	return v.Get(aid)
}

// BTIM is the Broadcast Traffic Indication Map element HIDE adds to
// beacon frames (Figure 4, element ID 201). Each bit of the partial
// virtual bitmap corresponds to a client AID and indicates useful
// broadcast frames buffered at the AP for that client. The Offset field
// is the byte index of the first octet included in the partial bitmap
// (Figure 5's N1, always even).
type BTIM struct {
	Offset        uint8
	PartialBitmap []byte
}

// BTIMFromBitmap compresses a full virtual bitmap into a BTIM.
func BTIMFromBitmap(v *VirtualBitmap) BTIM {
	off, pm := v.Compress()
	return BTIM{Offset: off, PartialBitmap: pm}
}

// Element encodes the BTIM as an information element.
func (b BTIM) Element() (Element, error) {
	if b.Offset%2 != 0 {
		return Element{}, fmt.Errorf("%w: BTIM offset %d is odd", ErrBadElement, b.Offset)
	}
	pm := b.PartialBitmap
	if len(pm) == 0 {
		pm = []byte{0}
	}
	body := make([]byte, 0, 1+len(pm))
	body = append(body, b.Offset)
	body = append(body, pm...)
	return Element{ID: ElementIDBTIM, Body: body}, nil
}

// ParseBTIM decodes a BTIM element body.
func ParseBTIM(e Element) (BTIM, error) {
	if e.ID != ElementIDBTIM {
		return BTIM{}, fmt.Errorf("%w: element id %d is not BTIM", ErrBadElement, e.ID)
	}
	if len(e.Body) < 2 {
		return BTIM{}, fmt.Errorf("%w: BTIM body %d bytes", ErrBadElement, len(e.Body))
	}
	b := BTIM{Offset: e.Body[0]}
	if b.Offset%2 != 0 {
		return BTIM{}, fmt.Errorf("%w: BTIM offset %d is odd", ErrBadElement, b.Offset)
	}
	b.PartialBitmap = append([]byte(nil), e.Body[1:]...)
	return b, nil
}

// UsefulBroadcastBuffered reports whether the BTIM bit for aid is set,
// i.e. whether the AP holds broadcast frames useful to that client.
func (b BTIM) UsefulBroadcastBuffered(aid AID) bool {
	v, err := Decompress(b.Offset, b.PartialBitmap)
	if err != nil {
		return false
	}
	return v.Get(aid)
}

// OpenUDPPorts is the element (ID 200) carried in a UDP Port Message,
// listing the UDP ports open on a client (paper Figure 3). Each port is
// two bytes, so at most 127 ports fit in one element; callers with more
// ports split them across multiple elements.
type OpenUDPPorts struct {
	Ports []uint16
}

// MaxPortsPerElement is the number of 2-byte ports that fit in one
// 255-byte element body.
const MaxPortsPerElement = 127

// Element encodes the port list as an information element.
func (o OpenUDPPorts) Element() (Element, error) {
	if len(o.Ports) > MaxPortsPerElement {
		return Element{}, fmt.Errorf("%w: %d ports", ErrElementTooLong, len(o.Ports))
	}
	body := make([]byte, 2*len(o.Ports))
	for i, p := range o.Ports {
		putUint16(body[2*i:], p)
	}
	return Element{ID: ElementIDOpenUDPPorts, Body: body}, nil
}

// ParseOpenUDPPorts decodes an Open UDP Ports element body.
func ParseOpenUDPPorts(e Element) (OpenUDPPorts, error) {
	if e.ID != ElementIDOpenUDPPorts {
		return OpenUDPPorts{}, fmt.Errorf("%w: element id %d is not Open UDP Ports", ErrBadElement, e.ID)
	}
	if len(e.Body)%2 != 0 {
		return OpenUDPPorts{}, fmt.Errorf("%w: odd port list length %d", ErrBadElement, len(e.Body))
	}
	o := OpenUDPPorts{Ports: make([]uint16, len(e.Body)/2)}
	for i := range o.Ports {
		o.Ports[i] = getUint16(e.Body[2*i:])
	}
	return o, nil
}
