package check

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/daemon"
	"repro/internal/dot11"
	"repro/internal/station"
)

// LiveConfig sizes the live-daemon chaos run. The zero value is the
// standard smoke configuration: fast beacons so the whole run fits in
// seconds of wall clock.
type LiveConfig struct {
	// Clients is how many hidec clients attach (default 12).
	Clients int
	// BeaconInterval is the AP beacon cadence (default 20ms — 5x
	// real time so a DTIM span is 40ms).
	BeaconInterval time.Duration
	// DTIMPeriod is in beacons (default 2).
	DTIMPeriod int
	// PingInterval is the liveness sweep cadence (default 50ms).
	PingInterval time.Duration
	// MaxMissedPings evicts a dead client after this many sweeps
	// (default 3).
	MaxMissedPings int
	// Probes is how many convergence probes each phase sends
	// (default 6).
	Probes int
	// DrainDeadline bounds the final graceful drain (default 2s).
	DrainDeadline time.Duration
	// Seed feeds the fault plan and client jitter RNGs.
	Seed uint64
	// Logf receives narrative progress (default: silent).
	Logf func(format string, args ...any)
}

func (c LiveConfig) normalized() LiveConfig {
	if c.Clients <= 0 {
		c.Clients = 12
	}
	if c.BeaconInterval <= 0 {
		c.BeaconInterval = 20 * time.Millisecond
	}
	if c.DTIMPeriod <= 0 {
		c.DTIMPeriod = 2
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 50 * time.Millisecond
	}
	if c.MaxMissedPings <= 0 {
		c.MaxMissedPings = 3
	}
	if c.Probes <= 0 {
		c.Probes = 6
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 2 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// LiveResult reports one live chaos run.
type LiveResult struct {
	// Clients is how many clients attached and associated.
	Clients int
	// ProbesSent counts convergence probes across both probe phases.
	ProbesSent int
	// ProbeMisses counts (client, probe) pairs that missed the
	// convergence deadline — the PR-4 "zero wanted-frame misses after
	// resync" budget demands 0.
	ProbeMisses int
	// FaultDropped is the hub's count of deliveries the burst-loss
	// plan killed (proves the control-plane fault was live).
	FaultDropped int64
	// RestartsSeen counts clients that detected the AP power-cycle by
	// TSF regression.
	RestartsSeen int
	// Evictions is the daemon's liveness-eviction count.
	Evictions int64
	// DisassocsReceived counts clients that heard a real
	// disassociation frame during the drain.
	DisassocsReceived int
	// DrainTime is how long the graceful shutdown took.
	DrainTime time.Duration
	// Failures lists every violated budget; empty means the run
	// passed.
	Failures []string
}

// Passed reports whether every budget held.
func (r *LiveResult) Passed() bool { return len(r.Failures) == 0 }

// Report renders a human-readable summary.
func (r *LiveResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live chaos: %d clients, %d probes, %d misses, %d fault-drops, %d restarts seen, %d evictions, %d disassocs, drain %v\n",
		r.Clients, r.ProbesSent, r.ProbeMisses, r.FaultDropped, r.RestartsSeen,
		r.Evictions, r.DisassocsReceived, r.DrainTime.Truncate(time.Millisecond))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	if len(r.Failures) == 0 {
		b.WriteString("  all live-chaos budgets held\n")
	}
	return b.String()
}

// liveProbePort is the shared wanted port every live client opens.
const liveProbePort = 40000

// liveRun bundles the booted daemon, its clients, and the HTTP base.
type liveRun struct {
	cfg     LiveConfig
	d       *daemon.Daemon
	clients []*daemon.Client
	base    string // control-plane URL
	res     *LiveResult
}

// RunLive boots a real hided daemon in-process — real UDP air, real
// TCP control plane, both on ephemeral ports — attaches cfg.Clients
// reconnecting hidec clients, and drives the PR-4 chaos scenarios
// over the control plane in wall-clock time: a burst-loss fault plan
// installed and cleared via POST /v1/fault, an AP power-cycle via
// POST /v1/restart, a client killed without disassociating for the
// liveness sweep to evict, and finally a graceful drain. Budgets: all
// probes converge to every live client within one DTIM span (plus a
// fixed wall-clock slack for socket and scheduler latency), zero
// wanted-frame misses after each resync, the dead client is evicted
// and its port-table state flushed, and the drain delivers real
// disassociation frames within the deadline.
func RunLive(ctx context.Context, cfg LiveConfig) (*LiveResult, error) {
	cfg = cfg.normalized()
	res := &LiveResult{}
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	d, err := daemon.New(daemon.Config{
		Listen:         "127.0.0.1:0",
		Control:        "127.0.0.1:0",
		Scenario:       "none",
		BeaconInterval: daemon.Duration(cfg.BeaconInterval),
		DTIMPeriod:     cfg.DTIMPeriod,
		PingInterval:   daemon.Duration(cfg.PingInterval),
		MaxMissedPings: cfg.MaxMissedPings,
		DrainDeadline:  daemon.Duration(cfg.DrainDeadline),
		Seed:           cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	d.SetLogf(func(string, ...any) {})

	// Deliberate defer order: the cancels (registered below) run
	// before this Wait, so every goroutine is unblocked first.
	var wg sync.WaitGroup
	defer wg.Wait()
	runCtx, stopDaemon := context.WithCancel(ctx)
	defer stopDaemon()
	daemonErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		daemonErr <- d.Run(runCtx)
	}()

	r := &liveRun{cfg: cfg, d: d, res: res,
		base: "http://" + d.ControlAddr().String()}

	// Attach the clients: every client wants the probe port plus a
	// unique private port, reconnects with fast backoff, and times its
	// liveness to the fast beacons.
	clientCtx, stopClients := context.WithCancel(ctx)
	defer stopClients()
	for i := 0; i < cfg.Clients; i++ {
		c, err := daemon.NewClient(daemon.ClientConfig{
			Connect:       d.AirAddr().String(),
			Addr:          dot11.MACAddr{0x02, 0x1d, 0xe0, 0xfe, byte(i >> 8), byte(i + 1)},
			Mode:          station.HIDE,
			Ports:         []uint16{liveProbePort, uint16(41000 + i)},
			Reconnect:     true,
			ReconnectBase: 2 * cfg.BeaconInterval,
			ReconnectMax:  10 * cfg.BeaconInterval,
			BeaconTimeout: 6 * cfg.BeaconInterval,
			DeadTimeout:   15 * cfg.BeaconInterval,
			CheckInterval: cfg.BeaconInterval,
			WriteTimeout:  time.Second,
			ReadIdle:      time.Second,
			Seed:          cfg.Seed,
			Logf:          func(string, ...any) {},
		})
		if err != nil {
			return nil, fmt.Errorf("check: client %d: %w", i, err)
		}
		r.clients = append(r.clients, c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			//lint:ignore errdrop clients outlive the daemon here by design; their exit errors carry no budget
			_ = c.Run(clientCtx)
		}()
	}
	res.Clients = len(r.clients)

	// Phase 0: everyone associates.
	if err := r.waitAllAssociated(ctx, 10*time.Second); err != nil {
		return res, err
	}
	cfg.Logf("live: %d clients associated", res.Clients)

	dtimSpan := time.Duration(cfg.DTIMPeriod) * cfg.BeaconInterval
	// settle outlasts the worst-case post-fault resync (a station
	// caught mid-backoff re-registers within a few ACK timeouts), same
	// rationale as the in-process chaos grid's four-DTIM-span window.
	settle := 4 * dtimSpan

	// Phase 1: burst loss installed over the control plane, traffic
	// pushed through it, then cleared; after resync, probes must
	// converge with zero misses.
	if err := r.postJSON("/v1/fault", fmt.Sprintf(
		`{"seed":%d,"plan":{"kind":"loss","p":0.5}}`, cfg.Seed|1)); err != nil {
		return res, err
	}
	if err := r.postJSON("/v1/inject", `{"port":40000,"count":8}`); err != nil {
		return res, err
	}
	sleepCtx(ctx, 4*dtimSpan)
	if err := r.postJSON("/v1/fault", `{"clear":true}`); err != nil {
		return res, err
	}
	counters, err := r.counters()
	if err != nil {
		return res, err
	}
	res.FaultDropped = counters["fault_dropped_total"]
	if res.FaultDropped == 0 {
		fail("burst-loss: control-plane fault plan never dropped a delivery")
	}
	sleepCtx(ctx, settle)
	r.probePhase(ctx, "post-loss", dtimSpan)
	cfg.Logf("live: post-loss probes done (%d misses)", res.ProbeMisses)

	// Phase 2: AP power-cycle over the control plane. Clients detect
	// the TSF regression and re-register; probes must then converge
	// with zero misses.
	if err := r.postJSON("/v1/restart", ""); err != nil {
		return res, err
	}
	sleepCtx(ctx, settle+4*dtimSpan)
	r.probePhase(ctx, "post-restart", dtimSpan)
	for _, c := range r.clients {
		var seen int
		//lint:ignore errdrop a client that died mid-run shows up as RestartsSeen shortfall below
		_ = c.Do(time.Second, func(time.Duration) { seen = c.Station().Stats().APRestartsSeen })
		if seen > 0 {
			res.RestartsSeen++
		}
	}
	if res.RestartsSeen < res.Clients {
		fail("ap-restart: only %d/%d clients detected the power-cycle", res.RestartsSeen, res.Clients)
	}
	cfg.Logf("live: post-restart probes done (%d misses, %d restarts seen)", res.ProbeMisses, res.RestartsSeen)

	// Phase 3: kill the last client without a disassociation frame;
	// the liveness sweep must evict it and flush its port-table state.
	victim := r.clients[len(r.clients)-1]
	live := r.clients[:len(r.clients)-1]
	victimAddr := victim.Station().Addr().String()
	victim.Kill()
	evictBudget := time.Duration(cfg.MaxMissedPings+3) * cfg.PingInterval
	if !r.waitEviction(ctx, victimAddr, evictBudget+2*time.Second) {
		fail("liveness: dead client %s not evicted within %v", victimAddr, evictBudget+2*time.Second)
	}
	counters, err = r.counters()
	if err != nil {
		return res, err
	}
	res.Evictions = counters["evictions_total"]
	cfg.Logf("live: victim evicted (evictions=%d)", res.Evictions)

	// Phase 4: graceful drain. Stop the daemon; surviving clients must
	// hear real disassociation frames, and the whole shutdown stays
	// within the drain deadline (plus server-close slack).
	start := time.Now()
	stopDaemon()
	select {
	case err := <-daemonErr:
		res.DrainTime = time.Since(start)
		if err != nil {
			fail("drain: daemon exited with %v", err)
		}
	case <-time.After(cfg.DrainDeadline + 5*time.Second):
		fail("drain: daemon still running past deadline")
		res.DrainTime = time.Since(start)
	}
	if res.DrainTime > cfg.DrainDeadline+2*time.Second {
		fail("drain: took %v, deadline %v", res.DrainTime, cfg.DrainDeadline)
	}
	// The disassociation datagrams race this check over the loopback
	// socket and each client's inject queue, so poll briefly.
	recvDeadline := time.Now().Add(2 * time.Second)
	for i, c := range live {
		got := 0
		for got == 0 && time.Now().Before(recvDeadline) && ctx.Err() == nil {
			//lint:ignore errdrop a stopped client counts as a missed disassociation below
			_ = c.Do(time.Second, func(time.Duration) { got = c.Station().Stats().DisassocsReceived })
			if got == 0 {
				sleepCtx(ctx, 10*time.Millisecond)
			}
		}
		if got > 0 {
			res.DisassocsReceived++
		} else {
			fail("drain: client %d never heard a disassociation frame", i)
		}
	}
	stopClients()
	return res, ctx.Err()
}

// probePhase sends cfg.Probes broadcast probes one DTIM span apart
// and requires every live client to receive each within one DTIM span
// plus a fixed wall-clock slack (socket + goroutine-scheduler
// latency; the protocol-level budget is the DTIM span itself).
func (r *liveRun) probePhase(ctx context.Context, phase string, dtimSpan time.Duration) {
	const wallSlack = 750 * time.Millisecond
	for p := 0; p < r.cfg.Probes; p++ {
		before := make([]int, len(r.clients))
		for i, c := range r.clients {
			i, c := i, c
			//lint:ignore errdrop a dead client keeps before==after and is reported as a miss
			_ = c.Do(time.Second, func(time.Duration) { before[i] = c.Station().Stats().GroupUseful })
		}
		if err := r.postJSON("/v1/inject", `{"port":40000,"count":1}`); err != nil {
			r.res.Failures = append(r.res.Failures, fmt.Sprintf("%s probe %d: %v", phase, p, err))
			return
		}
		r.res.ProbesSent++
		deadline := time.Now().Add(dtimSpan + wallSlack)
		pending := make(map[int]bool, len(r.clients))
		for i := range r.clients {
			pending[i] = true
		}
		for len(pending) > 0 && time.Now().Before(deadline) && ctx.Err() == nil {
			for i := range r.clients {
				if !pending[i] {
					continue
				}
				i, c := i, r.clients[i]
				var got int
				//lint:ignore errdrop a dead client stays pending and is reported as a miss
				_ = c.Do(time.Second, func(time.Duration) { got = c.Station().Stats().GroupUseful })
				if got > before[i] {
					delete(pending, i)
				}
			}
			if len(pending) > 0 {
				sleepCtx(ctx, dtimSpan/4)
			}
		}
		if len(pending) > 0 {
			r.res.ProbeMisses += len(pending)
			r.res.Failures = append(r.res.Failures, fmt.Sprintf(
				"%s probe %d: %d/%d clients missed the convergence deadline",
				phase, p, len(pending), len(r.clients)))
		}
	}
}

// waitAllAssociated polls the clients' state machines.
func (r *liveRun) waitAllAssociated(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		all := true
		for _, c := range r.clients {
			if c.State() != daemon.StateAssociated {
				all = false
				break
			}
		}
		if all {
			return nil
		}
		sleepCtx(ctx, 10*time.Millisecond)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return fmt.Errorf("check: clients never all associated within %v", timeout)
}

// waitEviction polls /v1/stations until the victim MAC disappears and
// /v1/porttable holds no entry for it.
func (r *liveRun) waitEviction(ctx context.Context, victimAddr string, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) && ctx.Err() == nil {
		var rows []struct {
			Addr string `json:"addr"`
		}
		if err := r.getJSON("/v1/stations", &rows); err == nil {
			gone := true
			for _, row := range rows {
				if row.Addr == victimAddr {
					gone = false
					break
				}
			}
			if gone {
				return true
			}
		}
		sleepCtx(ctx, r.cfg.PingInterval)
	}
	return false
}

// counters fetches /v1/counters.
func (r *liveRun) counters() (map[string]int64, error) {
	var m map[string]int64
	if err := r.getJSON("/v1/counters", &m); err != nil {
		return nil, err
	}
	return m, nil
}

// postJSON posts a body to the control plane and demands 200.
func (r *liveRun) postJSON(path, body string) error {
	resp, err := http.Post(r.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("check: POST %s: %w", path, err)
	}
	//lint:ignore errdrop response body close on a loopback control call; the status line already answered
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("check: POST %s: %s", path, resp.Status)
	}
	return nil
}

// getJSON fetches a control-plane document.
func (r *liveRun) getJSON(path string, v any) error {
	resp, err := http.Get(r.base + path)
	if err != nil {
		return fmt.Errorf("check: GET %s: %w", path, err)
	}
	//lint:ignore errdrop response body close on a loopback control call; the decode error is the one that matters
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("check: GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// sleepCtx sleeps d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
