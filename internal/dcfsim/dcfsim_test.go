package dcfsim

import (
	"testing"
	"time"

	"repro/internal/bianchi"
)

func TestRunValidation(t *testing.T) {
	cfg := bianchi.TableII()
	if _, err := Run(cfg, 0, time.Second, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Run(cfg, 5, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
	bad := cfg
	bad.DataRate = 0
	if _, err := Run(bad, 5, time.Second, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSingleStationNoCollisions(t *testing.T) {
	res, err := Run(bianchi.TableII(), 1, 10*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 || res.CollisionProb != 0 {
		t.Fatalf("lone station collided: %+v", res)
	}
	if res.Phi <= 0 || res.Phi >= 1 {
		t.Fatalf("phi = %v", res.Phi)
	}
}

func TestMatchesBianchiAcrossPopulations(t *testing.T) {
	// The headline validation: measured saturation throughput within
	// 8% of the analytic fixed point for every Figure 10 population.
	cfg := bianchi.TableII()
	for _, n := range []int{5, 10, 20, 50} {
		simRes, ana, relErr, err := ValidateAgainstBianchi(cfg, n, 30*time.Second, 42)
		if err != nil {
			t.Fatal(err)
		}
		if relErr > 0.08 {
			t.Errorf("n=%d: simulated phi %.4f vs analytic %.4f (%.1f%% apart)",
				n, simRes.Phi, ana.Phi, relErr*100)
		}
		// Collision probabilities track too (looser: different
		// measurement granularity).
		diff := simRes.CollisionProb - ana.P
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.10 {
			t.Errorf("n=%d: simulated p %.3f vs analytic %.3f", n, simRes.CollisionProb, ana.P)
		}
	}
}

func TestCollisionsGrowWithN(t *testing.T) {
	cfg := bianchi.TableII()
	prev := -1.0
	for _, n := range []int{2, 10, 30, 50} {
		res, err := Run(cfg, n, 20*time.Second, 7)
		if err != nil {
			t.Fatal(err)
		}
		if res.CollisionProb <= prev {
			t.Errorf("collision prob not increasing at n=%d: %v <= %v", n, res.CollisionProb, prev)
		}
		prev = res.CollisionProb
	}
}

func TestDeterministicForSeed(t *testing.T) {
	cfg := bianchi.TableII()
	a, err := Run(cfg, 10, 5*time.Second, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 10, 5*time.Second, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same seed produced different results")
	}
	c, err := Run(cfg, 10, 5*time.Second, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("different seeds produced identical results")
	}
}

func TestThroughputAccounting(t *testing.T) {
	res, err := Run(bianchi.TableII(), 5, 10*time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime < 10*time.Second {
		t.Fatalf("simulated only %v", res.SimulatedTime)
	}
	if res.Successes == 0 {
		t.Fatal("no successful transmissions")
	}
	// Payload time per success is fixed; reconstruct phi (the model
	// stores durations at nanosecond granularity, so allow the
	// truncation error of 1000 bits at 11 Mb/s ≈ 90.909 µs → 90.909 ns
	// per success relative to the exact ratio).
	tp := float64(1000) / 11e6
	wantPhi := float64(res.Successes) * tp / res.SimulatedTime.Seconds()
	rel := (wantPhi - res.Phi) / wantPhi
	if rel < 0 {
		rel = -rel
	}
	if rel > 1e-4 {
		t.Fatalf("phi accounting: %v vs %v", res.Phi, wantPhi)
	}
}
