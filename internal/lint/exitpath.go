package lint

import (
	"go/ast"
	"strings"
)

// ExitPath guards the exit-130 interrupt contract: every binary must
// terminate through internal/cli (Exit for runtime errors, Usagef for
// flag mistakes), which maps a cancelled context to exit code 130 the
// way shells expect for SIGINT. A direct os.Exit or log.Fatal skips
// that mapping and makes cancellation indistinguishable from failure.
var ExitPath = &Analyzer{
	Name: "exitpath",
	Doc: "cmd/* may not call os.Exit or log.Fatal*/log.Panic* directly; route " +
		"termination through internal/cli.Exit, Usagef, or Abort so SIGINT keeps " +
		"its exit-130 contract",
	Run: runExitPath,
}

// exitPathBannedLog is the log package's set of exiting/panicking
// functions.
var exitPathBannedLog = map[string]bool{
	"Fatal": true, "Fatalf": true, "Fatalln": true,
	"Panic": true, "Panicf": true, "Panicln": true,
}

func runExitPath(p *Pass) error {
	if !strings.HasPrefix(p.RelPath(), "cmd/") {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(p.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case isPkgFunc(fn, "os", "Exit"):
				p.Reportf(call.Pos(), "direct os.Exit bypasses internal/cli's exit-130 interrupt contract; use cli.Exit or cli.Usagef")
			case fn.Pkg().Path() == "log" && exitPathBannedLog[fn.Name()]:
				p.Reportf(call.Pos(), "log.%s exits without internal/cli's exit-130 interrupt contract; use cli.Exit or cli.Usagef", fn.Name())
			}
			return true
		})
	}
	return nil
}
