// Command hidenet runs the protocol-level simulation: one AP and a set
// of stations (HIDE, legacy receive-all, and client-side) exchange real
// marshalled 802.11 frames over an emulated channel while a scenario's
// broadcast trace replays through the AP. It reports per-station
// protocol counters and energy under the Section IV model.
//
// Usage:
//
//	hidenet [-scenario Starbucks] [-device nexusone] [-useful 0.1] [-loss 0] [-minutes 0]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	stdnet "net"
	"os"
	"sort"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/station"
)

func main() {
	scenario := flag.String("scenario", "Starbucks", "trace scenario to replay")
	device := flag.String("device", "nexusone", "device profile: nexusone or galaxys4")
	useful := flag.Float64("useful", 0.10, "target fraction of useful broadcast frames")
	loss := flag.Float64("loss", 0, "medium loss probability")
	minutes := flag.Int("minutes", 0, "truncate the trace to this many minutes (0 = full)")
	serve := flag.String("serve", "", "serve a live monitor/inject service on this UDP address (e.g. 127.0.0.1:5599)")
	speed := flag.Float64("speed", 50, "realtime pacing speedup when serving")
	pingEvery := flag.Duration("ping-every", time.Second, "tap liveness sweep cadence in virtual time (with -serve)")
	maxMissed := flag.Int("max-missed-pings", 3, "unanswered liveness sweeps before a tap is evicted (with -serve)")
	pcapOut := flag.String("pcap", "", "write a monitor-mode pcap capture of the run to this file")
	flag.Parse()

	var dev hide.Profile
	switch strings.ToLower(*device) {
	case "nexusone":
		dev = hide.NexusOne
	case "galaxys4":
		dev = hide.GalaxyS4
	default:
		cli.Usagef("hidenet", "unknown device %q", *device)
	}

	var sc hide.Scenario
	found := false
	for _, s := range hide.Scenarios {
		if strings.EqualFold(s.String(), *scenario) {
			sc, found = s, true
			break
		}
	}
	if !found {
		cli.Usagef("hidenet", "unknown scenario %q", *scenario)
	}

	tr, err := hide.GenerateTrace(sc)
	if err != nil {
		cli.Exit("hidenet", err)
	}
	if *minutes > 0 {
		cut := time.Duration(*minutes) * time.Minute
		if cut < tr.Duration {
			n := 0
			for _, f := range tr.Frames {
				if f.At >= cut {
					break
				}
				n++
			}
			tr.Frames = tr.Frames[:n]
			tr.Duration = cut
		}
	}

	// Give every station ports covering roughly the target fraction of
	// the trace's traffic — the deployed system's usefulness notion.
	open := hide.OpenPortsForFraction(tr, *useful)
	var ports []uint16
	for p := range open {
		ports = append(ports, p)
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })

	net, err := hide.NewNetwork(hide.NetworkConfig{HIDE: true, Loss: *loss, Seed: 7})
	if err != nil {
		cli.Exit("hidenet", err)
	}
	type entry struct {
		name     string
		mode     hide.StationMode
		overhead bool
		st       *station.Station
	}
	entries := []*entry{
		{name: "HIDE", mode: hide.StationHIDE, overhead: true},
		{name: "legacy", mode: hide.StationLegacy},
		{name: "client-side", mode: hide.StationClientSide},
	}
	for _, e := range entries {
		st, err := net.AddStation(e.mode, ports)
		if err != nil {
			cli.Exit("hidenet", err)
		}
		e.st = st
	}

	fmt.Printf("replaying %s (%v, %d frames, %.2f fps) with %d open ports (%.1f%% of traffic)\n",
		tr.Name, tr.Duration, len(tr.Frames), tr.MeanFPS(), len(ports),
		100*fracOfTraffic(tr, open))
	var capture *hide.NetworkCapture
	if *pcapOut != "" {
		capture = net.StartCapture()
	}
	if *serve != "" {
		pc, err := stdnet.ListenPacket("udp", *serve)
		if err != nil {
			cli.Exit("hidenet", err)
		}
		mon := net.ServeMonitor(pc)
		//lint:ignore errdrop monitor teardown at process exit; the UDP service holds no buffered writes and the replay result is already reported
		defer mon.Close()
		mon.SetLiveness(*pingEvery, *maxMissed)
		fmt.Printf("monitor service on %v (connect with hidetap); pacing at %gx\n",
			mon.Server.Addr(), *speed)
		ctx, stop := cli.SignalContext()
		defer stop()
		// Ctrl-C stops the replay but still flushes counters and the
		// pcap capture below: an interrupted run is a shorter run.
		if err := net.ReplayRealtime(ctx, tr, *speed); err != nil && !errors.Is(err, context.Canceled) {
			cli.Exit("hidenet", err)
		}
	} else if err := net.Replay(tr); err != nil {
		cli.Exit("hidenet", err)
	}

	if capture != nil {
		f, err := os.Create(*pcapOut)
		if err != nil {
			cli.Exit("hidenet", err)
		}
		if err := capture.WritePCAP(f); err != nil {
			//lint:ignore errdrop close error is moot once the write has failed
			f.Close()
			cli.Exit("hidenet", fmt.Errorf("writing pcap: %w", err))
		}
		if err := f.Close(); err != nil {
			cli.Exit("hidenet", err)
		}
		fmt.Printf("wrote %d captured frames to %s\n", capture.Frames(), *pcapOut)
	}

	ap := net.AP.Stats()
	fmt.Printf("\nAP: beacons=%d dtims=%d group=%d portmsgs=%d acks=%d btimBytes=%d\n",
		ap.BeaconsSent, ap.DTIMsSent, ap.GroupFramesSent, ap.PortMsgsReceived, ap.ACKsSent, ap.BTIMBytesSent)

	fmt.Printf("\n%-12s %9s %8s %8s %8s %9s %10s %9s\n",
		"station", "received", "useful", "dropped", "wakeups", "suspends", "power(mW)", "suspend%")
	for _, e := range entries {
		b, err := net.StationEnergy(e.st, dev, tr.Duration, e.overhead)
		if err != nil {
			cli.Exit("hidenet", err)
		}
		s := e.st.Stats()
		fmt.Printf("%-12s %9d %8d %8d %8d %9d %10.1f %8.1f%%\n",
			e.name, s.GroupReceived, s.GroupUseful, s.GroupDropped, s.Wakeups, s.Suspends,
			b.AvgPowerW()*1000, b.SuspendFraction*100)
	}
}

// fracOfTraffic returns the share of frames whose port is open.
func fracOfTraffic(tr *hide.Trace, open map[uint16]bool) float64 {
	if len(tr.Frames) == 0 {
		return 0
	}
	n := 0
	for _, f := range tr.Frames {
		if open[f.DstPort] {
			n++
		}
	}
	return float64(n) / float64(len(tr.Frames))
}
