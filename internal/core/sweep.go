package core

import (
	"math"

	"repro/internal/energy"
	"repro/internal/policy"
	"repro/internal/trace"
)

// SeedSweep quantifies how robust the headline results are to the
// randomness in usefulness tagging: it evaluates HIDE and receive-all
// over the same trace with several tagging seeds and aggregates the
// savings. The paper reports point estimates from fixed traces; the
// sweep shows the estimates are not seed artifacts.
type SeedSweep struct {
	Trace          string
	Device         string
	UsefulFraction float64
	Seeds          int
	// MeanSaving, MinSaving, MaxSaving, StdDev summarize HIDE's saving
	// versus receive-all across seeds.
	MeanSaving float64
	MinSaving  float64
	MaxSaving  float64
	StdDev     float64
}

// SweepSeeds evaluates HIDE's saving across tagging seeds.
func SweepSeeds(tr *trace.Trace, dev energy.Profile, fraction float64, seeds []uint64) (SeedSweep, error) {
	out := SeedSweep{
		Trace: tr.Name, Device: dev.Name,
		UsefulFraction: fraction, Seeds: len(seeds),
		MinSaving: math.Inf(1), MaxSaving: math.Inf(-1),
	}
	var sum, sumSq float64
	for _, seed := range seeds {
		opts := Options{Seed: seed}
		ra, err := EvaluateFraction(tr, fraction, dev, policy.ReceiveAll, opts)
		if err != nil {
			return out, err
		}
		hd, err := EvaluateFraction(tr, fraction, dev, policy.HIDE, opts)
		if err != nil {
			return out, err
		}
		saving := 1 - hd.Breakdown.TotalJ()/ra.Breakdown.TotalJ()
		sum += saving
		sumSq += saving * saving
		if saving < out.MinSaving {
			out.MinSaving = saving
		}
		if saving > out.MaxSaving {
			out.MaxSaving = saving
		}
	}
	n := float64(len(seeds))
	if n > 0 {
		out.MeanSaving = sum / n
		variance := sumSq/n - out.MeanSaving*out.MeanSaving
		if variance < 0 {
			variance = 0
		}
		out.StdDev = math.Sqrt(variance)
	}
	return out, nil
}

// DefaultSweepSeeds is a small deterministic seed set.
var DefaultSweepSeeds = []uint64{1, 7, 42, 1001, 0xdeadbeef}
