// Cohort equivalence layer: proves the CohortStation fold exact.
//
// A cohort of N members must be indistinguishable from N
// individually-modeled stations on every observable the simulation
// exposes: the monitor-mode frame stream (byte-identical, in order),
// each member's arrival log and protocol counters, and the Section IV
// energy breakdown priced from those arrivals (bit-identical floats —
// compared with ==, not a tolerance). Both sides join through the same
// direct-association path (core.AddStationDirect / core.AddCohort), so
// the comparison isolates the cohort fold itself.

package check

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/policy"
	"repro/internal/station"
	"repro/internal/trace"
)

// EquivCell identifies one cohort-vs-expanded comparison: a station
// population of Size members in the mode matching Policy, replaying a
// Scenario trace.
type EquivCell struct {
	Policy   policy.Kind
	Scenario trace.Scenario
	Size     int
}

// String labels the cell for reports.
func (c EquivCell) String() string {
	return fmt.Sprintf("%s/%s/n%d", c.Policy, c.Scenario, c.Size)
}

// EquivConfig tunes a cohort-equivalence run.
type EquivConfig struct {
	// Duration truncates the scenario traces; zero keeps the paper's
	// full capture durations. Tests use a couple of minutes.
	Duration time.Duration
	// UsefulTarget is the port-derived useful-traffic fraction (default
	// 0.10); the resulting open-port set is shared by every member.
	UsefulTarget float64
	// Seed perturbs the scenario's calibrated generator seed and drives
	// both networks' jitter RNGs, like the oracle's Cell.Seed.
	Seed uint64
	// Devices are the profiles the per-member breakdowns are priced
	// for; empty selects both Table I devices.
	Devices []energy.Profile
	// Workers bounds the matrix parallelism: 0 selects
	// runtime.GOMAXPROCS(0), 1 forces the sequential path.
	Workers int
	// Fault, when non-nil, returns a fresh fault plan per network. Both
	// sides install their own instance (plans may be stateful) over
	// identically-seeded medium RNGs, so a plan that hits a member
	// subset must split the cohort into exactly the segments the
	// expanded stations would form on their own.
	Fault func() fault.Plan
}

// normalized fills defaults.
func (c EquivConfig) normalized() EquivConfig {
	if c.UsefulTarget <= 0 {
		c.UsefulTarget = 0.10
	}
	if len(c.Devices) == 0 {
		c.Devices = []energy.Profile{energy.NexusOne, energy.GalaxyS4}
	}
	return c
}

// airDigest fingerprints a monitor-mode capture: an FNV-1a hash over
// every transmission's start-of-airtime instant, PHY rate, and raw
// bytes, in serialization order. Two runs share a fingerprint exactly
// when their frame streams are byte-identical and identically timed.
type airDigest struct {
	h      hash.Hash64
	frames int
}

func newAirDigest() *airDigest { return &airDigest{h: fnv.New64a()} }

func (d *airDigest) tap(raw []byte, rate dot11.Rate, at time.Duration) {
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(at))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(rate))
	//lint:ignore errdrop hash.Hash writes never fail
	d.h.Write(hdr[:])
	//lint:ignore errdrop hash.Hash writes never fail
	d.h.Write(raw)
	d.frames++
}

// equivSide is one side's observables: the air fingerprint and the
// per-member pricing inputs, indexed by member.
type equivSide struct {
	fp       uint64
	frames   int
	arrivals [][]energy.Arrival
	stats    []station.Stats
}

// runEquivSide replays the trace against a population of size
// stations, modeled as one exact cohort (cohort true) or as size
// individual stations, and collects the observables.
func runEquivSide(tr *trace.Trace, kind policy.Kind, open []uint16, cfg EquivConfig, size int, cohort bool) (*equivSide, error) {
	mode, err := modeFor(kind)
	if err != nil {
		return nil, err
	}
	ncfg := core.NetworkConfig{
		DTIMPeriod: 1,
		HIDE:       kind == policy.HIDE,
		Seed:       cfg.Seed,
	}
	if cfg.Fault != nil {
		ncfg.Fault = cfg.Fault()
	}
	n, err := core.NewNetwork(ncfg)
	if err != nil {
		return nil, err
	}
	d := newAirDigest()
	n.Medium.SetTap(d.tap)

	var c *station.CohortStation
	var sts []*station.Station
	if cohort {
		if c, err = n.AddCohort(mode, open, size, 1); err != nil {
			return nil, err
		}
		if c.Aggregate() {
			return nil, fmt.Errorf("check: cohort of %d fell out of the exact regime", size)
		}
	} else {
		for i := 0; i < size; i++ {
			st, err := n.AddStationDirect(mode, open, 1)
			if err != nil {
				return nil, err
			}
			sts = append(sts, st)
		}
	}
	if err := n.Replay(tr); err != nil {
		return nil, err
	}

	side := &equivSide{fp: d.h.Sum64(), frames: d.frames}
	if cohort {
		// Handshake-timeout divergence may have split the cohort into
		// segments (member order preserved); one shared log stands for
		// every member of a segment — that identity is the claim under
		// test, so it is expanded here and compared per member.
		segs, total := c.Segments(), 0
		for _, s := range segs {
			total += s.Count()
		}
		if total != size {
			return nil, fmt.Errorf("check: cohort segments cover %d of %d members", total, size)
		}
		for _, s := range segs {
			arr, st := s.Arrivals(), s.MemberStats()
			for i := 0; i < s.Count(); i++ {
				side.arrivals = append(side.arrivals, arr)
				side.stats = append(side.stats, st)
			}
		}
	} else {
		for _, st := range sts {
			side.arrivals = append(side.arrivals, st.Arrivals())
			side.stats = append(side.stats, st.Stats())
		}
	}
	return side, nil
}

// EquivResult is one compared cell. Mismatch is empty when the cohort
// reproduced the expanded run exactly, otherwise it names the first
// observable that diverged.
type EquivResult struct {
	Cell EquivCell
	// Frames is the number of frames both sides put on air.
	Frames int
	// Mismatch names the first diverging observable ("" = exact).
	Mismatch string
}

// OK reports whether the cell was exact.
func (r EquivResult) OK() bool { return r.Mismatch == "" }

// RunEquivCell runs one cohort-equivalence comparison.
func RunEquivCell(c EquivCell, cfg EquivConfig) (EquivResult, error) {
	cfg = cfg.normalized()
	if c.Size < 1 {
		return EquivResult{}, fmt.Errorf("check: equivalence size %d < 1", c.Size)
	}
	tr, err := oracleTrace(c.Scenario, cfg.Seed, cfg.Duration)
	if err != nil {
		return EquivResult{}, err
	}
	open := sortedPorts(trace.OpenPortsForFraction(tr, cfg.UsefulTarget))

	coh, err := runEquivSide(tr, c.Policy, open, cfg, c.Size, true)
	if err != nil {
		return EquivResult{}, fmt.Errorf("check: %v cohort side: %w", c, err)
	}
	exp, err := runEquivSide(tr, c.Policy, open, cfg, c.Size, false)
	if err != nil {
		return EquivResult{}, fmt.Errorf("check: %v expanded side: %w", c, err)
	}

	res := EquivResult{Cell: c, Frames: exp.frames}
	res.Mismatch = diffSides(coh, exp, c.Size, cfg, tr.Duration+dot11.DefaultBeaconInterval)
	return res, nil
}

// diffSides compares every observable and names the first divergence.
func diffSides(coh, exp *equivSide, size int, cfg EquivConfig, window time.Duration) string {
	return diffSidesLabeled(coh, exp, "cohort", "expanded", size, cfg, window)
}

// diffSidesLabeled is diffSides with caller-chosen side names, shared
// with the windowed-parallel determinism layer (window.go) where the
// sides are worker counts rather than representations.
func diffSidesLabeled(a, b *equivSide, an, bn string, size int, cfg EquivConfig, window time.Duration) string {
	if a.frames != b.frames {
		return fmt.Sprintf("frame count: %s %d, %s %d", an, a.frames, bn, b.frames)
	}
	if a.fp != b.fp {
		return fmt.Sprintf("frame-stream fingerprint: %s %016x, %s %016x", an, a.fp, bn, b.fp)
	}
	for i := 0; i < size; i++ {
		if a.stats[i] != b.stats[i] {
			return fmt.Sprintf("member %d stats: %s %+v, %s %+v", i, an, a.stats[i], bn, b.stats[i])
		}
		if d := diffArrivals(a.arrivals[i], b.arrivals[i], an, bn); d != "" {
			return fmt.Sprintf("member %d %s", i, d)
		}
		for _, dev := range cfg.Devices {
			ab, err := energy.Compute(a.arrivals[i], energy.Config{Device: dev, Duration: window, BeaconListenInterval: 1})
			if err != nil {
				return fmt.Sprintf("member %d %s energy: %v", i, an, err)
			}
			bb, err := energy.Compute(b.arrivals[i], energy.Config{Device: dev, Duration: window, BeaconListenInterval: 1})
			if err != nil {
				return fmt.Sprintf("member %d %s energy: %v", i, bn, err)
			}
			if ab != bb {
				return fmt.Sprintf("member %d %s energy: %s %+v, %s %+v", i, dev.Name, an, ab, bn, bb)
			}
		}
	}
	return ""
}

// diffArrivals compares two arrival logs entry by entry.
func diffArrivals(a, b []energy.Arrival, an, bn string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("arrival count: %s %d, %s %d", an, len(a), bn, len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("arrival %d: %s %+v, %s %+v", i, an, a[i], bn, b[i])
		}
	}
	return ""
}

// EquivMatrix is the cohort-equivalence sweep.
type EquivMatrix struct {
	Policies  []policy.Kind
	Scenarios []trace.Scenario
	Sizes     []int
	Config    EquivConfig
}

// DefaultEquivMatrix covers the acceptance grid: the three compared
// policies × three scenario traces spanning the load range (Starbucks
// lightest, Classroom heaviest) × cohort sizes 1, 7, and 64.
func DefaultEquivMatrix() EquivMatrix {
	return EquivMatrix{
		Policies:  []policy.Kind{policy.ReceiveAll, policy.ClientSide, policy.HIDE},
		Scenarios: []trace.Scenario{trace.Classroom, trace.Starbucks, trace.WRL},
		Sizes:     []int{1, 7, 64},
	}
}

// EquivMatrixResult collects every cell of a sweep.
type EquivMatrixResult struct {
	Results []EquivResult
}

// RunContext executes the sweep, fanning cells over the worker pool
// configured by Config.Workers; the cell order (policy-major, then
// scenario, then size) is identical for any worker count.
func (m EquivMatrix) RunContext(ctx context.Context) (*EquivMatrixResult, error) {
	cfg := m.Config.normalized()
	var cells []EquivCell
	for _, kind := range m.Policies {
		for _, sc := range m.Scenarios {
			for _, size := range m.Sizes {
				cells = append(cells, EquivCell{Policy: kind, Scenario: sc, Size: size})
			}
		}
	}
	res, err := engine.Map(ctx, cfg.Workers, len(cells), func(ctx context.Context, i int) (EquivResult, error) {
		if err := ctx.Err(); err != nil {
			return EquivResult{}, err
		}
		return RunEquivCell(cells[i], cfg)
	})
	if err != nil {
		return nil, err
	}
	return &EquivMatrixResult{Results: res}, nil
}

// Run executes the sweep with a background context.
func (m EquivMatrix) Run() (*EquivMatrixResult, error) {
	return m.RunContext(context.Background())
}

// Failures returns the cells whose cohort diverged from the expanded
// population.
func (r *EquivMatrixResult) Failures() []EquivResult {
	var out []EquivResult
	for _, c := range r.Results {
		if !c.OK() {
			out = append(out, c)
		}
	}
	return out
}

// Err returns nil when every cell was exact, otherwise an error naming
// the diverging cells.
func (r *EquivMatrixResult) Err() error {
	fails := r.Failures()
	if len(fails) == 0 {
		return nil
	}
	names := make([]string, len(fails))
	for i, f := range fails {
		names[i] = fmt.Sprintf("%v (%s)", f.Cell, f.Mismatch)
	}
	return fmt.Errorf("check: %d/%d equivalence cells diverged: %v", len(fails), len(r.Results), names)
}
