package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/dot11"
)

// This file reads and writes traces in two interchange formats so that
// real captures (e.g. tshark exports) can replace the synthetic
// generators without touching any downstream code:
//
//   - CSV with header "at_us,length,rate_bps,dst_port,more_data"
//   - JSON lines, one Frame object per line, preceded by a header line
//     carrying the trace name and duration.

// csvHeader is the required column layout.
var csvHeader = []string{"at_us", "length", "rate_bps", "dst_port", "more_data"}

// WriteCSV writes the trace in CSV form. The trace name and duration
// ride in a "#name=...;duration_us=..." comment line before the header.
func WriteCSV(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#name=%s;duration_us=%d\n", tr.Name, tr.Duration.Microseconds())
	cw := csv.NewWriter(bw)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	rec := make([]string, 5)
	for _, f := range tr.Frames {
		rec[0] = strconv.FormatInt(f.At.Microseconds(), 10)
		rec[1] = strconv.Itoa(f.Length)
		rec[2] = strconv.FormatFloat(float64(f.Rate), 'f', -1, 64)
		rec[3] = strconv.Itoa(int(f.DstPort))
		rec[4] = strconv.FormatBool(f.MoreData)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	tr := &Trace{}
	first, err := br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV preamble: %w", err)
	}
	if len(first) > 0 && first[0] == '#' {
		if _, err := fmt.Sscanf(first, "#name=%s", &tr.Name); err == nil {
			// Name may embed the duration segment; split it out.
			for i := range tr.Name {
				if tr.Name[i] == ';' {
					var durUS int64
					if _, err := fmt.Sscanf(tr.Name[i:], ";duration_us=%d", &durUS); err == nil {
						tr.Duration = time.Duration(durUS) * time.Microsecond
					}
					tr.Name = tr.Name[:i]
					break
				}
			}
		}
	} else {
		return nil, fmt.Errorf("trace: CSV missing #name preamble")
	}
	cr := csv.NewReader(br)
	cr.FieldsPerRecord = len(csvHeader)
	hdr, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	for i, h := range csvHeader {
		if hdr[i] != h {
			return nil, fmt.Errorf("trace: CSV column %d is %q, want %q", i, hdr[i], h)
		}
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: reading CSV record: %w", err)
		}
		f, err := parseCSVRecord(rec)
		if err != nil {
			return nil, err
		}
		tr.Frames = append(tr.Frames, f)
	}
	if tr.Duration == 0 && len(tr.Frames) > 0 {
		tr.Duration = tr.Frames[len(tr.Frames)-1].At + time.Second
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// parseCSVRecord converts one CSV record into a Frame.
func parseCSVRecord(rec []string) (Frame, error) {
	var f Frame
	atUS, err := strconv.ParseInt(rec[0], 10, 64)
	if err != nil {
		return f, fmt.Errorf("trace: bad at_us %q: %w", rec[0], err)
	}
	f.At = time.Duration(atUS) * time.Microsecond
	if f.Length, err = strconv.Atoi(rec[1]); err != nil {
		return f, fmt.Errorf("trace: bad length %q: %w", rec[1], err)
	}
	rate, err := strconv.ParseFloat(rec[2], 64)
	if err != nil {
		return f, fmt.Errorf("trace: bad rate_bps %q: %w", rec[2], err)
	}
	f.Rate = dot11.Rate(rate)
	port, err := strconv.Atoi(rec[3])
	if err != nil || port < 0 || port > 65535 {
		return f, fmt.Errorf("trace: bad dst_port %q", rec[3])
	}
	f.DstPort = uint16(port)
	if f.MoreData, err = strconv.ParseBool(rec[4]); err != nil {
		return f, fmt.Errorf("trace: bad more_data %q: %w", rec[4], err)
	}
	return f, nil
}

// jsonlHeader is the first line of a JSONL trace file.
type jsonlHeader struct {
	Name       string `json:"name"`
	DurationUS int64  `json:"duration_us"`
	Frames     int    `json:"frames"`
}

// jsonlFrame is the wire form of a Frame in JSONL traces.
type jsonlFrame struct {
	AtUS     int64   `json:"at_us"`
	Length   int     `json:"length"`
	RateBPS  float64 `json:"rate_bps"`
	DstPort  uint16  `json:"dst_port"`
	MoreData bool    `json:"more_data,omitempty"`
}

// WriteJSONL writes the trace as JSON lines.
func WriteJSONL(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(jsonlHeader{Name: tr.Name, DurationUS: tr.Duration.Microseconds(), Frames: len(tr.Frames)}); err != nil {
		return err
	}
	for _, f := range tr.Frames {
		jf := jsonlFrame{
			AtUS: f.At.Microseconds(), Length: f.Length,
			RateBPS: float64(f.Rate), DstPort: f.DstPort, MoreData: f.MoreData,
		}
		if err := enc.Encode(jf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a trace written by WriteJSONL.
func ReadJSONL(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr jsonlHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: reading JSONL header: %w", err)
	}
	tr := &Trace{Name: hdr.Name, Duration: time.Duration(hdr.DurationUS) * time.Microsecond}
	for {
		var jf jsonlFrame
		if err := dec.Decode(&jf); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("trace: reading JSONL frame: %w", err)
		}
		tr.Frames = append(tr.Frames, Frame{
			At: time.Duration(jf.AtUS) * time.Microsecond, Length: jf.Length,
			Rate: dot11.Rate(jf.RateBPS), DstPort: jf.DstPort, MoreData: jf.MoreData,
		})
	}
	if hdr.Frames != len(tr.Frames) {
		return nil, fmt.Errorf("trace: JSONL header declares %d frames, read %d", hdr.Frames, len(tr.Frames))
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
