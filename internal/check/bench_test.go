package check

import (
	"context"
	"fmt"
	"testing"
)

// BenchmarkOracleWorkers measures the 90-cell differential-oracle grid
// (truncated to the test duration) at 1, 2, and 4 workers and at
// GOMAXPROCS, the scaling half of the crosscheck acceptance story. On
// a single-CPU host the variants collapse to sequential throughput.
func BenchmarkOracleWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 0} {
		name := "workers=gomaxprocs"
		if workers > 0 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			m := DefaultMatrix()
			m.Config.Duration = testOracleDuration
			m.Config.Workers = workers
			for i := 0; i < b.N; i++ {
				res, err := m.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Err(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
