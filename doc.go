// Package hide is a from-scratch Go reproduction of the HIDE system
// from "HIDE: AP-assisted Broadcast Traffic Management to Save
// Smartphone Energy" (Peng, Zhou, Nguyen, Qi, Lin — ICDCS 2016).
//
// HIDE reduces smartphone energy wasted on useless WiFi broadcast
// traffic by filtering at the access point: clients report their open
// UDP ports to the AP in a new management frame (the UDP Port
// Message), the AP decides per client which buffered broadcast frames
// are useful (Algorithm 1 over the Client UDP Port Table), and a new
// per-client Broadcast Traffic Indication Map (BTIM) beacon element
// hides useless broadcast frames from suspended clients — so they
// neither receive them nor wake up to process them.
//
// The package exposes three layers:
//
//   - A trace-driven evaluation pipeline reproducing the paper's energy
//     study (Figures 7-9): synthetic broadcast traces calibrated to the
//     paper's five real-world scenarios, the Section IV energy model
//     with the published Nexus One / Galaxy S4 power profiles, and the
//     three compared solutions (receive-all, the client-side driver
//     filter's lower bound, and HIDE).
//
//   - A protocol-level simulation: an 802.11 AP and stations exchanging
//     real marshalled frames (beacons with TIM/BTIM elements, UDP Port
//     Messages with ACK-gated retransmission, PS-Polls, UDP-padded
//     broadcast data) over an emulated channel with a virtual clock.
//
//   - The Section V overhead analyses: network capacity via Bianchi's
//     DCF saturation-throughput model (Figure 10) and packet delay via
//     the Client UDP Port Table operation costs (Figures 11-12).
//
// Quick start:
//
//	tr, _ := hide.GenerateTrace(hide.Starbucks)
//	cmp, _ := hide.CompareEnergy(tr, hide.NexusOne)
//	fmt.Printf("receive-all %.1f mW, HIDE:10%% %.1f mW (saves %.0f%%)\n",
//		cmp.ReceiveAll.AvgPowerMW(), cmp.HIDE[0].AvgPowerMW(), 100*cmp.Savings(0))
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package hide
