// Package fixture is the framemut canary: a station-style receive
// path that mutates the delivered frame buffer in one place. The
// canary test asserts exactly ONE diagnostic, at the marked line —
// proving the analyzer has teeth and aims them precisely.
package fixture

import "time"

type station struct{ seen int }

// Receive normalizes the frame in place — the exact bug class the
// copy-free fan-out forbids: every later receiver in the fan-out
// would see the "normalized" bytes.
func (s *station) Receive(raw []byte, rate int, at time.Duration) {
	s.seen++
	if len(raw) < 24 {
		return
	}
	kind := raw[0] & 0x0c
	if kind == 0x08 {
		raw[1] &^= 0x10 // CANARY: clears the power-mgmt bit in the shared buffer
	}
}
