// Package cli holds the small shared plumbing of the cmd/* binaries:
// signal-driven cancellation and the common parallelism flags, so
// every command cancels cleanly on Ctrl-C and exposes the same
// -parallel/-j knobs over the evaluation engine.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled on SIGINT or SIGTERM. The
// second signal kills the process immediately (the stdlib stops
// catching once the context is cancelled), so a wedged run can still
// be interrupted.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WorkersFlag registers the -parallel worker-count flag with its -j
// shorthand on the default flag set and returns the bound value. 0
// (the default) selects GOMAXPROCS; 1 forces the sequential path.
func WorkersFlag() *int {
	j := flag.Int("parallel", 0, "evaluation worker count (0 = GOMAXPROCS, 1 = sequential)")
	flag.IntVar(j, "j", 0, "shorthand for -parallel")
	return j
}

// CodeConnLost is the exit code for a client daemon whose connection
// to the AP died with reconnection disabled — distinct from generic
// failure (1), usage mistakes (2), and interruption (130) so process
// supervisors can restart-on-disconnect without also restarting on
// misconfiguration.
const CodeConnLost = 3

// Exit prints err the conventional way and exits non-zero, using exit
// code 130 for an interrupt (the shell convention for SIGINT) so
// cancellation is distinguishable from failure.
func Exit(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	if errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}

// ExitCode prints err and exits with the given code — for failures
// that carry a dedicated code (e.g. CodeConnLost).
func ExitCode(prog string, code int, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(code)
}

// Abort exits through Exit when ctx has been cancelled; otherwise it
// is a no-op. Short analytic loops call it between sweep points so
// every binary honours Ctrl-C the same way.
func Abort(ctx context.Context, prog string) {
	if err := ctx.Err(); err != nil {
		Exit(prog, err)
	}
}

// Usagef prints a usage-level complaint (bad flag value, unknown
// scenario, malformed argument) and exits 2, the flag package's
// convention for command-line mistakes.
func Usagef(prog, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", prog, fmt.Sprintf(format, args...))
	os.Exit(2)
}
