package main

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// TestTreeClean locks in a lint-clean tree: hidelint over the whole
// module must report nothing, so any new violation fails the build
// here as well as in the CI lint step.
func TestTreeClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(&buf, "../..", "", "text", []string{"./..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("tree has %d finding(s):\n%s", n, buf.String())
	}
}

// TestFixtureFindings drives the CLI seam over a known-bad fixture
// package and expects a non-zero finding count, the condition under
// which main exits non-zero.
func TestFixtureFindings(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(&buf, "../..", "errdrop", "text", []string{"./internal/lint/testdata/src/errdrop"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n == 0 {
		t.Fatal("bad fixture produced no findings")
	}
	if out := buf.String(); !strings.Contains(out, "(errdrop)") {
		t.Errorf("diagnostics missing check name:\n%s", out)
	}
}

// TestJSONFormat decodes every emitted line back into the wire shape:
// one object per finding with check, position, and message populated.
func TestJSONFormat(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(&buf, "../..", "errdrop", "json", []string{"./internal/lint/testdata/src/errdrop"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != n {
		t.Fatalf("got %d JSON lines for %d findings:\n%s", len(lines), n, buf.String())
	}
	for _, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("bad JSON line %q: %v", line, err)
		}
		if f.Check != "errdrop" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

// TestGitHubFormat checks the workflow-command shape GitHub parses
// into inline PR annotations.
func TestGitHubFormat(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(&buf, "../..", "errdrop", "github", []string{"./internal/lint/testdata/src/errdrop"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n == 0 {
		t.Fatal("bad fixture produced no findings")
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.HasPrefix(line, "::error file=") || !strings.Contains(line, "title=hidelint/errdrop::") {
			t.Errorf("malformed annotation: %q", line)
		}
	}
}

// TestUnknownFormat exercises the format-validation path.
func TestUnknownFormat(t *testing.T) {
	if _, err := run(io.Discard, "../..", "", "yaml", []string{"./..."}); err == nil {
		t.Fatal("unknown format accepted, want error")
	}
}

// TestUnknownCheck exercises the usage-error path.
func TestUnknownCheck(t *testing.T) {
	if _, err := run(io.Discard, "../..", "nope", "text", []string{"./..."}); err == nil {
		t.Fatal("unknown check accepted, want error")
	}
}
