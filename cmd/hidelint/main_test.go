package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestTreeClean locks in a lint-clean tree: hidelint over the whole
// module must report nothing, so any new violation fails the build
// here as well as in the CI lint step.
func TestTreeClean(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(&buf, "../..", "", []string{"./..."})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Fatalf("tree has %d finding(s):\n%s", n, buf.String())
	}
}

// TestFixtureFindings drives the CLI seam over a known-bad fixture
// package and expects a non-zero finding count, the condition under
// which main exits non-zero.
func TestFixtureFindings(t *testing.T) {
	var buf bytes.Buffer
	n, err := run(&buf, "../..", "errdrop", []string{"./internal/lint/testdata/src/errdrop"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n == 0 {
		t.Fatal("bad fixture produced no findings")
	}
	if out := buf.String(); !strings.Contains(out, "(errdrop)") {
		t.Errorf("diagnostics missing check name:\n%s", out)
	}
}

// TestUnknownCheck exercises the usage-error path.
func TestUnknownCheck(t *testing.T) {
	if _, err := run(io.Discard, "../..", "nope", []string{"./..."}); err == nil {
		t.Fatal("unknown check accepted, want error")
	}
}
