// Command hidelint runs the repo's static-analysis suite: the
// syntactic checks (determinism, ctxfirst, exitpath, elemconst,
// errdrop) plus the flow-aware checks (framemut, rngdraw, gojoin,
// poolbalance) that machine-check the engine's byte-identity
// guarantee, the immutable shared-frame contract, the seeded-stream
// draw discipline, the barrier-window join rule, and pool/free-list
// balance across the tree.
//
// Diagnostics print vet-style (file:line:col: message (check)) and a
// non-zero exit reports findings, so it slots into CI after go vet.
// Suppress a single finding with a justified directive:
//
//	//lint:ignore <check> <reason>
//
// Usage:
//
//	hidelint [-checks determinism,errdrop] [-root dir] [-json] [-format text|github] [pattern ...]
//
// -json emits one JSON object per finding on its own line; -format
// github emits ::error workflow-command annotations that GitHub
// renders inline on pull requests. Patterns follow go tool
// conventions: ./... (default), ./dir/..., or ./dir.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	checks := flag.String("checks", "", "comma-separated checks to run (default all)")
	root := flag.String("root", ".", "module root directory (holding go.mod)")
	jsonOut := flag.Bool("json", false, "emit one JSON object per finding")
	format := flag.String("format", "text", "output format: text or github")
	flag.Parse()

	if *jsonOut {
		*format = "json"
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	n, err := run(os.Stdout, *root, *checks, *format, patterns)
	if err != nil {
		cli.Usagef("hidelint", "%v", err)
	}
	if n > 0 {
		cli.Exit("hidelint", fmt.Errorf("%d finding(s)", n))
	}
}

// jsonFinding is the -json wire shape: one object per finding, stable
// field names so CI scripts can jq without guessing.
type jsonFinding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// run loads the patterns under root, applies the selected analyzers,
// prints diagnostics to w in the chosen format, and returns the
// finding count. It is the whole CLI minus process exit, so tests can
// drive it directly.
func run(w io.Writer, root, checks, format string, patterns []string) (int, error) {
	emit, err := emitter(w, format)
	if err != nil {
		return 0, err
	}
	analyzers, err := lint.ByName(checks)
	if err != nil {
		return 0, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return 0, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return 0, err
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		if err := emit(d); err != nil {
			return 0, err
		}
	}
	return len(diags), nil
}

// emitter returns the per-diagnostic printer for a format, rejecting
// unknown names before any loading work happens.
func emitter(w io.Writer, format string) (func(lint.Diagnostic) error, error) {
	switch format {
	case "text":
		return func(d lint.Diagnostic) error {
			_, err := fmt.Fprintln(w, d)
			return err
		}, nil
	case "json":
		enc := json.NewEncoder(w)
		return func(d lint.Diagnostic) error {
			return enc.Encode(jsonFinding{
				Check:   d.Check,
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Message: d.Message,
			})
		}, nil
	case "github":
		// GitHub workflow commands render these as inline PR
		// annotations; %0A etc. escaping is unnecessary because
		// diagnostics are single-line by construction.
		return func(d lint.Diagnostic) error {
			_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=hidelint/%s::%s\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
			return err
		}, nil
	default:
		return nil, fmt.Errorf("unknown -format %q (want text, json, or github)", format)
	}
}
