package lint

import (
	"go/ast"
	"go/types"
)

// FrameMut protects the copy-free fan-out: since the hot-path overhaul
// the medium makes exactly ONE copy of each transmitted frame and every
// receiver shares that buffer immutably — corruption under a fault plan
// clones first (append([]byte(nil), raw...)), and nothing else may
// write. A single stray raw[i] = x in one station's receive path would
// silently garble the frame every LATER receiver in the fan-out sees,
// breaking byte-identity in a way pointwise tests rarely catch. This
// analyzer runs a may-alias dataflow over each function that handles a
// delivered frame and flags writes through any slice that may still
// alias it.
var FrameMut = &Analyzer{
	Name: "framemut",
	Doc: "delivered frame buffers are shared and immutable: in medium.Node " +
		"Receive/ReceiveAs implementations and throughout internal/medium, no write " +
		"(element store, copy dst) may go through a byte slice that may alias the " +
		"frame parameter; clone first with append([]byte(nil), b...)",
	Run: runFrameMut,
}

func runFrameMut(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			params := frameParams(p, fn)
			if len(params) == 0 {
				continue
			}
			checkFrameWrites(p, fn, params)
		}
	}
	return nil
}

// frameParams returns the parameters of fn that hold a delivered (or
// injected) frame buffer: the []byte parameter of a Receive/ReceiveAs
// method matching the medium.Node shape anywhere in the tree, and —
// inside internal/medium itself, where every byte slice in flight is
// the shared injection copy — any []byte parameter of any function.
func frameParams(p *Pass, fn *ast.FuncDecl) []types.Object {
	inMedium := p.RelPath() == "internal/medium"
	isReceive := fn.Recv != nil && (fn.Name.Name == "Receive" || fn.Name.Name == "ReceiveAs")
	if !inMedium && !isReceive {
		return nil
	}
	var out []types.Object
	for _, field := range fn.Type.Params.List {
		if !isByteSlice(p.TypesInfo.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if obj := p.TypesInfo.Defs[name]; obj != nil && name.Name != "_" {
				out = append(out, obj)
			}
		}
	}
	return out
}

// isByteSlice reports whether t is []byte (or a named slice-of-byte).
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// checkFrameWrites runs the may-alias flow from the frame parameters
// and reports element stores and copy-destinations through aliases.
func checkFrameWrites(p *Pass, fn *ast.FuncDecl, params []types.Object) {
	g := buildCFG(fn.Body, p.TypesInfo)
	fa := &flowAnalysis{info: p.TypesInfo, carries: aliasCarrier(p.TypesInfo)}
	seed := factSet{}
	for _, obj := range params {
		seed[obj] = true
	}
	in := fa.solve(g, seed)
	for _, b := range g.blocks {
		facts := in[b.index].clone()
		for _, s := range b.stmts {
			checkFrameStmt(p, fa, s, facts)
			fa.stepStmt(s, facts)
		}
	}
}

// checkFrameStmt reports frame-mutating writes in one statement, given
// the alias facts in force just before it.
func checkFrameStmt(p *Pass, fa *flowAnalysis, s ast.Stmt, facts factSet) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, l := range s.Lhs {
			if base, ok := indexedBase(l); ok && fa.carries(base, facts) {
				p.Reportf(l.Pos(), "write into a byte slice that may alias the delivered frame; shared frame buffers are immutable — clone first (append([]byte(nil), b...))")
			}
		}
		for _, r := range s.Rhs {
			checkFrameCopy(p, fa, r, facts)
		}
	case *ast.IncDecStmt:
		if base, ok := indexedBase(s.X); ok && fa.carries(base, facts) {
			p.Reportf(s.X.Pos(), "write into a byte slice that may alias the delivered frame; shared frame buffers are immutable — clone first (append([]byte(nil), b...))")
		}
	default:
		for _, n := range evaluatedNodes(s) {
			ast.Inspect(n, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					checkFrameCopyCall(p, fa, call, facts)
				}
				return true
			})
		}
	}
}

// checkFrameCopy scans an expression for copy calls targeting an
// aliasing slice.
func checkFrameCopy(p *Pass, fa *flowAnalysis, e ast.Expr, facts factSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkFrameCopyCall(p, fa, call, facts)
		}
		return true
	})
}

// checkFrameCopyCall flags copy(dst, ...) where dst may alias a frame.
func checkFrameCopyCall(p *Pass, fa *flowAnalysis, call *ast.CallExpr, facts factSet) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "copy" || !isBuiltin(p.TypesInfo, id) || len(call.Args) != 2 {
		return
	}
	if fa.carries(call.Args[0], facts) {
		p.Reportf(call.Pos(), "copy into a byte slice that may alias the delivered frame; shared frame buffers are immutable — clone first (append([]byte(nil), b...))")
	}
}

// indexedBase unwraps x[i] (through parens and sub-slices) to the
// slice being stored into, reporting ok when l is an element store.
func indexedBase(l ast.Expr) (ast.Expr, bool) {
	ix, ok := ast.Unparen(l).(*ast.IndexExpr)
	if !ok {
		return nil, false
	}
	return ix.X, true
}
