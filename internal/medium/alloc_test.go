package medium

import (
	"testing"

	"repro/internal/dot11"
)

// These tests pin the medium's allocation budget. One transmission costs
// exactly one allocation — the single injection copy that makes the
// in-flight frame immutable — regardless of how many subscribers the
// fan-out reaches. The old medium paid one frame clone per receiver plus
// a closure and a map walk; a regression toward any of those fails here.

// TestAllocBudgetBroadcastFanout: one group-addressed transmission to 16
// subscribers = 1 alloc (the injection copy), not 16.
func TestAllocBudgetBroadcastFanout(t *testing.T) {
	eng, m, src := benchMedium(16)
	frame := benchFrame(dot11.Broadcast, src)
	// Warm the pending-transmission pool.
	for i := 0; i < 8; i++ {
		m.Transmit(src, frame, dot11.Rate11Mbps)
		eng.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Transmit(src, frame, dot11.Rate11Mbps)
		eng.Step()
	})
	if allocs > 1 {
		t.Fatalf("broadcast fan-out: %.1f allocs/op, want <= 1 (injection copy only)", allocs)
	}
}

// TestAllocBudgetUnicastDelivery: one unicast transmission among 16
// attached nodes = 1 alloc, with no per-delivery map lookup loop.
func TestAllocBudgetUnicastDelivery(t *testing.T) {
	eng, m, src := benchMedium(16)
	dst := dot11.MACAddr{0x02, 0, 0, 0, 1, 3}
	frame := benchFrame(dst, src)
	for i := 0; i < 8; i++ {
		m.Transmit(src, frame, dot11.Rate11Mbps)
		eng.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Transmit(src, frame, dot11.Rate11Mbps)
		eng.Step()
	})
	if allocs > 1 {
		t.Fatalf("unicast delivery: %.1f allocs/op, want <= 1 (injection copy only)", allocs)
	}
}
