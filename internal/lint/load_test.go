package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module under t.TempDir: files maps
// module-relative paths to contents, and a go.mod naming the module
// is added automatically.
func writeModule(t *testing.T, module string, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module " + module + "\n\ngo 1.22\n"
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadImportCycle pins the loader's cycle detection: two packages
// importing each other must fail with a named cycle, not recurse
// until the stack gives out.
func TestLoadImportCycle(t *testing.T) {
	root := writeModule(t, "cyc", map[string]string{
		"a/a.go": "package a\n\nimport \"cyc/b\"\n\nconst A = b.B\n",
		"b/b.go": "package b\n\nimport \"cyc/a\"\n\nconst B = a.A\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	_, err = loader.Load("./a")
	if err == nil || !strings.Contains(err.Error(), "import cycle through") {
		t.Fatalf("Load on a cyclic module = %v, want an import-cycle error", err)
	}
}

// TestLoadBuildTagExcluded pins constraint filtering: files excluded
// by //go:build lines or GOOS suffixes carry declarations that would
// break the type-check if the loader parsed them anyway.
func TestLoadBuildTagExcluded(t *testing.T) {
	root := writeModule(t, "tagged", map[string]string{
		"p/good.go": "package p\n\nconst A = 1\n",
		// Both excluded files redeclare A, so including either one is a
		// type error — the load only succeeds if filtering works.
		"p/ignored.go":   "//go:build ignore\n\npackage p\n\nconst A = 2\n",
		"p/p_plan9.go":   "package p\n\nconst A = 3\n",
		"p/otherpkg.go":  "//go:build someexoticarch\n\npackage q\n",
		"p/notgo.go.txt": "not go at all",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load("./p")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("got %d packages / %d files, want exactly the unconstrained file", len(pkgs), len(pkgs[0].Files))
	}
	name := pkgs[0].Fset.Position(pkgs[0].Files[0].Pos()).Filename
	if filepath.Base(name) != "good.go" {
		t.Errorf("loaded %s, want good.go", name)
	}
}

// TestLoadModuleRoot pins loading a package that lives at the module
// root: its import path is the bare module path, and both the "."
// pattern and the "./..." walk must find it.
func TestLoadModuleRoot(t *testing.T) {
	root := writeModule(t, "example.com/rootpkg", map[string]string{
		"root.go":    "package rootpkg\n\nimport \"example.com/rootpkg/sub\"\n\nconst R = sub.S\n",
		"sub/sub.go": "package sub\n\nconst S = 7\n",
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := loader.Load(".")
	if err != nil {
		t.Fatalf("Load(.): %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "example.com/rootpkg" {
		t.Fatalf("Load(.) = %v, want the bare module path", pkgs)
	}
	all, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("Load(./...): %v", err)
	}
	var paths []string
	for _, p := range all {
		paths = append(paths, p.Path)
	}
	if got := strings.Join(paths, ","); got != "example.com/rootpkg,example.com/rootpkg/sub" {
		t.Errorf("Load(./...) = %s, want root and sub packages", got)
	}
}

// TestNewLoaderNoModule pins the error when root has no go.mod.
func TestNewLoaderNoModule(t *testing.T) {
	if _, err := NewLoader(t.TempDir()); err == nil {
		t.Fatal("NewLoader on a bare directory succeeded, want error")
	}
}
