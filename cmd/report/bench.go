package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/ap"
	chk "repro/internal/check"
	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/lint"
	"repro/internal/medium"
	"repro/internal/sim"
)

// Bench mode runs the repository's headline benchmarks — the hot paths
// the pooled scheduler, copy-free medium, and incremental beacon encoder
// optimize, plus the sharded multi-AP ESS — through testing.Benchmark
// with allocation reporting, and records ns/op, B/op, and allocs/op as
// JSON. The committed BENCH_9.json is the performance trajectory: CI
// re-runs this mode and prints an informational comparison, so a
// regression shows up in the job log without flaking the build on
// machine variance.

// BenchRecord is one benchmark's measurement.
type BenchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
}

// BenchFile is the JSON document bench mode writes. GOMAXPROCS and
// NumCPU are recorded from the live runtime, never assumed: the
// parallel headlines only demonstrate speedup on a multi-core runner,
// and the committed record must say honestly what kind of host
// produced it (a single-core host runs the parallel mode correctly —
// the determinism gate does not care — but serializes its workers).
type BenchFile struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []BenchRecord `json:"benchmarks"`
}

// runBench executes the headline benchmarks, writes the JSON record to
// out, and (when baseline names a previous record) prints a comparison.
func runBench(out, baseline string) {
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"RunSuite/NexusOne", benchRunSuite},
		{"OracleGrid/5min", benchOracleGrid},
		{"ChaosCell/beacon-drops", benchChaosCell},
		{"BeaconEncode/IdleDTIM", benchBeaconEncode},
		{"MediumFanout/16", benchMediumFanout},
		{"Stations/1M", benchStationsMillion},
		{"Stations/1M/parallel", benchStationsMillionParallel},
		{"ESS/K=8/roam", benchESSRoam},
		{"Lint/tree", benchLintTree},
	}

	file := BenchFile{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "bench: %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		rec := BenchRecord{
			Name:        bm.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			Iterations:  r.N,
		}
		file.Benchmarks = append(file.Benchmarks, rec)
		fmt.Fprintf(os.Stderr, "bench: %s\t%d iters\t%.1f ns/op\t%d B/op\t%d allocs/op\n",
			bm.name, rec.Iterations, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}

	buf, err := json.MarshalIndent(file, "", "  ")
	check(err)
	buf = append(buf, '\n')
	check(os.WriteFile(out, buf, 0o644))
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", out)

	if baseline != "" {
		compareBench(baseline, file)
	}
}

// compareBench prints an informational benchstat-style delta table
// between a recorded baseline file and the fresh run. It never fails
// the process: absolute timings vary across machines, so the numbers
// are for reading, not gating.
func compareBench(path string, cur BenchFile) {
	raw, err := os.ReadFile(path)
	check(err)
	var base BenchFile
	check(json.Unmarshal(raw, &base))
	byName := make(map[string]BenchRecord, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		byName[r.Name] = r
	}

	fmt.Printf("benchmark comparison vs %s (informational)\n", path)
	fmt.Printf("%-26s %14s %14s %8s %12s %12s %8s\n",
		"name", "base ns/op", "cur ns/op", "Δns", "base allocs", "cur allocs", "Δallocs")
	for _, c := range cur.Benchmarks {
		b, ok := byName[c.Name]
		if !ok {
			fmt.Printf("%-26s %14s %14.1f %8s %12s %12d %8s\n",
				c.Name, "—", c.NsPerOp, "new", "—", c.AllocsPerOp, "new")
			continue
		}
		fmt.Printf("%-26s %14.1f %14.1f %+7.1f%% %12d %12d %+7.1f%%\n",
			c.Name, b.NsPerOp, c.NsPerOp, delta(b.NsPerOp, c.NsPerOp),
			b.AllocsPerOp, c.AllocsPerOp,
			delta(float64(b.AllocsPerOp), float64(c.AllocsPerOp)))
	}
}

// delta returns the percentage change from base to cur.
func delta(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

// benchTrajectory renders the committed BENCH_9.json record as a
// markdown section of the report. Silently skipped when the file is
// absent (the report is normally regenerated from the repo root).
func benchTrajectory() {
	raw, err := os.ReadFile("BENCH_9.json")
	if err != nil {
		return
	}
	var f BenchFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return
	}
	fmt.Println()
	fmt.Println("### Hot-path benchmark trajectory (committed BENCH_9.json)")
	fmt.Println()
	fmt.Printf("Recorded with `go run ./cmd/report -bench` on %s/%s, GOMAXPROCS %d, %d CPU(s), %s:\n",
		f.GOOS, f.GOARCH, f.GOMAXPROCS, f.NumCPU, f.GoVersion)
	fmt.Println()
	fmt.Println("| benchmark | ns/op | B/op | allocs/op |")
	fmt.Println("|---|---|---|---|")
	for _, r := range f.Benchmarks {
		fmt.Printf("| %s | %.0f | %d | %d |\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Println()
	fmt.Println("Against the pre-overhaul code on the same host, the pooled event")
	fmt.Println("scheduler, copy-free medium fan-out, incremental beacon encoder, and")
	fmt.Println("per-worker scratch reuse cut the figure suite from 39.3 ms / 32.2 MB /")
	fmt.Println("1670 allocs per run to ~20 ms / 45 KB / 244 allocs (−48% time, −85%")
	fmt.Println("allocations), the oracle grid from 765 ms / 3.49 M allocs to ~570 ms /")
	fmt.Println("1.91 M (−26% / −45%), one idle DTIM beacon from 1189 ns / 14 allocs to")
	fmt.Println("~260 ns / 1 alloc, and a 16-subscriber broadcast fan-out from 672 ns /")
	fmt.Println("3 allocs to ~310 ns / 1 alloc — with byte-identical simulation output")
	fmt.Println("(golden figures, chaos fingerprints, and beacon byte streams are all")
	fmt.Println("asserted unchanged). Stations/1M replays a 2-minute trace against 10⁶")
	fmt.Println("modeled HIDE clients via cohort stations (internal/station) — exact")
	fmt.Println("within the AID space per the internal/check equivalence suite, the")
	fmt.Println("aggregate what-if regime past it (DESIGN.md §9).")
	fmt.Println()
	fmt.Println("Stations/1M/parallel is the same workload through the windowed-parallel")
	fmt.Println("assembly (DESIGN.md §13) at four window workers: cohort blocks advance")
	fmt.Println("through one DTIM window each on their own goroutines and AP-side")
	fmt.Println("effects merge serially at the barrier, with output byte-identical to")
	fmt.Println("one worker (the windowed equivalence suite in internal/check). The")
	fmt.Println("speedup claim — ≥1.5× under the serial Stations/1M figure at 4 workers")
	fmt.Println("— applies on a multi-core runner; the recorded num_cpu above says what")
	fmt.Println("this host could exploit, and on a single-core host the workers")
	fmt.Println("serialize so the two headlines coincide up to windowing overhead.")
	fmt.Println("Inspect worker utilization with `go run ./cmd/report -bench -trace")
	fmt.Println("w.out` and `go tool trace w.out`.")
	fmt.Println()
	fmt.Println("ESS/K=8/roam is the sharded multi-AP headline: an 8-AP extended")
	fmt.Println("service set with 64 roaming HIDE stations and replicated port-table")
	fmt.Println("handoffs, one goroutine per shard with barrier-merged cross-AP")
	fmt.Println("effects — byte-identical for any worker count (DESIGN.md §10).")
	fmt.Println("Lint/tree is the cost of the static-analysis gate itself: a")
	fmt.Println("whole-module hidelint run (walk, parse, type-check, and all nine")
	fmt.Println("analyzers including the flow-aware CFG passes — DESIGN.md §11), so")
	fmt.Println("analyzer growth shows up in the same table as the simulation hot")
	fmt.Println("paths. CI's bench-smoke job re-runs this mode against the committed")
	fmt.Println("record as an informational comparison (and against the prior")
	fmt.Println("BENCH_8.json point).")
	fmt.Println()
	fmt.Println("Regenerate: `go run ./cmd/report -bench`; compare:")
	fmt.Println("`go run ./cmd/report -bench -benchout /tmp/b.json -baseline BENCH_9.json`.")
}

// benchRunSuite measures the full figure-suite evaluation for one
// device — the pipeline behind Figures 7 and 9.
func benchRunSuite(b *testing.B) {
	// Warm the shared trace cache so the measurement prices evaluation,
	// not one-time trace generation.
	_, err := hide.RunSuiteContext(ctx, hide.NexusOne, hide.Options{Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hide.RunSuiteContext(ctx, hide.NexusOne, hide.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchOracleGrid measures the 90-cell differential oracle on 5-minute
// traces — the analytic-vs-protocol comparison grid.
func benchOracleGrid(b *testing.B) {
	m := chk.DefaultMatrix()
	m.Config.Duration = 5 * time.Minute
	m.Config.Workers = workers
	if _, err := m.RunContext(ctx); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.RunContext(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// benchChaosCell measures one fault scenario of the chaos grid —
// beacon-drops over both chaos traces with the full invariant checks.
func benchChaosCell(b *testing.B) {
	scs, err := chk.ScenariosByName("beacon-drops")
	if err != nil {
		b.Fatal(err)
	}
	cfg := chk.ChaosConfig{Scenarios: scs, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := chk.RunChaosGrid(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := chk.ChaosErr(res); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBeaconEncode measures one idle DTIM beacon on a HIDE AP with 20
// registered clients — the recurring per-beacon cost the incremental
// encoder keeps allocation-free.
func benchBeaconEncode(b *testing.B) {
	eng := sim.New()
	med := medium.New(eng, dot11.DefaultPHY(), 1)
	a := ap.New(eng, med, ap.Config{
		BSSID:      dot11.MACAddr{0x02, 0x1d, 0xe0, 0, 0, 1},
		SSID:       "bench",
		HIDE:       true,
		DTIMPeriod: 1,
	})
	for i := 0; i < 20; i++ {
		aid, err := a.Associate(dot11.MACAddr{0x02, 0x1d, 0xe0, 0, 1, byte(i)}, true)
		if err != nil {
			b.Fatal(err)
		}
		a.Table().Update(aid, []uint16{5353, uint16(6000 + i)})
	}
	a.Start()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunUntil(time.Duration(i+1) * dot11.DefaultBeaconInterval)
	}
}

// benchStationsMillion measures the client-population scaling
// experiment at one million HIDE stations — the cohort-station
// headline. Each port class is folded into a single CohortStation
// (Options.Cohort saturates the class size), so the protocol
// simulation replays the 2-minute WRL trace against 10⁶ modeled
// clients in one op. Within the AID space cohorts are proven exact by
// the equivalence suite in internal/check; past it they run in the
// aggregate what-if regime (DESIGN.md §9).
func benchStationsMillion(b *testing.B) {
	cfg := hide.ScenarioConfig(hide.WRL)
	cfg.Duration = 2 * time.Minute
	tr, err := hide.GenerateTraceConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.ScaleClientsOptions(tr, hide.NexusOne, []int{1_000_000}, core.Options{Cohort: 1 << 30})
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].N != 1_000_000 {
			b.Fatalf("scaled %d clients, want 1000000", pts[0].N)
		}
	}
}

// benchStationsMillionParallel is the same 10⁶-client workload run
// through the windowed-parallel assembly (core.WindowedNetwork,
// DESIGN.md §13) at four window workers: each cohort block advances
// through one DTIM window on its own worker, AP-side effects merge
// serially at the barrier, and the output is byte-identical to
// WindowWorkers=1 (the windowed equivalence suite in internal/check).
// On a multi-core runner this headline should land ≥1.5× under the
// serial Stations/1M figure; on a single-core host (see the recorded
// num_cpu) the workers serialize and the two headlines coincide up to
// windowing overhead.
func benchStationsMillionParallel(b *testing.B) {
	cfg := hide.ScenarioConfig(hide.WRL)
	cfg.Duration = 2 * time.Minute
	tr, err := hide.GenerateTraceConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := core.ScaleClientsOptions(tr, hide.NexusOne, []int{1_000_000},
			core.Options{Cohort: 1 << 30, WindowWorkers: 4})
		if err != nil {
			b.Fatal(err)
		}
		if pts[0].N != 1_000_000 {
			b.Fatalf("scaled %d clients, want 1000000", pts[0].N)
		}
	}
}

// benchESSRoam measures the sharded multi-AP simulation: an 8-AP ESS
// with 64 roaming HIDE stations and replicated port-table handoffs
// replaying a 2-minute Classroom trace — the shard-per-AP parallelism
// headline.
func benchESSRoam(b *testing.B) {
	cfg := hide.ScenarioConfig(hide.Classroom)
	cfg.Duration = 2 * time.Minute
	tr, err := hide.GenerateTraceConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := hide.NewESS(hide.ESSConfig{
			APs: 8,
			Network: core.NetworkConfig{
				DTIMPeriod: 1,
				HIDE:       true,
				Harden:     true,
				Seed:       7,
			},
			Replicate: true,
			RoamRate:  2,
			RoamSeed:  7,
			Workers:   workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		for s := 0; s < 64; s++ {
			if _, err := e.AddStation(hide.StationHIDE, []uint16{5353, 53}, 1); err != nil {
				b.Fatal(err)
			}
		}
		if err := hide.RunESSContext(ctx, e, tr); err != nil {
			b.Fatal(err)
		}
		if e.Stats().Roams == 0 {
			b.Fatal("bench ESS run had no roams")
		}
	}
}

// benchLintTree measures a whole-tree hidelint run — module walk,
// parse, type-check, and every analyzer including the flow-aware CFG
// passes — so the cost of the static-analysis gate is tracked like
// any other hot path. A fresh loader per iteration keeps the package
// cache from hiding the dominant type-checking cost. Run from the
// repo root, like the rest of report mode.
func benchLintTree(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loader, err := lint.NewLoader(".")
		if err != nil {
			b.Fatal(err)
		}
		pkgs, err := loader.Load("./...")
		if err != nil {
			b.Fatal(err)
		}
		diags, err := lint.RunAnalyzers(pkgs, lint.All())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree not lint-clean during bench: %v", diags)
		}
	}
}

// benchSink is a counting no-op receiver for the fan-out benchmark.
type benchSink struct{ n int }

// Receive implements medium.Node.
func (s *benchSink) Receive(raw []byte, rate dot11.Rate, at time.Duration) { s.n++ }

// benchMediumFanout measures one broadcast transmission delivered to 16
// subscribers — the per-DTIM flush hot path on the emulated channel.
func benchMediumFanout(b *testing.B) {
	eng := sim.New()
	m := medium.New(eng, dot11.DefaultPHY(), 1)
	src := dot11.MACAddr{0x02, 0, 0, 0, 0, 0xfe}
	m.Attach(src, &benchSink{})
	for i := 0; i < 16; i++ {
		m.Attach(dot11.MACAddr{0x02, 0, 0, 0, 1, byte(i)}, &benchSink{})
	}
	f := &dot11.DataFrame{
		Header: dot11.MACHeader{
			FC:    dot11.FrameControl{FromDS: true},
			Addr1: dot11.Broadcast, Addr2: src, Addr3: src,
		},
		Payload: dot11.EncapsulateUDP(dot11.UDPDatagram{DstPort: 5353, Payload: make([]byte, 160)}),
	}
	frame := f.Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transmit(src, frame, dot11.Rate11Mbps)
		eng.Step()
	}
}
