package cli

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// ProfileFlags registers the -cpuprofile, -memprofile, and -trace
// flags on the default flag set and returns the bound values. All
// default to off (empty path). The -trace capture is the inspection
// tool for the windowed-parallel runner: `go tool trace` shows the
// per-window group-worker fan-out, the serial barrier gaps between
// fan-outs, and how evenly the group drains pack onto the workers.
func ProfileFlags() (cpu, mem, trace *string) {
	cpu = flag.String("cpuprofile", "", "write a CPU profile to this file")
	mem = flag.String("memprofile", "", "write a heap profile to this file on exit")
	trace = flag.String("trace", "", "write a runtime/trace execution trace to this file")
	return cpu, mem, trace
}

// StartProfiles begins CPU profiling and execution tracing for the
// non-empty paths and returns a stop function that finishes both and,
// when mem is non-empty, writes a heap profile. Callers must invoke
// stop on every exit path that should produce profiles (defer works
// for normal returns; os.Exit paths need an explicit call first).
func StartProfiles(prog, cpu, mem, trace string) (stop func()) {
	var cpuFile *os.File
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			Exit(prog, fmt.Errorf("cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			Exit(prog, fmt.Errorf("cpu profile: %w", err))
		}
		cpuFile = f
	}
	var traceFile *os.File
	if trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			Exit(prog, fmt.Errorf("execution trace: %w", err))
		}
		if err := rtrace.Start(f); err != nil {
			Exit(prog, fmt.Errorf("execution trace: %w", err))
		}
		traceFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				Exit(prog, fmt.Errorf("cpu profile: %w", err))
			}
		}
		if traceFile != nil {
			rtrace.Stop()
			if err := traceFile.Close(); err != nil {
				Exit(prog, fmt.Errorf("execution trace: %w", err))
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				Exit(prog, fmt.Errorf("heap profile: %w", err))
			}
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				Exit(prog, fmt.Errorf("heap profile: %w", err))
			}
			if err := f.Close(); err != nil {
				Exit(prog, fmt.Errorf("heap profile: %w", err))
			}
		}
	}
}
