// Traceanalysis: characterize a broadcast trace the way the paper's
// Figure 6 does — per-second volume CDF, port composition, and what a
// given set of open ports would make "useful" — then round-trip the
// trace through the CSV codec the way a user substituting a real
// capture would.
//
// Run with:
//
//	go run ./examples/traceanalysis
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"repro"
)

func main() {
	tr, err := hide.GenerateTrace(hide.CSDept)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trace %q: %d frames over %v (mean %.2f frames/s)\n\n",
		tr.Name, len(tr.Frames), tr.Duration, tr.MeanFPS())

	// Figure 6 style CDF of per-second volumes.
	c := hide.NewCDFInts(tr.FramesPerSecond())
	fmt.Println("per-second volume CDF:")
	for _, q := range []float64{0.25, 0.50, 0.75, 0.90, 0.99} {
		fmt.Printf("  p%-3.0f  %4.0f frames/s\n", q*100, c.Quantile(q))
	}
	fmt.Printf("  mean  %5.2f frames/s\n\n", c.Mean())

	// Port composition, heaviest first.
	hist := tr.PortHistogram()
	type pc struct {
		port  uint16
		count int
	}
	ports := make([]pc, 0, len(hist))
	for p, n := range hist {
		ports = append(ports, pc{p, n})
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i].count > ports[j].count })
	fmt.Println("destination-port composition:")
	for _, p := range ports {
		fmt.Printf("  udp/%-5d %6d frames (%4.1f%%)  %s\n",
			p.port, p.count, 100*float64(p.count)/float64(len(tr.Frames)), portName(p.port))
	}

	// What would a phone listening on mDNS + DHCP find useful?
	open := map[uint16]bool{5353: true, 68: true}
	useful := hide.TagByOpenPorts(tr, open)
	n := 0
	for _, u := range useful {
		if u {
			n++
		}
	}
	fmt.Printf("\na phone listening on mDNS+DHCP finds %d/%d frames useful (%.1f%%)\n",
		n, len(tr.Frames), 100*float64(n)/float64(len(tr.Frames)))

	// And which ports approximate a 10% useful share?
	auto := hide.OpenPortsForFraction(tr, 0.10)
	var autoPorts []int
	for p := range auto {
		autoPorts = append(autoPorts, int(p))
	}
	sort.Ints(autoPorts)
	fmt.Printf("ports covering ~10%% of traffic: %v\n", autoPorts)

	// Round-trip through CSV, as a real capture would arrive.
	var buf bytes.Buffer
	if err := hide.WriteTraceCSV(&buf, tr); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	back, err := hide.ReadTraceCSV(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCSV round trip: %d bytes, %d frames preserved, duration %v\n",
		size, len(back.Frames), back.Duration)
}

// portName labels the well-known broadcast ports in the default mix.
func portName(p uint16) string {
	names := map[uint16]string{
		67:    "DHCP server",
		68:    "DHCP client",
		137:   "NetBIOS name service",
		138:   "NetBIOS datagram",
		631:   "IPP printer discovery",
		1900:  "SSDP/UPnP",
		5353:  "mDNS/Bonjour",
		5355:  "LLMNR",
		9956:  "printer status",
		17500: "Dropbox LanSync",
	}
	if n, ok := names[p]; ok {
		return n
	}
	return "unknown"
}
