package check

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/dot11"
	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/policy"
	"repro/internal/station"
	"repro/internal/trace"
)

// Property tests for cohort divergence: a fault plan hitting a member
// subset must split the cohort into exactly the population the
// expanded stations form on their own, and splitting is insensitive to
// the order the cuts are applied in. Both properties reuse the
// equivalence machinery's observables, so "the same" means
// byte-identical frames and bit-identical counters — not "close".

// quickCohortSize keeps the property runs cheap: big enough for
// interesting subsets (interior windows, prefix, suffix, full), small
// enough that one iteration is two sub-second replays.
const quickCohortSize = 6

// quickMemberAddrs returns the member MAC addresses a cohort of size
// members gets on a fresh network — the address plan is deterministic,
// so a throwaway network answers for every run.
func quickMemberAddrs(t *testing.T, size int) []dot11.MACAddr {
	t.Helper()
	n, err := core.NewNetwork(core.NetworkConfig{DTIMPeriod: 1, HIDE: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := n.AddCohort(station.HIDE, []uint16{5353}, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]dot11.MACAddr, size)
	for i := range addrs {
		addrs[i] = c.MemberAddr(i)
	}
	return addrs
}

// faultSpec is a randomized channel fault against a member subset:
// members [Lo, Hi) suffer Effect on the listed group-frame kinds with
// probability P from From onward. Group frames only — per-member
// unicast (the handshake ACKs) is serialized by receiver, so a
// targeted unicast fault never needs a cohort split to express.
type faultSpec struct {
	Lo, Hi   int
	Effect   int // 0 drop, 1 corrupt, 2 duplicate
	Beacons  bool
	Data     bool
	P        float64
	From     time.Duration
	Scenario int
}

// Generate implements quick.Generator.
func (faultSpec) Generate(r *rand.Rand, _ int) reflect.Value {
	lo := r.Intn(quickCohortSize)
	s := faultSpec{
		Lo:       lo,
		Hi:       lo + 1 + r.Intn(quickCohortSize-lo),
		Effect:   r.Intn(3),
		Beacons:  r.Intn(2) == 0,
		Data:     r.Intn(2) == 0,
		P:        0.2 + 0.6*r.Float64(),
		From:     time.Duration(r.Intn(10)) * time.Second,
		Scenario: r.Intn(2),
	}
	if !s.Beacons && !s.Data {
		s.Data = true
	}
	return reflect.ValueOf(s)
}

// plan materializes the spec against concrete member addresses. Built
// fresh per network: the combinators are stateless, but the contract
// is one plan instance per medium.
func (s faultSpec) plan(addrs []dot11.MACAddr) fault.Plan {
	var inner fault.Plan
	switch s.Effect {
	case 0:
		inner = fault.Loss{P: s.P}
	case 1:
		inner = fault.Corrupt{P: s.P}
	default:
		inner = fault.Duplicate{P: s.P}
	}
	var kinds []dot11.FrameKind
	if s.Beacons {
		kinds = append(kinds, dot11.KindBeacon)
	}
	if s.Data {
		kinds = append(kinds, dot11.KindData)
	}
	inner = fault.Only(inner, kinds...)
	var per []fault.Plan
	for _, a := range addrs[s.Lo:s.Hi] {
		per = append(per, fault.To(a, fault.Window{From: s.From, Inner: inner}))
	}
	return fault.Compose(per...)
}

func (s faultSpec) scenario() trace.Scenario {
	if s.Scenario == 0 {
		return trace.Classroom
	}
	return trace.WRL
}

// TestQuickCohortFaultSubsetEquivalence: for random subset faults, the
// cohort run (which must split lazily wherever the verdicts diverge)
// stays observation-identical to the expanded run, where each station
// weathers its own faults.
func TestQuickCohortFaultSubsetEquivalence(t *testing.T) {
	addrs := quickMemberAddrs(t, quickCohortSize)
	iter := 0
	maxCount := 25
	if testing.Short() {
		maxCount = 8
	}
	prop := func(s faultSpec) bool {
		iter++
		res, err := RunEquivCell(
			EquivCell{Policy: policy.HIDE, Scenario: s.scenario(), Size: quickCohortSize},
			EquivConfig{
				Duration: 30 * time.Second,
				Seed:     uint64(iter),
				Devices:  []energy.Profile{energy.NexusOne},
				Fault:    func() fault.Plan { return s.plan(addrs) },
			})
		if err != nil {
			t.Logf("%+v: %v", s, err)
			return false
		}
		if !res.OK() {
			t.Logf("%+v: %s", s, res.Mismatch)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}

// cutPlan is a randomized set of split points, kept in the generated
// (arbitrary) order.
type cutPlan struct {
	Cuts []int
}

// Generate implements quick.Generator: up to three distinct interior
// cut points of a quickCohortSize-member cohort, shuffled.
func (cutPlan) Generate(r *rand.Rand, _ int) reflect.Value {
	perm := r.Perm(quickCohortSize - 1)
	n := 1 + r.Intn(3)
	if n > len(perm) {
		n = len(perm)
	}
	cuts := make([]int, n)
	for i := 0; i < n; i++ {
		cuts[i] = perm[i] + 1 // interior: 1..size-1
	}
	return reflect.ValueOf(cutPlan{Cuts: cuts})
}

// splitAtAbsolute splits the cohort family at an absolute member index
// of the original cohort, locating the segment the cut falls in.
func splitAtAbsolute(c *station.CohortStation, abs int) error {
	off := 0
	for _, s := range c.Segments() {
		if abs < off+s.Count() {
			if abs == off {
				return nil // already a segment boundary
			}
			_, err := s.Split(abs - off)
			return err
		}
		off += s.Count()
	}
	return nil
}

// splitRun builds a cohort, applies the cuts in the given order before
// the replay, and returns the observables plus the final segment
// widths.
func splitRun(t *testing.T, cuts []int, seed uint64) (*equivSide, []int) {
	t.Helper()
	tr, err := oracleTrace(trace.Classroom, seed, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	open := sortedPorts(trace.OpenPortsForFraction(tr, 0.10))
	n, err := core.NewNetwork(core.NetworkConfig{DTIMPeriod: 1, HIDE: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	d := newAirDigest()
	n.Medium.SetTap(d.tap)
	c, err := n.AddCohort(station.HIDE, open, quickCohortSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range cuts {
		if err := splitAtAbsolute(c, cut); err != nil {
			t.Fatalf("split at %d (cuts %v): %v", cut, cuts, err)
		}
	}
	if err := n.Replay(tr); err != nil {
		t.Fatal(err)
	}
	side := &equivSide{fp: d.h.Sum64(), frames: d.frames}
	var widths []int
	for _, s := range c.Segments() {
		widths = append(widths, s.Count())
		arr, st := s.Arrivals(), s.MemberStats()
		for i := 0; i < s.Count(); i++ {
			side.arrivals = append(side.arrivals, arr)
			side.stats = append(side.stats, st)
		}
	}
	return side, widths
}

// TestQuickCohortSplitOrderInsensitive: applying the same cuts in any
// order yields the same segment partition and an observation-identical
// run — a split cohort is indistinguishable from cohorts built that
// way at setup, however it got split.
func TestQuickCohortSplitOrderInsensitive(t *testing.T) {
	iter := 0
	maxCount := 20
	if testing.Short() {
		maxCount = 6
	}
	prop := func(p cutPlan) bool {
		iter++
		seed := uint64(iter)
		rev := make([]int, len(p.Cuts))
		for i, c := range p.Cuts {
			rev[len(p.Cuts)-1-i] = c
		}
		a, aw := splitRun(t, p.Cuts, seed)
		b, bw := splitRun(t, rev, seed)
		if !reflect.DeepEqual(aw, bw) {
			t.Logf("cuts %v: segment widths %v vs reversed %v", p.Cuts, aw, bw)
			return false
		}
		cfg := EquivConfig{Devices: []energy.Profile{energy.NexusOne}}
		window := 30*time.Second + dot11.DefaultBeaconInterval
		if d := diffSides(a, b, quickCohortSize, cfg, window); d != "" {
			t.Logf("cuts %v vs reversed: %s", p.Cuts, d)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: maxCount}); err != nil {
		t.Fatal(err)
	}
}
