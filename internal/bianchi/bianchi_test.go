package bianchi

import (
	"math"
	"testing"
	"time"
)

func TestTableIIValid(t *testing.T) {
	if err := TableII().Validate(); err != nil {
		t.Fatal(err)
	}
	if got := TableII().stages(); got != 5 {
		t.Errorf("backoff stages = %d, want 5 (32→1024)", got)
	}
}

func TestValidateCatchesBadConfig(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.CWMin = 1 },
		func(c *Config) { c.CWMax = c.CWMin - 1 },
		func(c *Config) { c.SlotTime = 0 },
		func(c *Config) { c.DataRate = 0 },
		func(c *Config) { c.PayloadBits = 0 },
	}
	for i, m := range mutations {
		cfg := TableII()
		m(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}

func TestSolveFixedPointConsistency(t *testing.T) {
	cfg := TableII()
	for _, n := range []int{1, 2, 5, 10, 20, 50} {
		r, err := Solve(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.Tau <= 0 || r.Tau >= 1 {
			t.Errorf("n=%d: tau = %v outside (0, 1)", n, r.Tau)
		}
		if r.P < 0 || r.P >= 1 {
			t.Errorf("n=%d: p = %v outside [0, 1)", n, r.P)
		}
		// The fixed point must satisfy p = 1 - (1-tau)^(n-1).
		want := 1 - math.Pow(1-r.Tau, float64(n-1))
		if math.Abs(r.P-want) > 1e-6 {
			t.Errorf("n=%d: fixed point violated: p=%v vs %v", n, r.P, want)
		}
		if r.Phi <= 0 || r.Phi >= 1 {
			t.Errorf("n=%d: phi = %v outside (0, 1)", n, r.Phi)
		}
	}
}

func TestSolveSingleStationNoCollisions(t *testing.T) {
	r, err := Solve(TableII(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 0 {
		t.Errorf("single station collision probability = %v, want 0", r.P)
	}
}

func TestCollisionProbabilityGrowsWithN(t *testing.T) {
	cfg := TableII()
	prev := -1.0
	for _, n := range []int{2, 5, 10, 20, 30, 40, 50} {
		r, err := Solve(cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		if r.P <= prev {
			t.Errorf("p(n=%d) = %v not greater than previous %v", n, r.P, prev)
		}
		prev = r.P
	}
}

func TestCapacityDropsSlowlyWithN(t *testing.T) {
	// The paper: "the original network capacity drops only slightly
	// when the number of nodes increases from 5 to 50."
	cfg := TableII()
	r5, err := Solve(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	r50, err := Solve(cfg, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r50.CapacityBps >= r5.CapacityBps {
		t.Errorf("capacity should decrease with N: %v vs %v", r50.CapacityBps, r5.CapacityBps)
	}
	if drop := 1 - r50.CapacityBps/r5.CapacityBps; drop > 0.30 {
		t.Errorf("capacity drop 5→50 nodes = %.1f%%, want slight", drop*100)
	}
}

func TestSolveRejectsBadN(t *testing.T) {
	if _, err := Solve(TableII(), 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestCapacityOverheadPaperHeadline(t *testing.T) {
	// Paper: "With 50 nodes in the network and 75% of the nodes with
	// HIDE enabled, the decrease of network capacity is only 0.13%."
	o := SectionVDefaults()
	o.HIDEFraction = 0.75
	c, err := CapacityOverhead(TableII(), o, 50)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.0005 || c > 0.003 {
		t.Errorf("overhead at N=50, p=75%% = %.4f%%, want ~0.13%%", c*100)
	}
}

func TestCapacityOverheadMonotoneInNAndP(t *testing.T) {
	cfg := TableII()
	// Monotone in N for fixed p.
	prev := -1.0
	for _, n := range []int{5, 10, 20, 30, 40, 50} {
		o := SectionVDefaults()
		c, err := CapacityOverhead(cfg, o, n)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Errorf("overhead(N=%d) = %v not greater than previous", n, c)
		}
		prev = c
	}
	// Monotone in p for fixed N.
	prev = -1.0
	for _, p := range []float64{0.05, 0.25, 0.50, 0.75} {
		o := SectionVDefaults()
		o.HIDEFraction = p
		c, err := CapacityOverhead(cfg, o, 30)
		if err != nil {
			t.Fatal(err)
		}
		if c <= prev {
			t.Errorf("overhead(p=%v) = %v not greater than previous", p, c)
		}
		prev = c
	}
}

func TestCapacityOverheadNegligible(t *testing.T) {
	// The paper's conclusion: under 0.5% everywhere on the Figure 10
	// grid.
	points, err := Figure10(TableII())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 24 {
		t.Fatalf("Figure 10 grid has %d points, want 24", len(points))
	}
	for _, pt := range points {
		if pt.Overhead < 0 || pt.Overhead > 0.005 {
			t.Errorf("N=%d p=%v: overhead %.4f%% outside (0, 0.5%%]", pt.N, pt.HIDEFraction, pt.Overhead*100)
		}
	}
}

func TestCapacityOverheadValidation(t *testing.T) {
	o := SectionVDefaults()
	o.HIDEFraction = 1.5
	if _, err := CapacityOverhead(TableII(), o, 10); err == nil {
		t.Error("HIDE fraction > 1 accepted")
	}
	o = SectionVDefaults()
	o.PortMsgInterval = 0
	if _, err := CapacityOverhead(TableII(), o, 10); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestHigherRateLowersOverheadShare(t *testing.T) {
	// The paper notes newer 802.11 versions have even less overhead:
	// raising the channel rate raises capacity, so the fixed port
	// message load displaces a smaller fraction.
	cfg := TableII()
	base, err := CapacityOverhead(cfg, SectionVDefaults(), 50)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DataRate = 54e6
	faster, err := CapacityOverhead(cfg, SectionVDefaults(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if faster >= base {
		t.Errorf("54 Mb/s overhead %v not below 11 Mb/s overhead %v", faster, base)
	}
}

func TestPortMsgBits(t *testing.T) {
	o := OverheadParams{PortsPerMsg: 50}
	// 192 + 224 + 8*(2 + 100) = 1232 bits.
	if got := o.portMsgBits(TableII()); got != 1232 {
		t.Errorf("portMsgBits = %d, want 1232", got)
	}
}

func TestSolveTimings(t *testing.T) {
	// Ts > Tc > payload time sanity via a capacity bound: at most the
	// payload/(payload+overhead) share of the channel.
	cfg := TableII()
	r, err := Solve(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	tp := time.Duration(float64(cfg.PayloadBits) / cfg.DataRate * float64(time.Second))
	hdr := time.Duration(float64(cfg.MACHeaderBits+cfg.PHYHeaderBits) / cfg.DataRate * float64(time.Second))
	upper := tp.Seconds() / (tp + hdr + cfg.SIFS + cfg.DIFS).Seconds()
	if r.Phi >= upper {
		t.Errorf("phi %v exceeds physical upper bound %v", r.Phi, upper)
	}
}
